// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation, plus real-nanosecond micro-benchmarks
// of the hot-path mechanisms whose simulated costs the paper reports in
// microseconds (E5).
//
// Simulation experiments report their virtual-time results as custom
// benchmark metrics (suffix per metric); wall-clock ns/op for those
// benchmarks measures only how fast the simulator runs, not the modeled
// system. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"vsystem/internal/ethernet"
	"vsystem/internal/experiments"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/packet"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// reportAll runs a simulation experiment once per iteration and reports
// its metrics.
func reportAll(b *testing.B, f func(int64) *experiments.Result) {
	b.Helper()
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = f(int64(i + 1))
	}
	if r == nil {
		return
	}
	if !r.Pass {
		b.Fatalf("%s failed shape assertions:\n%s", r.ID, r.Format())
	}
	for k, v := range r.Metrics {
		b.ReportMetric(v, k)
	}
}

// BenchmarkRemoteExecCosts regenerates E1 (§4.1): host selection ≈23 ms,
// environment setup+destroy ≈40 ms, program loading ≈330 ms / 100 KB.
func BenchmarkRemoteExecCosts(b *testing.B) { reportAll(b, experiments.RemoteExecCosts) }

// BenchmarkMigrationCopyCosts regenerates E2 (§4.1): kernel-state copy
// 14 ms + 9 ms per process/space; address-space copy ≈3 s/MB.
func BenchmarkMigrationCopyCosts(b *testing.B) { reportAll(b, experiments.MigrationCopyCosts) }

// BenchmarkDirtyPageRates regenerates Table 4-1.
func BenchmarkDirtyPageRates(b *testing.B) { reportAll(b, experiments.DirtyPageRates) }

// BenchmarkPrecopyFreezeTime regenerates E4 (§4.1): ~2 useful pre-copy
// iterations, 0.5-70 KB residues, 5-210 ms suspensions.
func BenchmarkPrecopyFreezeTime(b *testing.B) { reportAll(b, experiments.PrecopyEffectiveness) }

// BenchmarkExecutionOverheads regenerates E5 in simulated time (the
// real-time counterparts are the micro-benchmarks below).
func BenchmarkExecutionOverheads(b *testing.B) { reportAll(b, experiments.ExecutionOverheads) }

// BenchmarkCommPaths regenerates Figure 2-1's message flow.
func BenchmarkCommPaths(b *testing.B) { reportAll(b, experiments.CommPaths) }

// BenchmarkCommDuringMigration regenerates E7 (§3.1.3): operations on a
// migrating program are delayed, never aborted.
func BenchmarkCommDuringMigration(b *testing.B) { reportAll(b, experiments.CommDuringMigration) }

// BenchmarkVMPagingMigration regenerates Figure 3-1 / §3.2.
func BenchmarkVMPagingMigration(b *testing.B) { reportAll(b, experiments.VMPaging) }

// BenchmarkStopAndCopy regenerates ablation A1: freeze-then-copy vs
// pre-copy freeze times across logical-host sizes.
func BenchmarkStopAndCopy(b *testing.B) { reportAll(b, experiments.AblationFreeze) }

// BenchmarkResidualDependencies regenerates ablation A2: forwarding
// addresses vs logical-host rebinding.
func BenchmarkResidualDependencies(b *testing.B) { reportAll(b, experiments.AblationResidual) }

// BenchmarkUsage regenerates A3 (§4.3): fraction of @ * requests honored.
func BenchmarkUsage(b *testing.B) { reportAll(b, experiments.Usage) }

// BenchmarkSelectionScaling regenerates E8: first-response selection time
// stays flat from 5 to 25 workstations.
func BenchmarkSelectionScaling(b *testing.B) { reportAll(b, experiments.SelectionScaling) }

// BenchmarkSelectionPolicies regenerates E9: under skewed load, the
// least-loaded policy over the cached cluster view tightens the
// completion-time spread that first-response serialization produces.
func BenchmarkSelectionPolicies(b *testing.B) { reportAll(b, experiments.SelectionPolicies) }

// BenchmarkMigrationUnderLoss regenerates A4: migrations complete with
// gracefully degrading freeze times at 0-10% frame loss.
func BenchmarkMigrationUnderLoss(b *testing.B) { reportAll(b, experiments.MigrationUnderLoss) }

// BenchmarkPrecopyRounds regenerates A5: the diminishing-returns curve of
// pre-copy iterations behind the paper's "usually 2 were useful".
func BenchmarkPrecopyRounds(b *testing.B) { reportAll(b, experiments.PrecopyRounds) }

// BenchmarkCopyThroughput regenerates E10: windowed bulk-transfer
// bandwidth vs window size, loss rate and zero-page fraction, plus the
// freeze/total non-regression of a pipelined pre-copy migration.
func BenchmarkCopyThroughput(b *testing.B) { reportAll(b, experiments.CopyThroughput) }

// BenchmarkClusterLoad regenerates E11: open-loop Poisson job streams
// against a large cluster, turnaround percentiles + placement quality +
// hot-spot bytes per selection policy. Runs the CI-sized 100-host grid so
// a bench sweep stays fast; the default 500-host grid runs via vbench.
func BenchmarkClusterLoad(b *testing.B) {
	old := experiments.ClusterLoadHosts
	experiments.ClusterLoadHosts = 100
	defer func() { experiments.ClusterLoadHosts = old }()
	reportAll(b, experiments.ClusterLoad)
}

// ---------------------------------------------------------------------
// E5 micro-benchmarks: the real cost, on today's hardware, of the checks
// whose 1985 costs the paper reports (13 µs frozen check, 100 µs
// local-group indirection). The shape claim is that both are small
// constants on the operation path.

// BenchmarkFrozenCheck measures the frozen-state test performed on every
// freeze-gated kernel operation.
func BenchmarkFrozenCheck(b *testing.B) {
	eng := sim.NewEngine(1)
	bus := ethernet.NewBus(eng)
	h := kernel.NewHost(eng, bus, 0, "bench")
	lh := h.CreateLH("prog", false)
	sum := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lh.Frozen() {
			sum++
		}
	}
	_ = sum
}

// BenchmarkLocalGroupIndirection measures resolving a well-known local
// index (kernel server via a logical-host-relative id) to a concrete port.
func BenchmarkLocalGroupIndirection(b *testing.B) {
	eng := sim.NewEngine(1)
	bus := ethernet.NewBus(eng)
	h := kernel.NewHost(eng, bus, 0, "bench")
	lh := h.CreateLH("prog", false)
	dst := vid.NewPID(lh.ID(), vid.IdxKernelServer)
	var res interface {
		WellKnown(vid.LHID, uint16) (vid.PID, bool)
	} = hostResolver(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := res.WellKnown(dst.LH(), dst.Index()); !ok {
			b.Fatal("resolution failed")
		}
	}
}

// hostResolver adapts the public kernel API for the indirection benchmark.
type hostResolverT struct{ h *kernel.Host }

func hostResolver(h *kernel.Host) hostResolverT { return hostResolverT{h} }

func (r hostResolverT) WellKnown(lh vid.LHID, idx uint16) (vid.PID, bool) {
	l, ok := r.h.LookupLH(lh)
	if !ok {
		return vid.Nil, false
	}
	_ = l
	switch idx {
	case vid.IdxKernelServer, vid.IdxProgramManager:
		return vid.NewPID(r.h.SystemLH().ID(), idx), true
	}
	return vid.Nil, false
}

// BenchmarkPacketMarshal measures wire-format encoding of a request.
func BenchmarkPacketMarshal(b *testing.B) {
	p := &packet.Packet{
		Kind: packet.KRequest, TxID: 7,
		Src: vid.NewPID(3, 16), Dst: vid.NewPID(9, 1),
		Msg: vid.Message{Op: 42, W: [6]uint32{1, 2, 3, 4, 5, 6}, Seg: make([]byte, 256)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packet.Marshal(p)
	}
}

// BenchmarkPacketUnmarshal measures wire-format decoding.
func BenchmarkPacketUnmarshal(b *testing.B) {
	p := &packet.Packet{
		Kind: packet.KRequest, TxID: 7,
		Src: vid.NewPID(3, 16), Dst: vid.NewPID(9, 1),
		Msg: vid.Message{Op: 42, W: [6]uint32{1, 2, 3, 4, 5, 6}, Seg: make([]byte, 256)},
	}
	buf := packet.Marshal(p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := packet.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirtySnapshot measures the per-round dirty-page scan of a 1 MB
// address space (the pre-copy engine's inner bookkeeping).
func BenchmarkDirtySnapshot(b *testing.B) {
	as := mem.NewAddressSpace(1, 1024*1024)
	buf := make([]byte, 1024*1024)
	as.WriteAt(0, buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Touch(uint32(i*4096) % (1024 * 1024))
		as.SnapshotDirty()
	}
}

// BenchmarkAddressSpaceWrite measures the simulated memory write path the
// VVM and workloads use.
func BenchmarkAddressSpaceWrite(b *testing.B) {
	as := mem.NewAddressSpace(1, 1024*1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		as.WriteWord(uint32(i*64)%(1024*1024-4), uint32(i))
	}
}
