// Preemption: the paper's headline scenario (§1, §3). A long-running
// simulation job is offloaded onto an idle workstation. Its owner returns
// and reclaims the machine with `migrateprog`: the job is pre-copied to
// another idle workstation while it keeps running, frozen only for the
// residue — and its output stream on the home display never misses a
// line.
package main

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/progs"
	"vsystem/internal/workload"
)

func main() {
	c := core.NewCluster(core.Options{Workstations: 5, Seed: 2})
	c.Install(progs.Ticker(150)) // the "simulation job": prints t1..t150
	tex, _ := workload.PaperSpec("tex")
	c.Install(workload.Image(tex, 220*1024)) // the owner's own work

	var report *core.MigrationReport
	c.Node(0).Agent(func(a *core.Agent) {
		fmt.Println("researcher@ws0$ ticker150 @ *     # long simulation job")
		job, err := a.Exec("ticker150", nil, "*")
		must(err)
		victim := job.Host
		fmt.Printf("  [job placed on idle %s]\n", victim)

		a.Sleep(2 * time.Second)

		// The owner of that workstation returns and starts working...
		fmt.Printf("\nowner@%s returns and runs tex locally; then evicts guests:\n", victim)
		fmt.Printf("owner@%s$ tex &\n", victim)
		var ownerNode *core.Node
		for _, n := range c.Nodes {
			if n.Name() == victim {
				ownerNode = n
			}
		}
		ownerNode.Agent(func(o *core.Agent) {
			o.Exec("tex", nil, "")
		})
		a.Sleep(time.Second)

		fmt.Printf("owner@%s$ migrateprog\n", victim)
		t0 := a.Now()
		report, err = a.Migrate(job, false)
		must(err)
		fmt.Printf("  [migrateprog done in %v total]\n", a.Now().Sub(t0))

		_, err = a.Wait(job)
		must(err)
	})
	c.Run(10 * time.Minute)

	fmt.Println("\nmigration report (the §3.1 pre-copy sequence):")
	fmt.Printf("  policy        %s\n", report.Policy)
	for i, rd := range report.Rounds {
		what := "initial copy of the address spaces"
		if i > 0 {
			what = "copy of pages modified during the previous round"
		}
		fmt.Printf("  round %d       %4d pages (%.0f KB) in %v   %s\n", i, rd.Pages, rd.KB, rd.Dur, what)
	}
	fmt.Printf("  frozen for    %v (residual %.1f KB + kernel state, %d items)\n",
		report.FreezeTime, report.ResidualKB, report.KernelItems)

	lines := c.Node(0).Display.Lines()
	fmt.Printf("\nthe job printed %d/150 lines; first %q, last %q — no line was\n",
		len(lines), lines[0], lines[len(lines)-1])
	fmt.Println("lost or duplicated across the migration (exactly-once IPC).")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
