// Compile farm: the paper's motivating workload (§1). A user rebuilds a
// project — make drives the cc68 pipeline (preprocessor, parser,
// optimizer, assembler, linking loader) — while continuing to use their
// own workstation. Offloading the compilation phases onto idle
// workstations with `@ *` runs the phases of different files in parallel,
// and the user's interactive work is never disturbed.
//
// The example builds three "source files" twice — once entirely on the
// user's workstation, once spread across the cluster — and compares
// elapsed times.
package main

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/workload"
)

// The cc68 pipeline phases, as the paper footnotes them, with per-phase
// CPU demand (ms) scaled down so the example runs quickly.
var phases = []struct {
	name string
	ms   uint32
}{
	{"preprocessor", 1500},
	{"parser", 2500},
	{"optimizer", 2000},
	{"assembler", 1500},
	{"linkloader", 1000},
}

func install(c *core.Cluster) {
	for _, ph := range phases {
		spec, ok := workload.PaperSpec(ph.name)
		if !ok {
			panic(ph.name)
		}
		spec.DurationMs = ph.ms
		c.Install(workload.Image(spec, 40*1024))
	}
}

// build compiles the given files; where is "" for local or "*" for the
// processor pool. It returns the elapsed virtual time.
func build(c *core.Cluster, files []string, where string) time.Duration {
	var elapsed time.Duration
	doneCount := 0
	start := c.Sim.Now()
	for range files {
		c.Node(0).Agent(func(a *core.Agent) {
			for _, ph := range phases {
				job, err := a.Exec(ph.name, nil, where)
				if err != nil {
					// Pool exhausted: fall back to the local machine, as a
					// user would.
					job, err = a.Exec(ph.name, nil, "")
					if err != nil {
						panic(err)
					}
				}
				if _, err := a.Wait(job); err != nil {
					panic(err)
				}
			}
			doneCount++
			if doneCount == len(files) {
				elapsed = a.Now().Sub(start)
			}
		})
	}
	c.Run(10 * time.Minute)
	return elapsed
}

func main() {
	files := []string{"kernel.c", "ipc.c", "migrate.c"}

	fmt.Println("rebuilding", len(files), "files × 5 cc68 phases")

	// Pass 1: everything on the user's own workstation.
	c1 := core.NewCluster(core.Options{Workstations: 6, Seed: 1})
	install(c1)
	local := build(c1, files, "")
	fmt.Printf("  all phases on ws0 (sharing one CPU):  %8.1f s\n", local.Seconds())

	// Pass 2: offloaded with @ * onto idle workstations.
	c2 := core.NewCluster(core.Options{Workstations: 6, Seed: 1})
	install(c2)
	farm := build(c2, files, "*")
	fmt.Printf("  phases offloaded with @ * :           %8.1f s\n", farm.Seconds())
	fmt.Printf("  speedup: %.1fx with zero changes to the programs\n",
		local.Seconds()/farm.Seconds())

	fmt.Println("\nnetwork activity per host (the pool spread the phases around):")
	for _, n := range c2.Nodes {
		tx, rx := n.Host.NIC.Counters()
		fmt.Printf("  %-4s  frames tx/rx %6d/%6d\n", n.Name(), tx, rx)
	}
}
