// VM paging: the §3.2 migration variant (Figure 3-1). Instead of copying
// the address spaces host-to-host, the source flushes pages to the network
// file server; the new host demand-faults them back in. Pages dirty on the
// old host and then referenced on the new one cross the network twice —
// the cost the paper predicted would stay small.
package main

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/workload"
)

func main() {
	run := func(policy core.Policy) (*core.MigrationReport, *core.PagerStats, *core.Cluster, *core.Job) {
		c := core.NewCluster(core.Options{Workstations: 4, Seed: 3, Policy: policy})
		tex, _ := workload.PaperSpec("tex")
		c.Install(workload.Image(tex, 220*1024))
		var rep *core.MigrationReport
		var job *core.Job
		c.Node(0).Agent(func(a *core.Agent) {
			var err error
			job, err = a.Exec("tex", nil, "ws1")
			must(err)
			a.Sleep(4 * time.Second)
			rep, err = a.Migrate(job, false)
			must(err)
			a.Sleep(10 * time.Second) // let the new copy fault its pages in
		})
		c.Run(time.Minute)
		return rep, c.PagerStatsFor(job.LHID), c, job
	}

	fmt.Println("migrating tex (≈400 KB of state) with both mechanisms:")

	pre, _, _, _ := run(core.PolicyPrecopy)
	fmt.Printf("\npre-copy (§3.1): host-to-host page runs\n")
	fmt.Printf("  rounds %d, residual %.1f KB, frozen %v, %0.f KB on the wire\n",
		len(pre.Rounds), pre.ResidualKB, pre.FreezeTime, float64(pre.BytesCopied)/1024)

	fl, pg, _, _ := run(core.PolicyFlush)
	fmt.Printf("\nflush to file server (§3.2): pages via the paging store\n")
	fmt.Printf("  rounds %d, residual %.1f KB, frozen %v, %0.f KB flushed\n",
		len(fl.Rounds), fl.ResidualKB, fl.FreezeTime, float64(fl.BytesCopied)/1024)
	fmt.Printf("  demand faults on the new host: %d (%.0f KB moved twice)\n",
		pg.Faults, pg.FaultKB)

	fmt.Println("\nshape: both freeze only for the residue; the flush variant")
	fmt.Println("frees the source without talking to the new host, at the cost")
	fmt.Println("of a second network crossing for pages referenced after the move.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
