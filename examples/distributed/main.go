// Distributed execution: §2's closing remark — "our facilities also
// support truly distributed programs in that a program may be decomposed
// into subprograms, each of which can be run on a separate host." A prime
// count over [2, 20000) is split into four ranges, each executed `@ *` as
// an argument-carrying subprogram on a different idle workstation, and the
// partial counts (exit codes) are summed — then compared against doing all
// the work on one machine.
package main

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/progs"
)

const limit = 20000

func main() {
	ranges := [][2]uint32{{2, 5000}, {5000, 10000}, {10000, 15000}, {15000, limit}}

	run := func(parallel bool) (total uint32, elapsed time.Duration, hosts []string) {
		c := core.NewCluster(core.Options{Workstations: 6, Seed: 4})
		c.Install(progs.PrimesRange())
		done := 0
		start := c.Sim.Now()
		var end time.Duration
		launch := func(lo, hi uint32, where string) {
			c.Node(0).Agent(func(a *core.Agent) {
				job, err := a.Exec("primesrange",
					[]string{fmt.Sprint(lo), fmt.Sprint(hi)}, where)
				if err != nil {
					panic(err)
				}
				hosts = append(hosts, job.Host)
				count, err := a.Wait(job)
				if err != nil {
					panic(err)
				}
				total += count
				done++
				if done == len(ranges) {
					end = c.Sim.Now().Sub(start)
				}
			})
		}
		if parallel {
			for _, r := range ranges {
				launch(r[0], r[1], "*")
			}
		} else {
			// Sequentially on one named host.
			c.Node(0).Agent(func(a *core.Agent) {
				for _, r := range ranges {
					job, err := a.Exec("primesrange",
						[]string{fmt.Sprint(r[0]), fmt.Sprint(r[1])}, "ws1")
					if err != nil {
						panic(err)
					}
					count, err := a.Wait(job)
					if err != nil {
						panic(err)
					}
					total += count
				}
				end = c.Sim.Now().Sub(start)
			})
		}
		c.Run(30 * time.Minute)
		return total, end, hosts
	}

	seqTotal, seqTime, _ := run(false)
	parTotal, parTime, hosts := run(true)

	fmt.Printf("π(%d) by four subprograms:\n", limit)
	fmt.Printf("  sequential on ws1:      total %d in %8.1f s\n", seqTotal, seqTime.Seconds())
	fmt.Printf("  decomposed with @ * :   total %d in %8.1f s on %v\n", parTotal, parTime.Seconds(), hosts)
	fmt.Printf("  speedup %.1fx; identical result: %v\n",
		seqTime.Seconds()/parTime.Seconds(), seqTotal == parTotal)
	if seqTotal != 2262 {
		panic(fmt.Sprintf("π(20000) = %d, want 2262", seqTotal))
	}
}
