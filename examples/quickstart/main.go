// Quickstart: boot a simulated V-System cluster, offload a program onto
// an idle workstation with `@ *`, and watch its output arrive on the home
// workstation's display — the paper's basic remote-execution experience.
package main

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/progs"
)

func main() {
	// A cluster of 4 diskless workstations plus a file-server machine.
	c := core.NewCluster(core.Options{Workstations: 4, Seed: 1})

	// Install program images on the network file server.
	c.Install(progs.Hello())
	c.Install(progs.Primes(5000))

	// An interactive user sits at ws0. Their agent (command interpreter)
	// runs programs and waits for them.
	c.Node(0).Agent(func(a *core.Agent) {
		fmt.Println("user@ws0$ hello")
		job, err := a.Exec("hello", nil, "") // local execution
		must(err)
		code, err := a.Wait(job)
		must(err)
		fmt.Printf("  [ran locally, exit %d, t=%v]\n", code, a.Now())

		fmt.Println("user@ws0$ primes5000 @ *")
		t0 := a.Now()
		job, err = a.Exec("primes5000", nil, "*") // some other idle machine
		must(err)
		fmt.Printf("  [decentralized selection picked %s]\n", job.Host)
		code, err = a.Wait(job)
		must(err)
		fmt.Printf("  [remote run finished, exit %d, took %v]\n", code, a.Now().Sub(t0))
	})

	// Advance virtual time until everything completes.
	c.Run(5 * time.Minute)

	fmt.Println("\nws0 display (output is network-transparent — the remote")
	fmt.Println("program wrote to the display server of the HOME workstation):")
	for _, line := range c.Node(0).Display.Lines() {
		fmt.Println("  |", line)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
