package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	as := NewAddressSpace(1, 64*1024)
	data := []byte("the quick brown fox")
	if err := as.WriteAt(1000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.ReadAt(1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestCrossPageWrite(t *testing.T) {
	as := NewAddressSpace(1, 16*1024)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	// Start mid-page so the write spans four pages.
	if err := as.WriteAt(PageSize/2, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.ReadAt(PageSize/2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}
	if n := as.DirtyCount(); n != 4 {
		t.Fatalf("DirtyCount = %d, want 4", n)
	}
}

func TestUnallocatedReadsZero(t *testing.T) {
	as := NewAddressSpace(1, 8*1024)
	b := []byte{1, 2, 3}
	if err := as.ReadAt(4096, b); err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("unallocated page not zero")
		}
	}
	if as.Allocated() != 0 {
		t.Fatal("read allocated a page")
	}
}

func TestFaults(t *testing.T) {
	as := NewAddressSpace(1, 4*1024)
	if err := as.WriteAt(4*1024-1, []byte{1, 2}); err == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
	if err := as.ReadAt(5000, make([]byte, 1)); err == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
	var fe *FaultError
	err := as.WriteAt(1<<30, []byte{1})
	if fe, _ = err.(*FaultError); fe == nil {
		t.Fatalf("err = %v, want FaultError", err)
	}
}

func TestSizeRoundsUpToPage(t *testing.T) {
	as := NewAddressSpace(1, 100)
	if as.Size() != PageSize {
		t.Fatalf("Size = %d, want %d", as.Size(), PageSize)
	}
}

func TestDirtyTracking(t *testing.T) {
	as := NewAddressSpace(1, 64*1024)
	as.WriteAt(0, []byte{1})
	as.WriteAt(5*PageSize, []byte{1})
	d := as.SnapshotDirty()
	if len(d) != 2 || d[0] != 0 || d[1] != 5 {
		t.Fatalf("dirty = %v", d)
	}
	// Snapshot cleared the bits; new writes dirty again.
	if as.DirtyCount() != 0 {
		t.Fatal("snapshot did not clear dirty bits")
	}
	as.WriteAt(5*PageSize+10, []byte{2})
	d = as.SnapshotDirty()
	if len(d) != 1 || d[0] != 5 {
		t.Fatalf("second round dirty = %v", d)
	}
}

func TestTouchDirtiesWithoutWriting(t *testing.T) {
	as := NewAddressSpace(1, 8*1024)
	as.WriteAt(0, []byte{42})
	as.ClearDirty()
	as.Touch(0)
	if as.DirtyCount() != 1 {
		t.Fatal("Touch did not dirty")
	}
	b := make([]byte, 1)
	as.ReadAt(0, b)
	if b[0] != 42 {
		t.Fatal("Touch changed contents")
	}
}

func TestInstallPageIsClean(t *testing.T) {
	as := NewAddressSpace(1, 8*1024)
	data := make([]byte, PageSize)
	data[7] = 99
	if err := as.InstallPage(1, data); err != nil {
		t.Fatal(err)
	}
	if as.DirtyCount() != 0 {
		t.Fatal("InstallPage set dirty bit")
	}
	b := make([]byte, 1)
	as.ReadAt(PageSize+7, b)
	if b[0] != 99 {
		t.Fatal("InstallPage contents wrong")
	}
	if err := as.InstallPage(99, data); err == nil {
		t.Fatal("InstallPage beyond limit succeeded")
	}
}

func TestWords(t *testing.T) {
	as := NewAddressSpace(1, 4*1024)
	if err := as.WriteWord(100, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadWord(100)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("ReadWord = %#x, %v", v, err)
	}
}

func TestEqual(t *testing.T) {
	a := NewAddressSpace(1, 8*1024)
	b := NewAddressSpace(2, 8*1024)
	if !a.Equal(b) {
		t.Fatal("empty spaces not equal")
	}
	a.WriteAt(100, []byte{1})
	if a.Equal(b) {
		t.Fatal("differing spaces equal")
	}
	b.WriteAt(100, []byte{1})
	if !a.Equal(b) {
		t.Fatal("identical spaces not equal")
	}
	// A zero-filled allocated page equals an unallocated page.
	a.WriteAt(4096, []byte{0})
	if !a.Equal(b) {
		t.Fatal("zero page != unallocated page")
	}
	c := NewAddressSpace(3, 16*1024)
	if a.Equal(c) {
		t.Fatal("spaces of different size equal")
	}
}

// Property: for any sequence of writes, reading back each write's range
// returns the last value written there (modeled against a flat reference
// buffer).
func TestQuickWriteReadConsistency(t *testing.T) {
	const size = 32 * 1024
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace(1, size)
		ref := make([]byte, size)
		for i := 0; i < int(nOps); i++ {
			addr := uint32(rng.Intn(size - 256))
			n := 1 + rng.Intn(255)
			b := make([]byte, n)
			rng.Read(b)
			if err := as.WriteAt(addr, b); err != nil {
				return false
			}
			copy(ref[addr:], b)
		}
		got := make([]byte, size)
		if err := as.ReadAt(0, got); err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SnapshotDirty exactly reports the pages written since the last
// snapshot.
func TestQuickDirtySnapshotExact(t *testing.T) {
	const size = 64 * 1024
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace(1, size)
		as.WriteAt(0, make([]byte, size)) // allocate everything
		as.ClearDirty()
		want := make(map[PageNo]bool)
		for i := 0; i < 20; i++ {
			addr := uint32(rng.Intn(size))
			as.WriteAt(addr, []byte{byte(i)})
			want[PageNo(addr/PageSize)] = true
		}
		got := as.SnapshotDirty()
		if len(got) != len(want) {
			return false
		}
		for _, pn := range got {
			if !want[pn] {
				return false
			}
		}
		return as.DirtyCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
