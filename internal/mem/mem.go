// Package mem implements V address spaces: sparse, page-granular memory
// with per-page dirty bits.
//
// Dirty bits are the mechanism behind pre-copy migration (§3.1.2, footnote
// 4: "modified pages are detected using dirty bits"): each pre-copy round
// snapshots and clears the dirty set, then copies exactly the pages
// modified during the previous round.
package mem

import (
	"fmt"
	"sort"

	"vsystem/internal/params"
)

// PageSize re-exports the page granularity for convenience.
const PageSize = params.PageSize

// PageNo identifies a page within an address space.
type PageNo uint32

// AddressSpace is a sparse paged memory. Pages are allocated on first
// write; reads of unallocated memory return zeros. The space tracks a dirty
// bit per allocated page.
type AddressSpace struct {
	ID    uint32 // space identifier within its logical host
	limit uint32 // size in bytes; accesses beyond limit fault
	pages map[PageNo]*page
	// fault, when set, supplies the contents of a non-present page on
	// first access (demand paging from a file server, §3.2). It may
	// block the calling task. A nil return means a zero page.
	fault FaultFunc
}

// FaultFunc resolves a missing page's contents.
type FaultFunc func(pn PageNo) []byte

// SetFault installs (or clears) the demand-paging handler.
func (as *AddressSpace) SetFault(f FaultFunc) { as.fault = f }

// Faulting reports whether a demand-paging handler is installed.
func (as *AddressSpace) Faulting() bool { return as.fault != nil }

type page struct {
	data  []byte
	dirty bool
}

// NewAddressSpace creates a space of the given size in bytes (rounded up to
// a whole number of pages).
func NewAddressSpace(id uint32, size uint32) *AddressSpace {
	if size%PageSize != 0 {
		size += PageSize - size%PageSize
	}
	return &AddressSpace{ID: id, limit: size, pages: make(map[PageNo]*page)}
}

// Size returns the space's limit in bytes.
func (as *AddressSpace) Size() uint32 { return as.limit }

// Allocated returns the number of bytes in allocated pages.
func (as *AddressSpace) Allocated() uint32 { return uint32(len(as.pages)) * PageSize }

// FaultError reports an access outside the space.
type FaultError struct {
	Addr uint32
	N    int
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("mem: fault at %#x (+%d bytes)", e.Addr, e.N)
}

func (as *AddressSpace) check(addr uint32, n int) error {
	if n < 0 || uint64(addr)+uint64(n) > uint64(as.limit) {
		return &FaultError{Addr: addr, N: n}
	}
	return nil
}

func (as *AddressSpace) getPage(pn PageNo, alloc bool) *page {
	p := as.pages[pn]
	if p == nil && as.fault != nil {
		data := as.fault(pn)
		// The handler blocks the faulting task; a racing installer (the
		// post-copy source's background push-out) may have materialized the
		// page meanwhile. First writer wins: prefer the installed page and
		// drop the fetched copy, never overwrite.
		if p = as.pages[pn]; p != nil {
			return p
		}
		p = &page{data: make([]byte, PageSize)}
		if data != nil {
			copy(p.data, data)
		}
		as.pages[pn] = p
		return p
	}
	if p == nil && alloc {
		p = &page{data: make([]byte, PageSize)}
		as.pages[pn] = p
	}
	return p
}

// ReadAt copies len(b) bytes starting at addr into b. Unallocated pages
// read as zeros.
func (as *AddressSpace) ReadAt(addr uint32, b []byte) error {
	if err := as.check(addr, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		pn := PageNo(addr / PageSize)
		off := addr % PageSize
		n := PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if p := as.getPage(pn, false); p != nil {
			copy(b[:n], p.data[off:off+n])
		} else {
			for i := uint32(0); i < n; i++ {
				b[i] = 0
			}
		}
		b = b[n:]
		addr += n
	}
	return nil
}

// WriteAt copies b into the space at addr, allocating and dirtying pages.
func (as *AddressSpace) WriteAt(addr uint32, b []byte) error {
	if err := as.check(addr, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		pn := PageNo(addr / PageSize)
		off := addr % PageSize
		n := PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		p := as.getPage(pn, true)
		copy(p.data[off:off+n], b[:n])
		p.dirty = true
		b = b[n:]
		addr += n
	}
	return nil
}

// Word helpers for the VVM (little-endian 32-bit).

// ReadWord reads the 32-bit word at addr.
func (as *AddressSpace) ReadWord(addr uint32) (uint32, error) {
	var b [4]byte
	if err := as.ReadAt(addr, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteWord writes the 32-bit word at addr.
func (as *AddressSpace) WriteWord(addr uint32, v uint32) error {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return as.WriteAt(addr, b[:])
}

// Touch dirties the page containing addr without changing its contents
// (used by workload models that only need the dirty-bit side effect).
func (as *AddressSpace) Touch(addr uint32) error {
	if err := as.check(addr, 1); err != nil {
		return err
	}
	as.getPage(PageNo(addr/PageSize), true).dirty = true
	return nil
}

// DirtyPages returns the sorted list of dirty page numbers.
func (as *AddressSpace) DirtyPages() []PageNo {
	var out []PageNo
	for pn, p := range as.pages {
		if p.dirty {
			out = append(out, pn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyCount returns the number of dirty pages.
func (as *AddressSpace) DirtyCount() int {
	n := 0
	for _, p := range as.pages {
		if p.dirty {
			n++
		}
	}
	return n
}

// SnapshotDirty returns the sorted dirty page list and clears all dirty
// bits, beginning a new tracking interval (one pre-copy round).
func (as *AddressSpace) SnapshotDirty() []PageNo {
	out := as.DirtyPages()
	for _, pn := range out {
		as.pages[pn].dirty = false
	}
	return out
}

// ClearDirty clears all dirty bits without reporting them.
func (as *AddressSpace) ClearDirty() {
	for _, p := range as.pages {
		p.dirty = false
	}
}

// AllPages returns the sorted list of allocated page numbers.
func (as *AddressSpace) AllPages() []PageNo {
	out := make([]PageNo, 0, len(as.pages))
	for pn := range as.pages {
		out = append(out, pn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Page returns a copy of the page's contents (zeros if unallocated; a
// demand-paging handler is consulted for non-present pages).
func (as *AddressSpace) Page(pn PageNo) []byte {
	b := make([]byte, PageSize)
	if p := as.getPage(pn, false); p != nil {
		copy(b, p.data)
	}
	return b
}

// zeroPage is the canonical all-zero page. PageView and DecodePageRun
// hand it out for absent or elided pages; callers must treat views as
// read-only (InstallPage and the file server both copy before storing).
var zeroPage = make([]byte, PageSize)

// ZeroPage returns the shared read-only all-zero page.
func ZeroPage() []byte { return zeroPage }

// PageView returns the page's live contents without copying (the shared
// zero page if unallocated). The view is read-only and valid only until
// the space is next written; the bulk-transfer encoder snapshots it into
// the wire segment immediately.
func (as *AddressSpace) PageView(pn PageNo) []byte {
	if p := as.getPage(pn, false); p != nil {
		return p.data
	}
	return zeroPage
}

// IsZeroPage reports whether a page-sized buffer is all zero — the test
// behind zero-page elision on the copy wire format.
func IsZeroPage(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// InstallPage overwrites a whole page without setting its dirty bit: this
// is the receive side of a migration copy, where the new copy must start
// with clean dirty bits.
func (as *AddressSpace) InstallPage(pn PageNo, data []byte) error {
	if err := as.check(uint32(pn)*PageSize, PageSize); err != nil {
		return err
	}
	if len(data) != PageSize {
		return fmt.Errorf("mem: InstallPage with %d bytes", len(data))
	}
	p := as.getPage(pn, true)
	copy(p.data, data)
	p.dirty = false
	return nil
}

// Present reports whether the page is materialized (absent pages read as
// zeros, so "absent" and "all-zero page" are observably equivalent until
// a demand-paging handler is installed).
func (as *AddressSpace) Present(pn PageNo) bool {
	_, ok := as.pages[pn]
	return ok
}

// InstallPageIfAbsent installs a page only when the destination does not
// already hold it — the receive side of a post-copy push-out, which races
// demand pulls and the running guest's own writes (first writer wins,
// never double-apply). All-zero installs are skipped outright: an absent
// page already reads as zeros, and allocating it would only burn memory.
// It reports whether the page was installed.
func (as *AddressSpace) InstallPageIfAbsent(pn PageNo, data []byte) (bool, error) {
	if err := as.check(uint32(pn)*PageSize, PageSize); err != nil {
		return false, err
	}
	if len(data) != PageSize {
		return false, fmt.Errorf("mem: InstallPageIfAbsent with %d bytes", len(data))
	}
	if _, present := as.pages[pn]; present || IsZeroPage(data) {
		return false, nil
	}
	p := &page{data: make([]byte, PageSize)}
	copy(p.data, data)
	as.pages[pn] = p
	return true, nil
}

// Drop discards a page, reverting it to the not-present state (a
// subsequent access faults it back in, or reads zeros). The hybrid
// migration policy uses this to invalidate stale pre-copied pages on the
// destination at freeze time.
func (as *AddressSpace) Drop(pn PageNo) { delete(as.pages, pn) }

// MarkPageDirty sets an allocated page's dirty bit (a no-op for absent
// pages). The post-copy source marks its frozen residue dirty at swap
// time and uses the bits as not-yet-delivered markers.
func (as *AddressSpace) MarkPageDirty(pn PageNo) {
	if p := as.pages[pn]; p != nil {
		p.dirty = true
	}
}

// ClearDirtyPage clears one page's dirty bit (a no-op for absent pages).
func (as *AddressSpace) ClearDirtyPage(pn PageNo) {
	if p := as.pages[pn]; p != nil {
		p.dirty = false
	}
}

// PageDirty reports one page's dirty bit (false for absent pages).
func (as *AddressSpace) PageDirty(pn PageNo) bool {
	p := as.pages[pn]
	return p != nil && p.dirty
}

// Equal reports whether two spaces have identical sizes and contents
// (unallocated pages compare equal to zero pages). Used by migration
// transparency tests.
func (as *AddressSpace) Equal(other *AddressSpace) bool {
	if as.limit != other.limit {
		return false
	}
	seen := make(map[PageNo]bool)
	for pn := range as.pages {
		seen[pn] = true
	}
	for pn := range other.pages {
		seen[pn] = true
	}
	for pn := range seen {
		a, b := as.Page(pn), other.Page(pn)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}
