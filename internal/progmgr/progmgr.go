// Package progmgr implements the per-workstation program manager.
//
// The program manager (well-known local index 2, member of the well-known
// program-manager group) provides program management for the programs
// executing on its workstation (§2.1): it answers host-selection queries,
// creates execution environments (address space, loaded image, argument
// and environment initialization), tracks running programs, tears them
// down on exit, and coordinates the receiving side of migration. The
// sending side of migration — the pre-copy engine — is injected by the
// core package as a Migrator, mirroring the paper's split between the
// migration module added to the program manager and the kernel operations
// it drives.
package progmgr

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"vsystem/internal/image"
	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/params"
	"vsystem/internal/rsm"
	"vsystem/internal/sched"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
	"vsystem/internal/vvm"
)

// Operations (0x30 region).
const (
	// PmQueryHost: Seg=hostname → reply only from the named host:
	// W0=system LH, W5=PM pid.
	PmQueryHost uint16 = 0x30 + iota
	// PmSelectHost: W0=min free memory (bytes), W1..W4=excluded system
	// LHs, W5=sched query flags (0 = the paper's strict query) → reply
	// only from willing hosts: W = the host's load advertisement
	// (LoadWords: W0=system LH, W1=free memory, W2=ready depth,
	// W3=residents, W4=util‰, W5=PM pid). Unwilling hosts stay silent,
	// unless QueryUnicast asks for an explicit refusal; QueryRelaxed
	// drops the idleness requirement (memory still applies).
	PmSelectHost
	// PmCreateProgram: W0=stdout PID, W1=guest flag, Seg=program name
	// NUL-joined with arguments → W0=initial process PID, W1=LHID.
	PmCreateProgram
	// PmWaitProgram: W0=LHID → replies when the program exits
	// (W0=exit code) or migrates away (code=CodeMoved, W1=new PM pid).
	PmWaitProgram
	// PmMigrateProgram: W0=LHID (0 = all guest programs), W1=1 to
	// destroy if no host found (-n) → Seg = gob MigrationReport.
	PmMigrateProgram
	// PmInitMigration: Seg = gob InitReq → W0=placeholder LHID,
	// W1=target system LH, W5=PM pid.
	PmInitMigration
	// PmQueryPrograms: → Seg = listing, one program per line.
	PmQueryPrograms
	// PmDestroyProgram: W0=LHID.
	PmDestroyProgram
	// PmAssumeMigration: W0=final LHID — the source's notice that the
	// incoming copy has assumed its identity and now belongs to this
	// manager.
	PmAssumeMigration
	// PmSuspendProgram: W0=LHID — freeze the program (the transparent
	// suspend of §2: "facilities for terminating, suspending and
	// debugging programs work independent of whether the program is
	// executing locally or remotely").
	PmSuspendProgram
	// PmResumeProgram: W0=LHID — unfreeze a suspended program.
	PmResumeProgram
	// PmRenewLease: the originating manager's session heartbeat.
	// W0=LHID → W1=1 (running, lease renewed) or W1=2 (exited, W2=exit
	// code); CodeMoved with W1=new manager pid and W2=new LHID (0: LHID
	// unchanged) when the program moved; CodeNotFound when this manager
	// knows nothing of it.
	PmRenewLease
	// PmLocateProgram: group query during session recovery — W0=LHID.
	// Only the manager currently *running* the program (not an incoming
	// receptacle) replies, with W0=its system LH and W5=its pid; every
	// other manager stays silent so the first group reply is
	// authoritative. This is the double-execution guard: a supervisor
	// never re-executes a program some host still runs.
	PmLocateProgram
)

// CodeMoved is the WaitProgram reply code when the program migrated; W1
// holds the program manager now responsible.
const CodeMoved uint16 = 100

// InitReq describes an incoming migration (§3.1.1): the target initializes
// descriptors for the new copy under a different logical-host id. SrcLH is
// the source's system logical host, which the destination's orphan-adoption
// watchdog probes before unfreezing an apparently abandoned copy — source
// *death* must be distinguished from source *unreachability* or the two
// hosts can end up running the same logical host (split-brain).
type InitReq struct {
	Name    string
	Guest   bool
	FinalLH vid.LHID
	SrcLH   vid.LHID
	Spaces  []kernel.SpaceDesc
	// Args and Stdout travel with the program so the receiving manager
	// can re-execute it from its file-server image if it must later be
	// evicted and no host will accept a migration.
	Args   []string
	Stdout vid.PID
}

// EncodeInitReq serializes an InitReq.
func EncodeInitReq(r *InitReq) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// DecodeInitReq parses an InitReq.
func DecodeInitReq(b []byte) (*InitReq, error) {
	var r InitReq
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Migrator is the pluggable migration engine (implemented by the core
// package). It runs on the source host's migration worker task and moves
// lh to another host, returning a report.
type Migrator interface {
	Migrate(ctx *kernel.ProcCtx, pm *PM, lh *kernel.LogicalHost) (report []byte, newPM vid.PID, err error)
}

// PhaseTagged is implemented by migration errors that know which phase
// they died in; the program manager relays the tag in its refusal reply
// (W0 = phase+1, W1 = pre-copy round) so requesters on other hosts can
// reconstruct a typed error.
type PhaseTagged interface {
	PhaseTag() (phase, round uint32)
}

// progInfo tracks one program.
type progInfo struct {
	lh       *kernel.LogicalHost
	name     string
	args     []string
	stdout   vid.PID
	guest    bool
	incoming bool     // migration receptacle, not yet assumed
	srcLH    vid.LHID // migration source's system LH (incoming only)
	waiters  []*ipc.Req
}

// movedTo records where a program this manager used to run went, so late
// waiters and lease renewals can be redirected instead of answered
// not-found.
type movedTo struct {
	pm vid.PID
	lh vid.LHID // LHID after the move (== old id for migration)
}

// PM is one workstation's program manager.
type PM struct {
	host     *kernel.Host
	proc     *kernel.Process
	Migrator Migrator
	// Selector, when wired (by core), runs host selection for session
	// recovery and eviction re-execution.
	Selector *sched.Selector
	// SelectDally, when non-zero (set by core for large clusters), is the
	// window over which replies to *multicast* select queries are spread:
	// each willing host sleeps a deterministic slot derived from its
	// station address and the query's transaction id before answering.
	// Without it, every idle host finishes the probe evaluation at the
	// same instant and the reply implosion jams the shared segment.
	SelectDally time.Duration

	progs  map[vid.LHID]*progInfo
	exited map[vid.LHID]uint32  // recently exited: exit codes for late waiters
	moved  map[vid.LHID]movedTo // migrated or re-executed away
	lost   map[vid.LHID]bool    // aborted guests (post-copy residue loss)

	reaper   *kernel.Process
	exits    []*kernel.LogicalHost
	migrateQ []*migrateJob
	worker   *kernel.Process
	adoptQ   []*adoptJob
	adopter  *kernel.Process

	sessions map[vid.LHID]*session // supervised remote jobs, by original LHID
	alias    map[vid.LHID]vid.LHID // later incarnations' LHIDs → original
	reapQ    []*reapJob            // remote programs to destroy, with retry
	sup      SupStats
	lease    *kernel.Process
	home     *rsm.Replica  // home-group replica; nil when unreplicated
	homePend []SessionInfo // Supervise records awaiting group resubmission

	fsPID vid.PID // cached file-server pid
}

// adoptJob is one orphan-adoption candidate: an incoming copy that assumed
// its final identity but whose source has not finished the hand-over.
type adoptJob struct {
	final       vid.LHID
	lh          *kernel.LogicalHost
	srcLH       vid.LHID
	silentSince sim.Time // start of the current probe-silence run (0: none)
}

type migrateJob struct {
	req  *ipc.Req
	lhid vid.LHID
	kill bool
}

// Start spawns the program manager on a host.
func Start(h *kernel.Host) *PM {
	pm := &PM{
		host:     h,
		progs:    make(map[vid.LHID]*progInfo),
		exited:   make(map[vid.LHID]uint32),
		moved:    make(map[vid.LHID]movedTo),
		lost:     make(map[vid.LHID]bool),
		sessions: make(map[vid.LHID]*session),
		alias:    make(map[vid.LHID]vid.LHID),
	}
	pm.proc = h.SpawnServer("progmgr", 64*1024, pm.run)
	h.RegisterWellKnown(vid.IdxProgramManager, pm.proc.PID())
	h.JoinGroup(vid.GroupProgramManagers, pm.proc.PID())
	h.OnLHEmpty = pm.onLHEmpty
	h.OnLHIDChanged = pm.onLHIDChanged
	pm.reaper = h.SpawnServer("pm-reaper", 4096, pm.reap)
	pm.worker = h.SpawnServer("pm-migrate", 16*1024, pm.migrateLoop)
	pm.adopter = h.SpawnServer("pm-adopt", 8*1024, pm.adoptLoop)
	pm.lease = h.SpawnServer("pm-lease", 16*1024, pm.leaseLoop)
	return pm
}

// PID returns the program manager's process id.
func (pm *PM) PID() vid.PID { return pm.proc.PID() }

// Host returns the managed workstation.
func (pm *PM) Host() *kernel.Host { return pm.host }

// ProgMeta returns a tracked program's invocation metadata (arguments and
// output sink) so the migration engine can forward it to the receiving
// manager.
func (pm *PM) ProgMeta(lhid vid.LHID) (args []string, stdout vid.PID) {
	if pi := pm.progs[lhid]; pi != nil {
		return pi.args, pi.stdout
	}
	return nil, vid.Nil
}

// Programs returns the LHIDs of programs this manager tracks (excluding
// incoming receptacles).
func (pm *PM) Programs() []vid.LHID {
	var out []vid.LHID
	for id, pi := range pm.progs {
		if !pi.incoming {
			out = append(out, id)
		}
	}
	return out
}

// onLHEmpty runs in the exiting process's context; queue the teardown for
// the reaper task.
func (pm *PM) onLHEmpty(lh *kernel.LogicalHost) {
	pm.exits = append(pm.exits, lh)
}

// replyAsPM answers a request that arrived on the program manager's own
// service port from a worker process's context. Workers must NOT reply on
// their own ports (ctx.Reply): the reply would leave the PM port's open
// entry and reply cache untouched, so if the one reply packet is lost the
// waiter's retransmissions keep hitting the PM port, are answered with
// reply-pending forever, and the transaction never completes.
func (pm *PM) replyAsPM(ctx *kernel.ProcCtx, r *ipc.Req, msg vid.Message) {
	pm.proc.Port().Reply(ctx.Task(), r, msg)
}

func (pm *PM) reap(ctx *kernel.ProcCtx) {
	for {
		if len(pm.exits) == 0 {
			ctx.Sleep(pollInterval)
			continue
		}
		lh := pm.exits[0]
		pm.exits = pm.exits[1:]
		pi := pm.progs[lh.ID()]
		code := lh.ExitCode()
		ctx.Compute(params.EnvDestroyCPU)
		pm.host.DestroyLH(lh)
		pm.exited[lh.ID()] = code
		if pi != nil {
			delete(pm.progs, lh.ID())
			for _, w := range pi.waiters {
				pm.replyAsPM(ctx, w, vid.Message{Op: PmWaitProgram, W: [6]uint32{code}})
			}
		}
	}
}

// AbortGuest destroys a hosted guest whose memory can no longer be
// completed — a post-copy residue loss: the source receptacle died before
// the destination held every page. Unlike a normal exit the program is
// recorded nowhere afterwards — not in exited, not in moved — so the
// owning session's next lease renewal sees not-found, expires the lease,
// and re-executes the program from its file-server image. Pending waiters
// are bounced with CodeAborted; the session layer re-answers them after
// recovery. Called from the faulting process's context (t).
func (pm *PM) AbortGuest(t *sim.Task, lhid vid.LHID) {
	pi := pm.progs[lhid]
	if pi == nil {
		return
	}
	delete(pm.progs, lhid)
	pm.lost[lhid] = true
	for _, w := range pi.waiters {
		pm.proc.Port().Reply(t, w, vid.ErrMsg(vid.CodeAborted))
	}
	pm.host.DestroyLH(pi.lh)
}

// MigrateAway is the programmatic equivalent of PmMigrateProgram for
// callers on the same host (the owner-returns scenario): it queues the
// migration and returns immediately.
func (pm *PM) MigrateAway(lhid vid.LHID, kill bool) {
	pm.migrateQ = append(pm.migrateQ, &migrateJob{lhid: lhid, kill: kill})
}

func (pm *PM) migrateLoop(ctx *kernel.ProcCtx) {
	for {
		if len(pm.migrateQ) == 0 {
			ctx.Sleep(pollInterval)
			continue
		}
		job := pm.migrateQ[0]
		pm.migrateQ = pm.migrateQ[1:]
		reply := pm.doMigrate(ctx, job)
		if job.req != nil {
			pm.proc.Port().Reply(ctx.Task(), job.req, reply)
		}
	}
}

func (pm *PM) doMigrate(ctx *kernel.ProcCtx, job *migrateJob) vid.Message {
	pi := pm.progs[job.lhid]
	if pi == nil || pi.incoming {
		return vid.ErrMsg(vid.CodeNotFound)
	}
	if pm.Migrator == nil {
		return vid.ErrMsg(vid.CodeRefused)
	}
	if pi.lh.Frozen() {
		// A suspended program stays where it is; resume it first. (The
		// migration engine manages freezing itself.)
		return vid.ErrMsg(vid.CodeRefused)
	}
	report, newPM, err := pm.Migrator.Migrate(ctx, pm, pi.lh)
	if err != nil {
		if job.kill {
			// migrateprog -n: destroy the program when no host accepts it.
			pm.host.DestroyLH(pi.lh)
			delete(pm.progs, job.lhid)
			pm.exited[job.lhid] = 0xDEAD
			for _, w := range pi.waiters {
				pm.replyAsPM(ctx, w, vid.Message{Op: PmWaitProgram, W: [6]uint32{0xDEAD}})
			}
			return vid.Message{Op: PmMigrateProgram, W: [6]uint32{1}}
		}
		if job.req == nil && pm.reexecElsewhere(ctx, job.lhid, pi) {
			// Eviction (owner-returns) that could not migrate: the guest
			// was re-executed from its image on another host instead.
			return vid.Message{Op: PmMigrateProgram, W: [6]uint32{2}}
		}
		if job.req == nil {
			// Last resort for an eviction: suspend the guest and tell its
			// owner, rather than leaving it consuming the workstation.
			pm.host.Freeze(pi.lh)
			if pi.stdout != vid.Nil {
				ctx.Send(pi.stdout, vid.Message{Op: vvm.OpWriteLine, Seg: []byte(
					fmt.Sprintf("[progmgr %s] %s: eviction found no host; suspended", pm.host.Name, pi.name)),
				})
			}
		}
		reply := vid.ErrMsg(vid.CodeRefused)
		var pt PhaseTagged
		if errors.As(err, &pt) {
			reply.W[0], reply.W[1] = pt.PhaseTag()
		}
		return reply
	}
	// The program now belongs to the new host's manager: release local
	// bookkeeping, leave a forwarding record, and redirect waiters.
	delete(pm.progs, job.lhid)
	pm.RecordMoved(job.lhid, newPM, job.lhid)
	for _, w := range pi.waiters {
		pm.replyAsPM(ctx, w, vid.Message{Op: PmWaitProgram, Code: CodeMoved, W: [6]uint32{0, uint32(newPM)}})
	}
	return vid.Message{Op: PmMigrateProgram, Seg: report}
}

// RecordMoved notes that a program this manager used to run is now with
// another manager (migration or eviction re-execution); late waiters and
// lease renewals are redirected there with CodeMoved.
func (pm *PM) RecordMoved(lhid vid.LHID, newPM vid.PID, newLH vid.LHID) {
	pm.moved[lhid] = movedTo{pm: newPM, lh: newLH}
}

// movedReply builds the CodeMoved redirect for a waiter or lease renewal
// that asked about lhid: W1 = the responsible manager, W2 = the program's
// LHID there (0 when unchanged).
func movedReply(op uint16, lhid vid.LHID, mv movedTo) vid.Message {
	w2 := uint32(0)
	if mv.lh != 0 && mv.lh != lhid {
		w2 = uint32(mv.lh)
	}
	return vid.Message{Op: op, Code: CodeMoved, W: [6]uint32{0, uint32(mv.pm), w2}}
}

// reexecElsewhere re-executes an evicted guest from its file-server image
// on a freshly selected host — the supervision fallback when migration
// cannot find a receptacle but the owner wants the guest gone. The old
// copy's partial state is lost (the program restarts), but its output is
// deduplicated by the display server via the adoption notice, so the
// stream the user sees stays exactly-once.
func (pm *PM) reexecElsewhere(ctx *kernel.ProcCtx, lhid vid.LHID, pi *progInfo) bool {
	if pm.Selector == nil || pi.name == "" {
		return false
	}
	minMem := pi.lh.MemUsed()
	if minMem < 256*1024 {
		minMem = 256 * 1024
	}
	l, err := pm.Selector.Select(ctx, minMem, pm.host.SystemLH().ID())
	if err != nil {
		return false
	}
	seg := []byte(strings.Join(append([]string{pi.name}, pi.args...), "\x00"))
	cm, err := ctx.Send(l.PM, vid.Message{
		Op: PmCreateProgram, W: [6]uint32{uint32(pi.stdout), 1}, Seg: seg,
	})
	if err != nil || !cm.OK() {
		return false
	}
	newPID, newLH := vid.PID(cm.W[0]), vid.LHID(cm.W[1])
	if pi.stdout != vid.Nil {
		// Tell the output sink about the incarnation change before the new
		// copy can emit a line, so replayed output is suppressed.
		ctx.Send(pi.stdout, vid.Message{Op: supOpAdopt, W: [6]uint32{uint32(lhid), uint32(newLH)}})
	}
	sm, err := ctx.Send(kernel.KernelServerPID(newLH), vid.Message{
		Op: kernel.KsStartProcess, W: [6]uint32{uint32(newPID)},
	})
	if err != nil || !sm.OK() {
		if _, e := ctx.Send(l.PM, vid.Message{
			Op: PmDestroyProgram, W: [6]uint32{uint32(newLH)},
		}); e != nil {
			pm.ReapRemote(l.PM, newLH)
		}
		return false
	}
	pm.host.DestroyLH(pi.lh)
	delete(pm.progs, lhid)
	pm.RecordMoved(lhid, l.PM, newLH)
	pm.sup.ExecRestarts++
	pm.host.Trace().Publish(trace.Event{
		At: ctx.Now(), Host: uint16(pm.host.NIC.MAC()), Kind: trace.EvExecRestart,
		LH: newLH, Peer: l.SystemLH.Station(),
	})
	for _, w := range pi.waiters {
		pm.replyAsPM(ctx, w, movedReply(PmWaitProgram, lhid, movedTo{pm: l.PM, lh: newLH}))
	}
	return true
}

// run is the program manager's main service loop.
func (pm *PM) run(ctx *kernel.ProcCtx) {
	port := pm.proc.Port()
	for {
		req := ctx.Receive()
		m := req.Msg
		switch m.Op {
		case PmQueryHost:
			if !strings.EqualFold(m.SegString(), pm.host.Name) {
				port.Drop(req)
				continue
			}
			ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{
				uint32(pm.host.SystemLH().ID()), 0, 0, 0, 0, uint32(pm.PID()),
			}})

		case PmSelectHost:
			// Evaluate availability: CPU idle at program priorities and
			// enough free memory. The evaluation cost dominates the
			// paper's 23 ms host-selection time. W1..W4 carry excluded
			// system LHs: the requester's own host plus destinations that
			// already failed this migration. W5 carries sched query
			// flags: a relaxed query is answered with the load even when
			// the CPU is busy, and a unicast probe earns an explicit
			// refusal where a multicast would get silence.
			flags := m.W[5] & 0xFFFF
			refuse := func() {
				if flags&sched.QueryUnicast != 0 {
					ctx.Reply(req, vid.ErrMsg(vid.CodeRefused))
				} else {
					port.Drop(req)
				}
			}
			// Reply thinning: on large clusters the query's high flag half
			// carries a permille; most managers hash themselves out before
			// paying the probe evaluation, bounding both the cluster-wide
			// evaluation cost and the reply implosion at the submitter.
			if permille := m.W[5] >> 16; permille > 0 && flags&sched.QueryUnicast == 0 &&
				replyLottery(uint64(pm.host.NIC.MAC()), req.TxID()) >= permille {
				port.Drop(req)
				continue
			}
			self := uint32(pm.host.SystemLH().ID())
			if m.W[1] == self || m.W[2] == self || m.W[3] == self || m.W[4] == self {
				refuse()
				continue
			}
			ctx.Compute(params.SelectProbeCPU)
			willing := pm.host.MemFree() >= m.W[0] &&
				(flags&sched.QueryRelaxed != 0 || pm.host.CPU.Idle())
			if !willing {
				refuse()
				continue
			}
			if pm.SelectDally > 0 && flags&sched.QueryUnicast == 0 {
				ctx.Sleep(dallySlot(uint64(pm.host.NIC.MAC()), req.TxID(), pm.SelectDally))
			}
			ctx.Reply(req, vid.Message{Op: m.Op, W: pm.host.LoadWords()})

		case PmCreateProgram:
			ctx.Reply(req, pm.createProgram(ctx, m))

		case PmWaitProgram:
			if m.W[5]&PmWaitHome != 0 && !pm.homeLeading() {
				// Home-group wait: only the current leader answers or holds
				// the waiter; every other member stays silent so the agent's
				// group send lands on exactly one authority.
				port.Drop(req)
				continue
			}
			lhid := vid.LHID(m.W[0])
			if pi := pm.progs[lhid]; pi != nil && !pi.incoming {
				pi.waiters = append(pi.waiters, req)
				continue // deferred reply
			}
			if code, ok := pm.exited[lhid]; ok {
				ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{code}})
				continue
			}
			if mv, ok := pm.moved[lhid]; ok {
				ctx.Reply(req, movedReply(m.Op, lhid, mv))
				continue
			}
			if s := pm.sessionFor(lhid); s != nil {
				// This manager supervises the job: redirect the waiter to
				// the hosting manager, or — while the session is broken —
				// hold the waiter until recovery resolves it, so a waiter
				// cannot bounce between managers during a fail-over.
				switch s.state {
				case sessionActive:
					ctx.Reply(req, movedReply(m.Op, lhid, movedTo{pm: s.hostPM, lh: s.cur}))
				case sessionDone:
					ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{s.exitCode}})
				case sessionFailed:
					ctx.Reply(req, vid.Message{Op: m.Op, Code: vid.CodeAborted})
				default: // broken: deferred until recovery resolves
					s.waiters = append(s.waiters, req)
				}
				continue
			}
			if pm.lost[lhid] {
				// Torn down administratively (post-copy residue loss): the
				// waiter re-asks its home supervisor, which resolves the
				// session once the lease breaks.
				ctx.Reply(req, vid.ErrMsg(vid.CodeAborted))
				continue
			}
			ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))

		case PmRenewLease:
			lhid := vid.LHID(m.W[0])
			if pm.progs[lhid] != nil {
				// Running here (an incoming receptacle also renews: the
				// program is mid-migration, not lost).
				ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{0, 1}})
				continue
			}
			if mv, ok := pm.moved[lhid]; ok {
				ctx.Reply(req, movedReply(m.Op, lhid, mv))
				continue
			}
			if code, ok := pm.exited[lhid]; ok {
				ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{0, 2, code}})
				continue
			}
			ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))

		case PmSupervise:
			// Register a session with the home group (group-addressed): the
			// leader commits the record and answers; followers stay silent.
			if pm.home == nil || !pm.home.IsLeader() {
				port.Drop(req)
				continue
			}
			si, err := DecodeSessionInfo(m.Seg)
			if err != nil {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			if pm.homeCommit(ctx, &hgCmd{Kind: hgSupervise, Sess: si, At: int64(ctx.Now())}) != nil {
				ctx.Reply(req, vid.ErrMsg(vid.CodeTimeout))
				continue
			}
			ctx.Reply(req, vid.Message{Op: m.Op})

		case PmNoteExited:
			// The agent's Wait saw the exit; commit it so no replica keeps
			// renewing the dead session after a fail-over.
			if pm.home == nil || !pm.home.IsLeader() {
				port.Drop(req)
				continue
			}
			if s := pm.sessionFor(vid.LHID(m.W[0])); s != nil &&
				s.state != sessionDone && s.state != sessionFailed {
				if pm.homeCommit(ctx, &hgCmd{Kind: hgDone, Orig: s.orig, Code: m.W[1]}) != nil {
					ctx.Reply(req, vid.ErrMsg(vid.CodeTimeout))
					continue
				}
			}
			ctx.Reply(req, vid.Message{Op: m.Op})

		case PmLocateProgram:
			if pi := pm.progs[vid.LHID(m.W[0])]; pi != nil && !pi.incoming {
				ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{
					uint32(pm.host.SystemLH().ID()), 0, 0, 0, 0, uint32(pm.PID()),
				}})
				continue
			}
			port.Drop(req) // silence: only the running host may answer

		case PmMigrateProgram:
			lhid := vid.LHID(m.W[0])
			if lhid == 0 {
				// migrateprog with no program: remove all guest programs.
				for id, pi := range pm.progs {
					if pi.guest && !pi.incoming {
						pm.migrateQ = append(pm.migrateQ, &migrateJob{lhid: id, kill: m.W[1] != 0})
					}
				}
				ctx.Reply(req, vid.Message{Op: m.Op})
				continue
			}
			pm.migrateQ = append(pm.migrateQ, &migrateJob{req: req, lhid: lhid, kill: m.W[1] != 0})

		case PmInitMigration:
			ctx.Reply(req, pm.initMigration(ctx, m))

		case PmAssumeMigration:
			pm.AssumeIncoming(vid.LHID(m.W[0]))
			ctx.Reply(req, vid.Message{Op: m.Op})

		case PmSuspendProgram, PmResumeProgram:
			pi := pm.progs[vid.LHID(m.W[0])]
			if pi == nil || pi.incoming {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			if m.Op == PmSuspendProgram {
				pm.host.Freeze(pi.lh)
			} else {
				pm.host.Unfreeze(pi.lh, false)
			}
			ctx.Reply(req, vid.Message{Op: m.Op})

		case PmQueryPrograms:
			var sb strings.Builder
			for _, lh := range pm.host.LHs() {
				if lh.System() {
					continue
				}
				fmt.Fprintf(&sb, "%v %s guest=%v frozen=%v mem=%dK\n",
					lh.ID(), lh.Name(), lh.Guest(), lh.Frozen(), lh.MemUsed()/1024)
			}
			ctx.Reply(req, vid.Message{Op: m.Op, Seg: []byte(sb.String())})

		case PmDestroyProgram:
			lhid := vid.LHID(m.W[0])
			pi := pm.progs[lhid]
			if pi == nil {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			ctx.Compute(params.EnvDestroyCPU)
			pm.host.DestroyLH(pi.lh)
			delete(pm.progs, lhid)
			pm.exited[lhid] = 0xDEAD
			for _, w := range pi.waiters {
				ctx.Reply(w, vid.Message{Op: PmWaitProgram, W: [6]uint32{0xDEAD}})
			}
			ctx.Reply(req, vid.Message{Op: m.Op})

		default:
			ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		}
	}
}

// createProgram sets up a new execution environment (§2.1): find the
// image on a file server, create the logical host and address space, load
// code and data, write the environment block, and create the initial
// process awaiting its creator's start.
func (pm *PM) createProgram(ctx *kernel.ProcCtx, m vid.Message) vid.Message {
	parts := strings.Split(m.SegString(), "\x00")
	progName := parts[0]
	args := parts[1:]
	guest := m.W[1] != 0
	stdout := vid.PID(m.W[0])

	imgBytes, fsPID, err := pm.loadFile(ctx, progName)
	if err != nil {
		if ce, ok := err.(vid.CodeError); ok {
			return vid.ErrMsg(uint16(ce))
		}
		return vid.ErrMsg(vid.CodeNotFound)
	}
	img, err := image.Decode(imgBytes)
	if err != nil {
		return vid.ErrMsg(vid.CodeBadRequest)
	}

	// Environment setup cost (address space, process, argument and
	// environment initialization — calibrated with destroy to the
	// paper's 40 ms).
	ctx.Compute(params.EnvSetupCPU)

	lh := pm.host.CreateLH(progName, guest)
	as, err := lh.CreateSpace(img.SpaceSize)
	if err != nil {
		pm.host.DestroyLH(lh)
		return vid.ErrMsg(vid.CodeNoMemory)
	}
	if len(img.Code) > 0 {
		if err := as.WriteAt(vvm.CodeBase, img.Code); err != nil {
			pm.host.DestroyLH(lh)
			return vid.ErrMsg(vid.CodeBadRequest)
		}
	}
	if len(img.Data) > 0 {
		if err := as.WriteAt(vvm.CodeBase+uint32(len(img.Code)), img.Data); err != nil {
			pm.host.DestroyLH(lh)
			return vid.ErrMsg(vid.CodeBadRequest)
		}
	}
	heap := vvm.CodeBase + uint32(len(img.Code)+len(img.Data))
	heap = (heap + 1023) &^ 1023
	env := image.EnvBlock{
		Stdout:     stdout,
		FileServer: fsPID,
		Args:       append([]string{progName}, args...),
		HeapBase:   heap,
		// "a name cache for commonly used global names" (§2.1): seeded
		// with the bindings this manager knows; migrates with the
		// program's address space (§6).
		NameCache: map[string]vid.PID{
			"fileserver": fsPID,
			"stdout":     stdout,
		},
	}
	if err := as.WriteAt(0, env.Encode()); err != nil {
		pm.host.DestroyLH(lh)
		return vid.ErrMsg(vid.CodeBadRequest)
	}
	// A freshly loaded program starts with clean dirty bits: its code and
	// initialized data are "portions that are never modified" (§3.1.2).
	as.ClearDirty()

	p := lh.NewProcess(as.ID, img.Kind, kernel.Regs{})
	pm.progs[lh.ID()] = &progInfo{lh: lh, name: progName, args: args, stdout: stdout, guest: guest}
	return vid.Message{Op: PmCreateProgram, W: [6]uint32{uint32(p.PID()), uint32(lh.ID())}}
}

// loadFile fetches a file from a network file server in 32 KB reads.
// Reads pin the replica that answered the stat; if that server dies or
// loses authority mid-load, the loop re-resolves once through the
// file-server group and resumes the same chunk — an image load survives a
// file-server crash instead of aborting the execution request.
func (pm *PM) loadFile(ctx *kernel.ProcCtx, name string) ([]byte, vid.PID, error) {
	fs := pm.fsPID
	st, err := ctx.Send(orGroup(fs), vid.Message{
		Op: fsOpStat, W: [6]uint32{0, 0, 0, 0, 0, unicastFlag(fs)}, Seg: []byte(name),
	})
	if err != nil || !st.OK() {
		// Retry through the group in case a cached server died. A replicated
		// store can also be leaderless mid-election (every replica silent),
		// so silence and transport errors get a few spaced attempts; a
		// definitive reply (e.g. no such file) is never retried.
		pm.fsPID = vid.Nil
		for attempt := 0; ; attempt++ {
			st, err = ctx.Send(vid.GroupFileServers, vid.Message{Op: fsOpStat, Seg: []byte(name)})
			if err == nil || attempt == 2 {
				break
			}
			ctx.Sleep(500 * time.Millisecond)
		}
		if err != nil || !st.OK() {
			return nil, vid.Nil, fsError(st, err)
		}
	}
	if pid := vid.PID(st.W[5]); pid != vid.Nil {
		pm.fsPID = pid
	}
	size := int(st.W[0])
	out := make([]byte, 0, size)
	for off := 0; off < size; off += vid.SegMax {
		n := size - off
		if n > vid.SegMax {
			n = vid.SegMax
		}
		read := vid.Message{
			Op: fsOpRead, W: [6]uint32{uint32(off), uint32(n), 0, 0, 0, fsUnicast},
			Seg: []byte(name),
		}
		r, err := ctx.Send(pm.fsPID, read)
		if err != nil || !r.OK() {
			// Pinned server gone mid-read: re-stat through the group to find
			// a live authoritative replica, then retry this chunk once.
			pm.fsPID = vid.Nil
			st, err2 := ctx.Send(vid.GroupFileServers, vid.Message{Op: fsOpStat, Seg: []byte(name)})
			if err2 != nil || !st.OK() {
				return nil, vid.Nil, fsError(r, err)
			}
			if pid := vid.PID(st.W[5]); pid != vid.Nil {
				pm.fsPID = pid
			}
			read.W[5] = unicastFlag(pm.fsPID)
			if r, err = ctx.Send(orGroup(pm.fsPID), read); err != nil || !r.OK() {
				return nil, vid.Nil, fsError(r, err)
			}
		}
		out = append(out, r.Seg...)
	}
	return out, pm.fsPID, nil
}

// dallySlot spreads multicast select replies over a window: a
// deterministic hash of (station, transaction) picks the slot, so a
// retransmitted query meets the same reply schedule and double runs stay
// byte-identical.
func dallySlot(mac uint64, txid uint32, window time.Duration) time.Duration {
	us := uint64(window / time.Microsecond)
	if us == 0 {
		return 0
	}
	return time.Duration(selectMix(mac, txid)%us) * time.Microsecond
}

// replyLottery draws this host's deterministic permille ticket for a
// thinned multicast query. Salted differently from dallySlot so the
// sample of repliers and their dally slots stay uncorrelated.
func replyLottery(mac uint64, txid uint32) uint32 {
	return uint32(selectMix(mac^0xA5A5A5A5A5A5A5A5, txid) % 1000)
}

// selectMix hashes (station, transaction) into a well-spread 64-bit
// value; retransmissions reuse the TxID, so a host's draw is stable
// across resends of the same query.
func selectMix(mac uint64, txid uint32) uint64 {
	h := mac*0x9E3779B97F4A7C15 ^ uint64(txid)*0xC2B2AE3D27D4EB4F
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// fsError keeps the transport's verdict on a failed file-server RPC. A
// congested or dead server yields CodeTimeout/CodeHostDown — transient
// conditions the exec layer may retry; only the server's own answer is
// allowed to say an image does not exist. Collapsing every failure to
// not-found (the old behavior) made a saturated file server
// indistinguishable from a typo in the program name.
func fsError(m vid.Message, err error) error {
	if err != nil {
		return err
	}
	if m.Code == vid.CodeOK {
		return vid.CodeError(vid.CodeNotFound)
	}
	return vid.CodeError(m.Code)
}

func orGroup(pid vid.PID) vid.PID {
	if pid == vid.Nil {
		return vid.GroupFileServers
	}
	return pid
}

// File-server op codes, duplicated here to avoid importing fileserver
// (which imports kernel; no cycle actually — but keep the wire contract
// explicit).
const (
	fsOpStat uint16 = 0x50
	fsOpRead uint16 = 0x51

	// fsUnicast in a request's W5 tells a replicated file server the sender
	// addressed it directly, so a non-authoritative replica must answer
	// CodeNotLeader instead of staying silent (fileserver.FsUnicast).
	fsUnicast uint32 = 1
)

// unicastFlag returns the W5 unicast marker when pid names one server (as
// opposed to the file-server group).
func unicastFlag(pid vid.PID) uint32 {
	if pid == vid.Nil {
		return 0
	}
	return fsUnicast
}

// initMigration is the receiving side of §3.1.1: allocate a placeholder
// logical host under a different id, create its address spaces, freeze it,
// and remember the identity it will assume.
func (pm *PM) initMigration(ctx *kernel.ProcCtx, m vid.Message) vid.Message {
	req, err := DecodeInitReq(m.Seg)
	if err != nil {
		return vid.ErrMsg(vid.CodeBadRequest)
	}
	var need uint32
	for _, sd := range req.Spaces {
		need += sd.Size
	}
	if need > pm.host.MemFree() {
		return vid.ErrMsg(vid.CodeNoMemory)
	}
	ctx.Compute(params.KernelOpCPU)
	lh := pm.host.CreateLH(req.Name, req.Guest)
	for _, sd := range req.Spaces {
		if _, err := lh.InstallSpace(sd.ID, sd.Size); err != nil {
			pm.host.DestroyLH(lh)
			return vid.ErrMsg(vid.CodeNoMemory)
		}
	}
	pm.host.Freeze(lh)
	pm.progs[req.FinalLH] = &progInfo{
		lh: lh, name: req.Name, args: req.Args, stdout: req.Stdout,
		guest: req.Guest, incoming: true, srcLH: req.SrcLH,
	}
	// A receptacle whose source dies mid-copy never assumes its final
	// identity; garbage-collect it once the transfer goes idle so it
	// cannot pin memory forever.
	tempID := lh.ID()
	pm.host.Eng.After(params.ReceptacleTTL, func() {
		pm.reapReceptacle(req.FinalLH, tempID)
	})
	return vid.Message{Op: m.Op, W: [6]uint32{
		uint32(lh.ID()), uint32(pm.host.SystemLH().ID()), 0, 0, 0, uint32(pm.PID()),
	}}
}

// reapReceptacle destroys an incoming receptacle that never assumed its
// final identity and whose transfer has gone idle for ReceptacleTTL (the
// source died before the swap). The TTL is an *inactivity* timeout: while
// page runs are still arriving — a legitimately slow copy under heavy loss
// and retransmission — the reaper re-arms instead of killing a live
// migration mid-transfer.
func (pm *PM) reapReceptacle(final, tempID vid.LHID) {
	if pm.host.Crashed() {
		return
	}
	pi := pm.progs[final]
	if pi == nil || !pi.incoming || pi.lh.ID() != tempID {
		return // assumed, swapped, or already torn down
	}
	if cur, ok := pm.host.LookupLH(tempID); !ok || cur != pi.lh {
		return
	}
	if idle := pm.host.Eng.Now().Sub(pi.lh.LastWriteAt()); idle < params.ReceptacleTTL {
		pm.host.Eng.After(params.ReceptacleTTL-idle, func() {
			pm.reapReceptacle(final, tempID)
		})
		return
	}
	pm.host.DestroyLH(pi.lh)
	delete(pm.progs, final)
}

// onLHIDChanged runs when a resident logical host assumes a new identity.
// For an incoming migration receptacle this is the atomic swap of §3.1.1:
// from here on the new copy owns the identity, so if the source dies
// before sending its unfreeze/assume messages, the destination must
// finish the hand-over itself (source death after the swap leaves the new
// copy authoritative, §3.1.3). Adoption is handed to the pm-adopt worker,
// which first *probes* the source: a source that is alive but slow or
// unreachable must keep the original authoritative.
func (pm *PM) onLHIDChanged(lh *kernel.LogicalHost, old vid.LHID) {
	pi := pm.progs[lh.ID()]
	if pi == nil || !pi.incoming || pi.lh != lh {
		return
	}
	job := &adoptJob{final: lh.ID(), lh: lh, srcLH: pi.srcLH}
	pm.host.Eng.After(params.OrphanAdoptDelay, func() { pm.adoptQ = append(pm.adoptQ, job) })
}

// adoptLoop is the pm-adopt worker: it serializes orphan-adoption checks,
// each of which may block in a liveness probe of the migration source.
func (pm *PM) adoptLoop(ctx *kernel.ProcCtx) {
	for {
		if len(pm.adoptQ) == 0 {
			ctx.Sleep(pollInterval)
			continue
		}
		job := pm.adoptQ[0]
		pm.adoptQ = pm.adoptQ[1:]
		pm.checkOrphan(ctx, job)
	}
}

// checkOrphan decides the fate of a post-swap copy whose source has not
// finished the hand-over. In the normal case the source has long since
// unfrozen the copy and sent PmAssumeMigration, making this a no-op.
// Otherwise the copy owns the identity but is still frozen, and the
// destination must distinguish source *death* (adopt: the new copy is
// authoritative, §3.1.3) from source *unreachability* (hold off: the live
// source will abort its ~5 s send and unfreeze the original, and adopting
// too would run the same logical host twice). It probes the source kernel
// for the migrated LHID:
//
//   - source answers "resident, frozen": hand-over still in flight — check
//     again later;
//   - source answers "resident, unfrozen": the source aborted and the
//     original is authoritative — discard the local copy;
//   - source answers "not resident": the source finished (its unfreeze or
//     assume messages were lost) or rebooted (the original died with it) —
//     adopt;
//   - no answer for a continuous OrphanSilence window (≈10 s, comfortably
//     beyond the source's own send abort): presume the source dead — adopt.
//     The window is enforced by the clock, not by counting probe failures:
//     the failure detector fails probes to a suspected station within a
//     retransmission tick, so counting aborts would collapse the guard to
//     well under a second.
func (pm *PM) checkOrphan(ctx *kernel.ProcCtx, job *adoptJob) {
	live := func() bool {
		pi := pm.progs[job.final]
		if pi == nil || !pi.incoming || pi.lh != job.lh {
			return false // assumed or torn down meanwhile
		}
		cur, ok := pm.host.LookupLH(job.final)
		return ok && cur == job.lh
	}
	if !live() {
		return
	}
	if job.srcLH != 0 {
		m, err := ctx.Send(kernel.KernelServerPID(job.srcLH), vid.Message{
			Op: kernel.KsQueryLH, W: [6]uint32{uint32(job.final)},
		})
		if !live() { // the probe blocked; the hand-over may have finished
			return
		}
		switch {
		case err == nil && m.OK() && m.W[3] != 0:
			// Original still frozen at the source: migration in flight.
			job.silentSince = 0
			pm.host.Eng.After(params.OrphanAdoptDelay, func() {
				pm.adoptQ = append(pm.adoptQ, job)
			})
			return
		case err == nil && m.OK():
			// Original resident and running: the source aborted the
			// migration after the swap; defer to it and discard the copy.
			pm.host.DestroyLH(job.lh)
			delete(pm.progs, job.final)
			return
		case err != nil:
			if job.silentSince == 0 {
				job.silentSince = ctx.Now()
			}
			if ctx.Now().Sub(job.silentSince) < params.OrphanSilence {
				// Still inside the split-brain guard window: probe again
				// after a delay (probes to a suspected station fail in a
				// tick, so pace them rather than spinning).
				pm.host.Eng.After(params.OrphanAdoptDelay, func() {
					pm.adoptQ = append(pm.adoptQ, job)
				})
				return
			}
			// Prolonged silence: presume the source dead and adopt.
		default:
			// Source alive, original gone: the hand-over completed — adopt.
		}
	}
	pi := pm.progs[job.final]
	pi.incoming = false
	if job.lh.Frozen() {
		pm.host.Unfreeze(job.lh, true)
	}
}

// AssumeIncoming finalizes an incoming migration: the placeholder has been
// relabeled with the final LHID (by the kernel's ChangeLHID); mark the
// program as owned. If the copy is still frozen — the source's direct
// unfreeze was lost but its assume notice got through — finish the
// unfreeze here, broadcasting the binding.
func (pm *PM) AssumeIncoming(final vid.LHID) {
	pi := pm.progs[final]
	if pi == nil {
		return
	}
	pi.incoming = false
	if pi.lh.ID() == final && pi.lh.Frozen() {
		pm.host.Unfreeze(pi.lh, true)
	}
}

// pollInterval is how often the reaper and migration worker check their
// queues when idle.
const pollInterval = 10 * time.Millisecond

// ---------------------------------------------------------------------------
// Exec-session supervision: leases and automatic guest recovery.
//
// The paper's stance on residual dependencies (§2.3) is that a remotely
// executed program should depend only on its home environment, so losing
// the hosting workstation should be no worse for the *user* than losing a
// local program. The supervisor closes that loop: the originating program
// manager keeps a session record per remote job, heartbeats the hosting
// manager with PmRenewLease, and on lease loss re-executes the program
// from its file-server image on a freshly selected host, with bounded
// attempts. Output is deduplicated by the display server (the session's
// one home-bound dependency), so the user-visible stream is exactly-once.

// Session states.
type sessionState uint8

const (
	sessionActive sessionState = iota
	sessionBroken
	sessionDone
	sessionFailed
)

func (s sessionState) String() string {
	switch s {
	case sessionActive:
		return "active"
	case sessionBroken:
		return "broken"
	case sessionDone:
		return "done"
	default:
		return "failed"
	}
}

// session is the originating manager's record of one supervised remote
// job.
type session struct {
	orig        vid.LHID // LHID at first execution — the callers' handle
	cur         vid.LHID // current incarnation's LHID
	pid         vid.PID
	name        string
	args        []string
	stdout      vid.PID
	minMem      uint32
	hostPM      vid.PID
	hostLH      vid.LHID // hosting workstation's system LH
	incarnation int      // 1 for the first execution
	restarts    int      // recovery attempts consumed
	maxRestarts int
	state       sessionState
	exitCode    uint32
	lastRenew   sim.Time
	nextRetry   sim.Time // earliest next recovery attempt (broken only)
	waiters     []*ipc.Req
}

// SupStats counts a manager's supervision activity. The trace-event
// parity invariant holds cluster-wide: summed over all managers,
// LeaseExpires == EvLeaseExpire and ExecRestarts == EvExecRestart.
type SupStats struct {
	// LeaseRenews counts successful PmRenewLease round trips.
	LeaseRenews int64
	// LeaseExpires counts sessions broken by a failed or refused renewal
	// (detector-prompted breaks are not expiries and are not counted).
	LeaseExpires int64
	// ExecRestarts counts programs re-executed from their image — session
	// recoveries plus eviction re-executions.
	ExecRestarts int64
}

// SupStats snapshots the supervision counters.
func (pm *PM) SupStats() SupStats { return pm.sup }

// SessionInfo describes a remote job to Supervise.
type SessionInfo struct {
	LHID        vid.LHID
	PID         vid.PID
	Name        string
	Args        []string
	Stdout      vid.PID
	MinMem      uint32
	HostPM      vid.PID
	HostLH      vid.LHID
	MaxRestarts int
}

// Supervise registers a remote job for lease supervision. Called by the
// originating agent (same host) right after the program starts; with a
// home group the agent sends PmSupervise instead so the record lands in
// the replicated registry.
func (pm *PM) Supervise(si SessionInfo) {
	pm.registerSession(si, pm.host.Eng.Now())
}

// registerSession inserts a session record (direct path and home-group
// Apply share it so the two stay field-for-field identical).
func (pm *PM) registerSession(si SessionInfo, at sim.Time) {
	pm.sessions[si.LHID] = &session{
		orig: si.LHID, cur: si.LHID, pid: si.PID,
		name: si.Name, args: si.Args, stdout: si.Stdout, minMem: si.MinMem,
		hostPM: si.HostPM, hostLH: si.HostLH,
		incarnation: 1, maxRestarts: si.MaxRestarts,
		state: sessionActive, lastRenew: at,
	}
}

// sessionFor resolves a session by any of its incarnations' LHIDs.
func (pm *PM) sessionFor(lhid vid.LHID) *session {
	if orig, ok := pm.alias[lhid]; ok {
		lhid = orig
	}
	return pm.sessions[lhid]
}

// NoteExited marks a supervised session finished (the agent's Wait saw
// the exit), stopping further lease traffic.
func (pm *PM) NoteExited(lhid vid.LHID, code uint32) {
	if s := pm.sessionFor(lhid); s != nil && s.state != sessionDone && s.state != sessionFailed {
		s.state = sessionDone
		s.exitCode = code
	}
}

// NoteHostDown breaks every active session hosted on the crashed station;
// the lease worker recovers them immediately instead of waiting out the
// next renewal.
func (pm *PM) NoteHostDown(mac uint16) {
	for _, s := range pm.sessions {
		if s.state == sessionActive && s.hostLH.Station() == mac {
			s.state = sessionBroken
			s.nextRetry = pm.host.Eng.Now()
		}
	}
}

// NoteHostSuspect reacts to this host's failure detector suspecting a
// station. Recovery starts with a locate query, so a false suspicion
// costs a group round trip, never a double execution.
func (pm *PM) NoteHostSuspect(mac uint16) { pm.NoteHostDown(mac) }

// SessionView is one supervised session, for operator tooling.
type SessionView struct {
	LHID        vid.LHID // original LHID — the job handle
	CurLH       vid.LHID
	PID         vid.PID
	Name        string
	HostLH      vid.LHID
	Incarnation int
	Restarts    int
	State       string
	LeaseAge    time.Duration
	ExitCode    uint32
}

// Sessions lists the manager's supervised sessions, ordered by original
// LHID.
func (pm *PM) Sessions() []SessionView {
	ids := make([]vid.LHID, 0, len(pm.sessions))
	for id := range pm.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]SessionView, 0, len(ids))
	for _, id := range ids {
		s := pm.sessions[id]
		out = append(out, SessionView{
			LHID: s.orig, CurLH: s.cur, PID: s.pid, Name: s.name,
			HostLH: s.hostLH, Incarnation: s.incarnation, Restarts: s.restarts,
			State: s.state.String(), LeaseAge: pm.host.Eng.Now().Sub(s.lastRenew),
			ExitCode: s.exitCode,
		})
	}
	return out
}

// reapJob is one remote program to destroy with retry — created but never
// started (the start failed or was partitioned away), or left behind by a
// failed recovery attempt.
type reapJob struct {
	pm       vid.PID
	lhid     vid.LHID
	attempts int
	next     sim.Time
}

// ReapRemote queues a created-but-unstarted remote program for destruction
// once its manager is reachable again, so a failed Exec cannot leak the
// execution environment it created.
func (pm *PM) ReapRemote(target vid.PID, lhid vid.LHID) {
	pm.reapQ = append(pm.reapQ, &reapJob{pm: target, lhid: lhid, next: pm.host.Eng.Now()})
}

// reapRetry paces reap attempts against an unreachable manager.
const reapRetry = 2 * time.Second

// reapMaxAttempts bounds reaping of a manager that never comes back (its
// programs died with it anyway).
const reapMaxAttempts = 10

// leaseLoop is the pm-lease worker: it renews session leases, recovers
// broken sessions, and drains the remote-reap queue. Sessions are visited
// in sorted LHID order — map iteration order must not reach the wire.
func (pm *PM) leaseLoop(ctx *kernel.ProcCtx) {
	for {
		ctx.Sleep(pollInterval)
		pm.drainReapQ(ctx)
		if pm.home != nil {
			pm.drainHomePend(ctx)
		}
		ids := make([]vid.LHID, 0, len(pm.sessions))
		for id := range pm.sessions {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// With a home group only the fenced leader acts on live sessions; a
		// follower (or deposed leader) instead points any waiters it holds
		// back at the group, where the current leader will hold or answer
		// them. Exit results are served by every replica.
		leading := pm.homeLeading()
		for _, id := range ids {
			s := pm.sessions[id]
			switch s.state {
			case sessionActive, sessionBroken:
				if !leading {
					pm.flushWaiters(ctx, s, movedReply(PmWaitProgram, s.orig,
						movedTo{pm: vid.GroupHomePMs, lh: s.cur}))
					continue
				}
			}
			switch s.state {
			case sessionActive:
				if ctx.Now().Sub(s.lastRenew) >= params.LeaseInterval {
					pm.renew(ctx, s)
				}
			case sessionBroken:
				if ctx.Now() >= s.nextRetry {
					pm.recover(ctx, s)
				}
			case sessionDone:
				pm.flushWaiters(ctx, s, vid.Message{Op: PmWaitProgram, W: [6]uint32{s.exitCode}})
			case sessionFailed:
				pm.flushWaiters(ctx, s, vid.Message{Op: PmWaitProgram, Code: vid.CodeAborted})
			}
		}
	}
}

func (pm *PM) flushWaiters(ctx *kernel.ProcCtx, s *session, m vid.Message) {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		pm.replyAsPM(ctx, w, m)
	}
}

// renew is one lease heartbeat with the hosting manager.
func (pm *PM) renew(ctx *kernel.ProcCtx, s *session) {
	m, err := ctx.Send(s.hostPM, vid.Message{Op: PmRenewLease, W: [6]uint32{uint32(s.cur)}})
	if s.state != sessionActive {
		return // broken or resolved while the send blocked
	}
	switch {
	case err == nil && m.Code == CodeMoved:
		// The hosting manager migrated or re-executed the program away:
		// follow the forwarding record. A topology change must survive a
		// home fail-over, so a replicated registry commits it.
		hostPM := vid.PID(m.W[1])
		if pm.home != nil {
			if pm.homeCommit(ctx, &hgCmd{
				Kind: hgRenewed, Orig: s.orig, At: int64(ctx.Now()),
				HostPM: uint32(hostPM), HostLH: uint32(hostPM.LH()), NewLH: m.W[2],
			}) != nil {
				return // lost the majority; the next leader follows the move
			}
		} else {
			s.hostPM = hostPM
			s.hostLH = hostPM.LH()
			if nl := vid.LHID(m.W[2]); nl != 0 && nl != s.cur {
				pm.rebindSession(s, nl)
			}
			s.lastRenew = ctx.Now()
		}
		pm.sup.LeaseRenews++
	case err == nil && m.OK() && m.W[1] == 1:
		// Plain renewal: leader-local only. A follower promoted later sees
		// a stale lastRenew and simply renews immediately — cheaper than a
		// log entry per heartbeat.
		s.lastRenew = ctx.Now()
		pm.sup.LeaseRenews++
	case err == nil && m.OK() && m.W[1] == 2:
		if pm.home != nil {
			pm.homeCommit(ctx, &hgCmd{Kind: hgDone, Orig: s.orig, Code: m.W[2]})
		} else {
			s.state = sessionDone
			s.exitCode = m.W[2]
		}
	default:
		// Transport failure (timeout or host-down) or not-found: the
		// lease is lost and the session is broken.
		pm.expireLease(ctx, s)
	}
}

// rebindSession repoints a session at a new incarnation LHID, keeping old
// LHIDs resolvable for handles issued earlier.
func (pm *PM) rebindSession(s *session, newLH vid.LHID) {
	if newLH != s.orig {
		pm.alias[newLH] = s.orig
	}
	s.cur = newLH
	s.pid = vid.NewPID(newLH, vid.IdxFirstProcess)
}

// expireLease breaks a session on lease loss, with the trace event and
// counter (detector-prompted breaks go through NoteHostDown instead and
// publish nothing — the detector already did).
func (pm *PM) expireLease(ctx *kernel.ProcCtx, s *session) {
	if pm.home != nil {
		if pm.homeCommit(ctx, &hgCmd{Kind: hgBreak, Orig: s.orig, At: int64(ctx.Now())}) != nil {
			return // deposed; the next leader re-detects the loss itself
		}
	} else {
		s.state = sessionBroken
		s.nextRetry = ctx.Now()
	}
	pm.sup.LeaseExpires++
	pm.host.Trace().Publish(trace.Event{
		At: ctx.Now(), Host: uint16(pm.host.NIC.MAC()), Kind: trace.EvLeaseExpire,
		LH: s.cur, Peer: s.hostLH.Station(),
	})
}

// recover resolves a broken session: find the program if some host still
// runs it, else re-execute it from its image, else fail the session.
func (pm *PM) recover(ctx *kernel.ProcCtx, s *session) {
	// 1. Double-execution guard: ask the manager group who runs it. Only
	// the manager actually running the program answers (everyone else
	// keeps silent), so one reply is authoritative; the group send is
	// bounded by the short group abort, not the full unicast allowance.
	m, err := ctx.Send(vid.GroupProgramManagers, vid.Message{
		Op: PmLocateProgram, W: [6]uint32{uint32(s.cur)},
	})
	if s.state != sessionBroken {
		return
	}
	if err == nil && m.OK() {
		// Still running — the host was falsely suspected, or the program
		// moved and the forwarding record died with its manager.
		if pm.home != nil {
			if pm.homeCommit(ctx, &hgCmd{
				Kind: hgRenewed, Orig: s.orig, At: int64(ctx.Now()),
				HostPM: m.W[5], HostLH: m.W[0],
			}) != nil {
				return
			}
		} else {
			s.hostLH = vid.LHID(m.W[0])
			s.hostPM = vid.PID(m.W[5])
			s.state = sessionActive
			s.lastRenew = ctx.Now()
		}
		pm.flushWaiters(ctx, s, movedReply(PmWaitProgram, s.orig, movedTo{pm: s.hostPM, lh: s.cur}))
		return
	}
	// 2. Nobody runs it: re-execute, with bounded attempts.
	if s.restarts >= s.maxRestarts || pm.Selector == nil {
		pm.failSession(ctx, s)
		return
	}
	// Commit the restart intent BEFORE creating anything: this is the
	// fence that makes a stale minority leader harmless. It cannot reach a
	// majority, so its Submit times out here and no second incarnation is
	// ever started — the locate query above plus this committed intent
	// together uphold the double-execution guard across views.
	if pm.home != nil {
		if pm.homeCommit(ctx, &hgCmd{Kind: hgIntent, Orig: s.orig, Attempt: s.restarts + 1}) != nil {
			return
		}
	} else {
		s.restarts++
	}
	if !pm.reexecSession(ctx, s) {
		if s.restarts >= s.maxRestarts {
			pm.failSession(ctx, s)
			return
		}
		// Exponential backoff before the next attempt.
		backoff := ctx.Now().Add(params.ExecRestartBackoff << (s.restarts - 1))
		if pm.home != nil {
			pm.homeCommit(ctx, &hgCmd{Kind: hgRetryAt, Orig: s.orig, At: int64(backoff)})
		} else {
			s.nextRetry = backoff
		}
	}
}

// reexecSession runs one recovery attempt: select a host (never the lost
// one, never our own), create the program there, pre-announce the
// incarnation change to the output sink, and start it.
func (pm *PM) reexecSession(ctx *kernel.ProcCtx, s *session) bool {
	l, err := pm.Selector.Select(ctx, s.minMem, s.hostLH, pm.host.SystemLH().ID())
	if err != nil {
		return false
	}
	seg := []byte(strings.Join(append([]string{s.name}, s.args...), "\x00"))
	cm, err := ctx.Send(l.PM, vid.Message{
		Op: PmCreateProgram, W: [6]uint32{uint32(s.stdout), 1}, Seg: seg,
	})
	if err != nil || !cm.OK() {
		return false
	}
	newPID, newLH := vid.PID(cm.W[0]), vid.LHID(cm.W[1])
	if s.stdout != vid.Nil {
		// The new incarnation replays output from the start; the display
		// suppresses what the previous incarnation already delivered
		// (at-most-once per logical line). Must land before the start.
		ctx.Send(s.stdout, vid.Message{Op: supOpAdopt, W: [6]uint32{uint32(s.cur), uint32(newLH)}})
	}
	sm, err := ctx.Send(kernel.KernelServerPID(newLH), vid.Message{
		Op: kernel.KsStartProcess, W: [6]uint32{uint32(newPID)},
	})
	if err != nil || !sm.OK() {
		if _, e := ctx.Send(l.PM, vid.Message{
			Op: PmDestroyProgram, W: [6]uint32{uint32(newLH)},
		}); e != nil {
			pm.ReapRemote(l.PM, newLH)
		}
		return false
	}
	if pm.home != nil {
		if pm.homeCommit(ctx, &hgCmd{
			Kind: hgRebind, Orig: s.orig, At: int64(ctx.Now()),
			NewLH: uint32(newLH), NewPID: uint32(newPID),
			HostPM: uint32(l.PM), HostLH: uint32(l.SystemLH),
		}) != nil {
			// Deposed between start and commit: this incarnation is not in
			// the replicated registry, so destroy it best-effort. Should the
			// destroy also fail, the orphan is bounded by maxRestarts and
			// the display's adoption counts keep user output exactly-once.
			if _, e := ctx.Send(l.PM, vid.Message{
				Op: PmDestroyProgram, W: [6]uint32{uint32(newLH)},
			}); e != nil {
				pm.ReapRemote(l.PM, newLH)
			}
			return false
		}
	} else {
		if newLH != s.orig {
			pm.alias[newLH] = s.orig
		}
		s.cur, s.pid = newLH, newPID
		s.hostPM, s.hostLH = l.PM, l.SystemLH
		s.incarnation++
		s.state = sessionActive
		s.lastRenew = ctx.Now()
	}
	pm.sup.ExecRestarts++
	pm.host.Trace().Publish(trace.Event{
		At: ctx.Now(), Host: uint16(pm.host.NIC.MAC()), Kind: trace.EvExecRestart,
		LH: newLH, Peer: l.SystemLH.Station(), Prio: s.incarnation,
	})
	pm.flushWaiters(ctx, s, movedReply(PmWaitProgram, s.orig, movedTo{pm: s.hostPM, lh: s.cur}))
	return true
}

// failSession gives up on a session: waiters see an abort and the user
// gets a notification line.
func (pm *PM) failSession(ctx *kernel.ProcCtx, s *session) {
	if pm.home != nil {
		if pm.homeCommit(ctx, &hgCmd{Kind: hgFailed, Orig: s.orig}) != nil {
			return // deposed; the next leader decides the session's fate
		}
	} else {
		s.state = sessionFailed
	}
	pm.flushWaiters(ctx, s, vid.Message{Op: PmWaitProgram, Code: vid.CodeAborted})
	if s.stdout != vid.Nil {
		ctx.Send(s.stdout, vid.Message{Op: vvm.OpWriteLine, Seg: []byte(
			fmt.Sprintf("[progmgr %s] %s: host lost, restarts exhausted; giving up", pm.host.Name, s.name)),
		})
	}
}

// drainReapQ retries at most one due remote destruction per tick.
func (pm *PM) drainReapQ(ctx *kernel.ProcCtx) {
	for i := 0; i < len(pm.reapQ); i++ {
		j := pm.reapQ[i]
		if ctx.Now() < j.next {
			continue
		}
		pm.reapQ = append(pm.reapQ[:i], pm.reapQ[i+1:]...)
		if _, err := ctx.Send(j.pm, vid.Message{
			Op: PmDestroyProgram, W: [6]uint32{uint32(j.lhid)},
		}); err != nil {
			// Unreachable (or still down): try again later, boundedly. Any
			// definitive reply — OK or not-found — settles the job.
			j.attempts++
			if j.attempts < reapMaxAttempts {
				j.next = ctx.Now().Add(reapRetry)
				pm.reapQ = append(pm.reapQ, j)
			}
		}
		return
	}
}

// supOpAdopt duplicates display.OpAdopt — the output-stream adoption
// notice (W0 = superseded LHID, W1 = successor LHID) — to keep the wire
// contract explicit without importing the display server.
const supOpAdopt uint16 = 0x72
