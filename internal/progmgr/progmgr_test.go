package progmgr

import (
	"strings"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/fileserver"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/packet"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
	"vsystem/internal/workload"
)

type rig struct {
	eng *sim.Engine
	ws  []*kernel.Host
	pms []*PM
	fs  *fileserver.Server
}

func newRig(t *testing.T, n int, seed int64) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	bus := ethernet.NewBus(eng)
	r := &rig{eng: eng}
	for i := 0; i < n; i++ {
		h := kernel.NewHost(eng, bus, i, "ws"+string(rune('0'+i)))
		r.ws = append(r.ws, h)
		r.pms = append(r.pms, Start(h))
	}
	fsh := kernel.NewHost(eng, bus, n, "fserv")
	r.fs = fileserver.Start(fsh)
	img := workload.Image(workload.Spec{Name: "job", HotKB: 8, HotRateKBps: 40, DurationMs: 2000}, 0)
	r.fs.Put("job", img.Encode())
	return r
}

// agent runs fn as a client process on workstation i.
func (r *rig) agent(i int, fn func(ctx *kernel.ProcCtx)) {
	r.ws[i].SpawnServer("agent", 8192, fn)
}

func TestCreateStartWait(t *testing.T) {
	r := newRig(t, 2, 1)
	var exit uint32
	var err error
	r.agent(0, func(ctx *kernel.ProcCtx) {
		m, e := ctx.Send(r.pms[1].PID(), vid.Message{
			Op: PmCreateProgram, W: [6]uint32{0, 1}, Seg: []byte("job"),
		})
		if e != nil || !m.OK() {
			err = e
			return
		}
		pid, lhid := vid.PID(m.W[0]), vid.LHID(m.W[1])
		if sm, e := ctx.Send(kernel.KernelServerPID(lhid), vid.Message{
			Op: kernel.KsStartProcess, W: [6]uint32{uint32(pid)},
		}); e != nil || !sm.OK() {
			err = e
			return
		}
		wm, e := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmWaitProgram, W: [6]uint32{uint32(lhid)}})
		if e != nil || !wm.OK() {
			err = e
			return
		}
		exit = wm.W[0]
	})
	r.eng.RunFor(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	// The program's logical host must be gone after exit (memory freed).
	for _, lh := range r.ws[1].LHs() {
		if !lh.System() {
			t.Fatalf("leftover logical host %v (%s)", lh.ID(), lh.Name())
		}
	}
}

func TestCreateUnknownImage(t *testing.T) {
	r := newRig(t, 2, 2)
	var code uint16 = 0xFFFF
	r.agent(0, func(ctx *kernel.ProcCtx) {
		m, err := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmCreateProgram, Seg: []byte("ghost")})
		if err == nil {
			code = m.Code
		}
	})
	r.eng.RunFor(time.Minute)
	if code != vid.CodeNotFound {
		t.Fatalf("code = %d, want not-found", code)
	}
}

func TestSelectHostRespondsWhenIdle(t *testing.T) {
	r := newRig(t, 3, 3)
	var got vid.Message
	var err error
	var elapsed time.Duration
	r.agent(0, func(ctx *kernel.ProcCtx) {
		t0 := ctx.Now()
		got, err = ctx.Send(vid.GroupProgramManagers, vid.Message{
			Op: PmSelectHost,
			W:  [6]uint32{64 * 1024, uint32(r.ws[0].SystemLH().ID())},
		})
		elapsed = ctx.Now().Sub(t0)
	})
	r.eng.RunFor(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if vid.LHID(got.W[0]) == r.ws[0].SystemLH().ID() {
		t.Fatal("excluded host responded")
	}
	// First response ≈ the paper's 23 ms.
	if elapsed < 15*time.Millisecond || elapsed > 40*time.Millisecond {
		t.Fatalf("selection took %v, want ≈23ms", elapsed)
	}
}

func TestSelectHostSilentWhenNoMemory(t *testing.T) {
	r := newRig(t, 2, 4)
	var err error
	r.agent(0, func(ctx *kernel.ProcCtx) {
		_, err = ctx.Send(vid.GroupProgramManagers, vid.Message{
			Op: PmSelectHost,
			W:  [6]uint32{64 * 1024 * 1024, uint32(r.ws[0].SystemLH().ID())},
		})
	})
	r.eng.RunFor(time.Minute)
	if err == nil {
		t.Fatal("selection with impossible memory requirement succeeded")
	}
}

func TestQueryHostByName(t *testing.T) {
	r := newRig(t, 3, 5)
	var got vid.Message
	var err error
	r.agent(0, func(ctx *kernel.ProcCtx) {
		got, err = ctx.Send(vid.GroupProgramManagers, vid.Message{
			Op: PmQueryHost, Seg: []byte("WS2"), // case-insensitive
		})
	})
	r.eng.RunFor(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if vid.LHID(got.W[0]) != r.ws[2].SystemLH().ID() {
		t.Fatalf("resolved %v, want ws2's system LH", vid.LHID(got.W[0]))
	}
}

func TestInitMigrationChecksMemory(t *testing.T) {
	r := newRig(t, 2, 6)
	var ok, refused bool
	r.agent(0, func(ctx *kernel.ProcCtx) {
		req := &InitReq{
			Name: "incoming", Guest: true, FinalLH: 0x0133,
			Spaces: []kernel.SpaceDesc{{ID: 1, Size: 256 * 1024}},
		}
		m, err := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmInitMigration, Seg: EncodeInitReq(req)})
		ok = err == nil && m.OK()
		if ok {
			// The placeholder must exist, frozen, with the space installed.
			lh, found := r.ws[1].LookupLH(vid.LHID(m.W[0]))
			if !found || !lh.Frozen() {
				ok = false
			}
		}
		huge := &InitReq{
			Name: "huge", FinalLH: 0x0134,
			Spaces: []kernel.SpaceDesc{{ID: 1, Size: 64 * 1024 * 1024}},
		}
		m2, err := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmInitMigration, Seg: EncodeInitReq(huge)})
		refused = err == nil && m2.Code == vid.CodeNoMemory
	})
	r.eng.RunFor(time.Minute)
	if !ok {
		t.Fatal("valid init-migration failed")
	}
	if !refused {
		t.Fatal("oversized init-migration accepted")
	}
}

func TestWaitForUnknownProgram(t *testing.T) {
	r := newRig(t, 2, 7)
	var code uint16 = 0xFFFF
	r.agent(0, func(ctx *kernel.ProcCtx) {
		m, err := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmWaitProgram, W: [6]uint32{0x7777}})
		if err == nil {
			code = m.Code
		}
	})
	r.eng.RunFor(time.Minute)
	if code != vid.CodeNotFound {
		t.Fatalf("code = %d", code)
	}
}

func TestQueryProgramsListing(t *testing.T) {
	r := newRig(t, 2, 8)
	var listing string
	r.agent(0, func(ctx *kernel.ProcCtx) {
		m, err := ctx.Send(r.pms[1].PID(), vid.Message{
			Op: PmCreateProgram, W: [6]uint32{0, 1}, Seg: []byte("job"),
		})
		if err != nil || !m.OK() {
			return
		}
		l, err := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmQueryPrograms})
		if err == nil {
			listing = l.SegString()
		}
	})
	r.eng.RunFor(time.Minute)
	if !strings.Contains(listing, "job") {
		t.Fatalf("listing = %q", listing)
	}
}

func TestDestroyProgramNotifiesWaiters(t *testing.T) {
	r := newRig(t, 2, 9)
	var waitCode uint32
	var destroyed bool
	r.agent(0, func(ctx *kernel.ProcCtx) {
		m, err := ctx.Send(r.pms[1].PID(), vid.Message{
			Op: PmCreateProgram, W: [6]uint32{0, 1}, Seg: []byte("job"),
		})
		if err != nil || !m.OK() {
			return
		}
		lhid := m.W[1]
		// Start it so it's a live program, then destroy it mid-run.
		ctx.Send(kernel.KernelServerPID(vid.LHID(lhid)), vid.Message{
			Op: kernel.KsStartProcess, W: [6]uint32{m.W[0]},
		})
		// A second client waits.
		r.agent(0, func(w *kernel.ProcCtx) {
			wm, err := w.Send(r.pms[1].PID(), vid.Message{Op: PmWaitProgram, W: [6]uint32{lhid}})
			if err == nil {
				waitCode = wm.W[0]
			}
		})
		ctx.Sleep(300 * time.Millisecond)
		dm, err := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmDestroyProgram, W: [6]uint32{lhid}})
		destroyed = err == nil && dm.OK()
	})
	r.eng.RunFor(time.Minute)
	if !destroyed {
		t.Fatal("destroy failed")
	}
	if waitCode != 0xDEAD {
		t.Fatalf("waiter got %#x, want 0xDEAD", waitCode)
	}
}

func TestMigrateWithoutMigratorRefused(t *testing.T) {
	r := newRig(t, 2, 10)
	var code uint16 = 0xFFFF
	r.agent(0, func(ctx *kernel.ProcCtx) {
		m, err := ctx.Send(r.pms[1].PID(), vid.Message{
			Op: PmCreateProgram, W: [6]uint32{0, 1}, Seg: []byte("job"),
		})
		if err != nil || !m.OK() {
			return
		}
		mm, err := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmMigrateProgram, W: [6]uint32{m.W[1]}})
		if err == nil {
			code = mm.Code
		}
	})
	r.eng.RunFor(time.Minute)
	if code != vid.CodeRefused {
		t.Fatalf("code = %d, want refused", code)
	}
}

// TestReceptacleReapIsInactivityBased: the receptacle TTL is an inactivity
// timeout, not a deadline on the whole transfer. A slow but live copy —
// one page run every 20 s, well under the 30 s TTL — must keep the frozen
// placeholder alive past 30 s (a fixed TTL would reap it mid-transfer),
// while a receptacle whose writes stop is reaped once the TTL of idleness
// elapses.
func TestReceptacleReapIsInactivityBased(t *testing.T) {
	r := newRig(t, 2, 11)
	page := make([]byte, params.PageSize)
	var initErr, writeErr error
	var tempLH vid.LHID
	r.agent(0, func(ctx *kernel.ProcCtx) {
		req := &InitReq{
			Name: "slowcopy", Guest: true, FinalLH: 0x0155,
			SrcLH:  r.ws[0].SystemLH().ID(),
			Spaces: []kernel.SpaceDesc{{ID: 1, Size: 32 * 1024}},
		}
		m, err := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmInitMigration, Seg: EncodeInitReq(req)})
		if err != nil || !m.OK() {
			initErr = err
			return
		}
		tempLH = vid.LHID(m.W[0])
		targetKS := kernel.KernelServerPID(vid.LHID(m.W[1]))
		// Last write lands at t≈60 s; the receptacle then goes idle and
		// must be reaped at t≈90 s.
		for i := 0; i < 3; i++ {
			ctx.Sleep(20 * time.Second)
			run := kernel.EncodePageRun(1, []mem.PageNo{mem.PageNo(i)}, [][]byte{page})
			wm, err := ctx.Send(targetKS, vid.Message{
				Op: kernel.KsWritePages, W: [6]uint32{uint32(tempLH)}, Seg: run,
			})
			if writeErr == nil && (err != nil || !wm.OK()) {
				writeErr = vid.CodeError(wm.Code)
				if err != nil {
					writeErr = err
				}
			}
		}
	})
	var aliveAt70, goneAt95 bool
	r.eng.After(70*time.Second, func() {
		_, aliveAt70 = r.ws[1].LookupLH(tempLH)
	})
	r.eng.After(95*time.Second, func() {
		_, stillThere := r.ws[1].LookupLH(tempLH)
		goneAt95 = !stillThere
	})
	r.eng.RunFor(100 * time.Second)
	if initErr != nil || writeErr != nil {
		t.Fatalf("init=%v write=%v", initErr, writeErr)
	}
	if !aliveAt70 {
		t.Fatal("receptacle reaped while page runs were still arriving")
	}
	if !goneAt95 {
		t.Fatal("idle receptacle never reaped")
	}
}

// TestWaiterReplyComesFromPMPort: a deferred PmWaitProgram answer is sent
// by the reaper worker, but it must be emitted from the program manager's
// own service port — the one the request arrived on. A reply emitted from
// the worker's port leaves the PM port's open-request entry and reply
// cache untouched, so if that single reply packet is lost the waiter's
// retransmissions are answered with reply-pending forever and the wait
// never completes.
func TestWaiterReplyComesFromPMPort(t *testing.T) {
	r := newRig(t, 2, 21)
	tb := trace.NewBus()
	for _, h := range r.ws {
		h.AttachTrace(tb)
	}
	var replySrc vid.PID
	tb.Subscribe(func(ev trace.Event) {
		if ev.Pkt != nil && ev.Pkt.Kind == packet.KReply && ev.Pkt.Msg.Op == PmWaitProgram {
			replySrc = ev.Pkt.Src
		}
	})
	var waited bool
	r.agent(0, func(ctx *kernel.ProcCtx) {
		m, e := ctx.Send(r.pms[1].PID(), vid.Message{
			Op: PmCreateProgram, W: [6]uint32{0, 1}, Seg: []byte("job"),
		})
		if e != nil || !m.OK() {
			return
		}
		pid, lhid := vid.PID(m.W[0]), vid.LHID(m.W[1])
		if sm, e := ctx.Send(kernel.KernelServerPID(lhid), vid.Message{
			Op: kernel.KsStartProcess, W: [6]uint32{uint32(pid)},
		}); e != nil || !sm.OK() {
			return
		}
		if wm, e := ctx.Send(r.pms[1].PID(), vid.Message{Op: PmWaitProgram, W: [6]uint32{uint32(lhid)}}); e == nil && wm.OK() {
			waited = true
		}
	})
	r.eng.RunFor(time.Minute)
	if !waited {
		t.Fatal("wait did not complete")
	}
	if replySrc != r.pms[1].PID() {
		t.Fatalf("wait reply emitted from %v, want the PM port %v", replySrc, r.pms[1].PID())
	}
}
