package progmgr

import (
	"bytes"
	"encoding/gob"
	"sort"

	"vsystem/internal/kernel"
	"vsystem/internal/rsm"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// Home program-manager group: the session supervisor — the one home
// service the paper's §2.3 residual-dependency stance leaves as a single
// point of failure — becomes a consensus group. Member managers replicate
// the session registry (Supervise records, lease renewals, recovery
// bookkeeping, exit codes) through an rsm log; only the fenced leader runs
// the lease worker's renew/recover actions, and a failed leader's
// successor resumes them from the committed registry. Re-execution is
// double-fenced: the PmLocateProgram group query (only the running host
// answers) plus a committed restart-intent — a stale minority leader
// cannot commit the intent, so it can never start a second incarnation.
//
// The home display is deliberately NOT in the group: it is the session's
// one irreducible home dependency (the user's screen), and its per-chain
// delivered/lead counts already make re-executed output exactly-once.

// Home-group operations (0x3D region, after the PmLocateProgram block).
const (
	// PmSupervise: Seg = gob SessionInfo — register a session with the
	// home group. Only the group leader answers (commits, then OK);
	// followers stay silent, so agents address the group.
	PmSupervise uint16 = 0x3D
	// PmNoteExited: W0 = original LHID, W1 = exit code — the agent's Wait
	// saw the exit; stop lease traffic. Leader-only, like PmSupervise.
	PmNoteExited uint16 = 0x3E
)

// PmWaitHome in PmWaitProgram's W5 marks a wait addressed to the home
// group's registry: only the group leader answers (or holds the waiter);
// every other member stays silent. Without the flag PmWaitProgram keeps
// its hosting-manager semantics.
const PmWaitHome uint32 = 1

// EnableHomeGroup attaches this manager to the home replica group as
// member id of n. The caller owns store — the member's durable log — and
// re-passes it when the manager is restarted after a crash.
func (pm *PM) EnableHomeGroup(id, n int, store *rsm.Store) {
	pm.host.JoinGroup(vid.GroupHomePMs, pm.proc.PID())
	pm.home = rsm.New(pm.host, rsm.Config{
		Name: "home", Group: vid.GroupHomeRSM, ID: id, N: n, SvcPID: pm.proc.PID(),
	}, &homeSM{pm}, store)
}

// HomeReplica returns the manager's home-group replica (nil when the
// manager is not a group member).
func (pm *PM) HomeReplica() *rsm.Replica { return pm.home }

// homeLeading reports whether this manager currently acts for the home
// group (trivially true for an unreplicated manager).
func (pm *PM) homeLeading() bool { return pm.home == nil || pm.home.IsLeader() }

// QueueHomeSupervise parks a Supervise record for later resubmission
// through the group log. A group member whose agent cannot reach the group
// (mid-election, partitioned) must use this rather than Supervise: a direct
// registry write on one replica happens outside the log, so it diverges
// from the other members, gets baked into that replica's snapshots, and —
// because only the fenced leader renews leases — is never watched anyway.
func (pm *PM) QueueHomeSupervise(si SessionInfo) {
	pm.homePend = append(pm.homePend, si)
}

// drainHomePend re-proposes parked Supervise records once the group is
// reachable again. Sent group-addressed (not committed directly) so it
// works from any member: whoever leads now commits the record, and the
// hgSupervise Apply dedupes if the agent's own retry got through first.
func (pm *PM) drainHomePend(ctx *kernel.ProcCtx) {
	for len(pm.homePend) > 0 {
		si := pm.homePend[0]
		m, err := ctx.Send(vid.GroupHomePMs, vid.Message{
			Op: PmSupervise, Seg: EncodeSessionInfo(&si),
		})
		if err != nil || !m.OK() {
			return // still no leader: keep the queue for the next tick
		}
		pm.homePend = pm.homePend[1:]
	}
}

// ------------------------------------------------------------- log model

// hgKind enumerates replicated session-registry mutations.
type hgKind uint8

const (
	hgSupervise hgKind = iota + 1 // Sess: new session, active
	hgRenewed                     // At, HostPM, HostLH, NewLH: lease renewed (follows moves)
	hgBreak                       // At: lease lost, retry at At
	hgRetryAt                     // At: recovery attempt failed, back off
	hgIntent                      // Attempt: about to re-execute (the fence)
	hgRebind                      // NewLH, NewPID, HostPM, HostLH, At: re-executed
	hgDone                        // Code: exited
	hgFailed                      // restarts exhausted
)

// hgCmd is one registry mutation. Timestamps ride in the command — Apply
// must never read the clock, or replicas would diverge.
type hgCmd struct {
	Kind    hgKind
	Orig    vid.LHID
	Sess    *SessionInfo
	At      int64 // sim.Time
	HostPM  uint32
	HostLH  uint32
	NewLH   uint32
	NewPID  uint32
	Code    uint32
	Attempt int
}

func encodeHgCmd(c *hgCmd) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func decodeHgCmd(b []byte) (*hgCmd, error) {
	var c hgCmd
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}

// EncodeSessionInfo serializes a SessionInfo for PmSupervise.
func EncodeSessionInfo(si *SessionInfo) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(si); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// DecodeSessionInfo parses a PmSupervise segment.
func DecodeSessionInfo(b []byte) (*SessionInfo, error) {
	var si SessionInfo
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&si); err != nil {
		return nil, err
	}
	return &si, nil
}

// homeCommit submits one registry mutation through the group log. The
// error matters: a leader that cannot commit has lost its majority and
// must not act on the mutation's assumption.
func (pm *PM) homeCommit(ctx *kernel.ProcCtx, c *hgCmd) error {
	_, err := pm.home.Submit(ctx, encodeHgCmd(c))
	return err
}

// ---------------------------------------------------------- state machine

type homeSM struct{ pm *PM }

func (h *homeSM) Apply(t *sim.Task, cmd []byte) []byte {
	c, err := decodeHgCmd(cmd)
	if err != nil {
		return nil
	}
	pm := h.pm
	if c.Kind == hgSupervise {
		if c.Sess != nil && pm.sessions[c.Sess.LHID] == nil {
			pm.registerSession(*c.Sess, sim.Time(c.At))
		}
		return nil
	}
	s := pm.sessions[c.Orig]
	if s == nil {
		return nil
	}
	switch c.Kind {
	case hgRenewed:
		if s.state == sessionDone || s.state == sessionFailed {
			return nil
		}
		s.hostPM = vid.PID(c.HostPM)
		s.hostLH = vid.LHID(c.HostLH)
		if nl := vid.LHID(c.NewLH); nl != 0 && nl != s.cur {
			pm.rebindSession(s, nl)
		}
		s.state = sessionActive
		s.lastRenew = sim.Time(c.At)
	case hgBreak:
		if s.state == sessionActive {
			s.state = sessionBroken
			s.nextRetry = sim.Time(c.At)
		}
	case hgRetryAt:
		if s.state == sessionBroken {
			s.nextRetry = sim.Time(c.At)
		}
	case hgIntent:
		if s.restarts < c.Attempt {
			s.restarts = c.Attempt
		}
	case hgRebind:
		if s.state == sessionDone || s.state == sessionFailed {
			return nil
		}
		nl := vid.LHID(c.NewLH)
		if nl != s.orig && nl != s.cur {
			pm.alias[nl] = s.orig
		}
		s.cur, s.pid = nl, vid.PID(c.NewPID)
		s.hostPM, s.hostLH = vid.PID(c.HostPM), vid.LHID(c.HostLH)
		s.incarnation++
		s.state = sessionActive
		s.lastRenew = sim.Time(c.At)
	case hgDone:
		if s.state != sessionDone && s.state != sessionFailed {
			s.state = sessionDone
			s.exitCode = c.Code
		}
	case hgFailed:
		if s.state != sessionDone {
			s.state = sessionFailed
		}
	}
	return nil
}

// homeSnap is the registry's deterministic snapshot form: sessions and
// aliases as sorted slices (map iteration order must not reach the wire).
type homeSnap struct {
	Sessions []homeSessRec
	Aliases  []homeAliasRec
}

type homeSessRec struct {
	Orig, Cur   vid.LHID
	PID         vid.PID
	Name        string
	Args        []string
	Stdout      vid.PID
	MinMem      uint32
	HostPM      vid.PID
	HostLH      vid.LHID
	Incarnation int
	Restarts    int
	MaxRestarts int
	State       uint8
	ExitCode    uint32
	LastRenew   int64
	NextRetry   int64
}

type homeAliasRec struct{ From, To vid.LHID }

func (h *homeSM) Snapshot() []byte {
	pm := h.pm
	var snap homeSnap
	ids := make([]vid.LHID, 0, len(pm.sessions))
	for id := range pm.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := pm.sessions[id]
		snap.Sessions = append(snap.Sessions, homeSessRec{
			Orig: s.orig, Cur: s.cur, PID: s.pid, Name: s.name, Args: s.args,
			Stdout: s.stdout, MinMem: s.minMem, HostPM: s.hostPM, HostLH: s.hostLH,
			Incarnation: s.incarnation, Restarts: s.restarts, MaxRestarts: s.maxRestarts,
			State: uint8(s.state), ExitCode: s.exitCode,
			LastRenew: int64(s.lastRenew), NextRetry: int64(s.nextRetry),
		})
	}
	froms := make([]vid.LHID, 0, len(pm.alias))
	for f := range pm.alias {
		froms = append(froms, f)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, f := range froms {
		snap.Aliases = append(snap.Aliases, homeAliasRec{From: f, To: pm.alias[f]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func (h *homeSM) Restore(b []byte) {
	var snap homeSnap
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return
	}
	pm := h.pm
	pm.sessions = make(map[vid.LHID]*session, len(snap.Sessions))
	pm.alias = make(map[vid.LHID]vid.LHID, len(snap.Aliases))
	for _, r := range snap.Sessions {
		pm.sessions[r.Orig] = &session{
			orig: r.Orig, cur: r.Cur, pid: r.PID, name: r.Name, args: r.Args,
			stdout: r.Stdout, minMem: r.MinMem, hostPM: r.HostPM, hostLH: r.HostLH,
			incarnation: r.Incarnation, restarts: r.Restarts, maxRestarts: r.MaxRestarts,
			state: sessionState(r.State), exitCode: r.ExitCode,
			lastRenew: sim.Time(r.LastRenew), nextRetry: sim.Time(r.NextRetry),
		}
	}
	for _, a := range snap.Aliases {
		pm.alias[a.From] = a.To
	}
}
