// Package fault is the cluster's deterministic fault injector: host
// crashes and restarts at chosen virtual times, network partitions between
// host sets, bounded loss and corruption bursts, and one-shot migration
// faults that kill a participant at a precise phase of the §3.1 algorithm.
//
// All scheduling goes through the simulation engine and all randomness
// through its seeded source, so a fault schedule is exactly reproducible:
// the same seed and the same schedule produce byte-identical trace
// sequences. Every injected fault is published to the trace bus
// (EvPartition, EvHeal, EvMigFault; hosts publish their own EvHostCrash /
// EvHostRestart), so experiments can correlate faults with their effects.
package fault

import (
	"fmt"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Victim selects which migration participant an armed migration fault
// kills.
type Victim int

const (
	// VictimNone disarms.
	VictimNone Victim = iota
	// VictimSource kills the originating host (the one running the
	// migration worker).
	VictimSource
	// VictimDest kills the host receiving the new copy.
	VictimDest
)

func (v Victim) String() string {
	switch v {
	case VictimNone:
		return "none"
	case VictimSource:
		return "source"
	case VictimDest:
		return "dest"
	}
	return "?"
}

// PhasePoint identifies one phase boundary of an in-flight migration; the
// migrator reports these through its FaultHook.
type PhasePoint struct {
	LH       vid.LHID // the migrating logical host
	Phase    trace.Phase
	Round    int // pre-copy round, when Phase == PhasePrecopy
	Src, Dst ethernet.MAC
}

type hostCtl struct {
	crash, restart func()
}

type migFault struct {
	phase  trace.Phase
	round  int
	victim Victim
}

// Injector drives faults into one cluster. Create it with New, register
// each host's crash/restart controls, then schedule faults. Methods must
// be called from the simulation goroutine (or before the simulation
// starts); the *After/*At variants schedule onto it.
type Injector struct {
	eng   *sim.Engine
	net   *ethernet.Bus
	tb    *trace.Bus
	hosts map[ethernet.MAC]*hostCtl
	// cuts holds the active partitions: each entry is two host sets whose
	// members cannot exchange frames across the divide.
	cuts [][2]map[ethernet.MAC]bool
	mig  *migFault
}

// New creates an injector for the segment and installs its partition model
// on the bus.
func New(eng *sim.Engine, net *ethernet.Bus, tb *trace.Bus) *Injector {
	inj := &Injector{eng: eng, net: net, tb: tb, hosts: make(map[ethernet.MAC]*hostCtl)}
	net.SetCut(inj.cutFn)
	return inj
}

// RegisterHost wires one station's crash and restart controls.
func (inj *Injector) RegisterHost(mac ethernet.MAC, crash, restart func()) {
	inj.hosts[mac] = &hostCtl{crash: crash, restart: restart}
}

func (inj *Injector) ctl(mac ethernet.MAC) *hostCtl {
	c := inj.hosts[mac]
	if c == nil {
		panic(fmt.Sprintf("fault: unregistered host %v", mac))
	}
	return c
}

// Crash powers the host off immediately.
func (inj *Injector) Crash(mac ethernet.MAC) { inj.ctl(mac).crash() }

// Restart reboots a crashed host immediately.
func (inj *Injector) Restart(mac ethernet.MAC) { inj.ctl(mac).restart() }

// CrashAt schedules a crash at an absolute virtual time.
func (inj *Injector) CrashAt(t sim.Time, mac ethernet.MAC) {
	inj.eng.At(t, func() { inj.Crash(mac) })
}

// CrashAfter schedules a crash after a delay.
func (inj *Injector) CrashAfter(d time.Duration, mac ethernet.MAC) {
	inj.eng.After(d, func() { inj.Crash(mac) })
}

// RestartAt schedules a restart at an absolute virtual time.
func (inj *Injector) RestartAt(t sim.Time, mac ethernet.MAC) {
	inj.eng.At(t, func() { inj.Restart(mac) })
}

// RestartAfter schedules a restart after a delay.
func (inj *Injector) RestartAfter(d time.Duration, mac ethernet.MAC) {
	inj.eng.After(d, func() { inj.Restart(mac) })
}

// CrashOnEvent arms a one-shot crash keyed to protocol state rather than
// wall time: the first trace event matching the predicate selects a victim
// (through the supplied function, which may inspect live state) and kills
// it. The crash is deferred through the engine so it lands between events,
// never re-entrantly inside the publisher's own critical section. A nil
// victim MAC (0) cancels the shot without consuming it.
func (inj *Injector) CrashOnEvent(match func(trace.Event) bool, victim func() ethernet.MAC) {
	fired := false
	inj.tb.Subscribe(func(ev trace.Event) {
		if fired || !match(ev) {
			return
		}
		mac := victim()
		if mac == 0 {
			return
		}
		fired = true
		inj.eng.After(0, func() { inj.Crash(mac) })
	})
}

// PartitionOnEvent arms a one-shot partition the same way: the first
// matching trace event computes the two host sets and cuts the segment
// between them. Empty sets cancel the shot without consuming it.
func (inj *Injector) PartitionOnEvent(match func(trace.Event) bool, sets func() (a, b []ethernet.MAC)) {
	fired := false
	inj.tb.Subscribe(func(ev trace.Event) {
		if fired || !match(ev) {
			return
		}
		a, b := sets()
		if len(a) == 0 || len(b) == 0 {
			return
		}
		fired = true
		inj.eng.After(0, func() { inj.Partition(a, b) })
	})
}

// Partition severs the segment between the two host sets: no frame whose
// source is in one set reaches a receiver in the other (either direction).
// Hosts within a set, and hosts in neither set, are unaffected. Multiple
// partitions may be active at once.
func (inj *Injector) Partition(a, b []ethernet.MAC) {
	cut := [2]map[ethernet.MAC]bool{macSet(a), macSet(b)}
	inj.cuts = append(inj.cuts, cut)
	ev := trace.Event{At: inj.eng.Now(), Kind: trace.EvPartition, Size: len(a) + len(b)}
	if len(a) > 0 {
		ev.Host = uint16(a[0])
	}
	if len(b) > 0 {
		ev.Peer = uint16(b[0])
	}
	inj.tb.Publish(ev)
}

// Heal removes every active partition.
func (inj *Injector) Heal() {
	if len(inj.cuts) == 0 {
		return
	}
	inj.cuts = nil
	inj.tb.Publish(trace.Event{At: inj.eng.Now(), Kind: trace.EvHeal})
}

// PartitionAfter schedules a partition after a delay.
func (inj *Injector) PartitionAfter(d time.Duration, a, b []ethernet.MAC) {
	inj.eng.After(d, func() { inj.Partition(a, b) })
}

// HealAfter schedules a heal after a delay.
func (inj *Injector) HealAfter(d time.Duration) {
	inj.eng.After(d, func() { inj.Heal() })
}

// Partitioned reports whether any partition is active.
func (inj *Injector) Partitioned() bool { return len(inj.cuts) > 0 }

func macSet(macs []ethernet.MAC) map[ethernet.MAC]bool {
	s := make(map[ethernet.MAC]bool, len(macs))
	for _, m := range macs {
		s[m] = true
	}
	return s
}

// cutFn is the CutFunc installed on the bus: a delivery is suppressed when
// any active partition separates src from dst.
func (inj *Injector) cutFn(src, dst ethernet.MAC) bool {
	for _, cut := range inj.cuts {
		if (cut[0][src] && cut[1][dst]) || (cut[1][src] && cut[0][dst]) {
			return true
		}
	}
	return false
}

// LossBurstAfter schedules a loss burst: after d, each frame is dropped
// independently with probability p for dur, then the previous loss model
// is restored. This generalizes a static LossRate to time-bounded bursts.
func (inj *Injector) LossBurstAfter(d, dur time.Duration, p float64) {
	inj.eng.After(d, func() {
		saved := inj.net.Loss()
		inj.net.SetLoss(ethernet.RandomLoss(inj.eng, p))
		inj.eng.After(dur, func() { inj.net.SetLoss(saved) })
	})
}

// CorruptBurstAfter schedules a corruption burst: after d, each frame is
// mangled in transit with probability p for dur (the receiver's packet
// layer rejects it), then the previous corruption model is restored.
func (inj *Injector) CorruptBurstAfter(d, dur time.Duration, p float64) {
	eng := inj.eng
	inj.eng.After(d, func() {
		saved := inj.net.Corrupt()
		inj.net.SetCorrupt(func(ethernet.Frame) bool { return eng.Rand().Float64() < p })
		inj.eng.After(dur, func() { inj.net.SetCorrupt(saved) })
	})
}

// MigrationFault arms a one-shot fault: the next migration to reach the
// given phase (and, for PhasePrecopy, the given round) has the chosen
// participant crashed at that point. Arming with VictimNone disarms.
func (inj *Injector) MigrationFault(phase trace.Phase, round int, victim Victim) {
	if victim == VictimNone {
		inj.mig = nil
		return
	}
	inj.mig = &migFault{phase: phase, round: round, victim: victim}
}

// Armed reports whether a migration fault is currently armed.
func (inj *Injector) Armed() bool { return inj.mig != nil }

// OnPhase is wired as the migrator's FaultHook: when the armed fault
// matches the reported phase point it crashes the victim and disarms.
func (inj *Injector) OnPhase(pp PhasePoint) {
	mf := inj.mig
	if mf == nil || pp.Phase != mf.phase {
		return
	}
	if mf.phase == trace.PhasePrecopy && pp.Round != mf.round {
		return
	}
	inj.mig = nil
	victim := pp.Dst
	if mf.victim == VictimSource {
		victim = pp.Src
	}
	inj.tb.Publish(trace.Event{
		At: inj.eng.Now(), Host: uint16(victim), Kind: trace.EvMigFault,
		LH: pp.LH, Prio: int(pp.Phase), Size: pp.Round,
	})
	inj.Crash(victim)
}
