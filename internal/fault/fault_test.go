package fault

import (
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
)

// rig is a three-station segment with per-station delivery counters.
type rig struct {
	eng  *sim.Engine
	bus  *ethernet.Bus
	tb   *trace.Bus
	inj  *Injector
	nics [3]*ethernet.NIC
	got  [3][]ethernet.Frame
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(1), tb: trace.NewBus()}
	r.bus = ethernet.NewBus(r.eng)
	r.bus.SetTraceBus(r.tb)
	r.inj = New(r.eng, r.bus, r.tb)
	for i := range r.nics {
		i := i
		r.nics[i] = r.bus.Attach(ethernet.MAC(i + 1))
		r.nics[i].SetRecv(func(f ethernet.Frame) { r.got[i] = append(r.got[i], f) })
	}
	return r
}

func (r *rig) send(src, dst int, payload byte) {
	r.nics[src].StartSend(ethernet.Frame{Dst: ethernet.MAC(dst + 1), Payload: []byte{payload}}, nil)
}

func TestPartitionSeversBothDirectionsAndHeals(t *testing.T) {
	r := newRig(t)
	r.inj.Partition([]ethernet.MAC{1}, []ethernet.MAC{2})
	r.send(0, 1, 'a') // ws0→ws1: cut
	r.send(1, 0, 'b') // ws1→ws0: cut (other direction)
	r.send(0, 2, 'c') // ws0→ws2: unaffected
	r.eng.RunFor(time.Second)
	if len(r.got[0]) != 0 || len(r.got[1]) != 0 {
		t.Fatalf("partition leaked: got[0]=%d got[1]=%d", len(r.got[0]), len(r.got[1]))
	}
	if len(r.got[2]) != 1 {
		t.Fatalf("third party affected: got[2]=%d", len(r.got[2]))
	}
	if st := r.bus.Stats(); st.Cut != 2 {
		t.Fatalf("Cut = %d, want 2", st.Cut)
	}
	if !r.inj.Partitioned() {
		t.Fatal("Partitioned() = false with an active cut")
	}

	// Broadcast from a partitioned host reaches only its own side.
	r.nics[0].StartSend(ethernet.Frame{Dst: ethernet.Broadcast, Payload: []byte{'d'}}, nil)
	r.eng.RunFor(time.Second)
	if len(r.got[1]) != 0 || len(r.got[2]) != 2 {
		t.Fatalf("broadcast across cut: got[1]=%d got[2]=%d", len(r.got[1]), len(r.got[2]))
	}

	r.inj.Heal()
	r.send(0, 1, 'e')
	r.eng.RunFor(time.Second)
	if len(r.got[1]) != 1 {
		t.Fatalf("heal did not restore delivery: got[1]=%d", len(r.got[1]))
	}
	if r.tb.Count(trace.EvPartition) != 1 || r.tb.Count(trace.EvHeal) != 1 {
		t.Fatalf("partition/heal events = %d/%d, want 1/1",
			r.tb.Count(trace.EvPartition), r.tb.Count(trace.EvHeal))
	}
}

func TestLossAndCorruptionBurstsRestoreModels(t *testing.T) {
	r := newRig(t)
	// Certain loss for 1 s starting at t=1 s; certain corruption for 1 s
	// starting at t=3 s.
	r.inj.LossBurstAfter(time.Second, time.Second, 1.0)
	r.inj.CorruptBurstAfter(3*time.Second, time.Second, 1.0)

	r.send(0, 1, 'a') // t=0: before bursts, delivered intact
	r.eng.RunFor(1500 * time.Millisecond)
	r.send(0, 1, 'b') // t=1.5s: lost
	r.eng.RunFor(2 * time.Second)
	r.send(0, 1, 'c') // t=3.5s: delivered, mangled
	r.eng.RunFor(time.Second)
	r.send(0, 1, 'd') // t=4.5s: after bursts, delivered intact

	r.eng.RunFor(time.Second)
	want := []byte{'a', 0, 'd'}
	if len(r.got[1]) != len(want) {
		t.Fatalf("delivered %d frames, want %d", len(r.got[1]), len(want))
	}
	for i, f := range r.got[1] {
		if f.Payload[0] != want[i] {
			t.Fatalf("frame %d payload = %q, want %q", i, f.Payload[0], want[i])
		}
	}
	st := r.bus.Stats()
	if st.Dropped != 1 || st.Corrupted != 1 {
		t.Fatalf("Dropped/Corrupted = %d/%d, want 1/1", st.Dropped, st.Corrupted)
	}
	if r.bus.Loss() != nil || r.bus.Corrupt() != nil {
		t.Fatal("burst did not restore the previous (nil) models")
	}
}

func TestMigrationFaultMatchesPhaseAndRound(t *testing.T) {
	r := newRig(t)
	crashed := map[ethernet.MAC]int{}
	for _, mac := range []ethernet.MAC{1, 2} {
		mac := mac
		r.inj.RegisterHost(mac, func() { crashed[mac]++ }, func() {})
	}
	r.inj.MigrationFault(trace.PhasePrecopy, 1, VictimDest)
	pp := PhasePoint{LH: 0x0101, Src: 1, Dst: 2}

	pp.Phase, pp.Round = trace.PhaseSelect, 0
	r.inj.OnPhase(pp) // wrong phase: ignored
	pp.Phase, pp.Round = trace.PhasePrecopy, 0
	r.inj.OnPhase(pp) // wrong round: ignored
	if len(crashed) != 0 {
		t.Fatalf("fault fired early: %v", crashed)
	}
	pp.Round = 1
	r.inj.OnPhase(pp)
	if crashed[2] != 1 || crashed[1] != 0 {
		t.Fatalf("victim selection wrong: %v", crashed)
	}
	if r.inj.Armed() {
		t.Fatal("fault did not disarm after firing")
	}
	r.inj.OnPhase(pp) // disarmed: no second crash
	if crashed[2] != 1 {
		t.Fatalf("fault fired twice: %v", crashed)
	}
	if r.tb.Count(trace.EvMigFault) != 1 {
		t.Fatalf("EvMigFault count = %d, want 1", r.tb.Count(trace.EvMigFault))
	}

	// VictimSource kills the other side.
	r.inj.MigrationFault(trace.PhaseSwap, 0, VictimSource)
	pp.Phase, pp.Round = trace.PhaseSwap, 0
	r.inj.OnPhase(pp)
	if crashed[1] != 1 {
		t.Fatalf("source victim not crashed: %v", crashed)
	}
}
