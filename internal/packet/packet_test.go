package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"vsystem/internal/vid"
)

func TestRoundTripRequest(t *testing.T) {
	p := &Packet{
		Kind: KRequest,
		TxID: 42,
		Src:  vid.NewPID(3, 17),
		Dst:  vid.NewPID(9, 1),
		Msg: vid.Message{
			Op:   7,
			Code: 0,
			W:    [6]uint32{1, 2, 3, 4, 5, 6},
			Seg:  []byte("payload"),
		},
	}
	got, err := Unmarshal(Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("got %+v\nwant %+v", got, p)
	}
}

func TestRoundTripHeaderOnlyKinds(t *testing.T) {
	for _, k := range []Kind{KReplyPending, KNoProc, KLocateReq, KLocateResp, KBinding} {
		p := &Packet{Kind: k, TxID: 9, Src: vid.NewPID(1, 16), Dst: vid.NewPID(2, 16), LH: 5}
		got, err := Unmarshal(Marshal(p))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("%v: got %+v want %+v", k, got, p)
		}
	}
}

func TestRoundTripFrag(t *testing.T) {
	p := &Packet{
		Kind:      KFrag,
		TxID:      3,
		Src:       vid.NewPID(1, 16),
		Dst:       vid.NewPID(2, 1),
		OfKind:    KRequest,
		FragIdx:   4,
		FragCount: 9,
		Data:      bytes.Repeat([]byte{0xAB}, FragChunk),
	}
	got, err := Unmarshal(Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatal("frag round trip mismatch")
	}
}

func TestRoundTripFragNack(t *testing.T) {
	p := &Packet{
		Kind:    KFragNack,
		TxID:    8,
		Src:     vid.NewPID(1, 16),
		Dst:     vid.NewPID(2, 16),
		OfKind:  KReply,
		Missing: []uint16{0, 3, 31},
	}
	got, err := Unmarshal(Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatal("nack round trip mismatch")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil decode succeeded")
	}
	if _, err := Unmarshal([]byte{0xFF, 0, 0}); err != ErrBadKind {
		t.Fatalf("bad kind: %v", err)
	}
	good := Marshal(&Packet{Kind: KRequest, Msg: vid.Message{Seg: []byte("abcdef")}})
	for n := 1; n < len(good); n++ {
		if _, err := Unmarshal(good[:n]); err == nil {
			t.Fatalf("truncated decode at %d succeeded", n)
		}
	}
}

func TestNumFrags(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {InlineSegMax, 0},
		{InlineSegMax + 1, 2}, {2048, 2}, {2049, 3}, {32768, 32},
	}
	for _, c := range cases {
		if got := NumFrags(c.n); got != c.want {
			t.Errorf("NumFrags(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFragOfReassembles(t *testing.T) {
	seg := make([]byte, 5000)
	rand.New(rand.NewSource(1)).Read(seg)
	n := NumFrags(len(seg))
	var out []byte
	for i := 0; i < n; i++ {
		out = append(out, FragOf(seg, i)...)
	}
	if !bytes.Equal(out, seg) {
		t.Fatal("fragments do not reassemble")
	}
}

// Property: marshal→unmarshal is the identity for randomly generated
// request/reply packets.
func TestQuickRoundTrip(t *testing.T) {
	f := func(txid uint32, src, dst uint32, op, code uint16, w [6]uint32, seg []byte, isReply bool) bool {
		if len(seg) > InlineSegMax {
			seg = seg[:InlineSegMax]
		}
		if len(seg) == 0 {
			seg = nil
		}
		k := KRequest
		if isReply {
			k = KReply
		}
		p := &Packet{
			Kind: k, TxID: txid,
			Src: vid.PID(src), Dst: vid.PID(dst),
			Msg: vid.Message{Op: op, Code: code, W: w, Seg: seg},
		}
		got, err := Unmarshal(Marshal(p))
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random garbage either fails to decode or decodes without
// panicking; never both panics.
func TestQuickFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Error("Unmarshal panicked")
			}
		}()
		Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
