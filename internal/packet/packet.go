// Package packet defines the inter-kernel wire protocol of the simulated
// V-System: the packet kinds, their binary encoding, and fragmentation of
// large segments into Ethernet-sized frames.
//
// The protocol is the substrate the paper's migration machinery depends on:
// request/reply transactions with retransmission, reply-pending packets for
// busy or frozen destinations (§3.1.3), logical-host locate broadcasts and
// new-binding notices for reference rebinding (§3.1.4), and multi-frame
// transfers for the 32 Kbyte units V routinely moved (§3.1).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vsystem/internal/vid"
)

// Kind discriminates packet types.
type Kind uint8

const (
	// KInvalid is the zero Kind.
	KInvalid Kind = iota
	// KRequest carries a Send's message to the destination process.
	KRequest
	// KReply carries the reply message back to the sender.
	KReply
	// KReplyPending tells a retransmitting sender that its request was
	// received but the reply is not ready (receiver busy, queued, or
	// frozen); it resets the sender's abort timer.
	KReplyPending
	// KNoProc tells the sender the destination process does not exist.
	KNoProc
	// KLocateReq broadcasts "which host has logical host L?".
	KLocateReq
	// KLocateResp answers a locate; the answering host's MAC is the
	// frame source.
	KLocateResp
	// KBinding broadcasts a new logical-host binding after migration
	// (the §3.1.4 optimization).
	KBinding
	// KFrag carries one fragment of a large segment; the carried
	// OfKind/TxID/Src identify the logical packet it belongs to.
	KFrag
	// KFragNack asks the original sender to retransmit the listed
	// missing fragments (selective repair).
	KFragNack
	// KLoadAd broadcasts a host's compact load advertisement (the
	// scheduling layer's periodic beacon); the Ad words carry the load.
	KLoadAd
	kindMax
)

var kindNames = [...]string{
	"invalid", "request", "reply", "reply-pending", "no-proc",
	"locate-req", "locate-resp", "binding", "frag", "frag-nack", "load-ad",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// InlineSegMax is the largest segment carried inline in a single frame;
// larger segments are fragmented.
const InlineSegMax = 1024

// FragChunk is the fragment payload size.
const FragChunk = 1024

// Packet is the decoded form of any protocol packet. Field use varies by
// Kind; unused fields encode as zero.
type Packet struct {
	Kind Kind
	// TxID identifies the transaction (per sending process, monotonic).
	TxID uint32
	// Src and Dst are process identifiers; for locate/binding packets
	// they are unused.
	Src, Dst vid.PID
	// LH is the subject of locate and binding packets.
	LH vid.LHID
	// Msg is the fixed-part message for KRequest/KReply.
	Msg vid.Message
	// SegLen is the total segment length when the segment travels as
	// fragments (FragCount > 0); the Msg.Seg field is then empty.
	SegLen uint32
	// FragCount is the number of KFrag frames the segment was split
	// into (0 = inline or no segment).
	FragCount uint16
	// OfKind / FragIdx describe a KFrag: which logical packet kind it
	// belongs to and which chunk it carries.
	OfKind  Kind
	FragIdx uint16
	// Data is the fragment chunk (KFrag).
	Data []byte
	// Missing lists fragment indices to retransmit (KFragNack).
	Missing []uint16
	// Ad is a compact load advertisement: piggybacked on KReply frames
	// when the sending kernel exports one (HasAd set), and the payload of
	// KLoadAd beacons. Word layout is owned by internal/sched.
	Ad    [6]uint32
	HasAd bool
}

// ErrTruncated reports a malformed/short encoding.
var ErrTruncated = errors.New("packet: truncated")

// ErrBadKind reports an unknown packet kind.
var ErrBadKind = errors.New("packet: bad kind")

const headerLen = 1 + 4 + 4 + 4 + 2 // kind, txid, src, dst, lh

// Marshal encodes the packet.
func Marshal(p *Packet) []byte {
	// Conservative capacity: header + fixed message + variable parts.
	b := make([]byte, 0, headerLen+40+len(p.Msg.Seg)+len(p.Data)+2*len(p.Missing)+16)
	b = append(b, byte(p.Kind))
	b = binary.LittleEndian.AppendUint32(b, p.TxID)
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Src))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Dst))
	b = binary.LittleEndian.AppendUint16(b, uint16(p.LH))
	switch p.Kind {
	case KRequest, KReply:
		b = binary.LittleEndian.AppendUint16(b, p.Msg.Op)
		b = binary.LittleEndian.AppendUint16(b, p.Msg.Code)
		for _, w := range p.Msg.W {
			b = binary.LittleEndian.AppendUint32(b, w)
		}
		b = binary.LittleEndian.AppendUint32(b, p.SegLen)
		b = binary.LittleEndian.AppendUint16(b, p.FragCount)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Msg.Seg)))
		b = append(b, p.Msg.Seg...)
		if p.Kind == KReply {
			if p.HasAd {
				b = append(b, 1)
				for _, w := range p.Ad {
					b = binary.LittleEndian.AppendUint32(b, w)
				}
			} else {
				b = append(b, 0)
			}
		}
	case KLoadAd:
		for _, w := range p.Ad {
			b = binary.LittleEndian.AppendUint32(b, w)
		}
	case KFrag:
		b = append(b, byte(p.OfKind))
		b = binary.LittleEndian.AppendUint16(b, p.FragIdx)
		b = binary.LittleEndian.AppendUint16(b, p.FragCount)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Data)))
		b = append(b, p.Data...)
	case KFragNack:
		b = append(b, byte(p.OfKind))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Missing)))
		for _, m := range p.Missing {
			b = binary.LittleEndian.AppendUint16(b, m)
		}
	case KReplyPending, KNoProc, KLocateReq, KLocateResp, KBinding:
		// Header-only kinds.
	default:
		panic(fmt.Sprintf("packet: marshal of %v", p.Kind))
	}
	return b
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.b) {
		r.err = ErrTruncated
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[r.off:r.off+n])
	r.off += n
	return v
}

// Unmarshal decodes a packet.
func Unmarshal(b []byte) (*Packet, error) {
	r := &reader{b: b}
	p := &Packet{}
	p.Kind = Kind(r.u8())
	if p.Kind == KInvalid || p.Kind >= kindMax {
		return nil, ErrBadKind
	}
	p.TxID = r.u32()
	p.Src = vid.PID(r.u32())
	p.Dst = vid.PID(r.u32())
	p.LH = vid.LHID(r.u16())
	switch p.Kind {
	case KRequest, KReply:
		p.Msg.Op = r.u16()
		p.Msg.Code = r.u16()
		for i := range p.Msg.W {
			p.Msg.W[i] = r.u32()
		}
		p.SegLen = r.u32()
		p.FragCount = r.u16()
		n := int(r.u16())
		if n > 0 {
			p.Msg.Seg = r.bytes(n)
		}
		if p.Kind == KReply {
			p.HasAd = r.u8() != 0
			if p.HasAd {
				for i := range p.Ad {
					p.Ad[i] = r.u32()
				}
			}
		}
	case KLoadAd:
		p.HasAd = true
		for i := range p.Ad {
			p.Ad[i] = r.u32()
		}
	case KFrag:
		p.OfKind = Kind(r.u8())
		p.FragIdx = r.u16()
		p.FragCount = r.u16()
		n := int(r.u16())
		p.Data = r.bytes(n)
	case KFragNack:
		p.OfKind = Kind(r.u8())
		n := int(r.u16())
		p.Missing = make([]uint16, n)
		for i := 0; i < n; i++ {
			p.Missing[i] = r.u16()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}

// NumFrags returns how many KFrag frames a segment of n bytes needs, or 0
// if it fits inline.
func NumFrags(n int) int {
	if n <= InlineSegMax {
		return 0
	}
	return (n + FragChunk - 1) / FragChunk
}

// FragOf extracts fragment i of the given segment.
func FragOf(seg []byte, i int) []byte {
	lo := i * FragChunk
	hi := lo + FragChunk
	if hi > len(seg) {
		hi = len(seg)
	}
	return seg[lo:hi]
}

func (p *Packet) String() string {
	switch p.Kind {
	case KLocateReq, KLocateResp, KBinding:
		return fmt.Sprintf("%v(%v)", p.Kind, p.LH)
	case KFrag:
		return fmt.Sprintf("frag(%v tx=%d %d/%d)", p.OfKind, p.TxID, p.FragIdx+1, p.FragCount)
	default:
		return fmt.Sprintf("%v(tx=%d %v→%v)", p.Kind, p.TxID, p.Src, p.Dst)
	}
}
