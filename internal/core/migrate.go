package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/fault"
	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/progmgr"
	"vsystem/internal/sched"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Policy selects the migration mechanism.
type Policy int

const (
	// PolicyPrecopy is the paper's design (§3.1): iteratively copy the
	// address spaces while the program runs, freeze only for the residue.
	PolicyPrecopy Policy = iota
	// PolicyStopCopy is the naive comparator the paper argues against:
	// freeze first, then copy everything ("frozen for over 6 seconds" for
	// a 2 MB host, §3.1).
	PolicyStopCopy
	// PolicyFlush is the §3.2 virtual-memory variant: flush pages to the
	// network file server, move kernel state only, and demand-fault pages
	// in on the new host.
	PolicyFlush
	// PolicyForwarding is PolicyPrecopy but with Demos/MP-style
	// forwarding addresses instead of rebinding (§5): the old host keeps
	// a forwarding entry and no new binding is broadcast.
	PolicyForwarding
	// PolicyPostcopy inverts the residue cost: freeze immediately, move
	// kernel state only, swap the identity, and let the destination
	// demand-fault every page from a frozen source receptacle while the
	// guest already runs (with a background pull and a source push-out
	// racing the faults).
	PolicyPostcopy
	// PolicyHybrid is post-copy with hot-working-set pre-copy: a short
	// recent-dirty sample picks the hot pages, which are copied before
	// the freeze; re-dirtied ones are invalidated (not re-copied) during
	// the freeze, and everything else moves post-swap.
	PolicyHybrid
)

func (p Policy) String() string {
	switch p {
	case PolicyPrecopy:
		return "precopy"
	case PolicyStopCopy:
		return "stop-and-copy"
	case PolicyFlush:
		return "vm-flush"
	case PolicyForwarding:
		return "forwarding"
	case PolicyPostcopy:
		return "postcopy"
	case PolicyHybrid:
		return "hybrid"
	}
	return "?"
}

// ParsePolicy maps a command-line policy name to its enum value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "precopy":
		return PolicyPrecopy, nil
	case "stopcopy", "stop-and-copy":
		return PolicyStopCopy, nil
	case "flush", "vm-flush":
		return PolicyFlush, nil
	case "forwarding":
		return PolicyForwarding, nil
	case "postcopy":
		return PolicyPostcopy, nil
	case "hybrid":
		return PolicyHybrid, nil
	}
	return 0, fmt.Errorf("unknown policy %q (precopy|stopcopy|flush|forwarding|postcopy|hybrid)", s)
}

// RoundStat describes one pre-copy (or flush) round.
type RoundStat struct {
	Pages int
	KB    float64
	Dur   time.Duration
	// CopyRateKBps is the round's effective copy rate (address-space KB
	// moved per second of round wall time, counting elided zero pages as
	// moved — that is what the destination ends up holding).
	CopyRateKBps float64
}

// MigrationReport is returned to the migrateprog requester and consumed by
// the experiment harness.
type MigrationReport struct {
	Policy      string
	Rounds      []RoundStat
	ResidualKB  float64       // copied while frozen
	FreezeTime  time.Duration // freeze → unfreeze acknowledged
	KernelItems int           // processes + address spaces
	KernelTime  time.Duration // kernel/program-manager state copy
	Total       time.Duration
	BytesCopied int64
	DestHost    vid.LHID // target's system logical host
	NewPM       vid.PID

	// Bulk-transfer engine accounting: bytes actually put on the wire
	// after zero-page elision (vs BytesCopied, the logical space moved),
	// and the copy window's size, issue count, full-window stalls and mean
	// occupancy at issue time.
	WireBytes       int64
	WindowSize      int
	WindowSends     int64
	WindowStalls    int64
	WindowOccupancy float64

	// Post-copy residue accounting (postcopy/hybrid policies; zero
	// otherwise): demand faults taken at the destination after the
	// identity swap, the total time faulting processes were parked, the
	// KB the destination pulled from the source receptacle (demand plus
	// background) and the resulting pull bandwidth, the KB the source's
	// push-out delivered, and whether the residue was lost (destination
	// died after the commit point — the migration stands, the guest is
	// gone).
	PostSwapFaults   int
	PostSwapStall    time.Duration
	PostSwapPullKB   float64
	PostSwapPullKBps float64
	ResiduePushKB    float64
	ResidueAborted   bool
}

// Encode serializes the report.
func (r *MigrationReport) Encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// DecodeReport parses a MigrationReport.
func DecodeReport(b []byte) (*MigrationReport, error) {
	var r MigrationReport
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ErrMigrationFailed wraps a failed migration attempt.
var ErrMigrationFailed = errors.New("core: migration failed")

// ErrResidueLost marks a post-copy residue that could not be completed:
// the destination aborted it or stopped making progress before every
// deferred page became resident.
var ErrResidueLost = errors.New("core: post-copy residue lost")

// PhaseError reports which phase of the §3.1 algorithm a migration attempt
// failed in. It matches both ErrMigrationFailed and its cause under
// errors.Is/As, and carries the failed destination so a retry can exclude
// it.
//
// Retryable is set only by the migrator itself: true means the attempt is
// known not to have moved the logical host's identity (all pre-swap phases,
// plus swap/rebind failures where the destination positively confirmed the
// copy does not hold it), so trying an alternate host cannot produce a
// second live copy. Errors reconstructed from the wire (Agent.Migrate) do
// not carry it.
type PhaseError struct {
	Phase     trace.Phase
	Round     int      // pre-copy round, when Phase == trace.PhasePrecopy
	Dest      vid.LHID // destination system LH; 0 if selection never completed
	Retryable bool     // identity provably did not move; alternate-host retry is safe
	Err       error    // underlying cause (send abort, refused reply, ...)
}

func (e *PhaseError) Error() string {
	s := "core: migration failed at " + e.Phase.String()
	if e.Phase == trace.PhasePrecopy {
		s += fmt.Sprintf(" round %d", e.Round)
	}
	if e.Dest != 0 {
		s += fmt.Sprintf(" (dest %v)", e.Dest)
	}
	return s + ": " + e.Err.Error()
}

// Unwrap makes errors.Is(err, ErrMigrationFailed) hold for every phase
// failure while keeping the cause inspectable.
func (e *PhaseError) Unwrap() []error { return []error{ErrMigrationFailed, e.Err} }

// PhaseTag encodes the failure point for the wire (progmgr relays it in
// the refused reply): phase+1 so that 0 means "no phase information".
func (e *PhaseError) PhaseTag() (uint32, uint32) {
	return uint32(e.Phase) + 1, uint32(e.Round)
}

// sendErr normalizes a Send outcome into a non-nil error: the transport
// error if the send aborted, otherwise the reply's error code.
func sendErr(err error, m vid.Message) error {
	if err != nil {
		return err
	}
	return m.Err()
}

// Migrator implements progmgr.Migrator: the sending side of migration,
// running on the source host's migration worker at system priority
// ("higher priority than all other programs on the originating host",
// §3.1.2; the per-packet work runs at kernel priority).
type Migrator struct {
	Policy  Policy
	Cluster *Cluster

	// Selector, when set, chooses migration destinations through the
	// node's scheduling policy and cached load view; nil falls back to
	// the baseline first-response SelectHost.
	Selector *sched.Selector

	// FaultHook, when set, is called at each phase boundary of an
	// in-flight migration so a fault injector can crash a participant at
	// a precise point (fault.Injector.OnPhase is the standard hook).
	FaultHook func(fault.PhasePoint)

	// Reports collects every migration this engine performed.
	Reports []*MigrationReport

	// Retries counts attempts that were retried to an alternate
	// destination after a typed phase failure.
	Retries int

	// freezeStart records when the in-flight migration froze the logical
	// host (migrations are serialized by the program manager's worker).
	freezeStart sim.Time

	// scratch is the page-run staging slice, sized once and reused across
	// every batch of a migration (the encoder snapshots page contents into
	// the wire segment, so reuse across in-flight sends is safe).
	scratch [][]byte
}

var _ progmgr.Migrator = (*Migrator)(nil)

// selectDest picks a migration destination through the configured
// scheduling selector (or the baseline protocol when none is wired).
func (mg *Migrator) selectDest(ctx *kernel.ProcCtx, minMem uint32, exclude ...vid.LHID) (HostSel, error) {
	if mg.Selector == nil {
		return SelectHost(ctx, minMem, exclude...)
	}
	l, err := mg.Selector.Select(ctx, minMem, exclude...)
	if err != nil {
		return HostSel{}, ErrNoHost
	}
	return HostSel{PM: l.PM, SystemLH: l.SystemLH, MemFree: l.MemFree}, nil
}

// span publishes a completed migration phase to the cluster's trace bus.
func (mg *Migrator) span(s trace.Span) {
	if mg.Cluster != nil {
		mg.Cluster.Trace.PublishSpan(s)
	}
}

// atPhase reports a phase boundary to the fault hook, if any.
func (mg *Migrator) atPhase(lh vid.LHID, ph trace.Phase, round int, src, dst ethernet.MAC) {
	if mg.FaultHook != nil {
		mg.FaultHook(fault.PhasePoint{LH: lh, Phase: ph, Round: round, Src: src, Dst: dst})
	}
}

// Migrate moves lh to another workstation per §3.1:
//
//  1. locate a willing host via the program-manager group;
//  2. initialize descriptors for the new copy under a different LHID;
//  3. pre-copy the address-space state (policy-dependent);
//  4. freeze, copy the residue and the kernel/program-manager state;
//  5. change the new copy's LHID to the original, unfreeze it (broadcasting
//     the new binding), delete the old copy.
//
// A destination that dies mid-migration leaves the original unfrozen and
// running (§3.1.3); the migrator then retries to an alternate host,
// excluding destinations that already failed, with exponential backoff,
// up to params.MigrateMaxAttempts. Selection failures (no willing host)
// are not retried — there is nowhere else to go — and neither are
// failures where the identity swap may already have taken effect on the
// unreachable destination (the copy there would be adopted and unfrozen;
// retrying to a third host could then run the same logical host twice).
// Only attempts marked Retryable — identity provably still here — are
// redirected.
func (mg *Migrator) Migrate(ctx *kernel.ProcCtx, pm *progmgr.PM, lh *kernel.LogicalHost) ([]byte, vid.PID, error) {
	host := pm.Host()
	var excludes []vid.LHID
	var firstErr error
	for attempt := 0; attempt < params.MigrateMaxAttempts; attempt++ {
		rep, err := mg.migrate(ctx, pm, lh, excludes)
		if err == nil {
			mg.Reports = append(mg.Reports, rep)
			return rep.Encode(), rep.NewPM, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		var pe *PhaseError
		if !errors.As(err, &pe) || !pe.Retryable || pe.Dest == 0 || len(excludes) >= 3 {
			break // unsafe to retry, or no known-bad destination to route around
		}
		excludes = append(excludes, pe.Dest)
		if attempt+1 >= params.MigrateMaxAttempts {
			break
		}
		mg.Retries++
		ctx.Sleep(params.MigrateRetryBackoff << attempt)
		// The program ran unfrozen during the backoff; it may have exited
		// or been destroyed meanwhile.
		if cur, ok := host.LookupLH(lh.ID()); !ok || cur != lh || lh.Frozen() {
			break
		}
	}
	return nil, vid.Nil, firstErr
}

func (mg *Migrator) migrate(ctx *kernel.ProcCtx, pm *progmgr.PM, lh *kernel.LogicalHost, excludes []vid.LHID) (*MigrationReport, error) {
	host := pm.Host()
	start := ctx.Now()
	rep := &MigrationReport{Policy: mg.Policy.String()}
	cp := mg.Policy.copyPolicy()
	if cp == nil {
		return nil, fmt.Errorf("%w: unknown policy %v", ErrMigrationFailed, mg.Policy)
	}
	// The migrating identity. lh.ID() matches it until a post-copy
	// BeforeUnfreeze renames the source copy into a residue receptacle,
	// so every post-swap step uses this instead.
	finalID := lh.ID()

	// 1. Locate a new host, excluding ourselves and destinations that
	// already failed this migration.
	sel, err := mg.selectDest(ctx, lh.MemUsed()+64*1024,
		append([]vid.LHID{host.SystemLH().ID()}, excludes...)...)
	if err != nil {
		return nil, &PhaseError{Phase: trace.PhaseSelect, Err: err}
	}
	rep.DestHost = sel.SystemLH
	srcMAC, dstMAC := host.NIC.MAC(), targetMAC(sel)

	// 2. Initialize the new copy's descriptors under a different LHID.
	var descs []kernel.SpaceDesc
	for _, as := range lh.Spaces() {
		descs = append(descs, kernel.SpaceDesc{ID: as.ID, Size: as.Size()})
	}
	progArgs, progStdout := pm.ProgMeta(lh.ID())
	initRep, err := ctx.Send(sel.PM, vid.Message{
		Op: progmgr.PmInitMigration,
		Seg: progmgr.EncodeInitReq(&progmgr.InitReq{
			Name:    lh.Name(),
			Guest:   lh.Guest(),
			FinalLH: lh.ID(),
			SrcLH:   host.SystemLH().ID(),
			Spaces:  descs,
			Args:    progArgs,
			Stdout:  progStdout,
		}),
	})
	if err != nil || !initRep.OK() {
		return nil, &PhaseError{
			Phase: trace.PhaseSelect, Dest: sel.SystemLH, Retryable: true,
			Err: sendErr(err, initRep),
		}
	}
	tempLH := vid.LHID(initRep.W[0])
	targetKS := kernel.KernelServerPID(vid.LHID(initRep.W[1]))
	rep.NewPM = vid.PID(initRep.W[5])
	mg.span(trace.Span{LH: lh.ID(), Phase: trace.PhaseSelect, Start: start, End: ctx.Now()})
	mg.atPhase(lh.ID(), trace.PhaseSelect, 0, srcMAC, dstMAC)

	// The bulk-transfer window lives in the source's system logical host
	// (never frozen) for the whole attempt; every copy path — pre-copy
	// rounds, frozen residue, stop-and-copy, the flush policy's page-out —
	// pipelines through it.
	win := host.IPC.NewWindow(host.SystemLH().ID(), params.CopyWindow)
	rep.WindowSize = win.Size()
	defer func() {
		ws := win.Stats()
		rep.WindowSends, rep.WindowStalls, rep.WindowOccupancy = ws.Sends, ws.Stalls, ws.AvgOccupancy
		win.Close()
	}()

	fail := func(ph trace.Phase, round int, retryable bool, cause error) (*MigrationReport, error) {
		// Copy failed: keep the original authoritative and unfreeze it to
		// avoid timeouts (§3.1.3 — "the execution of the program is
		// unaffected except for a delay"; the paper's implementation then
		// "simply gives up"; ours additionally lets Migrate retry to an
		// alternate host, but only when the identity provably never moved).
		host.Unfreeze(lh, false)
		return nil, &PhaseError{
			Phase: ph, Round: round, Dest: sel.SystemLH, Retryable: retryable, Err: cause,
		}
	}

	// 3+4. Copy address-space state per policy, ending frozen. All of
	// these phases precede the identity swap, so their failures are
	// retry-safe.
	at := &copyAttempt{
		mg: mg, ctx: ctx, pm: pm, host: host, lh: lh,
		sel: sel, finalID: finalID, tempLH: tempLH, targetKS: targetKS,
		win: win, rep: rep, srcMAC: srcMAC, dstMAC: dstMAC,
	}
	if ph, round, err := cp.PreSwap(at); err != nil {
		return fail(ph, round, true, err)
	}

	// The logical host is now frozen. Copy kernel server + program
	// manager state: the source charges its share of the measured cost,
	// the target's kernel server charges the rest when installing.
	kStart := ctx.Now()
	mg.atPhase(lh.ID(), trace.PhaseSwap, 0, srcMAC, dstMAC)
	st := host.SnapshotKernelState(lh)
	rep.KernelItems = st.Items()
	ctx.Compute(params.KernelStateBaseCPU/2 + time.Duration(st.Items())*params.KernelStatePerItemCPU/2)
	m, err := ctx.Send(targetKS, vid.Message{
		Op: kernel.KsSetState, W: [6]uint32{uint32(tempLH)}, Seg: st.Encode(),
	})
	if err != nil || !m.OK() {
		// The placeholder still holds its temporary identity, so nothing
		// has moved: retrying elsewhere is safe.
		return fail(trace.PhaseSwap, 0, true, sendErr(err, m))
	}
	// Assume the original identity. Until this succeeds the original is
	// authoritative; once it succeeds the new copy owns the identity and
	// the destination's adoption watchdog can finish the hand-over even if
	// we die before unfreezing it.
	m, err = ctx.Send(targetKS, vid.Message{
		Op: kernel.KsChangeLHID, W: [6]uint32{uint32(tempLH), uint32(finalID)},
	})
	switch {
	case err != nil:
		// The send aborted with no reply — but the request may well have
		// been executed and only the reply lost, in which case the
		// destination owns the identity and its adoption watchdog will
		// unfreeze the copy. Ask the destination whether the swap actually
		// happened before deciding.
		switch confirmed, swapped := mg.probeDest(ctx, targetKS, finalID); {
		case confirmed && swapped:
			// Swap took effect; proceed as if the reply had arrived.
		case confirmed:
			return fail(trace.PhaseSwap, 0, true, err)
		default:
			// Destination unreachable: the copy there may yet be adopted,
			// so the identity must not be offered to a third host. Keep
			// the original running and give up.
			return fail(trace.PhaseSwap, 0, false, err)
		}
	case !m.OK():
		// Definitive refusal from a live destination: no swap happened.
		return fail(trace.PhaseSwap, 0, true, m.Err())
	}
	rep.KernelTime = ctx.Now().Sub(kStart)
	mg.span(trace.Span{LH: finalID, Phase: trace.PhaseSwap, Start: kStart, End: ctx.Now()})
	mg.atPhase(finalID, trace.PhaseRebind, 0, srcMAC, dstMAC)
	// Demand-paging setup (flush's file-server pager, post-copy's
	// receptacle and remote-fault path) before the new copy can run.
	cp.BeforeUnfreeze(at)

	// 5. Unfreeze the new copy (broadcasting the binding unless running
	// the forwarding comparator), delete the old copy, notify the new
	// manager.
	broadcast := uint32(1)
	if mg.Policy == PolicyForwarding {
		broadcast = 0
	}
	rbStart := ctx.Now()
	m, err = ctx.Send(targetKS, vid.Message{
		Op: kernel.KsUnfreezeLH, W: [6]uint32{uint32(finalID), broadcast},
	})
	switch {
	case err != nil:
		// Past the swap the copy is authoritative if it exists; confirm
		// before abandoning it.
		switch confirmed, resident := mg.probeDest(ctx, targetKS, finalID); {
		case confirmed && resident:
			// The copy is alive and owns the identity; whether or not the
			// unfreeze request itself got through, the destination's
			// adoption watchdog (or our assume notice below) finishes the
			// unfreeze. Treat the migration as committed.
		case confirmed:
			// The destination lost the copy (crashed and rebooted between
			// swap and unfreeze): the identity is free again and the
			// original survives — retrying elsewhere is safe.
			return fail(trace.PhaseRebind, 0, true, err)
		default:
			return fail(trace.PhaseRebind, 0, false, err)
		}
	case !m.OK():
		// Live destination refused: it no longer holds the copy.
		return fail(trace.PhaseRebind, 0, true, m.Err())
	}
	rep.FreezeTime = ctx.Now().Sub(mg.freezeStart)
	mg.span(trace.Span{LH: finalID, Phase: trace.PhaseRebind, Start: rbStart, End: ctx.Now()})
	// The freeze window encloses residue, swap and rebind; its duration is
	// by construction the report's FreezeTime.
	mg.span(trace.Span{LH: finalID, Phase: trace.PhaseFreeze, Start: mg.freezeStart, End: ctx.Now()})
	if mg.Policy == PolicyForwarding {
		// Demos/MP comparator: leave a forwarding address on this host.
		host.IPC.SetForward(finalID, targetMAC(sel))
	}
	if at.residue == nil {
		host.DestroyLH(lh)
	}
	// The identity now lives at the destination: the local slot must not
	// be recycled into a colliding logical host. (A post-copy source copy
	// survives under a fresh private id as the page-serving receptacle;
	// AfterCommit destroys it once the residue drains.)
	host.RetireLHID(finalID)
	ctx.Send(rep.NewPM, vid.Message{
		Op: progmgr.PmAssumeMigration, W: [6]uint32{uint32(finalID)},
	})
	cp.AfterCommit(at)
	rep.Total = ctx.Now().Sub(start)
	return rep, nil
}

// probeDest asks the destination kernel whether the given logical-host
// identity is resident there — the ground truth needed when a swap or
// rebind send aborts without a reply (the request may have executed with
// only the reply lost). confirmed is false when the destination cannot be
// reached at all, in which case the caller must assume the worst.
func (mg *Migrator) probeDest(ctx *kernel.ProcCtx, targetKS vid.PID, id vid.LHID) (confirmed, resident bool) {
	m, err := ctx.Send(targetKS, vid.Message{
		Op: kernel.KsQueryLH, W: [6]uint32{uint32(id)},
	})
	if err != nil {
		return false, false
	}
	return true, m.OK()
}

type spacePages struct {
	as    *mem.AddressSpace
	pages []mem.PageNo
}

func kbOf(sp []spacePages) float64 {
	n := 0
	for _, s := range sp {
		n += len(s.pages)
	}
	return float64(n) * mem.PageSize / 1024
}

// precopy implements §3.1.2: an initial copy of the complete address
// spaces followed by repeated copies of the pages modified during the
// previous copy, until the dirty residue is small or stops shrinking; the
// logical host is then frozen and the residue copied. On failure it
// returns the phase and round the copy died in.
func (mg *Migrator) precopy(ctx *kernel.ProcCtx, host *kernel.Host, lh *kernel.LogicalHost,
	tempLH vid.LHID, targetKS vid.PID, win *ipc.Window, rep *MigrationReport, srcMAC, dstMAC ethernet.MAC) (trace.Phase, int, error) {

	// Round 0 copies everything; dirty tracking starts now. Building the
	// page list and clearing dirty bits is atomic (no blocking between).
	var pending []spacePages
	for _, as := range lh.Spaces() {
		as.ClearDirty()
		pending = append(pending, spacePages{as, as.AllPages()})
	}

	for round := 0; ; round++ {
		roundStart := ctx.Now()
		mg.atPhase(lh.ID(), trace.PhasePrecopy, round, srcMAC, dstMAC)
		if _, err := mg.copyRuns(ctx, tempLH, targetKS, win, pending, rep); err != nil {
			return trace.PhasePrecopy, round, err
		}
		dur := ctx.Now().Sub(roundStart)
		rep.Rounds = append(rep.Rounds, RoundStat{
			Pages: pageCount(pending), KB: kbOf(pending), Dur: dur,
			CopyRateKBps: rateKBps(kbOf(pending), dur),
		})
		mg.span(trace.Span{
			LH: lh.ID(), Phase: trace.PhasePrecopy, Round: round,
			KB: kbOf(pending), Start: roundStart, End: ctx.Now(),
		})

		// Pages dirtied during this round (snapshot clears the bits; the
		// freeze decision below happens atomically with the snapshot).
		var dirty []spacePages
		for _, as := range lh.Spaces() {
			dirty = append(dirty, spacePages{as, as.SnapshotDirty()})
		}
		dirtyKB := kbOf(dirty)
		stop := dirtyKB <= params.PrecopyStopKB ||
			round+1 >= params.PrecopyMaxRounds ||
			dirtyKB > kbOf(pending)*params.PrecopyMinShrink
		if stop {
			host.Freeze(lh)
			mg.freezeStart = ctx.Now()
			mg.atPhase(lh.ID(), trace.PhaseFreeze, 0, srcMAC, dstMAC)
			rep.ResidualKB = dirtyKB
			mg.atPhase(lh.ID(), trace.PhaseResidue, 0, srcMAC, dstMAC)
			_, err := mg.copyRuns(ctx, tempLH, targetKS, win, dirty, rep)
			if err != nil {
				return trace.PhaseResidue, 0, err
			}
			mg.span(trace.Span{
				LH: lh.ID(), Phase: trace.PhaseResidue, KB: dirtyKB,
				Start: mg.freezeStart, End: ctx.Now(),
			})
			return 0, 0, nil
		}
		pending = dirty
	}
}

func pageCount(sp []spacePages) int {
	n := 0
	for _, s := range sp {
		n += len(s.pages)
	}
	return n
}

// copyRuns transfers the given pages to the new copy in MaxRunPages
// batches through the target's kernel server, keeping up to the window's
// slot count of KsWritePages transactions in flight. The destination
// applies runs in whatever order they arrive — each run is self-
// describing (space, pages, data) and InstallPage is idempotent — so the
// pipeline never waits for ordering; copyRuns drains the window before
// returning, making each call a round barrier.
func (mg *Migrator) copyRuns(ctx *kernel.ProcCtx, tempLH vid.LHID, targetKS vid.PID,
	win *ipc.Window, sp []spacePages, rep *MigrationReport) (float64, error) {

	if mg.scratch == nil {
		mg.scratch = make([][]byte, kernel.MaxRunPages)
	}
	var kb float64
	for _, s := range sp {
		for off := 0; off < len(s.pages); off += kernel.MaxRunPages {
			end := off + kernel.MaxRunPages
			if end > len(s.pages) {
				end = len(s.pages)
			}
			batch := s.pages[off:end]
			data := mg.scratch[:len(batch)]
			for i, pn := range batch {
				data[i] = s.as.PageView(pn)
			}
			seg := kernel.EncodePageRun(s.as.ID, batch, data)
			err := win.Send(ctx.Task(), targetKS, vid.Message{
				Op:  kernel.KsWritePages,
				W:   [6]uint32{uint32(tempLH)},
				Seg: seg,
			})
			if err != nil {
				return kb, err
			}
			kb += float64(len(batch)) * mem.PageSize / 1024
			rep.BytesCopied += int64(len(batch)) * mem.PageSize
			rep.WireBytes += int64(len(seg))
		}
	}
	return kb, win.Drain(ctx.Task())
}

// rateKBps is KB per second of d, 0 for an instantaneous round.
func rateKBps(kb float64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return kb / d.Seconds()
}

func targetMAC(sel HostSel) ethernet.MAC { return ethernet.MAC(sel.SystemLH.Station()) }
