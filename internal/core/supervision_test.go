package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/kernel"
	"vsystem/internal/packet"
	"vsystem/internal/progs"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// TestGuestCrashAutoReexec is the supervision layer's core guarantee: the
// workstation hosting a remote execution is powered off mid-run, and the
// home program manager detects the loss, re-executes the program from its
// file-server image on another host, and the user observes nothing but a
// completed job — the display shows every output line exactly once and
// Wait returns the normal exit. Trace events and the supervisors' own
// counters must agree.
func TestGuestCrashAutoReexec(t *testing.T) {
	c := boot(t, Options{Workstations: 4, Seed: 51})
	c.Install(progs.Ticker(120))
	c.Fault.CrashAfter(1500*time.Millisecond, c.Node(1).Host.NIC.MAC())

	var job *Job
	var code uint32
	var execErr, waitErr error
	c.Node(0).Agent(func(a *Agent) {
		job, execErr = a.Exec("ticker120", nil, "ws1")
		if execErr != nil {
			return
		}
		code, waitErr = a.Wait(job)
	})
	c.Run(60 * time.Second)

	if execErr != nil || waitErr != nil || code != 0 {
		t.Fatalf("exec=%v wait=(%d,%v)", execErr, code, waitErr)
	}
	assertGapless(t, c.Node(0).Display.Lines(), 120)
	if got := c.Trace.Count(trace.EvExecRestart); got < 1 {
		t.Fatalf("EvExecRestart count = %d, want >= 1", got)
	}
	views := c.Node(0).PM.Sessions()
	if len(views) != 1 {
		t.Fatalf("Sessions() = %d entries, want 1", len(views))
	}
	if v := views[0]; v.State != "done" || v.Incarnation < 2 || v.ExitCode != 0 {
		t.Fatalf("session = %+v, want done at incarnation >= 2", v)
	}

	// Parity: every lease expiry and re-execution any supervisor counted
	// must have been published to the trace bus, and vice versa.
	var renews, expires, restarts int64
	for i := 0; i < 4; i++ {
		st := c.Node(i).PM.SupStats()
		renews += st.LeaseRenews
		expires += st.LeaseExpires
		restarts += st.ExecRestarts
	}
	if renews == 0 {
		t.Error("no lease renewals; the heartbeat never ran")
	}
	if got := c.Trace.Count(trace.EvLeaseExpire); got != expires {
		t.Errorf("trace lease-expire events = %d, SupStats.LeaseExpires = %d", got, expires)
	}
	if got := c.Trace.Count(trace.EvExecRestart); got != restarts {
		t.Errorf("trace exec-restart events = %d, SupStats.ExecRestarts = %d", got, restarts)
	}
}

// TestRestartsExhaustedFailsSession: with only two workstations, losing
// the hosting one leaves no recovery candidate (the home never re-executes
// onto itself). The session must fail after its bounded attempts — the
// waiter unblocks with an abort instead of hanging, and the user gets a
// notification line.
func TestRestartsExhaustedFailsSession(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 52})
	c.Install(progs.Ticker(400))
	c.Fault.CrashAfter(time.Second, c.Node(1).Host.NIC.MAC())

	var execErr, waitErr error
	c.Node(0).Agent(func(a *Agent) {
		var job *Job
		job, execErr = a.Exec("ticker400", nil, "ws1")
		if execErr != nil {
			return
		}
		_, waitErr = a.Wait(job)
	})
	c.Run(60 * time.Second)

	if execErr != nil {
		t.Fatalf("exec: %v", execErr)
	}
	ce, ok := waitErr.(vid.CodeError)
	if !ok || uint16(ce) != vid.CodeAborted {
		t.Fatalf("wait error = %v, want CodeAborted", waitErr)
	}
	views := c.Node(0).PM.Sessions()
	if len(views) != 1 || views[0].State != "failed" {
		t.Fatalf("session views = %+v, want one failed session", views)
	}
	notified := false
	for _, ln := range c.Node(0).Display.Lines() {
		if strings.Contains(ln, "giving up") {
			notified = true
		}
	}
	if !notified {
		t.Fatal("no give-up notification on the home display")
	}
}

// TestWaitBounceCapped is the forwarding-loop regression test: two
// managers each claim the program moved to the other. A waiter following
// the CodeMoved chain must give up after WaitMaxMoves instead of bouncing
// forever.
func TestWaitBounceCapped(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 53})
	ghost := vid.LHID(0x02F0)
	c.Node(0).PM.RecordMoved(ghost, c.Node(1).PM.PID(), ghost)
	c.Node(1).PM.RecordMoved(ghost, c.Node(0).PM.PID(), ghost)

	var waitErr error
	c.Node(0).Agent(func(a *Agent) {
		_, waitErr = a.Wait(&Job{Name: "ghost", LHID: ghost, PM: c.Node(0).PM.PID()})
	})
	c.Run(30 * time.Second)
	if !errors.Is(waitErr, ErrTooManyMoves) {
		t.Fatalf("wait error = %v, want ErrTooManyMoves", waitErr)
	}
}

// TestExecStartFailureReapsLeak is the regression test for the create/start
// window: the network partitions the home from the execution host at the
// exact moment the start request is transmitted, so the environment was
// created remotely but the program never starts and the inline destroy
// cannot get through either. The home manager's retrying reaper must
// destroy the stranded environment once the partition heals.
func TestExecStartFailureReapsLeak(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 54})
	c.Install(progs.Ticker(400))
	homeMAC := uint16(c.Node(0).Host.NIC.MAC())

	cut := false
	c.Trace.Subscribe(func(ev trace.Event) {
		if cut || ev.Host != homeMAC || ev.Kind != trace.EvPktTx {
			return
		}
		if p := ev.Pkt; p != nil && p.Kind == packet.KRequest && p.Msg.Op == kernel.KsStartProcess {
			cut = true
			c.Fault.Partition(
				[]ethernet.MAC{c.Node(0).Host.NIC.MAC()},
				[]ethernet.MAC{c.Node(1).Host.NIC.MAC()})
		}
	})
	c.Sim.After(4*time.Second, func() { c.Fault.Heal() })

	var execErr error
	c.Node(0).Agent(func(a *Agent) {
		_, execErr = a.Exec("ticker400", nil, "ws1")
	})

	// A third-party observer (unaffected by the cut) watches the stranded
	// environment appear and then get reaped.
	var psDuring, psAfter string
	var psErr error
	c.Node(2).Agent(func(a *Agent) {
		a.Sleep(3 * time.Second)
		psDuring, psErr = a.PS(c.Node(1))
		if psErr != nil {
			return
		}
		a.Sleep(12 * time.Second)
		psAfter, psErr = a.PS(c.Node(1))
	})
	c.Run(30 * time.Second)

	if !cut {
		t.Fatal("start request never observed; trigger premise broken")
	}
	if execErr == nil {
		t.Fatal("Exec succeeded though the start leg was partitioned")
	}
	if psErr != nil {
		t.Fatalf("observer ps: %v", psErr)
	}
	if !strings.Contains(psDuring, "ticker400") {
		t.Fatalf("stranded environment not visible during partition:\n%s", psDuring)
	}
	if strings.Contains(psAfter, "ticker400") {
		t.Fatalf("environment leaked after heal — reaper never destroyed it:\n%s", psAfter)
	}
}
