package core

import (
	"testing"
	"time"

	"vsystem/internal/params"
	"vsystem/internal/trace"
)

// windowReport migrates memhog once under the given loss rate and returns
// the migration report plus the cluster (for stats/trace inspection).
func windowReport(t *testing.T, seed int64, loss float64) (*MigrationReport, *Cluster) {
	t.Helper()
	c := boot(t, Options{Workstations: 3, Seed: seed, LossRate: loss})
	var rep *MigrationReport
	var execErr, migErr error
	c.Node(0).Agent(func(a *Agent) {
		job, err := a.Exec("tex", nil, "ws1")
		if err != nil {
			execErr = err
			return
		}
		a.Sleep(3 * time.Second)
		rep, migErr = a.Migrate(job, true)
	})
	c.Run(2 * time.Minute)
	if execErr != nil || migErr != nil {
		t.Fatalf("exec=%v mig=%v", execErr, migErr)
	}
	if rep == nil {
		t.Fatal("no migration report")
	}
	return rep, c
}

// TestMigrationWindowAccounting: the pipelined copy path must report its
// window activity, per-round copy rates, and wire bytes no larger than
// the logical bytes moved (zero-page elision only shrinks the wire).
func TestMigrationWindowAccounting(t *testing.T) {
	rep, c := windowReport(t, 11, 0)
	if rep.WindowSize != params.CopyWindow {
		t.Fatalf("window size %d, want %d", rep.WindowSize, params.CopyWindow)
	}
	if rep.WindowSends == 0 {
		t.Fatal("no windowed sends recorded")
	}
	if rep.WindowOccupancy < 1 {
		t.Fatalf("window occupancy %.2f < 1", rep.WindowOccupancy)
	}
	// Wire bytes = page payload minus elided zero pages plus per-run
	// headers (8 bytes + 4 per page), so they never exceed the logical
	// bytes by more than the header overhead.
	if rep.WireBytes <= 0 || rep.WireBytes > rep.BytesCopied+256*rep.WindowSends {
		t.Fatalf("wire bytes %d out of range for %d logical bytes, %d runs",
			rep.WireBytes, rep.BytesCopied, rep.WindowSends)
	}
	for i, r := range rep.Rounds {
		if r.KB > 0 && r.CopyRateKBps <= 0 {
			t.Fatalf("round %d: %0.f KB copied but rate %.1f", i, r.KB, r.CopyRateKBps)
		}
	}
	// Parity: every windowed send on every host must have published one
	// EvCopyWindow event.
	var sends int64
	for _, n := range c.Nodes {
		sends += n.Host.IPC.Stats().WindowSends
	}
	sends += c.FSHost.IPC.Stats().WindowSends
	if got := c.Trace.Count(trace.EvCopyWindow); got != sends {
		t.Fatalf("EvCopyWindow count %d != sum of Stats.WindowSends %d", got, sends)
	}
	if sends != rep.WindowSends {
		t.Fatalf("cluster window sends %d != report's %d (only one migration ran)", sends, rep.WindowSends)
	}
}

// TestMigrationWindowParityUnderLoss: the trace/stats parity must survive
// frame loss on the copy path (retransmissions must not double-count
// window issues).
func TestMigrationWindowParityUnderLoss(t *testing.T) {
	rep, c := windowReport(t, 12, 0.03)
	var sends, stalls int64
	for _, n := range c.Nodes {
		st := n.Host.IPC.Stats()
		sends += st.WindowSends
		stalls += st.WindowStalls
	}
	sends += c.FSHost.IPC.Stats().WindowSends
	if got := c.Trace.Count(trace.EvCopyWindow); got != sends {
		t.Fatalf("EvCopyWindow count %d != sum of Stats.WindowSends %d", got, sends)
	}
	if sends == 0 {
		t.Fatal("no windowed sends under loss")
	}
	if rep.WindowStalls != stalls {
		t.Fatalf("report stalls %d != cluster stalls %d", rep.WindowStalls, stalls)
	}
}
