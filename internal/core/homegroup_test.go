package core

import (
	"testing"
	"time"

	"vsystem/internal/params"
	"vsystem/internal/progs"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// The heart of the PR: a session supervised by the replicated home group
// must survive the death of the group member that leads it. The home
// leader is killed mid-session, a successor takes over the lease worker
// from the committed registry, and when the hosting workstation then dies
// too, the successor — not the original (dead) supervisor — re-executes
// the program. Ticker output must stay gapless and duplicate-free: the
// exactly-once invariant across both failovers.
func TestHomeLeaderCrashSessionSurvives(t *testing.T) {
	c := boot(t, Options{Workstations: 6, Seed: 1, ReplicateHome: 3})
	c.Install(progs.Ticker(300))

	// Kill the home leader once the session is established.
	var leaderCrash, nextElect sim.Time
	c.Sim.At(c.Sim.Now().Add(5*time.Second), func() {
		idx := c.HomeLeaderIdx()
		if idx < 0 {
			t.Error("no home leader elected by 5s")
			return
		}
		leaderCrash = c.Sim.Now()
		c.Nodes[idx].Host.Crash()
	})
	// Record the next home-group election after the kill: the failover gap.
	c.Trace.Subscribe(func(ev trace.Event) {
		if ev.Kind == trace.EvElect && leaderCrash != 0 && nextElect == 0 &&
			ev.At > leaderCrash && ev.LH == vid.GroupHomeRSM.LH() {
			nextElect = ev.At
		}
	})
	// Then kill the hosting workstation: the *new* leader must recover the
	// session (the original supervisor is dead).
	c.Sim.At(c.Sim.Now().Add(11*time.Second), func() {
		c.Node(4).Host.Crash()
	})

	var code uint32
	var err error
	done := false
	c.Node(3).Agent(func(a *Agent) {
		a.Sleep(2500 * time.Millisecond) // let the group elect its first leader
		var job *Job
		if job, err = a.Exec("ticker300", nil, "ws4"); err == nil {
			code, err = a.Wait(job)
		}
		done = true
	})
	c.Run(4 * time.Minute)

	if !done {
		t.Fatal("agent never finished")
	}
	if err != nil {
		t.Fatalf("wait across home failover: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	assertGapless(t, c.Node(3).Display.Lines(), 300)
	if got := c.Trace.Count(trace.EvExecRestart); got < 1 {
		t.Fatalf("EvExecRestart = %d, want ≥1 (new leader must re-execute)", got)
	}
	if nextElect == 0 {
		t.Fatal("no home re-election observed after the leader kill")
	}
	if gap := nextElect.Sub(leaderCrash); gap > params.RsmFailoverBudget {
		t.Fatalf("home failover took %v, budget %v", gap, params.RsmFailoverBudget)
	}
}

// Satellite: Agent.Wait held by the home leader when it dies must converge
// on the successor within the WaitMaxMoves redirect budget — the waiter is
// re-pointed at the group, lands on the new leader, and gets the exit.
func TestWaitSurvivesHomeFailoverMidWait(t *testing.T) {
	c := boot(t, Options{Workstations: 6, Seed: 2, ReplicateHome: 3})
	c.Install(progs.Ticker(300))

	// Crash the hosting workstation first so the session breaks and the
	// waiter is *held* by the home leader, then kill that leader while it
	// holds the waiter mid-recovery.
	c.Sim.At(c.Sim.Now().Add(6*time.Second), func() { c.Node(4).Host.Crash() })
	c.Sim.At(c.Sim.Now().Add(7*time.Second), func() {
		if idx := c.HomeLeaderIdx(); idx >= 0 {
			c.Nodes[idx].Host.Crash()
		}
	})

	var code uint32
	var err error
	done := false
	c.Node(3).Agent(func(a *Agent) {
		a.Sleep(2500 * time.Millisecond)
		var job *Job
		if job, err = a.Exec("ticker300", nil, "ws4"); err == nil {
			code, err = a.Wait(job)
		}
		done = true
	})
	c.Run(4 * time.Minute)

	if !done {
		t.Fatal("agent never finished")
	}
	if err != nil {
		t.Fatalf("wait across mid-wait home failover: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	assertGapless(t, c.Node(3).Display.Lines(), 300)
}

// Baseline: without a home group the same leader-and-host double kill
// loses the session — the home manager (the only supervisor) dies with
// its registry and nobody re-executes the program. This is what the
// consensus group buys.
func TestUnreplicatedHomeDiesWithSupervisor(t *testing.T) {
	c := boot(t, Options{Workstations: 6, Seed: 1})
	c.Install(progs.Ticker(300))

	// Kill the home workstation (the supervisor), then the hosting one.
	c.Sim.At(c.Sim.Now().Add(5*time.Second), func() { c.Node(3).Host.Crash() })
	c.Sim.At(c.Sim.Now().Add(8*time.Second), func() { c.Node(4).Host.Crash() })

	c.Node(3).Agent(func(a *Agent) {
		a.Sleep(2500 * time.Millisecond)
		a.Exec("ticker300", nil, "ws4")
		// The agent dies with ws3; the point is what happens afterwards.
	})
	c.Run(2 * time.Minute)

	if got := c.Trace.Count(trace.EvExecRestart); got != 0 {
		t.Fatalf("EvExecRestart = %d, want 0 (no supervisor left to recover)", got)
	}
}
