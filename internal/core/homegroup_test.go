package core

import (
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/params"
	"vsystem/internal/progs"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// The heart of the PR: a session supervised by the replicated home group
// must survive the death of the group member that leads it. The home
// leader is killed mid-session, a successor takes over the lease worker
// from the committed registry, and when the hosting workstation then dies
// too, the successor — not the original (dead) supervisor — re-executes
// the program. Ticker output must stay gapless and duplicate-free: the
// exactly-once invariant across both failovers.
func TestHomeLeaderCrashSessionSurvives(t *testing.T) {
	c := boot(t, Options{Workstations: 6, Seed: 1, ReplicateHome: 3})
	c.Install(progs.Ticker(300))

	// Kill the home leader once the session is established.
	var leaderCrash, nextElect sim.Time
	c.Sim.At(c.Sim.Now().Add(5*time.Second), func() {
		idx := c.HomeLeaderIdx()
		if idx < 0 {
			t.Error("no home leader elected by 5s")
			return
		}
		leaderCrash = c.Sim.Now()
		c.Nodes[idx].Host.Crash()
	})
	// Record the next home-group election after the kill: the failover gap.
	c.Trace.Subscribe(func(ev trace.Event) {
		if ev.Kind == trace.EvElect && leaderCrash != 0 && nextElect == 0 &&
			ev.At > leaderCrash && ev.LH == vid.GroupHomeRSM.LH() {
			nextElect = ev.At
		}
	})
	// Then kill the hosting workstation: the *new* leader must recover the
	// session (the original supervisor is dead).
	c.Sim.At(c.Sim.Now().Add(11*time.Second), func() {
		c.Node(4).Host.Crash()
	})

	var code uint32
	var err error
	done := false
	c.Node(3).Agent(func(a *Agent) {
		a.Sleep(2500 * time.Millisecond) // let the group elect its first leader
		var job *Job
		if job, err = a.Exec("ticker300", nil, "ws4"); err == nil {
			code, err = a.Wait(job)
		}
		done = true
	})
	c.Run(4 * time.Minute)

	if !done {
		t.Fatal("agent never finished")
	}
	if err != nil {
		t.Fatalf("wait across home failover: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	assertGapless(t, c.Node(3).Display.Lines(), 300)
	if got := c.Trace.Count(trace.EvExecRestart); got < 1 {
		t.Fatalf("EvExecRestart = %d, want ≥1 (new leader must re-execute)", got)
	}
	if nextElect == 0 {
		t.Fatal("no home re-election observed after the leader kill")
	}
	if gap := nextElect.Sub(leaderCrash); gap > params.RsmFailoverBudget {
		t.Fatalf("home failover took %v, budget %v", gap, params.RsmFailoverBudget)
	}
}

// Satellite: Agent.Wait held by the home leader when it dies must converge
// on the successor within the WaitMaxMoves redirect budget — the waiter is
// re-pointed at the group, lands on the new leader, and gets the exit.
func TestWaitSurvivesHomeFailoverMidWait(t *testing.T) {
	c := boot(t, Options{Workstations: 6, Seed: 2, ReplicateHome: 3})
	c.Install(progs.Ticker(300))

	// Crash the hosting workstation first so the session breaks and the
	// waiter is *held* by the home leader, then kill that leader while it
	// holds the waiter mid-recovery.
	c.Sim.At(c.Sim.Now().Add(6*time.Second), func() { c.Node(4).Host.Crash() })
	c.Sim.At(c.Sim.Now().Add(7*time.Second), func() {
		if idx := c.HomeLeaderIdx(); idx >= 0 {
			c.Nodes[idx].Host.Crash()
		}
	})

	var code uint32
	var err error
	done := false
	c.Node(3).Agent(func(a *Agent) {
		a.Sleep(2500 * time.Millisecond)
		var job *Job
		if job, err = a.Exec("ticker300", nil, "ws4"); err == nil {
			code, err = a.Wait(job)
		}
		done = true
	})
	c.Run(4 * time.Minute)

	if !done {
		t.Fatal("agent never finished")
	}
	if err != nil {
		t.Fatalf("wait across mid-wait home failover: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	assertGapless(t, c.Node(3).Display.Lines(), 300)
}

// A group member whose agent cannot reach the home group (partitioned away
// mid-registration) must NOT fall back to a direct local Supervise: that
// would write the session into the replicated registry outside the log —
// present on one follower only, never lease-renewed (only the fenced
// leader acts), and baked into that replica's snapshots. Instead the
// record is queued and re-proposed through the group once it is reachable,
// after which the session is genuinely supervised: killing the hosting
// workstation must still trigger a leader-driven re-execution.
func TestMemberAgentPartitionedFromGroupQueuesSupervision(t *testing.T) {
	c := boot(t, Options{Workstations: 6, Seed: 1, ReplicateHome: 3})
	c.Install(progs.Ticker(300))

	// Cut member 0 (the agent's workstation) off from the other two group
	// members. Members 1 and 2 still form a majority and elect a leader;
	// node 0 keeps full connectivity to the file servers and to ws4, so the
	// exec itself succeeds — only the Supervise registration cannot land.
	mac0 := c.Node(0).Host.NIC.MAC()
	mac1 := c.Node(1).Host.NIC.MAC()
	mac2 := c.Node(2).Host.NIC.MAC()
	c.Bus.SetCut(func(src, dst ethernet.MAC) bool {
		return (src == mac0 && (dst == mac1 || dst == mac2)) ||
			(dst == mac0 && (src == mac1 || src == mac2))
	})
	// Heal after the agent has exhausted its group retries and queued the
	// record; the member's lease worker then re-proposes it to the leader.
	c.Sim.At(c.Sim.Now().Add(8*time.Second), func() { c.Bus.SetCut(nil) })
	// Kill the hosting workstation after the heal (but before the ticker
	// can finish): only a session that made it into the replicated
	// registry gets re-executed.
	c.Sim.At(c.Sim.Now().Add(10*time.Second), func() { c.Node(4).Host.Crash() })

	var code uint32
	var err error
	done := false
	c.Node(0).Agent(func(a *Agent) {
		a.Sleep(1 * time.Second)
		var job *Job
		if job, err = a.Exec("ticker300", nil, "ws4"); err == nil {
			code, err = a.Wait(job)
		}
		done = true
	})
	c.Run(4 * time.Minute)

	if !done {
		t.Fatal("agent never finished")
	}
	if err != nil {
		t.Fatalf("wait across queued supervision + host crash: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	assertGapless(t, c.Node(0).Display.Lines(), 300)
	if got := c.Trace.Count(trace.EvExecRestart); got < 1 {
		t.Fatalf("EvExecRestart = %d, want ≥1 (queued record must reach the leader)", got)
	}
}

// Baseline: without a home group the same leader-and-host double kill
// loses the session — the home manager (the only supervisor) dies with
// its registry and nobody re-executes the program. This is what the
// consensus group buys.
func TestUnreplicatedHomeDiesWithSupervisor(t *testing.T) {
	c := boot(t, Options{Workstations: 6, Seed: 1})
	c.Install(progs.Ticker(300))

	// Kill the home workstation (the supervisor), then the hosting one.
	c.Sim.At(c.Sim.Now().Add(5*time.Second), func() { c.Node(3).Host.Crash() })
	c.Sim.At(c.Sim.Now().Add(8*time.Second), func() { c.Node(4).Host.Crash() })

	c.Node(3).Agent(func(a *Agent) {
		a.Sleep(2500 * time.Millisecond)
		a.Exec("ticker300", nil, "ws4")
		// The agent dies with ws3; the point is what happens afterwards.
	})
	c.Run(2 * time.Minute)

	if got := c.Trace.Count(trace.EvExecRestart); got != 0 {
		t.Fatalf("EvExecRestart = %d, want 0 (no supervisor left to recover)", got)
	}
}
