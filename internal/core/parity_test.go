package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden migration reports")

// parityReport is the exact field set MigrationReport carried before the
// copy-policy extraction. The golden files under testdata/ were generated
// against the pre-refactor inline copy loops; projecting through this
// struct keeps the comparison byte-for-byte on those fields while letting
// the report grow new (post-copy) fields without invalidating the pin.
type parityReport struct {
	Policy      string
	Rounds      []RoundStat
	ResidualKB  float64
	FreezeTime  time.Duration
	KernelItems int
	KernelTime  time.Duration
	Total       time.Duration
	BytesCopied int64
	DestHost    uint16
	NewPM       uint32

	WireBytes       int64
	WindowSize      int
	WindowSends     int64
	WindowStalls    int64
	WindowOccupancy float64
}

func project(r *MigrationReport) parityReport {
	return parityReport{
		Policy: r.Policy, Rounds: r.Rounds, ResidualKB: r.ResidualKB,
		FreezeTime: r.FreezeTime, KernelItems: r.KernelItems,
		KernelTime: r.KernelTime, Total: r.Total, BytesCopied: r.BytesCopied,
		DestHost: uint16(r.DestHost), NewPM: uint32(r.NewPM),
		WireBytes: r.WireBytes, WindowSize: r.WindowSize,
		WindowSends: r.WindowSends, WindowStalls: r.WindowStalls,
		WindowOccupancy: r.WindowOccupancy,
	}
}

// parityScenario runs the fixed migration scenario the goldens pin: boot
// three workstations on seed 7, run the paper's "tex" workload (the
// highest dirty rate in Table 4-1, so pre-copy rounds and the flush
// residue are all exercised) and migrate it off its home host 4 s in.
func parityScenario(t *testing.T, policy Policy) *MigrationReport {
	t.Helper()
	c := boot(t, Options{Workstations: 3, Seed: 7, Policy: policy})
	var rep *MigrationReport
	var err error
	c.Node(1).Agent(func(a *Agent) {
		var job *Job
		job, err = a.Exec("tex", nil, "")
		if err != nil {
			return
		}
		a.Sleep(4 * time.Second)
		rep, err = a.Migrate(job, false)
	})
	c.Run(60 * time.Second)
	if err != nil {
		t.Fatalf("%v migration: %v", policy, err)
	}
	return rep
}

func checkGolden(t *testing.T, name string, rep *MigrationReport) {
	t.Helper()
	got, jerr := json.MarshalIndent(project(rep), "", "  ")
	if jerr != nil {
		t.Fatal(jerr)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("report diverged from pre-refactor golden %s\n got: %s\nwant: %s",
			name, got, want)
	}
}

// TestPrecopyReportParity and TestFlushReportParity are the copy-policy
// refactor's safety net: the extracted policies must reproduce the
// pre-refactor inline loops' reports byte for byte — same rounds, same
// byte counts, same virtual-time durations.
func TestPrecopyReportParity(t *testing.T) {
	checkGolden(t, "report_precopy.json", parityScenario(t, PolicyPrecopy))
}

func TestFlushReportParity(t *testing.T) {
	checkGolden(t, "report_flush.json", parityScenario(t, PolicyFlush))
}
