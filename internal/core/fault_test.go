package core

import (
	"fmt"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/fault"
	"vsystem/internal/progs"
	"vsystem/internal/trace"
)

// TestDestCrashDuringPrecopySourceSurvives is the §3.1.3 guarantee under
// the fault injector: the destination dies during pre-copy round 0, and
// the original logical host — which was never frozen — keeps running on
// the source, loses no output, and the migrator retries to an alternate
// host and succeeds.
func TestDestCrashDuringPrecopySourceSurvives(t *testing.T) {
	c := boot(t, Options{Workstations: 4, Seed: 31})
	c.Install(progs.Ticker(400))
	c.Fault.MigrationFault(trace.PhasePrecopy, 0, fault.VictimDest)

	var job *Job
	var crashedMAC uint16
	var duringOK, duringChecked bool
	var linesAtCheck1 int
	c.Trace.Subscribe(func(ev trace.Event) {
		if ev.Kind != trace.EvMigFault {
			return
		}
		crashedMAC = ev.Host
		// While the failed attempt detects the dead destination (the
		// failure detector condemns the station after ~1 s of station
		// silence — five unanswered retransmissions — instead of the old
		// ~5 s send abort) and waits out the 500 ms retry backoff, the
		// original must be unfrozen, on the source, and still producing
		// output. The retried migration re-freezes the source no earlier
		// than abort (~1.0 s) + backoff (500 ms) after the crash, so both
		// checks must land inside that ≈1.5 s recovery window.
		c.Sim.After(1000*time.Millisecond, func() {
			n, lh := c.FindProgram(job.LHID)
			duringOK = n == c.Node(1) && lh != nil && !lh.Frozen()
			linesAtCheck1 = len(c.Node(0).Display.Lines())
		})
		c.Sim.After(1450*time.Millisecond, func() {
			duringChecked = true
			n, lh := c.FindProgram(job.LHID)
			if n != c.Node(1) || lh == nil || lh.Frozen() {
				duringOK = false
			}
			if len(c.Node(0).Display.Lines()) <= linesAtCheck1 {
				duringOK = false // stopped being scheduled
			}
		})
	})

	// Keep ws0 busy so it never answers selection: candidates are ws2/ws3.
	var busyErr error
	c.Node(0).Agent(func(a *Agent) {
		_, busyErr = a.Exec("tex", nil, "")
	})
	var rep *MigrationReport
	var execErr, migErr, waitErr error
	c.Node(0).Agent(func(a *Agent) {
		job, execErr = a.Exec("ticker400", nil, "ws1")
		if execErr != nil {
			return
		}
		a.Sleep(800 * time.Millisecond)
		rep, migErr = a.Migrate(job, false)
		if migErr != nil {
			return
		}
		_, waitErr = a.Wait(job)
	})
	c.Run(5 * time.Minute)

	if busyErr != nil || execErr != nil || migErr != nil || waitErr != nil {
		t.Fatalf("busy=%v exec=%v mig=%v wait=%v", busyErr, execErr, migErr, waitErr)
	}
	if got := c.Trace.Count(trace.EvMigFault); got != 1 {
		t.Fatalf("EvMigFault count = %d, want 1", got)
	}
	if got := c.Trace.Count(trace.EvHostCrash); got != 1 {
		t.Fatalf("EvHostCrash count = %d, want 1", got)
	}
	if !duringChecked || !duringOK {
		t.Fatalf("source not unfrozen+scheduled during recovery (checked=%v ok=%v)",
			duringChecked, duringOK)
	}
	mig := c.Node(1).PM.Migrator.(*Migrator)
	if mig.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", mig.Retries)
	}
	if rep == nil {
		t.Fatal("no migration report after successful retry")
	}
	if destMAC := rep.DestHost.Station(); destMAC == crashedMAC {
		t.Fatalf("retry reused the crashed destination %#x", destMAC)
	}
	assertGapless(t, c.Node(0).Display.Lines(), 400)
}

// TestSourceCrashAfterSwapDestAdopts covers the other half of §3.1.3: the
// source dies after the new copy has assumed the logical host's identity
// (the LHID swap) but before unfreezing it. The destination's adoption
// watchdog must finish the hand-over: the new copy is authoritative,
// resumes, and completes the workload with no lost output.
func TestSourceCrashAfterSwapDestAdopts(t *testing.T) {
	c := boot(t, Options{Workstations: 4, Seed: 33})
	c.Install(progs.Ticker(400))
	c.Fault.MigrationFault(trace.PhaseRebind, 0, fault.VictimSource)

	var job *Job
	var adoptedOK, adoptedChecked bool
	c.Trace.Subscribe(func(ev trace.Event) {
		if ev.Kind != trace.EvMigFault {
			return
		}
		// The destination adopts only after probing the dead source:
		// OrphanAdoptDelay (1 s) plus the clock-enforced OrphanSilence
		// window (≈10 s of continuous probe silence; the failure detector
		// fails the probes fast, but the split-brain guard is a wall-clock
		// window, not an abort count), ≈11 s in all. Past that window the
		// program must be live and unfrozen on a host other than the dead
		// source.
		c.Sim.After(20*time.Second, func() {
			adoptedChecked = true
			n, lh := c.FindProgram(job.LHID)
			adoptedOK = n != nil && n != c.Node(1) && !lh.Frozen()
		})
	})

	var busyErr error
	c.Node(0).Agent(func(a *Agent) {
		_, busyErr = a.Exec("tex", nil, "")
	})
	var execErr, migErr error
	c.Node(0).Agent(func(a *Agent) {
		job, execErr = a.Exec("ticker400", nil, "ws1")
		if execErr != nil {
			return
		}
		a.Sleep(800 * time.Millisecond)
		// The manager running the migration dies with ws1, so this call
		// fails; the program itself must survive on the destination.
		_, migErr = a.Migrate(job, false)
	})
	c.Run(3 * time.Minute)

	if busyErr != nil || execErr != nil {
		t.Fatalf("busy=%v exec=%v", busyErr, execErr)
	}
	if migErr == nil {
		t.Fatal("Migrate reported success though its manager crashed mid-call")
	}
	if got := c.Trace.Count(trace.EvMigFault); got != 1 {
		t.Fatalf("EvMigFault count = %d, want 1", got)
	}
	if got := c.Trace.Count(trace.EvHostCrash); got != 1 {
		t.Fatalf("EvHostCrash count = %d, want 1", got)
	}
	if !adoptedChecked || !adoptedOK {
		t.Fatalf("destination did not adopt the orphaned copy (checked=%v ok=%v)",
			adoptedChecked, adoptedOK)
	}
	assertGapless(t, c.Node(0).Display.Lines(), 400)
}

// TestRebindPartitionNoSplitBrain regresses the split-brain hazard at the
// commit point: the network partitions between source and destination the
// instant the LHID swap commits (the PhaseRebind boundary) and heals 6 s
// later — past the source's ~5 s send abort on the unfreeze request, so
// both sides must decide under ambiguity. The source must confirm with the
// destination that the swap took effect rather than declare failure (and
// unfreeze the original, or worse retry to a third host), and the
// destination must keep probing the live source rather than adopt
// unilaterally. Exactly one copy survives, with no lost or duplicated
// output.
func TestRebindPartitionNoSplitBrain(t *testing.T) {
	c := boot(t, Options{Workstations: 4, Seed: 35})
	c.Install(progs.Ticker(400))

	mig := c.Node(1).PM.Migrator.(*Migrator)
	base := mig.FaultHook
	cut := false
	mig.FaultHook = func(pp fault.PhasePoint) {
		if base != nil {
			base(pp)
		}
		if pp.Phase == trace.PhaseRebind && !cut {
			cut = true
			c.Fault.Partition([]ethernet.MAC{pp.Src}, []ethernet.MAC{pp.Dst})
			c.Fault.HealAfter(6 * time.Second)
		}
	}

	// Keep ws0 busy so it never answers selection: candidates are ws2/ws3.
	var busyErr error
	c.Node(0).Agent(func(a *Agent) {
		_, busyErr = a.Exec("tex", nil, "")
	})
	var job *Job
	var rep *MigrationReport
	var execErr, migErr, waitErr error
	c.Node(0).Agent(func(a *Agent) {
		job, execErr = a.Exec("ticker400", nil, "ws1")
		if execErr != nil {
			return
		}
		a.Sleep(800 * time.Millisecond)
		rep, migErr = a.Migrate(job, false)
		if migErr != nil {
			return
		}
		_, waitErr = a.Wait(job)
	})
	c.Run(5 * time.Minute)

	if busyErr != nil || execErr != nil {
		t.Fatalf("busy=%v exec=%v", busyErr, execErr)
	}
	if !cut {
		t.Fatal("fault hook never saw the rebind boundary")
	}
	if migErr != nil {
		t.Fatalf("Migrate = %v; the swap had committed, so the source must report success", migErr)
	}
	if waitErr != nil {
		t.Fatalf("Wait = %v", waitErr)
	}
	if got := c.Trace.Count(trace.EvHostCrash); got != 0 {
		t.Fatalf("EvHostCrash count = %d, want 0", got)
	}
	if mig.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 (the identity had moved; no third copy)", mig.Retries)
	}
	if rep == nil {
		t.Fatal("no migration report")
	}
	// Gapless, duplicate-free output is the split-brain detector: two
	// live copies of the ticker would both print and duplicate ticks.
	assertGapless(t, c.Node(0).Display.Lines(), 400)
}

// assertGapless checks the ticker output on a possibly shared display:
// exactly want "t<i>" lines, consecutive, none lost or reordered (other
// programs' lines are ignored).
func assertGapless(t *testing.T, lines []string, want int) {
	t.Helper()
	var ticks []string
	for _, ln := range lines {
		var n int
		if _, err := fmt.Sscanf(ln, "t%d", &n); err == nil && ln == fmt.Sprintf("t%d", n) {
			ticks = append(ticks, ln)
		}
	}
	if len(ticks) != want {
		t.Fatalf("display has %d ticker lines, want %d", len(ticks), want)
	}
	var first int
	fmt.Sscanf(ticks[0], "t%d", &first)
	for i, ln := range ticks {
		if ln != fmt.Sprintf("t%d", first+i) {
			t.Fatalf("tick %d = %q, want %q (lost or reordered output)",
				i, ln, fmt.Sprintf("t%d", first+i))
		}
	}
}

// faultScheduleEvents boots a cluster, applies a fixed fault schedule —
// migration fault with retry, host crash + restart, partition + heal, a
// loss burst and a corruption burst — runs a migrating workload through
// it, and returns every trace event formatted as a string.
func faultScheduleEvents(t *testing.T, seed int64) []string {
	t.Helper()
	c := boot(t, Options{Workstations: 4, Seed: seed})
	var out []string
	c.Trace.Subscribe(func(ev trace.Event) {
		out = append(out, fmt.Sprintf("%v h%d %v lh=%v prio=%d size=%d peer=%d",
			ev.At, ev.Host, ev.Kind, ev.LH, ev.Prio, ev.Size, ev.Peer))
	})
	c.Fault.MigrationFault(trace.PhasePrecopy, 0, fault.VictimDest)
	// Reboot whichever host the migration fault kills, 8 s after it dies.
	c.Trace.Subscribe(func(ev trace.Event) {
		if ev.Kind == trace.EvHostCrash {
			c.Fault.RestartAfter(8*time.Second, ethernet.MAC(ev.Host))
		}
	})
	ws2, ws3 := c.Node(2).Host.NIC.MAC(), c.Node(3).Host.NIC.MAC()
	c.Fault.PartitionAfter(3*time.Second, []ethernet.MAC{ws2}, []ethernet.MAC{ws3})
	c.Fault.HealAfter(4 * time.Second)
	c.Fault.LossBurstAfter(2*time.Second, 500*time.Millisecond, 0.02)
	c.Fault.CorruptBurstAfter(2500*time.Millisecond, 500*time.Millisecond, 0.02)

	var busyErr error
	c.Node(0).Agent(func(a *Agent) {
		_, busyErr = a.Exec("tex", nil, "")
	})
	var execErr error
	c.Node(0).Agent(func(a *Agent) {
		var job *Job
		job, execErr = a.Exec("ticker200", nil, "ws1")
		if execErr != nil {
			return
		}
		a.Sleep(800 * time.Millisecond)
		a.Migrate(job, false) // faulted, retried; outcome captured in the trace
	})
	c.Run(60 * time.Second)
	if busyErr != nil || execErr != nil {
		t.Fatalf("busy=%v exec=%v", busyErr, execErr)
	}
	return out
}

// TestFaultScheduleDeterministic: the same seed and the same fault
// schedule must produce a byte-identical trace event sequence — faults
// draw from the engine's seeded randomness and virtual clock only.
func TestFaultScheduleDeterministic(t *testing.T) {
	a := faultScheduleEvents(t, 5)
	b := faultScheduleEvents(t, 5)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
}
