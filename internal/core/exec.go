package core

import (
	"errors"
	"strings"
	"time"

	"vsystem/internal/kernel"
	"vsystem/internal/params"
	"vsystem/internal/progmgr"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// HostSel identifies a selected execution host.
type HostSel struct {
	PM       vid.PID
	SystemLH vid.LHID
	MemFree  uint32
}

// MAC returns the selected host's station address (derived from the
// system logical-host id, whose station field is the host index + 1).
func (s HostSel) MAC() uint16 { return s.SystemLH.Station() }

// ErrNoHost means no workstation answered a selection query.
var ErrNoHost = errors.New("core: no host available")

// SelectVia routes a host-selection query through the node's scheduling
// selector (policy + cached load view) and adapts the result.
func (n *Node) SelectVia(ctx *kernel.ProcCtx, minMem uint32, exclude ...vid.LHID) (HostSel, error) {
	l, err := n.Selector.Select(ctx, minMem, exclude...)
	if err != nil {
		return HostSel{}, ErrNoHost
	}
	return HostSel{PM: l.PM, SystemLH: l.SystemLH, MemFree: l.MemFree}, nil
}

// SelectHost picks an idle workstation by multicasting to the
// program-manager group and taking the first response — the paper's
// decentralized scheduler ("it simply selects the program manager that
// responds first since that is generally the least loaded host", §2.1).
// exclude suppresses up to four system logical hosts — typically the
// caller's own plus destinations a retried migration already saw fail.
func SelectHost(ctx *kernel.ProcCtx, minMem uint32, exclude ...vid.LHID) (HostSel, error) {
	var w [6]uint32
	w[0] = minMem
	for i, lh := range exclude {
		if i >= 4 {
			break
		}
		w[i+1] = uint32(lh)
	}
	for attempt := 0; attempt < 2; attempt++ {
		m, err := ctx.Send(vid.GroupProgramManagers, vid.Message{
			Op: progmgr.PmSelectHost,
			W:  w,
		})
		if err == nil && m.OK() {
			return HostSel{
				PM:       vid.PID(m.W[5]),
				SystemLH: vid.LHID(m.W[0]),
				MemFree:  m.W[1],
			}, nil
		}
	}
	return HostSel{}, ErrNoHost
}

// FindHost resolves a workstation by name through the program-manager
// group (the `@ machine-name` form).
func FindHost(ctx *kernel.ProcCtx, name string) (HostSel, error) {
	m, err := ctx.Send(vid.GroupProgramManagers, vid.Message{
		Op:  progmgr.PmQueryHost,
		Seg: []byte(name),
	})
	if err != nil || !m.OK() {
		return HostSel{}, ErrNoHost
	}
	return HostSel{PM: vid.PID(m.W[5]), SystemLH: vid.LHID(m.W[0])}, nil
}

// Job is a handle to an executing program.
type Job struct {
	Name string
	PID  vid.PID  // initial process
	LHID vid.LHID // the program's logical host (stable across migration)
	PM   vid.PID  // program manager currently responsible
	Host string   // where it started (diagnostic)
}

// ExecMinMem is the default free-memory requirement used for `@ *`
// selection when the image size is not yet known.
const ExecMinMem = 256 * 1024

// Exec runs a program, paralleling the command-interpreter syntax:
// where is "" (local), "*" (any idle machine), or a host name. Remote
// executions are supervised with the default restart budget.
func (a *Agent) Exec(prog string, args []string, where string) (*Job, error) {
	return a.ExecR(prog, args, where, params.ExecMaxRestarts)
}

// ExecR is Exec with an explicit restart budget (0 disables recovery):
// how many times the home program manager may re-execute the program from
// its file-server image if the hosting workstation is lost.
//
// The sequence follows §2.1: select a program manager, send it the
// program-creation request (it builds the address space, loads the image
// from the file server, initializes arguments, environment, and default
// I/O), then start the program by "replying to its initial process" — a
// start operation to the kernel server addressed through the new logical
// host. A remote job is then registered with the home program manager's
// session supervisor, which leases it from the hosting manager and
// recovers it if that host dies (§2.3's residual-dependency stance: the
// remote program should depend on nothing of the hosting workstation the
// home environment cannot replace).
func (a *Agent) ExecR(prog string, args []string, where string, maxRestarts int) (*Job, error) {
	ctx := a.ctx
	var sel HostSel
	var err error
	switch where {
	case "", "local":
		sel = HostSel{
			PM:       a.node.PM.PID(),
			SystemLH: a.node.Host.SystemLH().ID(),
		}
	case "*":
		// "some other lightly loaded machine" (§4.3): exclude the home
		// workstation.
		sel, err = a.node.SelectVia(ctx, ExecMinMem, a.node.Host.SystemLH().ID())
	default:
		sel, err = FindHost(ctx, where)
	}
	if err != nil {
		return nil, err
	}
	guest := uint32(0)
	if sel.SystemLH != a.node.Host.SystemLH().ID() {
		guest = 1
	}
	seg := []byte(strings.Join(append([]string{prog}, args...), "\x00"))
	m, err := ctx.Send(sel.PM, vid.Message{
		Op:  progmgr.PmCreateProgram,
		W:   [6]uint32{uint32(a.node.Display.PID()), guest},
		Seg: seg,
	})
	if err != nil {
		return nil, err
	}
	if !m.OK() {
		return nil, m.Err()
	}
	job := &Job{
		Name: prog,
		PID:  vid.PID(m.W[0]),
		LHID: vid.LHID(m.W[1]),
		PM:   sel.PM,
		Host: whereName(a, sel),
	}
	// Start the program: the creator's go-ahead to the initial process,
	// via the kernel server reachable through the program's logical host.
	sm, err := ctx.Send(kernel.KernelServerPID(job.LHID), vid.Message{
		Op: kernel.KsStartProcess,
		W:  [6]uint32{uint32(job.PID)},
	})
	if err != nil || !sm.OK() {
		// The environment was created but the program never started: reap
		// it so the failed Exec does not leak an address space on the
		// remote manager. If the manager is unreachable too, hand the job
		// to the home manager's retrying reaper.
		if _, e := ctx.Send(sel.PM, vid.Message{
			Op: progmgr.PmDestroyProgram, W: [6]uint32{uint32(job.LHID)},
		}); e != nil {
			a.node.PM.ReapRemote(sel.PM, job.LHID)
		}
		if err != nil {
			return nil, err
		}
		return nil, sm.Err()
	}
	if guest == 1 && maxRestarts > 0 {
		a.superviseSession(&progmgr.SessionInfo{
			LHID: job.LHID, PID: job.PID, Name: prog, Args: args,
			Stdout: a.node.Display.PID(), MinMem: ExecMinMem,
			HostPM: sel.PM, HostLH: sel.SystemLH, MaxRestarts: maxRestarts,
		})
	}
	return job, nil
}

// superviseSession registers a remote job with the home supervisor: the
// replicated home group when the cluster runs one (the record lands in the
// consensus registry and survives any single member's death), else this
// workstation's own manager.
func (a *Agent) superviseSession(si *progmgr.SessionInfo) {
	if a.node.cluster.homeEnabled() {
		seg := progmgr.EncodeSessionInfo(si)
		for attempt := 0; attempt < 4; attempt++ {
			m, err := a.ctx.Send(vid.GroupHomePMs, vid.Message{
				Op: progmgr.PmSupervise, Seg: seg,
			})
			if err == nil && m.OK() {
				return
			}
			// Group silence usually means an election in progress (boot, or
			// a member just died); give it a beat and re-ask.
			a.Sleep(300 * time.Millisecond)
		}
		if a.node.PM.HomeReplica() != nil {
			// This workstation is itself a group member, so a direct local
			// Supervise would mutate the replicated registry outside the log:
			// the session would exist on one replica only, get baked into its
			// snapshots, and never be lease-renewed (only the fenced leader
			// acts). Park the record instead; the lease worker re-proposes it
			// through the group once a leader is reachable.
			a.node.PM.QueueHomeSupervise(*si)
			return
		}
		// Group unreachable (mid-election or partitioned away) and this
		// manager is not a member: plain local supervision is safe here and
		// keeps the job watched by *someone*.
	}
	a.node.PM.Supervise(*si)
}

// homeWaitTarget is where a Wait retreats when the hosting manager cannot
// answer: the home group when replicated, else the home workstation's own
// manager.
func (a *Agent) homeWaitTarget() vid.PID {
	if a.node.cluster.homeEnabled() {
		return vid.GroupHomePMs
	}
	return a.node.PM.PID()
}

// noteExited tells the home supervisor the session is over (stops the
// lease heartbeat; a no-op for unsupervised jobs).
func (a *Agent) noteExited(lhid vid.LHID, code uint32) {
	if a.node.cluster.homeEnabled() {
		if m, err := a.ctx.Send(vid.GroupHomePMs, vid.Message{
			Op: progmgr.PmNoteExited, W: [6]uint32{uint32(lhid), code},
		}); err == nil && m.OK() {
			return
		}
		// Group unreachable: harmless — the leader's next renewal sees the
		// exit code from the hosting manager and commits it then.
	}
	a.node.PM.NoteExited(lhid, code)
}

func whereName(a *Agent, sel HostSel) string {
	if n := a.node.cluster.NodeByLH(sel.SystemLH); n != nil {
		return n.Name()
	}
	return "?"
}

// ErrTooManyMoves means a Wait followed more CodeMoved redirects than
// WaitMaxMoves allows — a forwarding loop between managers rather than a
// legitimately mobile program.
var ErrTooManyMoves = errors.New("core: wait followed too many moves")

// Wait blocks until the job exits, following the program across
// migrations and supervised re-executions (a manager that no longer runs
// the program answers CodeMoved with the new manager's pid and, when the
// program was re-executed under a fresh identity, its new LHID). If the
// current manager is unreachable, Wait falls back to the home manager,
// which supervises the session. The redirect chain is capped at
// params.WaitMaxMoves so a buggy or split-brain manager pair cannot
// bounce a waiter forever.
func (a *Agent) Wait(job *Job) (uint32, error) {
	moves := 0
	for {
		w := [6]uint32{uint32(job.LHID)}
		if job.PM == vid.GroupHomePMs {
			// Home-group wait: the flag makes every member but the current
			// leader stay silent, so the group send has one authority.
			w[5] = progmgr.PmWaitHome
		}
		m, err := a.ctx.Send(job.PM, vid.Message{
			Op: progmgr.PmWaitProgram,
			W:  w,
		})
		if err != nil {
			if home := a.homeWaitTarget(); job.PM != home {
				job.PM = home
				if moves++; moves > params.WaitMaxMoves {
					return 0, ErrTooManyMoves
				}
				continue
			}
			if job.PM == vid.GroupHomePMs {
				// Group silence is mid-election, not absence: wait out a
				// lease interval and re-ask. The moves cap bounds the
				// patience if the group really is gone.
				if moves++; moves > params.WaitMaxMoves {
					return 0, ErrTooManyMoves
				}
				a.Sleep(params.LeaseInterval)
				continue
			}
			return 0, err
		}
		if m.Code == progmgr.CodeMoved {
			job.PM = vid.PID(m.W[1])
			if nl := vid.LHID(m.W[2]); nl != 0 {
				job.LHID = nl
			}
			if moves++; moves > params.WaitMaxMoves {
				return 0, ErrTooManyMoves
			}
			continue
		}
		if !m.OK() {
			// A hosting manager that tore its guest down administratively
			// (post-copy residue loss) answers aborted. The session's fate
			// is the home supervisor's call: once the broken lease expires
			// it re-executes the program (or fails the session), so re-ask
			// at home after a lease interval rather than surface the abort.
			if home := a.homeWaitTarget(); m.Code == vid.CodeAborted && job.PM != home {
				job.PM = home
				if moves++; moves > params.WaitMaxMoves {
					return 0, ErrTooManyMoves
				}
				a.Sleep(params.LeaseInterval)
				continue
			}
			return 0, m.Err()
		}
		a.noteExited(job.LHID, m.W[0])
		return m.W[0], nil
	}
}

// Migrate asks the job's current program manager to move it elsewhere
// (`migrateprog`). kill corresponds to the -n flag: destroy the program if
// no host will take it. On success the job's manager is updated from the
// report.
func (a *Agent) Migrate(job *Job, kill bool) (*MigrationReport, error) {
	w1 := uint32(0)
	if kill {
		w1 = 1
	}
	m, err := a.ctx.Send(job.PM, vid.Message{
		Op: progmgr.PmMigrateProgram,
		W:  [6]uint32{uint32(job.LHID), w1},
	})
	if err != nil {
		return nil, err
	}
	if !m.OK() {
		// The manager relays the failure phase in the refused reply
		// (W[0] = phase+1, W[1] = pre-copy round); reconstruct the typed
		// error so callers can errors.Is/As it.
		if m.W[0] != 0 {
			return nil, &PhaseError{
				Phase: trace.Phase(m.W[0] - 1), Round: int(m.W[1]), Err: m.Err(),
			}
		}
		return nil, m.Err()
	}
	if len(m.Seg) == 0 {
		return nil, nil // destroyed (-n with no host)
	}
	rep, err := DecodeReport(m.Seg)
	if err != nil {
		return nil, err
	}
	job.PM = rep.NewPM
	return rep, nil
}

// MigrateAll asks a node's program manager to remove all guest programs
// (`migrateprog` with no argument, the owner-returns operation).
func (a *Agent) MigrateAll(n *Node, kill bool) error {
	w1 := uint32(0)
	if kill {
		w1 = 1
	}
	m, err := a.ctx.Send(n.PM.PID(), vid.Message{
		Op: progmgr.PmMigrateProgram,
		W:  [6]uint32{0, w1},
	})
	if err != nil {
		return err
	}
	return m.Err()
}

// PS returns the program listing of a node.
func (a *Agent) PS(n *Node) (string, error) {
	m, err := a.ctx.Send(n.PM.PID(), vid.Message{Op: progmgr.PmQueryPrograms})
	if err != nil {
		return "", err
	}
	return m.SegString(), nil
}

// MinMemFor computes the selection memory requirement for a program of
// the given space size.
func MinMemFor(spaceSize uint32) uint32 {
	if spaceSize < params.PageSize {
		return params.PageSize
	}
	return spaceSize
}

// Select performs one decentralized host-selection query (experiments),
// through the node's configured selection policy.
func (a *Agent) Select(minMem uint32) (HostSel, error) {
	return a.node.SelectVia(a.ctx, minMem, a.node.Host.SystemLH().ID())
}

// CreateProgram sets up an execution environment on the selected host
// without starting the program (the experiment harness uses this to
// separate environment setup/teardown cost from execution).
func (a *Agent) CreateProgram(sel HostSel, prog string, args []string) (*Job, error) {
	guest := uint32(0)
	if sel.SystemLH != a.node.Host.SystemLH().ID() {
		guest = 1
	}
	m, err := a.ctx.Send(sel.PM, vid.Message{
		Op:  progmgr.PmCreateProgram,
		W:   [6]uint32{uint32(a.node.Display.PID()), guest},
		Seg: []byte(strings.Join(append([]string{prog}, args...), "\x00")),
	})
	if err != nil {
		return nil, err
	}
	if !m.OK() {
		return nil, m.Err()
	}
	return &Job{Name: prog, PID: vid.PID(m.W[0]), LHID: vid.LHID(m.W[1]), PM: sel.PM}, nil
}

// DestroyProgram tears a program down through its manager.
func (a *Agent) DestroyProgram(job *Job) error {
	m, err := a.ctx.Send(job.PM, vid.Message{
		Op: progmgr.PmDestroyProgram,
		W:  [6]uint32{uint32(job.LHID)},
	})
	if err != nil {
		return err
	}
	return m.Err()
}

// Suspend freezes a running program wherever it is — suspension is
// transparent to location (§2).
func (a *Agent) Suspend(job *Job) error {
	m, err := a.ctx.Send(job.PM, vid.Message{Op: progmgr.PmSuspendProgram, W: [6]uint32{uint32(job.LHID)}})
	if err != nil {
		return err
	}
	return m.Err()
}

// Resume unfreezes a suspended program.
func (a *Agent) Resume(job *Job) error {
	m, err := a.ctx.Send(job.PM, vid.Message{Op: progmgr.PmResumeProgram, W: [6]uint32{uint32(job.LHID)}})
	if err != nil {
		return err
	}
	return m.Err()
}

// Inspect reads a process's registers through the kernel server of its
// logical host — the V debugger's remote-transparent primitive (§6). It
// works wherever the program currently runs.
func (a *Agent) Inspect(pid vid.PID) (kernel.Regs, uint32, error) {
	m, err := a.ctx.Send(kernel.KernelServerPID(pid.LH()), vid.Message{
		Op: kernel.KsQueryProcess, W: [6]uint32{uint32(pid)},
	})
	if err != nil {
		return kernel.Regs{}, 0, err
	}
	if !m.OK() {
		return kernel.Regs{}, 0, m.Err()
	}
	regs, err := kernel.DecodeRegs(m.Seg)
	return regs, m.W[0], err
}
