package core

import (
	"errors"
	"strings"

	"vsystem/internal/kernel"
	"vsystem/internal/params"
	"vsystem/internal/progmgr"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// HostSel identifies a selected execution host.
type HostSel struct {
	PM       vid.PID
	SystemLH vid.LHID
	MemFree  uint32
}

// MAC returns the selected host's station address (derived from the
// system logical-host id, whose high byte is the host index + 1).
func (s HostSel) MAC() uint16 { return uint16(s.SystemLH >> 8) }

// ErrNoHost means no workstation answered a selection query.
var ErrNoHost = errors.New("core: no host available")

// SelectVia routes a host-selection query through the node's scheduling
// selector (policy + cached load view) and adapts the result.
func (n *Node) SelectVia(ctx *kernel.ProcCtx, minMem uint32, exclude ...vid.LHID) (HostSel, error) {
	l, err := n.Selector.Select(ctx, minMem, exclude...)
	if err != nil {
		return HostSel{}, ErrNoHost
	}
	return HostSel{PM: l.PM, SystemLH: l.SystemLH, MemFree: l.MemFree}, nil
}

// SelectHost picks an idle workstation by multicasting to the
// program-manager group and taking the first response — the paper's
// decentralized scheduler ("it simply selects the program manager that
// responds first since that is generally the least loaded host", §2.1).
// exclude suppresses up to four system logical hosts — typically the
// caller's own plus destinations a retried migration already saw fail.
func SelectHost(ctx *kernel.ProcCtx, minMem uint32, exclude ...vid.LHID) (HostSel, error) {
	var w [6]uint32
	w[0] = minMem
	for i, lh := range exclude {
		if i >= 4 {
			break
		}
		w[i+1] = uint32(lh)
	}
	for attempt := 0; attempt < 2; attempt++ {
		m, err := ctx.Send(vid.GroupProgramManagers, vid.Message{
			Op: progmgr.PmSelectHost,
			W:  w,
		})
		if err == nil && m.OK() {
			return HostSel{
				PM:       vid.PID(m.W[5]),
				SystemLH: vid.LHID(m.W[0]),
				MemFree:  m.W[1],
			}, nil
		}
	}
	return HostSel{}, ErrNoHost
}

// FindHost resolves a workstation by name through the program-manager
// group (the `@ machine-name` form).
func FindHost(ctx *kernel.ProcCtx, name string) (HostSel, error) {
	m, err := ctx.Send(vid.GroupProgramManagers, vid.Message{
		Op:  progmgr.PmQueryHost,
		Seg: []byte(name),
	})
	if err != nil || !m.OK() {
		return HostSel{}, ErrNoHost
	}
	return HostSel{PM: vid.PID(m.W[5]), SystemLH: vid.LHID(m.W[0])}, nil
}

// Job is a handle to an executing program.
type Job struct {
	Name string
	PID  vid.PID  // initial process
	LHID vid.LHID // the program's logical host (stable across migration)
	PM   vid.PID  // program manager currently responsible
	Host string   // where it started (diagnostic)
}

// ExecMinMem is the default free-memory requirement used for `@ *`
// selection when the image size is not yet known.
const ExecMinMem = 256 * 1024

// Exec runs a program, paralleling the command-interpreter syntax:
// where is "" (local), "*" (any idle machine), or a host name.
//
// The sequence follows §2.1: select a program manager, send it the
// program-creation request (it builds the address space, loads the image
// from the file server, initializes arguments, environment, and default
// I/O), then start the program by "replying to its initial process" — a
// start operation to the kernel server addressed through the new logical
// host.
func (a *Agent) Exec(prog string, args []string, where string) (*Job, error) {
	ctx := a.ctx
	var sel HostSel
	var err error
	switch where {
	case "", "local":
		sel = HostSel{
			PM:       a.node.PM.PID(),
			SystemLH: a.node.Host.SystemLH().ID(),
		}
	case "*":
		// "some other lightly loaded machine" (§4.3): exclude the home
		// workstation.
		sel, err = a.node.SelectVia(ctx, ExecMinMem, a.node.Host.SystemLH().ID())
	default:
		sel, err = FindHost(ctx, where)
	}
	if err != nil {
		return nil, err
	}
	guest := uint32(0)
	if sel.SystemLH != a.node.Host.SystemLH().ID() {
		guest = 1
	}
	seg := []byte(strings.Join(append([]string{prog}, args...), "\x00"))
	m, err := ctx.Send(sel.PM, vid.Message{
		Op:  progmgr.PmCreateProgram,
		W:   [6]uint32{uint32(a.node.Display.PID()), guest},
		Seg: seg,
	})
	if err != nil {
		return nil, err
	}
	if !m.OK() {
		return nil, m.Err()
	}
	job := &Job{
		Name: prog,
		PID:  vid.PID(m.W[0]),
		LHID: vid.LHID(m.W[1]),
		PM:   sel.PM,
		Host: whereName(a, sel),
	}
	// Start the program: the creator's go-ahead to the initial process,
	// via the kernel server reachable through the program's logical host.
	sm, err := ctx.Send(kernel.KernelServerPID(job.LHID), vid.Message{
		Op: kernel.KsStartProcess,
		W:  [6]uint32{uint32(job.PID)},
	})
	if err != nil {
		return nil, err
	}
	if !sm.OK() {
		return nil, sm.Err()
	}
	return job, nil
}

func whereName(a *Agent, sel HostSel) string {
	if n := a.node.cluster.NodeByLH(sel.SystemLH); n != nil {
		return n.Name()
	}
	return "?"
}

// Wait blocks until the job exits, following the program across
// migrations (a manager that migrated the program away answers with
// CodeMoved and the new manager's pid).
func (a *Agent) Wait(job *Job) (uint32, error) {
	for {
		m, err := a.ctx.Send(job.PM, vid.Message{
			Op: progmgr.PmWaitProgram,
			W:  [6]uint32{uint32(job.LHID)},
		})
		if err != nil {
			return 0, err
		}
		if m.Code == progmgr.CodeMoved {
			job.PM = vid.PID(m.W[1])
			continue
		}
		if !m.OK() {
			return 0, m.Err()
		}
		return m.W[0], nil
	}
}

// Migrate asks the job's current program manager to move it elsewhere
// (`migrateprog`). kill corresponds to the -n flag: destroy the program if
// no host will take it. On success the job's manager is updated from the
// report.
func (a *Agent) Migrate(job *Job, kill bool) (*MigrationReport, error) {
	w1 := uint32(0)
	if kill {
		w1 = 1
	}
	m, err := a.ctx.Send(job.PM, vid.Message{
		Op: progmgr.PmMigrateProgram,
		W:  [6]uint32{uint32(job.LHID), w1},
	})
	if err != nil {
		return nil, err
	}
	if !m.OK() {
		// The manager relays the failure phase in the refused reply
		// (W[0] = phase+1, W[1] = pre-copy round); reconstruct the typed
		// error so callers can errors.Is/As it.
		if m.W[0] != 0 {
			return nil, &PhaseError{
				Phase: trace.Phase(m.W[0] - 1), Round: int(m.W[1]), Err: m.Err(),
			}
		}
		return nil, m.Err()
	}
	if len(m.Seg) == 0 {
		return nil, nil // destroyed (-n with no host)
	}
	rep, err := DecodeReport(m.Seg)
	if err != nil {
		return nil, err
	}
	job.PM = rep.NewPM
	return rep, nil
}

// MigrateAll asks a node's program manager to remove all guest programs
// (`migrateprog` with no argument, the owner-returns operation).
func (a *Agent) MigrateAll(n *Node, kill bool) error {
	w1 := uint32(0)
	if kill {
		w1 = 1
	}
	m, err := a.ctx.Send(n.PM.PID(), vid.Message{
		Op: progmgr.PmMigrateProgram,
		W:  [6]uint32{0, w1},
	})
	if err != nil {
		return err
	}
	return m.Err()
}

// PS returns the program listing of a node.
func (a *Agent) PS(n *Node) (string, error) {
	m, err := a.ctx.Send(n.PM.PID(), vid.Message{Op: progmgr.PmQueryPrograms})
	if err != nil {
		return "", err
	}
	return m.SegString(), nil
}

// MinMemFor computes the selection memory requirement for a program of
// the given space size.
func MinMemFor(spaceSize uint32) uint32 {
	if spaceSize < params.PageSize {
		return params.PageSize
	}
	return spaceSize
}

// Select performs one decentralized host-selection query (experiments),
// through the node's configured selection policy.
func (a *Agent) Select(minMem uint32) (HostSel, error) {
	return a.node.SelectVia(a.ctx, minMem, a.node.Host.SystemLH().ID())
}

// CreateProgram sets up an execution environment on the selected host
// without starting the program (the experiment harness uses this to
// separate environment setup/teardown cost from execution).
func (a *Agent) CreateProgram(sel HostSel, prog string, args []string) (*Job, error) {
	guest := uint32(0)
	if sel.SystemLH != a.node.Host.SystemLH().ID() {
		guest = 1
	}
	m, err := a.ctx.Send(sel.PM, vid.Message{
		Op:  progmgr.PmCreateProgram,
		W:   [6]uint32{uint32(a.node.Display.PID()), guest},
		Seg: []byte(strings.Join(append([]string{prog}, args...), "\x00")),
	})
	if err != nil {
		return nil, err
	}
	if !m.OK() {
		return nil, m.Err()
	}
	return &Job{Name: prog, PID: vid.PID(m.W[0]), LHID: vid.LHID(m.W[1]), PM: sel.PM}, nil
}

// DestroyProgram tears a program down through its manager.
func (a *Agent) DestroyProgram(job *Job) error {
	m, err := a.ctx.Send(job.PM, vid.Message{
		Op: progmgr.PmDestroyProgram,
		W:  [6]uint32{uint32(job.LHID)},
	})
	if err != nil {
		return err
	}
	return m.Err()
}

// Suspend freezes a running program wherever it is — suspension is
// transparent to location (§2).
func (a *Agent) Suspend(job *Job) error {
	m, err := a.ctx.Send(job.PM, vid.Message{Op: progmgr.PmSuspendProgram, W: [6]uint32{uint32(job.LHID)}})
	if err != nil {
		return err
	}
	return m.Err()
}

// Resume unfreezes a suspended program.
func (a *Agent) Resume(job *Job) error {
	m, err := a.ctx.Send(job.PM, vid.Message{Op: progmgr.PmResumeProgram, W: [6]uint32{uint32(job.LHID)}})
	if err != nil {
		return err
	}
	return m.Err()
}

// Inspect reads a process's registers through the kernel server of its
// logical host — the V debugger's remote-transparent primitive (§6). It
// works wherever the program currently runs.
func (a *Agent) Inspect(pid vid.PID) (kernel.Regs, uint32, error) {
	m, err := a.ctx.Send(kernel.KernelServerPID(pid.LH()), vid.Message{
		Op: kernel.KsQueryProcess, W: [6]uint32{uint32(pid)},
	})
	if err != nil {
		return kernel.Regs{}, 0, err
	}
	if !m.OK() {
		return kernel.Regs{}, 0, m.Err()
	}
	regs, err := kernel.DecodeRegs(m.Seg)
	return regs, m.W[0], err
}
