package core

import (
	"testing"
	"time"
)

// fsLeaderIdx finds the replica index currently leading the file-server
// group (-1 when no fenced leader exists).
func fsLeaderIdx(c *Cluster) int {
	for i, fs := range c.FSReps {
		if !c.FSHosts[i].Crashed() && fs.Replica() != nil && fs.Replica().IsLeader() {
			return i
		}
	}
	return -1
}

func nsLeaderIdx(c *Cluster) int {
	for i, ns := range c.NSReps {
		if !c.FSHosts[i].Crashed() && ns.Replica() != nil && ns.Replica().IsLeader() {
			return i
		}
	}
	return -1
}

// A program image must load even after the file-server leader machine is
// killed: the stat/read loop re-resolves through the group and a surviving
// replica serves the image.
func TestReplicatedImageLoadSurvivesFSLeaderCrash(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 1, ReplicateFS: 3})
	c.Sim.At(c.Sim.Now().Add(3*time.Second), func() {
		idx := fsLeaderIdx(c)
		if idx < 0 {
			t.Error("no file-server leader elected by 3s")
			return
		}
		c.FSHosts[idx].Crash()
	})
	var code uint32
	var err error
	done := false
	c.Node(0).Agent(func(a *Agent) {
		a.Sleep(4 * time.Second) // start after the crash
		var job *Job
		if job, err = a.Exec("hello", nil, ""); err == nil {
			code, err = a.Wait(job)
		}
		done = true
	})
	c.Run(60 * time.Second)
	if !done {
		t.Fatal("agent never finished")
	}
	if err != nil {
		t.Fatalf("exec after fs-leader crash: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if lines := c.Node(0).Display.Lines(); len(lines) != 1 || lines[0] != "hello from the VVM" {
		t.Fatalf("display = %q", lines)
	}
}

// Name lookups must survive the name-server leader's death: the bounded
// Lookup retry lands on whichever replica regained authority.
func TestLookupSurvivesNameServerCrash(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 1, ReplicateFS: 3})
	c.Sim.At(c.Sim.Now().Add(3*time.Second), func() {
		idx := nsLeaderIdx(c)
		if idx < 0 {
			t.Error("no name-server leader elected by 3s")
			return
		}
		c.FSHosts[idx].Crash()
	})
	var err error
	done := false
	c.Node(0).Agent(func(a *Agent) {
		a.Sleep(4 * time.Second)
		_, err = a.Resolve("progmgr.ws1")
		done = true
	})
	c.Run(30 * time.Second)
	if !done {
		t.Fatal("agent never finished")
	}
	if err != nil {
		t.Fatalf("lookup after ns-leader crash: %v", err)
	}
}

// Without replication the same crash loses the service: the non-replicated
// baseline demonstrates what the consensus layer buys.
func TestUnreplicatedLookupDiesWithServer(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 1})
	c.Sim.At(c.Sim.Now().Add(3*time.Second), func() { c.FSHost.Crash() })
	var err error
	done := false
	c.Node(0).Agent(func(a *Agent) {
		a.Sleep(4 * time.Second)
		_, err = a.Resolve("progmgr.ws1")
		done = true
	})
	c.Run(30 * time.Second)
	if !done {
		t.Fatal("agent never finished")
	}
	if err == nil {
		t.Fatal("lookup succeeded with the only name server dead")
	}
}
