package core

import (
	"errors"
	"testing"
	"time"

	"vsystem/internal/fault"
	"vsystem/internal/progs"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// TestPostcopyMigrationExactlyOnce is post-copy's transparency guarantee:
// the guest's identity swaps after a near-immediate freeze and its pages
// follow on demand, yet the user observes exactly the same output stream
// as an unmigrated run — every tick once, in order.
func TestPostcopyMigrationExactlyOnce(t *testing.T) {
	c := boot(t, Options{Workstations: 4, Seed: 41, Policy: PolicyPostcopy})
	c.Install(progs.Ticker(400))

	var job *Job
	var rep *MigrationReport
	var execErr, migErr, waitErr error
	c.Node(0).Agent(func(a *Agent) {
		job, execErr = a.Exec("ticker400", nil, "ws1")
		if execErr != nil {
			return
		}
		a.Sleep(800 * time.Millisecond)
		rep, migErr = a.Migrate(job, false)
		if migErr != nil {
			return
		}
		_, waitErr = a.Wait(job)
	})
	c.Run(3 * time.Minute)

	if execErr != nil || migErr != nil || waitErr != nil {
		t.Fatalf("exec=%v mig=%v wait=%v", execErr, migErr, waitErr)
	}
	assertGapless(t, c.Node(0).Display.Lines(), 400)
	if rep.Policy != "postcopy" {
		t.Fatalf("report policy = %q", rep.Policy)
	}
	if rep.ResidueAborted {
		t.Fatal("residue aborted on a healthy cluster")
	}
	if len(rep.Rounds) != 0 {
		t.Fatalf("postcopy ran %d pre-copy rounds, want 0", len(rep.Rounds))
	}
	if rep.ResiduePushKB+rep.PostSwapPullKB <= 0 {
		t.Fatalf("no residue moved post-swap (push=%.1f pull=%.1f)",
			rep.ResiduePushKB, rep.PostSwapPullKB)
	}
	assertRemoteFaultParity(t, c)
}

// TestPostcopyDemandPullsUnderLoad migrates the paper's highest-dirty-rate
// workload ("tex") under pure post-copy: the guest resumes against an
// almost-empty address space, so the remote-fault path must field real
// demand faults — parked processes, receptacle pulls, stall accounting —
// while the push-out races it for the rest.
func TestPostcopyDemandPullsUnderLoad(t *testing.T) {
	rep := parityScenario(t, PolicyPostcopy)
	if rep.PostSwapFaults <= 0 {
		t.Fatalf("PostSwapFaults = %d, want > 0", rep.PostSwapFaults)
	}
	if rep.PostSwapStall <= 0 {
		t.Fatalf("PostSwapStall = %v, want > 0", rep.PostSwapStall)
	}
	if rep.PostSwapPullKB <= 0 {
		t.Fatalf("PostSwapPullKB = %.1f, want > 0", rep.PostSwapPullKB)
	}
	if rep.ResidueAborted {
		t.Fatal("residue aborted on a healthy cluster")
	}
}

// TestHybridFreezeBelowPrecopy pins the hybrid policy's reason to exist:
// on the same scenario (same seed, same workload, same virtual clock) the
// hybrid freeze window — invalidation run plus kernel state only — must be
// shorter than pre-copy's, which copies the full dirty residue while
// frozen. The factor is pinned properly (≥5× under loss) by experiment
// E12; here we pin the direction and the mechanism.
func TestHybridFreezeBelowPrecopy(t *testing.T) {
	pre := parityScenario(t, PolicyPrecopy)
	hyb := parityScenario(t, PolicyHybrid)

	if hyb.FreezeTime >= pre.FreezeTime {
		t.Fatalf("hybrid freeze %v not below pre-copy freeze %v",
			hyb.FreezeTime, pre.FreezeTime)
	}
	if len(hyb.Rounds) != 1 {
		t.Fatalf("hybrid ran %d pre-swap rounds, want exactly 1 (the hot set)", len(hyb.Rounds))
	}
	if hyb.Rounds[0].KB <= 0 {
		t.Fatal("hybrid hot-set round copied nothing; tex dirties pages continuously")
	}
	if hyb.ResidueAborted {
		t.Fatal("residue aborted on a healthy cluster")
	}
}

// TestPostcopySourceCrashMidResidueAborts covers the policy's failure
// contract: the source dies at the start of the post-swap residue window,
// taking the receptacle (and the migration worker) with it. The guest's
// memory can no longer be completed, so the destination must abort it
// cleanly — typed *PhaseError at PhasePostSwapPull, never silent zero
// pages — and supervision then re-executes the session from its
// file-server image with exactly-once output.
func TestPostcopySourceCrashMidResidueAborts(t *testing.T) {
	c := boot(t, Options{Workstations: 4, Seed: 43, Policy: PolicyPostcopy})
	c.Install(progs.Ticker(400))
	c.Fault.MigrationFault(trace.PhasePostSwapPull, 0, fault.VictimSource)

	var job *Job
	var origLH vid.LHID
	var code uint32
	var waitDone bool
	var execErr, migErr, waitErr error
	c.Node(0).Agent(func(a *Agent) {
		job, execErr = a.Exec("ticker400", nil, "ws1")
		if execErr != nil {
			return
		}
		origLH = job.LHID // Wait rebinds job.LHID across re-executions
		a.Sleep(800 * time.Millisecond)
		// The worker running the migration dies with the source host, so
		// this call fails; the session must still complete via supervision.
		_, migErr = a.Migrate(job, false)
	})
	c.Node(0).Agent(func(a *Agent) {
		for job == nil {
			a.Sleep(100 * time.Millisecond)
		}
		code, waitErr = a.Wait(job)
		waitDone = true
	})
	c.Run(4 * time.Minute)

	if execErr != nil {
		t.Fatalf("exec: %v", execErr)
	}
	if migErr == nil {
		t.Fatal("Migrate reported success though its worker crashed mid-residue")
	}
	if got := c.Trace.Count(trace.EvMigFault); got != 1 {
		t.Fatalf("EvMigFault count = %d, want 1", got)
	}
	if got := c.Trace.Count(trace.EvHostCrash); got != 1 {
		t.Fatalf("EvHostCrash count = %d, want 1", got)
	}

	st := c.PagerStatsFor(origLH)
	if st == nil {
		t.Fatal("no pager stats registered for the migrated identity")
	}
	if !st.Aborted {
		t.Fatal("residue not marked aborted after source crash")
	}
	var pe *PhaseError
	if !errors.As(st.AbortErr, &pe) {
		t.Fatalf("AbortErr = %v, want *PhaseError", st.AbortErr)
	}
	if pe.Phase != trace.PhasePostSwapPull {
		t.Fatalf("AbortErr phase = %v, want %v", pe.Phase, trace.PhasePostSwapPull)
	}

	// Supervision must have re-executed the session and completed it with
	// no lost or duplicated output.
	if !waitDone {
		t.Fatal("Wait never completed; the lost guest's session was not recovered")
	}
	if waitErr != nil || code != 0 {
		t.Fatalf("wait = (%d, %v), want clean exit via re-exec", code, waitErr)
	}
	if got := c.Trace.Count(trace.EvExecRestart); got < 1 {
		t.Fatalf("EvExecRestart count = %d, want >= 1", got)
	}
	assertGapless(t, c.Node(0).Display.Lines(), 400)
}

// assertRemoteFaultParity holds the trace bus and the pager counters to
// account for exactly the same demand faults: every counted fault must
// publish one EvRemoteFault, and vice versa.
func assertRemoteFaultParity(t *testing.T, c *Cluster) {
	t.Helper()
	tot := c.RemoteFaultTotals()
	if got := c.Trace.Count(trace.EvRemoteFault); got != int64(tot.Faults) {
		t.Fatalf("EvRemoteFault events = %d, PagerStats faults = %d", got, tot.Faults)
	}
}

// TestPagerPIDWrapSkipsLivePorts regresses the pager port-id wrap: the
// bare 12-bit sequence recycles after 4096 allocations, and allocating an
// id whose previous user still holds its port open used to panic inside
// NewPort. The allocator must skip live ids and keep going.
func TestPagerPIDWrapSkipsLivePorts(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 45})
	n := c.Node(0)

	// Hold a port open at the id the wrapped sequence will hit first.
	held := n.pagerPID()
	port := n.Host.IPC.NewPort(held)
	defer port.Close()

	// Drive the sequence through a full wrap; every returned id must be
	// allocatable (NewPort panics on collision) and never the held one.
	for i := 0; i < 0x1001; i++ {
		pid := n.pagerPID()
		if pid == held {
			t.Fatalf("allocator returned live id %v after %d allocations", pid, i)
		}
		p := n.Host.IPC.NewPort(pid)
		p.Close()
	}
}
