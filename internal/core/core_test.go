package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"vsystem/internal/image"
	"vsystem/internal/kernel"
	"vsystem/internal/progs"
	"vsystem/internal/vid"
	"vsystem/internal/workload"
)

func boot(t *testing.T, opt Options) *Cluster {
	t.Helper()
	c := NewCluster(opt)
	c.Install(progs.Hello())
	c.Install(progs.Primes(500))
	c.Install(progs.Ticker(30))
	c.Install(progs.Ticker(200))
	c.Install(progs.MemWalker(64, 200))
	for _, img := range workload.PaperImages() {
		c.Install(img)
	}
	return c
}

func TestLocalExecution(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 1})
	var code uint32
	var err error
	c.Node(0).Agent(func(a *Agent) {
		var job *Job
		job, err = a.Exec("hello", nil, "")
		if err != nil {
			return
		}
		code, err = a.Wait(job)
	})
	c.Run(30 * time.Second)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := c.Node(0).Display.Lines()
	if len(lines) != 1 || lines[0] != "hello from the VVM" {
		t.Fatalf("display = %q", lines)
	}
}

func TestRemoteExecutionOnNamedHost(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 2})
	var err error
	var job *Job
	c.Node(0).Agent(func(a *Agent) {
		job, err = a.Exec("primes500", nil, "ws2")
		if err != nil {
			return
		}
		_, err = a.Wait(job)
	})
	c.Run(2 * time.Minute)
	if err != nil {
		t.Fatalf("exec @ws2: %v", err)
	}
	if job.Host != "ws2" {
		t.Fatalf("ran on %s, want ws2", job.Host)
	}
	// Output appears on the HOME workstation's display (network-transparent
	// I/O), not on the execution host.
	if got := c.Node(0).Display.Lines(); len(got) != 1 || got[0] != "95" {
		// π(500) = 95.
		t.Fatalf("home display = %q, want [95]", got)
	}
	if got := c.Node(2).Display.Lines(); len(got) != 0 {
		t.Fatalf("execution host display = %q, want empty", got)
	}
}

func TestExecAtStarPicksIdleOtherHost(t *testing.T) {
	c := boot(t, Options{Workstations: 4, Seed: 3})
	var job *Job
	var err error
	c.Node(1).Agent(func(a *Agent) {
		job, err = a.Exec("hello", nil, "*")
		if err != nil {
			return
		}
		_, err = a.Wait(job)
	})
	c.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if job.Host == "ws1" {
		t.Fatal("@* selected the home workstation")
	}
}

func TestExecUnknownProgram(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 4})
	var err error
	done := false
	c.Node(0).Agent(func(a *Agent) {
		_, err = a.Exec("no-such-prog", nil, "")
		done = true
	})
	c.Run(time.Minute)
	if !done {
		t.Fatal("agent stuck")
	}
	if err == nil {
		t.Fatal("unknown program executed")
	}
}

func TestExecUnknownHost(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 5})
	var err error
	done := false
	c.Node(0).Agent(func(a *Agent) {
		_, err = a.Exec("hello", nil, "ws99")
		done = true
	})
	c.Run(time.Minute)
	if !done || err == nil {
		t.Fatalf("done=%v err=%v, want name-resolution failure", done, err)
	}
}

func TestSelectionSkipsBusyHosts(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 6})
	// Occupy ws2 with a local long-running program.
	var busyErr error
	c.Node(2).Agent(func(a *Agent) {
		_, busyErr = a.Exec("tex", nil, "")
	})
	var job *Job
	var err error
	c.Node(0).Agent(func(a *Agent) {
		a.Sleep(2 * time.Second) // let the local program settle in
		job, err = a.Exec("hello", nil, "*")
	})
	c.Run(20 * time.Second)
	if busyErr != nil {
		t.Fatalf("busy setup: %v", busyErr)
	}
	if err != nil {
		t.Fatalf("@*: %v", err)
	}
	if job.Host != "ws1" {
		t.Fatalf("selected %s, want the only idle host ws1", job.Host)
	}
}

// migrationLines runs ticker30 remotely with optional mid-run migrations
// and returns the home display lines.
func migrationLines(t *testing.T, migrations int, policy Policy, seed int64) []string {
	t.Helper()
	c := boot(t, Options{Workstations: 4, Seed: seed, Policy: policy})
	var execErr, migErr, waitErr error
	c.Node(0).Agent(func(a *Agent) {
		job, err := a.Exec("ticker200", nil, "ws1")
		if err != nil {
			execErr = err
			return
		}
		for i := 0; i < migrations; i++ {
			a.Sleep(800 * time.Millisecond)
			if _, err := a.Migrate(job, false); err != nil {
				migErr = err
				return
			}
		}
		_, waitErr = a.Wait(job)
	})
	c.Run(5 * time.Minute)
	if execErr != nil || migErr != nil || waitErr != nil {
		t.Fatalf("exec=%v mig=%v wait=%v", execErr, migErr, waitErr)
	}
	return c.Node(0).Display.Lines()
}

func TestMigrationPreservesOutput(t *testing.T) {
	plain := migrationLines(t, 0, PolicyPrecopy, 7)
	migrated := migrationLines(t, 2, PolicyPrecopy, 7)
	if len(plain) != 200 {
		t.Fatalf("baseline produced %d lines", len(plain))
	}
	if len(migrated) != len(plain) {
		t.Fatalf("migrated run produced %d lines, want %d", len(migrated), len(plain))
	}
	for i := range plain {
		if plain[i] != migrated[i] {
			t.Fatalf("line %d differs: %q vs %q", i, plain[i], migrated[i])
		}
	}
}

func TestMigrationTransparencyAcrossPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyPrecopy, PolicyStopCopy, PolicyFlush} {
		got := migrationLines(t, 1, pol, 8)
		if len(got) != 200 {
			t.Fatalf("%v: %d lines, want 200", pol, len(got))
		}
		if got[199] != "t200" {
			t.Fatalf("%v: last line %q", pol, got[199])
		}
	}
}

// TestMemWalkerChecksumUnchangedByMigration is the headline transparency
// property: a memory-intensive program computes the same checksum whether
// or not it was migrated mid-run (real data moved, not just control).
func TestMemWalkerChecksumUnchangedByMigration(t *testing.T) {
	run := func(migrate bool) (uint32, error) {
		c := boot(t, Options{Workstations: 3, Seed: 9})
		var code uint32
		var err error
		c.Node(0).Agent(func(a *Agent) {
			var job *Job
			job, err = a.Exec("memwalk64k", nil, "ws1")
			if err != nil {
				return
			}
			if migrate {
				a.Sleep(2 * time.Second)
				if _, merr := a.Migrate(job, false); merr != nil {
					err = merr
					return
				}
			}
			code, err = a.Wait(job)
		})
		c.Run(10 * time.Minute)
		return code, err
	}
	base, err := run(false)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	mig, err := run(true)
	if err != nil {
		t.Fatalf("migrated: %v", err)
	}
	if base != mig {
		t.Fatalf("checksums differ: %#x vs %#x", base, mig)
	}
	if base == 0 {
		t.Fatal("degenerate zero checksum")
	}
}

func TestWaitFollowsMigratedProgram(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 10})
	var code uint32
	var err error
	c.Node(0).Agent(func(a *Agent) {
		job, e := a.Exec("ticker200", nil, "ws1")
		if e != nil {
			err = e
			return
		}
		// A second agent waits while the program migrates.
		done := false
		c.Node(0).Agent(func(b *Agent) {
			code, err = b.Wait(job)
			done = true
		})
		a.Sleep(time.Second)
		if _, e := a.Migrate(job, false); e != nil {
			err = e
		}
		for !done {
			a.Sleep(time.Second)
		}
	})
	c.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestMigrateNoHostRefusedAndKill(t *testing.T) {
	// Two workstations: the only other host is busy, so migration finds
	// no taker.
	c := boot(t, Options{Workstations: 2, Seed: 11})
	var migErr error
	var killed bool
	c.Node(1).Agent(func(a *Agent) {
		a.Exec("tex", nil, "") // keep ws1 busy (local program)
	})
	c.Node(0).Agent(func(a *Agent) {
		a.Sleep(2 * time.Second)
		job, err := a.Exec("ticker200", nil, "")
		if err != nil {
			migErr = err
			return
		}
		a.Sleep(500 * time.Millisecond)
		_, migErr = a.Migrate(job, false)
		if migErr == nil {
			return
		}
		// -n: destroy instead.
		rep, err := a.Migrate(job, true)
		if err == nil && rep == nil {
			killed = true
		}
	})
	c.Run(2 * time.Minute)
	if migErr == nil {
		t.Fatal("migration with no available host succeeded")
	}
	if !killed {
		t.Fatal("migrateprog -n did not destroy the program")
	}
}

func TestOwnerReturnsMigrateAll(t *testing.T) {
	c := boot(t, Options{Workstations: 4, Seed: 12})
	var execErr error
	var jobs []*Job
	c.Node(0).Agent(func(a *Agent) {
		for _, prog := range []string{"tex", "parser"} {
			job, err := a.Exec(prog, nil, "ws1")
			if err != nil {
				execErr = err
				return
			}
			jobs = append(jobs, job)
		}
		a.Sleep(time.Second)
		// The owner of ws1 returns and evicts all guests.
		if err := a.MigrateAll(c.Node(1), false); err != nil {
			execErr = err
			return
		}
		a.Sleep(10 * time.Second)
		// Observe placement while the programs are still running.
		for _, lh := range c.Node(1).Host.LHs() {
			if lh.Guest() {
				execErr = fmt.Errorf("guest %v (%s) still on ws1", lh.ID(), lh.Name())
				return
			}
		}
		for _, job := range jobs {
			node, lh := c.FindProgram(job.LHID)
			if lh == nil {
				execErr = fmt.Errorf("%s vanished after eviction", job.Name)
				return
			}
			if node == c.Node(1) {
				execErr = fmt.Errorf("%s still on ws1", job.Name)
				return
			}
		}
	})
	c.Run(2 * time.Minute)
	if execErr != nil {
		t.Fatal(execErr)
	}
}

func TestPrecopyFreezeTimeFarBelowStopCopy(t *testing.T) {
	freeze := func(policy Policy) time.Duration {
		c := boot(t, Options{Workstations: 3, Seed: 13, Policy: policy})
		var rep *MigrationReport
		var err error
		c.Node(0).Agent(func(a *Agent) {
			job, e := a.Exec("tex", nil, "ws1")
			if e != nil {
				err = e
				return
			}
			a.Sleep(3 * time.Second)
			rep, err = a.Migrate(job, false)
		})
		c.Run(2 * time.Minute)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		return rep.FreezeTime
	}
	pre := freeze(PolicyPrecopy)
	stop := freeze(PolicyStopCopy)
	// tex: ~0.4 MB image; stop-and-copy freezes for the whole copy
	// (≈3 s/MB), pre-copy for the dirty residue plus kernel state.
	if pre >= stop/3 {
		t.Fatalf("precopy freeze %v not ≪ stop-and-copy freeze %v", pre, stop)
	}
	if pre > 500*time.Millisecond {
		t.Fatalf("precopy freeze %v implausibly long", pre)
	}
}

func TestFlushPolicyDemandFaults(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 14, Policy: PolicyFlush})
	var rep *MigrationReport
	var err error
	var job *Job
	c.Node(0).Agent(func(a *Agent) {
		job, err = a.Exec("parser", nil, "ws1")
		if err != nil {
			return
		}
		a.Sleep(2 * time.Second)
		rep, err = a.Migrate(job, false)
		if err != nil {
			return
		}
		a.Sleep(10 * time.Second)
		// Observe while the program is still running.
		node, lh := c.FindProgram(job.LHID)
		if node == c.Node(1) || lh == nil || lh.Frozen() {
			err = fmt.Errorf("program not running on new host (node=%v lh=%v)", node != nil, lh != nil)
		}
	})
	c.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "vm-flush" {
		t.Fatalf("policy = %s", rep.Policy)
	}
	st := c.PagerStatsFor(job.LHID)
	if st == nil || st.Faults == 0 {
		t.Fatalf("no demand faults recorded: %+v", st)
	}
}

func TestForwardingLeavesResidualDependency(t *testing.T) {
	// The prober runs on ws2, a host that receives no traffic from the
	// program itself, so its logical-host cache can only be refreshed by
	// the rebinding machinery (locate broadcasts) — which the forwarding
	// comparator lacks.
	probe := func(policy Policy, noRebind bool) error {
		c := boot(t, Options{Workstations: 4, Seed: 15, Policy: policy})
		if noRebind {
			for _, n := range c.Nodes {
				n.Host.IPC.NoRebind = true
			}
			c.FSHost.IPC.NoRebind = true
		}
		var err error
		var job *Job
		ready, migrated := false, false
		c.Node(0).Agent(func(a *Agent) {
			var e error
			job, e = a.Exec("tex", nil, "ws1")
			if e != nil {
				err = e
				return
			}
			ready = true
			a.Sleep(3 * time.Second)
			if _, e := a.Migrate(job, false); e != nil {
				err = e
				return
			}
			// Old host (ws1) reboots.
			c.Node(1).Host.Crash()
			migrated = true
		})
		// The prober runs on the server machine: never a migration
		// destination, and it receives no traffic from the program.
		c.FSHost.SpawnServer("prober", 8192, func(ctx *kernel.ProcCtx) {
			for !ready {
				ctx.Sleep(200 * time.Millisecond)
			}
			// Prime the prober's cache with the ws1 binding.
			if _, e := ctx.Send(kernelServer(job.LHID), pingMsg(job.LHID)); e != nil {
				err = e
				return
			}
			for !migrated {
				ctx.Sleep(200 * time.Millisecond)
			}
			ctx.Sleep(time.Second)
			// A stale reference: with rebinding this recovers via locate;
			// with forwarding only, the reference dies with ws1.
			_, err = ctx.Send(kernelServer(job.LHID), pingMsg(job.LHID))
		})
		c.Run(3 * time.Minute)
		return err
	}
	if err := probe(PolicyPrecopy, false); err != nil {
		t.Fatalf("rebinding failed to survive source reboot: %v", err)
	}
	if err := probe(PolicyForwarding, true); err == nil {
		t.Fatal("forwarding-address reference survived source reboot (expected failure)")
	}
}

func kernelServer(lh vid.LHID) vid.PID { return vid.NewPID(lh, vid.IdxKernelServer) }

func pingMsg(lh vid.LHID) vid.Message {
	return vid.Message{Op: 0x10 /* KsPing */, W: [6]uint32{uint32(lh)}}
}

func TestPSListing(t *testing.T) {
	c := boot(t, Options{Workstations: 2, Seed: 16})
	var listing string
	var err error
	c.Node(0).Agent(func(a *Agent) {
		_, err = a.Exec("ticker200", nil, "ws1")
		if err != nil {
			return
		}
		a.Sleep(500 * time.Millisecond)
		listing, err = a.PS(c.Node(1))
	})
	c.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listing, "ticker200") || !strings.Contains(listing, "guest=true") {
		t.Fatalf("listing = %q", listing)
	}
}

func TestDeterministicClusterReplay(t *testing.T) {
	run := func() (int64, string) {
		c := boot(t, Options{Workstations: 3, Seed: 99, LossRate: 0.02})
		c.Node(0).Agent(func(a *Agent) {
			job, err := a.Exec("ticker200", nil, "*")
			if err != nil {
				return
			}
			a.Sleep(time.Second)
			a.Migrate(job, false)
			a.Wait(job)
		})
		c.Run(3 * time.Minute)
		return c.Bus.Stats().Frames, strings.Join(c.Node(0).Display.Lines(), "|")
	}
	f1, l1 := run()
	f2, l2 := run()
	if f1 != f2 || l1 != l2 {
		t.Fatalf("replay diverged: %d/%d frames, %q vs %q", f1, f2, l1, l2)
	}
}

// TestSubProgramsMigrateWithLogicalHost covers §3: "A program may create
// sub-programs, all of which typically execute within a single logical
// host... all sub-programs of a program are migrated when the program is
// migrated." A second process is created in the running program's logical
// host through the kernel server; after migrateprog both processes run on
// the new host.
func TestSubProgramsMigrateWithLogicalHost(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 17})
	var err error
	var job *Job
	var procsAfter int
	var progressBefore, progressAfter [2]uint32
	c.Node(0).Agent(func(a *Agent) {
		job, err = a.Exec("tex", nil, "ws1")
		if err != nil {
			return
		}
		// Create and start a sub-process sharing the program's space.
		var regs kernel.Regs
		cm, e := a.Ctx().Send(kernel.KernelServerPID(job.LHID), vid.Message{
			Op:  kernel.KsCreateProcess,
			W:   [6]uint32{uint32(job.LHID), 1},
			Seg: kernel.EncodeCreateProc(workload.BodyKind, &regs),
		})
		if e != nil || !cm.OK() {
			err = fmt.Errorf("create sub-process: %v %v", cm, e)
			return
		}
		childPID := vid.PID(cm.W[0])
		if sm, e := a.Ctx().Send(kernel.KernelServerPID(job.LHID), vid.Message{
			Op: kernel.KsStartProcess, W: [6]uint32{uint32(childPID)},
		}); e != nil || !sm.OK() {
			err = fmt.Errorf("start sub-process: %v %v", sm, e)
			return
		}
		a.Sleep(2 * time.Second)
		// Snapshot progress just before migration (remote register read).
		for i, pid := range []vid.PID{job.PID, childPID} {
			regs, _, e := a.Inspect(pid)
			if e != nil {
				err = e
				return
			}
			progressBefore[i] = regs.W[kernel.RegUser+2] // tick counter
		}
		if _, e := a.Migrate(job, false); e != nil {
			err = e
			return
		}
		a.Sleep(2 * time.Second)
		_, lh := c.FindProgram(job.LHID)
		if lh == nil {
			err = fmt.Errorf("program vanished")
			return
		}
		procsAfter = len(lh.Procs())
		// The same Inspect calls work transparently on the new host.
		for i, pid := range []vid.PID{job.PID, childPID} {
			regs, _, e := a.Inspect(pid)
			if e != nil {
				err = e
				return
			}
			progressAfter[i] = regs.W[kernel.RegUser+2]
		}
	})
	c.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if procsAfter != 2 {
		t.Fatalf("processes after migration = %d, want 2", procsAfter)
	}
	for i := range progressBefore {
		if progressAfter[i] <= progressBefore[i] {
			t.Fatalf("process %d made no progress after migration: %d → %d",
				i, progressBefore[i], progressAfter[i])
		}
	}
}

// TestSuspendedProgramStopsAndResumes covers §2's transparent suspension:
// suspend stops progress wherever the program runs, resume continues it,
// and migrating a suspended program is refused.
func TestSuspendedProgramStopsAndResumes(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 18})
	var err error
	var atSuspend, during, after uint32
	c.Node(0).Agent(func(a *Agent) {
		job, e := a.Exec("tex", nil, "ws1")
		if e != nil {
			err = e
			return
		}
		a.Sleep(2 * time.Second)
		if e := a.Suspend(job); e != nil {
			err = e
			return
		}
		regs, _, _ := a.Inspect(job.PID) // read-only ops pass the freeze
		atSuspend = regs.W[kernel.RegUser+2]
		if _, e := a.Migrate(job, false); e == nil {
			err = fmt.Errorf("migrating a suspended program succeeded")
			return
		}
		a.Sleep(3 * time.Second)
		regs, _, _ = a.Inspect(job.PID)
		during = regs.W[kernel.RegUser+2]
		if e := a.Resume(job); e != nil {
			err = e
			return
		}
		a.Sleep(2 * time.Second)
		regs, _, _ = a.Inspect(job.PID)
		after = regs.W[kernel.RegUser+2]
	})
	c.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if during > atSuspend+1 {
		t.Fatalf("progress while suspended: %d → %d", atSuspend, during)
	}
	if after <= during {
		t.Fatalf("no progress after resume: %d → %d", during, after)
	}
}

// TestNameServiceResolution covers the §6 naming discipline: resident
// servers register with the global name service; agents resolve and cache
// bindings; programs get a name cache in their environment block that
// migrates with them.
func TestNameServiceResolution(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 19})
	var err error
	var resolved vid.PID
	var cached *image.EnvBlock
	c.Node(0).Agent(func(a *Agent) {
		a.Sleep(2 * time.Second) // registrars announce at boot
		resolved, err = a.Resolve("display.ws1")
		if err != nil {
			return
		}
		// Second resolution hits the agent's local cache: no extra query.
		before := c.FSHost.IPC.Stats().RxPackets
		if _, e := a.Resolve("display.ws1"); e != nil {
			err = e
			return
		}
		if c.FSHost.IPC.Stats().RxPackets != before {
			err = fmt.Errorf("cached resolve still queried the server")
			return
		}
		// A freshly created program's env block carries a name cache.
		job, e := a.Exec("tex", nil, "ws1")
		if e != nil {
			err = e
			return
		}
		_, lh := c.FindProgram(job.LHID)
		raw := lh.Spaces()[0].Page(0)
		cached, err = image.DecodeEnv(raw)
	})
	c.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if resolved != c.Node(1).Display.PID() {
		t.Fatalf("resolved %v, want ws1's display", resolved)
	}
	if cached == nil || cached.NameCache["fileserver"] != c.FS.PID() {
		t.Fatalf("program env cache = %+v", cached)
	}
	if got := c.NS.Bindings(); len(got) < 7 {
		t.Fatalf("name server has %d bindings, want ≥7", len(got))
	}
}

// TestMigrationTargetCrashRollsBack covers the §3.1.3 failure path: "If
// the copy operation fails due to lack of acknowledgement, we assume that
// the new host failed... The logical host is unfrozen to avoid timeouts...
// we simply give up." The target workstation crashes mid-migration; the
// migrate call fails, and the program continues unharmed on the source.
func TestMigrationTargetCrashRollsBack(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 23})
	// Keep ws0 busy with a local program so ws2 is the only candidate.
	c.Node(0).Agent(func(a *Agent) {
		a.Exec("tex", nil, "")
	})
	var migErr error
	var done bool
	var progressAfter [2]uint32
	c.Node(1).Agent(func(a *Agent) {
		a.Sleep(2 * time.Second)
		job, err := a.Exec("parser", nil, "") // local on ws1
		if err != nil {
			migErr = err
			done = true
			return
		}
		a.Sleep(2 * time.Second)
		// Crash the (only possible) target shortly after the migration
		// starts, mid pre-copy.
		c.Sim.After(600*time.Millisecond, func() { c.Node(2).Host.Crash() })
		_, migErr = a.Migrate(job, false)
		// The program must still be alive on ws1 and making progress.
		_, lh := c.FindProgram(job.LHID)
		if lh == nil || lh.Frozen() || lh.Host() != c.Node(1).Host {
			migErr = fmt.Errorf("program not running on source after failed migration")
			done = true
			return
		}
		regs, _, err := a.Inspect(job.PID)
		if err != nil {
			migErr = err
			done = true
			return
		}
		progressAfter[0] = regs.W[kernel.RegUser+2]
		a.Sleep(2 * time.Second)
		regs, _, err = a.Inspect(job.PID)
		if err != nil {
			migErr = err
			done = true
			return
		}
		progressAfter[1] = regs.W[kernel.RegUser+2]
		done = true
	})
	c.Run(3 * time.Minute)
	if !done {
		t.Fatal("scenario did not complete")
	}
	if migErr == nil {
		t.Fatal("migration to a crashed target reported success")
	}
	if !errors.Is(migErr, ErrMigrationFailed) && migErr.Error() != "v: refused" {
		t.Fatalf("unexpected error: %v", migErr)
	}
	if progressAfter[1] <= progressAfter[0] {
		t.Fatalf("program stalled after rollback: %d → %d", progressAfter[0], progressAfter[1])
	}
}
