// Package core implements the paper's contribution on top of the
// substrates: transparent remote execution (`prog args @ host`, `prog args
// @ *`), decentralized host selection through the program-manager group,
// and preemptable migration of logical hosts with pre-copying — plus the
// comparator policies used by the evaluation (stop-and-copy, the §3.2
// flush-to-file-server variant, and Demos/MP-style forwarding addresses).
package core

import (
	"fmt"
	"math/rand"
	"time"

	"vsystem/internal/display"
	"vsystem/internal/ethernet"
	"vsystem/internal/fault"
	"vsystem/internal/fileserver"
	"vsystem/internal/image"
	"vsystem/internal/kernel"
	"vsystem/internal/nameserver"
	"vsystem/internal/params"
	"vsystem/internal/progmgr"
	"vsystem/internal/rsm"
	"vsystem/internal/sched"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Options configures a simulated cluster.
type Options struct {
	// Workstations is the number of diskless workstations (the paper's
	// cluster had ~25). Default 4.
	Workstations int
	// Seed drives all randomness (loss, jitter). Default 1.
	Seed int64
	// LossRate is the per-frame Ethernet loss probability. Default 0.
	LossRate float64
	// Policy selects the migration policy for all program managers.
	// Default PolicyPrecopy.
	Policy Policy
	// Select is the host-selection policy used by every workstation's
	// scheduling selector (`@ *` execution and migration destinations).
	// Default sched.FirstResponse — the paper's baseline. Load-aware
	// policies additionally turn on the periodic load beacon.
	Select sched.Policy
	// ReplicateFS runs that many server machines, each carrying a
	// consensus-backed file-server and name-server replica, so the storage
	// and naming services survive any minority of server deaths. 0 or 1
	// keeps the single unreplicated server machine (the default).
	ReplicateFS int
	// ReplicateHome backs each workstation's home services (session
	// supervision) with a consensus group of that many program managers.
	// 0 or 1 keeps the single home PM (the default).
	ReplicateHome int
}

// Cluster is a simulated V installation: workstations plus a server
// machine running the network file server.
type Cluster struct {
	Sim   *sim.Engine
	Bus   *ethernet.Bus
	Nodes []*Node
	// FSHost is the dedicated server machine.
	FSHost *kernel.Host
	FS     *fileserver.Server
	// NS is the global name server (resident on the server machine).
	NS *nameserver.Server
	// FSHosts/FSReps/NSReps are the replicated server machines and the
	// file/name-server replicas riding them when Options.ReplicateFS ≥ 2
	// (FSHosts[0] == FSHost, FSReps[0] == FS, NSReps[0] == NS). The rsm
	// stores are the replicas' "disks" — they survive crash/restart.
	FSHosts  []*kernel.Host
	FSReps   []*fileserver.Server
	NSReps   []*nameserver.Server
	fsStores []*rsm.Store
	nsStores []*rsm.Store
	// homeStores are the home-group members' durable logs (workstation i
	// carries home replica i for i < len(homeStores)); non-empty exactly
	// when Options.ReplicateHome enabled the home PM group.
	homeStores []*rsm.Store
	// Trace is the cluster-wide event bus and metrics registry; every
	// layer (ethernet, ipc, kernel, migration) publishes into it.
	Trace *trace.Bus
	// Fault injects crashes, restarts, partitions, and loss/corruption
	// bursts into the cluster; it is never nil.
	Fault *fault.Injector

	policy Policy
	images []installedImage // install order preserved for FS restart
	agents int
	pagers map[vid.LHID]*PagerStats
}

type installedImage struct {
	name string
	data []byte
}

// Node is one workstation: kernel, program manager, display server.
type Node struct {
	Host    *kernel.Host
	PM      *progmgr.PM
	Display *display.Server
	// Selector runs host selection for this workstation: the configured
	// policy over the node's cached cluster-load view. It survives
	// crash/restart cycles (the cache is invalidated through fault
	// events, not destroyed).
	Selector *sched.Selector
	cluster  *Cluster
	pagerSeq uint16
}

// Name returns the workstation's host name.
func (n *Node) Name() string { return n.Host.Name }

// NewCluster boots a cluster.
func NewCluster(opt Options) *Cluster {
	if opt.Workstations == 0 {
		opt.Workstations = 4
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	eng := sim.NewEngine(opt.Seed)
	bus := ethernet.NewBus(eng)
	if opt.LossRate > 0 {
		bus.SetLoss(ethernet.RandomLoss(eng, opt.LossRate))
	}
	tb := trace.NewBus()
	bus.SetTraceBus(tb)
	c := &Cluster{Sim: eng, Bus: bus, Trace: tb, policy: opt.Policy}
	c.Fault = fault.New(eng, bus, tb)
	tb.RegisterSource("net", func() []trace.Metric {
		bs := bus.Stats()
		return []trace.Metric{
			{Name: "frames", Value: float64(bs.Frames)},
			{Name: "bytes", Value: float64(bs.Bytes)},
			{Name: "dropped", Value: float64(bs.Dropped)},
			{Name: "broadcasts", Value: float64(bs.Broadcasts)},
			{Name: "busy_ms", Value: bs.BusyTime.Seconds() * 1000},
		}
	})
	selPolicy := opt.Select
	if selPolicy == nil {
		selPolicy = sched.FirstResponse{}
	}
	// Load dissemination: every kernel stamps its replies with a load
	// advertisement (piggybacking costs no extra frames); the broadcast
	// beacon runs only for load-aware policies, so the paper-baseline
	// first-response configuration puts nothing extra on the wire.
	beacon := time.Duration(0)
	if selPolicy.LoadAware() {
		beacon = params.LoadBeaconInterval
	}
	// Size the binding caches to the cluster: every host may hold a live
	// reply-path binding per peer (boot registration, select-reply bursts),
	// and the file server always does. Left at the params default, a
	// >64-host cluster livelocks at boot — evicted reply bindings turn into
	// locate broadcasts faster than the retransmitting herd lets them
	// resolve.
	bindCap := 2*opt.Workstations + 8
	// Multicast select replies are dallied on large clusters: hundreds of
	// hosts finishing the probe evaluation at the same instant would
	// otherwise transmit simultaneously and jam the segment (reply
	// implosion). Small clusters keep the paper's exact timings.
	var dally time.Duration
	// Reply thinning rides the same gate: multicast queries on a large
	// cluster carry a permille sized so ~SelectReplyTarget hosts answer
	// (and only those pay the probe evaluation); small clusters keep
	// every-willing-host-answers semantics.
	var replyPermille uint32
	if opt.Workstations >= params.SelectDallyMinHosts {
		dally = time.Duration(opt.Workstations) * params.SelectDallyPerHost
		if dally > params.SelectDallyMax {
			dally = params.SelectDallyMax
		}
		replyPermille = uint32(1000 * params.SelectReplyTarget / opt.Workstations)
		if replyPermille > 1000 {
			replyPermille = 1000
		}
		if replyPermille == 0 {
			replyPermille = 1
		}
	}
	for i := 0; i < opt.Workstations; i++ {
		h := kernel.NewHost(eng, bus, i, fmt.Sprintf("ws%d", i))
		h.IPC.SetBindingCacheCap(bindCap)
		h.AttachTrace(tb)
		registerHostMetrics(tb, h)
		n := &Node{Host: h, cluster: c}
		n.PM = progmgr.Start(h)
		n.PM.SelectDally = dally
		cache := sched.NewCache(eng.Now)
		n.Selector = sched.NewSelector(selPolicy, cache,
			vid.GroupProgramManagers, progmgr.PmSelectHost,
			uint16(h.NIC.MAC()), tb,
			rand.New(rand.NewSource(opt.Seed+int64(i+1)*7919)))
		n.Selector.ReplyPermille = replyPermille
		h.IPC.SetLoadSink(cache.Observe)
		h.EnableLoadAds(beacon)
		tb.RegisterSource("sched/"+h.Name, n.Selector.Metrics)
		n.PM.Migrator = &Migrator{Policy: opt.Policy, Cluster: c, FaultHook: c.Fault.OnPhase, Selector: n.Selector}
		n.PM.Selector = n.Selector
		registerSupMetrics(tb, n)
		n.Display = display.Start(h)
		c.Nodes = append(c.Nodes, n)
		c.Fault.RegisterHost(h.NIC.MAC(), h.Crash, n.Restart)
	}
	// Selection caches and session supervisors react to injected faults
	// and detector verdicts: a crash drops (and negatively caches) the
	// dead host's entries everywhere and breaks every session it hosted;
	// a suspicion does the same, but only on the host whose detector
	// formed it — suspicion is local evidence, not cluster-wide truth;
	// partitions and heals flush every cache — any cached view may be
	// stale on either side of the cut. Subscribers only flip state, never
	// send: recovery runs on the pm-lease workers.
	tb.Subscribe(func(ev trace.Event) {
		switch ev.Kind {
		case trace.EvHostCrash:
			for _, n := range c.Nodes {
				n.Selector.Cache.DropHost(ev.Host)
				n.PM.NoteHostDown(ev.Host)
			}
		case trace.EvHostSuspect:
			for _, n := range c.Nodes {
				if uint16(n.Host.NIC.MAC()) == ev.Host {
					n.Selector.Cache.DropHost(ev.Peer)
					n.PM.NoteHostSuspect(ev.Peer)
				}
			}
		case trace.EvPartition, trace.EvHeal:
			for _, n := range c.Nodes {
				n.Selector.Cache.Flush()
			}
		}
	})
	// Home PM group: the first ReplicateHome workstations' program managers
	// form a consensus group replicating the session-supervision registry,
	// so losing the member that happens to lead supervision does not lose
	// the user's sessions.
	nhome := opt.ReplicateHome
	if nhome > opt.Workstations {
		nhome = opt.Workstations
	}
	if nhome >= 2 {
		for i := 0; i < nhome; i++ {
			c.homeStores = append(c.homeStores, rsm.NewStore())
			c.Nodes[i].PM.EnableHomeGroup(i, nhome, c.homeStores[i])
		}
	}
	// Server machines: one unreplicated host by default, or ReplicateFS
	// consensus-backed replicas, each carrying a file-server and a
	// name-server replica over shared durable stores.
	nfs := opt.ReplicateFS
	if nfs < 2 {
		nfs = 1
	}
	for j := 0; j < nfs; j++ {
		name := "fserv"
		if nfs > 1 {
			name = fmt.Sprintf("fserv%d", j)
		}
		h := kernel.NewHost(eng, bus, opt.Workstations+j, name)
		h.IPC.SetBindingCacheCap(bindCap)
		h.AttachTrace(tb)
		h.EnableLoadAds(0)
		registerHostMetrics(tb, h)
		c.FSHosts = append(c.FSHosts, h)
		var fs *fileserver.Server
		var ns *nameserver.Server
		if nfs > 1 {
			c.fsStores = append(c.fsStores, rsm.NewStore())
			c.nsStores = append(c.nsStores, rsm.NewStore())
			fs = fileserver.StartReplica(h, j, nfs, c.fsStores[j])
			ns = nameserver.StartReplica(h, j, nfs, c.nsStores[j])
		} else {
			fs = fileserver.Start(h)
			ns = nameserver.Start(h)
		}
		c.FSReps = append(c.FSReps, fs)
		c.NSReps = append(c.NSReps, ns)
		j := j
		c.Fault.RegisterHost(h.NIC.MAC(), h.Crash, func() { c.restartFSReplica(j) })
	}
	c.FSHost, c.FS, c.NS = c.FSHosts[0], c.FSReps[0], c.NSReps[0]
	// Resident servers announce themselves to the global name service. The
	// replicated service registers its group id — a pinned replica PID
	// would die with that replica.
	nameserver.RegisterSelf(c.FSHost, "fileserver", c.fsRegistryPID())
	// Stagger the workstations' boot registrations the way their load
	// beacons already are: launched simultaneously, a big cluster's
	// registration herd retransmits against the name server faster than
	// its host can even classify the duplicates.
	for i, n := range c.Nodes {
		d := time.Duration(i) * 10 * time.Millisecond
		nameserver.RegisterSelfAt(n.Host, "display."+n.Name(), n.Display.PID(), d)
		nameserver.RegisterSelfAt(n.Host, "progmgr."+n.Name(), n.PM.PID(), d)
	}
	return c
}

// registerHostMetrics exposes one host's counters through the trace bus's
// metrics registry. Every metric function takes fresh Stats() snapshots —
// never references into live counters.
func registerHostMetrics(tb *trace.Bus, h *kernel.Host) {
	tb.RegisterSource("host/"+h.Name, func() []trace.Metric {
		st := h.IPC.Stats()
		freezes, frozen := h.FreezeStats()
		return []trace.Metric{
			{Name: "tx_packets", Value: float64(st.TxPackets)},
			{Name: "rx_packets", Value: float64(st.RxPackets)},
			{Name: "rx_corrupt", Value: float64(st.RxCorrupt)},
			{Name: "retransmits", Value: float64(st.Retransmits)},
			{Name: "locates", Value: float64(st.Locates)},
			{Name: "reply_pendings", Value: float64(st.ReplyPendings)},
			{Name: "local_deliveries", Value: float64(st.LocalDeliveries)},
			{Name: "freezes", Value: float64(freezes)},
			{Name: "frozen_ms", Value: frozen.Seconds() * 1000},
			{Name: "cpu_util", Value: h.CPU.Utilization()},
		}
	})
}

// registerSupMetrics exposes a node's session-supervision counters. It
// closes over the node, not the manager — the manager is replaced on
// restart.
func registerSupMetrics(tb *trace.Bus, n *Node) {
	tb.RegisterSource("sup/"+n.Name(), func() []trace.Metric {
		st := n.PM.SupStats()
		return []trace.Metric{
			{Name: "lease_renews", Value: float64(st.LeaseRenews)},
			{Name: "lease_expires", Value: float64(st.LeaseExpires)},
			{Name: "exec_restarts", Value: float64(st.ExecRestarts)},
		}
	})
}

// Install stores a program image on every file-server replica (and
// remembers it so a restarted server can be restocked). Boot images are
// poked directly rather than committed through the log: they are the
// immutable stock a real server reloads from disk, identical on every
// replica by construction.
func (c *Cluster) Install(img *image.Image) {
	data := img.Encode()
	c.images = append(c.images, installedImage{name: img.Name, data: data})
	for _, fs := range c.FSReps {
		fs.Put(img.Name, data)
	}
}

// fsRegistryPID is the PID registered under "fileserver": the group id
// when the service is replicated (a pinned replica PID would die with
// that replica), the single server's PID otherwise.
func (c *Cluster) fsRegistryPID() vid.PID {
	if len(c.FSReps) > 1 {
		return vid.GroupFileServers
	}
	return c.FS.PID()
}

// fsTarget resolves the file-server write target: the single server when
// unreplicated, the current leader as known by a live replica when one is
// known, else the file-server group (the leader answers, followers stay
// silent).
func (c *Cluster) fsTarget() vid.PID {
	if len(c.FSReps) <= 1 {
		return c.FS.PID()
	}
	for i, fs := range c.FSReps {
		if c.FSHosts[i].Crashed() {
			continue
		}
		want := fs.LeaderSvc()
		if want == vid.Nil {
			continue
		}
		// Only trust a hint that names a replica incarnation still alive —
		// a crashed or superseded leader PID would cost the client a failed
		// send before its group retry.
		for k, r := range c.FSReps {
			if !c.FSHosts[k].Crashed() && r.PID() == want {
				return want
			}
		}
	}
	return vid.GroupFileServers
}

// Restart reboots a crashed workstation: the kernel comes back with a
// fresh system logical host, then the resident servers (program manager,
// display) are restarted and re-announce themselves to the name service.
// Programs that were running before the crash are gone — the paper's V
// made no attempt to survive a host loss beyond migration (§3.1.3).
func (n *Node) Restart() {
	if !n.Host.Crashed() {
		return
	}
	c := n.cluster
	n.Host.Restart()
	n.PM = progmgr.Start(n.Host)
	n.PM.Migrator = &Migrator{Policy: c.policy, Cluster: c, FaultHook: c.Fault.OnPhase, Selector: n.Selector}
	n.PM.Selector = n.Selector
	// A home-group member rejoins the group over its surviving durable log
	// and catches up from the current leader (log replay or snapshot).
	if i := n.index(); i >= 0 && i < len(c.homeStores) {
		n.PM.EnableHomeGroup(i, len(c.homeStores), c.homeStores[i])
	}
	n.Display = display.Start(n.Host)
	nameserver.RegisterSelf(n.Host, "display."+n.Name(), n.Display.PID())
	nameserver.RegisterSelf(n.Host, "progmgr."+n.Name(), n.PM.PID())
}

// restartFSReplica reboots server machine j: its file-server and
// name-server replicas come back over the durable stores that survived
// the crash, restocked with every installed image (a real V file server
// would reload from disk); runtime mutations replay from the consensus
// log or arrive by snapshot once the replica rejoins.
func (c *Cluster) restartFSReplica(j int) {
	h := c.FSHosts[j]
	if !h.Crashed() {
		return
	}
	h.Restart()
	if len(c.FSHosts) > 1 {
		c.FSReps[j] = fileserver.StartReplica(h, j, len(c.FSHosts), c.fsStores[j])
		c.NSReps[j] = nameserver.StartReplica(h, j, len(c.FSHosts), c.nsStores[j])
	} else {
		c.FSReps[j] = fileserver.Start(h)
		c.NSReps[j] = nameserver.Start(h)
	}
	for _, img := range c.images {
		c.FSReps[j].Put(img.name, img.data)
	}
	if j == 0 {
		c.FS, c.NS = c.FSReps[0], c.NSReps[0]
	}
	nameserver.RegisterSelf(h, "fileserver", c.fsRegistryPID())
}

// homeEnabled reports whether the cluster runs a replicated home PM group.
func (c *Cluster) homeEnabled() bool { return len(c.homeStores) > 0 }

// index returns the node's position in the cluster (-1 if foreign).
func (n *Node) index() int {
	for i, nn := range n.cluster.Nodes {
		if nn == n {
			return i
		}
	}
	return -1
}

// HomeLeaderIdx returns the workstation index currently leading the home
// PM group (-1 when no fenced leader exists or the group is disabled).
func (c *Cluster) HomeLeaderIdx() int {
	for i := 0; i < len(c.homeStores) && i < len(c.Nodes); i++ {
		n := c.Nodes[i]
		if !n.Host.Crashed() && n.PM.HomeReplica() != nil && n.PM.HomeReplica().IsLeader() {
			return i
		}
	}
	return -1
}

// Run advances the cluster by d of virtual time.
func (c *Cluster) Run(d time.Duration) { c.Sim.RunFor(d) }

// Node returns the workstation with the given index.
func (c *Cluster) Node(i int) *Node { return c.Nodes[i] }

// NodeByLH maps a system logical-host id back to its node (nil if it is
// not a workstation's system LH).
func (c *Cluster) NodeByLH(lh vid.LHID) *Node {
	for _, n := range c.Nodes {
		if n.Host.SystemLH().ID() == lh {
			return n
		}
	}
	return nil
}

// FindProgram locates a program's logical host anywhere in the cluster
// (experiments/tools; not a simulated operation).
func (c *Cluster) FindProgram(lhid vid.LHID) (*Node, *kernel.LogicalHost) {
	for _, n := range c.Nodes {
		if lh, ok := n.Host.LookupLH(lhid); ok {
			return n, lh
		}
	}
	return nil, nil
}

// Agent spawns a user agent — the command-interpreter stand-in — on the
// node, running fn. The returned process finishes when fn returns.
func (n *Node) Agent(fn func(a *Agent)) *kernel.Process {
	n.cluster.agents++
	name := fmt.Sprintf("agent%d", n.cluster.agents)
	return n.Host.SpawnServer(name, 16*1024, func(ctx *kernel.ProcCtx) {
		fn(&Agent{node: n, ctx: ctx})
	})
}

// Agent is the user's command interpreter: it executes programs locally or
// remotely, waits for them, and preempts them — the client side of §2 and
// §3. All methods block within the simulation and must only be called from
// the agent's own function.
type Agent struct {
	node  *Node
	ctx   *kernel.ProcCtx
	names map[string]vid.PID // local name cache (§6)
}

// Resolve maps a symbolic name to a PID, consulting the agent's cache
// first and the global name-server group on a miss.
func (a *Agent) Resolve(name string) (vid.PID, error) {
	if pid, ok := a.names[name]; ok {
		return pid, nil
	}
	pid, err := nameserver.Lookup(a.ctx, name)
	if err != nil {
		return vid.Nil, err
	}
	if a.names == nil {
		a.names = make(map[string]vid.PID)
	}
	a.names[name] = pid
	return pid, nil
}

// Node returns the agent's home workstation.
func (a *Agent) Node() *Node { return a.node }

// Ctx exposes the underlying process context for advanced scenarios.
func (a *Agent) Ctx() *kernel.ProcCtx { return a.ctx }

// Println writes a line to the home workstation's display.
func (a *Agent) Println(s string) {
	a.ctx.Send(a.node.Display.PID(), vid.Message{Op: display.OpWriteLine, Seg: []byte(s)})
}

// Sleep suspends the agent.
func (a *Agent) Sleep(d time.Duration) { a.ctx.Sleep(d) }

// Now returns the virtual time.
func (a *Agent) Now() sim.Time { return a.ctx.Now() }

// Stats is a cluster-wide metrics snapshot (operator tooling).
type Stats struct {
	VirtualTime  sim.Time
	Frames       int64
	FramesLost   int64
	BusBusy      time.Duration
	Hosts        []HostStats
	ServerFrames int64 // file-server machine traffic
}

// HostStats describes one workstation.
type HostStats struct {
	Name        string
	Utilization float64
	Idle        bool
	Crashed     bool
	MemFreeKB   uint32
	Guests      int
	Locals      int
	TxPackets   int64
	RxPackets   int64
	Retransmits int64
	Locates     int64
	Freezes     int64
	FrozenTime  time.Duration
	TxFrames    int64
	RxFrames    int64
}

// Snapshot collects cluster-wide metrics.
func (c *Cluster) Snapshot() Stats {
	bs := c.Bus.Stats()
	st := Stats{
		VirtualTime: c.Sim.Now(),
		Frames:      bs.Frames,
		FramesLost:  bs.Dropped,
		BusBusy:     bs.BusyTime,
	}
	for _, n := range c.Nodes {
		ipcStats := n.Host.IPC.Stats()
		freezes, frozen := n.Host.FreezeStats()
		hs := HostStats{
			Name:        n.Name(),
			Utilization: n.Host.CPU.Utilization(),
			Idle:        n.Host.CPU.Idle(),
			Crashed:     n.Host.Crashed(),
			MemFreeKB:   n.Host.MemFree() / 1024,
			TxPackets:   ipcStats.TxPackets,
			RxPackets:   ipcStats.RxPackets,
			Retransmits: ipcStats.Retransmits,
			Locates:     ipcStats.Locates,
			Freezes:     freezes,
			FrozenTime:  frozen,
		}
		hs.TxFrames, hs.RxFrames = n.Host.NIC.Counters()
		for _, lh := range n.Host.LHs() {
			if lh.System() {
				continue
			}
			if lh.Guest() {
				hs.Guests++
			} else {
				hs.Locals++
			}
		}
		st.Hosts = append(st.Hosts, hs)
	}
	tx, rx := c.FSHost.NIC.Counters()
	st.ServerFrames = tx + rx
	return st
}
