package core

import (
	"fmt"

	"vsystem/internal/fileserver"
	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/progmgr"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// PagerStats counts demand-paging activity for a flush-migrated program
// (§3.2). Pages that were dirty on the original host and then referenced
// on the new host cross the network twice — the variant's stated cost.
type PagerStats struct {
	Faults  int
	FaultKB float64
}

// flushOut is the source side of the §3.2 variant: instead of copying the
// address spaces to the new host, modified pages are flushed to the
// network file server (iteratively, like pre-copy), the logical host is
// frozen, and the residue flushed. The new host faults pages in from the
// file server on demand.
func (mg *Migrator) flushOut(ctx *kernel.ProcCtx, pm *progmgr.PM, lh *kernel.LogicalHost,
	win *ipc.Window, rep *MigrationReport) error {

	fs := mg.fileServerPID()
	prefix := fmt.Sprintf("pg/%04x", uint16(lh.ID()))

	var pending []spacePages
	for _, as := range lh.Spaces() {
		as.ClearDirty()
		pending = append(pending, spacePages{as, as.AllPages()})
	}
	for round := 0; ; round++ {
		roundStart := ctx.Now()
		if err := mg.flushPages(ctx, fs, prefix, win, pending, rep); err != nil {
			return err
		}
		dur := ctx.Now().Sub(roundStart)
		rep.Rounds = append(rep.Rounds, RoundStat{
			Pages: pageCount(pending), KB: kbOf(pending), Dur: dur,
			CopyRateKBps: rateKBps(kbOf(pending), dur),
		})
		mg.span(trace.Span{
			LH: lh.ID(), Phase: trace.PhasePrecopy, Round: round,
			KB: kbOf(pending), Start: roundStart, End: ctx.Now(),
		})
		var dirty []spacePages
		for _, as := range lh.Spaces() {
			dirty = append(dirty, spacePages{as, as.SnapshotDirty()})
		}
		dirtyKB := kbOf(dirty)
		if dirtyKB <= params.PrecopyStopKB ||
			round+1 >= params.PrecopyMaxRounds ||
			dirtyKB > kbOf(pending)*params.PrecopyMinShrink {
			pm.Host().Freeze(lh)
			mg.freezeStart = ctx.Now()
			rep.ResidualKB = dirtyKB
			if err := mg.flushPages(ctx, fs, prefix, win, dirty, rep); err != nil {
				return err
			}
			mg.span(trace.Span{
				LH: lh.ID(), Phase: trace.PhaseResidue, KB: dirtyKB,
				Start: mg.freezeStart, End: ctx.Now(),
			})
			return nil
		}
		pending = dirty
	}
}

// flushPages writes pages to the file server's paging store in page-run
// batches (V moved up to 32 KB as a unit, §3.1; a paging server would
// batch writes the same way), pipelined through the same bulk-transfer
// window as the direct copy paths.
func (mg *Migrator) flushPages(ctx *kernel.ProcCtx, fs vid.PID, prefix string,
	win *ipc.Window, sp []spacePages, rep *MigrationReport) error {

	if mg.scratch == nil {
		mg.scratch = make([][]byte, kernel.MaxRunPages)
	}
	for _, s := range sp {
		for off := 0; off < len(s.pages); off += kernel.MaxRunPages {
			end := off + kernel.MaxRunPages
			if end > len(s.pages) {
				end = len(s.pages)
			}
			batch := s.pages[off:end]
			data := mg.scratch[:len(batch)]
			for i, pn := range batch {
				data[i] = s.as.PageView(pn)
			}
			seg := append([]byte(prefix), 0)
			seg = append(seg, kernel.EncodePageRun(s.as.ID, batch, data)...)
			if err := win.Send(ctx.Task(), fs, vid.Message{Op: fileserver.OpPageOutRun, Seg: seg}); err != nil {
				return ErrMigrationFailed
			}
			rep.BytesCopied += int64(len(batch)) * mem.PageSize
			rep.WireBytes += int64(len(seg))
		}
	}
	if err := win.Drain(ctx.Task()); err != nil {
		return ErrMigrationFailed
	}
	return nil
}

func pageKey(prefix string, space uint32, pn mem.PageNo) string {
	return fmt.Sprintf("%s/%d/%d", prefix, space, pn)
}

// fileServerPID resolves the cluster's file server (in V this binding
// comes from the program's name cache; the simulation resolves it through
// the cluster facade).
func (mg *Migrator) fileServerPID() vid.PID { return mg.Cluster.FS.PID() }

// installPager configures demand paging on the new copy's (empty) address
// spaces: the first access to a missing page pulls it from the file
// server, blocking the faulting process for the fetch. Installed between
// the identity change and the unfreeze.
func (mg *Migrator) installPager(lhid vid.LHID, destSys vid.LHID) {
	node := mg.Cluster.NodeByLH(destSys)
	if node == nil {
		return
	}
	lh, ok := node.Host.LookupLH(lhid)
	if !ok {
		return
	}
	fs := mg.fileServerPID()
	prefix := fmt.Sprintf("pg/%04x", uint16(lhid))
	stats := &PagerStats{}
	mg.Cluster.registerPager(lhid, stats)
	for _, as := range lh.Spaces() {
		as := as
		as.SetFault(func(pn mem.PageNo) []byte {
			t := node.Host.Eng.Current()
			if t == nil {
				return nil // non-task access (diagnostics): treat as zero
			}
			port := node.Host.IPC.NewPort(node.pagerPID())
			defer port.Close()
			m, err := port.Send(t, fs, vid.Message{
				Op:  fileserver.OpPageIn,
				Seg: []byte(pageKey(prefix, as.ID, pn)),
			})
			stats.Faults++
			stats.FaultKB += float64(mem.PageSize) / 1024
			if err != nil || !m.OK() {
				return nil // never flushed: a zero (hole) page
			}
			return m.Seg
		})
	}
}

// pagerPID allocates a unique port id for one page-fault transaction.
func (n *Node) pagerPID() vid.PID {
	n.pagerSeq++
	return vid.NewPID(n.Host.SystemLH().ID(), 0xF000+n.pagerSeq%0x0FF0)
}

// registerPager records a pager's stats for the experiment harness.
func (c *Cluster) registerPager(lhid vid.LHID, st *PagerStats) {
	if c.pagers == nil {
		c.pagers = make(map[vid.LHID]*PagerStats)
	}
	c.pagers[lhid] = st
}

// PagerStatsFor returns demand-paging stats for a flush-migrated program.
func (c *Cluster) PagerStatsFor(lhid vid.LHID) *PagerStats { return c.pagers[lhid] }
