package core

import (
	"fmt"
	"time"

	"vsystem/internal/fileserver"
	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/progmgr"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// PagerStats counts demand-paging activity for a flush-migrated program
// (§3.2) or a post-copy destination. Pages that were dirty on the
// original host and then referenced on the new host cross the network
// twice — the flush variant's stated cost; post-copy's cost is the stall
// a faulting process pays while its page crosses once. Every fault
// counted here publishes one trace.EvRemoteFault; tests hold the two to
// parity.
type PagerStats struct {
	Faults  int
	FaultKB float64

	// Post-copy residue accounting.
	StallTime time.Duration // total time faulting processes were parked
	PullKB    float64       // KB the destination pulled (demand + background)
	PushKB    float64       // KB the source push-out delivered
	Aborted   bool          // the residue was lost; the guest was destroyed
	AbortErr  error         // typed *PhaseError (trace.PhasePostSwapPull) when Aborted
}

// flushOut is the source side of the §3.2 variant: instead of copying the
// address spaces to the new host, modified pages are flushed to the
// network file server (iteratively, like pre-copy), the logical host is
// frozen, and the residue flushed. The new host faults pages in from the
// file server on demand.
func (mg *Migrator) flushOut(ctx *kernel.ProcCtx, pm *progmgr.PM, lh *kernel.LogicalHost,
	win *ipc.Window, rep *MigrationReport) error {

	prefix := fmt.Sprintf("pg/%04x", uint16(lh.ID()))

	var pending []spacePages
	for _, as := range lh.Spaces() {
		as.ClearDirty()
		pending = append(pending, spacePages{as, as.AllPages()})
	}
	for round := 0; ; round++ {
		roundStart := ctx.Now()
		if err := mg.flushPages(ctx, prefix, win, pending, rep); err != nil {
			return err
		}
		dur := ctx.Now().Sub(roundStart)
		rep.Rounds = append(rep.Rounds, RoundStat{
			Pages: pageCount(pending), KB: kbOf(pending), Dur: dur,
			CopyRateKBps: rateKBps(kbOf(pending), dur),
		})
		mg.span(trace.Span{
			LH: lh.ID(), Phase: trace.PhasePrecopy, Round: round,
			KB: kbOf(pending), Start: roundStart, End: ctx.Now(),
		})
		var dirty []spacePages
		for _, as := range lh.Spaces() {
			dirty = append(dirty, spacePages{as, as.SnapshotDirty()})
		}
		dirtyKB := kbOf(dirty)
		if dirtyKB <= params.PrecopyStopKB ||
			round+1 >= params.PrecopyMaxRounds ||
			dirtyKB > kbOf(pending)*params.PrecopyMinShrink {
			pm.Host().Freeze(lh)
			mg.freezeStart = ctx.Now()
			rep.ResidualKB = dirtyKB
			if err := mg.flushPages(ctx, prefix, win, dirty, rep); err != nil {
				return err
			}
			mg.span(trace.Span{
				LH: lh.ID(), Phase: trace.PhaseResidue, KB: dirtyKB,
				Start: mg.freezeStart, End: ctx.Now(),
			})
			return nil
		}
		pending = dirty
	}
}

// flushPages writes pages to the file server's paging store in page-run
// batches (V moved up to 32 KB as a unit, §3.1; a paging server would
// batch writes the same way), pipelined through the same bulk-transfer
// window as the direct copy paths. The write target is re-resolved per
// call so a flush round started before a file-server failover still
// reaches the new leader.
func (mg *Migrator) flushPages(ctx *kernel.ProcCtx, prefix string,
	win *ipc.Window, sp []spacePages, rep *MigrationReport) error {

	fs := mg.fileServerPID()
	if mg.scratch == nil {
		mg.scratch = make([][]byte, kernel.MaxRunPages)
	}
	for _, s := range sp {
		for off := 0; off < len(s.pages); off += kernel.MaxRunPages {
			end := off + kernel.MaxRunPages
			if end > len(s.pages) {
				end = len(s.pages)
			}
			batch := s.pages[off:end]
			data := mg.scratch[:len(batch)]
			for i, pn := range batch {
				data[i] = s.as.PageView(pn)
			}
			seg := append([]byte(prefix), 0)
			seg = append(seg, kernel.EncodePageRun(s.as.ID, batch, data)...)
			out := vid.Message{
				Op: fileserver.OpPageOutRun, W: [6]uint32{0, 0, 0, 0, 0, fsW5(fs)}, Seg: seg,
			}
			if err := win.Send(ctx.Task(), fs, out); err != nil {
				return ErrMigrationFailed
			}
			rep.BytesCopied += int64(len(batch)) * mem.PageSize
			rep.WireBytes += int64(len(seg))
		}
	}
	if err := win.Drain(ctx.Task()); err != nil {
		return ErrMigrationFailed
	}
	return nil
}

func pageKey(prefix string, space uint32, pn mem.PageNo) string {
	return fmt.Sprintf("%s/%d/%d", prefix, space, pn)
}

// fileServerPID resolves the cluster's file server (in V this binding
// comes from the program's name cache; the simulation resolves it through
// the cluster facade). With a replicated file service it names the current
// write leader when one is known, else the file-server group.
func (mg *Migrator) fileServerPID() vid.PID { return mg.Cluster.fsTarget() }

// fsW5 marks a request unicast-addressed (fileserver.FsUnicast) so a
// replica that lost authority answers CodeNotLeader promptly instead of
// leaving the sender to ride out a full send abort in silence.
func fsW5(dst vid.PID) uint32 {
	if dst.IsGroup() {
		return 0
	}
	return fileserver.FsUnicast
}

// installPager configures demand paging on the new copy's (empty) address
// spaces: the first access to a missing page pulls it from the file
// server, blocking the faulting process for the fetch. Installed between
// the identity change and the unfreeze.
func (mg *Migrator) installPager(lhid vid.LHID, destSys vid.LHID) {
	node := mg.Cluster.NodeByLH(destSys)
	if node == nil {
		return
	}
	lh, ok := node.Host.LookupLH(lhid)
	if !ok {
		return
	}
	prefix := fmt.Sprintf("pg/%04x", uint16(lhid))
	stats := &PagerStats{}
	mg.Cluster.registerPager(lhid, stats)
	for _, as := range lh.Spaces() {
		as := as
		as.SetFault(func(pn mem.PageNo) []byte {
			t := node.Host.Eng.Current()
			if t == nil {
				return nil // non-task access (diagnostics): treat as zero
			}
			start := node.Host.Eng.Now()
			stats.Faults++
			stats.FaultKB += float64(mem.PageSize) / 1024
			mg.publishRemoteFault(node, lhid, pn, start)
			port := node.Host.IPC.NewPort(node.pagerPID())
			defer port.Close()
			// Resolve the serving replica per fault — the leader at install
			// time may be dead by the time this page is referenced.
			dst := mg.fileServerPID()
			pageIn := vid.Message{
				Op: fileserver.OpPageIn, W: [6]uint32{0, 0, 0, 0, 0, fsW5(dst)},
				Seg: []byte(pageKey(prefix, as.ID, pn)),
			}
			m, err := port.Send(t, dst, pageIn)
			if (err != nil || (!m.OK() && m.Code != vid.CodeNotFound)) && !dst.IsGroup() {
				// Pinned leader gone: one bounded retry through the group.
				// (Not-found is a definitive answer — a hole page — and is
				// not retried.)
				pageIn.W[5] = 0
				m, err = port.Send(t, vid.GroupFileServers, pageIn)
			}
			stats.StallTime += node.Host.Eng.Now().Sub(start)
			if err != nil || !m.OK() {
				return nil // never flushed: a zero (hole) page
			}
			return m.Seg
		})
	}
}

// publishRemoteFault emits the EvRemoteFault event every counted demand
// fault must pair with (stats/trace parity).
func (mg *Migrator) publishRemoteFault(node *Node, lhid vid.LHID, pn mem.PageNo, at sim.Time) {
	var bus *trace.Bus
	if mg.Cluster != nil {
		bus = mg.Cluster.Trace
	}
	bus.Publish(trace.Event{
		At: at, Host: uint16(node.Host.NIC.MAC()),
		Kind: trace.EvRemoteFault, LH: lhid, Size: int(pn),
	})
}

// installRemotePager configures the post-copy remote-fault path on the
// migrated copy: a faulting reference parks the process and pulls a
// FetchRunPages page run from the source receptacle (the faulted page
// plus read-ahead over still-absent neighbors). When the receptacle
// cannot serve — the source crashed mid-residue — the path falls back to
// the file server's flush image for the page, and failing that aborts
// the guest cleanly rather than let it run on memory holes. Installed
// between the identity swap and the unfreeze.
func (mg *Migrator) installRemotePager(rs *residueState) {
	node := rs.node
	for _, as := range rs.destLH.Spaces() {
		as := as
		as.SetFault(func(pn mem.PageNo) []byte {
			t := node.Host.Eng.Current()
			if t == nil {
				return nil // non-task access (diagnostics): treat as zero
			}
			start := node.Host.Eng.Now()
			rs.stats.Faults++
			rs.stats.FaultKB += float64(mem.PageSize) / 1024
			mg.publishRemoteFault(node, rs.destLH.ID(), pn, start)
			data := rs.demandFetch(t, as, pn)
			rs.stats.StallTime += node.Host.Eng.Now().Sub(start)
			return data
		})
	}
}

// demandFetch resolves one demand fault against the source receptacle,
// with the file server and the racing push-out as fallbacks.
func (rs *residueState) demandFetch(t *sim.Task, as *mem.AddressSpace, pn mem.PageNo) []byte {
	// The faulted page plus read-ahead over still-absent neighbors, one
	// fetch-request's worth.
	pages := []mem.PageNo{pn}
	limit := mem.PageNo(as.Size() / mem.PageSize)
	for p := pn + 1; p < limit && len(pages) < params.FetchRunPages; p++ {
		if !as.Present(p) {
			pages = append(pages, p)
		}
	}
	port := rs.node.Host.IPC.NewPort(rs.node.pagerPID())
	defer port.Close()
	m, err := port.Send(t, rs.srcKS, vid.Message{
		Op:  kernel.KsFetchPage,
		W:   [6]uint32{uint32(rs.id)},
		Seg: kernel.EncodeFetchReq(as.ID, pages),
	})
	if err == nil && m.OK() {
		if spaceID, rp, rd, derr := kernel.DecodePageRun(m.Seg); derr == nil && spaceID == as.ID {
			var out []byte
			for i, p := range rp {
				if p == pn {
					out = rd[i] // the faulting getPage installs it
					continue
				}
				if installed, _ := as.InstallPageIfAbsent(p, rd[i]); installed {
					rs.stats.PullKB += float64(mem.PageSize) / 1024
				}
			}
			if out != nil {
				rs.stats.PullKB += float64(mem.PageSize) / 1024
				return out
			}
		}
	}
	// The receptacle could not serve. The racing push-out may have
	// delivered the page meanwhile — the faulting getPage re-checks
	// presence after this handler returns, so a nil here is safe when the
	// page is present.
	if as.Present(pn) {
		return nil
	}
	// Fall back to the file server's flush image (populated if this
	// logical host was ever flush-migrated under the same key prefix).
	if b := rs.fetchFromFS(t, as, pn); b != nil {
		return b
	}
	// Nothing can complete this guest's memory: abort cleanly.
	rs.abortGuest(t, sendErr(err, m))
	return nil
}

// fetchFromFS tries the file server's paging store for one page. The
// flush-image fallback is exactly the path that must survive a file-server
// crash: a dead pinned leader gets one bounded retry through the group.
func (rs *residueState) fetchFromFS(t *sim.Task, as *mem.AddressSpace, pn mem.PageNo) []byte {
	prefix := fmt.Sprintf("pg/%04x", uint16(rs.destLH.ID()))
	port := rs.node.Host.IPC.NewPort(rs.node.pagerPID())
	defer port.Close()
	dst := rs.mg.fileServerPID()
	pageIn := vid.Message{
		Op: fileserver.OpPageIn, W: [6]uint32{0, 0, 0, 0, 0, fsW5(dst)},
		Seg: []byte(pageKey(prefix, as.ID, pn)),
	}
	m, err := port.Send(t, dst, pageIn)
	if (err != nil || (!m.OK() && m.Code != vid.CodeNotFound)) && !dst.IsGroup() {
		pageIn.W[5] = 0
		m, err = port.Send(t, vid.GroupFileServers, pageIn)
	}
	if err != nil || !m.OK() {
		return nil
	}
	return m.Seg
}

// pagerPID allocates a unique port id for one page-fault transaction.
// Ids come from the system logical host's private 0xF000 index block.
// The bare sequence wraps after 4096 allocations, and a long-lived
// cluster could recycle an id while an old fault transaction is still
// parked on its port — NewPort panics on the collision — so ids with a
// live port are skipped.
func (n *Node) pagerPID() vid.PID {
	sys := n.Host.SystemLH().ID()
	for i := 0; i < 0x1000; i++ {
		n.pagerSeq++
		pid := vid.NewPID(sys, 0xF000+n.pagerSeq%0x1000)
		if !n.Host.IPC.HasPort(pid) {
			return pid
		}
	}
	panic("core: pager port ids exhausted")
}

// registerPager records a pager's stats for the experiment harness.
func (c *Cluster) registerPager(lhid vid.LHID, st *PagerStats) {
	if c.pagers == nil {
		c.pagers = make(map[vid.LHID]*PagerStats)
	}
	c.pagers[lhid] = st
}

// PagerStatsFor returns demand-paging stats for a flush- or post-copy-
// migrated program.
func (c *Cluster) PagerStatsFor(lhid vid.LHID) *PagerStats { return c.pagers[lhid] }

// RemoteFaultTotals aggregates demand-paging counters across every
// registered pager (flush and post-copy migrations alike). The sums are
// order-independent, so iterating the map stays deterministic.
func (c *Cluster) RemoteFaultTotals() PagerStats {
	var tot PagerStats
	for _, st := range c.pagers {
		tot.Faults += st.Faults
		tot.FaultKB += st.FaultKB
		tot.StallTime += st.StallTime
		tot.PullKB += st.PullKB
		tot.PushKB += st.PushKB
		if st.Aborted {
			tot.Aborted = true
		}
	}
	return tot
}
