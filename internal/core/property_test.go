package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"vsystem/internal/progs"
	"vsystem/internal/workload"
)

// TestQuickMigrationTransparency is the repository's headline property,
// checked over randomized schedules: for any number of migrations (0-3),
// at any times, under any policy, with or without packet loss, a program
// produces exactly the same output as an unmigrated run.
func TestQuickMigrationTransparency(t *testing.T) {
	type schedule struct {
		policy Policy
		times  []time.Duration
		loss   float64
	}
	run := func(s schedule, seed int64) string {
		c := NewCluster(Options{Workstations: 4, Seed: seed, Policy: s.policy, LossRate: s.loss})
		c.Install(progs.Ticker(120))
		var failure error
		c.Node(0).Agent(func(a *Agent) {
			job, err := a.Exec("ticker120", nil, "ws1")
			if err != nil {
				failure = err
				return
			}
			prev := time.Duration(0)
			for _, at := range s.times {
				if at > prev {
					a.Sleep(at - prev)
					prev = at
				}
				if _, err := a.Migrate(job, false); err != nil {
					failure = err
					return
				}
			}
			if _, err := a.Wait(job); err != nil {
				failure = err
			}
		})
		c.Run(10 * time.Minute)
		if failure != nil {
			t.Fatalf("schedule %+v: %v", s, failure)
		}
		return strings.Join(c.Node(0).Display.Lines(), "|")
	}

	baseline := run(schedule{policy: PolicyPrecopy}, 100)
	if !strings.HasSuffix(baseline, "t120") || strings.Count(baseline, "|") != 119 {
		t.Fatalf("bad baseline %q...", baseline[:40])
	}

	rng := rand.New(rand.NewSource(7))
	policies := []Policy{PolicyPrecopy, PolicyStopCopy, PolicyFlush}
	for trial := 0; trial < 6; trial++ {
		s := schedule{policy: policies[rng.Intn(len(policies))]}
		n := rng.Intn(3) + 1
		at := time.Duration(0)
		for i := 0; i < n; i++ {
			at += time.Duration(300+rng.Intn(1200)) * time.Millisecond
			s.times = append(s.times, at)
		}
		if rng.Intn(2) == 0 {
			s.loss = 0.02
		}
		got := run(s, 100)
		if got != baseline {
			t.Fatalf("trial %d (%+v): output diverged from baseline", trial, s)
		}
	}
}

// TestClusterSurvivesLossStress runs a busy cluster under 5% frame loss:
// several programs execute remotely and migrate while the network drops
// frames; every program must finish and no output may be duplicated.
func TestClusterSurvivesLossStress(t *testing.T) {
	c := NewCluster(Options{Workstations: 6, Seed: 77, LossRate: 0.05})
	c.Install(progs.Ticker(60))
	c.Install(progs.Primes(500))
	for _, img := range workload.PaperImages() {
		c.Install(img)
	}

	finished := 0
	var firstErr error
	for i := 0; i < 4; i++ {
		i := i
		c.Node(i % 2).Agent(func(a *Agent) {
			prog := "ticker60"
			if i%2 == 1 {
				prog = "primes500"
			}
			job, err := a.Exec(prog, nil, "*")
			if err != nil {
				firstErr = err
				return
			}
			if i == 0 {
				a.Sleep(700 * time.Millisecond)
				if _, err := a.Migrate(job, false); err != nil {
					firstErr = err
					return
				}
			}
			if _, err := a.Wait(job); err != nil {
				firstErr = err
				return
			}
			finished++
		})
	}
	c.Run(15 * time.Minute)
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if finished != 4 {
		t.Fatalf("finished %d/4 under loss", finished)
	}
	// Output sanity: ticker lines on each home display are strictly
	// increasing without duplicates (exactly-once display writes).
	for nodeIdx := 0; nodeIdx < 2; nodeIdx++ {
		seen := map[string]int{}
		for _, l := range c.Node(nodeIdx).Display.Lines() {
			seen[l]++
		}
		for l, n := range seen {
			if strings.HasPrefix(l, "t") && n > 2 {
				// Two ticker60 instances may share a display (two jobs from
				// the same node), so a line may appear at most twice.
				t.Fatalf("line %q appeared %d times on ws%d", l, n, nodeIdx)
			}
		}
	}
	if c.Bus.Stats().Dropped == 0 {
		t.Fatal("loss model inactive — stress test vacuous")
	}
}

// TestMigrationChainAcrossAllHosts pushes one program around the whole
// cluster: each idle host takes it in turn, and it still completes with
// correct output.
func TestMigrationChainAcrossAllHosts(t *testing.T) {
	c := NewCluster(Options{Workstations: 5, Seed: 5})
	c.Install(progs.Ticker(200))
	visited := map[string]bool{}
	var failure error
	c.Node(0).Agent(func(a *Agent) {
		job, err := a.Exec("ticker200", nil, "ws1")
		if err != nil {
			failure = err
			return
		}
		visited[job.Host] = true
		for i := 0; i < 5; i++ {
			a.Sleep(600 * time.Millisecond)
			rep, err := a.Migrate(job, false)
			if err != nil {
				failure = err
				return
			}
			if n := c.NodeByLH(rep.DestHost); n != nil {
				visited[n.Name()] = true
			}
		}
		if _, err := a.Wait(job); err != nil {
			failure = err
		}
	})
	c.Run(10 * time.Minute)
	if failure != nil {
		t.Fatal(failure)
	}
	lines := c.Node(0).Display.Lines()
	if len(lines) != 200 || lines[199] != "t200" {
		t.Fatalf("%d lines, last %q", len(lines), lines[len(lines)-1])
	}
	if len(visited) < 3 {
		t.Fatalf("program visited only %d hosts: %v", len(visited), visited)
	}
}
