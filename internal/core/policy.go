package core

import (
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/progmgr"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// copyAttempt bundles the per-attempt state of one migration: everything
// the copy policies need to move address-space state between the frozen
// source copy and the destination placeholder. migrate() builds one per
// attempt and threads it through the policy hooks.
type copyAttempt struct {
	mg   *Migrator
	ctx  *kernel.ProcCtx
	pm   *progmgr.PM
	host *kernel.Host
	lh   *kernel.LogicalHost

	sel      HostSel
	finalID  vid.LHID // the migrating identity; lh.ID() until a post-copy rename
	tempLH   vid.LHID // destination placeholder id (pre-swap)
	targetKS vid.PID  // destination kernel server, via its system LH
	win      *ipc.Window
	rep      *MigrationReport
	srcMAC   ethernet.MAC
	dstMAC   ethernet.MAC

	// residue is set by the post-copy policies between swap and unfreeze:
	// the source copy stays behind as a page-serving receptacle and the
	// teardown path changes accordingly.
	residue *residueState
}

// CopyPolicy is the pluggable copy machinery of one migration attempt.
// migrate() owns the invariant structure — destination selection, the
// kernel-state swap, the identity change, unfreeze/rebind, teardown — and
// delegates all address-space movement to the policy:
//
//   - PreSwap moves (or flushes, or deliberately defers) the address-space
//     state, ending with the logical host frozen. Everything here precedes
//     the identity swap, so failures are retry-safe; the returned phase
//     and round label the failure point for the typed PhaseError.
//   - BeforeUnfreeze runs after the identity swap has committed but before
//     the new copy is unfrozen: demand-paging setup (flush's file-server
//     pager, post-copy's receptacle and remote-fault path) must be in
//     place before the guest can run.
//   - AfterCommit runs once the migration is committed, the new copy
//     unfrozen and the source identity retired. It must not fail the
//     migration — the identity has moved — so residue-transfer problems
//     are recorded in the report, never returned.
type CopyPolicy interface {
	PreSwap(at *copyAttempt) (trace.Phase, int, error)
	BeforeUnfreeze(at *copyAttempt)
	AfterCommit(at *copyAttempt)
}

// copyPolicy maps the policy enum to its implementation (nil for unknown
// values).
func (p Policy) copyPolicy() CopyPolicy {
	switch p {
	case PolicyPrecopy, PolicyForwarding:
		return precopyPolicy{}
	case PolicyStopCopy:
		return stopCopyPolicy{}
	case PolicyFlush:
		return flushPolicy{}
	case PolicyPostcopy:
		return postcopyPolicy{}
	case PolicyHybrid:
		return postcopyPolicy{hybrid: true}
	}
	return nil
}

// precopyPolicy is §3.1.2: iterative pre-copy rounds while the program
// runs, then freeze and copy the dirty residue. PolicyForwarding shares
// it (the policies differ only in rebinding, which migrate() owns).
type precopyPolicy struct{}

func (precopyPolicy) PreSwap(at *copyAttempt) (trace.Phase, int, error) {
	return at.mg.precopy(at.ctx, at.host, at.lh, at.tempLH, at.targetKS,
		at.win, at.rep, at.srcMAC, at.dstMAC)
}
func (precopyPolicy) BeforeUnfreeze(*copyAttempt) {}
func (precopyPolicy) AfterCommit(*copyAttempt)    {}

// stopCopyPolicy is the naive comparator: freeze first, copy everything
// while frozen.
type stopCopyPolicy struct{}

func (stopCopyPolicy) PreSwap(at *copyAttempt) (trace.Phase, int, error) {
	mg, ctx, lh := at.mg, at.ctx, at.lh
	at.host.Freeze(lh)
	mg.freezeStart = ctx.Now()
	mg.atPhase(lh.ID(), trace.PhaseFreeze, 0, at.srcMAC, at.dstMAC)
	var all []spacePages
	for _, as := range lh.Spaces() {
		as.ClearDirty()
		all = append(all, spacePages{as, as.AllPages()})
	}
	mg.atPhase(lh.ID(), trace.PhaseResidue, 0, at.srcMAC, at.dstMAC)
	kb, err := mg.copyRuns(ctx, at.tempLH, at.targetKS, at.win, all, at.rep)
	if err != nil {
		return trace.PhaseResidue, 0, err
	}
	at.rep.ResidualKB = kb
	dur := ctx.Now().Sub(mg.freezeStart)
	at.rep.Rounds = append(at.rep.Rounds, RoundStat{
		Pages: int(kb), KB: kb, Dur: dur, CopyRateKBps: rateKBps(kb, dur),
	})
	mg.span(trace.Span{LH: lh.ID(), Phase: trace.PhaseResidue, KB: kb, Start: mg.freezeStart, End: ctx.Now()})
	return 0, 0, nil
}
func (stopCopyPolicy) BeforeUnfreeze(*copyAttempt) {}
func (stopCopyPolicy) AfterCommit(*copyAttempt)    {}

// flushPolicy is §3.2: flush modified pages to the network file server
// (iteratively, like pre-copy), move kernel state only, and demand-fault
// pages in from the file server on the new host.
type flushPolicy struct{}

func (flushPolicy) PreSwap(at *copyAttempt) (trace.Phase, int, error) {
	if err := at.mg.flushOut(at.ctx, at.pm, at.lh, at.win, at.rep); err != nil {
		return trace.PhasePrecopy, 0, err
	}
	return 0, 0, nil
}

func (flushPolicy) BeforeUnfreeze(at *copyAttempt) {
	// Configure file-server demand paging on the new copy before it runs.
	at.mg.installPager(at.finalID, at.sel.SystemLH)
}
func (flushPolicy) AfterCommit(*copyAttempt) {}

// postcopyPolicy inverts the residue cost: freeze almost immediately, move
// kernel state (plus, for hybrid, the hot working set), swap the identity
// and let the destination demand-fault the rest from a frozen source
// receptacle while the guest already runs. The hybrid flavor pre-copies
// the recently-dirty ("hot") page set before freezing so the post-swap
// fault storm mostly misses, and pays only an invalidation run — a few
// bytes per page — for hot pages re-dirtied during that copy.
type postcopyPolicy struct {
	hybrid bool
}

func (p postcopyPolicy) PreSwap(at *copyAttempt) (trace.Phase, int, error) {
	mg, ctx, lh := at.mg, at.ctx, at.lh

	// sent holds, per space, the pages the destination will hold a valid
	// copy of at swap time; everything else is post-swap residue.
	sent := make(map[*mem.AddressSpace]map[mem.PageNo]bool)

	if p.hybrid {
		// Track dirty bits over a short sample window while the program
		// runs: the recent-dirty set approximates the hot working set.
		for _, as := range lh.Spaces() {
			as.ClearDirty()
		}
		ctx.Sleep(params.HybridSampleInterval)
		var hot []spacePages
		for _, as := range lh.Spaces() {
			hot = append(hot, spacePages{as, as.SnapshotDirty()})
		}
		// Copy the hot set while the program still runs (one pre-copy
		// round over the hot pages only).
		roundStart := ctx.Now()
		mg.atPhase(lh.ID(), trace.PhasePrecopy, 0, at.srcMAC, at.dstMAC)
		if _, err := mg.copyRuns(ctx, at.tempLH, at.targetKS, at.win, hot, at.rep); err != nil {
			return trace.PhasePrecopy, 0, err
		}
		dur := ctx.Now().Sub(roundStart)
		at.rep.Rounds = append(at.rep.Rounds, RoundStat{
			Pages: pageCount(hot), KB: kbOf(hot), Dur: dur,
			CopyRateKBps: rateKBps(kbOf(hot), dur),
		})
		mg.span(trace.Span{
			LH: lh.ID(), Phase: trace.PhasePrecopy, Round: 0,
			KB: kbOf(hot), Start: roundStart, End: ctx.Now(),
		})
		for _, s := range hot {
			m := make(map[mem.PageNo]bool, len(s.pages))
			for _, pn := range s.pages {
				m[pn] = true
			}
			sent[s.as] = m
		}

		at.host.Freeze(lh)
		mg.freezeStart = ctx.Now()
		mg.atPhase(lh.ID(), trace.PhaseFreeze, 0, at.srcMAC, at.dstMAC)

		// Hot pages re-dirtied during the copy are stale at the
		// destination. Copying them now would put the whole hot set back
		// into the freeze window — at a saturating dirty rate that is
		// precisely pre-copy's residue cost. Instead send an invalidation
		// run (page numbers only: ~4 bytes per page on the wire) telling
		// the destination to drop them; they travel post-swap like the
		// rest of the residue.
		mg.atPhase(lh.ID(), trace.PhaseResidue, 0, at.srcMAC, at.dstMAC)
		var stale []spacePages
		for _, as := range lh.Spaces() {
			redirtied := as.SnapshotDirty()
			for _, pn := range redirtied {
				delete(sent[as], pn)
			}
			stale = append(stale, spacePages{as, redirtied})
		}
		if err := mg.invalidateRuns(ctx, at.tempLH, at.targetKS, at.win, stale, at.rep); err != nil {
			return trace.PhaseResidue, 0, err
		}
		mg.span(trace.Span{
			LH: lh.ID(), Phase: trace.PhaseResidue, KB: kbOf(stale),
			Start: mg.freezeStart, End: ctx.Now(),
		})
	} else {
		// Pure post-copy: freeze right away, defer every page.
		at.host.Freeze(lh)
		mg.freezeStart = ctx.Now()
		mg.atPhase(lh.ID(), trace.PhaseFreeze, 0, at.srcMAC, at.dstMAC)
	}

	// Everything not validly at the destination is post-swap residue.
	// Mark it dirty on the frozen source: the dirty bits double as
	// not-yet-delivered markers — KsFetchPage clears a page's bit when it
	// serves it, and the push-out skips pages whose bit is already clear.
	var remaining []spacePages
	for _, as := range lh.Spaces() {
		var left []mem.PageNo
		for _, pn := range as.AllPages() {
			if !sent[as][pn] {
				left = append(left, pn)
			}
		}
		for _, pn := range left {
			as.MarkPageDirty(pn)
		}
		remaining = append(remaining, spacePages{as, left})
	}
	at.residue = &residueState{
		mg:        mg,
		srcHost:   at.host,
		srcLH:     lh,
		srcKS:     kernel.KernelServerPID(at.host.SystemLH().ID()),
		remaining: remaining,
		stats:     &PagerStats{},
	}
	return 0, 0, nil
}

func (p postcopyPolicy) BeforeUnfreeze(at *copyAttempt) {
	rs := at.residue
	mg := at.mg

	node := mg.Cluster.NodeByLH(at.sel.SystemLH)
	var destLH *kernel.LogicalHost
	if node != nil {
		if lh, ok := node.Host.LookupLH(at.finalID); ok {
			destLH = lh
		}
	}

	// Rename the source copy to a fresh private id. Local senders to the
	// original id then miss and rebind to the destination, and the
	// destination's adoption probe correctly sees the identity as not
	// resident here.
	var renameErr error
	if destLH != nil {
		_, renameErr = at.host.DetachResidue(at.lh)
	}
	if destLH == nil || renameErr != nil {
		// No receptacle possible (destination unreachable in the sim, or
		// every local LH slot in use): drain the residue synchronously
		// while both sides are still frozen, degenerating to stop-and-
		// copy for the remainder, and tear down classically.
		kb, _ := mg.copyRuns(at.ctx, at.finalID, at.targetKS, at.win, rs.remaining, at.rep)
		at.rep.ResidualKB += kb
		at.residue = nil
		return
	}
	rs.node = node
	rs.destLH = destLH
	rs.id = at.lh.ID() // the receptacle's fresh private id

	mg.Cluster.registerPager(at.finalID, rs.stats)
	mg.installRemotePager(rs)

	// Background pull: a destination-side worker sweeps the spaces for
	// not-yet-present pages and pulls them through a pipelined window,
	// racing the source's push-out and the guest's own demand faults.
	node.Host.SpawnServer("pm-pull", 16*1024, func(ctx *kernel.ProcCtx) {
		rs.pullLoop(ctx)
	})
}

func (p postcopyPolicy) AfterCommit(at *copyAttempt) {
	if at.residue == nil {
		return // BeforeUnfreeze drained the residue synchronously
	}
	rs, mg, ctx, rep := at.residue, at.mg, at.ctx, at.rep
	pullStart := ctx.Now()
	mg.atPhase(at.finalID, trace.PhasePostSwapPull, 0, at.srcMAC, at.dstMAC)

	// Push the remainder out of the receptacle, racing the destination's
	// pulls: pages whose delivery marker a fetch already cleared are
	// skipped, and the destination installs pushes only if-absent, so the
	// same page is never double-applied.
	err := mg.pushResidue(ctx, at.finalID, at.targetKS, at.win, rs, rep)
	if err == nil {
		err = at.win.Drain(ctx.Task())
	}
	if err == nil {
		err = rs.awaitDrained(ctx)
	}
	if err != nil {
		// The destination died after the commit point. The migration
		// itself stands — returning an error here would make the program
		// manager destroy state it no longer owns — so record the failed
		// residue and let supervision (lease expiry, re-exec from the
		// file-server image) deal with the lost guest.
		rep.ResidueAborted = true
		rs.abort(err)
	} else {
		rs.finish()
	}

	// The receptacle has served its purpose: every page is at the
	// destination (or the residue is aborted). Late in-flight fetches
	// fail harmlessly — the destination re-checks presence and falls
	// back before giving up.
	rs.destroyReceptacle()

	st := rs.stats
	rep.PostSwapFaults = st.Faults
	rep.PostSwapStall = st.StallTime
	rep.PostSwapPullKB = st.PullKB
	dur := ctx.Now().Sub(pullStart)
	rep.PostSwapPullKBps = rateKBps(st.PullKB, dur)
	mg.span(trace.Span{
		LH: at.finalID, Phase: trace.PhasePostSwapPull,
		KB: rep.ResiduePushKB + st.PullKB, Start: pullStart, End: ctx.Now(),
	})
}

// invalidateRuns sends WriteModeInvalidate page runs for the given pages.
// Bodies are passed as the shared zero page so every one is elided: an
// invalidation run is a header plus 4 bytes per page.
func (mg *Migrator) invalidateRuns(ctx *kernel.ProcCtx, tempLH vid.LHID, targetKS vid.PID,
	win *ipc.Window, sp []spacePages, rep *MigrationReport) error {

	if mg.scratch == nil {
		mg.scratch = make([][]byte, kernel.MaxRunPages)
	}
	for _, s := range sp {
		for off := 0; off < len(s.pages); off += kernel.MaxRunPages {
			end := off + kernel.MaxRunPages
			if end > len(s.pages) {
				end = len(s.pages)
			}
			batch := s.pages[off:end]
			data := mg.scratch[:len(batch)]
			for i := range batch {
				data[i] = mem.ZeroPage()
			}
			seg := kernel.EncodePageRun(s.as.ID, batch, data)
			err := win.Send(ctx.Task(), targetKS, vid.Message{
				Op:  kernel.KsWritePages,
				W:   [6]uint32{uint32(tempLH), kernel.WriteModeInvalidate},
				Seg: seg,
			})
			if err != nil {
				return err
			}
			rep.WireBytes += int64(len(seg))
		}
	}
	return win.Drain(ctx.Task())
}

// pushResidue streams the receptacle's still-undelivered pages to the
// destination as WriteModeIfAbsent runs. Each batch re-filters by the
// delivery markers at issue time, so pages the destination pulled while
// earlier batches were in flight are not sent twice.
func (mg *Migrator) pushResidue(ctx *kernel.ProcCtx, finalID vid.LHID, targetKS vid.PID,
	win *ipc.Window, rs *residueState, rep *MigrationReport) error {

	if mg.scratch == nil {
		mg.scratch = make([][]byte, kernel.MaxRunPages)
	}
	for _, s := range rs.remaining {
		for off := 0; off < len(s.pages); off += kernel.MaxRunPages {
			end := off + kernel.MaxRunPages
			if end > len(s.pages) {
				end = len(s.pages)
			}
			var batch []mem.PageNo
			for _, pn := range s.pages[off:end] {
				if pageDelivered(s.as, pn) {
					continue
				}
				batch = append(batch, pn)
			}
			if len(batch) == 0 {
				continue
			}
			data := mg.scratch[:len(batch)]
			for i, pn := range batch {
				data[i] = s.as.PageView(pn)
			}
			seg := kernel.EncodePageRun(s.as.ID, batch, data)
			err := win.Send(ctx.Task(), targetKS, vid.Message{
				Op:  kernel.KsWritePages,
				W:   [6]uint32{uint32(finalID), kernel.WriteModeIfAbsent},
				Seg: seg,
			})
			if err != nil {
				return err
			}
			for _, pn := range batch {
				s.as.ClearDirtyPage(pn)
			}
			kb := float64(len(batch)) * mem.PageSize / 1024
			rep.ResiduePushKB += kb
			rep.BytesCopied += int64(len(batch)) * mem.PageSize
			rep.WireBytes += int64(len(seg))
			rs.stats.PushKB += kb
		}
	}
	return nil
}

// pageDelivered reports whether a residue page's delivery marker has been
// cleared (a KsFetchPage served it, or an earlier push batch sent it).
func pageDelivered(as *mem.AddressSpace, pn mem.PageNo) bool {
	return !as.PageDirty(pn)
}

// residueState is the shared state of one post-copy residue: the frozen
// source receptacle, the destination copy, and the transfer bookkeeping
// that the source push-out, the destination's background puller and the
// demand-fault path coordinate through. The simulation is single-
// threaded, so cross-host field access needs no locking and stays
// deterministic.
type residueState struct {
	mg      *Migrator
	srcHost *kernel.Host
	srcLH   *kernel.LogicalHost // the receptacle (renamed post-swap)
	srcKS   vid.PID             // source kernel server, via its system LH
	id      vid.LHID            // the receptacle's private id

	node   *Node               // destination node
	destLH *kernel.LogicalHost // the migrated copy at the destination

	remaining []spacePages // source-side: pages deferred past the swap
	stats     *PagerStats

	done    bool // residue fully transferred; handlers cleared
	aborted bool // residue lost (source or destination died mid-residue)
}

// pullLoop is the destination-side background puller: sweep every space
// for not-yet-present pages and fetch them in FetchRunPages batches
// through a pipelined window, installing runs as replies arrive. It
// races the source's push-out (install-if-absent on both sides keeps
// that safe) and exits quietly once the residue is done or lost.
func (rs *residueState) pullLoop(ctx *kernel.ProcCtx) {
	win := rs.node.Host.IPC.NewWindow(rs.node.Host.SystemLH().ID(), params.CopyWindow)
	defer win.Close()
	win.SetOnReply(func(_, reply vid.Message) {
		rs.installRun(reply.Seg)
	})
	for _, as := range rs.destLH.Spaces() {
		as := as
		var batch []mem.PageNo
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			err := win.Send(ctx.Task(), rs.srcKS, vid.Message{
				Op:  kernel.KsFetchPage,
				W:   [6]uint32{uint32(rs.id)},
				Seg: kernel.EncodeFetchReq(as.ID, batch),
			})
			batch = batch[:0]
			return err == nil
		}
		limit := mem.PageNo(as.Size() / mem.PageSize)
		for pn := mem.PageNo(0); pn < limit; pn++ {
			if rs.done || rs.aborted {
				return
			}
			if as.Present(pn) {
				continue
			}
			batch = append(batch, pn)
			if len(batch) == params.FetchRunPages {
				if !flush() {
					return // sticky error: push-out finished first, or the source is gone
				}
			}
		}
		if !flush() {
			return
		}
	}
	win.Drain(ctx.Task())
}

// installRun installs a fetched page run into the destination copy,
// if-absent (demand faults, pushes or the guest itself may have won the
// race for individual pages). Runs still arriving after the residue is
// done are installed too — they no-op page by page — but an aborted
// residue drops them: the guest is being destroyed.
func (rs *residueState) installRun(seg []byte) {
	if rs.aborted {
		return
	}
	spaceID, pages, data, err := kernel.DecodePageRun(seg)
	if err != nil {
		return
	}
	for _, as := range rs.destLH.Spaces() {
		if as.ID != spaceID {
			continue
		}
		for i, pn := range pages {
			if installed, _ := as.InstallPageIfAbsent(pn, data[i]); installed {
				rs.stats.PullKB += float64(mem.PageSize) / 1024
			}
		}
		return
	}
}

// awaitDrained blocks until every deferred page is present at the
// destination. The push-out skips pages whose delivery marker a fetch
// already cleared, but "served by the receptacle" is not "installed at
// the destination": the reply may still be in flight to the background
// puller or to a parked faulting process. Tearing the receptacle down on
// cleared markers alone loses exactly those pages — the guest's next
// reference finds the receptacle gone and the fallback chain aborts a
// healthy guest — so completion is judged by destination presence, never
// by source-side markers. Returns nil once the residue is fully resident
// (or the guest itself is gone, which moots it); errors when the residue
// aborted meanwhile or the destination stops making progress.
func (rs *residueState) awaitDrained(ctx *kernel.ProcCtx) error {
	deadline := ctx.Now().Add(params.ResidueDrainTimeout)
	for {
		if rs.aborted {
			return ErrResidueLost
		}
		cur, ok := rs.node.Host.LookupLH(rs.destLH.ID())
		if !ok || cur != rs.destLH {
			return nil // the guest exited or was destroyed; nothing to complete
		}
		missing := false
	scan:
		for _, s := range rs.remaining {
			das := rs.destSpace(s.as.ID)
			if das == nil {
				continue
			}
			for _, pn := range s.pages {
				if !das.Present(pn) {
					missing = true
					break scan
				}
			}
		}
		if !missing {
			return nil
		}
		if ctx.Now() > deadline {
			return ErrResidueLost
		}
		ctx.Sleep(time.Millisecond)
	}
}

// destSpace resolves a source space to its destination counterpart (space
// ids are preserved across migration).
func (rs *residueState) destSpace(id uint32) *mem.AddressSpace {
	for _, as := range rs.destLH.Spaces() {
		if as.ID == id {
			return as
		}
	}
	return nil
}

// finish marks the residue complete and retires the remote-fault path:
// every remaining page is now present at the destination (or provably
// all-zero), so absent pages can simply allocate locally again.
func (rs *residueState) finish() {
	rs.done = true
	for _, as := range rs.destLH.Spaces() {
		as.SetFault(nil)
	}
}

// abort marks the residue lost. Called from the source side when the
// push-out cannot reach the destination (the guest there is gone), and
// from the destination side when a fault can be satisfied neither by the
// receptacle nor the file server (abortGuest).
func (rs *residueState) abort(cause error) {
	if rs.aborted {
		return
	}
	rs.aborted = true
	rs.stats.Aborted = true
	if rs.stats.AbortErr == nil {
		rs.stats.AbortErr = &PhaseError{
			Phase: trace.PhasePostSwapPull, Dest: rs.node.Host.SystemLH().ID(), Err: cause,
		}
	}
	for _, as := range rs.destLH.Spaces() {
		as.SetFault(nil)
	}
}

// abortGuest is the destination's clean-abort path: a faulting reference
// could not be satisfied by the receptacle (source crashed mid-residue)
// or the file-server flush image. The guest's memory is incomplete and
// can never be completed, so destroy it rather than let it run on holes.
// The destruction goes through the program manager, which records the
// guest as lost (not exited): the owning session's lease expires and
// supervision re-executes it from its file-server image.
func (rs *residueState) abortGuest(t *sim.Task, cause error) {
	rs.abort(cause)
	if cur, ok := rs.node.Host.LookupLH(rs.destLH.ID()); ok && cur == rs.destLH {
		rs.node.PM.AbortGuest(t, rs.destLH.ID())
	}
}

// destroyReceptacle tears down the source-side receptacle once the
// residue is drained or lost.
func (rs *residueState) destroyReceptacle() {
	if cur, ok := rs.srcHost.LookupLH(rs.srcLH.ID()); ok && cur == rs.srcLH {
		rs.srcHost.DestroyLH(rs.srcLH)
	}
}
