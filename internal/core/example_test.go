package core_test

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/progs"
)

// Example shows the paper's basic flow: run a program on "some other
// lightly loaded machine" with @ *, wait for it, and read its output from
// the home workstation's display. The simulation is deterministic, so the
// output is exact.
func Example() {
	c := core.NewCluster(core.Options{Workstations: 3, Seed: 1})
	c.Install(progs.Primes(100))

	c.Node(0).Agent(func(a *core.Agent) {
		job, err := a.Exec("primes100", nil, "*")
		if err != nil {
			panic(err)
		}
		code, err := a.Wait(job)
		if err != nil {
			panic(err)
		}
		fmt.Printf("ran on %s, exit %d\n", job.Host, code)
	})
	c.Run(time.Minute)
	fmt.Printf("display: %v\n", c.Node(0).Display.Lines())
	// Output:
	// ran on ws2, exit 25
	// display: [25]
}

// Example_migrateprog shows preemption: the owner of the execution host
// evicts the guest with migrateprog; the program finishes elsewhere with
// its output intact.
func Example_migrateprog() {
	c := core.NewCluster(core.Options{Workstations: 3, Seed: 2})
	c.Install(progs.Ticker(40))

	c.Node(0).Agent(func(a *core.Agent) {
		job, _ := a.Exec("ticker40", nil, "ws1")
		a.Sleep(500 * time.Millisecond)
		rep, err := a.Migrate(job, false)
		if err != nil {
			panic(err)
		}
		fmt.Printf("moved to %v after %d pre-copy round(s)\n",
			c.NodeByLH(rep.DestHost).Name(), len(rep.Rounds))
		a.Wait(job)
	})
	c.Run(5 * time.Minute)
	lines := c.Node(0).Display.Lines()
	fmt.Printf("%d lines, last %q\n", len(lines), lines[len(lines)-1])
	// Output:
	// moved to ws2 after 1 pre-copy round(s)
	// 40 lines, last "t40"
}
