package core

import (
	"testing"
	"time"

	"vsystem/internal/trace"
)

// TestMigrationSpanSequence migrates tex and checks the published phase
// spans against §3.1.2's structure: select → N×precopy → residue → swap →
// rebind form a well-formed, non-overlapping chain in virtual time, and
// the enclosing freeze window's duration equals the reported FreezeTime.
func TestMigrationSpanSequence(t *testing.T) {
	c := boot(t, Options{Workstations: 3, Seed: 17})
	var rep *MigrationReport
	var err error
	var job *Job
	c.Node(0).Agent(func(a *Agent) {
		job, err = a.Exec("tex", nil, "ws1")
		if err != nil {
			return
		}
		a.Sleep(3 * time.Second)
		rep, err = a.Migrate(job, false)
	})
	c.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	spans := c.Trace.SpansFor(job.LHID)
	if len(spans) == 0 {
		t.Fatal("migration published no spans")
	}

	// Split off the freeze window (published last, at unfreeze); the rest
	// is the strictly sequential phase chain.
	var freeze *trace.Span
	var chain []trace.Span
	for i := range spans {
		if spans[i].Phase == trace.PhaseFreeze {
			if freeze != nil {
				t.Fatal("more than one freeze span")
			}
			freeze = &spans[i]
		} else {
			chain = append(chain, spans[i])
		}
	}
	if freeze == nil {
		t.Fatal("no freeze span published")
	}

	// Phase sequence: select, precopy round 0..N-1, residue, swap, rebind.
	var wantPhases []trace.Phase
	var wantRounds []int
	wantPhases = append(wantPhases, trace.PhaseSelect)
	wantRounds = append(wantRounds, 0)
	for k := range rep.Rounds {
		wantPhases = append(wantPhases, trace.PhasePrecopy)
		wantRounds = append(wantRounds, k)
	}
	wantPhases = append(wantPhases, trace.PhaseResidue, trace.PhaseSwap, trace.PhaseRebind)
	wantRounds = append(wantRounds, 0, 0, 0)
	if len(chain) != len(wantPhases) {
		t.Fatalf("chain has %d spans, want %d (%d pre-copy rounds): %v", len(chain), len(wantPhases), len(rep.Rounds), chain)
	}
	for i, s := range chain {
		if s.Phase != wantPhases[i] || s.Round != wantRounds[i] {
			t.Fatalf("span %d = %v[%d], want %v[%d]", i, s.Phase, s.Round, wantPhases[i], wantRounds[i])
		}
	}
	if len(rep.Rounds) < 1 {
		t.Fatalf("tex migration ran %d pre-copy rounds, want at least 1", len(rep.Rounds))
	}

	// Well-formed and non-overlapping in virtual time.
	for i, s := range chain {
		if s.End < s.Start {
			t.Fatalf("span %v ends before it starts", s)
		}
		if i > 0 && s.Start < chain[i-1].End {
			t.Fatalf("span %v overlaps previous %v", s, chain[i-1])
		}
	}

	// Pre-copy rounds must report the Kbytes the harness saw.
	for k, r := range rep.Rounds {
		if got := chain[1+k].KB; got != r.KB {
			t.Fatalf("round %d span KB = %.1f, report = %.1f", k, got, r.KB)
		}
	}

	// The freeze window starts with the residue copy, ends with the rebind
	// acknowledgment, and its duration is exactly the reported FreezeTime.
	residue := chain[len(chain)-3]
	rebind := chain[len(chain)-1]
	if freeze.Start != residue.Start {
		t.Fatalf("freeze starts at %v, residue at %v", freeze.Start, residue.Start)
	}
	if freeze.End != rebind.End {
		t.Fatalf("freeze ends at %v, rebind at %v", freeze.End, rebind.End)
	}
	if freeze.Dur() != rep.FreezeTime {
		t.Fatalf("freeze span %v != reported FreezeTime %v", freeze.Dur(), rep.FreezeTime)
	}

	// The kernel's freeze/unfreeze events must bracket the window too.
	if c.Trace.Count(trace.EvFreeze) == 0 || c.Trace.Count(trace.EvUnfreeze) == 0 {
		t.Fatal("no kernel freeze/unfreeze events on the bus")
	}
}
