package workload

import (
	"time"

	"vsystem/internal/image"
	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/vvm"
)

// ServiceKind is the body-registry key for the echo service: a migratable
// *server* program — the paper's "floating server processes such as a
// transaction manager that are not tied to a particular hardware device"
// (§4.3). It answers OpEchoService requests, charging a small service
// cost, and survives migration mid-service: requests received but not yet
// answered migrate with the port state and are answered from the new
// host.
const ServiceKind = "echoservice"

// OpEchoService echoes W back with W[1] incremented (a visible service
// effect the experiments can verify).
const OpEchoService uint16 = 0x80

// serviceCPU is the per-request service time.
const serviceCPU = 2 * time.Millisecond

func init() {
	kernel.RegisterBody(ServiceKind, func() kernel.Body {
		return kernel.BodyFunc(runService)
	})
}

// ServiceImage builds a loadable image for the echo service.
func ServiceImage(name string) *image.Image {
	return &image.Image{
		Name:      name,
		Kind:      ServiceKind,
		SpaceSize: vvm.CodeBase + serviceFootprint + 64*1024,
	}
}

// serviceFootprint is the service's in-memory state (transaction tables,
// logs): it makes migration move a realistic amount of data.
const serviceFootprint = 256 * 1024

func runService(ctx *kernel.ProcCtx) {
	r := ctx.Regs()
	as := ctx.Space()
	// Phase 0: allocate the service's state, resumably.
	for r.W[kernel.RegPhase] == 0 {
		pos := r.W[kernel.RegUser]
		if pos >= serviceFootprint {
			r.W[kernel.RegPhase] = 1
			break
		}
		as.WriteWord(vvm.CodeBase+pos, pos)
		r.W[kernel.RegUser] = pos + 1024
		if pos%(8*1024) == 0 {
			ctx.Steps(1000)
		}
	}
	serve := func(req *ipc.Req) {
		ctx.Compute(serviceCPU)
		m := req.Msg
		m.W[1]++
		// Each transaction updates the service state (dirties a page).
		r.W[kernel.RegUser+1] = (r.W[kernel.RegUser+1] + 4096) % serviceFootprint
		as.WriteWord(vvm.CodeBase+r.W[kernel.RegUser+1], m.W[0])
		ctx.Reply(req, m)
	}
	// Finish anything that was mid-service when a migration froze us.
	for _, req := range ctx.OpenRequests() {
		serve(req)
	}
	for {
		serve(ctx.Receive())
	}
}
