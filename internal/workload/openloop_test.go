package workload

import (
	"testing"
	"time"
)

func testLoop() OpenLoop {
	return OpenLoop{
		RatePerSec: 10,
		Duration:   100 * time.Second,
		Classes:    []JobClass{LatencyCritical(), BestEffort()},
		Seed:       42,
	}
}

func TestOpenLoopDeterminism(t *testing.T) {
	a, b := testLoop().Schedule(), testLoop().Schedule()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOpenLoopRateAndMix(t *testing.T) {
	o := testLoop()
	arrivals := o.Schedule()
	want := o.RatePerSec * o.Duration.Seconds()
	if n := float64(len(arrivals)); n < want*0.8 || n > want*1.2 {
		t.Errorf("got %v arrivals, want around %v", n, want)
	}
	byClass := map[int]int{}
	last := time.Duration(0)
	for _, a := range arrivals {
		if a.At < last || a.At > o.Duration {
			t.Fatalf("arrival out of order or range: %v after %v", a.At, last)
		}
		last = a.At
		byClass[a.Class]++
		c := o.Classes[a.Class]
		if a.ServiceMs == 0 || a.ServiceMs%c.QuantumMs != 0 || float64(a.ServiceMs) > c.MaxServiceMs+float64(c.QuantumMs) {
			t.Fatalf("service %dms off the %s bucket grid", a.ServiceMs, c.Name)
		}
	}
	lcShare := float64(byClass[0]) / float64(len(arrivals))
	if lcShare < 0.6 || lcShare > 0.8 {
		t.Errorf("lc share = %.2f, want around 0.7", lcShare)
	}
}

func TestOpenLoopImagesCoverSchedule(t *testing.T) {
	o := testLoop()
	have := map[string]bool{}
	for _, img := range o.Images() {
		have[img.Name] = true
	}
	for _, a := range o.Schedule() {
		if !have[a.Program] {
			t.Fatalf("arrival wants image %q, not in Images()", a.Program)
		}
	}
}
