package workload

import "vsystem/internal/image"

// Paper workload parameters, fitted to Table 4-1 ("dirty page generation
// rates, in Kbytes") with the hot-set + stream model:
//
//	dirty(t) ≈ HotKB·(1-e^(-HotRate·t/HotKB)) + Stream·t
//
// The stream rate comes from the 1 s → 3 s slope, the hot-set size from
// the saturated residue at 1 s and 3 s, and the hot touch rate from the
// 0.2 s point. EXPERIMENTS.md records paper-vs-measured for all 24 cells.
//
// The image pad sizes model realistically sized 68010 binaries so the
// program-load experiment (330 ms / 100 KB) sweeps a realistic range.

// Paper table targets (KB dirtied in 0.2 s / 1 s / 3 s), for reference and
// assertions.
var Table41 = map[string][3]float64{
	"make":         {0.8, 1.8, 4.2},
	"cc68":         {0.6, 2.2, 6.2},
	"preprocessor": {25.0, 40.2, 59.6},
	"parser":       {50.0, 76.8, 109.4},
	"optimizer":    {19.8, 32.2, 41.0},
	"assembler":    {21.6, 33.4, 48.4},
	"linkloader":   {25.0, 39.2, 37.8},
	"tex":          {68.6, 111.6, 142.8},
}

// PaperSpecs returns the eight calibrated workloads. Durations are long
// enough for the dirty-rate and migration experiments; run them with
// DurationMs overridden for longer scenarios.
func PaperSpecs() []Spec {
	return []Spec{
		{Name: "make", HotKB: 0.9, HotRateKBps: 4, StreamKBps: 1.2, StreamKB: 64, DurationMs: 30000},
		{Name: "cc68", HotKB: 0.3, HotRateKBps: 3, StreamKBps: 2.0, StreamKB: 64, DurationMs: 30000},
		{Name: "preprocessor", HotKB: 30.5, HotRateKBps: 215, StreamKBps: 9.7, StreamKB: 128, DurationMs: 20000},
		{Name: "parser", HotKB: 60.5, HotRateKBps: 448, StreamKBps: 16.3, StreamKB: 160, DurationMs: 20000},
		{Name: "optimizer", HotKB: 27.8, HotRateKBps: 159, StreamKBps: 4.4, StreamKB: 96, DurationMs: 20000},
		{Name: "assembler", HotKB: 25.9, HotRateKBps: 194, StreamKBps: 7.5, StreamKB: 96, DurationMs: 20000},
		{Name: "linkloader", HotKB: 39.0, HotRateKBps: 200, StreamKBps: 0, StreamKB: 32, DurationMs: 20000},
		{Name: "tex", HotKB: 96.0, HotRateKBps: 550, StreamKBps: 15.6, StreamKB: 192, DurationMs: 30000},
	}
}

// PaperSpec returns one named paper workload.
func PaperSpec(name string) (Spec, bool) {
	for _, s := range PaperSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// paperImageSizes approximates the binaries' stored sizes (bytes of pad
// beyond the spec blob).
var paperImageSizes = map[string]uint32{
	"make":         40 * 1024,
	"cc68":         25 * 1024,
	"preprocessor": 60 * 1024,
	"parser":       120 * 1024,
	"optimizer":    90 * 1024,
	"assembler":    70 * 1024,
	"linkloader":   55 * 1024,
	"tex":          220 * 1024,
}

// PaperImages builds loadable images for all eight programs.
func PaperImages() []*image.Image {
	var out []*image.Image
	for _, spec := range PaperSpecs() {
		out = append(out, Image(spec, paperImageSizes[spec.Name]))
	}
	return out
}
