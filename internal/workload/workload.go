// Package workload provides synthetic programs whose dirty-page behaviour
// is calibrated to Table 4-1 of the paper: the make/cc68 compilation
// pipeline and the TeX formatter.
//
// Each workload follows a hot-set + sequential-stream model: it touches a
// hot working set of H Kbytes at r Kbytes/s (uniformly, with replacement)
// and streams through fresh pages at s Kbytes/s. The expected unique pages
// dirtied in an interval t is then H·(1-e^(-rt/H)) + s·t, which fits the
// paper's three sampling intervals (0.2 s, 1 s, 3 s) for every program.
//
// The workload body runs on the kernel's Body interface with *all* mutable
// state in the register blob and address space, so these programs migrate
// exactly like VVM programs.
package workload

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"time"

	"vsystem/internal/image"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/vid"
	"vsystem/internal/vvm"
)

// BodyKind is the registry key for workload programs.
const BodyKind = "workload"

// Spec parameterizes a workload.
type Spec struct {
	// Name is echoed in output lines.
	Name string
	// HotKB is the hot working set size.
	HotKB float64
	// HotRateKBps is the touch rate over the hot set.
	HotRateKBps float64
	// StreamKBps is the fresh-page streaming rate.
	StreamKBps float64
	// StreamKB is the stream window (wraps when exhausted).
	StreamKB float64
	// DurationMs is total CPU time consumed before exiting (0 = forever).
	DurationMs uint32
	// OutputEveryMs emits a progress line to the display at this period
	// (0 = silent).
	OutputEveryMs uint32
}

// tickMs is the CPU slice between page-touch bursts.
const tickMs = 10

func init() {
	kernel.RegisterBody(BodyKind, func() kernel.Body { return &body{} })
}

// Image builds a loadable program image for the workload. The parameter
// blob is carried as the image's code (loaded at vvm.CodeBase); pad sets
// the stored file size (program-load experiments).
func Image(spec Spec, pad uint32) *image.Image {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&spec); err != nil {
		panic(err)
	}
	blob := buf.Bytes()
	code := make([]byte, 4+len(blob))
	binary.LittleEndian.PutUint32(code, uint32(len(blob)))
	copy(code[4:], blob)

	size := uint32(vvm.CodeBase) + uint32(len(code)) +
		uint32(spec.HotKB*1024) + uint32(spec.StreamKB*1024) +
		64*1024 // slack + stack
	size = (size + mem.PageSize - 1) &^ (mem.PageSize - 1)
	return &image.Image{
		Name:      spec.Name,
		Kind:      BodyKind,
		Code:      code,
		SpaceSize: size,
		Pad:       pad,
	}
}

// Register blob layout.
const (
	regPhase     = kernel.RegUser + 0 // 0 init, 1 running
	regRNG       = kernel.RegUser + 1
	regTicks     = kernel.RegUser + 2 // elapsed ticks
	regHotAcc    = kernel.RegUser + 3 // 16.16 fixed-point KB accumulators
	regStreamAcc = kernel.RegUser + 4
	regStreamPos = kernel.RegUser + 5 // KB offset within the stream window
	regPending   = kernel.RegUser + 6 // 1 = output send outstanding
	regInitPos   = kernel.RegUser + 7 // allocation progress during init
)

type body struct{}

// Run implements kernel.Body, resuming cleanly from the registers.
func (b *body) Run(ctx *kernel.ProcCtx) {
	as := ctx.Space()
	r := ctx.Regs()
	spec, err := readSpec(as)
	if err != nil {
		ctx.Exit(0xFF)
	}
	hotBase := uint32(vvm.CodeBase) + 64*1024 // clear of code+blob
	hotPages := pagesOf(spec.HotKB)
	streamBase := hotBase + uint32(hotPages)*mem.PageSize
	streamPages := pagesOf(spec.StreamKB)

	// A migration can interrupt an output transaction; finish it first.
	if r.W[regPending] != 0 {
		if ctx.Sending() {
			ctx.AwaitReply()
		}
		r.W[regPending] = 0
	}

	if r.W[regRNG] == 0 {
		r.W[regRNG] = 0x243F6A88 // pi; any fixed non-zero seed
	}

	// Phase 0: allocate (and dirty) the whole working image, modeling a
	// program that has faulted in its data. Resumable page by page.
	for r.W[regPhase] == 0 {
		pos := r.W[regInitPos]
		total := uint32(hotPages + streamPages)
		if pos >= total {
			r.W[regPhase] = 1
			break
		}
		addr := hotBase + pos*mem.PageSize
		as.WriteWord(addr, 0xA110C8ED)
		r.W[regInitPos] = pos + 1
		if pos%8 == 7 {
			ctx.Steps(1000) // ~1 ms per 8 pages of first-touch cost
		}
	}

	for {
		if spec.DurationMs > 0 && r.W[regTicks]*tickMs >= spec.DurationMs {
			b.output(ctx, r, fmt.Sprintf("%s: done after %d ms", spec.Name, r.W[regTicks]*tickMs))
			ctx.Exit(0)
		}
		ctx.Compute(tickMs * time.Millisecond)
		r.W[regTicks]++

		// Hot-set touches: HotRateKBps spread over ticks, accumulated in
		// 16.16 fixed point; each whole KB dirties one random hot page.
		if hotPages > 0 {
			r.W[regHotAcc] += uint32(spec.HotRateKBps * tickMs / 1000 * 65536)
			for r.W[regHotAcc] >= 65536 {
				r.W[regHotAcc] -= 65536
				pn := xorshift(&r.W[regRNG]) % uint32(hotPages)
				as.WriteWord(hotBase+pn*mem.PageSize+4*(xorshift(&r.W[regRNG])%64), r.W[regTicks])
			}
		}
		// Sequential stream: fresh pages at StreamKBps, wrapping.
		if streamPages > 0 {
			r.W[regStreamAcc] += uint32(spec.StreamKBps * tickMs / 1000 * 65536)
			for r.W[regStreamAcc] >= 65536 {
				r.W[regStreamAcc] -= 65536
				pn := r.W[regStreamPos] % uint32(streamPages)
				as.WriteWord(streamBase+pn*mem.PageSize, r.W[regTicks])
				r.W[regStreamPos]++
			}
		}

		if spec.OutputEveryMs > 0 && r.W[regTicks]%(spec.OutputEveryMs/tickMs) == 0 {
			b.output(ctx, r, fmt.Sprintf("%s: tick %d", spec.Name, r.W[regTicks]))
		}
	}
}

// output writes a line to the program's stdout server, with the
// migration-safe pending protocol.
func (b *body) output(ctx *kernel.ProcCtx, r *kernel.Regs, line string) {
	as := ctx.Space()
	stdout, err := as.ReadWord(0x04) // EnvStdoutPID
	if err != nil || stdout == 0 {
		return
	}
	r.W[regPending] = 1
	ctx.StartSend(vid.PID(stdout), vid.Message{Op: vvm.OpWriteLine, Seg: []byte(line)})
	ctx.AwaitReply()
	r.W[regPending] = 0
}

func readSpec(as *mem.AddressSpace) (*Spec, error) {
	n, err := as.ReadWord(vvm.CodeBase)
	if err != nil || n == 0 || n > 64*1024 {
		return nil, fmt.Errorf("workload: bad spec length")
	}
	blob := make([]byte, n)
	if err := as.ReadAt(vvm.CodeBase+4, blob); err != nil {
		return nil, err
	}
	var spec Spec
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&spec); err != nil {
		return nil, err
	}
	return &spec, nil
}

func pagesOf(kb float64) int {
	return int((kb*1024 + mem.PageSize - 1) / mem.PageSize)
}

func xorshift(s *uint32) uint32 {
	x := *s
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	if x == 0 {
		x = 0x9E3779B9
	}
	*s = x
	return x
}
