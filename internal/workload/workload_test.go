package workload

import (
	"math"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/image"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/sim"
	"vsystem/internal/vvm"
)

// start loads a workload image into a fresh logical host and starts it,
// returning the process and its space.
func start(t *testing.T, eng *sim.Engine, h *kernel.Host, img *image.Image) (*kernel.Process, *mem.AddressSpace) {
	t.Helper()
	lh := h.CreateLH(img.Name, false)
	as, err := lh.CreateSpace(img.SpaceSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteAt(vvm.CodeBase, img.Code); err != nil {
		t.Fatal(err)
	}
	as.ClearDirty()
	p := lh.NewProcess(as.ID, img.Kind, kernel.Regs{})
	h.Start(p)
	return p, as
}

func host(seed int64) (*sim.Engine, *kernel.Host) {
	eng := sim.NewEngine(seed)
	bus := ethernet.NewBus(eng)
	return eng, kernel.NewHost(eng, bus, 0, "w")
}

func TestWorkloadRunsAndExits(t *testing.T) {
	eng, h := host(1)
	img := Image(Spec{Name: "w", HotKB: 8, HotRateKBps: 50, DurationMs: 500}, 0)
	p, _ := start(t, eng, h, img)
	eng.RunFor(5 * time.Second)
	if !p.Dead() {
		t.Fatal("workload did not exit")
	}
	if p.Regs().W[kernel.RegExitCode] != 0 {
		t.Fatalf("exit = %d", p.Regs().W[kernel.RegExitCode])
	}
}

func TestBadSpecFaults(t *testing.T) {
	eng, h := host(2)
	img := &image.Image{Name: "bad", Kind: BodyKind, Code: []byte{0, 0, 0, 0}, SpaceSize: 64 * 1024}
	p, _ := start(t, eng, h, img)
	eng.RunFor(time.Second)
	if !p.Dead() || p.Regs().W[kernel.RegExitCode] != 0xFF {
		t.Fatal("bad spec did not fault")
	}
}

// measureDirty samples KB dirtied in the interval after warmup.
func measureDirty(t *testing.T, spec Spec, warmup, interval time.Duration, samples int) float64 {
	t.Helper()
	eng, h := host(42)
	spec.DurationMs = 0
	img := Image(spec, 0)
	_, as := start(t, eng, h, img)
	eng.RunFor(warmup)
	sum := 0.0
	for i := 0; i < samples; i++ {
		as.ClearDirty()
		eng.RunFor(interval)
		sum += float64(as.DirtyCount())
	}
	return sum / float64(samples)
}

// TestHotSetModelMatchesClosedForm verifies the dirty-page generator
// against its own design equation dirty(t) ≈ H(1-e^(-rt/H)) + s·t.
func TestHotSetModelMatchesClosedForm(t *testing.T) {
	spec := Spec{Name: "model", HotKB: 50, HotRateKBps: 300, StreamKBps: 10, StreamKB: 128}
	for _, iv := range []time.Duration{200 * time.Millisecond, time.Second} {
		tSec := iv.Seconds()
		want := spec.HotKB*(1-math.Exp(-spec.HotRateKBps*tSec/spec.HotKB)) + spec.StreamKBps*tSec
		got := measureDirty(t, spec, 3*time.Second, iv, 4)
		if got < want*0.75-1 || got > want*1.25+1 {
			t.Fatalf("interval %v: dirty %.1f KB, closed form %.1f KB", iv, got, want)
		}
	}
}

// TestPaperSpecsHitTable41 is the package-level version of experiment E3:
// every calibrated workload must land near its Table 4-1 row.
func TestPaperSpecsHitTable41(t *testing.T) {
	intervals := []time.Duration{200 * time.Millisecond, time.Second, 3 * time.Second}
	for _, spec := range PaperSpecs() {
		paper := Table41[spec.Name]
		for i, iv := range intervals {
			got := measureDirty(t, spec, 3*time.Second, iv, 3)
			p := paper[i]
			lo, hi := p*0.5-1.5, p*2+1.5
			if p >= 8 {
				lo, hi = p*0.6, p*1.4
			}
			if got < lo || got > hi {
				t.Errorf("%s @ %v: %.1f KB, paper %.1f KB", spec.Name, iv, got, p)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint32 {
		eng, h := host(7)
		img := Image(Spec{Name: "d", HotKB: 16, HotRateKBps: 100, StreamKBps: 5, StreamKB: 32, DurationMs: 1000}, 0)
		p, as := start(t, eng, h, img)
		eng.RunFor(10 * time.Second)
		if !p.Dead() {
			t.Fatal("not done")
		}
		// Hash the memory contents.
		var sum uint32
		for _, pn := range as.AllPages() {
			for _, b := range as.Page(pn) {
				sum = sum*31 + uint32(b)
			}
		}
		return sum
	}
	if run() != run() {
		t.Fatal("workload memory not deterministic")
	}
}

func TestPaperSpecLookup(t *testing.T) {
	if _, ok := PaperSpec("tex"); !ok {
		t.Fatal("tex missing")
	}
	if _, ok := PaperSpec("nope"); ok {
		t.Fatal("bogus spec found")
	}
	if len(PaperImages()) != 8 {
		t.Fatalf("PaperImages = %d, want 8", len(PaperImages()))
	}
}

func TestImageSpaceSizeCoversWorkingSet(t *testing.T) {
	for _, s := range PaperSpecs() {
		img := Image(s, 0)
		need := uint32(vvm.CodeBase) + uint32((s.HotKB+s.StreamKB)*1024)
		if img.SpaceSize < need {
			t.Errorf("%s: space %d < working set %d", s.Name, img.SpaceSize, need)
		}
	}
}
