package workload

import (
	"fmt"
	"math/rand"
	"time"

	"vsystem/internal/image"
)

// JobClass describes one class of jobs in an open-loop arrival stream.
// The two stock classes follow the latency-critical / best-effort split
// that modern cluster schedulers (sigmaos's lcschedsrv/besched) make
// explicit and that the paper's users made informally: short interactive
// commands the owner is waiting on, and long batch compilations farmed
// out to whatever machines are idle.
type JobClass struct {
	// Name tags the class in image names and report rows.
	Name string
	// Weight is the class's share of arrivals (weights need not sum to 1;
	// they are normalized).
	Weight float64
	// MeanServiceMs is the mean of the exponential service-time draw.
	MeanServiceMs float64
	// MaxServiceMs truncates the draw (keeps the drain phase bounded).
	MaxServiceMs float64
	// QuantumMs buckets service times: each draw rounds up to a multiple,
	// so the class needs only Max/Quantum distinct program images on the
	// file server (a program's run length is baked into its image).
	QuantumMs uint32
	// HotKB / HotRateKBps parameterize the dirty-page behaviour of the
	// running job (see Spec).
	HotKB, HotRateKBps float64
	// PadKB sets the stored image size — the bytes the file server must
	// deliver for every execution of this class.
	PadKB uint32
}

// LatencyCritical is an interactive-command class: sub-second exponential
// service, small image.
func LatencyCritical() JobClass {
	return JobClass{
		Name: "lc", Weight: 0.7,
		MeanServiceMs: 400, MaxServiceMs: 2000, QuantumMs: 200,
		HotKB: 8, HotRateKBps: 100, PadKB: 12,
	}
}

// BestEffort is a batch-compilation class: multi-second service, a
// cc68-sized image.
func BestEffort() JobClass {
	return JobClass{
		Name: "be", Weight: 0.3,
		MeanServiceMs: 2000, MaxServiceMs: 8000, QuantumMs: 500,
		HotKB: 24, HotRateKBps: 50, PadKB: 48,
	}
}

// Arrival is one job in the generated stream.
type Arrival struct {
	// At is the arrival instant, measured from the start of the stream.
	At time.Duration
	// Class indexes OpenLoop.Classes.
	Class int
	// ServiceMs is the quantized service demand.
	ServiceMs uint32
	// Program is the name of the pre-installed image for this job.
	Program string
}

// OpenLoop generates a Poisson arrival stream over a set of job classes.
// The generator is open-loop: arrivals are scheduled ahead of time and do
// not slow down when the cluster backs up, which is what exposes p99/p999
// turnaround differences between selection policies.
type OpenLoop struct {
	// RatePerSec is the aggregate arrival rate across all classes.
	RatePerSec float64
	// Duration is the span of the arrival stream.
	Duration time.Duration
	// Classes are the job classes; arrivals split by Weight.
	Classes []JobClass
	// Seed drives the generator's private rng (independent of the
	// simulation engine's stream, so the same workload can replay against
	// any cluster configuration).
	Seed int64
}

// Schedule draws the full arrival stream. It is deterministic in Seed and
// the generator parameters.
func (o OpenLoop) Schedule() []Arrival {
	rng := rand.New(rand.NewSource(o.Seed))
	totalW := 0.0
	for _, c := range o.Classes {
		totalW += c.Weight
	}
	var out []Arrival
	at := time.Duration(0)
	for {
		at += time.Duration(rng.ExpFloat64() / o.RatePerSec * float64(time.Second))
		if at > o.Duration {
			return out
		}
		ci := 0
		w := rng.Float64() * totalW
		for i, c := range o.Classes {
			if w -= c.Weight; w < 0 {
				ci = i
				break
			}
		}
		c := o.Classes[ci]
		ms := c.quantize(rng.ExpFloat64() * c.MeanServiceMs)
		out = append(out, Arrival{
			At: at, Class: ci, ServiceMs: ms, Program: o.imageName(c, ms),
		})
	}
}

// quantize rounds a service-time draw up to the class's bucket grid,
// clamped to [QuantumMs, MaxServiceMs].
func (c JobClass) quantize(ms float64) uint32 {
	if ms > c.MaxServiceMs {
		ms = c.MaxServiceMs
	}
	q := c.QuantumMs
	n := (uint32(ms) + q - 1) / q * q
	if n < q {
		n = q
	}
	return n
}

// imageName names the bucket image for a class and quantized service time.
func (o OpenLoop) imageName(c JobClass, ms uint32) string {
	return fmt.Sprintf("ol-%s-%dms", c.Name, ms)
}

// Images builds the bucket image set covering every service time
// Schedule can draw, for pre-installation on the file server.
func (o OpenLoop) Images() []*image.Image {
	var imgs []*image.Image
	for _, c := range o.Classes {
		for ms := c.QuantumMs; float64(ms) <= c.MaxServiceMs; ms += c.QuantumMs {
			imgs = append(imgs, Image(Spec{
				Name:        o.imageName(c, ms),
				HotKB:       c.HotKB,
				HotRateKBps: c.HotRateKBps,
				DurationMs:  ms,
			}, c.PadKB*1024))
		}
	}
	return imgs
}
