package display

import (
	"strings"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/kernel"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

func TestWriteAndReadBack(t *testing.T) {
	eng := sim.NewEngine(1)
	bus := ethernet.NewBus(eng)
	home := kernel.NewHost(eng, bus, 0, "ws0")
	remote := kernel.NewHost(eng, bus, 1, "ws1")
	d := Start(home)

	// A process on ANOTHER host writes to ws0's display: terminal output
	// is network-transparent (§2.2).
	var err error
	var back vid.Message
	remote.SpawnServer("writer", 4096, func(ctx *kernel.ProcCtx) {
		for _, line := range []string{"one", "two", "three"} {
			if _, e := ctx.Send(d.PID(), vid.Message{Op: OpWriteLine, Seg: []byte(line)}); e != nil {
				err = e
				return
			}
		}
		back, err = ctx.Send(d.PID(), vid.Message{Op: OpReadBack})
	})
	eng.RunFor(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lines := d.Lines()
	if len(lines) != 3 || lines[0] != "one" || lines[2] != "three" {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.Contains(string(back.Seg), "two\n") {
		t.Fatalf("readback = %q", back.Seg)
	}
}

func TestUnknownOpRefused(t *testing.T) {
	eng := sim.NewEngine(2)
	bus := ethernet.NewBus(eng)
	h := kernel.NewHost(eng, bus, 0, "ws0")
	d := Start(h)
	var rep vid.Message
	h.SpawnServer("writer", 4096, func(ctx *kernel.ProcCtx) {
		rep, _ = ctx.Send(d.PID(), vid.Message{Op: 0x7F})
	})
	eng.RunFor(time.Minute)
	if rep.OK() {
		t.Fatal("unknown op succeeded")
	}
}

func TestLinesIsACopy(t *testing.T) {
	eng := sim.NewEngine(3)
	bus := ethernet.NewBus(eng)
	h := kernel.NewHost(eng, bus, 0, "ws0")
	d := Start(h)
	h.SpawnServer("writer", 4096, func(ctx *kernel.ProcCtx) {
		ctx.Send(d.PID(), vid.Message{Op: OpWriteLine, Seg: []byte("orig")})
	})
	eng.RunFor(time.Minute)
	l := d.Lines()
	l[0] = "mutated"
	if d.Lines()[0] != "orig" {
		t.Fatal("Lines exposed internal state")
	}
}
