// Package display implements the per-workstation display server.
//
// In V, programs perform all terminal output through a display server that
// remains co-resident with the frame buffer it manages (§2.2): the display
// is the one piece of hardware bound to the user's workstation, so output
// is network-transparent — a program writes to the same server PID whether
// it runs at home, remotely, or after migrating. The captured output
// stream is how examples and tests observe program behaviour.
package display

import (
	"time"

	"vsystem/internal/kernel"
	"vsystem/internal/vid"
	"vsystem/internal/vvm"
)

// OpWriteLine appends the segment to the display (re-exported from vvm,
// where it is defined for the OUT instruction).
const OpWriteLine = vvm.OpWriteLine

// OpReadBack returns the captured display contents (tools only).
const OpReadBack uint16 = 0x71

// OpAdopt is the session supervisor's incarnation hand-over notice:
// W0 = the superseded logical host, W1 = its successor. A re-executed
// program replays its output from the start, so the display counts the
// lines each source already delivered and suppresses the successor's
// replay up to that point — the user-visible stream stays exactly-once
// per logical line. Lines from a superseded source (a stale incarnation
// still running across a partition heal) are dropped outright.
const OpAdopt uint16 = 0x72

// drawCPU is the cost of rendering one output line.
const drawCPU = 2 * time.Millisecond

// Server is a workstation's display server.
type Server struct {
	proc  *kernel.Process
	lines []string

	got        map[vid.LHID]int // lines delivered per source logical host
	lead       map[vid.LHID]int // lines a successor must replay silently
	superseded map[vid.LHID]bool
}

// Start spawns the display server on a host.
func Start(h *kernel.Host) *Server {
	s := &Server{
		got:        make(map[vid.LHID]int),
		lead:       make(map[vid.LHID]int),
		superseded: make(map[vid.LHID]bool),
	}
	s.proc = h.SpawnServer("display", 32*1024, s.run)
	return s
}

// PID returns the display server's process identifier — what programs get
// as their standard output in the environment block.
func (s *Server) PID() vid.PID { return s.proc.PID() }

// Lines returns the captured output lines.
func (s *Server) Lines() []string { return append([]string(nil), s.lines...) }

func (s *Server) run(ctx *kernel.ProcCtx) {
	for {
		req := ctx.Receive()
		switch req.Msg.Op {
		case OpWriteLine:
			src := req.Src.LH()
			if s.superseded[src] {
				// A stale incarnation: acknowledge (the writer must not
				// hang) but keep its output off the stream.
				ctx.Reply(req, vid.Message{Op: OpWriteLine})
				continue
			}
			s.got[src]++
			if s.got[src] <= s.lead[src] {
				// Replay of a line a previous incarnation already
				// delivered: suppress it.
				ctx.Reply(req, vid.Message{Op: OpWriteLine})
				continue
			}
			ctx.Compute(drawCPU)
			s.lines = append(s.lines, string(req.Msg.Seg))
			ctx.Reply(req, vid.Message{Op: OpWriteLine})
		case OpAdopt:
			old, next := vid.LHID(req.Msg.W[0]), vid.LHID(req.Msg.W[1])
			// Logical lines delivered so far through the old chain: the old
			// source's own count, unless it never got past replaying its
			// inherited prefix.
			lead := s.got[old]
			if s.lead[old] > lead {
				lead = s.lead[old]
			}
			if lead > s.lead[next] {
				s.lead[next] = lead
			}
			s.superseded[old] = true
			ctx.Reply(req, vid.Message{Op: OpAdopt})
		case OpReadBack:
			var seg []byte
			for _, l := range s.lines {
				seg = append(seg, l...)
				seg = append(seg, '\n')
			}
			if len(seg) > vid.SegMax {
				seg = seg[len(seg)-vid.SegMax:]
			}
			ctx.Reply(req, vid.Message{Op: OpReadBack, Seg: seg})
		default:
			ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		}
	}
}
