package nameserver

import (
	"strings"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/kernel"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

type rig struct {
	eng    *sim.Engine
	ns     *Server
	client *kernel.Host
}

func newRig(seed int64) *rig {
	eng := sim.NewEngine(seed)
	bus := ethernet.NewBus(eng)
	client := kernel.NewHost(eng, bus, 0, "ws0")
	server := kernel.NewHost(eng, bus, 1, "srv")
	return &rig{eng: eng, ns: Start(server), client: client}
}

func (r *rig) call(t *testing.T, msg vid.Message) (vid.Message, error) {
	t.Helper()
	var reply vid.Message
	var err error
	r.client.SpawnServer("caller", 4096, func(ctx *kernel.ProcCtx) {
		reply, err = ctx.Send(vid.GroupNameServers, msg)
	})
	r.eng.RunFor(30 * time.Second)
	return reply, err
}

func TestRegisterLookupUnregister(t *testing.T) {
	r := newRig(1)
	target := vid.NewPID(0x0304, 18)
	if m, err := r.call(t, vid.Message{Op: NsRegister, W: [6]uint32{uint32(target)}, Seg: []byte("txmgr")}); err != nil || !m.OK() {
		t.Fatalf("register: %v %v", m, err)
	}
	m, err := r.call(t, vid.Message{Op: NsLookup, Seg: []byte("txmgr")})
	if err != nil || !m.OK() || vid.PID(m.W[0]) != target {
		t.Fatalf("lookup: %v %v", m, err)
	}
	if m, _ := r.call(t, vid.Message{Op: NsUnregister, Seg: []byte("txmgr")}); !m.OK() {
		t.Fatal("unregister failed")
	}
	if m, err := r.call(t, vid.Message{Op: NsLookup, Seg: []byte("txmgr")}); err == nil && m.OK() {
		t.Fatal("lookup after unregister succeeded")
	}
}

func TestLookupMissing(t *testing.T) {
	r := newRig(2)
	m, err := r.call(t, vid.Message{Op: NsLookup, Seg: []byte("ghost")})
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != vid.CodeNotFound {
		t.Fatalf("code = %d", m.Code)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := newRig(3)
	if m, _ := r.call(t, vid.Message{Op: NsRegister, Seg: []byte("")}); m.OK() {
		t.Fatal("empty registration accepted")
	}
	if m, _ := r.call(t, vid.Message{Op: NsRegister, W: [6]uint32{0}, Seg: []byte("x")}); m.OK() {
		t.Fatal("nil-pid registration accepted")
	}
}

func TestRegisterSelfRetriesUntilServerUp(t *testing.T) {
	eng := sim.NewEngine(4)
	bus := ethernet.NewBus(eng)
	client := kernel.NewHost(eng, bus, 0, "ws0")
	target := vid.NewPID(0x0102, 16)
	// Registrar starts before any name server exists.
	RegisterSelf(client, "late", target)
	eng.RunFor(2 * time.Second)
	// Now the server comes up; the registrar's retries should land.
	server := kernel.NewHost(eng, bus, 1, "srv")
	ns := Start(server)
	eng.RunFor(30 * time.Second)
	if got := ns.Bindings()["late"]; got != target {
		t.Fatalf("binding = %v, want %v", got, target)
	}
}

func TestList(t *testing.T) {
	r := newRig(5)
	r.call(t, vid.Message{Op: NsRegister, W: [6]uint32{uint32(vid.NewPID(1, 16))}, Seg: []byte("bbb")})
	r.call(t, vid.Message{Op: NsRegister, W: [6]uint32{uint32(vid.NewPID(2, 16))}, Seg: []byte("aaa")})
	m, err := r.call(t, vid.Message{Op: NsList})
	if err != nil || !m.OK() {
		t.Fatal(err)
	}
	s := string(m.Seg)
	if !strings.Contains(s, "aaa\t") || !strings.Contains(s, "bbb\t") ||
		strings.Index(s, "aaa") > strings.Index(s, "bbb") {
		t.Fatalf("list = %q", s)
	}
}

func TestLookupHelper(t *testing.T) {
	r := newRig(6)
	target := vid.NewPID(7, 16)
	r.call(t, vid.Message{Op: NsRegister, W: [6]uint32{uint32(target)}, Seg: []byte("svc")})
	var got vid.PID
	var err error
	r.client.SpawnServer("helper", 4096, func(ctx *kernel.ProcCtx) {
		got, err = Lookup(ctx, "svc")
	})
	r.eng.RunFor(30 * time.Second)
	if err != nil || got != target {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
}
