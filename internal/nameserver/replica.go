package nameserver

import (
	"encoding/binary"
	"sort"

	"vsystem/internal/kernel"
	"vsystem/internal/rsm"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// Replicated name service: StartReplica members commit NsRegister and
// NsUnregister through a consensus log and answer NsLookup/NsList from the
// leader or any caught-up follower, so the cluster's boot bindings survive
// the death of the server machine that happened to hold them. Clients keep
// the group-send protocol unchanged — a replica that cannot answer stays
// silent and the one that can replies first.

// StartReplica spawns name-server replica id of n on a host. The caller
// owns store and re-passes it on restart.
func StartReplica(h *kernel.Host, id, n int, store *rsm.Store) *Server {
	s := &Server{names: make(map[string]vid.PID)}
	s.proc = h.SpawnServer("nameserver", 64*1024, s.run)
	h.JoinGroup(vid.GroupNameServers, s.proc.PID())
	s.rep = rsm.New(h, rsm.Config{
		Name: "ns", Group: vid.GroupNSRSM, ID: id, N: n, SvcPID: s.proc.PID(),
	}, &nsSM{s}, store)
	return s
}

// Replica returns the server's consensus replica (nil when unreplicated).
func (s *Server) Replica() *rsm.Replica { return s.rep }

// canServe reports whether this replica may answer: registrations need the
// fenced leader, lookups a leader or caught-up follower.
func (s *Server) canServe(now sim.Time, op uint16) bool {
	if s.rep == nil {
		return true
	}
	switch op {
	case NsRegister, NsUnregister:
		return s.rep.IsLeader()
	default:
		return s.rep.IsLeader() || s.rep.Synced(now)
	}
}

// Name-service log command: [op uint16][pid uint32][name...].
func encodeNsCmd(op uint16, pid vid.PID, name string) []byte {
	b := make([]byte, 6+len(name))
	binary.LittleEndian.PutUint16(b[0:], op)
	binary.LittleEndian.PutUint32(b[2:], uint32(pid))
	copy(b[6:], name)
	return b
}

type nsSM struct{ s *Server }

func (f *nsSM) Apply(t *sim.Task, cmd []byte) []byte {
	if len(cmd) < 6 {
		return nil
	}
	op := binary.LittleEndian.Uint16(cmd[0:])
	pid := vid.PID(binary.LittleEndian.Uint32(cmd[2:]))
	name := string(cmd[6:])
	switch op {
	case NsRegister:
		f.s.names[name] = pid
	case NsUnregister:
		delete(f.s.names, name)
	}
	return nil
}

// Snapshot renders the binding table deterministically (sorted names).
func (f *nsSM) Snapshot() []byte {
	names := make([]string, 0, len(f.s.names))
	for n := range f.s.names {
		names = append(names, n)
	}
	sort.Strings(names)
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(names)))
	for _, n := range names {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(n)))
		b = append(b, n...)
		b = binary.LittleEndian.AppendUint32(b, uint32(f.s.names[n]))
	}
	return b
}

func (f *nsSM) Restore(snap []byte) {
	if len(snap) < 4 {
		return
	}
	n := binary.LittleEndian.Uint32(snap)
	b := snap[4:]
	m := make(map[string]vid.PID, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return
		}
		nl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < nl+4 {
			return
		}
		name := string(b[:nl])
		b = b[nl:]
		m[name] = vid.PID(binary.LittleEndian.Uint32(b))
		b = b[4:]
	}
	f.s.names = m
}
