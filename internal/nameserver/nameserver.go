// Package nameserver implements the global symbolic-name service.
//
// §6 of the paper states the residual-dependency principle: "name bindings
// in V are stored in a cache in the program's address space as well as in
// global servers". Resident servers register their PIDs here at boot; the
// program manager seeds every new program's environment-block name cache
// from the bindings it knows; cache misses fall back to a query of the
// well-known name-server group. Because the bindings live in the program's
// own address space, they migrate with it — no lookup state is left on the
// previous host.
package nameserver

import (
	"sort"
	"strings"
	"time"

	"vsystem/internal/kernel"
	"vsystem/internal/params"
	"vsystem/internal/rsm"
	"vsystem/internal/vid"
)

// Operations (0x90 region).
const (
	// NsRegister: Seg=name, W0=pid.
	NsRegister uint16 = 0x90 + iota
	// NsLookup: Seg=name → W0=pid.
	NsLookup
	// NsUnregister: Seg=name.
	NsUnregister
	// NsList: → Seg = name NUL pid-hex NUL ... (tools).
	NsList
)

// Server is a global name server.
type Server struct {
	proc  *kernel.Process
	names map[string]vid.PID
	rep   *rsm.Replica // nil when the server runs unreplicated
}

// Start spawns a name server on a host and joins the name-server group.
func Start(h *kernel.Host) *Server {
	s := &Server{names: make(map[string]vid.PID)}
	s.proc = h.SpawnServer("nameserver", 64*1024, s.run)
	h.JoinGroup(vid.GroupNameServers, s.proc.PID())
	return s
}

// PID returns the name server's process identifier.
func (s *Server) PID() vid.PID { return s.proc.PID() }

// Bindings returns a copy of the current table (tools/tests).
func (s *Server) Bindings() map[string]vid.PID {
	out := make(map[string]vid.PID, len(s.names))
	for k, v := range s.names {
		out[k] = v
	}
	return out
}

func (s *Server) run(ctx *kernel.ProcCtx) {
	for {
		req := ctx.Receive()
		m := req.Msg
		// Replicated name servers answer only from an authoritative copy;
		// name-service requests are always group-addressed, so a replica
		// that cannot serve simply stays silent.
		if !s.canServe(ctx.Now(), m.Op) {
			s.proc.Port().Drop(req)
			continue
		}
		ctx.Compute(params.KernelOpCPU)
		switch m.Op {
		case NsRegister:
			name := m.SegString()
			if name == "" || m.W[0] == 0 {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			if s.rep != nil {
				if _, err := s.rep.Submit(ctx, encodeNsCmd(m.Op, vid.PID(m.W[0]), name)); err != nil {
					ctx.Reply(req, vid.ErrMsg(vid.CodeTimeout))
					continue
				}
			} else {
				s.names[name] = vid.PID(m.W[0])
			}
			ctx.Reply(req, vid.Message{Op: m.Op})
		case NsLookup:
			pid, ok := s.names[m.SegString()]
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{uint32(pid)}})
		case NsUnregister:
			if s.rep != nil {
				if _, err := s.rep.Submit(ctx, encodeNsCmd(m.Op, vid.Nil, m.SegString())); err != nil {
					ctx.Reply(req, vid.ErrMsg(vid.CodeTimeout))
					continue
				}
			} else {
				delete(s.names, m.SegString())
			}
			ctx.Reply(req, vid.Message{Op: m.Op})
		case NsList:
			names := make([]string, 0, len(s.names))
			for n := range s.names {
				names = append(names, n)
			}
			sort.Strings(names)
			var sb strings.Builder
			for _, n := range names {
				sb.WriteString(n)
				sb.WriteByte('\t')
				sb.WriteString(s.names[n].String())
				sb.WriteByte('\n')
			}
			ctx.Reply(req, vid.Message{Op: m.Op, Seg: []byte(sb.String())})
		default:
			ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		}
	}
}

// RegisterSelf spawns a registrar process on h that announces a binding to
// the name-server group, retrying until a name server accepts it. Resident
// servers call this at boot.
func RegisterSelf(h *kernel.Host, name string, pid vid.PID) {
	RegisterSelfAt(h, name, pid, 0)
}

// RegisterSelfAt is RegisterSelf with an initial delay. Large clusters
// stagger their hosts' boot registrations: several hundred simultaneous
// group sends against the one name server generate a retransmission herd
// whose packet-processing load alone exceeds the server host's capacity,
// so the herd never drains.
func RegisterSelfAt(h *kernel.Host, name string, pid vid.PID, delay time.Duration) {
	h.SpawnServer("register:"+name, 4096, func(ctx *kernel.ProcCtx) {
		if delay > 0 {
			ctx.Sleep(delay)
		}
		for attempt := 0; attempt < 20; attempt++ {
			m, err := ctx.Send(vid.GroupNameServers, vid.Message{
				Op:  NsRegister,
				W:   [6]uint32{uint32(pid)},
				Seg: []byte(name),
			})
			if err == nil && m.OK() {
				return
			}
			ctx.Sleep(500 * time.Millisecond)
		}
	})
}

// Lookup resolves a name through the name-server group with one bounded
// retry: the first query can land while the server that held the binding
// is dead or a replica group is mid-election, and a single follow-up send
// reaches whichever replica has (re)gained authority. Not-found is a
// definitive answer and is not retried.
func Lookup(ctx *kernel.ProcCtx, name string) (vid.PID, error) {
	q := vid.Message{Op: NsLookup, Seg: []byte(name)}
	m, err := ctx.Send(vid.GroupNameServers, q)
	if err != nil || (!m.OK() && m.Code != vid.CodeNotFound) {
		m, err = ctx.Send(vid.GroupNameServers, q)
	}
	if err != nil {
		return vid.Nil, err
	}
	if !m.OK() {
		return vid.Nil, m.Err()
	}
	return vid.PID(m.W[0]), nil
}
