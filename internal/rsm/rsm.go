// Package rsm is a deterministic replicated-state-machine layer over the V
// ipc transport — the consensus substrate that removes the home services'
// last single points of failure (ROADMAP item 2, the paper's §2.3 residual
// -dependency stance taken to its conclusion).
//
// The protocol is Raft-shaped: a replica set of N (typically 3) elects a
// leader with randomized election timeouts, the leader replicates a command
// log to its followers with append-entries piggybacking on the ipc bulk
// machinery (steady-state appends are single transactions; catch-up streams
// batches through an ipc.Window; snapshots ship as pipelined chunks), and a
// command is applied to the deterministic state machine exactly when it
// commits on a majority. Rejoining replicas catch up from the log or, past
// a compaction point, from a snapshot.
//
// Determinism: every timeout is drawn from the simulated clock, and the
// "randomized" election timeout is a hash of (station, replica id, term) —
// staggered per term like a random draw, but byte-reproducible for a fixed
// seed. State machines must be deterministic functions of the command
// sequence; anything time-like a command needs (lease stamps) must ride
// inside the command, never be read from the applying replica's clock.
//
// Durability model: each replica's persistent state (term, vote, log,
// snapshot) lives in a Store owned by the cluster harness — the simulation
// analog of the replica's disk. A crash kills the replica's processes; a
// restart re-attaches the same Store, so Raft's safety argument (a vote,
// once cast, survives reboot) holds across crash/rejoin cycles.
package rsm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Replication protocol operations (0xA0 region).
const (
	// OpVote: Seg=VoteReq → Seg=VoteReply.
	OpVote uint16 = 0xA0 + iota
	// OpAppend: Seg=AppendReq → W0=term, W1=ok, W2=match index (ok) or
	// retry-from hint (reject).
	OpAppend
	// OpSnap: Seg=SnapChunk → W0=term, W1=ok.
	OpSnap
	// OpHello: a (re)joining replica announcing itself — W0=id, W1=its
	// replica-process PID, W2=its service PID → same words for the
	// responder, plus W3=leader id+1 (0 unknown), W4=term, W5=leader PID.
	OpHello
)

// StateMachine is the deterministic service state a replica set agrees on.
// Apply runs in commit order on every replica and returns the result bytes
// handed back to the leader-side submitter; it may charge simulated CPU
// against the given task but must not depend on wall/sim time or host
// identity for its state transitions.
type StateMachine interface {
	Apply(t *sim.Task, cmd []byte) []byte
	Snapshot() []byte
	Restore(snap []byte)
}

// Config wires one replica of a replica set.
type Config struct {
	Name   string  // service name (process labels, diagnostics)
	Group  vid.PID // the set's private replication group
	ID     int     // this replica's stable index, 0..N-1
	N      int     // replica-set size
	SvcPID vid.PID // co-located service process, advertised as redirect hint
}

// Store is a replica's durable state — the harness-owned stand-in for its
// disk. It must be created once per replica slot and re-passed to New on
// every restart of that replica's host.
type Store struct {
	Term      uint32
	VotedFor  int32 // replica id, -1 = none
	SnapData  []byte
	SnapIndex uint32 // index the snapshot covers through (0 = none)
	SnapTerm  uint32
	Log       []Entry // Log[i] holds index SnapIndex+1+i
}

// NewStore returns an empty durable store for one replica slot.
func NewStore() *Store { return &Store{VotedFor: -1} }

// Stats counts a replica's consensus activity; each counter is held to
// parity with the trace events the replica publishes.
type Stats struct {
	Elections    int64 // EvElect parity
	Failovers    int64 // EvFailover parity
	Commits      int64 // EvCommit parity (commit-index advances)
	Applied      int64
	SnapSends    int64
	SnapInstalls int64
}

type role uint8

const (
	follower role = iota
	candidate
	leader
)

func (r role) String() string {
	switch r {
	case leader:
		return "leader"
	case candidate:
		return "candidate"
	default:
		return "follower"
	}
}

// ErrNotLeader is returned by Submit on a non-leader replica; callers
// redirect to LeaderSvcPID (CodeNotLeader on the wire) or fall back to a
// group send.
var ErrNotLeader = errors.New("rsm: not leader")

// ErrTimeout is returned when a submitted entry fails to commit within
// params.RsmSubmitTimeout — the fate of every proposal made by a leader
// that has lost its majority (the stale-leader fence).
var ErrTimeout = errors.New("rsm: submit timed out awaiting commit")

// ErrTooBig is returned for commands over params.RsmMaxCmd.
var ErrTooBig = errors.New("rsm: command exceeds RsmMaxCmd")

type snapIn struct {
	term      uint32
	lastIndex uint32
	lastTerm  uint32
	total     uint32
	buf       []byte
	got       map[uint32]bool
	have      uint32
}

// Replica is one member of a replicated state machine.
type Replica struct {
	host *kernel.Host
	cfg  Config
	sm   StateMachine
	st   *Store

	proc *kernel.Process

	role     role
	leaderID int // last known leader, -1
	peerPID  []vid.PID
	svcPID   []vid.PID

	commit       uint32
	applied      uint32
	applying     bool
	leaderCommit uint32 // leader's commit index as last advertised

	electionDeadline  sim.Time
	lastLeaderContact sim.Time
	rounds            uint32 // campaign attempts, restaggers retry timeouts

	// leader volatile state
	nextIndex  []uint32
	matchIndex []uint32
	barrier    uint32 // index of this term's no-op fence entry

	repWake   sim.WaitQ // replication workers: new work / leadership
	applyWake sim.WaitQ // Submit waiters
	pending   map[uint32]struct{}
	results   map[uint32][]byte

	snap *snapIn

	stats Stats
}

// New attaches a replica to a host: restores the state machine from the
// durable store, spawns the consensus process plus one replication worker
// per peer, and joins the set's replication group. The same Store must be
// re-passed on every restart of this replica slot.
func New(h *kernel.Host, cfg Config, sm StateMachine, store *Store) *Replica {
	if cfg.N < 1 || cfg.ID < 0 || cfg.ID >= cfg.N {
		panic(fmt.Sprintf("rsm: bad replica config id=%d n=%d", cfg.ID, cfg.N))
	}
	r := &Replica{
		host:     h,
		cfg:      cfg,
		sm:       sm,
		st:       store,
		leaderID: -1,
		peerPID:  make([]vid.PID, cfg.N),
		svcPID:   make([]vid.PID, cfg.N),
		pending:  make(map[uint32]struct{}),
		results:  make(map[uint32][]byte),
	}
	r.svcPID[cfg.ID] = cfg.SvcPID
	if store.SnapIndex > 0 {
		sm.Restore(store.SnapData)
	}
	r.commit = store.SnapIndex
	r.applied = store.SnapIndex
	r.proc = h.SpawnServer(fmt.Sprintf("rsm-%s-%d", cfg.Name, cfg.ID), 64*1024, r.run)
	h.JoinGroup(cfg.Group, r.proc.PID())
	for p := 0; p < cfg.N; p++ {
		if p == cfg.ID {
			continue
		}
		peer := p
		h.SpawnServer(fmt.Sprintf("rsm-%s-%d-rep%d", cfg.Name, cfg.ID, peer),
			16*1024, func(ctx *kernel.ProcCtx) { r.replicate(ctx, peer) })
	}
	return r
}

// ---------------------------------------------------------------- accessors

// ID returns the replica's stable index.
func (r *Replica) ID() int { return r.cfg.ID }

// PID returns the consensus process's identifier.
func (r *Replica) PID() vid.PID { return r.proc.PID() }

// Term returns the replica's current term.
func (r *Replica) Term() uint32 { return r.st.Term }

// Role returns the replica's current role as a string (tools).
func (r *Replica) Role() string { return r.role.String() }

// CommitIndex returns the replica's commit index.
func (r *Replica) CommitIndex() uint32 { return r.commit }

// AppliedIndex returns the replica's applied index.
func (r *Replica) AppliedIndex() uint32 { return r.applied }

// Stats returns a snapshot of the consensus counters.
func (r *Replica) Stats() Stats { return r.stats }

// IsLeader reports fenced leadership: the replica holds the role AND its
// term-start barrier has committed, so a majority has acknowledged this
// term. Services gate externally visible leader actions on this, never on
// the raw role.
func (r *Replica) IsLeader() bool {
	return r.role == leader && r.barrier > 0 && r.applied >= r.barrier
}

// LeaderID returns the last known leader's replica id, or -1.
func (r *Replica) LeaderID() int {
	if r.role == leader {
		return r.cfg.ID
	}
	return r.leaderID
}

// LeaderSvcPID returns the co-located service process of the last known
// leader (the CodeNotLeader redirect hint), or vid.Nil.
func (r *Replica) LeaderSvcPID() vid.PID {
	id := r.LeaderID()
	if id < 0 {
		return vid.Nil
	}
	return r.svcPID[id]
}

// Synced reports whether this replica may answer reads: it is the leader,
// or a follower with fresh leader contact that has applied everything the
// leader had committed as of that contact. Stale or partitioned followers
// stay silent and reads fall to the leader.
func (r *Replica) Synced(now sim.Time) bool {
	if r.role == leader {
		return r.IsLeader()
	}
	if r.snap != nil || r.applied < r.leaderCommit {
		return false
	}
	return r.leaderID >= 0 && now.Sub(r.lastLeaderContact) <= params.RsmSyncWindow
}

// ------------------------------------------------------------------ log ops

func (r *Replica) lastIndex() uint32 { return r.st.SnapIndex + uint32(len(r.st.Log)) }

func (r *Replica) lastTerm() uint32 {
	if len(r.st.Log) > 0 {
		return r.st.Log[len(r.st.Log)-1].Term
	}
	return r.st.SnapTerm
}

// termAt returns the term of the entry at idx, or 0 when unknown
// (compacted away or beyond the tail).
func (r *Replica) termAt(idx uint32) uint32 {
	switch {
	case idx == r.st.SnapIndex:
		return r.st.SnapTerm
	case idx > r.st.SnapIndex && idx <= r.lastIndex():
		return r.st.Log[idx-r.st.SnapIndex-1].Term
	default:
		return 0
	}
}

func (r *Replica) entryAt(idx uint32) Entry { return r.st.Log[idx-r.st.SnapIndex-1] }

func (r *Replica) appendLocal(cmd []byte) uint32 {
	r.st.Log = append(r.st.Log, Entry{Term: r.st.Term, Cmd: cmd})
	idx := r.lastIndex()
	r.matchIndex[r.cfg.ID] = idx
	return idx
}

// ----------------------------------------------------------------- main loop

func (r *Replica) run(ctx *kernel.ProcCtx) {
	r.resetElectionTimer(ctx.Now())
	r.hello(ctx)
	for {
		var req *ipc.Req
		if r.role == leader {
			req = ctx.ReceiveTimeout(params.RsmHeartbeatInterval)
		} else {
			d := r.electionDeadline.Sub(ctx.Now())
			if d <= 0 {
				r.campaign(ctx)
				continue
			}
			req = ctx.ReceiveTimeout(d)
		}
		if req == nil {
			continue
		}
		if req.Src == ctx.PID() {
			// own group-delivered request (vote/hello multicast loopback)
			r.proc.Port().Drop(req)
			continue
		}
		switch req.Msg.Op {
		case OpVote:
			r.handleVote(ctx, req)
		case OpAppend:
			r.handleAppend(ctx, req)
		case OpSnap:
			r.handleSnap(ctx, req)
		case OpHello:
			r.handleHello(ctx, req)
		default:
			ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		}
	}
}

// electionTimeout derives this term's randomized timeout: a deterministic
// hash of (station, id, term, campaign round) spread over
// RsmElectionTimeoutSpread, so colliding candidates stagger differently
// every attempt. The round counter matters because failed pre-votes leave
// the term unchanged — without it two colliding pre-voters would retry in
// lockstep forever.
func (r *Replica) electionTimeout() time.Duration {
	x := uint32(r.host.NIC.MAC())*2654435761 + uint32(r.cfg.ID)*97 +
		r.st.Term*40503 + r.rounds*7919
	x ^= x >> 13
	x *= 2246822519
	x ^= x >> 11
	spread := uint32(params.RsmElectionTimeoutSpread / time.Millisecond)
	return params.RsmElectionTimeoutMin + time.Duration(x%spread)*time.Millisecond
}

func (r *Replica) resetElectionTimer(now sim.Time) {
	r.electionDeadline = now.Add(r.electionTimeout())
}

// stepDown adopts a higher term and reverts to follower.
func (r *Replica) stepDown(term uint32, now sim.Time) {
	wasLeader := r.role == leader
	// Clear the vote only when adopting a strictly higher term: a same-term
	// step-down (candidate yielding to the term's elected leader) must keep
	// VotedFor, or the one-vote-per-term invariant breaks.
	if term > r.st.Term {
		r.st.Term = term
		r.st.VotedFor = -1
	}
	r.role = follower
	r.barrier = 0
	r.resetElectionTimer(now)
	if wasLeader {
		// fail Submit waiters promptly and park the workers
		r.applyWake.WakeAll()
		r.repWake.WakeAll()
	}
}

func (r *Replica) learnPeer(id int, pid, svc vid.PID) {
	if id < 0 || id >= r.cfg.N || id == r.cfg.ID {
		return
	}
	changed := pid != vid.Nil && r.peerPID[id] != pid
	if pid != vid.Nil {
		r.peerPID[id] = pid
	}
	if svc != vid.Nil {
		r.svcPID[id] = svc
	}
	if changed {
		r.repWake.WakeAll()
	}
}

func (r *Replica) publish(kind trace.Kind, prio, size, peer int) {
	r.host.Trace().Publish(trace.Event{
		At:   r.host.Eng.Now(),
		Host: uint16(r.host.NIC.MAC()),
		Kind: kind,
		LH:   r.cfg.Group.LH(),
		Prio: prio,
		Size: size,
		Peer: uint16(peer),
	})
}

// hello announces a (re)joining replica to the group so live peers learn
// its fresh process PIDs, and adopts whatever term/leader the replies
// reveal. At boot all replicas gather simultaneously and the replies miss
// their windows — the peer tables fill from the requests instead.
func (r *Replica) hello(ctx *kernel.ProcCtx) {
	reps, err := ctx.SendGather(r.cfg.Group, vid.Message{
		Op: OpHello,
		W: [6]uint32{uint32(r.cfg.ID), uint32(r.proc.PID()),
			uint32(r.cfg.SvcPID)},
	}, params.RsmGatherWindow)
	if err != nil {
		return
	}
	for _, g := range reps {
		m := g.Msg
		if !m.OK() {
			continue
		}
		r.learnPeer(int(m.W[0]), vid.PID(m.W[1]), vid.PID(m.W[2]))
		if m.W[4] > r.st.Term {
			r.stepDown(m.W[4], ctx.Now())
		}
		if lid := int(m.W[3]) - 1; lid >= 0 && lid < r.cfg.N && r.role != leader {
			r.leaderID = lid
			r.learnPeer(lid, vid.PID(m.W[5]), vid.Nil)
		}
	}
}

func (r *Replica) handleHello(ctx *kernel.ProcCtx, req *ipc.Req) {
	m := req.Msg
	r.learnPeer(int(m.W[0]), vid.PID(m.W[1]), vid.PID(m.W[2]))
	ctx.Reply(req, vid.Message{Op: OpHello, W: [6]uint32{
		uint32(r.cfg.ID), uint32(r.proc.PID()), uint32(r.cfg.SvcPID),
		uint32(r.LeaderID() + 1), r.st.Term, uint32(r.leaderPIDHint()),
	}})
}

func (r *Replica) leaderPIDHint() vid.PID {
	if r.role == leader {
		return r.proc.PID()
	}
	if r.leaderID >= 0 {
		return r.peerPID[r.leaderID]
	}
	return vid.Nil
}

// ----------------------------------------------------------------- election

// campaign runs a pre-vote round and, if a majority would elect us, a real
// election. Pre-vote (Ongaro §9.6) keeps a rejoining or partitioned replica
// from inflating the cluster term and deposing a healthy leader: the probe
// carries term+1 but nobody's persistent state moves until a majority has
// confirmed it would grant.
func (r *Replica) campaign(ctx *kernel.ProcCtx) {
	r.rounds++
	if !r.preVote(ctx) {
		r.resetElectionTimer(ctx.Now())
		return
	}
	r.st.Term++
	r.st.VotedFor = int32(r.cfg.ID)
	r.role = candidate
	r.resetElectionTimer(ctx.Now())
	term := r.st.Term
	seg := EncodeVoteReq(VoteReq{
		Term:      term,
		Cand:      uint32(r.cfg.ID),
		CandPID:   uint32(r.proc.PID()),
		SvcPID:    uint32(r.cfg.SvcPID),
		LastIndex: r.lastIndex(),
		LastTerm:  r.lastTerm(),
	})
	reps, err := ctx.SendGather(r.cfg.Group,
		vid.Message{Op: OpVote, Seg: seg}, params.RsmGatherWindow)
	if r.role != candidate || r.st.Term != term {
		return // a leader emerged while we gathered
	}
	granted := 1 // own vote
	if err == nil {
		for _, g := range reps {
			vr, derr := DecodeVoteReply(g.Msg.Seg)
			if derr != nil || !g.Msg.OK() {
				continue
			}
			r.learnPeer(int(vr.Voter), vid.PID(vr.VoterPID), vid.PID(vr.SvcPID))
			if vr.Term > r.st.Term {
				r.stepDown(vr.Term, ctx.Now())
				return
			}
			if vr.Term == term && vr.Granted && int(vr.Voter) != r.cfg.ID {
				granted++
			}
		}
	}
	if granted*2 <= r.cfg.N {
		return // no majority this round; the next timeout re-campaigns
	}
	r.becomeLeader(ctx)
}

// preVote polls the group at term+1 without mutating anyone's state.
// Returns true when a majority would grant a real vote.
func (r *Replica) preVote(ctx *kernel.ProcCtx) bool {
	seg := EncodeVoteReq(VoteReq{
		Term:      r.st.Term + 1,
		Pre:       true,
		Cand:      uint32(r.cfg.ID),
		CandPID:   uint32(r.proc.PID()),
		SvcPID:    uint32(r.cfg.SvcPID),
		LastIndex: r.lastIndex(),
		LastTerm:  r.lastTerm(),
	})
	reps, err := ctx.SendGather(r.cfg.Group,
		vid.Message{Op: OpVote, Seg: seg}, params.RsmGatherWindow)
	granted := 1 // own vote
	if err == nil {
		for _, g := range reps {
			vr, derr := DecodeVoteReply(g.Msg.Seg)
			if derr != nil || !g.Msg.OK() {
				continue
			}
			r.learnPeer(int(vr.Voter), vid.PID(vr.VoterPID), vid.PID(vr.SvcPID))
			if vr.Term > r.st.Term {
				// the cluster has moved on — adopt its term, stay follower
				r.stepDown(vr.Term, ctx.Now())
				return false
			}
			if vr.Granted && int(vr.Voter) != r.cfg.ID {
				granted++
			}
		}
	}
	return granted*2 > r.cfg.N
}

func (r *Replica) becomeLeader(ctx *kernel.ProcCtx) {
	prev := r.leaderID
	r.role = leader
	r.leaderID = r.cfg.ID
	r.nextIndex = make([]uint32, r.cfg.N)
	r.matchIndex = make([]uint32, r.cfg.N)
	for i := range r.nextIndex {
		r.nextIndex[i] = r.lastIndex() + 1
	}
	r.matchIndex[r.cfg.ID] = r.lastIndex()
	r.stats.Elections++
	r.publish(trace.EvElect, int(r.st.Term), r.cfg.ID, 0)
	if prev >= 0 && prev != r.cfg.ID {
		r.stats.Failovers++
		r.publish(trace.EvFailover, int(r.st.Term), r.cfg.ID, prev)
	}
	// Term-start barrier: an empty entry committed in the new term. It
	// fences leadership (IsLeader waits for it) and pulls any earlier-term
	// entries to commit, per the Raft commit rule.
	r.barrier = r.appendLocal(nil)
	r.advanceCommit(ctx.Task())
	r.repWake.WakeAll()
}

func (r *Replica) handleVote(ctx *kernel.ProcCtx, req *ipc.Req) {
	vr, err := DecodeVoteReq(req.Msg.Seg)
	if err != nil {
		ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		return
	}
	r.learnPeer(int(vr.Cand), vid.PID(vr.CandPID), vid.PID(vr.SvcPID))
	upToDate := vr.LastTerm > r.lastTerm() ||
		(vr.LastTerm == r.lastTerm() && vr.LastIndex >= r.lastIndex())
	if vr.Pre {
		// Pre-vote probe: answer whether we WOULD grant, touching nothing.
		// A replica that is the leader, or has heard from one within the
		// sticky window, denies — this is what fences rejoin disruption.
		liveLeader := r.role == leader || (r.leaderID >= 0 &&
			ctx.Now().Sub(r.lastLeaderContact) < params.RsmStickyLeader)
		ctx.Reply(req, vid.Message{Op: OpVote, Seg: EncodeVoteReply(VoteReply{
			Term:     r.st.Term,
			Granted:  vr.Term >= r.st.Term && upToDate && !liveLeader,
			Voter:    uint32(r.cfg.ID),
			VoterPID: uint32(r.proc.PID()),
			SvcPID:   uint32(r.cfg.SvcPID),
		})})
		return
	}
	if vr.Term > r.st.Term {
		r.stepDown(vr.Term, ctx.Now())
	}
	granted := false
	if vr.Term == r.st.Term && upToDate &&
		(r.st.VotedFor < 0 || r.st.VotedFor == int32(vr.Cand)) {
		granted = true
		r.st.VotedFor = int32(vr.Cand)
		r.resetElectionTimer(ctx.Now())
	}
	ctx.Reply(req, vid.Message{Op: OpVote, Seg: EncodeVoteReply(VoteReply{
		Term:     r.st.Term,
		Granted:  granted,
		Voter:    uint32(r.cfg.ID),
		VoterPID: uint32(r.proc.PID()),
		SvcPID:   uint32(r.cfg.SvcPID),
	})})
}

// -------------------------------------------------------- follower append/snap

func (r *Replica) handleAppend(ctx *kernel.ProcCtx, req *ipc.Req) {
	a, err := DecodeAppendReq(req.Msg.Seg)
	if err != nil {
		ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		return
	}
	if a.Term < r.st.Term {
		ctx.Reply(req, vid.Message{Op: OpAppend, W: [6]uint32{r.st.Term, 0, 0}})
		return
	}
	if a.Term > r.st.Term || r.role != follower {
		r.stepDown(a.Term, ctx.Now())
	}
	r.leaderID = int(a.Leader)
	r.learnPeer(int(a.Leader), vid.PID(a.LeaderPID), vid.PID(a.SvcPID))
	r.resetElectionTimer(ctx.Now())
	r.lastLeaderContact = ctx.Now()
	r.leaderCommit = a.Commit

	// log consistency check
	if a.PrevIndex > r.lastIndex() ||
		(a.PrevIndex >= r.st.SnapIndex && r.termAt(a.PrevIndex) != a.PrevTerm) {
		hint := r.lastIndex() + 1
		if a.PrevIndex < hint {
			hint = a.PrevIndex // conflicting term: back the leader up
		}
		if hint <= r.st.SnapIndex {
			hint = r.st.SnapIndex + 1
		}
		ctx.Reply(req, vid.Message{Op: OpAppend, W: [6]uint32{r.st.Term, 0, hint}})
		return
	}
	idx := a.PrevIndex
	for _, e := range a.Entries {
		idx++
		if idx <= r.st.SnapIndex {
			continue // compacted away: necessarily identical
		}
		if idx <= r.lastIndex() {
			if r.termAt(idx) == e.Term {
				continue
			}
			r.st.Log = r.st.Log[:idx-r.st.SnapIndex-1]
		}
		r.st.Log = append(r.st.Log, e)
	}
	match := a.PrevIndex + uint32(len(a.Entries))
	if c := min32(a.Commit, r.lastIndex()); c > r.commit {
		r.noteCommit(ctx.Task(), c)
	}
	ctx.Reply(req, vid.Message{Op: OpAppend, W: [6]uint32{r.st.Term, 1, match}})
}

func (r *Replica) handleSnap(ctx *kernel.ProcCtx, req *ipc.Req) {
	c, err := DecodeSnapChunk(req.Msg.Seg)
	if err != nil {
		ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		return
	}
	if c.Term < r.st.Term {
		ctx.Reply(req, vid.Message{Op: OpSnap, W: [6]uint32{r.st.Term, 0}})
		return
	}
	if c.Term > r.st.Term || r.role != follower {
		r.stepDown(c.Term, ctx.Now())
	}
	r.leaderID = int(c.Leader)
	r.learnPeer(int(c.Leader), vid.PID(c.LeaderPID), vid.PID(c.SvcPID))
	r.resetElectionTimer(ctx.Now())
	r.lastLeaderContact = ctx.Now()

	if c.LastIndex <= r.applied {
		// stale transfer: already at or past this snapshot
		r.snap = nil
		ctx.Reply(req, vid.Message{Op: OpSnap, W: [6]uint32{r.st.Term, 1}})
		return
	}
	if r.snap == nil || r.snap.term != c.Term ||
		r.snap.lastIndex != c.LastIndex || r.snap.total != c.Total {
		r.snap = &snapIn{
			term: c.Term, lastIndex: c.LastIndex, lastTerm: c.LastTerm,
			total: c.Total, buf: make([]byte, c.Total),
			got: make(map[uint32]bool),
		}
	}
	s := r.snap
	if !s.got[c.Offset] {
		s.got[c.Offset] = true
		copy(s.buf[c.Offset:], c.Data)
		s.have += uint32(len(c.Data))
	}
	if s.have >= s.total {
		r.installSnapshot(s)
	}
	ctx.Reply(req, vid.Message{Op: OpSnap, W: [6]uint32{r.st.Term, 1}})
}

func (r *Replica) installSnapshot(s *snapIn) {
	r.sm.Restore(s.buf)
	r.st.SnapData = s.buf
	r.st.SnapIndex = s.lastIndex
	r.st.SnapTerm = s.lastTerm
	r.st.Log = nil
	r.applied = s.lastIndex
	if s.lastIndex > r.commit {
		r.commit = s.lastIndex
	}
	r.snap = nil
	r.stats.SnapInstalls++
	r.applyWake.WakeAll()
}

// ------------------------------------------------------------ commit + apply

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// noteCommit advances the commit index and applies; every replica counts
// and publishes its own advances (EvCommit parity).
func (r *Replica) noteCommit(t *sim.Task, to uint32) {
	if to <= r.commit {
		return
	}
	advanced := to - r.commit
	r.commit = to
	r.stats.Commits++
	r.publish(trace.EvCommit, int(r.st.Term), int(advanced), 0)
	r.applyAll(t)
}

// advanceCommit recomputes the leader's commit index from the majority
// match (only entries of the current term commit by counting, per Raft).
func (r *Replica) advanceCommit(t *sim.Task) {
	if r.role != leader {
		return
	}
	sorted := append([]uint32(nil), r.matchIndex...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	cand := sorted[r.cfg.N/2]
	if cand > r.commit && r.termAt(cand) == r.st.Term {
		r.noteCommit(t, cand)
	}
}

func (r *Replica) applyAll(t *sim.Task) {
	if r.applying {
		return // an apply loop further up the stack will drain the rest
	}
	r.applying = true
	for r.applied < r.commit {
		idx := r.applied + 1
		e := r.entryAt(idx)
		var res []byte
		if len(e.Cmd) > 0 {
			res = r.sm.Apply(t, e.Cmd)
		}
		r.applied = idx
		r.stats.Applied++
		if _, want := r.pending[idx]; want {
			r.results[idx] = res
		}
		r.applyWake.WakeAll()
	}
	r.applying = false
	r.maybeCompact()
}

// maybeCompact folds the applied log prefix into a state-machine snapshot
// once it exceeds RsmSnapshotEntries, trimming replay cost and switching
// far-behind rejoiners to snapshot catch-up.
func (r *Replica) maybeCompact() {
	if r.applied-r.st.SnapIndex < uint32(params.RsmSnapshotEntries) {
		return
	}
	term := r.termAt(r.applied)
	snap := r.sm.Snapshot()
	r.st.Log = append([]Entry(nil), r.st.Log[r.applied-r.st.SnapIndex:]...)
	r.st.SnapData = snap
	r.st.SnapIndex = r.applied
	r.st.SnapTerm = term
}

// ------------------------------------------------------------------- submit

// Submit proposes a command and blocks until it commits and applies,
// returning the state machine's result. ErrNotLeader redirects the caller;
// ErrTimeout means the entry could not reach a majority in time (it may
// still commit later — commands must be idempotent under client retry,
// which the home services' keyed mutations are).
func (r *Replica) Submit(ctx *kernel.ProcCtx, cmd []byte) ([]byte, error) {
	if len(cmd) > params.RsmMaxCmd {
		return nil, ErrTooBig
	}
	if r.role != leader {
		return nil, ErrNotLeader
	}
	term := r.st.Term
	idx := r.appendLocal(cmd)
	r.pending[idx] = struct{}{}
	defer delete(r.pending, idx)
	r.advanceCommit(ctx.Task()) // N=1 degenerate case commits immediately
	r.repWake.WakeAll()
	deadline := ctx.Now().Add(params.RsmSubmitTimeout)
	for r.applied < idx {
		if r.role != leader || r.st.Term != term {
			return nil, ErrNotLeader
		}
		left := deadline.Sub(ctx.Now())
		if left <= 0 {
			return nil, ErrTimeout
		}
		r.applyWake.WaitTimeout(ctx.Task(), left)
	}
	res := r.results[idx]
	delete(r.results, idx)
	// Re-validate after the wait: if we were deposed while blocked, a new
	// leader may have overwritten the uncommitted entry at idx and committed
	// its own past it — applied>=idx then holds the OTHER entry's result.
	// Still holding leadership in the proposal term proves the entry at idx
	// is the one appended above; anything else is not a success.
	if r.role != leader || r.st.Term != term {
		return nil, ErrNotLeader
	}
	return res, nil
}

// -------------------------------------------------------- leader replication

// replicate is the per-peer worker loop: heartbeats and steady-state
// appends as single transactions, windowed pipelines for catch-up streaming
// and snapshot transfer.
func (r *Replica) replicate(ctx *kernel.ProcCtx, peer int) {
	for {
		if r.role != leader {
			r.repWake.Wait(ctx.Task())
			continue
		}
		pid := r.peerPID[peer]
		if pid == vid.Nil {
			r.repWake.WaitTimeout(ctx.Task(), params.RsmHeartbeatInterval)
			continue
		}
		term := r.st.Term
		switch {
		case r.nextIndex[peer] <= r.st.SnapIndex:
			r.sendSnapshot(ctx, peer, pid, term)
		case r.lastIndex()+1-r.nextIndex[peer] > uint32(params.RsmBatchEntries):
			r.catchUp(ctx, peer, pid, term)
		default:
			r.sendAppend(ctx, peer, pid, term)
		}
		if r.role == leader && r.st.Term == term &&
			r.peerPID[peer] != vid.Nil && r.nextIndex[peer] <= r.lastIndex() {
			continue // backlog remains: keep streaming
		}
		r.repWake.WaitTimeout(ctx.Task(), params.RsmHeartbeatInterval)
	}
}

func (r *Replica) buildAppend(peer int, max int) (vid.Message, uint32) {
	prev := r.nextIndex[peer] - 1
	a := AppendReq{
		Term:      r.st.Term,
		Leader:    uint32(r.cfg.ID),
		LeaderPID: uint32(r.proc.PID()),
		SvcPID:    uint32(r.cfg.SvcPID),
		PrevIndex: prev,
		PrevTerm:  r.termAt(prev),
		Commit:    r.commit,
	}
	bytes := 0
	for idx := prev + 1; idx <= r.lastIndex() && len(a.Entries) < max; idx++ {
		e := r.entryAt(idx)
		if bytes > 0 && bytes+len(e.Cmd) > params.RsmBatchBytes {
			break
		}
		bytes += len(e.Cmd) + 8
		a.Entries = append(a.Entries, e)
	}
	return vid.Message{Op: OpAppend, Seg: EncodeAppendReq(a)}, uint32(len(a.Entries))
}

func (r *Replica) sendAppend(ctx *kernel.ProcCtx, peer int, pid vid.PID, term uint32) {
	msg, n := r.buildAppend(peer, params.RsmBatchEntries)
	sentNext := r.nextIndex[peer]
	m, err := ctx.Send(pid, msg)
	if err != nil || r.role != leader || r.st.Term != term {
		return // peer unreachable or we were deposed; pace and retry
	}
	r.handleAppendReply(ctx.Task(), peer, sentNext, n, m)
}

func (r *Replica) handleAppendReply(t *sim.Task, peer int, sentNext, n uint32, m vid.Message) {
	if !m.OK() {
		return
	}
	if m.W[0] > r.st.Term {
		r.stepDown(m.W[0], t.Now())
		return
	}
	if m.W[1] == 1 {
		match := sentNext - 1 + n
		if match > r.matchIndex[peer] {
			r.matchIndex[peer] = match
		}
		if match+1 > r.nextIndex[peer] {
			r.nextIndex[peer] = match + 1
		}
		r.advanceCommit(t)
		return
	}
	// rejected: back up to the follower's hint (never past its snapshot)
	hint := m.W[2]
	next := r.nextIndex[peer] - 1
	if hint > 0 && hint < next {
		next = hint
	}
	if next < 1 {
		next = 1
	}
	r.nextIndex[peer] = next
}

// catchUp streams a large backlog through an ipc.Window: up to CopyWindow
// append batches in flight, nextIndex advanced optimistically and rolled
// back to the acknowledged match on any failure.
func (r *Replica) catchUp(ctx *kernel.ProcCtx, peer int, pid vid.PID, term uint32) {
	win := r.host.IPC.NewWindow(r.host.SystemLH().ID(), params.CopyWindow)
	ok := true
	var replyTerm uint32 // max term seen in replies; >term means we are deposed
	win.SetOnReply(func(req, rep vid.Message) {
		if rep.OK() && rep.W[0] > replyTerm {
			replyTerm = rep.W[0]
		}
		if !rep.OK() || rep.W[0] > term || rep.W[1] != 1 {
			ok = false
			return
		}
		a, err := DecodeAppendReq(req.Seg)
		if err != nil {
			ok = false
			return
		}
		match := a.PrevIndex + uint32(len(a.Entries))
		if match > r.matchIndex[peer] {
			r.matchIndex[peer] = match
		}
	})
	for ok && r.role == leader && r.st.Term == term &&
		r.nextIndex[peer] > r.st.SnapIndex && r.nextIndex[peer] <= r.lastIndex() {
		msg, n := r.buildAppend(peer, params.RsmBatchEntries)
		if err := win.Send(ctx.Task(), pid, msg); err != nil {
			ok = false
			break
		}
		r.nextIndex[peer] += n
	}
	err := win.Drain(ctx.Task())
	win.Close()
	if replyTerm > r.st.Term {
		// A follower rejected us with a higher term: step down now instead
		// of re-streaming until a plain append notices the new leader.
		r.stepDown(replyTerm, ctx.Now())
		return
	}
	if (!ok || err != nil) && r.role == leader {
		r.nextIndex[peer] = r.matchIndex[peer] + 1 // roll back; stop-and-wait repairs
	}
	if r.role == leader && r.st.Term == term {
		r.advanceCommit(ctx.Task())
	}
}

// sendSnapshot ships the compaction snapshot as pipelined chunks through an
// ipc.Window; on success the peer resumes appends from SnapIndex+1.
func (r *Replica) sendSnapshot(ctx *kernel.ProcCtx, peer int, pid vid.PID, term uint32) {
	data := r.st.SnapData
	snapIdx, snapTerm := r.st.SnapIndex, r.st.SnapTerm
	total := uint32(len(data))
	win := r.host.IPC.NewWindow(r.host.SystemLH().ID(), params.CopyWindow)
	ok := true
	var replyTerm uint32 // max term seen in replies; >term means we are deposed
	win.SetOnReply(func(_, rep vid.Message) {
		if rep.OK() && rep.W[0] > replyTerm {
			replyTerm = rep.W[0]
		}
		if !rep.OK() || rep.W[0] > term || rep.W[1] != 1 {
			ok = false
		}
	})
	for off := uint32(0); ok && (off < total || total == 0); off += uint32(params.RsmSnapChunkBytes) {
		end := off + uint32(params.RsmSnapChunkBytes)
		if end > total {
			end = total
		}
		c := SnapChunk{
			Term: term, Leader: uint32(r.cfg.ID),
			LeaderPID: uint32(r.proc.PID()), SvcPID: uint32(r.cfg.SvcPID),
			LastIndex: snapIdx, LastTerm: snapTerm,
			Offset: off, Total: total, Data: data[off:end],
		}
		if err := win.Send(ctx.Task(), pid, vid.Message{Op: OpSnap, Seg: EncodeSnapChunk(c)}); err != nil {
			ok = false
		}
		if total == 0 {
			break // empty snapshot: the one header chunk carries it all
		}
	}
	err := win.Drain(ctx.Task())
	win.Close()
	if replyTerm > r.st.Term {
		// A follower rejected the transfer with a higher term: step down now
		// instead of re-streaming the snapshot at the deposed term.
		r.stepDown(replyTerm, ctx.Now())
		return
	}
	if !ok || err != nil || r.role != leader || r.st.Term != term {
		return
	}
	r.stats.SnapSends++
	if snapIdx > r.matchIndex[peer] {
		r.matchIndex[peer] = snapIdx
	}
	r.nextIndex[peer] = snapIdx + 1
	r.advanceCommit(ctx.Task())
}
