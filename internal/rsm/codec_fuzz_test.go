package rsm

import (
	"testing"

	"vsystem/internal/vid"
)

// The four replication codecs share the same contract as the kernel's
// fetch-request parser: arbitrary segments must either decode to a bounded,
// well-formed value or reject with an error the server maps to
// CodeBadRequest — never panic. Valid decodes must re-encode byte-identically
// (the formats carry no redundancy), so a lying length field cannot smuggle
// bytes past the bounds checks.

func FuzzDecodeVoteReq(f *testing.F) {
	f.Add(EncodeVoteReq(VoteReq{Term: 3, Cand: 1, CandPID: 0x10002,
		SvcPID: 0x10003, LastIndex: 7, LastTerm: 2}))
	f.Add(EncodeVoteReq(VoteReq{Term: 9, Pre: true, Cand: 2, LastIndex: 1}))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})                  // truncated
	f.Add(append(make([]byte, 24), 2))         // bad pre-vote flag
	f.Add(append(EncodeVoteReq(VoteReq{}), 0)) // trailing junk
	f.Fuzz(func(t *testing.T, seg []byte) {
		v, err := DecodeVoteReq(seg)
		if err != nil {
			return
		}
		if reseg := EncodeVoteReq(v); string(reseg) != string(seg) {
			t.Fatalf("round trip changed encoding:\n got %x\nwant %x", reseg, seg)
		}
	})
}

func FuzzDecodeVoteReply(f *testing.F) {
	f.Add(EncodeVoteReply(VoteReply{Term: 3, Granted: true, Voter: 2,
		VoterPID: 0x20002, SvcPID: 0x20003}))
	f.Add(EncodeVoteReply(VoteReply{Term: 1, Voter: 0}))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 2}) // bad granted flag
	f.Add(append(EncodeVoteReply(VoteReply{}), 0))
	f.Fuzz(func(t *testing.T, seg []byte) {
		v, err := DecodeVoteReply(seg)
		if err != nil {
			return
		}
		if reseg := EncodeVoteReply(v); string(reseg) != string(seg) {
			t.Fatalf("round trip changed encoding:\n got %x\nwant %x", reseg, seg)
		}
	})
}

func FuzzDecodeAppendReq(f *testing.F) {
	f.Add(EncodeAppendReq(AppendReq{Term: 2, Leader: 0, LeaderPID: 0x10001,
		SvcPID: 0x10009, PrevIndex: 4, PrevTerm: 2, Commit: 3}))
	f.Add(EncodeAppendReq(AppendReq{Term: 2, Entries: []Entry{
		{Term: 1, Cmd: []byte("a=1")},
		{Term: 2, Cmd: nil}, // barrier
		{Term: 2, Cmd: []byte("b=2")},
	}}))
	f.Add([]byte{})
	f.Add(make([]byte, 31))                                 // short header
	f.Add(append(make([]byte, 28), 0xff, 0xff, 0xff, 0xff)) // absurd count
	f.Add(append(make([]byte, 28), 1, 0, 0, 0))             // count 1, no entry
	hdr := append(make([]byte, 28), 1, 0, 0, 0)
	f.Add(append(hdr, 1, 0, 0, 0, 0xff, 0xff, 0, 0)) // entry len lies
	f.Add(append(EncodeAppendReq(AppendReq{}), 0))   // trailing junk
	f.Fuzz(func(t *testing.T, seg []byte) {
		a, err := DecodeAppendReq(seg)
		if err != nil {
			return
		}
		if len(a.Entries) > maxEntries {
			t.Fatalf("decoded %d entries, cap %d", len(a.Entries), maxEntries)
		}
		for _, e := range a.Entries {
			if len(e.Cmd) > vid.SegMax {
				t.Fatalf("entry cmd %d bytes exceeds SegMax", len(e.Cmd))
			}
		}
		if reseg := EncodeAppendReq(a); string(reseg) != string(seg) {
			t.Fatalf("round trip changed encoding:\n got %x\nwant %x", reseg, seg)
		}
	})
}

func FuzzDecodeSnapChunk(f *testing.F) {
	f.Add(EncodeSnapChunk(SnapChunk{Term: 4, Leader: 1, LeaderPID: 0x10001,
		SvcPID: 0x10009, LastIndex: 64, LastTerm: 3, Offset: 0, Total: 11,
		Data: []byte("hello world")}))
	f.Add(EncodeSnapChunk(SnapChunk{Term: 1, Total: 0})) // empty snapshot
	f.Add([]byte{})
	f.Add(make([]byte, 31)) // short header
	bad := EncodeSnapChunk(SnapChunk{Total: 4, Data: []byte("abcd")})
	bad[24] = 2 // offset 2 + 4 data bytes > total 4
	f.Add(bad)
	over := make([]byte, snapHdrLen)
	over[28], over[29], over[30], over[31] = 0xff, 0xff, 0xff, 0xff // total > cap
	f.Add(over)
	f.Fuzz(func(t *testing.T, seg []byte) {
		c, err := DecodeSnapChunk(seg)
		if err != nil {
			return
		}
		if c.Total > maxSnapTotal {
			t.Fatalf("decoded total %d exceeds cap", c.Total)
		}
		if uint64(c.Offset)+uint64(len(c.Data)) > uint64(c.Total) {
			t.Fatalf("chunk [%d, %d+%d) overruns total %d",
				c.Offset, c.Offset, len(c.Data), c.Total)
		}
		if reseg := EncodeSnapChunk(c); string(reseg) != string(seg) {
			t.Fatalf("round trip changed encoding:\n got %x\nwant %x", reseg, seg)
		}
	})
}
