package rsm

// White-box tests: interleavings that depend on replica-internal scheduling
// (a deposal and an applied-index jump landing in one handler call) cannot
// be staged reliably through the network, so they drive the replica's own
// state transitions directly.

import (
	"bytes"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/kernel"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

type wbSM struct{ applied [][]byte }

func (s *wbSM) Apply(t *sim.Task, cmd []byte) []byte {
	s.applied = append(s.applied, cmd)
	return append([]byte("ok:"), cmd...)
}
func (s *wbSM) Snapshot() []byte { return nil }
func (s *wbSM) Restore([]byte)   {}

// TestDeposedSubmitNeverFalselySucceeds reproduces the stale-leader race:
// a leader proposes an entry that never reaches a majority, is deposed, and
// the new leader's repair — delivered as ONE append batch (or snapshot) —
// overwrites the entry at that index, commits and applies past it, all
// within a single handler call. The Submit waiter then wakes with
// applied>=idx having had no scheduling gap in which to observe the role
// change mid-loop; it must still report failure, never return the
// overwriting entry's result as its own success.
func TestDeposedSubmitNeverFalselySucceeds(t *testing.T) {
	eng := sim.NewEngine(1)
	bus := ethernet.NewBus(eng)
	host := kernel.NewHost(eng, bus, 0, "r0")
	sm := &wbSM{}
	r := New(host, Config{Name: "kv", Group: vid.GroupHomeRSM, ID: 0, N: 3}, sm, NewStore())

	// Hand the lone replica unfenced leadership of term 1 directly: its two
	// peers are absent, so nothing it proposes can reach a majority.
	r.role = leader
	r.st.Term = 1
	r.nextIndex = make([]uint32, r.cfg.N)
	r.matchIndex = make([]uint32, r.cfg.N)

	var (
		res  []byte
		err  error
		done bool
	)
	host.SpawnServer("waiter", 4096, func(ctx *kernel.ProcCtx) {
		res, err = r.Submit(ctx, []byte("k=stale"))
		done = true
	})

	// While the waiter blocks, replay what a healed partition delivers in a
	// single handleAppend/handleSnap invocation from a higher-term leader:
	// deposal, the stale entry overwritten, commit and apply past it —
	// atomically with respect to the waiter's process.
	eng.At(eng.Now().Add(500*time.Millisecond), func() {
		idx := r.lastIndex() // the stale proposal's index
		if idx == 0 || r.termAt(idx) != 1 {
			t.Errorf("stale entry not in place at idx=%d", idx)
			return
		}
		r.stepDown(2, eng.Now())
		r.st.Log[idx-r.st.SnapIndex-1] = Entry{Term: 2, Cmd: []byte("k=other")}
		r.noteCommit(nil, idx)
	})
	eng.RunFor(2 * time.Second)

	if !done {
		t.Fatal("Submit never returned")
	}
	if err == nil {
		t.Fatalf("deposed Submit reported success (res=%q) for an entry that never committed", res)
	}
	if err != ErrNotLeader {
		t.Errorf("want ErrNotLeader, got %v", err)
	}
	// The overwriting entry must have applied exactly once — the deposal
	// path must not disturb the applied log itself.
	if len(sm.applied) != 1 || !bytes.Equal(sm.applied[0], []byte("k=other")) {
		t.Errorf("applied log = %q, want exactly [k=other]", sm.applied)
	}
}

// TestStepDownSameTermKeepsVote pins the one-vote-per-term invariant: a
// candidate (which voted for itself) yielding to the term's elected leader
// steps down without clearing VotedFor, while a strictly higher term does
// reset it.
func TestStepDownSameTermKeepsVote(t *testing.T) {
	eng := sim.NewEngine(1)
	bus := ethernet.NewBus(eng)
	host := kernel.NewHost(eng, bus, 0, "r0")
	r := New(host, Config{Name: "kv", Group: vid.GroupHomeRSM, ID: 0, N: 3}, &wbSM{}, NewStore())

	r.st.Term = 3
	r.st.VotedFor = 0 // voted for itself as candidate in term 3
	r.role = candidate

	r.stepDown(3, eng.Now())
	if r.role != follower {
		t.Errorf("same-term stepDown left role=%v, want follower", r.role)
	}
	if r.st.VotedFor != 0 {
		t.Errorf("same-term stepDown cleared VotedFor (=%d), breaking one-vote-per-term", r.st.VotedFor)
	}

	r.stepDown(4, eng.Now())
	if r.st.Term != 4 || r.st.VotedFor != -1 {
		t.Errorf("higher-term stepDown: term=%d votedFor=%d, want 4/-1", r.st.Term, r.st.VotedFor)
	}
}
