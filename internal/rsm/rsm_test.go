package rsm_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/kernel"
	"vsystem/internal/params"
	"vsystem/internal/rsm"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// kvSM is a toy deterministic state machine: commands are "key=value"
// assignments, results echo the key, snapshots are the sorted rendering.
type kvSM struct {
	m       map[string]string
	applies int
}

func newKV() *kvSM { return &kvSM{m: make(map[string]string)} }

func (s *kvSM) Apply(t *sim.Task, cmd []byte) []byte {
	k, v, _ := strings.Cut(string(cmd), "=")
	s.m[k] = v
	s.applies++
	return []byte("ok:" + k)
}

func (s *kvSM) Snapshot() []byte {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(s.m[k])
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

func (s *kvSM) Restore(snap []byte) {
	s.m = make(map[string]string)
	for _, line := range strings.Split(string(snap), "\n") {
		if k, v, ok := strings.Cut(line, "="); ok {
			s.m[k] = v
		}
	}
}

func (s *kvSM) render() string { return string(s.Snapshot()) }

// harness boots N bare hosts each carrying one replica of a kv set.
type harness struct {
	eng    *sim.Engine
	bus    *ethernet.Bus
	tb     *trace.Bus
	hosts  []*kernel.Host
	stores []*rsm.Store
	reps   []*rsm.Replica
	sms    []*kvSM
}

func boot(t *testing.T, n int, seed int64) *harness {
	t.Helper()
	eng := sim.NewEngine(seed)
	bus := ethernet.NewBus(eng)
	tb := trace.NewBus()
	bus.SetTraceBus(tb)
	h := &harness{eng: eng, bus: bus, tb: tb}
	for i := 0; i < n; i++ {
		host := kernel.NewHost(eng, bus, i, fmt.Sprintf("r%d", i))
		host.AttachTrace(tb)
		h.hosts = append(h.hosts, host)
		h.stores = append(h.stores, rsm.NewStore())
		h.sms = append(h.sms, newKV())
		h.reps = append(h.reps, rsm.New(host, rsm.Config{
			Name: "kv", Group: vid.GroupHomeRSM, ID: i, N: n,
		}, h.sms[i], h.stores[i]))
	}
	return h
}

// restart reboots replica i's host and re-attaches a fresh state machine to
// the surviving durable store — the crash/rejoin cycle.
func (h *harness) restart(i int) {
	h.hosts[i].Restart()
	h.sms[i] = newKV()
	h.reps[i] = rsm.New(h.hosts[i], rsm.Config{
		Name: "kv", Group: vid.GroupHomeRSM, ID: i, N: len(h.reps),
	}, h.sms[i], h.stores[i])
}

func (h *harness) leaderIdx() int {
	for i, r := range h.reps {
		if !h.hosts[i].Crashed() && r.IsLeader() {
			return i
		}
	}
	return -1
}

// submitter spawns a driver process on every host that waits for delay,
// then pushes the given commands through whichever replica becomes leader
// (polling, so a crash-perturbed election schedule doesn't strand them).
func (h *harness) submitter(delay time.Duration, cmds []string, errs *[]error) {
	claimed := false
	for i := range h.hosts {
		idx := i
		h.hosts[i].SpawnServer("driver", 4096, func(ctx *kernel.ProcCtx) {
			ctx.Sleep(delay)
			for n := 0; n < 100 && !claimed; n++ {
				if h.reps[idx].IsLeader() {
					claimed = true
					for _, c := range cmds {
						if _, err := h.reps[idx].Submit(ctx, []byte(c)); err != nil {
							*errs = append(*errs, err)
						}
					}
					return
				}
				ctx.Sleep(200 * time.Millisecond)
			}
		})
	}
}

func TestElectionConvergesToOneLeader(t *testing.T) {
	h := boot(t, 3, 1)
	h.eng.RunFor(3 * time.Second)
	leaders := 0
	for i, r := range h.reps {
		if r.IsLeader() {
			leaders++
		} else if r.Role() == "leader" {
			t.Errorf("replica %d holds unfenced leadership", i)
		}
	}
	if leaders != 1 {
		t.Fatalf("want exactly 1 fenced leader, got %d", leaders)
	}
	// every replica agrees on who leads
	lead := h.leaderIdx()
	for i, r := range h.reps {
		if r.LeaderID() != lead {
			t.Errorf("replica %d thinks leader is %d, want %d", i, r.LeaderID(), lead)
		}
	}
	// counter ↔ event parity
	var elects, commits, fails int64
	for _, r := range h.reps {
		st := r.Stats()
		elects += st.Elections
		commits += st.Commits
		fails += st.Failovers
	}
	if elects != h.tb.Count(trace.EvElect) {
		t.Errorf("Elections=%d but EvElect=%d", elects, h.tb.Count(trace.EvElect))
	}
	if commits != h.tb.Count(trace.EvCommit) {
		t.Errorf("Commits=%d but EvCommit=%d", commits, h.tb.Count(trace.EvCommit))
	}
	if fails != 0 || h.tb.Count(trace.EvFailover) != 0 {
		t.Errorf("boot election must not count as failover (stats=%d events=%d)",
			fails, h.tb.Count(trace.EvFailover))
	}
}

func TestSubmitReplicatesToAllReplicas(t *testing.T) {
	h := boot(t, 3, 1)
	var errs []error
	h.submitter(2*time.Second, []string{"a=1", "b=2", "c=3"}, &errs)
	h.eng.RunFor(5 * time.Second)
	if len(errs) > 0 {
		t.Fatalf("submit errors: %v", errs)
	}
	want := h.sms[h.leaderIdx()].render()
	if want == "" {
		t.Fatal("leader state empty after submits")
	}
	for i, sm := range h.sms {
		if got := sm.render(); got != want {
			t.Errorf("replica %d state %q != leader state %q", i, got, want)
		}
	}
}

func TestSubmitOnFollowerRedirects(t *testing.T) {
	h := boot(t, 3, 1)
	var sawNotLeader bool
	for i := range h.hosts {
		idx := i
		h.hosts[i].SpawnServer("probe", 4096, func(ctx *kernel.ProcCtx) {
			ctx.Sleep(2 * time.Second)
			if h.reps[idx].IsLeader() {
				return
			}
			if _, err := h.reps[idx].Submit(ctx, []byte("x=1")); err == rsm.ErrNotLeader {
				sawNotLeader = true
			}
		})
	}
	h.eng.RunFor(3 * time.Second)
	if !sawNotLeader {
		t.Fatal("follower Submit did not return ErrNotLeader")
	}
}

func TestLeaderCrashFailsOverWithinBudget(t *testing.T) {
	h := boot(t, 3, 1)
	var errs []error
	h.submitter(2*time.Second, []string{"a=1"}, &errs)

	var crashAt, electAt sim.Time
	h.tb.Subscribe(func(ev trace.Event) {
		if ev.Kind == trace.EvFailover && electAt == 0 {
			electAt = ev.At
		}
	})
	h.eng.At(h.eng.Now().Add(3*time.Second), func() {
		lead := h.leaderIdx()
		if lead < 0 {
			t.Error("no leader to crash at 3s")
			return
		}
		crashAt = h.eng.Now()
		h.hosts[lead].Crash()
	})
	h.eng.RunFor(8 * time.Second)
	if len(errs) > 0 {
		t.Fatalf("submit errors: %v", errs)
	}
	if h.leaderIdx() < 0 {
		t.Fatal("no new leader after crashing the old one")
	}
	if electAt == 0 {
		t.Fatal("no EvFailover published")
	}
	if d := electAt.Sub(crashAt); d > params.RsmFailoverBudget {
		t.Errorf("failover took %v, budget %v", d, params.RsmFailoverBudget)
	}
	var fails int64
	for _, r := range h.reps {
		fails += r.Stats().Failovers
	}
	if fails != h.tb.Count(trace.EvFailover) {
		t.Errorf("Failovers=%d but EvFailover=%d", fails, h.tb.Count(trace.EvFailover))
	}
}

func TestRejoinCatchesUpFromLog(t *testing.T) {
	h := boot(t, 3, 1)
	var errs []error
	h.submitter(2*time.Second, []string{"a=1", "b=2"}, &errs)
	h.eng.At(h.eng.Now().Add(1*time.Second), func() { h.hosts[2].Crash() })
	h.eng.At(h.eng.Now().Add(4*time.Second), func() { h.restart(2) })
	// Catch-up latency includes one full send abort: the leader's in-flight
	// append to the dead incarnation's PID rides out its ~5s abort (stale
	// identities die silently in V) before the worker picks up the PID the
	// rejoiner's hello announced. Run past it.
	h.eng.RunFor(14 * time.Second)
	if len(errs) > 0 {
		t.Fatalf("submit errors: %v", errs)
	}
	lead := h.leaderIdx()
	if lead < 0 {
		t.Fatal("no leader")
	}
	if got, want := h.sms[2].render(), h.sms[lead].render(); got != want {
		t.Errorf("rejoined replica state %q != leader %q", got, want)
	}
}

func TestRejoinPastCompactionInstallsSnapshot(t *testing.T) {
	h := boot(t, 3, 1)
	// enough commands to force compaction while replica 2 is down
	var cmds []string
	for i := 0; i < params.RsmSnapshotEntries+20; i++ {
		cmds = append(cmds, fmt.Sprintf("k%03d=%d", i, i))
	}
	var errs []error
	h.submitter(2*time.Second, cmds, &errs)
	h.eng.At(h.eng.Now().Add(1*time.Second), func() { h.hosts[2].Crash() })
	h.eng.At(h.eng.Now().Add(20*time.Second), func() { h.restart(2) })
	h.eng.RunFor(40 * time.Second)
	if len(errs) > 0 {
		t.Fatalf("submit errors: %v", errs)
	}
	lead := h.leaderIdx()
	if lead < 0 {
		t.Fatal("no leader")
	}
	if h.stores[lead].SnapIndex == 0 {
		t.Fatal("leader never compacted; test needs more commands")
	}
	if h.reps[2].Stats().SnapInstalls == 0 {
		t.Error("rejoined replica caught up without a snapshot install")
	}
	if got, want := h.sms[2].render(), h.sms[lead].render(); got != want {
		t.Errorf("rejoined replica state diverges after snapshot catch-up")
	}
}

func TestMinorityLeaderSubmitFencedByTimeout(t *testing.T) {
	h := boot(t, 3, 1)
	h.eng.RunFor(3 * time.Second)
	lead := h.leaderIdx()
	if lead < 0 {
		t.Fatal("no leader")
	}
	// cut the leader off from both followers
	leadMAC := h.hosts[lead].NIC.MAC()
	h.bus.SetCut(func(src, dst ethernet.MAC) bool {
		return (src == leadMAC) != (dst == leadMAC)
	})
	var err error
	done := false
	h.hosts[lead].SpawnServer("stale", 4096, func(ctx *kernel.ProcCtx) {
		_, err = h.reps[lead].Submit(ctx, []byte("stale=1"))
		done = true
	})
	h.eng.RunFor(params.RsmSubmitTimeout + 2*time.Second)
	if !done {
		t.Fatal("stale-leader Submit never returned")
	}
	if err == nil {
		t.Fatal("stale minority leader committed a command")
	}
	// the majority side must have moved on to a new leader
	newLead := -1
	for i, r := range h.reps {
		if i != lead && r.IsLeader() {
			newLead = i
		}
	}
	if newLead < 0 {
		t.Error("majority side did not elect a replacement leader")
	}
}
