package rsm

import (
	"encoding/binary"
	"errors"

	"vsystem/internal/vid"
)

// Wire codecs for the replication protocol. Hand-rolled little-endian
// fixed-header formats (like the kernel's page-run and fetch-request
// codecs): deterministic byte-for-byte, bounds-checked on decode, and
// fuzzed with committed corpora. A malformed segment must decode to an
// error — the replica answers CodeBadRequest — and never panic.

var errBadWire = errors.New("rsm: malformed wire segment")

// maxEntries bounds the entry count a decoder will accept; an encoded
// append can never legitimately carry more (the batch cap is far lower).
const maxEntries = 4096

// maxSnapTotal bounds the declared total size of a snapshot transfer.
const maxSnapTotal = 64 * 1024 * 1024

// VoteReq is a candidate's request for a vote. Pre marks a pre-vote probe:
// the candidate has not incremented its term and the voter must answer
// without mutating any of its own state (term, votedFor, election timer).
type VoteReq struct {
	Term      uint32
	Pre       bool
	Cand      uint32 // candidate replica id
	CandPID   uint32 // candidate's replica process
	SvcPID    uint32 // candidate's co-located service process (redirect hint)
	LastIndex uint32 // candidate log tail, for the up-to-date check
	LastTerm  uint32
}

const voteReqLen = 25

// EncodeVoteReq serializes a vote request.
func EncodeVoteReq(v VoteReq) []byte {
	b := make([]byte, voteReqLen)
	le := binary.LittleEndian
	le.PutUint32(b[0:], v.Term)
	le.PutUint32(b[4:], v.Cand)
	le.PutUint32(b[8:], v.CandPID)
	le.PutUint32(b[12:], v.SvcPID)
	le.PutUint32(b[16:], v.LastIndex)
	le.PutUint32(b[20:], v.LastTerm)
	if v.Pre {
		b[24] = 1
	}
	return b
}

// DecodeVoteReq parses a vote request.
func DecodeVoteReq(b []byte) (VoteReq, error) {
	if len(b) != voteReqLen || b[24] > 1 {
		return VoteReq{}, errBadWire
	}
	le := binary.LittleEndian
	return VoteReq{
		Term:      le.Uint32(b[0:]),
		Pre:       b[24] == 1,
		Cand:      le.Uint32(b[4:]),
		CandPID:   le.Uint32(b[8:]),
		SvcPID:    le.Uint32(b[12:]),
		LastIndex: le.Uint32(b[16:]),
		LastTerm:  le.Uint32(b[20:]),
	}, nil
}

// VoteReply is a replica's answer to a vote request.
type VoteReply struct {
	Term     uint32
	Granted  bool
	Voter    uint32
	VoterPID uint32
	SvcPID   uint32
}

const voteReplyLen = 17

// EncodeVoteReply serializes a vote reply.
func EncodeVoteReply(v VoteReply) []byte {
	b := make([]byte, voteReplyLen)
	le := binary.LittleEndian
	le.PutUint32(b[0:], v.Term)
	if v.Granted {
		b[4] = 1
	}
	le.PutUint32(b[5:], v.Voter)
	le.PutUint32(b[9:], v.VoterPID)
	le.PutUint32(b[13:], v.SvcPID)
	return b
}

// DecodeVoteReply parses a vote reply.
func DecodeVoteReply(b []byte) (VoteReply, error) {
	if len(b) != voteReplyLen || b[4] > 1 {
		return VoteReply{}, errBadWire
	}
	le := binary.LittleEndian
	return VoteReply{
		Term:     le.Uint32(b[0:]),
		Granted:  b[4] == 1,
		Voter:    le.Uint32(b[5:]),
		VoterPID: le.Uint32(b[9:]),
		SvcPID:   le.Uint32(b[13:]),
	}, nil
}

// Entry is one replicated log entry. An empty Cmd is the no-op barrier a
// new leader commits to fence its term; state machines never see it.
type Entry struct {
	Term uint32
	Cmd  []byte
}

// AppendReq is the leader's append-entries / heartbeat message. Entry
// indices are implicit: PrevIndex+1, PrevIndex+2, ...
type AppendReq struct {
	Term      uint32
	Leader    uint32 // leader replica id
	LeaderPID uint32
	SvcPID    uint32
	PrevIndex uint32
	PrevTerm  uint32
	Commit    uint32
	Entries   []Entry
}

const appendHdrLen = 32

// EncodeAppendReq serializes an append request.
func EncodeAppendReq(a AppendReq) []byte {
	n := appendHdrLen
	for _, e := range a.Entries {
		n += 8 + len(e.Cmd)
	}
	b := make([]byte, n)
	le := binary.LittleEndian
	le.PutUint32(b[0:], a.Term)
	le.PutUint32(b[4:], a.Leader)
	le.PutUint32(b[8:], a.LeaderPID)
	le.PutUint32(b[12:], a.SvcPID)
	le.PutUint32(b[16:], a.PrevIndex)
	le.PutUint32(b[20:], a.PrevTerm)
	le.PutUint32(b[24:], a.Commit)
	le.PutUint32(b[28:], uint32(len(a.Entries)))
	off := appendHdrLen
	for _, e := range a.Entries {
		le.PutUint32(b[off:], e.Term)
		le.PutUint32(b[off+4:], uint32(len(e.Cmd)))
		copy(b[off+8:], e.Cmd)
		off += 8 + len(e.Cmd)
	}
	return b
}

// DecodeAppendReq parses an append request.
func DecodeAppendReq(b []byte) (AppendReq, error) {
	if len(b) < appendHdrLen {
		return AppendReq{}, errBadWire
	}
	le := binary.LittleEndian
	a := AppendReq{
		Term:      le.Uint32(b[0:]),
		Leader:    le.Uint32(b[4:]),
		LeaderPID: le.Uint32(b[8:]),
		SvcPID:    le.Uint32(b[12:]),
		PrevIndex: le.Uint32(b[16:]),
		PrevTerm:  le.Uint32(b[20:]),
		Commit:    le.Uint32(b[24:]),
	}
	count := le.Uint32(b[28:])
	if count > maxEntries {
		return AppendReq{}, errBadWire
	}
	off := appendHdrLen
	for i := uint32(0); i < count; i++ {
		if off+8 > len(b) {
			return AppendReq{}, errBadWire
		}
		term := le.Uint32(b[off:])
		n := int(le.Uint32(b[off+4:]))
		if n > vid.SegMax || off+8+n > len(b) {
			return AppendReq{}, errBadWire
		}
		a.Entries = append(a.Entries, Entry{Term: term, Cmd: b[off+8 : off+8+n : off+8+n]})
		off += 8 + n
	}
	if off != len(b) {
		return AppendReq{}, errBadWire
	}
	return a, nil
}

// SnapChunk is one piece of a snapshot transfer to a lagging replica. The
// receiver assembles chunks of the same (Term, LastIndex, Total) identity
// into a buffer, in any order, and installs when every byte has arrived.
type SnapChunk struct {
	Term      uint32
	Leader    uint32
	LeaderPID uint32
	SvcPID    uint32
	LastIndex uint32 // log index the snapshot covers through
	LastTerm  uint32
	Offset    uint32
	Total     uint32
	Data      []byte
}

const snapHdrLen = 32

// EncodeSnapChunk serializes a snapshot chunk.
func EncodeSnapChunk(c SnapChunk) []byte {
	b := make([]byte, snapHdrLen+len(c.Data))
	le := binary.LittleEndian
	le.PutUint32(b[0:], c.Term)
	le.PutUint32(b[4:], c.Leader)
	le.PutUint32(b[8:], c.LeaderPID)
	le.PutUint32(b[12:], c.SvcPID)
	le.PutUint32(b[16:], c.LastIndex)
	le.PutUint32(b[20:], c.LastTerm)
	le.PutUint32(b[24:], c.Offset)
	le.PutUint32(b[28:], c.Total)
	copy(b[snapHdrLen:], c.Data)
	return b
}

// DecodeSnapChunk parses a snapshot chunk.
func DecodeSnapChunk(b []byte) (SnapChunk, error) {
	if len(b) < snapHdrLen {
		return SnapChunk{}, errBadWire
	}
	le := binary.LittleEndian
	c := SnapChunk{
		Term:      le.Uint32(b[0:]),
		Leader:    le.Uint32(b[4:]),
		LeaderPID: le.Uint32(b[8:]),
		SvcPID:    le.Uint32(b[12:]),
		LastIndex: le.Uint32(b[16:]),
		LastTerm:  le.Uint32(b[20:]),
		Offset:    le.Uint32(b[24:]),
		Total:     le.Uint32(b[28:]),
		Data:      b[snapHdrLen:len(b):len(b)],
	}
	if c.Total > maxSnapTotal ||
		uint64(c.Offset)+uint64(len(c.Data)) > uint64(c.Total) {
		return SnapChunk{}, errBadWire
	}
	return c, nil
}
