package experiments

import (
	"fmt"
	"sort"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/params"
	"vsystem/internal/sched"
	"vsystem/internal/trace"
	"vsystem/internal/workload"
)

// ClusterLoadHosts sets the E11 grid size. The default exercises the
// cluster scale the paper could only speculate about ("a larger network
// of perhaps 100 machines", §5); vbench -hosts overrides it (CI runs the
// determinism double-check at 100).
var ClusterLoadHosts = 500

// ClusterLoad (E11) is the compile-farm macro-benchmark: an open-loop
// Poisson stream of latency-critical and best-effort jobs submitted from
// ten home workstations into a large cluster via `@ *`, once per
// selection policy. Open-loop arrivals do not slow down when the cluster
// backs up, so the p99/p999 turnaround tail exposes what closed-loop
// experiments hide.
//
// At this scale the paper's first-response protocol has two built-in
// costs the sched layer avoids: every query makes every idle machine
// evaluate the probe (§2.1's "response time ... about 23 ms" — here paid
// a few hundred times per second cluster-wide), and every willing machine
// answers, so the submitter's kernel digests hundreds of replies per
// placement at ~0.7 ms each. The load-aware policies answer from the
// beacon-fed cache with one unicast probe instead. The shared costs both
// configurations keep: the file server ships every job's image (the
// per-class hot spot measured here in bytes), and the 10 Mbit/s segment
// serializes everything.
func ClusterLoad(seed int64) *Result {
	hosts := ClusterLoadHosts
	r := newResult("E11", fmt.Sprintf("Open-loop cluster load, %d hosts (§2.1, §5)", hosts))

	arms := []struct {
		label  string
		policy sched.Policy
	}{
		{"first-response", sched.FirstResponse{}},
		{"random-2", sched.RandomK{K: params.SelectRandomK}},
		{"least-loaded", sched.LeastLoaded{}},
	}
	res := map[string]clusterLoadResult{}
	for _, arm := range arms {
		a := runClusterLoadArm(arm.policy, seed, hosts)
		res[arm.label] = a
		for ci, cl := range a.classes {
			r.row(fmt.Sprintf("%s p50/p99/p999, %s", cl.name, arm.label), "—",
				fmt.Sprintf("%.0f / %.0f / %.0f ms", cl.p50, cl.p99, cl.p999),
				fmt.Sprintf("%d jobs", cl.done))
			pfx := fmt.Sprintf("%s_%s_", cl.name, arm.label)
			r.metric(pfx+"p50_ms", cl.p50)
			r.metric(pfx+"p99_ms", cl.p99)
			r.metric(pfx+"p999_ms", cl.p999)
			_ = ci
		}
		r.row("placement excess, "+arm.label, "—",
			fmt.Sprintf("%.2f ready", a.placeExcess),
			fmt.Sprintf("%.1f multicasts/job, %.0f%% warm", a.multicastsPerJob, a.warmShare*100))
		r.row("hot spots, "+arm.label, "—",
			fmt.Sprintf("fs %.2f MB, home %.2f MB", a.fsMB, a.homeMB),
			fmt.Sprintf("bus %.0f%% busy", a.busBusy*100))
		r.metric("place_excess_"+arm.label, a.placeExcess)
		r.metric("multicasts_per_job_"+arm.label, a.multicastsPerJob)
		r.metric("warm_share_"+arm.label, a.warmShare)
		r.metric("fs_mb_"+arm.label, a.fsMB)
		r.metric("home_mb_"+arm.label, a.homeMB)
		r.metric("bus_busy_"+arm.label, a.busBusy)
		r.metric("failed_"+arm.label, float64(a.failed))

		r.check(a.done+a.failed == a.total,
			"%s: %d done + %d failed != %d submitted", arm.label, a.done, a.failed, a.total)
		r.check(a.done >= a.total*9/10,
			"%s: only %d/%d jobs completed", arm.label, a.done, a.total)
	}

	first, least, rnd := res["first-response"], res["least-loaded"], res["random-2"]
	r.note("first-response pays a cluster-wide probe evaluation and a reply implosion per placement")
	r.note("load-aware policies place from the beacon-fed cache: one unicast probe on the warm path")
	r.note("least-loaded herds: submitters agree on the best host, race for it, and fall back cold")
	r.note("the shared file server is the hot spot every policy pays — the paper's §5 scaling worry")
	r.check(first.warmShare == 0,
		"first-response made warm-cache placements — baseline must stay multicast-only")
	r.check(first.multicastsPerJob >= 1,
		"first-response multicasts/job %.2f — baseline must multicast every placement",
		first.multicastsPerJob)
	for _, a := range []struct {
		label string
		res   clusterLoadResult
	}{{"random-2", rnd}, {"least-loaded", least}} {
		r.check(a.res.warmShare > 0.3,
			"%s warm share %.2f — beacon/cache path unused at scale", a.label, a.res.warmShare)
		r.check(a.res.multicastsPerJob < 1,
			"%s multicasts/job %.2f — cache failed to suppress multicast placement",
			a.label, a.res.multicastsPerJob)
	}
	r.check(rnd.warmShare > least.warmShare,
		"random-2 warm share %.2f not above least-loaded %.2f — expected herding penalty",
		rnd.warmShare, least.warmShare)
	for _, arm := range arms {
		a := res[arm.label]
		r.check(a.classes[0].p50 < a.classes[1].p50,
			"%s: lc p50 %.0f ms not below be p50 %.0f ms", arm.label, a.classes[0].p50, a.classes[1].p50)
		r.check(a.fsMB > 2*a.homeMB,
			"%s: fs hot spot %.2f MB not dominating home %.2f MB", arm.label, a.fsMB, a.homeMB)
	}
	return r
}

type clusterClassResult struct {
	name           string
	done           int
	p50, p99, p999 float64
}

type clusterLoadResult struct {
	total, done, failed int
	classes             []clusterClassResult
	placeExcess         float64
	multicastsPerJob    float64
	warmShare           float64
	fsMB, homeMB        float64
	busBusy             float64
}

// clusterLoadStream is the common workload every arm replays: the stream
// is seeded independently of the cluster so all policies see identical
// arrivals.
func clusterLoadStream(seed int64) workload.OpenLoop {
	return workload.OpenLoop{
		RatePerSec: 10,
		Duration:   15 * time.Second,
		Classes:    []workload.JobClass{workload.LatencyCritical(), workload.BestEffort()},
		Seed:       seed * 7919,
	}
}

func runClusterLoadArm(policy sched.Policy, seed int64, hosts int) clusterLoadResult {
	c := core.NewCluster(core.Options{Workstations: hosts, Seed: seed, Select: policy})
	ol := clusterLoadStream(seed)
	for _, img := range ol.Images() {
		c.Install(img)
	}
	arrivals := ol.Schedule()

	// Beacons are staggered 10 ms per host, so the slowest first
	// advertisement lands at hosts*10ms; warm up past it before the
	// stream starts so the policies run in steady state.
	warmup := time.Duration(hosts)*10*time.Millisecond + time.Second
	submitters := 10
	if submitters > hosts {
		submitters = hosts
	}

	// Placement quality, sampled at each selection: how many more ready
	// program-priority requests the chosen host had than the least-loaded
	// non-home candidate at that instant.
	var excessSum float64
	var excessN int
	c.Trace.Subscribe(func(ev trace.Event) {
		if ev.Kind != trace.EvSelectChoice {
			return
		}
		chosen := c.NodeByLH(ev.LH)
		if chosen == nil {
			return
		}
		minDepth := -1
		for _, n := range c.Nodes {
			if uint16(n.Host.NIC.MAC()) == ev.Host || n.Host.Crashed() {
				continue
			}
			if d := n.Host.ReadyDepth(); minDepth < 0 || d < minDepth {
				minDepth = d
			}
		}
		if minDepth >= 0 {
			excessSum += float64(chosen.Host.ReadyDepth() - minDepth)
			excessN++
		}
	})

	total := len(arrivals)
	type jobDone struct {
		class int
		ms    float64
	}
	var (
		done   []jobDone
		failed int
	)
	for i, ar := range arrivals {
		ar := ar
		c.Node(i % submitters).Agent(func(a *core.Agent) {
			a.Sleep(warmup + ar.At)
			t0 := a.Now()
			var job *core.Job
			for attempt := 0; attempt < 5; attempt++ {
				j, err := a.ExecR(ar.Program, nil, "*", 0)
				if err == nil {
					job = j
					break
				}
				// Growing backoff: transient failures cluster at the
				// congestion peak, so spreading the retries matters more
				// than retrying fast.
				a.Sleep(time.Duration(attempt+1) * 500 * time.Millisecond)
			}
			if job == nil {
				failed++
				return
			}
			if _, err := a.Wait(job); err != nil {
				failed++
				return
			}
			done = append(done, jobDone{class: ar.Class, ms: a.Now().Sub(t0).Seconds() * 1000})
		})
	}

	maxService := time.Duration(0)
	for _, cl := range ol.Classes {
		if d := time.Duration(cl.MaxServiceMs) * time.Millisecond; d > maxService {
			maxService = d
		}
	}
	// Generous drain: under the congestion peak a job can ride several
	// retry backoffs plus the file-server queue, so the tail of the open
	// loop lands well after the last arrival.
	runTo := warmup + ol.Duration + maxService + 20*time.Second
	c.Run(runTo)

	out := clusterLoadResult{total: total, done: len(done), failed: failed}
	for ci, cl := range ol.Classes {
		var ts []float64
		for _, d := range done {
			if d.class == ci {
				ts = append(ts, d.ms)
			}
		}
		sort.Float64s(ts)
		out.classes = append(out.classes, clusterClassResult{
			name: cl.Name, done: len(ts),
			p50: percentile(ts, 0.50), p99: percentile(ts, 0.99), p999: percentile(ts, 0.999),
		})
	}
	if excessN > 0 {
		out.placeExcess = excessSum / float64(excessN)
	}
	var st sched.Stats
	var homeBytes int64
	for i := 0; i < submitters; i++ {
		s := c.Node(i).Selector.Stats()
		st.Queries += s.Queries
		st.WarmPicks += s.WarmPicks
		st.Multicasts += s.Multicasts
		tx, rx := c.Node(i).Host.NIC.ByteCounters()
		if tx+rx > homeBytes {
			homeBytes = tx + rx
		}
	}
	if st.Queries > 0 {
		out.multicastsPerJob = float64(st.Multicasts) / float64(st.Queries)
		out.warmShare = float64(st.WarmPicks) / float64(st.Queries)
	}
	fsTx, fsRx := c.FSHost.NIC.ByteCounters()
	out.fsMB = float64(fsTx+fsRx) / (1 << 20)
	out.homeMB = float64(homeBytes) / (1 << 20)
	bs := c.Bus.Stats()
	if el := c.Sim.Now().Seconds(); el > 0 {
		out.busBusy = bs.BusyTime.Seconds() / el
	}
	return out
}

// percentile reads the p-quantile from sorted data (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
