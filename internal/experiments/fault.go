package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/fault"
	"vsystem/internal/progs"
	"vsystem/internal/trace"
)

// faultCell is one cell of the F1 sweep: which migration participant is
// killed, at which phase (and pre-copy round), under how much ambient
// frame loss.
type faultCell struct {
	label  string
	victim fault.Victim
	phase  trace.Phase
	round  int
	loss   float64
}

// gapless counts strictly consecutive "t<i>" ticker lines on a possibly
// shared display, ignoring other programs' output.
func gapless(lines []string) (int, bool) {
	var ticks []int
	for _, ln := range lines {
		var n int
		if _, err := fmt.Sscanf(ln, "t%d", &n); err == nil && ln == fmt.Sprintf("t%d", n) {
			ticks = append(ticks, n)
		}
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] != ticks[i-1]+1 {
			return len(ticks), false
		}
	}
	return len(ticks), true
}

// FaultSweep probes the §3.1.3 crash-tolerance claims end to end with the
// deterministic fault injector: a migration participant is killed at each
// phase of the §3.1 algorithm (and under ambient frame loss), and in every
// cell the program must survive with its output intact — on the source
// when the destination dies before the LHID swap (with the migrator
// retrying to an alternate host), on the destination when the source dies
// after it ("one of the two hosts can crash during migration without
// destroying the program").
func FaultSweep(seed int64) *Result {
	r := newResult("F1", "migration under injected faults (§3.1.3 crash tolerance)")

	cells := []faultCell{
		{label: "no fault (baseline)", victim: fault.VictimNone},
		{label: "dest crash @ precopy r0", victim: fault.VictimDest, phase: trace.PhasePrecopy},
		{label: "dest crash @ residue", victim: fault.VictimDest, phase: trace.PhaseResidue},
		{label: "dest crash @ swap", victim: fault.VictimDest, phase: trace.PhaseSwap},
		{label: "source crash @ rebind", victim: fault.VictimSource, phase: trace.PhaseRebind},
		{label: "dest crash @ precopy r0, 5% loss", victim: fault.VictimDest,
			phase: trace.PhasePrecopy, loss: 0.05},
	}

	// 400 ticks ≈ 14 s of output: long enough that the program is still
	// running when a faulted attempt times out (~5 s) and is retried.
	const wantTicks = 400
	for _, cell := range cells {
		c := bootCluster(core.Options{Workstations: 4, Seed: seed, LossRate: cell.loss})
		c.Install(progs.Ticker(wantTicks))
		if cell.victim != fault.VictimNone {
			c.Fault.MigrationFault(cell.phase, cell.round, cell.victim)
		}
		srcDies := cell.victim == fault.VictimSource

		// When the destination is the victim the agent (and its display)
		// live on the source, which must survive; when the source is the
		// victim they live on a third host.
		home := c.Node(1)
		where := "" // local
		if srcDies {
			home = c.Node(0)
			where = "ws1"
		}
		var rep *core.MigrationReport
		var execErr, migErr error
		home.Agent(func(a *core.Agent) {
			job, err := a.Exec(fmt.Sprintf("ticker%d", wantTicks), nil, where)
			if err != nil {
				execErr = err
				return
			}
			a.Sleep(800 * time.Millisecond)
			rep, migErr = a.Migrate(job, false)
		})
		c.Run(90 * time.Second)
		if execErr != nil {
			r.check(false, "%s: exec: %v", cell.label, execErr)
			return r
		}

		ticks, ordered := gapless(home.Display.Lines())
		survived := ticks == wantTicks && ordered
		retries := 0
		if mig, ok := c.Node(1).PM.Migrator.(*core.Migrator); ok {
			retries = mig.Retries
		}
		freeze := "-"
		if rep != nil {
			freeze = fmt.Sprintf("frozen %.0f ms", rep.FreezeTime.Seconds()*1000)
		}
		status := "migrated"
		if srcDies {
			status = "adopted by dest"
		}
		if !survived {
			status = "LOST OUTPUT"
		}
		r.row(cell.label, "program survives, output intact",
			fmt.Sprintf("%s, %d retries, %s", status, retries, freeze),
			fmt.Sprintf("%d/%d ticks, ordered=%v, faults=%d",
				ticks, wantTicks, ordered, c.Trace.Count(trace.EvMigFault)))
		r.metric("survived_"+metricKey(cell.label), b2f(survived))
		r.metric("retries_"+metricKey(cell.label), float64(retries))
		if rep != nil {
			r.metric("freeze_ms_"+metricKey(cell.label), rep.FreezeTime.Seconds()*1000)
		}

		r.check(survived, "%s: output lost (%d/%d ticks, ordered=%v)",
			cell.label, ticks, wantTicks, ordered)
		if cell.victim == fault.VictimNone {
			r.check(migErr == nil && retries == 0,
				"%s: err=%v retries=%d", cell.label, migErr, retries)
		} else {
			r.check(c.Trace.Count(trace.EvMigFault) == 1,
				"%s: fault fired %d times", cell.label, c.Trace.Count(trace.EvMigFault))
		}
		if cell.victim == fault.VictimDest {
			// Destination died before the program moved: the migrator
			// must have retried to an alternate host and succeeded.
			r.check(migErr == nil && retries >= 1 && rep != nil,
				"%s: err=%v retries=%d rep=%v", cell.label, migErr, retries, rep != nil)
			if rep != nil {
				r.check(rep.FreezeTime < 5*time.Second,
					"%s: freeze exploded: %v", cell.label, rep.FreezeTime)
			}
		}
		if srcDies {
			// The manager died mid-call, so the client sees a failure —
			// but the adopted copy kept the output flowing (checked
			// above by the survival assertion).
			r.check(migErr != nil, "%s: Migrate succeeded though its manager crashed", cell.label)
		}
	}
	r.note("dest crashes leave the original unfrozen on the source; the LHID swap is the commit point")
	return r
}

// metricKey compresses a cell label into a metric-name fragment.
func metricKey(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}
