package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/kernel"
	"vsystem/internal/vid"
	"vsystem/internal/workload"
)

// forever returns a non-terminating variant of a workload spec.
func forever(s workload.Spec) workload.Spec {
	s.DurationMs = 0
	s.Name += ".inf"
	return s
}

// MigrationCopyCosts regenerates the §4.1 migration state-copy costs:
//
//	kernel server + program manager state: 14 ms + 9 ms per process
//	and address space
//	address-space copy between hosts: 3 s per Mbyte
//
// The kernel-state line is obtained by migrating logical hosts with 1..5
// processes and fitting time vs item count; the copy rate from the
// stop-and-copy transfer of a large frozen address space.
func MigrationCopyCosts(seed int64) *Result {
	r := newResult("E2", "migration state-copy costs (§4.1)")

	// --- kernel-state cost vs process count.
	var items, kms []float64
	for k := 1; k <= 5; k++ {
		c := bootCluster(core.Options{Workstations: 3, Seed: seed + int64(k)})
		spec, _ := workload.PaperSpec("make")
		c.Install(workload.Image(forever(spec), 0))
		var rep *core.MigrationReport
		var err error
		kk := k
		c.Node(0).Agent(func(a *core.Agent) {
			job, e := a.Exec("make.inf", nil, "ws1")
			if e != nil {
				err = e
				return
			}
			// Add extra processes sharing the program's address space
			// (sub-programs of the logical host, §3).
			_, lh := c.FindProgram(job.LHID)
			for i := 1; i < kk; i++ {
				p := lh.NewProcess(1, workload.BodyKind, kernel.Regs{})
				lh.Host().Start(p)
			}
			a.Sleep(2 * time.Second)
			rep, err = a.Migrate(job, false)
		})
		c.Run(time.Minute)
		if err != nil {
			r.check(false, "k=%d: %v", k, err)
			return r
		}
		items = append(items, float64(rep.KernelItems))
		kms = append(kms, rep.KernelTime.Seconds()*1000)
	}
	base, perItem := linfit(items, kms)
	r.row("kernel+PM state copy: base", "14 ms", ms(base), "intercept over 1..5 processes")
	r.row("kernel+PM state copy: per process/space", "9 ms", ms(perItem), "slope")
	r.metric("kstate_base_ms", base)
	r.metric("kstate_per_item_ms", perItem)
	r.check(base > 7 && base < 28, "kernel-state base %.1fms not ≈14ms", base)
	r.check(perItem > 4.5 && perItem < 18, "per-item %.1fms not ≈9ms", perItem)

	// --- address-space copy rate from a frozen 1 MB transfer.
	{
		c := bootCluster(core.Options{Workstations: 3, Seed: seed, Policy: core.PolicyStopCopy})
		big := workload.Spec{Name: "memhog", HotKB: 900, HotRateKBps: 50, StreamKBps: 0, StreamKB: 64, DurationMs: 0}
		c.Install(workload.Image(big, 0))
		var rep *core.MigrationReport
		var err error
		c.Node(0).Agent(func(a *core.Agent) {
			job, e := a.Exec("memhog", nil, "ws1")
			if e != nil {
				err = e
				return
			}
			a.Sleep(4 * time.Second) // allocate the full image
			rep, err = a.Migrate(job, false)
		})
		c.Run(time.Minute)
		if err != nil {
			r.check(false, "copy-rate run: %v", err)
			return r
		}
		kb := rep.Rounds[0].KB
		secPerMB := rep.Rounds[0].Dur.Seconds() / (kb / 1024)
		r.row("address-space copy rate", "3 s/MB", fmt.Sprintf("%.2f s/MB", secPerMB),
			fmt.Sprintf("stop-and-copy of %.0f KB frozen state", kb))
		r.metric("copy_s_per_MB", secPerMB)
		r.check(secPerMB > 1.5 && secPerMB < 6, "copy rate %.2fs/MB not ≈3s/MB", secPerMB)
	}
	return r
}

// DirtyPageRates regenerates Table 4-1: Kbytes dirtied by each program in
// sampling intervals of 0.2, 1 and 3 seconds, measured by clearing and
// counting the dirty bits of the running program's address space.
func DirtyPageRates(seed int64) *Result {
	r := newResult("E3", "Table 4-1: dirty page generation rates (Kbytes)")
	specs := workload.PaperSpecs()
	c := bootCluster(core.Options{Workstations: len(specs) + 1, Seed: seed})
	for _, s := range specs {
		c.Install(workload.Image(forever(s), 0))
	}

	intervals := []time.Duration{200 * time.Millisecond, time.Second, 3 * time.Second}
	type cell struct {
		sum float64
		n   int
	}
	measured := make(map[string][3]float64)
	done := 0

	for i, s := range specs {
		s := s
		node := c.Node(i + 1)
		c.Node(0).Agent(func(a *core.Agent) {
			job, err := a.Exec(s.Name+".inf", nil, node.Name())
			if err != nil {
				r.check(false, "%s: %v", s.Name, err)
				done++
				return
			}
			a.Sleep(4 * time.Second) // warm up past the allocation phase
			_, lh := c.FindProgram(job.LHID)
			space := lh.Spaces()[0]
			var vals [3]float64
			for ii, interval := range intervals {
				cl := cell{}
				for rep := 0; rep < 4; rep++ {
					space.ClearDirty()
					a.Sleep(interval)
					cl.sum += float64(space.DirtyCount())
					cl.n++
				}
				vals[ii] = cl.sum / float64(cl.n)
			}
			measured[s.Name] = vals
			a.DestroyProgram(job)
			done++
		})
	}
	c.Run(2 * time.Minute)

	for _, s := range specs {
		paper := workload.Table41[s.Name]
		got, ok := measured[s.Name]
		if !ok {
			r.check(false, "%s not measured", s.Name)
			continue
		}
		for i, label := range []string{"0.2s", "1s", "3s"} {
			r.row(fmt.Sprintf("%-13s @ %s", s.Name, label),
				fmt.Sprintf("%.1f KB", paper[i]),
				fmt.Sprintf("%.1f KB", got[i]), "")
			r.metric(fmt.Sprintf("%s_%s_KB", s.Name, label), got[i])
			// Shape: within 2x for small values (<8 KB, where page
			// quantization dominates), 40% otherwise.
			p, g := paper[i], got[i]
			if p < 8 {
				r.check(g >= p/2-1 && g <= p*2+1, "%s@%s: %.1f vs paper %.1f", s.Name, label, g, p)
			} else {
				r.check(g >= p*0.6 && g <= p*1.4, "%s@%s: %.1f vs paper %.1f", s.Name, label, g, p)
			}
		}
	}
	return r
}

// PrecopyEffectiveness regenerates the §4.1 pre-copy findings: usually 2
// useful pre-copy iterations; a frozen residual of 0.5-70 KB; program
// suspension times of 5-210 ms (plus kernel-state copy).
func PrecopyEffectiveness(seed int64) *Result {
	r := newResult("E4", "pre-copy effectiveness: iterations, residual, freeze time (§4.1)")
	specs := workload.PaperSpecs()

	var minRes, maxRes, minFrz, maxFrz float64
	first := true
	roundsHist := map[int]int{}
	for i, s := range specs {
		c := bootCluster(core.Options{Workstations: 4, Seed: seed + int64(i)})
		var rep *core.MigrationReport
		var err error
		c.Node(0).Agent(func(a *core.Agent) {
			job, e := a.Exec(s.Name, nil, "ws1")
			if e != nil {
				err = e
				return
			}
			a.Sleep(5 * time.Second)
			rep, err = a.Migrate(job, false)
		})
		c.Run(time.Minute)
		if err != nil {
			r.check(false, "%s: %v", s.Name, err)
			continue
		}
		frz := rep.FreezeTime.Seconds() * 1000
		r.row(fmt.Sprintf("%-13s", s.Name),
			"2 iters, 0.5-70 KB, 5-210 ms",
			fmt.Sprintf("%d iters, %.1f KB, %.0f ms", len(rep.Rounds), rep.ResidualKB, frz), "")
		r.metric(s.Name+"_freeze_ms", frz)
		r.metric(s.Name+"_residual_KB", rep.ResidualKB)
		roundsHist[len(rep.Rounds)]++
		if first || rep.ResidualKB < minRes {
			minRes = rep.ResidualKB
		}
		if first || rep.ResidualKB > maxRes {
			maxRes = rep.ResidualKB
		}
		if first || frz < minFrz {
			minFrz = frz
		}
		if first || frz > maxFrz {
			maxFrz = frz
		}
		first = false
		r.check(len(rep.Rounds) >= 1 && len(rep.Rounds) <= 3, "%s used %d rounds", s.Name, len(rep.Rounds))
	}
	r.row("residual range", "0.5 - 70 KB", fmt.Sprintf("%.1f - %.1f KB", minRes, maxRes), "")
	r.row("suspension range", "5 - 210 ms", fmt.Sprintf("%.0f - %.0f ms", minFrz, maxFrz), "incl. kernel-state copy")
	r.check(maxRes <= 110, "max residual %.1fKB far above paper's 70KB", maxRes)
	r.check(maxFrz <= 420, "max freeze %.0fms far above paper's 210ms", maxFrz)
	r.check(minFrz >= 2, "min freeze %.0fms implausibly small", minFrz)
	return r
}

// VMPaging regenerates Figure 3-1's variant (§3.2): migration by flushing
// dirty pages to the network file server and demand-faulting them in on
// the new host — compared against direct pre-copy.
func VMPaging(seed int64) *Result {
	r := newResult("F3-1", "virtual-memory (flush to file server) migration variant (§3.2, Fig. 3-1)")

	run := func(policy core.Policy) (*core.MigrationReport, *core.PagerStats, error) {
		c := bootCluster(core.Options{Workstations: 3, Seed: seed, Policy: policy})
		var rep *core.MigrationReport
		var err error
		var job *core.Job
		c.Node(0).Agent(func(a *core.Agent) {
			job, err = a.Exec("tex", nil, "ws1")
			if err != nil {
				return
			}
			a.Sleep(4 * time.Second)
			rep, err = a.Migrate(job, false)
			if err != nil {
				return
			}
			a.Sleep(8 * time.Second) // let demand faults happen
		})
		c.Run(time.Minute)
		if err != nil {
			return nil, nil, err
		}
		return rep, c.PagerStatsFor(job.LHID), nil
	}

	pre, _, err := run(core.PolicyPrecopy)
	if err != nil {
		r.check(false, "precopy: %v", err)
		return r
	}
	fl, pager, err := run(core.PolicyFlush)
	if err != nil {
		r.check(false, "flush: %v", err)
		return r
	}

	r.row("freeze time: pre-copy", "5-210 ms", fmt.Sprintf("%.0f ms", pre.FreezeTime.Seconds()*1000), "")
	r.row("freeze time: flush variant", "similar (residual only)", fmt.Sprintf("%.0f ms", fl.FreezeTime.Seconds()*1000), "")
	r.row("pages copied twice (flushed then faulted)", "small", fmt.Sprintf("%.0f KB (%d faults)", pager.FaultKB, pager.Faults),
		"dirty on old host, then referenced on new host")
	r.row("bytes placed on the network by the source", "comparable", fmt.Sprintf("precopy %.0f KB vs flush %.0f KB",
		float64(pre.BytesCopied)/1024, float64(fl.BytesCopied)/1024), "")
	r.metric("precopy_freeze_ms", pre.FreezeTime.Seconds()*1000)
	r.metric("flush_freeze_ms", fl.FreezeTime.Seconds()*1000)
	r.metric("fault_KB", pager.FaultKB)
	r.check(pager.Faults > 0, "no demand faults observed")
	r.check(fl.FreezeTime < 700*time.Millisecond, "flush freeze %.0fms not small", fl.FreezeTime.Seconds()*1000)
	r.check(pager.FaultKB <= float64(fl.BytesCopied)/1024, "faulted more than flushed")
	return r
}

// AblationFreeze regenerates the §3.1 motivation: freezing for the whole
// copy suspends the program for seconds (≈3 s/MB), pre-copying for
// milliseconds, across logical-host sizes.
func AblationFreeze(seed int64) *Result {
	r := newResult("A1", "ablation: stop-and-copy vs pre-copy freeze time (§3.1)")
	sizes := []uint32{128, 256, 512, 1024} // KB of hot memory

	for _, kb := range sizes {
		var frz [2]time.Duration
		for pi, policy := range []core.Policy{core.PolicyStopCopy, core.PolicyPrecopy} {
			c := bootCluster(core.Options{Workstations: 3, Seed: seed, Policy: policy})
			spec := workload.Spec{
				Name:  fmt.Sprintf("hog%dk", kb),
				HotKB: float64(kb), HotRateKBps: 40, StreamKBps: 0, StreamKB: 16,
			}
			c.Install(workload.Image(spec, 0))
			var rep *core.MigrationReport
			var err error
			c.Node(0).Agent(func(a *core.Agent) {
				job, e := a.Exec(spec.Name, nil, "ws1")
				if e != nil {
					err = e
					return
				}
				a.Sleep(5 * time.Second)
				rep, err = a.Migrate(job, false)
			})
			c.Run(time.Minute)
			if err != nil {
				r.check(false, "%dKB/%v: %v", kb, policy, err)
				return r
			}
			frz[pi] = rep.FreezeTime
		}
		paperStop := fmt.Sprintf("≈%.1f s", float64(kb)/1024*3)
		r.row(fmt.Sprintf("%4d KB logical host: stop-and-copy freeze", kb), paperStop,
			fmt.Sprintf("%.2f s", frz[0].Seconds()), "frozen for the whole copy")
		r.row(fmt.Sprintf("%4d KB logical host: pre-copy freeze", kb), "ms range",
			fmt.Sprintf("%.0f ms", frz[1].Seconds()*1000), "")
		r.metric(fmt.Sprintf("stop_freeze_s_%dKB", kb), frz[0].Seconds())
		r.metric(fmt.Sprintf("precopy_freeze_ms_%dKB", kb), frz[1].Seconds()*1000)
		r.check(frz[1] < frz[0]/4, "%dKB: precopy %v not ≪ stopcopy %v", kb, frz[1], frz[0])
	}
	return r
}

// AblationResidual regenerates the §5 Demos/MP comparison: forwarding
// addresses leave a residual dependency on the source host (relay load
// while it lives, reference failure when it reboots), while logical-host
// rebinding survives the source's loss.
func AblationResidual(seed int64) *Result {
	r := newResult("A2", "ablation: forwarding addresses (Demos/MP) vs logical-host rebinding (§5)")

	run := func(policy core.Policy, noRebind bool) (forwarded int64, postCrashOK bool) {
		c := bootCluster(core.Options{Workstations: 4, Seed: seed, Policy: policy})
		if noRebind {
			for _, n := range c.Nodes {
				n.Host.IPC.NoRebind = true
			}
			c.FSHost.IPC.NoRebind = true
		}
		migrated, crashed := false, false
		var job *core.Job
		c.Node(0).Agent(func(a *core.Agent) {
			var e error
			job, e = a.Exec("tex", nil, "ws1")
			if e != nil {
				return
			}
			a.Sleep(3 * time.Second)
			if _, e := a.Migrate(job, false); e != nil {
				return
			}
			migrated = true
			a.Sleep(3 * time.Second)
			c.Node(1).Host.Crash()
			crashed = true
		})
		ok := false
		// The prober runs on the server machine: it is never a migration
		// destination and receives no traffic from the program, so its
		// binding cache can only be fixed by the rebinding machinery.
		c.FSHost.SpawnServer("prober", 8192, func(ctx *kernel.ProcCtx) {
			ctx.Sleep(2 * time.Second)
			for job == nil {
				ctx.Sleep(200 * time.Millisecond)
			}
			ks := vid.NewPID(job.LHID, vid.IdxKernelServer)
			// Prime the binding cache while the program is on ws1.
			ctx.Send(ks, vid.Message{Op: kernel.KsPing})
			for !migrated {
				ctx.Sleep(200 * time.Millisecond)
			}
			// Stale references keep flowing through the old host.
			for i := 0; i < 5; i++ {
				ctx.Send(ks, vid.Message{Op: kernel.KsPing})
				ctx.Sleep(100 * time.Millisecond)
			}
			for !crashed {
				ctx.Sleep(200 * time.Millisecond)
			}
			ctx.Sleep(time.Second)
			_, err := ctx.Send(ks, vid.Message{Op: kernel.KsPing})
			ok = err == nil
		})
		c.Run(3 * time.Minute)
		return c.Node(1).Host.IPC.Stats().Forwarded, ok
	}

	fwdLoad, fwdOK := run(core.PolicyForwarding, true)
	rbLoad, rbOK := run(core.PolicyPrecopy, false)

	r.row("relay load on source after migration", "Demos/MP: every stale reference",
		fmt.Sprintf("forwarding: %d pkts, rebinding: %d pkts", fwdLoad, rbLoad), "")
	r.row("stale reference after source reboot", "Demos/MP fails; V rebinds",
		fmt.Sprintf("forwarding ok=%v, rebinding ok=%v", fwdOK, rbOK), "")
	r.metric("forwarded_pkts", float64(fwdLoad))
	r.metric("rebind_survives", b2f(rbOK))
	r.metric("forwarding_survives", b2f(fwdOK))
	r.check(fwdLoad > 0, "no forwarded packets under forwarding policy")
	r.check(!fwdOK, "forwarding survived source reboot")
	r.check(rbOK, "rebinding did not survive source reboot")
	r.check(rbLoad < fwdLoad, "rebinding relayed as much as forwarding")
	return r
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
