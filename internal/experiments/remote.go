package experiments

import (
	"fmt"
	"sort"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/packet"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
	"vsystem/internal/workload"
)

// RemoteExecCosts regenerates the §4.1 remote-execution cost breakdown:
//
//	host selection            23 ms (time to first response)
//	env setup + destroy       40 ms
//	program loading           330 ms per 100 Kbytes
//
// Setup/destroy and load rate are separated by sweeping image sizes and
// fitting a line: the intercept is environment overhead, the slope the
// load rate.
func RemoteExecCosts(seed int64) *Result {
	r := newResult("E1", "remote execution costs (§4.1)")
	c := bootCluster(core.Options{Workstations: 5, Seed: seed})

	// Sized images for the load sweep.
	sizes := []uint32{25, 50, 100, 200, 400} // KB of pad
	for _, kb := range sizes {
		spec := workload.Spec{Name: fmt.Sprintf("sized%dk", kb), HotKB: 4, HotRateKBps: 10, DurationMs: 60000}
		c.Install(workload.Image(spec, kb*1024))
	}

	var selMS []float64
	var createMS []float64 // per size: create+destroy round trip
	var err error
	c.Node(0).Agent(func(a *core.Agent) {
		// Host selection: 10 queries.
		for i := 0; i < 10; i++ {
			t0 := a.Now()
			if _, e := a.Select(64 * 1024); e != nil {
				err = e
				return
			}
			selMS = append(selMS, a.Now().Sub(t0).Seconds()*1000)
			a.Sleep(100 * time.Millisecond)
		}
		// Create+destroy sweep over image sizes, always on ws1.
		sel, e := core.FindHost(a.Ctx(), "ws1")
		if e != nil {
			err = e
			return
		}
		for _, kb := range sizes {
			t0 := a.Now()
			job, e := a.CreateProgram(sel, fmt.Sprintf("sized%dk", kb), nil)
			if e != nil {
				err = e
				return
			}
			if e := a.DestroyProgram(job); e != nil {
				err = e
				return
			}
			createMS = append(createMS, a.Now().Sub(t0).Seconds()*1000)
			a.Sleep(100 * time.Millisecond)
		}
	})
	c.Run(2 * time.Minute)
	if err != nil {
		r.check(false, "agent failed: %v", err)
		return r
	}

	sel := mean(selMS)
	// Linear fit createMS = overhead + rate * KB.
	var xs []float64
	for _, kb := range sizes {
		xs = append(xs, float64(kb))
	}
	overhead, perKB := linfit(xs, createMS)
	per100KB := perKB * 100

	r.row("host selection (first response)", "23 ms", ms(sel), "multicast to PM group")
	r.row("env setup + destroy", "40 ms", ms(overhead), "zero-size intercept of create+destroy sweep")
	r.row("program loading per 100 KB", "330 ms", ms(per100KB), "slope of create+destroy sweep")
	r.metric("select_ms", sel)
	r.metric("env_ms", overhead)
	r.metric("load_ms_per_100KB", per100KB)
	r.check(sel > 10 && sel < 46, "selection %.1fms outside 2x of 23ms", sel)
	r.check(overhead > 20 && overhead < 80, "env overhead %.1fms outside 2x of 40ms", overhead)
	r.check(per100KB > 165 && per100KB < 660, "load rate %.1fms/100KB outside 2x of 330ms", per100KB)
	return r
}

// ExecutionOverheads regenerates the §4.1 execution-time overheads:
//
//	local-group-id indirection   +100 µs per kernel/team-server op
//	frozen check                 +13 µs on several kernel operations
//
// Measured by timing a fixed batch of kernel-server operations with the
// mechanism enabled and disabled.
func ExecutionOverheads(seed int64) *Result {
	r := newResult("E5", "execution-time overheads of remote execution & migration support (§4.1)")

	const ops = 200
	// opBatch issues ops pings to ws1's kernel server through a
	// well-known local-group id and returns the elapsed virtual time.
	opBatch := func(groupIndirection, migrationOverhead bool) time.Duration {
		c := bootCluster(core.Options{Workstations: 2, Seed: seed})
		for _, n := range c.Nodes {
			n.Host.IPC.GroupIndirection = groupIndirection
			n.Host.MigrationOverhead = migrationOverhead
		}
		var elapsed time.Duration
		c.Node(0).Agent(func(a *core.Agent) {
			dst := vid.NewPID(c.Node(1).Host.SystemLH().ID(), vid.IdxKernelServer)
			// Warm the binding cache first.
			a.Ctx().Send(dst, vid.Message{Op: 0x10})
			t0 := a.Now()
			for i := 0; i < ops; i++ {
				a.Ctx().Send(dst, vid.Message{Op: 0x10})
			}
			elapsed = a.Now().Sub(t0)
		})
		c.Run(time.Minute)
		return elapsed
	}

	full := opBatch(true, true)
	noGroup := opBatch(false, true)
	noFrozen := opBatch(true, false)

	groupPerOp := float64(full-noGroup) / float64(ops) / float64(time.Microsecond)
	// The frozen check is charged on every gate the agent's own sends
	// pass as well, so the per-op delta includes a handful of checks.
	frozenPerOp := float64(full-noFrozen) / float64(ops) / float64(time.Microsecond)

	r.row("local-group-id indirection / op", "100 µs", fmt.Sprintf("%.0f µs", groupPerOp), "GroupIndirection on vs off")
	r.row("frozen-check overhead / op", "13 µs", fmt.Sprintf("%.0f µs", frozenPerOp), "MigrationOverhead on vs off (≥1 check per op)")
	r.metric("group_us_per_op", groupPerOp)
	r.metric("frozen_us_per_op", frozenPerOp)
	r.check(groupPerOp > 50 && groupPerOp < 200, "group indirection %.0fµs not ≈100µs", groupPerOp)
	r.check(frozenPerOp >= 13 && frozenPerOp < 150, "frozen check %.0fµs not in [13µs, ~10x]", frozenPerOp)
	return r
}

// CommPaths regenerates Figure 2-1: the communication paths of a remote
// execution. It traces one `primes @ ws1` run and verifies each leg of
// the figure appears: requester ↔ program-manager group, requester ↔
// program manager, program manager ↔ file server, requester ↔ kernel
// server, program ↔ display server (on the home workstation).
func CommPaths(seed int64) *Result {
	r := newResult("F2-1", "communication paths for (remote) program execution (Fig. 2-1)")
	c := bootCluster(core.Options{Workstations: 3, Seed: seed})

	type leg struct{ from, to, what string }
	var legs []leg
	seen := map[string]int{}
	name := func(p vid.PID) string {
		lh := p.LH()
		for _, n := range c.Nodes {
			if n.Host.SystemLH().ID() == lh {
				switch p.Index() {
				case vid.IdxKernelServer:
					return "kserver@" + n.Name()
				case vid.IdxProgramManager:
					return "progmgr@" + n.Name()
				}
				if p == n.PM.PID() {
					return "progmgr@" + n.Name()
				}
				if p == n.Display.PID() {
					return "display@" + n.Name()
				}
				return "agent@" + n.Name()
			}
		}
		if c.FSHost.SystemLH().ID() == lh {
			return "fileserver"
		}
		if p == vid.GroupProgramManagers {
			return "pm-group"
		}
		if p.IsGroup() {
			return "group"
		}
		if p.Index() == vid.IdxKernelServer {
			return "kserver(prog)"
		}
		return "program"
	}
	// Every request leaving a host (on the wire or delivered locally) is one
	// leg of the figure; receive events would double-count each leg.
	c.Trace.Subscribe(func(ev trace.Event) {
		if ev.Kind != trace.EvPktTx && ev.Kind != trace.EvPktLocal {
			return
		}
		if ev.Pkt == nil || ev.Pkt.Kind != packet.KRequest {
			return
		}
		l := leg{from: name(ev.Pkt.Src), to: name(ev.Pkt.Dst), what: ev.Pkt.Kind.String()}
		key := l.from + "→" + l.to
		if seen[key] == 0 {
			legs = append(legs, l)
		}
		seen[key]++
	})

	var err error
	c.Node(0).Agent(func(a *core.Agent) {
		job, e := a.Exec("primes2000", nil, "ws1")
		if e != nil {
			err = e
			return
		}
		_, err = a.Wait(job)
	})
	c.Run(5 * time.Minute)
	if err != nil {
		r.check(false, "exec failed: %v", err)
		return r
	}

	want := []struct{ key, why string }{
		{"agent@ws0→pm-group", "host selection / name query"},
		{"agent@ws0→progmgr@ws1", "program creation request"},
		{"progmgr@ws1→fileserver", "image loading (diskless workstation)"},
		{"agent@ws0→kserver(prog)", "start: 'reply to the initial process'"},
		{"program→display@ws0", "terminal output to home display server"},
	}
	for _, w := range want {
		key, why := w.key, w.why
		n := seen[key]
		r.row(key, "present", fmt.Sprintf("%d request(s)", n), why)
		r.check(n > 0, "missing leg %s", key)
	}
	// Order-stable dump of every observed first leg for the figure.
	sort.Slice(legs, func(i, j int) bool { return legs[i].from+legs[i].to < legs[j].from+legs[j].to })
	for _, l := range legs {
		r.note("observed: %s → %s", l.from, l.to)
	}
	r.metric("legs", float64(len(legs)))
	return r
}

// Usage regenerates the §4.3 usage observations: on a cluster where most
// workstations are idle most of the time, almost all `@ *` requests are
// honored; hosts running local work are never selected.
func Usage(seed int64) *Result {
	r := newResult("A3", "usage: idle workstations as a processor pool (§4.3)")
	const stations = 10
	c := bootCluster(core.Options{Workstations: stations, Seed: seed})

	// Three owners use their workstations (editing: a make-like light
	// local job that still marks the CPU busy at probe time is too weak —
	// run tex locally to model an actively used machine).
	busy := map[string]bool{"ws1": true, "ws2": true, "ws3": true}
	for i := 1; i <= 3; i++ {
		n := c.Node(i)
		n.Agent(func(a *core.Agent) {
			a.Exec("tex", nil, "")
		})
	}

	// Batch jobs sized like a compilation phase (~4 s of CPU).
	batch := workload.Spec{Name: "batchjob", HotKB: 24, HotRateKBps: 150, StreamKBps: 8, StreamKB: 64, DurationMs: 4000}
	c.Install(workload.Image(batch, 30*1024))

	honored, refused := 0, 0
	placedOnBusy := 0
	c.Node(0).Agent(func(a *core.Agent) {
		a.Sleep(3 * time.Second)
		for i := 0; i < 12; i++ {
			job, e := a.Exec("batchjob", nil, "*")
			if e != nil {
				refused++
			} else {
				honored++
				if busy[job.Host] {
					placedOnBusy++
				}
			}
			a.Sleep(time.Second)
		}
	})
	c.Run(2 * time.Minute)

	r.row("remote exec requests honored", "almost all", fmt.Sprintf("%d/%d", honored, honored+refused), "12 batch jobs @ * on a 10-station cluster, 3 in use")
	r.row("placed on a user's busy workstation", "never (owner priority)", fmt.Sprintf("%d", placedOnBusy), "")
	r.metric("honored", float64(honored))
	r.metric("refused", float64(refused))
	r.check(honored >= 10, "only %d/12 honored", honored)
	r.check(placedOnBusy == 0, "%d jobs placed on busy workstations", placedOnBusy)
	return r
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// linfit returns the least-squares intercept and slope of y = a + b*x.
func linfit(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	b = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a = (sy - b*sx) / n
	return a, b
}
