package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/params"
	"vsystem/internal/progs"
	"vsystem/internal/trace"
)

// crashCell is one cell of the F2 sweep: when the hosting workstation is
// killed, under how much ambient loss, and whether it later reboots.
type crashCell struct {
	label     string
	crashAt   time.Duration // 0: no crash (baseline)
	restartAt time.Duration // 0: stays down
	loss      float64
}

// GuestCrash probes the exec-session supervision layer end to end: a
// program is executed remotely, its hosting workstation is powered off at
// a configurable point, and the home program manager must detect the loss
// (through the per-host failure detector and the session lease), select a
// new host, and re-execute the program from its file-server image — with
// the user-visible output stream staying exactly-once despite the replay
// (§2.3: the only residual dependency a supervised guest keeps on its
// home is one the home can always honor).
func GuestCrash(seed int64) *Result {
	r := newResult("F2", "guest recovery after hosting-workstation loss (§2.3 supervision)")

	cells := []crashCell{
		{label: "no fault (baseline)"},
		{label: "host crash @ 2s", crashAt: 2 * time.Second},
		{label: "host crash @ 5s", crashAt: 5 * time.Second},
		{label: "host crash @ 9s", crashAt: 9 * time.Second},
		{label: "host crash @ 5s, 5% loss", crashAt: 5 * time.Second, loss: 0.05},
		{label: "host crash @ 5s, reboot @ 20s", crashAt: 5 * time.Second, restartAt: 20 * time.Second},
	}

	// 300 ticks ≈ 10.5 s of output: the crash always lands mid-run, and a
	// re-executed incarnation replays the full stream through the
	// deduplicating display.
	const wantTicks = 300
	// The detection-latency budget: the failure detector needs
	// SuspectAfterRetries silent retransmission ticks, plus scheduling
	// slack; anything near the old ~5 s per-send abort is a regression.
	detectBudget := time.Duration(params.SuspectAfterRetries)*params.RetransmitInterval +
		250*time.Millisecond

	for _, cell := range cells {
		c := bootCluster(core.Options{Workstations: 4, Seed: seed, LossRate: cell.loss})
		c.Install(progs.Ticker(wantTicks))
		victim := c.Node(1)
		victimMAC := uint16(victim.Host.NIC.MAC())
		if cell.crashAt > 0 {
			c.Fault.CrashAfter(cell.crashAt, victim.Host.NIC.MAC())
		}
		if cell.restartAt > 0 {
			c.Fault.RestartAfter(cell.restartAt, victim.Host.NIC.MAC())
		}

		// First suspicion of the victim anywhere in the cluster: its Size
		// field carries the detector's measured silence in microseconds.
		var detectUS int
		c.Trace.Subscribe(func(ev trace.Event) {
			if ev.Kind == trace.EvHostSuspect && ev.Peer == victimMAC && detectUS == 0 {
				detectUS = ev.Size
			}
		})

		home := c.Node(0)
		var code uint32
		var execErr, waitErr error
		waits := 0
		home.Agent(func(a *core.Agent) {
			job, err := a.Exec(fmt.Sprintf("ticker%d", wantTicks), nil, "ws1")
			if err != nil {
				execErr = err
				return
			}
			code, waitErr = a.Wait(job)
			waits++
		})
		c.Run(120 * time.Second)
		if execErr != nil {
			r.check(false, "%s: exec: %v", cell.label, execErr)
			return r
		}

		ticks, ordered := gapless(home.Display.Lines())
		survived := ticks == wantTicks && ordered
		restarts := c.Trace.Count(trace.EvExecRestart)
		detect := time.Duration(detectUS) * time.Microsecond

		status := "ran to completion"
		if cell.crashAt > 0 {
			status = fmt.Sprintf("re-executed %dx, detected in %v", restarts, detect.Round(time.Millisecond))
		}
		if !survived {
			status = "LOST OUTPUT"
		}
		r.row(cell.label, "exit seen once, output exactly-once",
			status,
			fmt.Sprintf("%d/%d ticks, ordered=%v, wait=(%d,%v,%v), expires=%d",
				ticks, wantTicks, ordered, code, waitErr, waits,
				c.Trace.Count(trace.EvLeaseExpire)))
		r.metric("survived_"+metricKey(cell.label), b2f(survived))
		r.metric("restarts_"+metricKey(cell.label), float64(restarts))
		if cell.crashAt > 0 {
			r.metric("detect_ms_"+metricKey(cell.label), detect.Seconds()*1000)
		}

		r.check(survived, "%s: output not exactly-once (%d/%d ticks, ordered=%v)",
			cell.label, ticks, wantTicks, ordered)
		r.check(waitErr == nil && code == 0 && waits == 1,
			"%s: wait=(%d,%v) waits=%d", cell.label, code, waitErr, waits)
		if cell.crashAt == 0 {
			r.check(restarts == 0 && c.Trace.Count(trace.EvHostSuspect) == 0,
				"%s: spurious recovery (restarts=%d suspects=%d)", cell.label,
				restarts, c.Trace.Count(trace.EvHostSuspect))
		} else {
			r.check(restarts >= 1, "%s: no re-execution after host loss", cell.label)
			r.check(detectUS > 0 && detect <= detectBudget,
				"%s: detection latency %v exceeds budget %v", cell.label, detect, detectBudget)
			r.check(detect < 2500*time.Millisecond,
				"%s: detection %v not clearly under the ~5 s send abort", cell.label, detect)
		}
		if cell.restartAt > 0 {
			r.check(c.Trace.Count(trace.EvHostClear) >= 1,
				"%s: reboot never cleared the standing suspicion", cell.label)
		}
	}
	r.note("detection = SuspectAfterRetries unanswered retransmissions with station-wide silence; recovery = locate group query, then re-exec from the file-server image")
	return r
}
