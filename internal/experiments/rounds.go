package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/params"
)

// PrecopyRounds ablates the pre-copy stopping policy — the design choice
// behind the paper's "usually 2 pre-copy iterations were useful" (§4.1).
// The iteration cap is swept from 1 (a single full copy, then freeze) to 6
// on the heaviest dirtier (tex): freeze time drops sharply from 1 to 2-3
// rounds and then flattens, while total migration time and bytes keep
// growing — the diminishing-returns curve that justifies stopping early.
func PrecopyRounds(seed int64) *Result {
	r := newResult("A5", "ablation: how many pre-copy iterations are useful (§3.1.2, §4.1)")

	defer func(rounds int, stop, shrink float64) {
		params.PrecopyMaxRounds = rounds
		params.PrecopyStopKB = stop
		params.PrecopyMinShrink = shrink
	}(params.PrecopyMaxRounds, params.PrecopyStopKB, params.PrecopyMinShrink)

	// Disable the auxiliary stop conditions so the cap is the only policy.
	params.PrecopyStopKB = 1
	params.PrecopyMinShrink = 1.0

	var freezes []float64
	for _, cap := range []int{1, 2, 3, 4, 6} {
		params.PrecopyMaxRounds = cap
		c := bootCluster(core.Options{Workstations: 3, Seed: seed})
		var rep *core.MigrationReport
		var err error
		c.Node(0).Agent(func(a *core.Agent) {
			job, e := a.Exec("tex", nil, "ws1")
			if e != nil {
				err = e
				return
			}
			a.Sleep(4 * time.Second)
			rep, err = a.Migrate(job, false)
		})
		c.Run(time.Minute)
		if err != nil {
			r.check(false, "cap=%d: %v", cap, err)
			return r
		}
		frz := rep.FreezeTime.Seconds() * 1000
		freezes = append(freezes, frz)
		r.row(fmt.Sprintf("%d iteration(s)", cap),
			"2 useful; more: diminishing returns",
			fmt.Sprintf("freeze %4.0f ms, residual %5.1f KB, total %.2f s, %3.0f KB copied",
				frz, rep.ResidualKB, rep.Total.Seconds(), float64(rep.BytesCopied)/1024),
			fmt.Sprintf("%d rounds actually run", len(rep.Rounds)))
		r.metric(fmt.Sprintf("freeze_ms_cap%d", cap), frz)
		r.metric(fmt.Sprintf("total_s_cap%d", cap), rep.Total.Seconds())
	}
	// Shape: the second iteration buys a large freeze reduction...
	r.check(freezes[1] < freezes[0]*0.6,
		"second iteration bought little: %.0f → %.0f ms", freezes[0], freezes[1])
	// ...and beyond three the curve is flat (within 2x of the 3-round
	// point — page quantization makes tiny residues noisy).
	for i := 2; i < len(freezes); i++ {
		r.check(freezes[i] < freezes[2]*2+30,
			"cap %d freeze %.0fms regressed vs 3-round %.0fms", []int{1, 2, 3, 4, 6}[i], freezes[i], freezes[2])
	}
	return r
}
