package experiments

import "testing"

// TestAllExperimentsAcrossSeeds guards the shape assertions against seed
// sensitivity: the benchmark harness reruns experiments with increasing
// seeds, so every experiment must pass for the first few.
func TestAllExperimentsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	// The sweep covers E11 at 150 hosts (the >127-host regression region);
	// the 500-host default grid runs via vbench.
	oldHosts := ClusterLoadHosts
	ClusterLoadHosts = 150
	defer func() { ClusterLoadHosts = oldHosts }()
	for seed := int64(1); seed <= 3; seed++ {
		for _, name := range Names() {
			f, _ := ByName(name)
			r := f(seed)
			if !r.Pass {
				t.Errorf("%s failed at seed %d:\n%s", name, seed, r.Format())
			}
		}
	}
}
