package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/vid"
	"vsystem/internal/workload"
)

// CommDuringMigration regenerates the §3.1.3 behavioural claim that has no
// numeric table but anchors the whole design: operations on a migrating
// program are *suspended, not aborted* — "operations that normally take a
// few milliseconds could take [longer] to complete", bounded by the freeze
// window plus a retransmission, and "critical system servers … are not
// subjected to inordinate delays".
//
// A client calls a migratable echo service every 50 ms while the service
// is migrated. Expected shape: zero failed or misordered operations; the
// slowest operation ≈ freeze time + at most one retransmission interval;
// operations outside the migration window stay at baseline latency.
func CommDuringMigration(seed int64) *Result {
	r := newResult("E7", "operations on a migrating program: delayed, never aborted (§3.1.3)")
	c := bootCluster(core.Options{Workstations: 4, Seed: seed})
	c.Install(workload.ServiceImage("txmgr"))

	const calls = 150
	var latencies []float64 // ms
	failures, misordered := 0, 0
	var rep *core.MigrationReport
	var err error

	c.Node(0).Agent(func(a *core.Agent) {
		job, e := a.Exec("txmgr", nil, "ws1")
		if e != nil {
			err = e
			return
		}
		// The migration happens from a second agent mid-stream.
		c.Node(0).Agent(func(m *core.Agent) {
			m.Sleep(2 * time.Second)
			rep, err = m.Migrate(job, false)
		})
		for i := 0; i < calls; i++ {
			t0 := a.Now()
			reply, e := a.Ctx().Send(job.PID, vid.Message{
				Op: workload.OpEchoService,
				W:  [6]uint32{uint32(i)},
			})
			if e != nil || !reply.OK() || reply.W[1] != 1 {
				failures++
			} else if reply.W[0] != uint32(i) {
				misordered++
			}
			latencies = append(latencies, a.Now().Sub(t0).Seconds()*1000)
			a.Sleep(20 * time.Millisecond)
		}
	})
	c.Run(2 * time.Minute)
	if err != nil {
		r.check(false, "run failed: %v", err)
		return r
	}

	var maxMS, base float64
	slow := 0
	for i, l := range latencies {
		if l > maxMS {
			maxMS = l
		}
		if l > 25 {
			slow++
		}
		if i < 20 {
			base += l / 20
		}
	}

	r.row("operations aborted by the migration", "none (reply-pending defers)", fmt.Sprint(failures), "")
	r.row("operations answered out of order / wrongly", "none (exactly-once)", fmt.Sprint(misordered), "")
	r.row("baseline operation latency", "a few ms", ms(base), "echo with 2 ms service time")
	r.row("slowest operation during migration", "freeze + retransmission",
		ms(maxMS), fmt.Sprintf("freeze was %.0f ms", rep.FreezeTime.Seconds()*1000))
	r.row("operations visibly delayed (>25 ms)", "only those in the freeze window", fmt.Sprint(slow), "")
	r.metric("failures", float64(failures))
	r.metric("max_ms", maxMS)
	r.metric("base_ms", base)
	r.check(failures == 0, "%d operations failed", failures)
	r.check(misordered == 0, "%d operations misordered", misordered)
	r.check(base < 15, "baseline latency %.1fms too high", base)
	frzMS := rep.FreezeTime.Seconds() * 1000
	r.check(maxMS < frzMS+450, "max latency %.0fms far above freeze %.0fms + retransmits", maxMS, frzMS)
	r.check(slow >= 1 && slow <= 10, "%d delayed ops — freeze window not exercised or too disruptive", slow)
	r.check(maxMS > frzMS/2, "max latency %.0fms did not reflect the %.0fms freeze — window missed", maxMS, frzMS)
	return r
}
