package experiments

import "testing"

// Each experiment runs as a test so the full evaluation is exercised by
// `go test`; the shape assertions inside the harness are the pass/fail
// criteria.
func runExp(t *testing.T, f func(int64) *Result) {
	t.Helper()
	r := f(1)
	t.Log("\n" + r.Format())
	if !r.Pass {
		t.Fatalf("%s failed shape assertions:\n%s", r.ID, r.Format())
	}
}

func TestE1RemoteExecCosts(t *testing.T)      { runExp(t, RemoteExecCosts) }
func TestE2MigrationCopyCosts(t *testing.T)   { runExp(t, MigrationCopyCosts) }
func TestE3DirtyPageRates(t *testing.T)       { runExp(t, DirtyPageRates) }
func TestE4PrecopyEffectiveness(t *testing.T) { runExp(t, PrecopyEffectiveness) }
func TestE5ExecutionOverheads(t *testing.T)   { runExp(t, ExecutionOverheads) }
func TestF21CommPaths(t *testing.T)           { runExp(t, CommPaths) }
func TestE7CommDuringMigration(t *testing.T)  { runExp(t, CommDuringMigration) }
func TestF31VMPaging(t *testing.T)            { runExp(t, VMPaging) }
func TestA1AblationFreeze(t *testing.T)       { runExp(t, AblationFreeze) }
func TestA2AblationResidual(t *testing.T)     { runExp(t, AblationResidual) }
func TestA3Usage(t *testing.T)                { runExp(t, Usage) }
func TestE8SelectionScaling(t *testing.T)     { runExp(t, SelectionScaling) }
func TestE9SelectionPolicies(t *testing.T)    { runExp(t, SelectionPolicies) }
func TestA4MigrationUnderLoss(t *testing.T)   { runExp(t, MigrationUnderLoss) }
func TestA5PrecopyRounds(t *testing.T)        { runExp(t, PrecopyRounds) }
func TestF1FaultSweep(t *testing.T)           { runExp(t, FaultSweep) }
func TestF2GuestCrash(t *testing.T)           { runExp(t, GuestCrash) }
func TestF3HomeCrash(t *testing.T)            { runExp(t, HomeCrash) }

// E11 runs in the suite on a 150-host grid: big enough to cover the
// >127-host LHID-station region (where the 8-bit station layout used to
// collide with the group-id space) while keeping `go test` fast. The full
// 500-host default runs via vbench; CI double-runs 100 hosts for
// determinism.
func TestE11ClusterLoad(t *testing.T) {
	old := ClusterLoadHosts
	ClusterLoadHosts = 150
	defer func() { ClusterLoadHosts = old }()
	runExp(t, ClusterLoad)
}

func TestE6SpaceCost(t *testing.T) {
	r := SpaceCost("../..") // repo root relative to this package
	t.Log("\n" + r.Format())
	if !r.Pass {
		t.Fatalf("E6 failed:\n%s", r.Format())
	}
}

func TestByNameAndNamesAgree(t *testing.T) {
	for _, n := range Names() {
		if _, ok := ByName(n); !ok {
			t.Errorf("Names() lists %q but ByName misses it", n)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName found a bogus experiment")
	}
}
