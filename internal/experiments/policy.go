package experiments

import (
	"fmt"
	"sort"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/fault"
	"vsystem/internal/progs"
	"vsystem/internal/trace"
	"vsystem/internal/workload"
)

// MigrationPolicies (E12) compares the four copy policies end to end on
// the Table 4-1 dirty-rate grid, with and without ambient frame loss.
// Pre-copy (§3.1.2) pays its residue inside the freeze window; flush
// (§3.2) pays a file-server round trip per referenced page afterwards;
// post-copy freezes almost immediately and demand-pulls the residue from
// a frozen source receptacle; hybrid pre-copies the recent-dirty ("hot")
// set first so the post-swap fault storm mostly misses. The headline
// claim pinned here: on a saturating dirty-rate cell under loss, hybrid
// cuts freeze time at least 5× against pre-copy — while a second sweep
// holds every policy to exactly-once guest output under injected crashes.
func MigrationPolicies(seed int64) *Result {
	r := newResult("E12", "copy policies: precopy / flush / postcopy / hybrid (freeze vs residue cost)")

	policies := []core.Policy{core.PolicyPrecopy, core.PolicyFlush, core.PolicyPostcopy, core.PolicyHybrid}
	// Low, middling and saturating dirty rates from the Table 4-1 grid.
	specs := []string{"make", "parser", "tex"}
	losses := []float64{0, 0.05}

	for _, spec := range specs {
		for _, loss := range losses {
			for _, pol := range policies {
				key := fmt.Sprintf("%s_%s_loss%d", pol, spec, int(loss*100))
				label := fmt.Sprintf("%-8s %-6s loss %2.0f%%", pol, spec, loss*100)
				c := bootCluster(core.Options{Workstations: 3, Seed: seed, LossRate: loss, Policy: pol})
				var rep *core.MigrationReport
				var err error
				c.Node(0).Agent(func(a *core.Agent) {
					job, e := a.Exec(spec, nil, "ws1")
					if e != nil {
						err = e
						return
					}
					a.Sleep(4 * time.Second)
					rep, err = a.Migrate(job, false)
				})
				// Migrate returns once the residue completes (≤ ~10 s of
				// virtual time); don't simulate the idle tail of the run.
				c.Run(15 * time.Second)
				if err != nil || rep == nil {
					r.check(false, "%s: migrate: %v", label, err)
					continue
				}
				r.check(!rep.ResidueAborted, "%s: residue aborted on a healthy cluster", label)

				frz := rep.FreezeTime.Seconds() * 1000
				r.row(label,
					"postcopy/hybrid freeze ≪ precopy",
					fmt.Sprintf("freeze %6.0f ms, total %5.2f s, wire %4.0f KB",
						frz, rep.Total.Seconds(), float64(rep.WireBytes)/1024),
					fmt.Sprintf("%d post-swap faults, %3.0f ms stalled, pull %3.0f KB, push %3.0f KB",
						rep.PostSwapFaults, rep.PostSwapStall.Seconds()*1000,
						rep.PostSwapPullKB, rep.ResiduePushKB))
				r.metric("freeze_ms_"+key, frz)
				r.metric("total_s_"+key, rep.Total.Seconds())
				r.metric("wire_kb_"+key, float64(rep.WireBytes)/1024)
				r.metric("stall_ms_"+key, rep.PostSwapStall.Seconds()*1000)
				r.metric("faults_"+key, float64(rep.PostSwapFaults))
			}
		}
	}

	// Headline acceptance. The Table 4-1 cells above are paper-faithful
	// but small: tex's ~100 KB residue drains through the windowed copy
	// engine in a couple of window flights, so a single trial's freeze
	// time under loss is dominated by retransmission-timeout luck rather
	// than by policy. The acceptance cell instead saturates the wire — a
	// 512 KB hot set re-dirtied at 3 MB/s, above the 10 Mbit/s Ethernet —
	// so pre-copy rounds cannot converge and the frozen residue is
	// structurally the whole hot set; the comparison takes the median of
	// three seed-derived trials per policy to damp timeout tails.
	stress := workload.Spec{Name: "stress", HotKB: 512, HotRateKBps: 3000, DurationMs: 30000}
	medianFreeze := func(pol core.Policy) float64 {
		var fs []float64
		for trial := 0; trial < 3; trial++ {
			label := fmt.Sprintf("%-8s stress loss  5%% #%d", pol, trial+1)
			c := bootCluster(core.Options{Workstations: 3, Seed: seed + int64(trial)*1009, LossRate: 0.05, Policy: pol})
			c.Install(workload.Image(stress, 64*1024))
			var rep *core.MigrationReport
			var err error
			c.Node(0).Agent(func(a *core.Agent) {
				job, e := a.Exec("stress", nil, "ws1")
				if e != nil {
					err = e
					return
				}
				a.Sleep(4 * time.Second)
				rep, err = a.Migrate(job, false)
			})
			c.Run(20 * time.Second)
			if err != nil || rep == nil {
				r.check(false, "%s: migrate: %v", label, err)
				fs = append(fs, 0)
				continue
			}
			r.check(!rep.ResidueAborted, "%s: residue aborted on a healthy cluster", label)
			frz := rep.FreezeTime.Seconds() * 1000
			fs = append(fs, frz)
			r.row(label,
				"saturating hot set: freeze reflects policy, not luck",
				fmt.Sprintf("freeze %6.0f ms, total %5.2f s, wire %4.0f KB",
					frz, rep.Total.Seconds(), float64(rep.WireBytes)/1024),
				fmt.Sprintf("%d post-swap faults, %3.0f ms stalled, pull %3.0f KB, push %3.0f KB",
					rep.PostSwapFaults, rep.PostSwapStall.Seconds()*1000,
					rep.PostSwapPullKB, rep.ResiduePushKB))
			r.metric(fmt.Sprintf("freeze_ms_%s_stress_loss5_t%d", pol, trial+1), frz)
		}
		sort.Float64s(fs)
		return fs[1]
	}
	hi := medianFreeze(core.PolicyPrecopy)
	lo := medianFreeze(core.PolicyHybrid)
	r.note("stress @ 5%% loss (median of 3): precopy freeze %.0f ms vs hybrid %.0f ms (%.1f×)", hi, lo, hi/lo)
	r.check(lo > 0 && lo*5 <= hi,
		"hybrid freeze %.0f ms not ≥5× below precopy %.0f ms on stress @ 5%% loss", lo, hi)

	// Exactly-once sweep: every policy must deliver every guest output
	// line exactly once, in order — with no fault, with the destination
	// killed at the commit point (retry path), and, for the receptacle
	// policies, with the source killed mid-residue (clean abort; the
	// supervised session re-executes from its file-server image).
	const wantTicks = 400
	for _, pol := range policies {
		cells := []struct {
			label  string
			victim fault.Victim
			phase  trace.Phase
		}{
			{"no fault", fault.VictimNone, 0},
			{"dest crash @ swap", fault.VictimDest, trace.PhaseSwap},
		}
		if pol == core.PolicyPostcopy || pol == core.PolicyHybrid {
			cells = append(cells, struct {
				label  string
				victim fault.Victim
				phase  trace.Phase
			}{"source crash @ postswap-pull", fault.VictimSource, trace.PhasePostSwapPull})
		}
		for _, cell := range cells {
			label := fmt.Sprintf("%s, %s", pol, cell.label)
			c := bootCluster(core.Options{Workstations: 4, Seed: seed, Policy: pol})
			c.Install(progs.Ticker(wantTicks))
			if cell.victim != fault.VictimNone {
				c.Fault.MigrationFault(cell.phase, 0, cell.victim)
			}
			var execErr error
			c.Node(0).Agent(func(a *core.Agent) {
				job, e := a.Exec(fmt.Sprintf("ticker%d", wantTicks), nil, "ws1")
				if e != nil {
					execErr = e
					return
				}
				a.Sleep(800 * time.Millisecond)
				// Under a source crash the worker dies mid-call; the
				// session must still finish, so the error is not checked.
				a.Migrate(job, false)
			})
			// Worst case (source crash → lease expiry → full re-execution)
			// completes by ~30 s; 45 s leaves margin without simulating an
			// idle tail.
			c.Run(45 * time.Second)
			if execErr != nil {
				r.check(false, "%s: exec: %v", label, execErr)
				continue
			}
			ticks, ordered := gapless(c.Node(0).Display.Lines())
			r.row(label, "output exactly once, in order",
				fmt.Sprintf("%d/%d ticks, ordered=%v", ticks, wantTicks, ordered),
				fmt.Sprintf("faults=%d restarts=%d",
					c.Trace.Count(trace.EvMigFault), c.Trace.Count(trace.EvExecRestart)))
			r.metric("exactly_once_"+metricKey(label), b2f(ticks == wantTicks && ordered))
			r.check(ticks == wantTicks && ordered,
				"%s: output lost or duplicated (%d/%d, ordered=%v)", label, ticks, wantTicks, ordered)
			if cell.victim != fault.VictimNone {
				r.check(c.Trace.Count(trace.EvMigFault) == 1,
					"%s: fault fired %d times", label, c.Trace.Count(trace.EvMigFault))
			}
		}
	}
	return r
}
