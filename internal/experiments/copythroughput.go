package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// copyCell is one measurement of the bulk-transfer engine: a pusher
// process streams a synthetic address space into a sink logical host on
// another workstation through a copy window, exactly the mechanism the
// migrator's copyRuns uses.
type copyCell struct {
	kbps      float64       // effective copy bandwidth: logical KB / elapsed
	dur       time.Duration // push duration
	idle      float64       // fraction of the push the wire spent idle
	wireKB    float64       // bytes put on the wire (after zero-page elision)
	stalls    int64         // full-window issue stalls
	occupancy float64       // mean in-flight transactions at issue
	verified  bool          // destination memory byte-identical to intended
}

// cellPage returns whether page pn is all zero at the given zero
// fraction, and the page's intended contents.
func cellPage(pn int, zeroFrac float64) (bool, []byte) {
	if pn%10 < int(zeroFrac*10+0.5) {
		return true, mem.ZeroPage()
	}
	b := make([]byte, mem.PageSize)
	for j := range b {
		b[j] = byte(pn + j)
	}
	return false, b
}

// runCopyCell pushes `pages` 1 KB pages from ws0 into a fresh logical
// host on ws1 through a window of the given size, under the given frame
// loss rate, with the given fraction of all-zero pages.
func runCopyCell(seed int64, window, pages int, loss, zeroFrac float64) copyCell {
	c := bootCluster(core.Options{Workstations: 2, Seed: seed, LossRate: loss})
	src, dst := c.Node(0).Host, c.Node(1).Host
	dstKS := kernel.KernelServerPID(dst.SystemLH().ID())

	// Wire-busy accounting, gated to the push interval.
	var busy time.Duration
	pushing := false
	c.Trace.Subscribe(func(ev trace.Event) {
		if pushing && ev.Kind == trace.EvFrameTx {
			busy += params.WireTime(ev.Size)
		}
	})

	var cell copyCell
	var lhid, spaceID uint32
	done := false
	src.SpawnServer("pusher", 8192, func(ctx *kernel.ProcCtx) {
		m, err := ctx.Send(dstKS, vid.Message{Op: kernel.KsCreateLH, W: [6]uint32{1}, Seg: []byte("sink")})
		if err != nil || !m.OK() {
			return
		}
		lhid = m.W[0]
		m, err = ctx.Send(dstKS, vid.Message{Op: kernel.KsCreateSpace, W: [6]uint32{lhid, uint32(pages) * mem.PageSize}})
		if err != nil || !m.OK() {
			return
		}
		spaceID = m.W[0]

		win := src.IPC.NewWindow(src.SystemLH().ID(), window)
		defer win.Close()
		scratch := make([][]byte, kernel.MaxRunPages)
		pushing = true
		start := ctx.Now()
		for off := 0; off < pages; off += kernel.MaxRunPages {
			end := off + kernel.MaxRunPages
			if end > pages {
				end = pages
			}
			batch := make([]mem.PageNo, 0, end-off)
			data := scratch[:0]
			for pn := off; pn < end; pn++ {
				_, body := cellPage(pn, zeroFrac)
				batch = append(batch, mem.PageNo(pn))
				data = append(data, body)
			}
			seg := kernel.EncodePageRun(spaceID, batch, data)
			cell.wireKB += float64(len(seg)) / 1024
			if err := win.Send(ctx.Task(), dstKS, vid.Message{
				Op: kernel.KsWritePages, W: [6]uint32{lhid}, Seg: seg,
			}); err != nil {
				return
			}
		}
		if err := win.Drain(ctx.Task()); err != nil {
			return
		}
		cell.dur = ctx.Now().Sub(start)
		pushing = false
		ws := win.Stats()
		cell.stalls, cell.occupancy = ws.Stalls, ws.AvgOccupancy
		cell.kbps = float64(pages) * mem.PageSize / 1024 / cell.dur.Seconds()
		cell.idle = 1 - busy.Seconds()/cell.dur.Seconds()
		done = true
	})
	c.Run(2 * time.Minute)
	if !done {
		return cell
	}

	// Ordering / exactly-once audit: the sink must hold byte-identical
	// memory however the pipelined runs arrived.
	lh, ok := dst.LookupLH(vid.LHID(lhid))
	if !ok {
		return cell
	}
	as, ok := lh.Space(spaceID)
	if !ok {
		return cell
	}
	for pn := 0; pn < pages; pn++ {
		_, want := cellPage(pn, zeroFrac)
		got := as.Page(mem.PageNo(pn))
		for j := range want {
			if got[j] != want[j] {
				return cell
			}
		}
	}
	cell.verified = true
	return cell
}

// migrateCell migrates the tex workload once with the given copy window
// and returns its report (freeze/total non-regression comparison).
func migrateCell(seed int64, window int) (*core.MigrationReport, error) {
	defer func(w int) { params.CopyWindow = w }(params.CopyWindow)
	params.CopyWindow = window
	c := bootCluster(core.Options{Workstations: 3, Seed: seed})
	var rep *core.MigrationReport
	var err error
	c.Node(0).Agent(func(a *core.Agent) {
		job, e := a.Exec("tex", nil, "ws1")
		if e != nil {
			err = e
			return
		}
		a.Sleep(3 * time.Second)
		rep, err = a.Migrate(job, true)
	})
	c.Run(time.Minute)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// CopyThroughput regenerates E10: the windowed bulk-transfer engine's
// copy bandwidth as the window opens, under frame loss, and with
// zero-page elision, plus the end-to-end effect on a real pre-copy
// migration. Window 1 is the paper's stop-and-wait copy loop; the paper's
// 3 s/MB address-space copy rate (§4.1) is wire-limited, so the window's
// win shows on the reply-latency and loss-stall components, and elision
// on the sparse portions of a space.
func CopyThroughput(seed int64) *Result {
	r := newResult("E10", "copy-throughput: windowed bulk transfer × loss × zero pages")

	// --- Sweep A: window size under 5% frame loss, sparse (all-zero)
	// space. Stop-and-wait eats a 200 ms retransmission stall per lost
	// frame; an open window keeps copying around the stalled transaction.
	const sweepPages = 1500
	windows := []int{1, 2, 4, 8}
	cells := map[int]copyCell{}
	for _, w := range windows {
		cell := runCopyCell(seed, w, sweepPages, 0.05, 1.0)
		cells[w] = cell
		r.row(fmt.Sprintf("window %d @ 5%% loss", w), "—",
			fmt.Sprintf("%.0f KB/s", cell.kbps),
			fmt.Sprintf("wire idle %.0f%%, %d stalls, occupancy %.1f", cell.idle*100, cell.stalls, cell.occupancy))
		r.metric(fmt.Sprintf("loss_kbps_w%d", w), cell.kbps)
		r.check(cell.verified, "window %d: destination memory differs (ordering/exactly-once regression)", w)
	}
	speedup := cells[4].kbps / cells[1].kbps
	r.row("speedup window 4 vs 1", "≥ 2×", fmt.Sprintf("%.1f×", speedup), "acceptance headline")
	r.metric("speedup_w4_vs_w1", speedup)
	r.check(speedup >= 2, "window-4 speedup %.2fx < 2x", speedup)
	r.check(cells[2].kbps >= cells[1].kbps, "window 2 (%.0f KB/s) slower than stop-and-wait (%.0f KB/s)",
		cells[2].kbps, cells[1].kbps)
	r.check(cells[8].kbps >= 0.9*cells[4].kbps, "window 8 (%.0f KB/s) well below window 4 (%.0f KB/s)",
		cells[8].kbps, cells[4].kbps)
	r.check(cells[4].idle < cells[1].idle, "wire idle did not collapse: %.2f (w4) vs %.2f (w1)",
		cells[4].idle, cells[1].idle)
	r.check(cells[4].occupancy > cells[1].occupancy, "occupancy did not rise: %.2f vs %.2f",
		cells[4].occupancy, cells[1].occupancy)

	// --- Sweep B: zero-page elision at window 4, no loss. The all-zero
	// space travels as headers only.
	const elisionPages = 300
	var wire0, wire100 float64
	for _, z := range []float64{0, 0.5, 1.0} {
		cell := runCopyCell(seed, 4, elisionPages, 0, z)
		r.row(fmt.Sprintf("zero fraction %.1f", z), "—",
			fmt.Sprintf("%.0f KB wire", cell.wireKB),
			fmt.Sprintf("%.0f KB/s, wire idle %.0f%%", cell.kbps, cell.idle*100))
		r.metric(fmt.Sprintf("wire_kb_z%.0f", z*100), cell.wireKB)
		r.check(cell.verified, "zero fraction %.1f: destination memory differs", z)
		switch z {
		case 0:
			wire0 = cell.wireKB
		case 1.0:
			wire100 = cell.wireKB
		}
	}
	r.check(wire100 < 0.1*wire0, "elision saved too little: %.0f KB vs %.0f KB", wire100, wire0)

	// --- Wire idle on a dense space, no loss: the window overlaps the
	// reply gap even when the sender's bulk fragmentation dominates.
	dense1 := runCopyCell(seed, 1, elisionPages, 0, 0)
	dense4 := runCopyCell(seed, 4, elisionPages, 0, 0)
	r.row("dense copy, window 1 → 4", "—",
		fmt.Sprintf("%.0f → %.0f KB/s", dense1.kbps, dense4.kbps),
		fmt.Sprintf("wire idle %.0f%% → %.0f%%", dense1.idle*100, dense4.idle*100))
	r.metric("dense_kbps_w1", dense1.kbps)
	r.metric("dense_kbps_w4", dense4.kbps)
	r.check(dense1.verified && dense4.verified, "dense cells: destination memory differs")
	r.check(dense4.kbps >= dense1.kbps, "dense copy slower with window: %.0f vs %.0f KB/s",
		dense4.kbps, dense1.kbps)
	r.check(dense4.idle <= dense1.idle, "dense wire idle rose with window: %.2f vs %.2f",
		dense4.idle, dense1.idle)

	// --- End to end: a real pre-copy migration must not regress in freeze
	// or total time when the copy path pipelines.
	rep1, err1 := migrateCell(seed, 1)
	rep4, err4 := migrateCell(seed, 4)
	if err1 != nil || err4 != nil {
		r.check(false, "migration cells: w1=%v w4=%v", err1, err4)
		return r
	}
	f1, f4 := rep1.FreezeTime.Seconds()*1000, rep4.FreezeTime.Seconds()*1000
	t1, t4 := rep1.Total.Seconds()*1000, rep4.Total.Seconds()*1000
	r.row("tex migration freeze", "no regression", fmt.Sprintf("%.1f ms (w1 %.1f ms)", f4, f1),
		fmt.Sprintf("%d rounds, occupancy %.1f", len(rep4.Rounds), rep4.WindowOccupancy))
	r.row("tex migration total", "no regression", fmt.Sprintf("%.1f ms (w1 %.1f ms)", t4, t1), "")
	r.metric("freeze_w1_ms", f1)
	r.metric("freeze_w4_ms", f4)
	r.metric("total_w1_ms", t1)
	r.metric("total_w4_ms", t4)
	r.check(f4 <= f1*1.25+20, "freeze regressed: %.1f ms (w4) vs %.1f ms (w1)", f4, f1)
	r.check(t4 <= t1*1.10+50, "total regressed: %.1f ms (w4) vs %.1f ms (w1)", t4, t1)
	return r
}
