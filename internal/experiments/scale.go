package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/workload"
)

// SelectionScaling probes the §2.1 claim that first-responder selection
// "performs well at minimal cost for reasonably small systems": the time
// to the *first* response stays flat as the cluster grows (every idle host
// evaluates in parallel), while the total processing overhead — every
// manager pays the evaluation cost and the requester absorbs the extra
// responses — grows with cluster size. The paper's own cluster had ~25
// machines.
func SelectionScaling(seed int64) *Result {
	r := newResult("E8", "decentralized selection vs cluster size (§2.1)")

	sizes := []int{5, 10, 25}
	var firstMS []float64
	for _, n := range sizes {
		c := bootCluster(core.Options{Workstations: n, Seed: seed})
		var sel float64
		var rxExtra int64
		var err error
		c.Node(0).Agent(func(a *core.Agent) {
			a.Sleep(time.Second) // boot-time registrations settle
			var lat []float64
			for i := 0; i < 8; i++ {
				before := c.Node(0).Host.IPC.Stats().RxPackets
				t0 := a.Now()
				if _, e := a.Select(64 * 1024); e != nil {
					err = e
					return
				}
				lat = append(lat, a.Now().Sub(t0).Seconds()*1000)
				// Later responses keep arriving; count them after a beat.
				a.Sleep(200 * time.Millisecond)
				rxExtra += c.Node(0).Host.IPC.Stats().RxPackets - before
			}
			sel = mean(lat)
		})
		c.Run(time.Minute)
		if err != nil {
			r.check(false, "n=%d: %v", n, err)
			return r
		}
		firstMS = append(firstMS, sel)
		r.row(fmt.Sprintf("%2d workstations: first response", n), "≈23 ms (flat)",
			ms(sel), fmt.Sprintf("%.0f packets received per query", float64(rxExtra)/8))
		r.metric(fmt.Sprintf("select_ms_%d", n), sel)
	}
	// Shape: flat within noise across a 5x size range.
	r.check(firstMS[len(firstMS)-1] < firstMS[0]*1.6+5,
		"selection degraded with size: %.1f → %.1f ms", firstMS[0], firstMS[len(firstMS)-1])
	for _, v := range firstMS {
		r.check(v > 10 && v < 46, "first response %.1fms not ≈23ms", v)
	}
	return r
}

// MigrationUnderLoss probes the §3.1.3 reliability machinery end to end:
// migrations complete correctly under increasing Ethernet frame-loss
// rates, with freeze times degrading gracefully (lost residue frames are
// NACK-repaired inside the freeze window).
func MigrationUnderLoss(seed int64) *Result {
	r := newResult("A4", "migration under packet loss (§3.1.3 reliability)")

	rates := []float64{0, 0.02, 0.05, 0.10}
	var freezes []float64
	for _, rate := range rates {
		c := bootCluster(core.Options{Workstations: 3, Seed: seed, LossRate: rate})
		tex, _ := workload.PaperSpec("tex")
		c.Install(workload.Image(forever(tex), 0))
		var rep *core.MigrationReport
		var err error
		var lines int
		c.Node(0).Agent(func(a *core.Agent) {
			spec := workload.Spec{Name: "texout", HotKB: 96, HotRateKBps: 550,
				StreamKBps: 15.6, StreamKB: 192, DurationMs: 0, OutputEveryMs: 500}
			c.Install(workload.Image(spec, 0))
			job, e := a.Exec("texout", nil, "ws1")
			if e != nil {
				err = e
				return
			}
			a.Sleep(4 * time.Second)
			rep, err = a.Migrate(job, false)
			if err != nil {
				return
			}
			a.Sleep(4 * time.Second)
			lines = len(c.Node(0).Display.Lines())
		})
		c.Run(2 * time.Minute)
		if err != nil {
			r.check(false, "loss %.0f%%: %v", rate*100, err)
			return r
		}
		frz := rep.FreezeTime.Seconds() * 1000
		freezes = append(freezes, frz)
		r.row(fmt.Sprintf("loss %4.0f%%: migration", rate*100), "completes; freeze grows gracefully",
			fmt.Sprintf("ok, %d rounds, frozen %.0f ms", len(rep.Rounds), frz),
			fmt.Sprintf("%d output lines kept flowing", lines))
		r.metric(fmt.Sprintf("freeze_ms_loss%02.0f", rate*100), frz)
		r.check(lines > 10, "output stalled at %.0f%% loss", rate*100)
	}
	// The claim is bounded degradation, not a fixed ratio: each frame
	// lost inside the freeze window costs about one retransmission
	// interval, so even at 10% loss the freeze stays within a few
	// seconds (vs. aborting or hanging).
	r.check(freezes[len(freezes)-1] < 4000,
		"freeze exploded under loss: %.0f → %.0f ms", freezes[0], freezes[len(freezes)-1])
	return r
}
