package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SpaceCost regenerates the §4.2 space-cost accounting: the paper's
// migration support added 8 Kbytes to the kernel and 4 Kbytes to the
// permanently resident program manager. We report the size of the source
// files that exist *only* to support migration, grouped the same way.
// (Machine-code bytes on a 68010 and Go source bytes are not comparable;
// the shape claim is that migration support is a modest, bounded addition.)
func SpaceCost(root string) *Result {
	r := newResult("E6", "space cost of migration support (§4.2)")

	groups := []struct {
		label string
		paper string
		files []string
	}{
		{
			label: "kernel additions (freeze, state copy, LHID change)",
			paper: "8 KB of kernel code+data",
			files: []string{
				"internal/kernel/state.go",
			},
		},
		{
			label: "program manager additions (migration module) + migrateprog",
			paper: "4 KB resident program manager",
			files: []string{
				"internal/core/migrate.go",
				"internal/core/pager.go",
			},
		},
	}

	total := 0
	for _, g := range groups {
		bytes, lines := 0, 0
		var missing []string
		for _, f := range g.files {
			b, err := os.ReadFile(filepath.Join(root, f))
			if err != nil {
				missing = append(missing, f)
				continue
			}
			bytes += len(b)
			lines += strings.Count(string(b), "\n")
		}
		note := strings.Join(g.files, ", ")
		if len(missing) > 0 {
			r.check(false, "missing sources: %v", missing)
		}
		r.row(g.label, g.paper, fmt.Sprintf("%.1f KB source (%d lines)", float64(bytes)/1024, lines), note)
		r.metric(g.label, float64(bytes))
		total += bytes
	}
	r.note("total migration-specific source: %.1f KB", float64(total)/1024)
	r.check(total > 0 && total < 128*1024, "migration code size out of plausible range")
	return r
}
