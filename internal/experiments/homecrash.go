package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/ethernet"
	"vsystem/internal/params"
	"vsystem/internal/progs"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// homeCell is one cell of the F3 sweep: what happens to the home services
// (the consensus home-PM group, and optionally the replicated file
// service) while a supervised session runs.
type homeCell struct {
	label string
	home  int // ReplicateHome (0: single home PM)
	fs    int // ReplicateFS (0: single server machine)
	loss  float64
	// arm installs the cell's fault schedule once the cluster exists.
	arm func(c *core.Cluster)
	// hostCrash kills the hosting workstation (ws4) at this offset, forcing
	// the surviving home leader to re-execute the session.
	hostCrash time.Duration
	// disrupt names the event that starts the failover clock: a home
	// member's EvHostCrash, or EvPartition.
	disrupt trace.Kind
	// wantRestart: the session must be re-executed at least once.
	wantRestart bool
	// wantLost: the non-replicated baseline — the session must NOT survive
	// (that is what the consensus group buys).
	wantLost bool
}

// HomeCrash probes the replicated home services end to end (F3): a
// supervised remote session runs while the home-PM group's leader is
// killed at each phase of the supervision protocol — idle, at the
// supervise commit, mid-lease, at the lease-expiry commit, at the re-exec
// commit — and under minority/majority partitions and ambient loss. Every
// replicated cell must keep the user-visible tick stream ordered and
// exactly-once, fail over within params.RsmFailoverBudget, and never let a
// stale minority leader double-execute the guest (duplicate ticks would
// betray it instantly). The unreplicated baseline cells show the contrast:
// the same kills lose the session outright.
func HomeCrash(seed int64) *Result {
	r := newResult("F3", "home-service loss: consensus home group failover (§2.3 carried to the home itself)")

	const wantTicks = 300
	const homeN = 3

	cells := []homeCell{
		{label: "no fault (baseline)", home: homeN},
		{label: "leader kill @ idle (2s)", home: homeN,
			disrupt: trace.EvHostCrash,
			arm:     func(c *core.Cluster) { killHomeLeaderAfter(c, 2*time.Second) }},
		{label: "leader kill @ supervise commit", home: homeN,
			disrupt: trace.EvHostCrash,
			arm: func(c *core.Cluster) {
				// The first home-group commit past the agent's boot sleep is
				// the session's hgSupervise (or its immediate barrier).
				c.Fault.CrashOnEvent(func(ev trace.Event) bool {
					return ev.Kind == trace.EvCommit && ev.LH == vid.GroupHomeRSM.LH() &&
						ev.At > sim.Time(2400*time.Millisecond)
				}, func() ethernet.MAC { return homeLeaderMAC(c) })
			}},
		{label: "leader kill @ steady lease (6s)", home: homeN,
			disrupt: trace.EvHostCrash,
			arm:     func(c *core.Cluster) { killHomeLeaderAfter(c, 6*time.Second) }},
		{label: "leader kill (6s) + host crash (9s)", home: homeN,
			disrupt: trace.EvHostCrash, hostCrash: 9 * time.Second, wantRestart: true,
			arm: func(c *core.Cluster) { killHomeLeaderAfter(c, 6*time.Second) }},
		{label: "host crash, leader kill @ break note", home: homeN,
			disrupt: trace.EvHostCrash, hostCrash: 6 * time.Second, wantRestart: true,
			arm: func(c *core.Cluster) {
				// Crash-driven breaks ride the host-down note, not lease
				// expiry — kill the leader the instant it learns the hosting
				// workstation died, before it can commit a restart intent.
				c.Fault.CrashOnEvent(func(ev trace.Event) bool {
					return ev.Kind == trace.EvHostCrash &&
						ev.Host == uint16(c.Node(4).Host.NIC.MAC())
				}, func() ethernet.MAC { return homeLeaderMAC(c) })
			}},
		{label: "host crash, leader kill @ re-exec commit", home: homeN,
			disrupt: trace.EvHostCrash, hostCrash: 6 * time.Second, wantRestart: true,
			arm: func(c *core.Cluster) {
				c.Fault.CrashOnEvent(func(ev trace.Event) bool {
					return ev.Kind == trace.EvExecRestart
				}, func() ethernet.MAC { return homeLeaderMAC(c) })
			}},
		{label: "leader partitioned to minority, host crash", home: homeN,
			disrupt: trace.EvPartition, hostCrash: 9 * time.Second, wantRestart: true,
			arm: func(c *core.Cluster) {
				// The stale leader is cut off alone: the majority side elects
				// a successor and recovers the session; the stale leader can
				// no longer commit a restart intent, so it cannot start a
				// second incarnation no matter what it believes.
				c.Sim.After(6*time.Second, func() {
					mac := homeLeaderMAC(c)
					if mac == 0 {
						return
					}
					c.Fault.Partition([]ethernet.MAC{mac}, allMACsExcept(c, mac))
				})
				c.Fault.HealAfter(30 * time.Second)
			}},
		{label: "follower partitioned away (leader keeps quorum), host crash", home: homeN,
			hostCrash: 9 * time.Second, wantRestart: true,
			arm: func(c *core.Cluster) {
				// The complementary cut: a minority follower is isolated and
				// the leader keeps its majority — supervision continues
				// without any failover at all.
				c.Sim.After(6*time.Second, func() {
					lead := homeLeaderMAC(c)
					for i := 0; i < homeN; i++ {
						mac := c.Nodes[i].Host.NIC.MAC()
						if mac != lead {
							c.Fault.Partition([]ethernet.MAC{mac}, allMACsExcept(c, mac))
							return
						}
					}
				})
				c.Fault.HealAfter(30 * time.Second)
			}},
		{label: "leader kill (6s) + host crash (9s), 5% loss", home: homeN, loss: 0.05,
			disrupt: trace.EvHostCrash, hostCrash: 9 * time.Second, wantRestart: true,
			arm: func(c *core.Cluster) { killHomeLeaderAfter(c, 6*time.Second) }},
		{label: "fs leader killed too: re-exec loads image from fs replica", home: homeN, fs: 3,
			disrupt: trace.EvHostCrash, hostCrash: 6 * time.Second, wantRestart: true,
			arm: func(c *core.Cluster) {
				killHomeLeaderAfter(c, 6*time.Second)
				c.Sim.After(6*time.Second, func() {
					for i, fs := range c.FSReps {
						if !c.FSHosts[i].Crashed() && fs.Replica() != nil && fs.Replica().IsLeader() {
							c.FSHosts[i].Crash()
							return
						}
					}
				})
			}},
		{label: "UNREPLICATED home: supervisor dies", wantLost: true,
			hostCrash: 9 * time.Second,
			arm: func(c *core.Cluster) {
				// No group: the home workstation (agent, display, supervisor)
				// is a single point of failure — kill it, then the host.
				c.Sim.After(6*time.Second, func() { c.Node(3).Host.Crash() })
			}},
	}

	for _, cell := range cells {
		c := bootCluster(core.Options{
			Workstations: 6, Seed: seed, LossRate: cell.loss,
			ReplicateHome: cell.home, ReplicateFS: cell.fs,
		})
		c.Install(progs.Ticker(wantTicks))
		if cell.arm != nil {
			cell.arm(c)
		}
		if cell.hostCrash > 0 {
			c.Sim.After(cell.hostCrash, func() { c.Node(4).Host.Crash() })
		}

		// Failover clock: first qualifying disruption → next home election.
		var disruptAt, electAt sim.Time
		memberMAC := make(map[uint16]bool, cell.home)
		for i := 0; i < cell.home && i < len(c.Nodes); i++ {
			memberMAC[uint16(c.Nodes[i].Host.NIC.MAC())] = true
		}
		c.Trace.Subscribe(func(ev trace.Event) {
			switch {
			case disruptAt == 0 && ev.Kind == cell.disrupt &&
				(ev.Kind != trace.EvHostCrash || memberMAC[ev.Host]):
				disruptAt = ev.At
			case disruptAt != 0 && electAt == 0 && ev.Kind == trace.EvElect &&
				ev.LH == vid.GroupHomeRSM.LH() && ev.At > disruptAt:
				electAt = ev.At
			}
		})

		home := c.Node(3)
		var code uint32
		var execErr, waitErr error
		waits := 0
		home.Agent(func(a *core.Agent) {
			a.Sleep(2500 * time.Millisecond) // first home election settles
			job, err := a.Exec(fmt.Sprintf("ticker%d", wantTicks), nil, "ws4")
			if err != nil {
				execErr = err
				return
			}
			code, waitErr = a.Wait(job)
			waits++
		})
		c.Run(4 * time.Minute)

		ticks, ordered := gapless(home.Display.Lines())
		survived := ticks == wantTicks && ordered
		restarts := c.Trace.Count(trace.EvExecRestart)
		failover := time.Duration(0)
		if disruptAt != 0 && electAt != 0 {
			failover = electAt.Sub(disruptAt)
		}

		status := fmt.Sprintf("%d/%d ticks, re-executed %dx", ticks, wantTicks, restarts)
		if cell.disrupt != 0 {
			status += fmt.Sprintf(", failover %v", failover.Round(time.Millisecond))
		}
		want := "exit seen once, output exactly-once"
		if cell.wantLost {
			want = "session lost (the single home was the SPOF)"
		}
		r.row(cell.label, want, status,
			fmt.Sprintf("wait=(%d,%v,%d) ordered=%v expires=%d",
				code, waitErr, waits, ordered, c.Trace.Count(trace.EvLeaseExpire)))
		r.metric("survived_"+metricKey(cell.label), b2f(survived))
		r.metric("restarts_"+metricKey(cell.label), float64(restarts))
		if cell.disrupt != 0 {
			r.metric("failover_ms_"+metricKey(cell.label), failover.Seconds()*1000)
		}

		if cell.wantLost {
			// The baseline must demonstrably lose the session: output
			// truncated and nobody left to re-execute.
			r.check(!survived, "%s: unreplicated home survived?! (%d ticks)", cell.label, ticks)
			r.check(restarts == 0, "%s: restarts=%d with the supervisor dead", cell.label, restarts)
			continue
		}
		if execErr != nil {
			r.check(false, "%s: exec: %v", cell.label, execErr)
			continue
		}
		r.check(survived, "%s: output not exactly-once (%d/%d ticks, ordered=%v)",
			cell.label, ticks, wantTicks, ordered)
		r.check(waitErr == nil && code == 0 && waits == 1,
			"%s: wait=(%d,%v) waits=%d", cell.label, code, waitErr, waits)
		if cell.wantRestart {
			r.check(restarts >= 1, "%s: no re-execution after host loss", cell.label)
		}
		if cell.disrupt != 0 {
			r.check(disruptAt != 0, "%s: disruption never fired", cell.label)
			r.check(electAt != 0, "%s: no home re-election after the disruption", cell.label)
			r.check(failover > 0 && failover <= params.RsmFailoverBudget,
				"%s: failover %v exceeds budget %v", cell.label, failover, params.RsmFailoverBudget)
		}
	}
	r.note("failover = first qualifying disruption (member crash or partition) to the next home EvElect; budget = params.RsmFailoverBudget = %v", params.RsmFailoverBudget)
	r.note("exactly-once = gapless ordered ticks through the deduplicating home display, across leader failovers, re-executions, and stale-leader partitions")
	return r
}

// homeLeaderMAC returns the station address of the current home-group
// leader (0 when the group is mid-election).
func homeLeaderMAC(c *core.Cluster) ethernet.MAC {
	if i := c.HomeLeaderIdx(); i >= 0 {
		return c.Nodes[i].Host.NIC.MAC()
	}
	return 0
}

// killHomeLeaderAfter schedules a one-shot kill of whoever leads the home
// group at the offset, polling briefly if the group is mid-election at
// that instant.
func killHomeLeaderAfter(c *core.Cluster, d time.Duration) {
	var try func(left int)
	try = func(left int) {
		if mac := homeLeaderMAC(c); mac != 0 {
			c.Fault.Crash(mac)
			return
		}
		if left > 0 {
			c.Sim.After(200*time.Millisecond, func() { try(left - 1) })
		}
	}
	c.Sim.After(d, func() { try(15) })
}

// allMACsExcept lists every station in the cluster except one — the "rest
// of the world" side of a single-host partition.
func allMACsExcept(c *core.Cluster, except ethernet.MAC) []ethernet.MAC {
	var out []ethernet.MAC
	for _, n := range c.Nodes {
		if mac := n.Host.NIC.MAC(); mac != except {
			out = append(out, mac)
		}
	}
	for _, h := range c.FSHosts {
		if mac := h.NIC.MAC(); mac != except {
			out = append(out, mac)
		}
	}
	return out
}
