// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated cluster, reporting paper-vs-measured
// rows. DESIGN.md carries the experiment index; EXPERIMENTS.md records the
// outcomes.
package experiments

import (
	"fmt"
	"strings"

	"vsystem/internal/core"
	"vsystem/internal/progs"
	"vsystem/internal/workload"
)

// Row is one comparison line of an experiment.
type Row struct {
	Label    string
	Paper    string
	Measured string
	Note     string
}

// Result is one regenerated table/figure.
type Result struct {
	ID    string
	Title string
	Rows  []Row
	// Metrics carries machine-readable values for the benchmark harness
	// (testing.B ReportMetric).
	Metrics map[string]float64
	// Pass reports whether the shape assertions held.
	Pass bool
	// Notes holds free-form commentary.
	Notes []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: map[string]float64{}, Pass: true}
}

func (r *Result) row(label, paper, measured, note string) {
	r.Rows = append(r.Rows, Row{Label: label, Paper: paper, Measured: measured, Note: note})
}

func (r *Result) metric(k string, v float64) { r.Metrics[k] = v }

func (r *Result) note(f string, a ...any) { r.Notes = append(r.Notes, fmt.Sprintf(f, a...)) }

func (r *Result) check(ok bool, f string, a ...any) {
	if !ok {
		r.Pass = false
		r.note("FAIL: "+f, a...)
	}
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.ID, r.Title)
	w1, w2, w3 := len("measurement"), len("paper"), len("measured")
	for _, row := range r.Rows {
		w1, w2, w3 = max(w1, len(row.Label)), max(w2, len(row.Paper)), max(w3, len(row.Measured))
	}
	fmt.Fprintf(&b, "   %-*s  %-*s  %-*s  %s\n", w1, "measurement", w2, "paper", w3, "measured", "note")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "   %-*s  %-*s  %-*s  %s\n", w1, row.Label, w2, row.Paper, w3, row.Measured, row.Note)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   # %s\n", n)
	}
	if r.Pass {
		fmt.Fprintf(&b, "   => shape assertions PASS\n")
	} else {
		fmt.Fprintf(&b, "   => shape assertions FAIL\n")
	}
	return b.String()
}

// All runs every experiment.
func All(seed int64) []*Result {
	return []*Result{
		RemoteExecCosts(seed),
		MigrationCopyCosts(seed),
		DirtyPageRates(seed),
		PrecopyEffectiveness(seed),
		ExecutionOverheads(seed),
		CommPaths(seed),
		CommDuringMigration(seed),
		VMPaging(seed),
		AblationFreeze(seed),
		AblationResidual(seed),
		Usage(seed),
		SelectionScaling(seed),
		SelectionPolicies(seed),
		MigrationUnderLoss(seed),
		PrecopyRounds(seed),
		FaultSweep(seed),
		GuestCrash(seed),
		HomeCrash(seed),
		CopyThroughput(seed),
		ClusterLoad(seed),
		MigrationPolicies(seed),
	}
}

// ByName returns the experiment runner for an id ("remote-exec", ...).
func ByName(name string) (func(int64) *Result, bool) {
	m := map[string]func(int64) *Result{
		"remote-exec":       RemoteExecCosts,
		"copy-costs":        MigrationCopyCosts,
		"dirty-rates":       DirtyPageRates,
		"precopy":           PrecopyEffectiveness,
		"overheads":         ExecutionOverheads,
		"comm-paths":        CommPaths,
		"comm-migration":    CommDuringMigration,
		"vmpaging":          VMPaging,
		"ablation-freeze":   AblationFreeze,
		"ablation-residual": AblationResidual,
		"usage":             Usage,
		"selection-scale":   SelectionScaling,
		"select-policy":     SelectionPolicies,
		"migration-loss":    MigrationUnderLoss,
		"precopy-rounds":    PrecopyRounds,
		"fault-sweep":       FaultSweep,
		"guest-crash":       GuestCrash,
		"home-crash":        HomeCrash,
		"copy-throughput":   CopyThroughput,
		"cluster-load":      ClusterLoad,
		"migration-policy":  MigrationPolicies,
	}
	f, ok := m[name]
	return f, ok
}

// Names lists experiment ids in run order.
func Names() []string {
	return []string{
		"remote-exec", "copy-costs", "dirty-rates", "precopy", "overheads",
		"comm-paths", "comm-migration", "vmpaging", "ablation-freeze",
		"ablation-residual", "usage", "selection-scale", "select-policy",
		"migration-loss", "precopy-rounds", "fault-sweep", "guest-crash",
		"home-crash", "copy-throughput", "cluster-load", "migration-policy",
	}
}

// bootCluster creates a cluster with the standard images installed.
func bootCluster(opt core.Options) *core.Cluster {
	c := core.NewCluster(opt)
	c.Install(progs.Hello())
	c.Install(progs.Primes(2000))
	c.Install(progs.Ticker(200))
	for _, img := range workload.PaperImages() {
		c.Install(img)
	}
	return c
}

func ms(d float64) string { return fmt.Sprintf("%.1f ms", d) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
