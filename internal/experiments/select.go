package experiments

import (
	"fmt"
	"time"

	"vsystem/internal/core"
	"vsystem/internal/params"
	"vsystem/internal/sched"
	"vsystem/internal/sim"
	"vsystem/internal/workload"
)

// SelectionPolicies (E9) compares host-selection policies on a cluster
// with deliberately skewed load. The paper's first-response heuristic
// equates "first to answer" with "willing and idle" (§2.1): it is binary,
// so once every idle machine holds one guest, the next placement must
// wait for a completion. A load-aware policy over the cached cluster-load
// view (internal/sched) instead ranks busy-but-capable hosts by ready
// depth and keeps placing, overlapping guests two-per-host — the
// completion-time spread across jobs tightens accordingly.
//
// Setup: five workstations; ws1 and ws2 each run two endless local
// compute hogs (guests would starve there — and first-response never
// offers those hosts anyway); ws3 and ws4 are idle. ws0 places four 2 s
// (CPU) guest jobs sequentially via `@ *`, retrying every 500 ms when
// selection finds no host. The measured figure is the spread (max−min)
// of per-job turnaround — from first placement attempt to completion.
func SelectionPolicies(seed int64) *Result {
	r := newResult("E9", "Host-selection policies under skewed load (§2.1 + sched layer)")

	arms := []struct {
		label  string
		policy sched.Policy
	}{
		{"first-response", sched.FirstResponse{}},
		{"random-2", sched.RandomK{K: params.SelectRandomK}},
		{"least-loaded", sched.LeastLoaded{}},
	}
	spread := map[string]float64{}
	warm := map[string]float64{}
	for _, arm := range arms {
		res := runSelectionArm(arm.policy, seed)
		spread[arm.label] = res.spreadMs
		warm[arm.label] = res.warmPicks
		r.row("turnaround spread, "+arm.label, "—", ms(res.spreadMs),
			fmt.Sprintf("mean %s, %d/4 jobs done", ms(res.meanMs), res.done))
		r.metric("spread_ms_"+arm.label, res.spreadMs)
		r.metric("mean_ms_"+arm.label, res.meanMs)
		r.metric("warm_picks_"+arm.label, res.warmPicks)
		r.metric("multicasts_"+arm.label, res.multicasts)
		r.metric("jobs_done_"+arm.label, float64(res.done))
		// random-K may legitimately strand a job: it samples the hog
		// hosts too, and a guest behind two endless local programs
		// starves under the paper's priority scheduling (§2). Only the
		// deterministic policies must finish everything.
		if arm.label != "random-2" {
			r.check(res.done == 4, "%s: only %d/4 jobs completed", arm.label, res.done)
		}
	}

	r.note("first-response serializes one guest per idle host; least-loaded overlaps them")
	r.note("a random-2 job placed behind the local hogs starves at guest priority (§2)")
	r.check(spread["least-loaded"] < spread["first-response"],
		"least-loaded spread %.0f ms not below first-response %.0f ms",
		spread["least-loaded"], spread["first-response"])
	r.check(warm["least-loaded"] > 0,
		"least-loaded made no warm-cache placements (cache/beacon path unused)")
	r.check(warm["first-response"] == 0,
		"first-response used the warm-cache path (%v picks) — baseline must stay multicast-only",
		warm["first-response"])
	return r
}

type selectionArmResult struct {
	spreadMs, meanMs      float64
	warmPicks, multicasts float64
	done                  int
}

func runSelectionArm(policy sched.Policy, seed int64) selectionArmResult {
	c := bootCluster(core.Options{Workstations: 5, Seed: seed, Select: policy})
	c.Install(workload.Image(workload.Spec{
		Name: "e9hog", HotKB: 16, HotRateKBps: 40,
	}, 0))
	c.Install(workload.Image(workload.Spec{
		Name: "e9job", HotKB: 16, HotRateKBps: 40, DurationMs: 2000,
	}, 0))

	// ws1/ws2: two endless local hogs each — their owners' machines.
	for _, i := range []int{1, 2} {
		c.Node(i).Agent(func(a *core.Agent) {
			a.Sleep(time.Second)
			a.Exec("e9hog", nil, "")
			a.Exec("e9hog", nil, "")
		})
	}

	const jobs = 4
	var (
		placed   [jobs]*core.Job
		tryStart [jobs]sim.Time
		doneAt   [jobs]sim.Time
	)
	// Waiters: one agent per job records its completion time (the shared
	// arrays are safe — simulation tasks are serialized on one goroutine).
	for i := 0; i < jobs; i++ {
		i := i
		c.Node(0).Agent(func(a *core.Agent) {
			for placed[i] == nil {
				a.Sleep(50 * time.Millisecond)
			}
			if _, err := a.Wait(placed[i]); err == nil {
				doneAt[i] = a.Now()
			}
		})
	}
	// Placer: sequential `@ *` placements with the command-interpreter's
	// natural reaction to "no host": wait and retry.
	c.Node(0).Agent(func(a *core.Agent) {
		a.Sleep(3 * time.Second) // hogs running, beacons (if any) seen
		for i := 0; i < jobs; i++ {
			tryStart[i] = a.Now()
			for {
				j, err := a.Exec("e9job", nil, "*")
				if err == nil {
					placed[i] = j
					break
				}
				a.Sleep(500 * time.Millisecond)
			}
		}
	})
	c.Run(30 * time.Second)

	res := selectionArmResult{}
	var lo, hi, sum float64
	for i := 0; i < jobs; i++ {
		if doneAt[i] == 0 {
			continue
		}
		t := doneAt[i].Sub(tryStart[i]).Seconds() * 1000
		if res.done == 0 || t < lo {
			lo = t
		}
		if res.done == 0 || t > hi {
			hi = t
		}
		sum += t
		res.done++
	}
	if res.done > 0 {
		res.spreadMs = hi - lo
		res.meanMs = sum / float64(res.done)
	}
	st := c.Node(0).Selector.Stats()
	res.warmPicks = float64(st.WarmPicks)
	res.multicasts = float64(st.Multicasts)
	return res
}
