// Package progs provides ready-made VVM programs: real bytecode programs
// (assembled from VVM assembly) used by the examples, tests and
// benchmarks. Because they run on the VVM, they are fully migratable and
// their output is bit-deterministic — the basis of the transparency tests.
package progs

import (
	"fmt"

	"vsystem/internal/image"
	"vsystem/internal/vvm"
)

// itoaLib is a CALL-able routine: converts r7 to decimal at the 32-byte
// buffer at [heap], returning start in r6 and length in r5. Clobbers
// r3-r8.
const itoaLib = `
; itoa: value in r7 -> string start r6, length r5
itoa:   LDI r3, 0
        LD r6, r3, 0x14   ; r6 = heap base
        ADDI r6, 31       ; write digits backwards from heap+31
        LDI r8, 10
itlp:   MOV r4, r7
        MOD r4, r8
        ADDI r4, 48
        STB r4, r6, 0
        ADDI r6, -1
        DIV r7, r8
        LDI r3, 0
        BNE r7, r3, itlp
        ADDI r6, 1        ; start of digits
        LDI r3, 0
        LD r5, r3, 0x14
        ADDI r5, 32       ; one past buffer
        SUB r5, r6        ; length
        RET
`

// Hello returns a program that prints one line and exits 0.
func Hello() *image.Image {
	return mustImage("hello", `
        LDI r0, =msg
        LDI r1, 18
        OUT r0, r1
        LDI r0, 0
        HALT r0
msg:    .ascii "hello from the VVM"
`)
}

// Primes returns a program that counts primes below n by trial division
// (a CPU-bound job: roughly n*sqrt(n) instruction budget) and prints the
// count.
func Primes(n uint32) *image.Image {
	src := fmt.Sprintf(`
        LDI r9, %d        ; limit
        LDI r1, 2         ; candidate
        LDI r2, 0         ; count
loop:   BGE r1, r9, done
        LDI r3, 2
test:   MOV r4, r3
        MUL r4, r3
        BLT r1, r4, prime ; no divisor up to sqrt: prime
        MOV r4, r1
        MOD r4, r3
        LDI r5, 0
        BEQ r4, r5, notp
        ADDI r3, 1
        JMP test
prime:  ADDI r2, 1
notp:   ADDI r1, 1
        JMP loop
done:   MOV r7, r2
        PUSH r2
        CALL itoa
        OUT r6, r5
        POP r2
        HALT r2
`+itoaLib, n)
	return mustImage(fmt.Sprintf("primes%d", n), src)
}

// Ticker returns a program that performs work units of ~25k instructions,
// printing "t<i>" after each of n units, then exits. Useful for observing
// output continuity across migration.
func Ticker(n uint32) *image.Image {
	src := fmt.Sprintf(`
        LDI r9, %d        ; ticks
        LDI r2, 0         ; i
loop:   BGE r2, r9, done
        LDI r3, 0
        LDI r4, 12500     ; ~25k instructions of busy work
busy:   ADDI r3, 1
        BLT r3, r4, busy
        ADDI r2, 1
        ; print "t" ++ itoa(i)
        LDI r3, 0
        LD r6, r3, 0x14
        ADDI r6, 40       ; line buffer at heap+40
        LDI r4, 116       ; 't'
        STB r4, r6, 0
        MOV r7, r2
        CALL itoa         ; digits at r6', len r5
        ; copy digits after the 't'
        LDI r3, 0
        LD r8, r3, 0x14
        ADDI r8, 41
        MOV r0, r5        ; remaining
cpy:    LDI r3, 0
        BEQ r0, r3, emit
        LDB r4, r6, 0
        STB r4, r8, 0
        ADDI r6, 1
        ADDI r8, 1
        ADDI r0, -1
        JMP cpy
emit:   LDI r3, 0
        LD r6, r3, 0x14
        ADDI r6, 40
        MOV r1, r5
        ADDI r1, 1        ; 't' + digits
        OUT r6, r1
        JMP loop
done:   LDI r0, 0
        HALT r0
`+itoaLib, n)
	return mustImage(fmt.Sprintf("ticker%d", n), src)
}

// MemWalker returns a program that repeatedly writes a deterministic
// pattern over kb Kbytes of heap for rounds passes, then prints a
// checksum. It exercises dirty-page generation with real data, so the
// transparency property tests can compare final memory contents.
func MemWalker(kb, rounds uint32) *image.Image {
	src := fmt.Sprintf(`
        LDI r9, %d        ; bytes
        LDI r10, %d       ; rounds
        LDI r11, 0        ; round
        LDI r12, 0x9E3779B9
outer:  BGE r11, r10, done
        LDI r1, 0         ; offset
inner:  BGE r1, r9, next
        ; value = (round*2654435769 + offset) xor pattern
        MOV r2, r11
        MUL r2, r12
        ADD r2, r1
        LDI r3, 0
        LD r4, r3, 0x14   ; heap
        ADD r4, r1
        ST r2, r4, 64     ; leave itoa buffer clear
        ADDI r1, 64       ; one write per 64 bytes
        JMP inner
next:   ADDI r11, 1
        JMP outer
done:   ; checksum = sum of words at heap+64 step 1024
        LDI r1, 0
        LDI r2, 0
cks:    BGE r1, r9, emit
        LDI r3, 0
        LD r4, r3, 0x14
        ADD r4, r1
        LD r5, r4, 64
        ADD r2, r5
        ADDI r1, 1024
        JMP cks
emit:   MOV r7, r2
        PUSH r2
        CALL itoa
        OUT r6, r5
        POP r2
        HALT r2
`+itoaLib, kb*1024, rounds)
	img := mustImage(fmt.Sprintf("memwalk%dk", kb), src)
	img.SpaceSize = vvm.CodeBase + 4096 + kb*1024 + 64*1024
	return img
}

func mustImage(name, src string) *image.Image {
	code, err := vvm.Assemble(src)
	if err != nil {
		panic("progs: " + name + ": " + err.Error())
	}
	return &image.Image{
		Name:      name,
		Kind:      vvm.BodyKind,
		Code:      code,
		SpaceSize: uint32(vvm.CodeBase) + uint32(len(code)) + 128*1024,
	}
}

// FileIO returns a program that exercises the VVM SEND instruction against
// the network file server: it writes a 16-byte file, reads it back, and
// prints "fileio ok" if the bytes match (exit 0) or "fileio bad" (exit 1).
// The file server PID comes from the environment block, the request and
// reply segments from program memory — real system programming on the VVM.
func FileIO() *image.Image {
	return mustImage("fileio", `
        LDI r0, 0
        LD r12, r0, 0x14   ; heap base (message block lives here)
        LD r11, r0, 8      ; file server PID from the env block
        ; ---- OpWrite (0x52): seg = "out.dat" NUL data, W0 = offset
        ST r11, r12, 0     ; blk.dst
        LDI r1, 0x52
        ST r1, r12, 4      ; blk.op
        LDI r1, 0
        ST r1, r12, 8      ; W0 = 0
        LDI r1, =wseg
        ST r1, r12, 32     ; segAddr
        LDI r1, 24
        ST r1, r12, 36     ; segLen (7 name + NUL + 16 data)
        LDI r1, 0
        ST r1, r12, 44     ; repCap
        MOV r0, r12
        SEND r0
        LD r1, r12, 52     ; transport error
        LDI r2, 0
        BNE r1, r2, bad
        LD r1, r12, 4      ; op | replycode<<16
        LDI r3, 16
        SHR r1, r3
        BNE r1, r2, bad
        ; ---- OpRead (0x51): seg = name, W0 = offset, W1 = length
        ST r11, r12, 0
        LDI r1, 0x51
        ST r1, r12, 4
        LDI r1, 0
        ST r1, r12, 8
        LDI r1, 16
        ST r1, r12, 12
        LDI r1, =rname
        ST r1, r12, 32
        LDI r1, 7
        ST r1, r12, 36
        MOV r1, r12
        ADDI r1, 0x200
        ST r1, r12, 40     ; repAddr = heap+0x200
        LDI r1, 64
        ST r1, r12, 44     ; repCap
        MOV r0, r12
        SEND r0
        LD r1, r12, 52
        LDI r2, 0
        BNE r1, r2, bad
        LD r1, r12, 48     ; repLen
        LDI r2, 16
        BNE r1, r2, bad
        ; ---- compare the read-back bytes with the original data
        LDI r3, 0
cmp:    LDI r2, 16
        BGE r3, r2, good
        LDI r4, =wdata
        ADD r4, r3
        LDB r5, r4, 0
        MOV r6, r12
        ADDI r6, 0x200
        ADD r6, r3
        LDB r7, r6, 0
        BNE r5, r7, bad
        ADDI r3, 1
        JMP cmp
good:   LDI r0, =okmsg
        LDI r1, 9
        OUT r0, r1
        LDI r0, 0
        HALT r0
bad:    LDI r0, =badmsg
        LDI r1, 10
        OUT r0, r1
        LDI r0, 1
        HALT r0
wseg:   .ascii "out.dat"
        .byte 0
wdata:  .ascii "FILEDATA12345678"
rname:  .ascii "out.dat"
okmsg:  .ascii "fileio ok"
badmsg: .ascii "fileio bad"
`)
}

// PrimesRange returns a program that counts primes in [lo, hi) where lo
// and hi come from the program's ARGUMENTS (parsed from the environment
// block's argv with an atoi routine). One image serves every worker of a
// decomposed computation: `primesrange 2 5000 @ *`.
func PrimesRange() *image.Image {
	return mustImage("primesrange", `
        LDI r0, 0
        LD r6, r0, 0x10    ; argv base (byte offset == address: env at 0)
skip0:  LDB r1, r6, 0      ; skip argv[0] (program name)
        ADDI r6, 1
        LDI r2, 0
        BNE r1, r2, skip0
        CALL atoi
        MOV r9, r7         ; lo
        CALL atoi
        MOV r10, r7        ; hi
        MOV r1, r9
        LDI r2, 0          ; count
loop:   BGE r1, r10, done
        LDI r3, 2
test:   MOV r4, r3
        MUL r4, r3
        BLT r1, r4, prime
        MOV r4, r1
        MOD r4, r3
        LDI r5, 0
        BEQ r4, r5, notp
        ADDI r3, 1
        JMP test
prime:  ADDI r2, 1
notp:   ADDI r1, 1
        JMP loop
done:   MOV r7, r2
        PUSH r2
        CALL itoa
        OUT r6, r5
        POP r2
        HALT r2

; atoi: parse decimal at [r6] until NUL; result r7, r6 past the NUL.
atoi:   LDI r7, 0
atlp:   LDB r1, r6, 0
        ADDI r6, 1
        LDI r2, 0
        BEQ r1, r2, atdn
        LDI r3, 10
        MUL r7, r3
        ADDI r1, -48
        ADD r7, r1
        JMP atlp
atdn:   RET
`+itoaLib)
}
