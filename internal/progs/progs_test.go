package progs

import (
	"fmt"
	"testing"
	"time"

	"vsystem/internal/core"
)

func run(t *testing.T, imgName string, budget time.Duration, install ...func(c *core.Cluster)) (uint32, []string) {
	t.Helper()
	c := core.NewCluster(core.Options{Workstations: 2, Seed: 1})
	for _, f := range install {
		f(c)
	}
	var code uint32
	var err error
	c.Node(0).Agent(func(a *core.Agent) {
		job, e := a.Exec(imgName, nil, "")
		if e != nil {
			err = e
			return
		}
		code, err = a.Wait(job)
	})
	c.Run(budget)
	if err != nil {
		t.Fatalf("%s: %v", imgName, err)
	}
	return code, c.Node(0).Display.Lines()
}

func TestHello(t *testing.T) {
	code, lines := run(t, "hello", time.Minute, func(c *core.Cluster) { c.Install(Hello()) })
	if code != 0 || len(lines) != 1 || lines[0] != "hello from the VVM" {
		t.Fatalf("code=%d lines=%q", code, lines)
	}
}

func TestPrimesMatchesSieve(t *testing.T) {
	for _, n := range []uint32{10, 100, 1000} {
		want := sieveCount(n)
		code, lines := run(t, fmt.Sprintf("primes%d", n), 5*time.Minute,
			func(c *core.Cluster) { c.Install(Primes(n)) })
		if code != want {
			t.Fatalf("primes(%d) exit = %d, want %d", n, code, want)
		}
		if len(lines) != 1 || lines[0] != fmt.Sprint(want) {
			t.Fatalf("primes(%d) printed %q, want %d", n, lines, want)
		}
	}
}

func sieveCount(n uint32) uint32 {
	if n < 3 {
		return 0
	}
	composite := make([]bool, n)
	var count uint32
	for i := uint32(2); i < n; i++ {
		if !composite[i] {
			count++
			for j := i * i; j < n; j += i {
				composite[j] = true
			}
		}
	}
	return count
}

func TestTickerSequence(t *testing.T) {
	code, lines := run(t, "ticker12", time.Minute, func(c *core.Cluster) { c.Install(Ticker(12)) })
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if len(lines) != 12 {
		t.Fatalf("printed %d lines", len(lines))
	}
	for i, l := range lines {
		if l != fmt.Sprintf("t%d", i+1) {
			t.Fatalf("line %d = %q", i, l)
		}
	}
}

func TestMemWalkerDeterministicChecksum(t *testing.T) {
	img := MemWalker(16, 5)
	a, _ := run(t, img.Name, 5*time.Minute, func(c *core.Cluster) { c.Install(MemWalker(16, 5)) })
	b, _ := run(t, img.Name, 5*time.Minute, func(c *core.Cluster) { c.Install(MemWalker(16, 5)) })
	if a != b {
		t.Fatalf("checksums differ: %#x vs %#x", a, b)
	}
	if a == 0 {
		t.Fatal("zero checksum")
	}
}

// TestFileIOExercisesVVMSend runs the SEND-instruction program: a VVM
// program performing real IPC transactions against the file server.
func TestFileIOExercisesVVMSend(t *testing.T) {
	c := core.NewCluster(core.Options{Workstations: 2, Seed: 21})
	c.Install(FileIO())
	var code uint32
	var err error
	c.Node(0).Agent(func(a *core.Agent) {
		// Run it REMOTELY: the program's file I/O and output are both
		// network-transparent.
		job, e := a.Exec("fileio", nil, "ws1")
		if e != nil {
			err = e
			return
		}
		code, err = a.Wait(job)
	})
	c.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := c.Node(0).Display.Lines()
	if len(lines) != 1 || lines[0] != "fileio ok" {
		t.Fatalf("display = %q", lines)
	}
	got, ok := c.FS.Get("out.dat")
	if !ok || string(got) != "FILEDATA12345678" {
		t.Fatalf("file contents = %q, %v", got, ok)
	}
}

// TestPrimesRangeParsesArgv verifies the argv path end to end: the program
// manager writes the arguments into the environment block, and the VVM
// program parses them with its atoi routine.
func TestPrimesRangeParsesArgv(t *testing.T) {
	c := core.NewCluster(core.Options{Workstations: 2, Seed: 22})
	c.Install(PrimesRange())
	var parts [2]uint32
	var err error
	c.Node(0).Agent(func(a *core.Agent) {
		for i, r := range [][2]string{{"2", "100"}, {"100", "1000"}} {
			job, e := a.Exec("primesrange", []string{r[0], r[1]}, "ws1")
			if e != nil {
				err = e
				return
			}
			parts[i], err = a.Wait(job)
			if err != nil {
				return
			}
		}
	})
	c.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// π(100)=25, π(1000)-π(100)=168-25=143.
	if parts[0] != 25 || parts[1] != 143 {
		t.Fatalf("partial counts = %v, want [25 143]", parts)
	}
}
