package kernel

import (
	"bytes"
	"testing"
	"time"

	"vsystem/internal/mem"
	"vsystem/internal/vid"
)

// TestFetchPageServesRunIdempotently exercises the post-copy remote-fault
// op end to end: a destination-side process pulls a page run from a frozen
// source receptacle, delivery markers (dirty bits) clear as pages are
// served, and a duplicate request — a retransmission or an out-of-order
// arrival — re-serves byte-identical contents.
func TestFetchPageServesRunIdempotently(t *testing.T) {
	c := newCluster(2, 7)
	a, b := c.hosts[0], c.hosts[1]

	lh := b.CreateLH("receptacle", true)
	as, err := lh.CreateSpace(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[mem.PageNo][]byte)
	pages := []mem.PageNo{0, 3, 7}
	for _, pn := range pages {
		data := make([]byte, mem.PageSize)
		for j := range data {
			data[j] = byte(int(pn) + j)
		}
		if err := as.InstallPage(pn, data); err != nil {
			t.Fatal(err)
		}
		as.MarkPageDirty(pn) // not-yet-delivered marker
		want[pn] = data
	}
	b.Freeze(lh) // a receptacle is frozen; KsFetchPage must pass the gate

	fetch := func(ctx *ProcCtx) (vid.Message, error) {
		return ctx.Send(KernelServerPID(b.SystemLH().ID()), vid.Message{
			Op:  KsFetchPage,
			W:   [6]uint32{uint32(lh.ID())},
			Seg: EncodeFetchReq(as.ID, pages),
		})
	}
	var first, dup vid.Message
	var err1, err2 error
	a.SpawnServer("puller", 4096, func(ctx *ProcCtx) {
		first, err1 = fetch(ctx)
		dup, err2 = fetch(ctx)
	})
	c.sim.RunFor(10 * time.Second)

	for _, m := range []vid.Message{first, dup} {
		if err1 != nil || err2 != nil || !m.OK() {
			t.Fatalf("fetch: %v %v %v", err1, err2, m)
		}
		spaceID, rp, rd, derr := DecodePageRun(m.Seg)
		if derr != nil || spaceID != as.ID {
			t.Fatalf("reply run: space=%d err=%v", spaceID, derr)
		}
		if len(rp) != len(pages) {
			t.Fatalf("reply has %d pages, want %d", len(rp), len(pages))
		}
		for i, pn := range rp {
			if !bytes.Equal(rd[i], want[pn]) {
				t.Fatalf("page %d contents differ", pn)
			}
		}
	}
	if !bytes.Equal(first.Seg, dup.Seg) {
		t.Fatal("duplicate fetch served different bytes from a frozen receptacle")
	}
	for _, pn := range pages {
		if as.PageDirty(pn) {
			t.Fatalf("page %d delivery marker not cleared", pn)
		}
	}
}

// TestFetchPageElidesAbsentPages pins the wire cost of holes: fetching a
// page the receptacle never allocated returns the canonical zero page,
// elided on the wire (no 1 KB body for a page that reads as zeros).
func TestFetchPageElidesAbsentPages(t *testing.T) {
	c := newCluster(2, 9)
	a, b := c.hosts[0], c.hosts[1]

	lh := b.CreateLH("receptacle", true)
	as, err := lh.CreateSpace(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	var m vid.Message
	var sendErr error
	a.SpawnServer("puller", 4096, func(ctx *ProcCtx) {
		m, sendErr = ctx.Send(KernelServerPID(b.SystemLH().ID()), vid.Message{
			Op:  KsFetchPage,
			W:   [6]uint32{uint32(lh.ID())},
			Seg: EncodeFetchReq(as.ID, []mem.PageNo{5, 6}),
		})
	})
	c.sim.RunFor(10 * time.Second)

	if sendErr != nil || !m.OK() {
		t.Fatalf("fetch: %v %v", sendErr, m)
	}
	if want := 8 + 2*4; len(m.Seg) != want {
		t.Fatalf("reply segment %d bytes, want %d (both pages elided)", len(m.Seg), want)
	}
	_, rp, rd, derr := DecodePageRun(m.Seg)
	if derr != nil || len(rp) != 2 {
		t.Fatalf("reply run: %v (%d pages)", derr, len(rp))
	}
	for i := range rp {
		if !mem.IsZeroPage(rd[i]) {
			t.Fatalf("absent page %d decoded non-zero", rp[i])
		}
	}
}

// TestFetchPageRejectsMalformedRequests pins the error surface: unknown
// receptacle, unknown space, and undecodable or oversized requests must
// be refused with typed codes, never served or crashed on.
func TestFetchPageRejectsMalformedRequests(t *testing.T) {
	c := newCluster(2, 11)
	a, b := c.hosts[0], c.hosts[1]

	lh := b.CreateLH("receptacle", true)
	as, err := lh.CreateSpace(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	oversize := make([]mem.PageNo, MaxRunPages+1)
	for i := range oversize {
		oversize[i] = mem.PageNo(i)
	}
	cases := []struct {
		name string
		msg  vid.Message
		code uint16
	}{
		{"unknown lh", vid.Message{Op: KsFetchPage, W: [6]uint32{0xBEEF},
			Seg: EncodeFetchReq(as.ID, []mem.PageNo{0})}, vid.CodeNotFound},
		{"unknown space", vid.Message{Op: KsFetchPage, W: [6]uint32{uint32(lh.ID())},
			Seg: EncodeFetchReq(as.ID+99, []mem.PageNo{0})}, vid.CodeNotFound},
		{"short segment", vid.Message{Op: KsFetchPage, W: [6]uint32{uint32(lh.ID())},
			Seg: []byte{1, 2, 3}}, vid.CodeBadRequest},
		{"empty page list", vid.Message{Op: KsFetchPage, W: [6]uint32{uint32(lh.ID())},
			Seg: EncodeFetchReq(as.ID, nil)}, vid.CodeBadRequest},
		{"oversized run", vid.Message{Op: KsFetchPage, W: [6]uint32{uint32(lh.ID())},
			Seg: EncodeFetchReq(as.ID, oversize)}, vid.CodeBadRequest},
		{"bad write mode", vid.Message{Op: KsWritePages, W: [6]uint32{uint32(lh.ID()), 99},
			Seg: EncodePageRun(as.ID, []mem.PageNo{0}, [][]byte{mem.ZeroPage()})}, vid.CodeBadRequest},
	}
	replies := make([]vid.Message, len(cases))
	errs := make([]error, len(cases))
	a.SpawnServer("prober", 4096, func(ctx *ProcCtx) {
		for i, tc := range cases {
			replies[i], errs[i] = ctx.Send(KernelServerPID(b.SystemLH().ID()), tc.msg)
		}
	})
	c.sim.RunFor(30 * time.Second)

	for i, tc := range cases {
		if errs[i] != nil {
			t.Fatalf("%s: transport error %v", tc.name, errs[i])
		}
		if replies[i].OK() || replies[i].Code != tc.code {
			t.Fatalf("%s: reply %v, want code %d", tc.name, replies[i], tc.code)
		}
	}
}
