package kernel

import (
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/mem"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

func init() {
	// A counting body: W[RegUser] holds the target, W[RegUser+1] the
	// progress. Fully resumable from registers + memory, so it can be
	// frozen, snapshotted, and restored on another host.
	RegisterBody("testcount", func() Body {
		return BodyFunc(func(ctx *ProcCtx) {
			r := ctx.Regs()
			for r.W[RegUser+1] < r.W[RegUser] {
				ctx.Compute(time.Millisecond)
				r.W[RegUser+1]++
				addr := 64 + 4*(r.W[RegUser+1]%1000)
				if err := ctx.Space().WriteWord(addr, r.W[RegUser+1]); err != nil {
					ctx.Exit(1)
				}
			}
			ctx.Exit(0)
		})
	})
}

type cluster struct {
	sim   *sim.Engine
	bus   *ethernet.Bus
	hosts []*Host
}

func newCluster(n int, seed int64) *cluster {
	se := sim.NewEngine(seed)
	bus := ethernet.NewBus(se)
	c := &cluster{sim: se, bus: bus}
	for i := 0; i < n; i++ {
		c.hosts = append(c.hosts, NewHost(se, bus, i, hostName(i)))
	}
	return c
}

func hostName(i int) string { return string(rune('A' + i)) }

func TestBootAndKernelServerPing(t *testing.T) {
	c := newCluster(2, 1)
	a, b := c.hosts[0], c.hosts[1]
	// A process on host A pings host B's kernel server through B's system
	// logical host (well-known index resolution).
	var got vid.Message
	var err error
	a.SpawnServer("pinger", 4096, func(ctx *ProcCtx) {
		got, err = ctx.Send(KernelServerPID(b.SystemLH().ID()), vid.Message{Op: KsPing})
	})
	c.sim.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got.Op != KsPing || !got.OK() {
		t.Fatalf("reply = %v", got)
	}
}

func TestProgramLifecycle(t *testing.T) {
	c := newCluster(1, 2)
	h := c.hosts[0]
	lh := h.CreateLH("counter", false)
	as, err := lh.CreateSpace(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	var regs Regs
	regs.W[RegUser] = 50
	p := lh.NewProcess(as.ID, "testcount", regs)
	var emptied *LogicalHost
	h.OnLHEmpty = func(l *LogicalHost) { emptied = l }
	h.Start(p)
	c.sim.RunFor(10 * time.Second)
	if emptied != lh {
		t.Fatal("program did not run to completion")
	}
	if p.Regs().W[RegUser+1] != 50 {
		t.Fatalf("counter = %d, want 50", p.Regs().W[RegUser+1])
	}
	if !p.Dead() {
		t.Fatal("process not dead")
	}
}

func TestGuestPriorityYieldsToLocal(t *testing.T) {
	c := newCluster(1, 3)
	h := c.hosts[0]
	mk := func(name string, guest bool, n uint32) *Process {
		lh := h.CreateLH(name, guest)
		as, _ := lh.CreateSpace(16 * 1024)
		var regs Regs
		regs.W[RegUser] = n
		p := lh.NewProcess(as.ID, "testcount", regs)
		h.Start(p)
		return p
	}
	guest := mk("guest", true, 1000)
	local := mk("local", false, 100)
	c.sim.RunFor(150 * time.Millisecond)
	// The local program should have finished its 100 ms of work at full
	// speed while the guest made almost no progress in that window.
	if got := local.Regs().W[RegUser+1]; got != 100 {
		t.Fatalf("local progress = %d, want 100", got)
	}
	if got := guest.Regs().W[RegUser+1]; got > 60 {
		t.Fatalf("guest progress = %d while local running, want small", got)
	}
}

func TestFreezeStopsExecution(t *testing.T) {
	c := newCluster(1, 4)
	h := c.hosts[0]
	lh := h.CreateLH("prog", false)
	as, _ := lh.CreateSpace(16 * 1024)
	var regs Regs
	regs.W[RegUser] = 100000
	p := lh.NewProcess(as.ID, "testcount", regs)
	h.Start(p)
	var atFreeze, during uint32
	c.sim.After(100*time.Millisecond, func() {
		h.Freeze(lh)
		atFreeze = p.Regs().W[RegUser+1]
	})
	c.sim.After(2*time.Second, func() { during = p.Regs().W[RegUser+1] })
	c.sim.After(3*time.Second, func() { h.Unfreeze(lh, false) })
	c.sim.RunFor(3500 * time.Millisecond)
	final := p.Regs().W[RegUser+1]
	// Freeze takes effect within one quantum.
	if during > atFreeze+2 {
		t.Fatalf("progress while frozen: %d → %d", atFreeze, during)
	}
	if final <= during {
		t.Fatalf("no progress after unfreeze: %d → %d", during, final)
	}
}

func TestWritePagesAcrossHosts(t *testing.T) {
	c := newCluster(2, 5)
	a, b := c.hosts[0], c.hosts[1]
	// Set up a destination logical host on B.
	lh := b.CreateLH("dest", true)
	as, err := lh.CreateSpace(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	// A system process on A blasts 30 pages to B's kernel server.
	pages := make([]mem.PageNo, 30)
	data := make([][]byte, 30)
	for i := range pages {
		pages[i] = mem.PageNo(i)
		data[i] = make([]byte, mem.PageSize)
		for j := range data[i] {
			data[i][j] = byte(i + j)
		}
	}
	var reply vid.Message
	var sendErr error
	var elapsed time.Duration
	a.SpawnServer("copier", 4096, func(ctx *ProcCtx) {
		start := ctx.Now()
		reply, sendErr = ctx.Send(KernelServerPID(b.SystemLH().ID()), vid.Message{
			Op:  KsWritePages,
			W:   [6]uint32{uint32(lh.ID())},
			Seg: EncodePageRun(as.ID, pages, data),
		})
		elapsed = ctx.Now().Sub(start)
	})
	c.sim.RunFor(30 * time.Second)
	if sendErr != nil || !reply.OK() {
		t.Fatalf("WritePages: %v %v", reply, sendErr)
	}
	for i, pn := range pages {
		got := as.Page(pn)
		for j := range got {
			if got[j] != data[i][j] {
				t.Fatalf("page %d byte %d = %d, want %d", pn, j, got[j], data[i][j])
			}
		}
	}
	if as.DirtyCount() != 0 {
		t.Fatal("installed pages are dirty on the new copy")
	}
	// ≈3 ms per KB: 30 KB in roughly 90-130 ms.
	if elapsed < 80*time.Millisecond || elapsed > 170*time.Millisecond {
		t.Fatalf("30KB WritePages took %v, want ≈100ms", elapsed)
	}
}

// TestKernelLevelMigration walks the full §3.1 sequence by hand at the
// kernel API level: freeze, snapshot kernel state, copy pages, install on
// the new host, change the LHID, delete the old copy, unfreeze — and
// verifies the program completes with exactly the same result as an
// unmigrated run.
func TestKernelLevelMigration(t *testing.T) {
	runOnce := func(migrate bool) (uint32, *mem.AddressSpace) {
		c := newCluster(2, 6)
		a, b := c.hosts[0], c.hosts[1]
		lh := a.CreateLH("prog", true)
		as, _ := lh.CreateSpace(64 * 1024)
		var regs Regs
		regs.W[RegUser] = 2000 // 2 s of work
		p := lh.NewProcess(as.ID, "testcount", regs)
		a.Start(p)

		var final *mem.AddressSpace
		var count uint32
		done := func(l *LogicalHost) {
			final = l.Spaces()[0]
			for _, pr := range l.Procs() {
				_ = pr
			}
		}
		_ = done
		capture := func(h *Host) {
			h.OnLHEmpty = func(l *LogicalHost) {
				final = l.Spaces()[0]
			}
		}
		capture(a)
		capture(b)

		if migrate {
			c.sim.After(700*time.Millisecond, func() {
				// Freeze and snapshot on A.
				a.Freeze(lh)
				st := a.SnapshotKernelState(lh)
				// New copy on B under a fresh LHID.
				nlh := b.CreateLH("incoming", true)
				b.Freeze(nlh)
				for _, sd := range st.Spaces {
					if _, err := nlh.InstallSpace(sd.ID, sd.Size); err != nil {
						t.Errorf("InstallSpace: %v", err)
					}
				}
				// Copy all pages (state is frozen, one round suffices).
				for _, src := range lh.Spaces() {
					dst, _ := nlh.Space(src.ID)
					for _, pn := range src.AllPages() {
						dst.InstallPage(pn, src.Page(pn))
					}
				}
				if err := b.InstallKernelState(nlh, st); err != nil {
					t.Errorf("InstallKernelState: %v", err)
				}
				if err := b.ChangeLHID(nlh, st.LHID); err != nil {
					t.Errorf("ChangeLHID: %v", err)
				}
				a.DestroyLH(lh)
				b.Unfreeze(nlh, true)
				// Track the migrated process for the final count.
				p = nlh.Procs()[0]
			})
		}
		c.sim.RunFor(20 * time.Second)
		count = p.Regs().W[RegUser+1]
		return count, final
	}

	plainCount, plainMem := runOnce(false)
	migCount, migMem := runOnce(true)
	if plainCount != 2000 || migCount != 2000 {
		t.Fatalf("counts: plain=%d migrated=%d, want 2000", plainCount, migCount)
	}
	if plainMem == nil || migMem == nil {
		t.Fatal("programs did not complete")
	}
	if !plainMem.Equal(migMem) {
		t.Fatal("migrated run produced different memory contents")
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := newCluster(1, 7)
	h := c.hosts[0]
	free0 := h.MemFree()
	lh := h.CreateLH("prog", false)
	_, err := lh.CreateSpace(512 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if h.MemFree() != free0-512*1024 {
		t.Fatalf("MemFree = %d after 512K alloc", h.MemFree())
	}
	if _, err := lh.CreateSpace(4 * 1024 * 1024); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	h.DestroyLH(lh)
	if h.MemFree() != free0 {
		t.Fatalf("MemFree = %d after destroy, want %d", h.MemFree(), free0)
	}
}

func TestCrashSilencesHost(t *testing.T) {
	c := newCluster(2, 8)
	a, b := c.hosts[0], c.hosts[1]
	var err error
	done := false
	a.SpawnServer("pinger", 4096, func(ctx *ProcCtx) {
		_, err = ctx.Send(KernelServerPID(b.SystemLH().ID()), vid.Message{Op: KsPing})
		done = true
	})
	b.Crash()
	c.sim.RunFor(60 * time.Second)
	if !done {
		t.Fatal("ping never finished")
	}
	if err == nil {
		t.Fatal("ping to crashed host succeeded")
	}
}

func TestLHStateEncodeDecode(t *testing.T) {
	st := &LHState{
		LHID:  0x0105,
		Name:  "cc68",
		Guest: true,
		Spaces: []SpaceDesc{
			{ID: 1, Size: 128 * 1024},
			{ID: 2, Size: 64 * 1024},
		},
		Procs: []ProcState{
			{Index: 16, Prio: 3, SpaceID: 1, BodyKind: "testcount", Regs: Regs{W: [32]uint32{1, 2, 3}}},
		},
		NextIdx: 17,
		NextSp:  2,
	}
	got, err := DecodeLHState(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.LHID != st.LHID || got.Name != st.Name || len(got.Spaces) != 2 ||
		len(got.Procs) != 1 || got.Procs[0].Regs.W[2] != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if st.Items() != 3 {
		t.Fatalf("Items = %d, want 3", st.Items())
	}
}

func TestPageRunEncodeDecode(t *testing.T) {
	pages := []mem.PageNo{3, 7, 100}
	data := make([][]byte, 3)
	for i := range data {
		data[i] = make([]byte, mem.PageSize)
		data[i][0] = byte(i + 1)
	}
	spaceID, gp, gd, err := DecodePageRun(EncodePageRun(9, pages, data))
	if err != nil {
		t.Fatal(err)
	}
	if spaceID != 9 || len(gp) != 3 || gp[2] != 100 || gd[1][0] != 2 {
		t.Fatal("page run round trip mismatch")
	}
	if _, _, _, err := DecodePageRun([]byte{1, 2}); err == nil {
		t.Fatal("short run decoded")
	}
	if _, _, _, err := DecodePageRun(EncodePageRun(1, pages, data)[:50]); err == nil {
		t.Fatal("truncated run decoded")
	}
}

func TestCreateAndQueryProcessOps(t *testing.T) {
	c := newCluster(2, 9)
	a, b := c.hosts[0], c.hosts[1]
	lh := b.CreateLH("prog", true)
	as, _ := lh.CreateSpace(64 * 1024)
	var err error
	var created vid.PID
	var state uint32
	var regsBack Regs
	a.SpawnServer("driver", 8192, func(ctx *ProcCtx) {
		var regs Regs
		regs.W[RegUser] = 7
		cm, e := ctx.Send(KernelServerPID(b.SystemLH().ID()), vid.Message{
			Op:  KsCreateProcess,
			W:   [6]uint32{uint32(lh.ID()), as.ID},
			Seg: EncodeCreateProc("testcount", &regs),
		})
		if e != nil || !cm.OK() {
			err = e
			return
		}
		created = vid.PID(cm.W[0])
		// Not yet started: state 1 (stopped).
		qm, e := ctx.Send(KernelServerPID(b.SystemLH().ID()), vid.Message{
			Op: KsQueryProcess, W: [6]uint32{uint32(created)},
		})
		if e != nil || !qm.OK() {
			err = e
			return
		}
		state = qm.W[0]
		regsBack, err = DecodeRegs(qm.Seg)
	})
	c.sim.RunFor(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if created.LH() != lh.ID() {
		t.Fatalf("created %v not in %v", created, lh.ID())
	}
	if state != 1 {
		t.Fatalf("state = %d, want 1 (stopped)", state)
	}
	if regsBack.W[RegUser] != 7 {
		t.Fatalf("regs not preserved: %v", regsBack.W[RegUser])
	}
}

func TestRegsCodecRoundTrip(t *testing.T) {
	var r Regs
	for i := range r.W {
		r.W[i] = uint32(i * 0x01010101)
	}
	got, err := DecodeRegs(EncodeRegs(&r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatal("regs round trip mismatch")
	}
	if _, err := DecodeRegs([]byte{1, 2, 3}); err == nil {
		t.Fatal("short regs decoded")
	}
}

func TestCreateProcSegCodec(t *testing.T) {
	var r Regs
	r.W[5] = 42
	kind, regs, err := decodeCreateProc(EncodeCreateProc("vvm", &r))
	if err != nil || kind != "vvm" || regs.W[5] != 42 {
		t.Fatalf("decode = %q %v %v", kind, regs.W[5], err)
	}
	if _, _, err := decodeCreateProc([]byte("no-nul")); err == nil {
		t.Fatal("malformed seg decoded")
	}
}

func TestReadOnlyOpsPassFreeze(t *testing.T) {
	c := newCluster(2, 10)
	a, b := c.hosts[0], c.hosts[1]
	lh := b.CreateLH("prog", true)
	lh.CreateSpace(16 * 1024)
	b.Freeze(lh)
	var pingOK, queryOK bool
	var frozeFlag uint32
	a.SpawnServer("driver", 8192, func(ctx *ProcCtx) {
		// Addressed via the FROZEN logical host: read-only ops answer,
		// per the "requests that modify" rule of §3.1.3.
		m, err := ctx.Send(KernelServerPID(lh.ID()), vid.Message{Op: KsPing})
		pingOK = err == nil && m.OK()
		m, err = ctx.Send(KernelServerPID(lh.ID()), vid.Message{
			Op: KsQueryLH, W: [6]uint32{uint32(lh.ID())},
		})
		queryOK = err == nil && m.OK()
		frozeFlag = m.W[3]
	})
	c.sim.RunFor(30 * time.Second)
	if !pingOK || !queryOK {
		t.Fatalf("read-only ops deferred by freeze: ping=%v query=%v", pingOK, queryOK)
	}
	if frozeFlag != 1 {
		t.Fatal("QueryLH did not report frozen")
	}
}

func TestModifyingOpsDeferredByFreeze(t *testing.T) {
	c := newCluster(2, 11)
	a, b := c.hosts[0], c.hosts[1]
	lh := b.CreateLH("prog", true)
	lh.CreateSpace(16 * 1024)
	b.Freeze(lh)
	var doneAt sim.Time
	var err error
	a.SpawnServer("driver", 8192, func(ctx *ProcCtx) {
		// A space-creating op addressed via the frozen LH must wait for
		// the unfreeze.
		_, err = ctx.Send(KernelServerPID(lh.ID()), vid.Message{
			Op: KsCreateSpace, W: [6]uint32{uint32(lh.ID()), 4096},
		})
		doneAt = ctx.Now()
	})
	c.sim.After(3*time.Second, func() { b.Unfreeze(lh, false) })
	c.sim.RunFor(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if doneAt < sim.Time(3*time.Second) {
		t.Fatalf("modifying op completed at %v, before unfreeze", doneAt)
	}
}
