package kernel

import (
	"fmt"
	"time"

	"vsystem/internal/ipc"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// Regs is a process's register blob: the only per-process mutable state
// outside its address space. Migration copies it verbatim, so bodies must
// keep *all* resume state here or in memory — never in Go locals that
// outlive a blocking call.
type Regs struct {
	W [32]uint32
}

// Conventional register assignments shared by all bodies.
const (
	// RegPhase distinguishes resume points (body-defined values; 0 =
	// initial entry).
	RegPhase = 0
	// RegExitCode is set when the process exits.
	RegExitCode = 1
	// RegPC..: bodies may use the remaining registers freely.
	RegUser = 2
)

// Body is the program a process runs. Bodies are reconstructed from the
// registry after migration, so Run must be written to resume from the
// register blob and address-space contents alone: on entry it inspects
// ctx.Regs() (and ctx.Sending()/open requests) to decide where to
// continue.
type Body interface {
	Run(ctx *ProcCtx)
}

// BodyFunc adapts a function to Body.
type BodyFunc func(ctx *ProcCtx)

// Run implements Body.
func (f BodyFunc) Run(ctx *ProcCtx) { f(ctx) }

var bodyFactories = map[string]func() Body{}

// RegisterBody installs a factory for a program kind ("vvm", workload
// kinds). Registration happens in package init functions and must be
// unique.
func RegisterBody(kind string, f func() Body) {
	if _, dup := bodyFactories[kind]; dup {
		panic("kernel: duplicate body kind " + kind)
	}
	bodyFactories[kind] = f
}

// NewBody instantiates a body by kind.
func NewBody(kind string) Body {
	f := bodyFactories[kind]
	if f == nil {
		panic(fmt.Sprintf("kernel: unknown body kind %q", kind))
	}
	return f()
}

// ProcCtx is the system-call interface a body uses to interact with the
// kernel: CPU time, memory, and IPC. Every operation passes a freeze gate,
// so a frozen logical host stops at the next kernel interaction — and,
// when migration support is compiled in, pays the paper's 13 µs frozen
// check (§4.1).
type ProcCtx struct {
	host *Host
	proc *Process
	task *sim.Task
}

// gate charges the frozen check and blocks while the logical host is
// frozen.
func (c *ProcCtx) gate() {
	if c.host.MigrationOverhead {
		c.host.CPU.Use(c.task, params.FrozenCheckCPU, params.PrioKernel)
	}
	for c.proc.lh.frozen {
		c.proc.lh.unfreeze.Wait(c.task)
	}
}

// Host returns the hosting workstation (system servers only; migratable
// bodies must not retain host-specific references across blocking calls).
func (c *ProcCtx) Host() *Host { return c.host }

// Task returns the underlying simulation task.
func (c *ProcCtx) Task() *sim.Task { return c.task }

// PID returns the process's identifier.
func (c *ProcCtx) PID() vid.PID { return c.proc.PID() }

// Now returns the current virtual time.
func (c *ProcCtx) Now() sim.Time { return c.task.Now() }

// Regs returns the process's register blob.
func (c *ProcCtx) Regs() *Regs { return &c.proc.regs }

// Space returns the process's address space.
func (c *ProcCtx) Space() *mem.AddressSpace {
	as, ok := c.proc.lh.spaces[c.proc.spaceID]
	if !ok {
		panic(fmt.Sprintf("kernel: %v has no space %d", c.proc.PID(), c.proc.spaceID))
	}
	return as
}

// Compute consumes CPU time at the process's priority, yielding to the
// scheduler at quantum granularity and stopping while frozen.
func (c *ProcCtx) Compute(d time.Duration) {
	c.gate()
	lh := c.proc.lh
	c.host.CPU.UseGated(c.task, d, c.proc.prio, func() bool { return !lh.frozen })
}

// Steps consumes CPU for n virtual machine instructions.
func (c *ProcCtx) Steps(n int) {
	c.Compute(time.Duration(n) * params.InstrTime)
}

// Send performs a blocking message transaction.
func (c *ProcCtx) Send(dst vid.PID, msg vid.Message) (vid.Message, error) {
	c.StartSend(dst, msg)
	return c.AwaitReply()
}

// StartSend begins a send transaction. A body that may migrate while
// awaiting the reply records a resume phase in its registers and calls
// AwaitReply on re-entry (checking Sending()).
//
// The transaction is recorded in the port *before* the freeze gate: once
// the caller has committed (in its registers) to having issued this send,
// parking it must leave a state snapshot with the send in flight, not one
// where the send silently never happened. A freeze arriving here thus
// captures an issued transaction that the migrated copy resumes by
// retransmitting — the replier's duplicate detection keeps that exact-once.
func (c *ProcCtx) StartSend(dst vid.PID, msg vid.Message) {
	c.proc.port.StartSend(c.task, dst, msg)
	c.gate()
}

// SendGather performs a bounded gathering transaction: the message is
// sent (typically to a group) and *all* distinct replies arriving within
// the window are collected, rather than the first one completing the
// send. Resident servers use it for load-aware host selection; like any
// group send it is not preserved across migration, so migratable bodies
// should prefer Send.
func (c *ProcCtx) SendGather(dst vid.PID, msg vid.Message, window time.Duration) ([]ipc.GatherReply, error) {
	c.proc.port.StartGather(c.task, dst, msg, window)
	c.gate()
	rs, err := c.proc.port.AwaitGather(c.task)
	c.gate()
	return rs, err
}

// Sending reports whether a send transaction is outstanding (set after a
// migration that interrupted a Send).
func (c *ProcCtx) Sending() bool { return c.proc.port.Sending() }

// AwaitReply completes an outstanding send transaction.
func (c *ProcCtx) AwaitReply() (vid.Message, error) {
	m, err := c.proc.port.AwaitReply(c.task)
	c.gate()
	return m, err
}

// Receive blocks for an incoming request.
func (c *ProcCtx) Receive() *ipc.Req {
	c.gate()
	r := c.proc.port.Receive(c.task)
	c.gate()
	return r
}

// ReceiveTimeout is Receive with a deadline (nil on expiry).
func (c *ProcCtx) ReceiveTimeout(d time.Duration) *ipc.Req {
	c.gate()
	r := c.proc.port.ReceiveTimeout(c.task, d)
	c.gate()
	return r
}

// OpenRequest re-derives the handle of a request that was mid-service when
// the process migrated.
func (c *ProcCtx) OpenRequest(src vid.PID) *ipc.Req { return c.proc.port.OpenRequest(src) }

// OpenRequests lists every request that was mid-service when the process
// migrated; a restored server finishes these before receiving new work.
func (c *ProcCtx) OpenRequests() []*ipc.Req { return c.proc.port.OpenRequests() }

// Reply answers a received request.
func (c *ProcCtx) Reply(r *ipc.Req, msg vid.Message) {
	c.gate()
	c.proc.port.Reply(c.task, r, msg)
}

// JoinGroup adds this process to a global process group on its current
// host. Group membership is host-local state and does not migrate; only
// resident servers use groups.
func (c *ProcCtx) JoinGroup(g vid.PID) { c.host.JoinGroup(g, c.proc.PID()) }

// Exit terminates the process with the given code.
func (c *ProcCtx) Exit(code uint32) {
	panic(exitPanic{code: code})
}

// Sleep suspends the process for d of virtual time (it remains migratable;
// on the new host the remaining sleep is not preserved — bodies needing
// precise resumable delays should loop on Compute instead).
func (c *ProcCtx) Sleep(d time.Duration) {
	c.gate()
	c.task.Sleep(d)
	c.gate()
}
