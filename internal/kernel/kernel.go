// Package kernel implements the per-workstation V kernel: logical hosts,
// processes, address spaces, freeze/unfreeze, and the kernel server.
//
// As in the paper (§2.1), a functionally identical kernel runs on every
// host, providing address spaces, processes within them, and
// network-transparent IPC. Address spaces and processes are grouped into
// logical hosts — the unit of migration. The kernel server (well-known
// local index 1) performs low-level process and memory management; all
// other services (program manager, file server, display server) are
// processes outside the kernel.
package kernel

import (
	"fmt"
	"time"

	"vsystem/internal/cpu"
	"vsystem/internal/ethernet"
	"vsystem/internal/ipc"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Host is one workstation (or server machine): kernel state plus the
// hardware it manages.
type Host struct {
	Eng  *sim.Engine
	Name string
	// HostIndex is the workstation's position in the cluster; it seeds
	// the host's logical-host-id allocation range and its MAC.
	HostIndex int
	CPU       *cpu.CPU
	IPC       *ipc.Engine
	NIC       *ethernet.NIC

	lhs       map[vid.LHID]*LogicalHost
	nextLH    uint16
	retiredLH map[vid.LHID]bool // ids migrated away; never re-mint locally
	groups    map[vid.PID][]vid.PID
	wellKnown map[uint16]vid.PID
	systemLH  *LogicalHost
	memFree   uint32

	// MigrationOverhead enables the per-operation frozen check (the
	// paper's measured 13 µs, §4.1). Disabling it models a kernel built
	// without migration support, for the overhead ablation.
	MigrationOverhead bool

	// OnLHEmpty is invoked (if set) when the last process of a
	// non-system logical host exits; the program manager uses it to tear
	// the program down and notify waiters.
	OnLHEmpty func(lh *LogicalHost)

	// OnLHIDChanged is invoked (if set) after a resident logical host
	// assumes a new identity (the migration swap, §3.1.1); the program
	// manager uses it to arm its orphaned-receptacle watchdog so that a
	// source host dying after the swap leaves the new copy authoritative.
	OnLHIDChanged func(lh *LogicalHost, old vid.LHID)

	// Crashed simulates a powered-off workstation: the NIC drops all
	// traffic and no new work is accepted.
	crashed bool

	// beaconOn records that the periodic load-advertisement beacon has
	// been started (EnableLoadAds is idempotent).
	beaconOn bool

	trace      *trace.Bus // nil until wired; nil bus is a no-op target
	freezes    int64
	frozenTime time.Duration
}

// systemReserve is kernel + resident-server memory not available to
// programs.
const systemReserve = 256 * 1024

// NewHost boots a workstation kernel attached to the bus. Host indices
// start at 0; the MAC is index+1 (0 is unused, 0xFFFF is broadcast).
func NewHost(eng *sim.Engine, bus *ethernet.Bus, index int, name string) *Host {
	h := &Host{
		Eng:               eng,
		Name:              name,
		HostIndex:         index,
		CPU:               cpu.New(eng),
		NIC:               bus.Attach(ethernet.MAC(index + 1)),
		lhs:               make(map[vid.LHID]*LogicalHost),
		retiredLH:         make(map[vid.LHID]bool),
		groups:            make(map[vid.PID][]vid.PID),
		wellKnown:         make(map[uint16]vid.PID),
		memFree:           params.WorkstationMemory - systemReserve,
		MigrationOverhead: true,
	}
	h.IPC = ipc.New(eng, h.NIC, h.CPU, (*hostResolver)(h))
	h.systemLH = h.newLH("system:"+name, false, true)
	h.startKernelServer()
	return h
}

// Trace returns the host's trace bus (nil until AttachTrace — a nil bus
// is a valid no-op publish target).
func (h *Host) Trace() *trace.Bus { return h.trace }

// AttachTrace wires the host's kernel, IPC engine, and CPU scheduler to
// the cluster's trace bus. Call once, right after NewHost; a nil bus
// detaches everything.
func (h *Host) AttachTrace(b *trace.Bus) {
	h.trace = b
	h.IPC.SetTraceBus(b)
	if b == nil {
		h.CPU.SetDispatchHook(nil)
		return
	}
	h.CPU.SetDispatchHook(func(prio int, slice time.Duration) {
		b.Publish(trace.Event{
			At: h.Eng.Now(), Host: uint16(h.NIC.MAC()), Kind: trace.EvDispatch, Prio: prio,
		})
	})
}

// FreezeStats reports how many freezes the kernel has performed and the
// cumulative frozen time across completed freeze/unfreeze pairs.
func (h *Host) FreezeStats() (freezes int64, frozen time.Duration) {
	return h.freezes, h.frozenTime
}

// SystemLH returns the host's system logical host (kernel server, program
// manager, and other resident servers live in it).
func (h *Host) SystemLH() *LogicalHost { return h.systemLH }

// MemFree reports memory available for programs, in bytes.
func (h *Host) MemFree() uint32 { return h.memFree }

// Crashed reports whether the host is simulated as powered off.
func (h *Host) Crashed() bool { return h.crashed }

// ReadyDepth reports how many program-priority scheduling requests (local
// and guest programs, ready or running) are competing for the CPU — the
// primary load figure selection policies compare hosts by.
func (h *Host) ReadyDepth() int { return h.CPU.QueueLen(params.PrioLocal) }

// Residents reports how many non-system logical hosts (programs) are
// resident.
func (h *Host) Residents() int {
	n := 0
	for _, lh := range h.lhs {
		if !lh.system {
			n++
		}
	}
	return n
}

// LoadWords packs the host's load advertisement into the six message words
// the scheduling layer (internal/sched) decodes: system logical host, free
// memory, ready-queue depth, resident programs, CPU utilization in
// per-mille, and the program manager's PID (0 when the host runs no
// program manager, e.g. the file server).
func (h *Host) LoadWords() [6]uint32 {
	var pm uint32
	if pid, ok := h.wellKnown[vid.IdxProgramManager]; ok {
		pm = uint32(pid)
	}
	return [6]uint32{
		uint32(h.systemLH.id),
		h.memFree,
		uint32(h.ReadyDepth()),
		uint32(h.Residents()),
		uint32(h.CPU.Utilization() * 1000),
		pm,
	}
}

// EnableLoadAds makes the kernel export its load: every outgoing reply
// frame is stamped with the current LoadWords (piggybacked dissemination,
// no extra frames), and — when beacon > 0 — a KLoadAd broadcast is also
// sent every beacon interval, staggered by host index so the beacons do
// not collide. Idempotent; the beacon survives crash/restart (a crashed
// host skips its ticks and the IPC engine drops broadcasts while down).
func (h *Host) EnableLoadAds(beacon time.Duration) {
	h.IPC.SetLoadFunc(h.LoadWords)
	if beacon <= 0 || h.beaconOn {
		return
	}
	h.beaconOn = true
	var tick func()
	tick = func() {
		if !h.crashed {
			h.IPC.BroadcastLoad()
		}
		h.Eng.After(beacon, tick)
	}
	h.Eng.After(beacon+time.Duration(h.HostIndex*10)*time.Millisecond, tick)
}

// Crash simulates the workstation failing: all logical hosts (including
// the system one) vanish, their processes die, and the station stops
// responding to the network. Used by the residual-dependency experiments
// and the fault injector. A crashed host can be brought back with Restart.
func (h *Host) Crash() {
	if h.crashed {
		return
	}
	h.crashed = true
	for _, lh := range h.lhs {
		for _, p := range lh.procs {
			if p.task != nil {
				p.task.Kill()
			}
			p.dead = true
			if p.port != nil {
				p.port.Close()
			}
		}
	}
	h.lhs = make(map[vid.LHID]*LogicalHost)
	for g := range h.groups {
		h.NIC.LeaveMulticast(ethernet.Multicast(uint16(g.LH())))
	}
	h.groups = make(map[vid.PID][]vid.PID)
	h.wellKnown = make(map[uint16]vid.PID)
	h.OnLHEmpty = nil
	h.OnLHIDChanged = nil
	h.IPC.SetDown(true)
	h.trace.Publish(trace.Event{
		At: h.Eng.Now(), Host: uint16(h.NIC.MAC()), Kind: trace.EvHostCrash,
	})
}

// Restart reboots a crashed workstation: the kernel comes back with empty
// tables, a fresh system logical host (under a new LHID — identities that
// died with the crash stay dead), a fresh kernel server, and an empty
// binding cache, then announces its system binding so peers with stale
// caches rediscover it. Resident servers (program manager, display) must
// be restarted by the boot layer on top, as at initial boot.
func (h *Host) Restart() {
	if !h.crashed {
		return
	}
	h.crashed = false
	h.memFree = params.WorkstationMemory - systemReserve
	h.IPC.Reset()
	h.systemLH = h.newLH("system:"+h.Name, false, true)
	h.startKernelServer()
	h.trace.Publish(trace.Event{
		At: h.Eng.Now(), Host: uint16(h.NIC.MAC()), Kind: trace.EvHostRestart,
	})
	h.IPC.BroadcastBinding(h.systemLH.id)
}

// hostResolver adapts Host to ipc.Resolver without exporting the methods
// on Host itself.
type hostResolver Host

func (r *hostResolver) LHResident(lh vid.LHID) bool {
	_, ok := r.lhs[lh]
	return ok
}

func (r *hostResolver) Frozen(lh vid.LHID) bool {
	l, ok := r.lhs[lh]
	return ok && l.frozen
}

func (r *hostResolver) WellKnown(lh vid.LHID, idx uint16) (vid.PID, bool) {
	if _, ok := r.lhs[lh]; !ok {
		return vid.Nil, false
	}
	pid, ok := r.wellKnown[idx]
	return pid, ok
}

func (r *hostResolver) GroupMembers(g vid.PID) []vid.PID { return r.groups[g] }

// DeferWhenFrozen implements the §3.1.3 rule: requests that modify a
// frozen logical host are deferred; read-only kernel-server operations
// (ping, queries, register/page reads — what a debugger needs on a
// suspended process) go through.
func (r *hostResolver) DeferWhenFrozen(dst vid.PID, op uint16) bool {
	if dst.Index() != vid.IdxKernelServer {
		return true
	}
	switch op {
	case KsPing, KsQueryLH, KsQueryProcess, KsQueryLoad, KsReadPages, KsFetchPage:
		return false
	}
	return true
}

// RegisterWellKnown binds a well-known local index (kernel server, program
// manager) to a concrete local port.
func (h *Host) RegisterWellKnown(idx uint16, pid vid.PID) { h.wellKnown[idx] = pid }

// JoinGroup adds a local port to a global process group. The first local
// member programs the group's multicast address into the NIC's receive
// filter, so group traffic only costs kernels that host a member.
func (h *Host) JoinGroup(g vid.PID, pid vid.PID) {
	if !g.IsGroup() {
		panic("kernel: JoinGroup with non-group id")
	}
	if len(h.groups[g]) == 0 {
		h.NIC.JoinMulticast(ethernet.Multicast(uint16(g.LH())))
	}
	h.groups[g] = append(h.groups[g], pid)
}

// LeaveGroup removes a local port from a group; the last member out
// deprograms the multicast filter.
func (h *Host) LeaveGroup(g vid.PID, pid vid.PID) {
	ms := h.groups[g]
	for i, m := range ms {
		if m == pid {
			h.groups[g] = append(ms[:i], ms[i+1:]...)
			if len(h.groups[g]) == 0 {
				h.NIC.LeaveMulticast(ethernet.Multicast(uint16(g.LH())))
			}
			return
		}
	}
}

// ---------------------------------------------------------- logical hosts

// LogicalHost groups address spaces and processes into the unit of
// migration (§2.1).
type LogicalHost struct {
	id     vid.LHID
	host   *Host
	name   string
	guest  bool // remotely executed: processes run at guest priority
	system bool // hosts the kernel server and resident servers; never migrates

	frozen   bool
	frozenAt sim.Time
	unfreeze sim.WaitQ
	exitCode uint32 // exit code of the last process to exit

	// lastWrite is the virtual time of the last externally driven state
	// write (page runs, installed spaces, kernel state) — the activity
	// signal a migration receptacle's inactivity reaper keys off.
	lastWrite sim.Time

	procs   map[uint16]*Process
	spaces  map[uint32]*mem.AddressSpace
	nextIdx uint16
	nextSp  uint32
	memUsed uint32
}

// newLH allocates a logical host with an id from this host's range (the
// station address in the LHID's station field). LHID allocation is
// decentralized, like V's. Slots recycle round-robin once their logical
// host is destroyed — a long run executes an unbounded number of guest
// programs per host — but ids migrated away stay retired (see RetireLHID):
// the identity lives on at the destination and must never be re-minted
// here.
func (h *Host) newLH(name string, guest, system bool) *LogicalHost {
	id, ok := h.allocLHID()
	if !ok {
		panic("kernel: logical-host ids exhausted")
	}
	lh := &LogicalHost{
		id:        id,
		host:      h,
		name:      name,
		guest:     guest,
		system:    system,
		procs:     make(map[uint16]*Process),
		spaces:    make(map[uint32]*mem.AddressSpace),
		nextIdx:   vid.IdxFirstProcess,
		lastWrite: h.Eng.Now(),
	}
	h.lhs[id] = lh
	return lh
}

// allocLHID picks a free, unretired id from this host's slot range.
func (h *Host) allocLHID() (vid.LHID, bool) {
	station := uint16(h.HostIndex + 1)
	for i := 0; i < vid.LHSlotCount; i++ {
		h.nextLH++
		cand := vid.NewHostLH(station, h.nextLH%vid.LHSlotCount)
		if _, live := h.lhs[cand]; !live && !h.retiredLH[cand] {
			return cand, true
		}
	}
	return 0, false
}

// DetachResidue relabels a (frozen) logical host to a fresh id from this
// host's allocation range. Post-copy migration calls it right after the
// identity swap commits: the original id now lives at the destination,
// while the old copy stays behind under a private id as a page-serving
// receptacle — local references to the original id miss and rebind to
// the destination, and the destination's adoption probe correctly finds
// the identity "not resident" here. Fails when every slot is in use, in
// which case the caller must drain the residue synchronously instead.
func (h *Host) DetachResidue(lh *LogicalHost) (vid.LHID, error) {
	id, ok := h.allocLHID()
	if !ok {
		return 0, vid.CodeError(vid.CodeNoMemory)
	}
	if err := h.ChangeLHID(lh, id); err != nil {
		return 0, err
	}
	return id, nil
}

// CreateLH allocates a logical host for a program. guest marks remotely
// executed programs (scheduled at guest priority).
func (h *Host) CreateLH(name string, guest bool) *LogicalHost {
	return h.newLH(name, guest, false)
}

// LookupLH finds a resident logical host.
func (h *Host) LookupLH(id vid.LHID) (*LogicalHost, bool) {
	lh, ok := h.lhs[id]
	return lh, ok
}

// LHs returns the resident logical-host ids (unordered).
func (h *Host) LHs() []*LogicalHost {
	out := make([]*LogicalHost, 0, len(h.lhs))
	for _, lh := range h.lhs {
		out = append(out, lh)
	}
	return out
}

// ID returns the logical host's identifier.
func (lh *LogicalHost) ID() vid.LHID { return lh.id }

// Name returns the program name the logical host runs.
func (lh *LogicalHost) Name() string { return lh.name }

// Guest reports whether the logical host was created for a remotely
// executed program.
func (lh *LogicalHost) Guest() bool { return lh.guest }

// System reports whether this is the host's system logical host.
func (lh *LogicalHost) System() bool { return lh.system }

// Frozen reports the freeze state.
func (lh *LogicalHost) Frozen() bool { return lh.frozen }

// ExitCode returns the exit code of the last process that exited in this
// logical host (the program's exit status once the host is empty).
func (lh *LogicalHost) ExitCode() uint32 { return lh.exitCode }

// LastWriteAt returns the virtual time of the last externally driven state
// write into this logical host (creation counts as the first). The program
// manager uses it to reap only *inactive* migration receptacles, so a slow
// but live copy is never destroyed mid-transfer.
func (lh *LogicalHost) LastWriteAt() sim.Time { return lh.lastWrite }

// Host returns the physical host the logical host currently resides on.
func (lh *LogicalHost) Host() *Host { return lh.host }

// MemUsed returns the memory reserved by the logical host's spaces.
func (lh *LogicalHost) MemUsed() uint32 { return lh.memUsed }

// CreateSpace allocates an address space of the given size within the
// logical host, reserving physical memory.
func (lh *LogicalHost) CreateSpace(size uint32) (*mem.AddressSpace, error) {
	if size%mem.PageSize != 0 {
		size += mem.PageSize - size%mem.PageSize
	}
	if !lh.system && size > lh.host.memFree {
		return nil, vid.CodeError(vid.CodeNoMemory)
	}
	lh.nextSp++
	as := mem.NewAddressSpace(lh.nextSp, size)
	lh.spaces[as.ID] = as
	if !lh.system {
		lh.host.memFree -= size
		lh.memUsed += size
	}
	return as, nil
}

// Space returns an address space by id.
func (lh *LogicalHost) Space(id uint32) (*mem.AddressSpace, bool) {
	as, ok := lh.spaces[id]
	return as, ok
}

// Spaces returns the logical host's address spaces in id order.
func (lh *LogicalHost) Spaces() []*mem.AddressSpace {
	out := make([]*mem.AddressSpace, 0, len(lh.spaces))
	for id := uint32(1); id <= lh.nextSp; id++ {
		if as, ok := lh.spaces[id]; ok {
			out = append(out, as)
		}
	}
	return out
}

// Procs returns the logical host's processes in index order.
func (lh *LogicalHost) Procs() []*Process {
	out := make([]*Process, 0, len(lh.procs))
	for idx := vid.IdxFirstProcess; idx < lh.nextIdx; idx++ {
		if p, ok := lh.procs[idx]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Freeze suspends execution of the logical host's processes and defers
// external interactions (§3.1): the CPU scheduler stops granting them
// time, incoming requests draw reply-pending packets, and incoming replies
// are discarded — all enforced by the freeze checks in the CPU gates and
// the IPC engine.
func (h *Host) Freeze(lh *LogicalHost) {
	if lh.frozen {
		return
	}
	lh.frozen = true
	lh.frozenAt = h.Eng.Now()
	h.freezes++
	h.trace.Publish(trace.Event{
		At: h.Eng.Now(), Host: uint16(h.NIC.MAC()), Kind: trace.EvFreeze, LH: lh.id,
	})
}

// Unfreeze resumes the logical host: blocked processes wake, restored
// processes not yet started are spawned, quiesced ports re-arm their
// retransmission timers, and (optionally) the new binding is broadcast.
func (h *Host) Unfreeze(lh *LogicalHost, broadcastBinding bool) {
	if !lh.frozen {
		return
	}
	lh.frozen = false
	h.frozenTime += h.Eng.Now().Sub(lh.frozenAt)
	h.trace.Publish(trace.Event{
		At: h.Eng.Now(), Host: uint16(h.NIC.MAC()), Kind: trace.EvUnfreeze, LH: lh.id,
	})
	lh.unfreeze.WakeAll()
	for _, p := range lh.Procs() {
		if p.port != nil {
			p.port.Activate()
		}
		if !p.started && !p.dead {
			h.startProcess(p)
		}
	}
	h.CPU.Kick()
	if broadcastBinding {
		h.IPC.BroadcastBinding(lh.id)
	}
}

// ChangeLHID relabels a logical host — the step that makes the new copy
// assume the migrated logical host's identity (§3.1.1, §3.1.3). The
// processes' PIDs follow automatically because a PID is derived from the
// logical-host id.
func (h *Host) ChangeLHID(lh *LogicalHost, final vid.LHID) error {
	if _, taken := h.lhs[final]; taken {
		return vid.CodeError(vid.CodeRefused)
	}
	old := lh.id
	delete(h.lhs, lh.id)
	lh.id = final
	h.lhs[final] = lh
	if h.OnLHIDChanged != nil {
		h.OnLHIDChanged(lh, old)
	}
	return nil
}

// RetireLHID marks an id from this host's allocation range as permanently
// unavailable. The migration source calls it after destroying its copy of
// a migrated logical host: the identity is now resident elsewhere, so the
// slot must never be recycled into a fresh, colliding logical host.
func (h *Host) RetireLHID(id vid.LHID) { h.retiredLH[id] = true }

// DestroyLH deletes a logical host: processes die, ports close (queued
// messages are discarded; senders re-send to the new copy, §3.1.3), and
// memory is released.
func (h *Host) DestroyLH(lh *LogicalHost) {
	if lh.system {
		panic("kernel: destroying system logical host")
	}
	for _, p := range lh.procs {
		p.dead = true
		if p.task != nil {
			p.task.Kill()
		}
		if p.port != nil {
			p.port.Close()
		}
	}
	lh.procs = make(map[uint16]*Process)
	h.memFree += lh.memUsed
	lh.memUsed = 0
	delete(h.lhs, lh.id)
}

// ----------------------------------------------------------- processes

// Process is a V process: a thread of control within a logical host,
// bound to one address space. Its migratable state is the register blob
// plus its port's IPC state; its code is reconstructed from the body
// registry on the new host.
type Process struct {
	Index    uint16
	lh       *LogicalHost
	prio     int
	bodyKind string
	regs     Regs
	spaceID  uint32
	port     *ipc.Port
	task     *sim.Task
	runFn    func(*ProcCtx) // system processes only; overrides bodyKind
	started  bool
	dead     bool
}

// PID returns the process identifier, derived from the current logical
// host id.
func (p *Process) PID() vid.PID { return vid.NewPID(p.lh.id, p.Index) }

// LH returns the owning logical host.
func (p *Process) LH() *LogicalHost { return p.lh }

// Port returns the process's IPC port.
func (p *Process) Port() *ipc.Port { return p.port }

// Regs returns the process's register blob (mutable).
func (p *Process) Regs() *Regs { return &p.regs }

// Dead reports whether the process has exited or been destroyed.
func (p *Process) Dead() bool { return p.dead }

// Started reports whether the process's body has been spawned.
func (p *Process) Started() bool { return p.started }

// NewProcess creates a process in the logical host, not yet started: as in
// the paper's program-creation protocol, the newly created process awaits
// its creator's go-ahead (§2.1). The process's priority is derived from
// the logical host (guest or local) unless it is a system process.
func (lh *LogicalHost) NewProcess(spaceID uint32, bodyKind string, regs Regs) *Process {
	idx := lh.nextIdx
	lh.nextIdx++
	prio := params.PrioLocal
	if lh.guest {
		prio = params.PrioGuest
	}
	if lh.system {
		prio = params.PrioSystem
	}
	p := &Process{
		Index:    idx,
		lh:       lh,
		prio:     prio,
		bodyKind: bodyKind,
		regs:     regs,
		spaceID:  spaceID,
	}
	p.port = lh.host.IPC.NewPort(p.PID())
	lh.procs[idx] = p
	return p
}

// restoreProcess recreates a migrated process from kernel state; its port
// is restored separately.
func (lh *LogicalHost) restoreProcess(st ProcState) *Process {
	p := &Process{
		Index:    st.Index,
		lh:       lh,
		prio:     st.Prio,
		bodyKind: st.BodyKind,
		regs:     st.Regs,
		spaceID:  st.SpaceID,
	}
	lh.procs[st.Index] = p
	if st.Index >= lh.nextIdx {
		lh.nextIdx = st.Index + 1
	}
	return p
}

// Start spawns the process's body. Frozen logical hosts delay the actual
// first instruction until unfreeze (the body blocks at its first gate).
func (h *Host) Start(p *Process) { h.startProcess(p) }

// exitPanic unwinds a body when the process exits explicitly.
type exitPanic struct{ code uint32 }

func (h *Host) startProcess(p *Process) {
	if p.started || p.dead {
		return
	}
	p.started = true
	name := fmt.Sprintf("%s/%v", p.lh.name, p.PID())
	ctx := &ProcCtx{host: h, proc: p}
	p.task = h.Eng.Spawn(name, func(t *sim.Task) {
		ctx.task = t
		defer func() {
			if r := recover(); r != nil {
				if sim.IsKill(r) {
					panic(r)
				}
				if ep, ok := r.(exitPanic); ok {
					p.regs.W[RegExitCode] = ep.code
				} else {
					panic(r)
				}
			}
			h.procExit(p)
		}()
		ctx.gate()
		if p.runFn != nil {
			p.runFn(ctx)
			return
		}
		NewBody(p.bodyKind).Run(ctx)
	})
}

// procExit handles a process finishing (normally or via Exit).
func (h *Host) procExit(p *Process) {
	if p.dead {
		return
	}
	p.dead = true
	p.lh.exitCode = p.regs.W[RegExitCode]
	if p.port != nil {
		p.port.Close()
	}
	delete(p.lh.procs, p.Index)
	if len(p.lh.procs) == 0 && !p.lh.system {
		if h.OnLHEmpty != nil {
			h.OnLHEmpty(p.lh)
		}
	}
}

// SpawnServer creates and immediately starts a system process in the
// host's system logical host running fn. Used for the kernel server,
// program manager, file server and display server — processes that never
// migrate.
func (h *Host) SpawnServer(name string, spaceSize uint32, fn func(*ProcCtx)) *Process {
	as, err := h.systemLH.CreateSpace(spaceSize)
	if err != nil {
		panic(err)
	}
	p := h.systemLH.NewProcess(as.ID, "server:"+name, Regs{})
	p.runFn = fn
	h.startProcess(p)
	return p
}
