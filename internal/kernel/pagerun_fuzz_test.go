package kernel

import (
	"bytes"
	"testing"

	"vsystem/internal/mem"
)

// FuzzDecodePageRun hammers the destination kernel server's run parser
// with arbitrary segments: it must either reject them with an error or
// decode a self-consistent run — never panic, never return data of the
// wrong shape. Valid decodes must re-encode to an equivalent run
// (round-trip stability), so a corrupted length field can't smuggle
// misaligned page bodies past the bounds checks.
func FuzzDecodePageRun(f *testing.F) {
	pages, data := runPages(0, 5, func(i int) bool { return i%2 == 0 })
	f.Add(EncodePageRun(3, pages, data))
	allZero, zdata := runPages(2, 3, func(int) bool { return true })
	f.Add(EncodePageRun(9, allZero, zdata))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 5, 0, 0, 0})

	f.Fuzz(func(t *testing.T, seg []byte) {
		space, pages, data, err := DecodePageRun(seg)
		if err != nil {
			return
		}
		if len(pages) != len(data) || len(pages) > MaxRunPages {
			t.Fatalf("decoded %d pages, %d data entries", len(pages), len(data))
		}
		for i, d := range data {
			if len(d) != mem.PageSize {
				t.Fatalf("page %d decoded to %d bytes", pages[i], len(d))
			}
		}
		reseg := EncodePageRun(space, pages, data)
		s2, p2, d2, err := DecodePageRun(reseg)
		if err != nil {
			t.Fatalf("re-encoded run rejected: %v", err)
		}
		if s2 != space || len(p2) != len(pages) {
			t.Fatalf("round trip changed shape: space %d→%d, %d→%d pages", space, s2, len(pages), len(p2))
		}
		for i := range pages {
			if p2[i] != pages[i] || !bytes.Equal(d2[i], data[i]) {
				t.Fatalf("round trip changed page %d", pages[i])
			}
		}
	})
}
