package kernel

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"vsystem/internal/mem"
	"vsystem/internal/vid"
)

// runPages builds a batch of n pages starting at first, where zero[i]
// selects the shared zero page and the rest carry a per-page pattern.
func runPages(first, n int, zero func(i int) bool) ([]mem.PageNo, [][]byte) {
	pages := make([]mem.PageNo, n)
	data := make([][]byte, n)
	for i := 0; i < n; i++ {
		pages[i] = mem.PageNo(first + i)
		if zero(i) {
			data[i] = mem.ZeroPage()
		} else {
			b := make([]byte, mem.PageSize)
			for j := range b {
				b[j] = byte(first + i + j)
			}
			data[i] = b
		}
	}
	return pages, data
}

func TestPageRunZeroElision(t *testing.T) {
	pages, data := runPages(4, 9, func(i int) bool { return i%3 == 0 })
	seg := EncodePageRun(7, pages, data)
	// 3 of 9 pages are zero: their bodies must be elided from the wire.
	want := 8 + 9*4 + 6*mem.PageSize
	if len(seg) != want {
		t.Fatalf("encoded %d bytes, want %d", len(seg), want)
	}
	space, gotPages, gotData, err := DecodePageRun(seg)
	if err != nil {
		t.Fatal(err)
	}
	if space != 7 || len(gotPages) != 9 {
		t.Fatalf("decoded space %d, %d pages", space, len(gotPages))
	}
	for i := range pages {
		if gotPages[i] != pages[i] {
			t.Fatalf("page %d decoded as %d, want %d", i, gotPages[i], pages[i])
		}
		if !bytes.Equal(gotData[i], data[i]) {
			t.Fatalf("page %d contents differ", pages[i])
		}
	}
}

func TestPageRunAllZeroCollapses(t *testing.T) {
	pages, data := runPages(0, MaxRunPages, func(int) bool { return true })
	seg := EncodePageRun(1, pages, data)
	if want := 8 + MaxRunPages*4; len(seg) != want {
		t.Fatalf("all-zero run encoded %d bytes, want %d", len(seg), want)
	}
	_, _, gotData, err := DecodePageRun(seg)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range gotData {
		if !mem.IsZeroPage(d) {
			t.Fatalf("page %d not zero after decode", i)
		}
	}
}

func TestDecodePageRunRejectsMalformed(t *testing.T) {
	pages, data := runPages(0, 4, func(i int) bool { return i%2 == 0 })
	good := EncodePageRun(3, pages, data)
	cases := map[string][]byte{
		"empty":            nil,
		"short header":     good[:6],
		"truncated index":  good[:8+2*4],
		"truncated body":   good[:len(good)-1],
		"count over max":   binary.LittleEndian.AppendUint32([]byte{1, 0, 0, 0}, MaxRunPages+1),
		"count negative":   binary.LittleEndian.AppendUint32([]byte{1, 0, 0, 0}, 0x80000000),
		"count beyond seg": binary.LittleEndian.AppendUint32([]byte{1, 0, 0, 0}, 5),
	}
	for name, seg := range cases {
		if _, _, _, err := DecodePageRun(seg); err == nil {
			t.Errorf("%s: decode accepted malformed run", name)
		}
	}
	if _, _, _, err := DecodePageRun(good); err != nil {
		t.Fatalf("good run rejected: %v", err)
	}
}

// TestWritePagesOutOfOrderAndDuplicate is the correctness audit behind the
// pipelined copy path: runs are self-describing, so the destination must
// produce identical memory whatever order they arrive in, and a
// retransmitted run applied twice must be idempotent.
func TestWritePagesOutOfOrderAndDuplicate(t *testing.T) {
	c := newCluster(2, 7)
	a, b := c.hosts[0], c.hosts[1]
	dstKS := KernelServerPID(b.SystemLH().ID())

	const nPages = 8
	var pushErr error
	var lhid uint32
	var spaceID uint32
	a.SpawnServer("pusher", 8192, func(ctx *ProcCtx) {
		m, err := ctx.Send(dstKS, vid.Message{Op: KsCreateLH, W: [6]uint32{1}, Seg: []byte("sink")})
		if err != nil || !m.OK() {
			pushErr = err
			return
		}
		lhid = m.W[0]
		m, err = ctx.Send(dstKS, vid.Message{Op: KsCreateSpace, W: [6]uint32{lhid, nPages * mem.PageSize}})
		if err != nil || !m.OK() {
			pushErr = err
			return
		}
		spaceID = m.W[0]

		send := func(first, n int) error {
			pages, data := runPages(first, n, func(i int) bool { return (first+i)%2 == 0 })
			m, err := ctx.Send(dstKS, vid.Message{
				Op: KsWritePages, W: [6]uint32{lhid},
				Seg: EncodePageRun(spaceID, pages, data),
			})
			if err != nil {
				return err
			}
			return m.Err()
		}
		// Out of order: the tail of the space lands before the head.
		if pushErr = send(4, 4); pushErr != nil {
			return
		}
		if pushErr = send(0, 4); pushErr != nil {
			return
		}
		// Duplicate: the tail run is retransmitted and applied again.
		pushErr = send(4, 4)
	})
	c.sim.RunFor(10 * time.Second)
	if pushErr != nil {
		t.Fatalf("push: %v", pushErr)
	}

	lh, ok := b.LookupLH(vid.LHID(lhid))
	if !ok {
		t.Fatal("sink LH missing")
	}
	as, ok := lh.Space(spaceID)
	if !ok {
		t.Fatal("sink space missing")
	}
	wantPages, wantData := runPages(0, nPages, func(i int) bool { return i%2 == 0 })
	for i, pn := range wantPages {
		if got := as.Page(pn); !bytes.Equal(got, wantData[i]) {
			t.Fatalf("page %d differs after out-of-order + duplicate runs", pn)
		}
	}
	if as.DirtyCount() != 0 {
		t.Fatalf("%d dirty pages after install; InstallPage must leave clean bits", as.DirtyCount())
	}
}

func benchRun(zero func(i int) bool) ([]mem.PageNo, [][]byte) {
	return runPages(0, MaxRunPages, zero)
}

func BenchmarkEncodePageRun(b *testing.B) {
	pages, data := benchRun(func(i int) bool { return i%4 == 0 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodePageRun(1, pages, data)
	}
}

func BenchmarkEncodePageRunAllZero(b *testing.B) {
	pages, data := benchRun(func(int) bool { return true })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodePageRun(1, pages, data)
	}
}

func BenchmarkDecodePageRun(b *testing.B) {
	pages, data := benchRun(func(i int) bool { return i%4 == 0 })
	seg := EncodePageRun(1, pages, data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodePageRun(seg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePageRunAllZero(b *testing.B) {
	pages, data := benchRun(func(int) bool { return true })
	seg := EncodePageRun(1, pages, data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodePageRun(seg); err != nil {
			b.Fatal(err)
		}
	}
}
