package kernel

import (
	"time"

	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/vid"
)

// Kernel server operation codes. The kernel server of a workstation is
// addressed location-independently as (logical-host-id, IdxKernelServer)
// for any logical host resident there (§2.1). Operations addressed through
// a *frozen* logical host are deferred by the IPC layer (reply-pending);
// migration control traffic therefore addresses the target's kernel server
// through the target's system logical host.
const (
	KsPing uint16 = 0x10 + iota
	// KsCreateLH: Seg=name, W0=guest → W0=new LHID.
	KsCreateLH
	// KsCreateSpace: W0=lh, W1=size → W0=space id.
	KsCreateSpace
	// KsInstallSpace: W0=lh, W1=space id, W2=size (fixed-id, migration).
	KsInstallSpace
	// KsCreateProcess: W0=lh, W1=space id, Seg=body kind NUL regs blob →
	// W0=new pid. Lets a program create sub-processes in its own logical
	// host (§3: "a program may create sub-programs, all of which
	// typically execute within a single logical host").
	KsCreateProcess
	// KsStartProcess: W0=pid — the creator's "reply to the initial
	// process" that starts a newly created program (§2.1).
	KsStartProcess
	// KsWritePages: W0=lh, Seg=page run → OK.
	KsWritePages
	// KsReadPages: W0=lh, W1=space, W2=first page, W3=count → Seg=run.
	KsReadPages
	// KsFreezeLH: W0=lh.
	KsFreezeLH
	// KsUnfreezeLH: W0=lh, W1=1 to broadcast the new binding.
	KsUnfreezeLH
	// KsGetState: W0=lh → Seg = encoded LHState (lh must be frozen).
	KsGetState
	// KsSetState: W0=placeholder lh, Seg = encoded LHState.
	KsSetState
	// KsChangeLHID: W0=placeholder lh, W1=final LHID.
	KsChangeLHID
	// KsDestroyLH: W0=lh.
	KsDestroyLH
	// KsQueryLH: W0=lh → W0=#procs, W1=#spaces, W2=mem used, W3=frozen.
	KsQueryLH
	// KsQueryProcess: W0=pid → Seg=register blob, W0=state (0 running,
	// 1 stopped, 2 dead). The V debugger's read-registers primitive:
	// works identically on local and remote processes (§6).
	KsQueryProcess
	// KsQueryLoad: → W = the host's load advertisement (LoadWords): a
	// direct, always-fresh read of the figures the scheduling layer
	// otherwise learns from piggybacked advertisements and beacons.
	KsQueryLoad
	// KsFetchPage: W0=lh, Seg=fetch request (EncodeFetchReq: space id plus
	// an explicit page list) → Seg=page run. The post-copy remote-fault
	// path: the destination pulls not-yet-transferred pages from the
	// frozen source receptacle. Serving a page clears its dirty bit on the
	// receptacle — the source's not-yet-delivered marker, which its
	// background push-out consults — and refreshes the receptacle's
	// activity timestamp so the inactivity reaper holds off. Requests are
	// idempotent: duplicates and out-of-order arrivals re-serve the same
	// (frozen, hence stable) contents.
	KsFetchPage
)

// Write modes for KsWritePages (W1).
const (
	// WriteModeCopy overwrites pages: the pre-swap copy stream, where the
	// destination placeholder is frozen and the source copy authoritative.
	WriteModeCopy uint32 = iota
	// WriteModeIfAbsent installs only pages the destination does not
	// already hold: the post-swap residue push-out, racing demand pulls
	// and the running guest's own writes (first writer wins, never
	// double-apply).
	WriteModeIfAbsent
	// WriteModeInvalidate drops the listed pages instead of installing
	// them: the hybrid policy's freeze-time correction for hot pages
	// re-dirtied after their pre-copy. Run bodies are all zero-elided, so
	// an invalidation run costs ~4 bytes per page on the wire.
	WriteModeInvalidate
)

// KernelServerPID returns the kernel server address reachable through the
// given logical host.
func KernelServerPID(lh vid.LHID) vid.PID { return vid.NewPID(lh, vid.IdxKernelServer) }

// startKernelServer spawns the kernel server process and registers its
// well-known index.
func (h *Host) startKernelServer() {
	p := h.SpawnServer("kserver", 16*1024, h.kernelServerLoop)
	p.prio = params.PrioKernel
	h.RegisterWellKnown(vid.IdxKernelServer, p.PID())
}

func (h *Host) kernelServerLoop(ctx *ProcCtx) {
	for {
		req := ctx.Receive()
		ctx.Compute(params.KernelOpCPU)
		ctx.Reply(req, h.handleKs(ctx, req.Msg))
	}
}

func (h *Host) handleKs(ctx *ProcCtx, m vid.Message) vid.Message {
	switch m.Op {
	case KsPing:
		return vid.Message{Op: m.Op}

	case KsCreateLH:
		lh := h.CreateLH(m.SegString(), m.W[0] != 0)
		return vid.Message{Op: m.Op, W: [6]uint32{uint32(lh.id)}}

	case KsCreateSpace:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		as, err := lh.CreateSpace(m.W[1])
		if err != nil {
			return vid.ErrMsg(vid.CodeNoMemory)
		}
		return vid.Message{Op: m.Op, W: [6]uint32{as.ID}}

	case KsInstallSpace:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		if _, err := lh.InstallSpace(m.W[1], m.W[2]); err != nil {
			return vid.ErrMsg(vid.CodeNoMemory)
		}
		lh.lastWrite = h.Eng.Now()
		return vid.Message{Op: m.Op}

	case KsCreateProcess:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		if _, ok := lh.spaces[m.W[1]]; !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		kind, regs, err := decodeCreateProc(m.Seg)
		if err != nil {
			return vid.ErrMsg(vid.CodeBadRequest)
		}
		p := lh.NewProcess(m.W[1], kind, regs)
		return vid.Message{Op: m.Op, W: [6]uint32{uint32(p.PID())}}

	case KsStartProcess:
		pid := vid.PID(m.W[0])
		lh, ok := h.lhs[pid.LH()]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		p, ok := lh.procs[pid.Index()]
		if !ok {
			return vid.ErrMsg(vid.CodeNoProcess)
		}
		h.startProcess(p)
		return vid.Message{Op: m.Op}

	case KsWritePages:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		spaceID, pages, data, err := DecodePageRun(m.Seg)
		if err != nil {
			return vid.ErrMsg(vid.CodeBadRequest)
		}
		as, ok := lh.spaces[spaceID]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		switch m.W[1] {
		case WriteModeCopy:
			for i, pn := range pages {
				if err := as.InstallPage(pn, data[i]); err != nil {
					return vid.ErrMsg(vid.CodeBadRequest)
				}
			}
		case WriteModeIfAbsent:
			for i, pn := range pages {
				if _, err := as.InstallPageIfAbsent(pn, data[i]); err != nil {
					return vid.ErrMsg(vid.CodeBadRequest)
				}
			}
		case WriteModeInvalidate:
			for _, pn := range pages {
				as.Drop(pn)
			}
		default:
			return vid.ErrMsg(vid.CodeBadRequest)
		}
		lh.lastWrite = h.Eng.Now()
		return vid.Message{Op: m.Op}

	case KsFetchPage:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		spaceID, pages, err := DecodeFetchReq(m.Seg)
		if err != nil {
			return vid.ErrMsg(vid.CodeBadRequest)
		}
		as, ok := lh.spaces[spaceID]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		data := make([][]byte, len(pages))
		for i, pn := range pages {
			data[i] = as.PageView(pn)
			// Delivered: the source's push-out skips pages whose marker is
			// already clear. A duplicate fetch just re-serves the page — the
			// receptacle is frozen, so the contents cannot have changed.
			as.ClearDirtyPage(pn)
		}
		lh.lastWrite = h.Eng.Now()
		return vid.Message{Op: m.Op, Seg: EncodePageRun(as.ID, pages, data)}

	case KsReadPages:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		as, ok := lh.spaces[m.W[1]]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		first, count := m.W[2], m.W[3]
		if count > MaxRunPages {
			return vid.ErrMsg(vid.CodeBadRequest)
		}
		var pages []mem.PageNo
		var data [][]byte
		for pn := first; pn < first+count; pn++ {
			pages = append(pages, mem.PageNo(pn))
			data = append(data, as.Page(mem.PageNo(pn)))
		}
		return vid.Message{Op: m.Op, Seg: EncodePageRun(as.ID, pages, data)}

	case KsFreezeLH:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		h.Freeze(lh)
		return vid.Message{Op: m.Op}

	case KsUnfreezeLH:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		h.Unfreeze(lh, m.W[1] != 0)
		return vid.Message{Op: m.Op}

	case KsGetState:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		if !lh.frozen {
			return vid.ErrMsg(vid.CodeRefused)
		}
		st := h.SnapshotKernelState(lh)
		ctx.Compute(params.KernelStateBaseCPU/2 + time.Duration(st.Items())*params.KernelStatePerItemCPU/2)
		return vid.Message{Op: m.Op, Seg: st.Encode()}

	case KsSetState:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		st, err := DecodeLHState(m.Seg)
		if err != nil {
			return vid.ErrMsg(vid.CodeBadRequest)
		}
		ctx.Compute(params.KernelStateBaseCPU/2 + time.Duration(st.Items())*params.KernelStatePerItemCPU/2)
		if err := h.InstallKernelState(lh, st); err != nil {
			return vid.ErrMsg(vid.CodeRefused)
		}
		lh.lastWrite = h.Eng.Now()
		return vid.Message{Op: m.Op}

	case KsChangeLHID:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		if err := h.ChangeLHID(lh, vid.LHID(m.W[1])); err != nil {
			return vid.ErrMsg(vid.CodeRefused)
		}
		return vid.Message{Op: m.Op}

	case KsDestroyLH:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		h.DestroyLH(lh)
		return vid.Message{Op: m.Op}

	case KsQueryProcess:
		pid := vid.PID(m.W[0])
		lh, ok := h.lhs[pid.LH()]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		p, ok := lh.procs[pid.Index()]
		if !ok {
			return vid.ErrMsg(vid.CodeNoProcess)
		}
		state := uint32(0)
		if !p.started {
			state = 1
		}
		if p.dead {
			state = 2
		}
		return vid.Message{Op: m.Op, W: [6]uint32{state}, Seg: EncodeRegs(&p.regs)}

	case KsQueryLoad:
		return vid.Message{Op: m.Op, W: h.LoadWords()}

	case KsQueryLH:
		lh, ok := h.lhs[vid.LHID(m.W[0])]
		if !ok {
			return vid.ErrMsg(vid.CodeNotFound)
		}
		frozen := uint32(0)
		if lh.frozen {
			frozen = 1
		}
		return vid.Message{Op: m.Op, W: [6]uint32{
			uint32(len(lh.procs)), uint32(len(lh.spaces)), lh.memUsed, frozen,
		}}
	}
	return vid.ErrMsg(vid.CodeBadRequest)
}

// EncodeCreateProc builds the KsCreateProcess segment.
func EncodeCreateProc(kind string, regs *Regs) []byte {
	seg := append([]byte(kind), 0)
	return append(seg, EncodeRegs(regs)...)
}

func decodeCreateProc(seg []byte) (string, Regs, error) {
	for i, b := range seg {
		if b == 0 {
			regs, err := DecodeRegs(seg[i+1:])
			return string(seg[:i]), regs, err
		}
	}
	return "", Regs{}, vid.CodeError(vid.CodeBadRequest)
}

// EncodeRegs serializes a register blob (little-endian words).
func EncodeRegs(r *Regs) []byte {
	out := make([]byte, 0, 4*len(r.W))
	for _, w := range r.W {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

// DecodeRegs parses a register blob.
func DecodeRegs(b []byte) (Regs, error) {
	var r Regs
	if len(b) != 4*len(r.W) {
		return r, vid.CodeError(vid.CodeBadRequest)
	}
	for i := range r.W {
		r.W[i] = uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
	}
	return r, nil
}
