package kernel

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"vsystem/internal/ipc"
	"vsystem/internal/mem"
	"vsystem/internal/vid"
)

// SpaceDesc describes one address space for migration.
type SpaceDesc struct {
	ID   uint32
	Size uint32
}

// ProcState is one process's kernel state: everything migration must move
// besides the address-space contents (§3.1.3 "copying its state in the
// kernel server and program manager").
type ProcState struct {
	Index    uint16
	Prio     int
	SpaceID  uint32
	BodyKind string
	Regs     Regs
	Port     *ipc.PortState
}

// LHState is a logical host's complete kernel state.
type LHState struct {
	LHID    vid.LHID // the identity the new copy will assume
	Name    string
	Guest   bool
	Spaces  []SpaceDesc
	Procs   []ProcState
	NextIdx uint16
	NextSp  uint32
}

// Items counts the processes and address spaces, the unit of the paper's
// "9 milliseconds for each process and address space" cost.
func (st *LHState) Items() int { return len(st.Procs) + len(st.Spaces) }

// Encode serializes the state for transfer.
func (st *LHState) Encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		panic("kernel: LHState encode: " + err.Error())
	}
	return buf.Bytes()
}

// DecodeLHState parses an encoded LHState.
func DecodeLHState(b []byte) (*LHState, error) {
	var st LHState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return nil, fmt.Errorf("kernel: LHState decode: %w", err)
	}
	return &st, nil
}

// SnapshotKernelState captures a frozen logical host's kernel state. The
// snapshot carries the logical host's current identity; migration installs
// it on the new host and relabels the placeholder logical host with it.
func (h *Host) SnapshotKernelState(lh *LogicalHost) *LHState {
	st := &LHState{
		LHID:    lh.id,
		Name:    lh.name,
		Guest:   lh.guest,
		NextIdx: lh.nextIdx,
		NextSp:  lh.nextSp,
	}
	for _, as := range lh.Spaces() {
		st.Spaces = append(st.Spaces, SpaceDesc{ID: as.ID, Size: as.Size()})
	}
	for _, p := range lh.Procs() {
		ps := ProcState{
			Index:    p.Index,
			Prio:     p.prio,
			SpaceID:  p.spaceID,
			BodyKind: p.bodyKind,
			Regs:     p.regs,
		}
		if p.port != nil {
			ps.Port = p.port.Snapshot()
		}
		st.Procs = append(st.Procs, ps)
	}
	return st
}

// InstallSpace creates (or verifies) an address space with a fixed id, as
// described by a migration descriptor.
func (lh *LogicalHost) InstallSpace(id, size uint32) (*mem.AddressSpace, error) {
	if as, ok := lh.spaces[id]; ok {
		if as.Size() != size {
			return nil, vid.CodeError(vid.CodeRefused)
		}
		return as, nil
	}
	if size%mem.PageSize != 0 {
		size += mem.PageSize - size%mem.PageSize
	}
	if !lh.system && size > lh.host.memFree {
		return nil, vid.CodeError(vid.CodeNoMemory)
	}
	as := mem.NewAddressSpace(id, size)
	lh.spaces[id] = as
	if id > lh.nextSp {
		lh.nextSp = id
	}
	if !lh.system {
		lh.host.memFree -= size
		lh.memUsed += size
	}
	return as, nil
}

// InstallKernelState restores processes (and any missing spaces) into a
// placeholder logical host on the new physical host. The logical host must
// be frozen; ports are restored quiesced with the *final* PIDs (the
// snapshot's logical-host id) and start acting only at unfreeze. The
// name/guest attributes are also assumed.
func (h *Host) InstallKernelState(lh *LogicalHost, st *LHState) error {
	if !lh.frozen {
		return vid.CodeError(vid.CodeRefused)
	}
	lh.name = st.Name
	lh.guest = st.Guest
	for _, sd := range st.Spaces {
		if _, err := lh.InstallSpace(sd.ID, sd.Size); err != nil {
			return err
		}
	}
	for _, ps := range st.Procs {
		p := lh.restoreProcess(ps)
		if ps.Port != nil {
			p.port = h.IPC.RestorePort(ps.Port, false)
		}
	}
	if st.NextIdx > lh.nextIdx {
		lh.nextIdx = st.NextIdx
	}
	if st.NextSp > lh.nextSp {
		lh.nextSp = st.NextSp
	}
	return nil
}

// --------------------------------------------------------- page runs

// MaxRunPages bounds pages per WritePages/ReadPages run so an encoded run
// fits the 32 KB segment limit.
const MaxRunPages = 30

// ZeroPageFlag marks a page-number word whose page is all zero: the body
// is elided from the run and the destination reinstalls the shared zero
// page. Page numbers are small (a space is at most a few MB) so bit 31 is
// free in the wire format.
const ZeroPageFlag = uint32(1) << 31

// EncodePageRun packs pages of one address space for a bulk write.
// All-zero pages travel as just their flagged 4-byte header word.
func EncodePageRun(spaceID uint32, pages []mem.PageNo, data [][]byte) []byte {
	if len(pages) != len(data) {
		panic("kernel: page/data mismatch")
	}
	buf := make([]byte, 0, 8+len(pages)*(4+mem.PageSize))
	buf = binary.LittleEndian.AppendUint32(buf, spaceID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pages)))
	for i, pn := range pages {
		if len(data[i]) != mem.PageSize {
			panic("kernel: short page in run")
		}
		w := uint32(pn)
		if mem.IsZeroPage(data[i]) {
			w |= ZeroPageFlag
		}
		buf = binary.LittleEndian.AppendUint32(buf, w)
	}
	for i, d := range data {
		if binary.LittleEndian.Uint32(buf[8+4*i:])&ZeroPageFlag == 0 {
			buf = append(buf, d...)
		}
	}
	return buf
}

// DecodePageRun unpacks a page run. Elided (all-zero) pages decode to the
// shared zero page; both consumers of the data copy before storing.
func DecodePageRun(seg []byte) (spaceID uint32, pages []mem.PageNo, data [][]byte, err error) {
	if len(seg) < 8 {
		return 0, nil, nil, fmt.Errorf("kernel: short page run")
	}
	spaceID = binary.LittleEndian.Uint32(seg)
	n := int(binary.LittleEndian.Uint32(seg[4:]))
	if n < 0 || n > MaxRunPages || len(seg) < 8+n*4 {
		return 0, nil, nil, fmt.Errorf("kernel: malformed page run (%d pages, %d bytes)", n, len(seg))
	}
	bodies := 0
	for i := 0; i < n; i++ {
		if binary.LittleEndian.Uint32(seg[8+4*i:])&ZeroPageFlag == 0 {
			bodies++
		}
	}
	if need := 8 + n*4 + bodies*mem.PageSize; len(seg) < need {
		return 0, nil, nil, fmt.Errorf("kernel: truncated page run (%d pages, %d bodies, %d bytes)", n, bodies, len(seg))
	}
	off := 8 + n*4
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(seg[8+4*i:])
		pages = append(pages, mem.PageNo(w&^ZeroPageFlag))
		if w&ZeroPageFlag != 0 {
			data = append(data, mem.ZeroPage())
		} else {
			data = append(data, seg[off:off+mem.PageSize])
			off += mem.PageSize
		}
	}
	return spaceID, pages, data, nil
}

// ----------------------------------------------------- fetch requests

// EncodeFetchReq packs a KsFetchPage request: one space id plus an
// explicit page list. Unlike KsReadPages' (first, count) range, the list
// is scattered — by the time the destination pulls, the hot pages in a
// range have usually arrived through pre-copy or push-out and only the
// gaps need fetching. The reply is a page run, so the list is bounded by
// MaxRunPages.
func EncodeFetchReq(spaceID uint32, pages []mem.PageNo) []byte {
	buf := make([]byte, 0, 8+4*len(pages))
	buf = binary.LittleEndian.AppendUint32(buf, spaceID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pages)))
	for _, pn := range pages {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(pn))
	}
	return buf
}

// DecodeFetchReq unpacks a fetch request. Page-number words must fit the
// real page-number space (no ZeroPageFlag bit: elision is a reply-side
// concept) and the list must be non-empty and reply-sized.
func DecodeFetchReq(seg []byte) (spaceID uint32, pages []mem.PageNo, err error) {
	if len(seg) < 8 {
		return 0, nil, fmt.Errorf("kernel: short fetch request")
	}
	spaceID = binary.LittleEndian.Uint32(seg)
	n := int(binary.LittleEndian.Uint32(seg[4:]))
	if n < 1 || n > MaxRunPages || len(seg) != 8+n*4 {
		return 0, nil, fmt.Errorf("kernel: malformed fetch request (%d pages, %d bytes)", n, len(seg))
	}
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(seg[8+4*i:])
		if w&ZeroPageFlag != 0 {
			return 0, nil, fmt.Errorf("kernel: fetch request page %#x out of range", w)
		}
		pages = append(pages, mem.PageNo(w))
	}
	return spaceID, pages, nil
}
