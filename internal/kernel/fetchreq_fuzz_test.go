package kernel

import (
	"testing"

	"vsystem/internal/mem"
)

// FuzzDecodeFetchReq hammers the receptacle's fetch-request parser with
// arbitrary segments: it must either reject them or decode a bounded,
// in-range page list — never panic, never accept a list that could not
// be answered with a single page run. Valid decodes must re-encode to the
// identical segment (the format has no redundancy), so length-field lies
// cannot smuggle extra page words past the bounds checks.
func FuzzDecodeFetchReq(f *testing.F) {
	f.Add(EncodeFetchReq(3, []mem.PageNo{0, 1, 2}))
	f.Add(EncodeFetchReq(0, []mem.PageNo{511}))
	full := make([]mem.PageNo, MaxRunPages)
	for i := range full {
		full[i] = mem.PageNo(i * 7)
	}
	f.Add(EncodeFetchReq(9, full))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})                      // empty list
	f.Add([]byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})          // absurd count
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80})       // ZeroPageFlag set
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 5, 0, 0, 0})          // truncated list
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0, 6, 0, 0}) // trailing junk

	f.Fuzz(func(t *testing.T, seg []byte) {
		spaceID, pages, err := DecodeFetchReq(seg)
		if err != nil {
			return
		}
		if len(pages) < 1 || len(pages) > MaxRunPages {
			t.Fatalf("decoded %d pages, want 1..%d", len(pages), MaxRunPages)
		}
		for _, pn := range pages {
			if uint32(pn)&ZeroPageFlag != 0 {
				t.Fatalf("page %#x carries the elision flag", pn)
			}
		}
		reseg := EncodeFetchReq(spaceID, pages)
		if string(reseg) != string(seg) {
			t.Fatalf("round trip changed encoding:\n got %x\nwant %x", reseg, seg)
		}
	})
}
