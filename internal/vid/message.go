package vid

import "fmt"

// SegMax is the largest segment that may accompany a message. V transferred
// up to 32 Kbytes as a unit over the network (§3.1); larger payloads must be
// split by the application.
const SegMax = 32 * 1024

// Message is the fixed-format V interprocess message: a small fixed part
// (operation code, reply code, six data words — 32 bytes on the wire) plus
// an optional byte segment for bulk data. Requests and replies use the same
// format.
type Message struct {
	// Op is the operation being requested (an OpCode from the owning
	// protocol), or echoed in replies.
	Op uint16
	// Code is the reply/status code; zero means OK.
	Code uint16
	// W holds six 32-bit data words, interpreted per operation.
	W [6]uint32
	// Seg is the optional appended data segment (≤ SegMax bytes).
	Seg []byte
}

// Reply codes shared across all protocols.
const (
	CodeOK uint16 = iota
	// CodeNoProcess: the destination process does not exist.
	CodeNoProcess
	// CodeTimeout: the operation exceeded its retransmission allowance.
	CodeTimeout
	// CodeRefused: the server declined the request.
	CodeRefused
	// CodeBadRequest: malformed or unknown operation.
	CodeBadRequest
	// CodeNoMemory: insufficient memory to honor the request.
	CodeNoMemory
	// CodeNotFound: named object does not exist.
	CodeNotFound
	// CodeFrozen: operation arrived for a frozen logical host and was
	// deferred (internal; callers normally never see it).
	CodeFrozen
	// CodeAborted: the operation was torn down administratively.
	CodeAborted
	// CodeHostDown: the destination's station is suspected dead by the
	// per-host failure detector; the transaction was failed fast instead
	// of riding out the full retransmission allowance.
	CodeHostDown
	// CodeNotLeader: the destination is a replica of a consensus-backed
	// service but not its current leader; the reply's hint word (per
	// protocol) carries the leader's PID when known.
	CodeNotLeader
)

func codeName(c uint16) string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeNoProcess:
		return "no-process"
	case CodeTimeout:
		return "timeout"
	case CodeRefused:
		return "refused"
	case CodeBadRequest:
		return "bad-request"
	case CodeNoMemory:
		return "no-memory"
	case CodeNotFound:
		return "not-found"
	case CodeFrozen:
		return "frozen"
	case CodeAborted:
		return "aborted"
	case CodeHostDown:
		return "host-down"
	case CodeNotLeader:
		return "not-leader"
	default:
		return fmt.Sprintf("code%d", c)
	}
}

// OK reports whether the message carries a success code.
func (m Message) OK() bool { return m.Code == CodeOK }

// Err converts a non-OK reply code into an error, or nil.
func (m Message) Err() error {
	if m.Code == CodeOK {
		return nil
	}
	return CodeError(m.Code)
}

// CodeError is an error wrapping a V reply code.
type CodeError uint16

func (e CodeError) Error() string { return "v: " + codeName(uint16(e)) }

// ErrMsg builds an error reply with the given code.
func ErrMsg(code uint16) Message { return Message{Code: code} }

// PutString stores s into the segment (helper for name-bearing requests).
func (m *Message) PutString(s string) { m.Seg = []byte(s) }

// SegString returns the segment as a string.
func (m Message) SegString() string { return string(m.Seg) }

func (m Message) String() string {
	return fmt.Sprintf("msg{op=%d %s w=%v seg=%dB}", m.Op, codeName(m.Code), m.W, len(m.Seg))
}
