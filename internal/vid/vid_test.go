package vid

import (
	"testing"
	"testing/quick"
)

func TestPIDRoundTrip(t *testing.T) {
	p := NewPID(0x0102, 37)
	if p.LH() != 0x0102 || p.Index() != 37 {
		t.Fatalf("parts = %v/%d", p.LH(), p.Index())
	}
	if p.IsGroup() {
		t.Fatal("ordinary PID classified as group")
	}
}

func TestQuickPIDRoundTrip(t *testing.T) {
	f := func(lh uint16, idx uint16) bool {
		p := NewPID(LHID(lh), idx)
		return p.LH() == LHID(lh) && p.Index() == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupClassification(t *testing.T) {
	if !GroupProgramManagers.IsGroup() {
		t.Fatal("PM group not a group")
	}
	if !LHID(0x8001).IsGroup() {
		t.Fatal("high-bit LHID not group space")
	}
	if LHID(0x7FFF).IsGroup() {
		t.Fatal("ordinary LHID in group space")
	}
}

func TestWellKnownClassification(t *testing.T) {
	cases := []struct {
		pid  PID
		want bool
	}{
		{NewPID(5, IdxKernelServer), true},
		{NewPID(5, IdxProgramManager), true},
		{NewPID(5, IdxFirstProcess), false},
		{NewPID(5, 200), false},
		{NewPID(5, 0), false},
		{GroupProgramManagers, false},
	}
	for _, c := range cases {
		if got := c.pid.IsWellKnown(); got != c.want {
			t.Errorf("IsWellKnown(%v) = %v, want %v", c.pid, got, c.want)
		}
	}
}

func TestWellKnownGroupsDistinct(t *testing.T) {
	seen := map[PID]bool{}
	for _, g := range []PID{GroupProgramManagers, GroupFileServers, GroupNameServers} {
		if seen[g] {
			t.Fatal("duplicate well-known group id")
		}
		if !g.IsGroup() {
			t.Fatalf("%v not a group", g)
		}
		seen[g] = true
	}
}

func TestStrings(t *testing.T) {
	if Nil.String() != "pid:nil" {
		t.Fatal(Nil.String())
	}
	if NewPID(0x0A, 16).String() == "" || LHID(3).String() == "" {
		t.Fatal("empty strings")
	}
}

func TestMessageCodes(t *testing.T) {
	m := Message{Code: CodeOK}
	if !m.OK() || m.Err() != nil {
		t.Fatal("OK message misclassified")
	}
	e := ErrMsg(CodeNoMemory)
	if e.OK() || e.Err() == nil {
		t.Fatal("error message misclassified")
	}
	if CodeError(CodeTimeout).Error() != "v: timeout" {
		t.Fatal(CodeError(CodeTimeout).Error())
	}
	// Unknown codes format without panicking.
	if CodeError(999).Error() == "" {
		t.Fatal("empty unknown code")
	}
}

func TestMessageSegHelpers(t *testing.T) {
	var m Message
	m.PutString("hello")
	if m.SegString() != "hello" {
		t.Fatal(m.SegString())
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}
