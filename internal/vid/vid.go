// Package vid defines the V-System identifier types: structured process
// identifiers, logical-host identifiers, process-group identifiers, and the
// fixed-format interprocess message.
//
// As in the paper (§2.1), a process identifier is a (logical-host-id,
// local-index) pair. A process-group-id is identical in format to a
// process-id; group identifiers are distinguished by the high bit of the
// logical-host field. Well-known local indices name the host-specific
// servers (kernel server, program manager) of whatever physical host a
// logical host currently resides on, which is what makes those servers
// addressable in a location-independent way.
package vid

import "fmt"

// LHID identifies a logical host: a group of address spaces and processes
// that migrates as a unit. LHIDs with the high bit set form the group-id
// space and never name real logical hosts.
type LHID uint16

// GroupBit marks the group-id half of the LHID space.
const GroupBit LHID = 0x8000

// IsGroup reports whether the id lies in the group-id space.
func (l LHID) IsGroup() bool { return l&GroupBit != 0 }

// Real (non-group) LHIDs are allocated decentrally: the 15 usable bits
// split into a 10-bit station field (the allocating host's Ethernet
// address, so allocation needs no coordination) and a 5-bit per-host
// slot. The station field bounds cluster size at LHStationMax hosts; the
// slot field bounds LHs live on one host at LHSlotCount (slots recycle
// once a logical host is destroyed).
const (
	LHSlotBits   = 5
	LHSlotCount  = 1 << LHSlotBits
	LHStationMax = 1<<(15-LHSlotBits) - 1
)

// NewHostLH builds the LHID for a station's slot.
func NewHostLH(station, slot uint16) LHID {
	if station == 0 || station > LHStationMax {
		panic(fmt.Sprintf("vid: station %d outside the LHID station field", station))
	}
	return LHID(station<<LHSlotBits | slot&(LHSlotCount-1))
}

// Station returns the Ethernet address of the host that allocated the id
// (zero for group ids, which no station owns).
func (l LHID) Station() uint16 {
	if l.IsGroup() {
		return 0
	}
	return uint16(l) >> LHSlotBits
}

func (l LHID) String() string {
	if l.IsGroup() {
		return fmt.Sprintf("grp:%04x", uint16(l))
	}
	return fmt.Sprintf("lh:%04x", uint16(l))
}

// PID is a globally unique process identifier: LHID in the high 16 bits,
// local index in the low 16 bits.
type PID uint32

// Nil is the invalid PID.
const Nil PID = 0

// NewPID builds a PID from its parts.
func NewPID(lh LHID, index uint16) PID { return PID(uint32(lh)<<16 | uint32(index)) }

// LH returns the logical-host part.
func (p PID) LH() LHID { return LHID(p >> 16) }

// Index returns the local-index part.
func (p PID) Index() uint16 { return uint16(p) }

// IsGroup reports whether p is a process-group identifier.
func (p PID) IsGroup() bool { return p.LH().IsGroup() }

// IsWellKnown reports whether p names a host-specific server through a
// well-known local index (a "local group" in the paper's terms).
func (p PID) IsWellKnown() bool {
	return !p.IsGroup() && p.Index() >= IdxKernelServer && p.Index() < IdxFirstProcess
}

func (p PID) String() string {
	if p == Nil {
		return "pid:nil"
	}
	return fmt.Sprintf("%v.%d", p.LH(), p.Index())
}

// Well-known local indices. Index 0 is reserved/invalid. Indices below
// IdxFirstProcess address the host-specific servers of the physical host on
// which the logical host currently resides.
const (
	// IdxKernelServer addresses the kernel server of the hosting
	// workstation (low-level process and memory management, §2.1).
	IdxKernelServer uint16 = 1
	// IdxProgramManager addresses the program manager of the hosting
	// workstation.
	IdxProgramManager uint16 = 2
	// IdxFirstProcess is the first index assigned to ordinary processes.
	IdxFirstProcess uint16 = 16
)

// Well-known global process groups.
var (
	// GroupProgramManagers is the well-known group every program manager
	// belongs to; remote-execution host selection queries it (§2.1).
	GroupProgramManagers = NewPID(GroupBit|1, 1)
	// GroupFileServers is the group of network file servers.
	GroupFileServers = NewPID(GroupBit|2, 1)
	// GroupNameServers is the group answering symbolic-name queries.
	GroupNameServers = NewPID(GroupBit|3, 1)
	// GroupHomePMs is the client-facing group of the consensus-backed
	// home program-manager replicas; supervised-session traffic that
	// would target a single home PM targets this group instead, and only
	// the current leader answers.
	GroupHomePMs = NewPID(GroupBit|4, 1)
	// GroupHomeRSM carries the home PM group's replication traffic
	// (votes, appends, snapshots).
	GroupHomeRSM = NewPID(GroupBit|5, 1)
	// GroupFSRSM carries the replicated file server's replication
	// traffic.
	GroupFSRSM = NewPID(GroupBit|6, 1)
	// GroupNSRSM carries the replicated name server's replication
	// traffic.
	GroupNSRSM = NewPID(GroupBit|7, 1)
)
