// Package sched is the decentralized scheduling layer: pluggable host
// selection over a cached cluster-load view.
//
// The paper's scheduler is deliberately minimal: multicast a query to the
// program-manager group and take the first response, "since that is
// generally the least loaded host" (§2.1). That heuristic is one *policy*
// over a distributed load-query mechanism. This package separates the
// two: kernels export a compact load advertisement (piggybacked on reply
// traffic and, for load-aware policies, a periodic broadcast beacon);
// each workstation maintains a TTL'd cache of the advertisements it has
// seen; and a Policy chooses among candidates — the paper's
// first-response baseline, power-of-K-choices random sampling, or
// least-loaded. With a warm cache, selection needs no multicast at all:
// the selector directly probes its preferred candidate and falls back to
// the gathering multicast only when the cache cannot answer.
//
// The §4.2 observation that motivated the paper's simple policy — the
// first responder is usually the least loaded because the selection-probe
// evaluation itself is scheduled behind local work — stays reproducible:
// FirstResponse is the default policy and generates byte-identical
// traffic to the original implementation.
package sched

import (
	"errors"
	"fmt"

	"vsystem/internal/vid"
)

// Query flag bits, carried in the low half of W5 of a PmSelectHost
// request; the high half carries the reply-permille (0 = everyone
// answers). The zero value is the paper's original query: answer only if
// willing (idle and enough memory), stay silent otherwise.
const (
	// QueryUnicast marks a directed probe of one manager: the manager
	// answers CodeRefused instead of staying silent, so the prober can
	// negatively cache a refusal without waiting out a timeout.
	QueryUnicast uint32 = 1 << iota
	// QueryRelaxed asks the manager to answer with its load even when it
	// is not idle (the memory requirement still applies); load-aware
	// policies rank the answers instead of taking willingness as binary.
	QueryRelaxed
)

// ErrNoHost means selection exhausted its candidates and queries without
// finding a willing host.
var ErrNoHost = errors.New("sched: no host available")

// Load is one host's decoded load advertisement: the six words a kernel's
// LoadWords exports, a program manager's selection reply carries, and a
// KLoadAd beacon broadcasts.
type Load struct {
	SystemLH     vid.LHID // the host's system logical host (identity)
	MemFree      uint32   // bytes available for programs
	Ready        int      // program-priority scheduling requests (ready+running)
	Residents    int      // resident non-system logical hosts
	UtilPermille int      // CPU utilization, 0‰..1000‰
	PM           vid.PID  // the host's program manager (0: none, e.g. file server)
}

// LoadFromWords decodes an advertisement.
func LoadFromWords(w [6]uint32) Load {
	return Load{
		SystemLH:     vid.LHID(w[0]),
		MemFree:      w[1],
		Ready:        int(w[2]),
		Residents:    int(w[3]),
		UtilPermille: int(w[4]),
		PM:           vid.PID(w[5]),
	}
}

// Words encodes the advertisement.
func (l Load) Words() [6]uint32 {
	return [6]uint32{
		uint32(l.SystemLH), l.MemFree, uint32(l.Ready),
		uint32(l.Residents), uint32(l.UtilPermille), uint32(l.PM),
	}
}

// MAC returns the host's station address (the system logical-host id
// carries the allocating station in its station field).
func (l Load) MAC() uint16 { return l.SystemLH.Station() }

// Better is the canonical deterministic load ordering: fewer ready
// program-priority requests, then fewer resident programs, then more free
// memory, with the system logical-host id as the final tiebreak so equal
// loads order identically on every run.
func (l Load) Better(o Load) bool {
	if l.Ready != o.Ready {
		return l.Ready < o.Ready
	}
	if l.Residents != o.Residents {
		return l.Residents < o.Residents
	}
	if l.MemFree != o.MemFree {
		return l.MemFree > o.MemFree
	}
	return l.SystemLH < o.SystemLH
}

func (l Load) String() string {
	return fmt.Sprintf("%v ready=%d res=%d free=%dK util=%d‰",
		l.SystemLH, l.Ready, l.Residents, l.MemFree/1024, l.UtilPermille)
}
