package sched

import (
	"math/rand"
	"time"

	"vsystem/internal/ipc"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Sender is the transaction capability a Selector needs; *kernel.ProcCtx
// satisfies it (the sched package deliberately does not import the
// kernel — it sits beside it, like progmgr).
type Sender interface {
	Send(dst vid.PID, msg vid.Message) (vid.Message, error)
	SendGather(dst vid.PID, msg vid.Message, window time.Duration) ([]ipc.GatherReply, error)
	Now() sim.Time
}

// Stats counts a selector's activity.
type Stats struct {
	// Queries is the number of Select calls.
	Queries int64
	// WarmPicks is how many selections committed from the cache without
	// any multicast.
	WarmPicks int64
	// Multicasts is how many group queries went out (first-response sends
	// and gathering queries both count).
	Multicasts int64
	// Probes / ProbeFailures count directed willingness probes of cached
	// candidates.
	Probes, ProbeFailures int64
}

// Selector runs host selection for one workstation: a policy over the
// host's load-view cache, falling back to the multicast query protocol
// when the cache cannot answer.
type Selector struct {
	Policy Policy
	Cache  *Cache

	// ReplyPermille, when non-zero, is stamped into the high half of the
	// query's flag word: each manager hashes (MAC, TxID) against it and
	// only ~N×permille/1000 answer a multicast query. Large clusters set
	// it to keep the expected responder count near
	// params.SelectReplyTarget; zero means every willing host answers
	// (the paper's protocol, kept exact on small clusters).
	ReplyPermille uint32

	group vid.PID
	op    uint16
	host  uint16 // station MAC, for trace events
	bus   *trace.Bus
	rng   *rand.Rand

	stats Stats
}

// NewSelector builds a selector for the workstation with the given
// station MAC. group/op address the selection protocol (the
// program-manager group and its PmSelectHost operation — passed in so
// sched does not import progmgr). The rng must be dedicated to this
// selector and deterministically seeded.
func NewSelector(p Policy, cache *Cache, group vid.PID, op uint16, host uint16, bus *trace.Bus, rng *rand.Rand) *Selector {
	return &Selector{
		Policy: p, Cache: cache,
		group: group, op: op, host: host, bus: bus, rng: rng,
	}
}

// Stats snapshots the selector's counters.
func (s *Selector) Stats() Stats { return s.stats }

// Select picks an execution host with at least minMem free, never one of
// the excluded system logical hosts. Under a non-load-aware policy it is
// wire-compatible with the paper's protocol: up to two first-response
// multicasts. Under a load-aware policy it first consults the cache and
// directly probes the policy's choice (warm path, no multicast), then
// falls back to a gathering multicast that collects every answer within
// the window.
func (s *Selector) Select(tx Sender, minMem uint32, exclude ...vid.LHID) (Load, error) {
	s.stats.Queries++
	s.bus.Publish(trace.Event{
		At: tx.Now(), Host: s.host, Kind: trace.EvSelectQuery, Size: int(minMem / 1024),
	})

	var w [6]uint32
	w[0] = minMem
	ex := make(map[vid.LHID]bool, len(exclude))
	for i, lh := range exclude {
		if i < 4 {
			w[i+1] = uint32(lh)
		}
		ex[lh] = true
	}

	if !s.Policy.LoadAware() {
		return s.selectFirst(tx, w)
	}

	// Warm path: the cache proposes candidates; probe the policy's choice
	// directly. A refusal or silence negatively caches the candidate and
	// moves to the next; after two failed probes fall through to the
	// multicast rather than serially probing a cold cluster.
	cands := s.Cache.Candidates(minMem, ex)
	for _, c := range cands {
		s.candidate(tx, c, true)
	}
	for probes := 0; len(cands) > 0 && probes < 2; probes++ {
		pick := s.Policy.Pick(cands, s.rng)
		if l, ok := s.probe(tx, pick, w); ok {
			s.stats.WarmPicks++
			s.choose(tx, l, true)
			return l, nil
		}
		s.Cache.Negative(pick.SystemLH)
		cands = dropLH(cands, pick.SystemLH)
	}

	// Cold path: gather every answer within the window and let the
	// policy rank them. Relaxed — busy hosts answer with their load.
	wq := w
	wq[5] = QueryRelaxed | s.ReplyPermille<<16
	for attempt := 0; attempt < 2; attempt++ {
		s.stats.Multicasts++
		rs, err := tx.SendGather(s.group, vid.Message{Op: s.op, W: wq}, params.SelectGatherWindow)
		if err != nil {
			continue
		}
		var got []Load
		for _, r := range rs {
			if !r.Msg.OK() {
				continue
			}
			l := LoadFromWords(r.Msg.W)
			s.Cache.ObserveLoad(l)
			if ex[l.SystemLH] {
				continue
			}
			got = append(got, l)
			s.candidate(tx, l, false)
		}
		if len(got) > 0 {
			sortLoads(got)
			l := s.Policy.Pick(got, s.rng)
			s.choose(tx, l, false)
			return l, nil
		}
	}
	return Load{}, ErrNoHost
}

// selectFirst is the paper's protocol, kept call-for-call identical to
// the pre-sched implementation: two strict first-response multicasts.
// On large clusters the query carries the reply-permille so only a
// deterministic sample evaluates and answers.
func (s *Selector) selectFirst(tx Sender, w [6]uint32) (Load, error) {
	w[5] |= s.ReplyPermille << 16
	for attempt := 0; attempt < 2; attempt++ {
		s.stats.Multicasts++
		m, err := tx.Send(s.group, vid.Message{Op: s.op, W: w})
		if err == nil && m.OK() {
			l := LoadFromWords(m.W)
			s.Cache.ObserveLoad(l)
			s.candidate(tx, l, false)
			s.choose(tx, l, false)
			return l, nil
		}
	}
	return Load{}, ErrNoHost
}

// probe asks one cached candidate directly whether it will take the work.
// The probe is a bounded gather rather than a plain Send so that a dead
// or partitioned candidate costs one probe window, not a full
// retransmission abort.
func (s *Selector) probe(tx Sender, cand Load, w [6]uint32) (Load, bool) {
	if cand.PM == 0 {
		return Load{}, false
	}
	s.stats.Probes++
	wq := w
	wq[5] = QueryUnicast | QueryRelaxed
	rs, err := tx.SendGather(cand.PM, vid.Message{Op: s.op, W: wq}, params.SelectProbeWindow)
	if err != nil || len(rs) == 0 || !rs[0].Msg.OK() {
		s.stats.ProbeFailures++
		return Load{}, false
	}
	l := LoadFromWords(rs[0].Msg.W)
	s.Cache.ObserveLoad(l)
	return l, true
}

// choose commits the selection: a placement bump bridges the window until
// the chosen host's own advertisements reflect the new work.
func (s *Selector) choose(tx Sender, l Load, warm bool) {
	s.Cache.NotePlaced(l.SystemLH)
	s.bus.Publish(trace.Event{
		At: tx.Now(), Host: s.host, Kind: trace.EvSelectChoice,
		LH: l.SystemLH, Prio: boolInt(warm),
	})
}

func (s *Selector) candidate(tx Sender, l Load, warm bool) {
	s.bus.Publish(trace.Event{
		At: tx.Now(), Host: s.host, Kind: trace.EvSelectCandidate,
		LH: l.SystemLH, Size: l.Ready, Prio: boolInt(warm),
	})
}

// Metrics exposes the selector and cache counters as a trace source.
func (s *Selector) Metrics() []trace.Metric {
	cs := s.Cache.Stats()
	return []trace.Metric{
		{Name: "queries", Value: float64(s.stats.Queries)},
		{Name: "warm_picks", Value: float64(s.stats.WarmPicks)},
		{Name: "multicasts", Value: float64(s.stats.Multicasts)},
		{Name: "probes", Value: float64(s.stats.Probes)},
		{Name: "probe_failures", Value: float64(s.stats.ProbeFailures)},
		{Name: "cache_hits", Value: float64(cs.Hits)},
		{Name: "cache_misses", Value: float64(cs.Misses)},
		{Name: "neg_skips", Value: float64(cs.NegSkips)},
		{Name: "invalidations", Value: float64(cs.Invalidations)},
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func dropLH(ls []Load, lh vid.LHID) []Load {
	out := ls[:0]
	for _, l := range ls {
		if l.SystemLH != lh {
			out = append(out, l)
		}
	}
	return out
}

func sortLoads(ls []Load) {
	// Insertion sort: candidate sets are tiny and this keeps the package
	// free of a sort dependency in the hot path.
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].Better(ls[j-1]); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
