package sched

import (
	"math/rand"
	"testing"
	"time"

	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// ld builds a selectable advertisement for the host at the given station
// address (the system logical-host id carries the station in its station
// field, matching the kernel's layout).
func ld(mac uint16, ready int, memKB uint32) Load {
	lh := vid.NewHostLH(mac, 1)
	return Load{
		SystemLH: lh, MemFree: memKB * 1024, Ready: ready,
		PM: vid.NewPID(lh, 3),
	}
}

// testClock is a manually-advanced cache clock.
type testClock struct{ now sim.Time }

func (c *testClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *testClock) fn() func() sim.Time     { return func() sim.Time { return c.now } }

func TestLoadWordsRoundTrip(t *testing.T) {
	l := Load{SystemLH: vid.NewHostLH(3, 1), MemFree: 640 * 1024, Ready: 2,
		Residents: 1, UtilPermille: 750, PM: vid.NewPID(vid.NewHostLH(3, 1), 3)}
	if got := LoadFromWords(l.Words()); got != l {
		t.Fatalf("round trip: got %+v, want %+v", got, l)
	}
	if l.MAC() != 3 {
		t.Fatalf("MAC() = %d, want 3", l.MAC())
	}
}

func TestBetterOrdering(t *testing.T) {
	cases := []struct {
		name string
		a, b Load
	}{
		{"fewer ready wins", ld(1, 0, 512), ld(2, 1, 1024)},
		{"fewer residents breaks ready tie",
			Load{SystemLH: vid.NewHostLH(1, 1), Ready: 1, Residents: 0, PM: 1},
			Load{SystemLH: vid.NewHostLH(2, 1), Ready: 1, Residents: 2, PM: 1}},
		{"more memory breaks residents tie", ld(1, 1, 1024), ld(2, 1, 512)},
		{"lower id is the final tiebreak", ld(1, 1, 512), ld(2, 1, 512)},
	}
	for _, c := range cases {
		if !c.a.Better(c.b) || c.b.Better(c.a) {
			t.Errorf("%s: ordering not strict for %v vs %v", c.name, c.a, c.b)
		}
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := &testClock{}
	c := NewCache(clk.fn())
	c.ObserveLoad(ld(1, 0, 512))
	if got := c.Candidates(0, nil); len(got) != 1 {
		t.Fatalf("fresh entry not offered: %v", got)
	}
	clk.advance(params.SchedCacheTTL + time.Millisecond)
	if got := c.Candidates(0, nil); len(got) != 0 {
		t.Fatalf("stale entry offered after TTL: %v", got)
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not pruned, Len = %d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestCacheNegativeExpires(t *testing.T) {
	clk := &testClock{}
	c := NewCache(clk.fn())
	c.ObserveLoad(ld(1, 0, 512))
	c.ObserveLoad(ld(2, 0, 512))
	c.Negative(ld(1, 0, 512).SystemLH)
	got := c.Candidates(0, nil)
	if len(got) != 1 || got[0].MAC() != 2 {
		t.Fatalf("negative host still offered: %v", got)
	}
	if c.Stats().NegSkips != 1 {
		t.Fatalf("negSkips = %d, want 1", c.Stats().NegSkips)
	}
	// The positive entries age out with the negative one; re-observe after
	// the negative TTL — the host must be selectable again.
	clk.advance(params.SchedNegTTL + time.Millisecond)
	c.ObserveLoad(ld(1, 0, 512))
	c.ObserveLoad(ld(2, 0, 512))
	if got := c.Candidates(0, nil); len(got) != 2 {
		t.Fatalf("negative entry did not expire: %v", got)
	}
}

func TestCachePlacementBumps(t *testing.T) {
	clk := &testClock{}
	c := NewCache(clk.fn())
	a, b := ld(1, 0, 512), ld(2, 0, 512)
	c.ObserveLoad(a)
	c.ObserveLoad(b)
	// Two placements on host 1 inflate its apparent ready depth, so host 2
	// sorts first even though both advertised idle.
	c.NotePlaced(a.SystemLH)
	c.NotePlaced(a.SystemLH)
	got := c.Candidates(0, nil)
	if len(got) != 2 || got[0].MAC() != 2 || got[1].Ready != 2 {
		t.Fatalf("bumps not folded into ordering: %v", got)
	}
	clk.advance(params.SchedPlacementHold + time.Millisecond)
	if got := c.Candidates(0, nil); got[0].MAC() != 1 || got[0].Ready != 0 {
		t.Fatalf("placement bumps did not expire: %v", got)
	}
}

func TestCacheFiltersMemAndExcluded(t *testing.T) {
	clk := &testClock{}
	c := NewCache(clk.fn())
	small, big, home := ld(1, 0, 128), ld(2, 0, 1024), ld(3, 0, 1024)
	for _, l := range []Load{small, big, home} {
		c.ObserveLoad(l)
	}
	got := c.Candidates(256*1024, map[vid.LHID]bool{home.SystemLH: true})
	if len(got) != 1 || got[0].MAC() != 2 {
		t.Fatalf("mem/exclude filter: %v", got)
	}
}

func TestCacheIgnoresUnselectableAds(t *testing.T) {
	c := NewCache((&testClock{}).fn())
	c.Observe([6]uint32{})                // no identity
	c.Observe([6]uint32{0x0401, 1 << 20}) // no program manager (file server)
	if c.Len() != 0 {
		t.Fatalf("unselectable advertisements cached, Len = %d", c.Len())
	}
}

func TestCacheDropHostAndFlush(t *testing.T) {
	clk := &testClock{}
	c := NewCache(clk.fn())
	a, b := ld(1, 0, 512), ld(2, 0, 512)
	c.ObserveLoad(a)
	c.ObserveLoad(b)
	c.DropHost(1)
	got := c.Candidates(0, nil)
	if len(got) != 1 || got[0].MAC() != 2 {
		t.Fatalf("crashed host still offered: %v", got)
	}
	// The crashed host is negatively cached: a stale re-observation (e.g.
	// an in-flight advertisement) must not resurrect it immediately.
	c.ObserveLoad(a)
	if got := c.Candidates(0, nil); len(got) != 1 {
		t.Fatalf("dropped host resurrected by stale ad: %v", got)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Flush left %d entries", c.Len())
	}
	if inv := c.Stats().Invalidations; inv != 3 {
		t.Fatalf("invalidations = %d, want 3 (1 drop + 2 flushed)", inv)
	}
}

func TestFirstResponsePolicy(t *testing.T) {
	p := FirstResponse{}
	if p.LoadAware() {
		t.Fatal("first-response must not be load-aware (it is the paper baseline)")
	}
	cands := []Load{ld(3, 5, 128), ld(1, 0, 1024)}
	if got := p.Pick(cands, nil); got.MAC() != 3 {
		t.Fatalf("first-response picked %v, want the first (fastest) responder", got)
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	p := LeastLoaded{}
	cands := []Load{ld(3, 5, 128), ld(2, 1, 512), ld(1, 0, 1024)}
	if got := p.Pick(cands, nil); got.MAC() != 1 {
		t.Fatalf("least-loaded picked %v, want the idle host", got)
	}
}

func TestRandomKPolicyDeterministicAndBounded(t *testing.T) {
	p := RandomK{K: 2}
	cands := []Load{ld(1, 3, 512), ld(2, 1, 512), ld(3, 0, 512), ld(4, 2, 512)}
	in := map[uint16]bool{1: true, 2: true, 3: true, 4: true}
	for seed := int64(1); seed <= 5; seed++ {
		a := p.Pick(cands, rand.New(rand.NewSource(seed)))
		b := p.Pick(cands, rand.New(rand.NewSource(seed)))
		if a != b {
			t.Fatalf("seed %d: picks differ (%v vs %v)", seed, a, b)
		}
		if !in[a.MAC()] {
			t.Fatalf("seed %d: pick %v not among candidates", seed, a)
		}
	}
	// K larger than the candidate set degrades to best-of-all.
	if got := (RandomK{K: 10}).Pick(cands, rand.New(rand.NewSource(1))); got.MAC() != 3 {
		t.Fatalf("random-K over full set picked %v, want the best host", got)
	}
}

func TestPolicyByName(t *testing.T) {
	if _, ok := PolicyByName("").(FirstResponse); !ok {
		t.Error("empty name must default to first-response")
	}
	if _, ok := PolicyByName("first").(FirstResponse); !ok {
		t.Error(`"first" did not map to FirstResponse`)
	}
	if p, ok := PolicyByName("random").(RandomK); !ok || p.K != params.SelectRandomK {
		t.Errorf(`"random" = %#v, want RandomK{K: %d}`, PolicyByName("random"), params.SelectRandomK)
	}
	if _, ok := PolicyByName("least").(LeastLoaded); !ok {
		t.Error(`"least" did not map to LeastLoaded`)
	}
	if PolicyByName("bogus") != nil {
		t.Error("unknown policy name must return nil")
	}
}
