package sched

import (
	"sort"
	"time"

	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// Cache is a workstation's view of cluster load: every advertisement the
// host has seen (piggybacked on replies, broadcast by beacons, or carried
// in selection replies), aged by a TTL. It also keeps a negative cache of
// hosts that recently refused or failed a probe, and short-lived
// placement bumps that inflate a chosen host's apparent load until its
// own advertisements catch up (otherwise several quick placements would
// all pick the same momentarily least-loaded host).
//
// The cache is driven entirely from the simulation goroutine, so it needs
// no locking and its iteration results are made deterministic by sorting.
type Cache struct {
	now  func() sim.Time
	ents map[vid.LHID]cacheEnt
	neg  map[vid.LHID]sim.Time   // expiry of the negative entry
	bump map[vid.LHID][]sim.Time // expiries of active placement bumps

	ttl, negTTL, hold time.Duration

	// CacheStats counters (monotonic).
	hits, misses, negSkips, invalidations int64
}

type cacheEnt struct {
	load Load
	at   sim.Time
}

// NewCache builds an empty cache reading virtual time from now.
func NewCache(now func() sim.Time) *Cache {
	return &Cache{
		now:    now,
		ents:   make(map[vid.LHID]cacheEnt),
		neg:    make(map[vid.LHID]sim.Time),
		bump:   make(map[vid.LHID][]sim.Time),
		ttl:    params.SchedCacheTTL,
		negTTL: params.SchedNegTTL,
		hold:   params.SchedPlacementHold,
	}
}

// Observe ingests a raw advertisement. Advertisements that carry no
// program manager (file servers) or no identity are ignored — they can
// never be selected.
func (c *Cache) Observe(w [6]uint32) { c.ObserveLoad(LoadFromWords(w)) }

// ObserveLoad ingests a decoded advertisement, replacing any older entry
// for the same host.
func (c *Cache) ObserveLoad(l Load) {
	if l.SystemLH == 0 || l.PM == 0 {
		return
	}
	c.ents[l.SystemLH] = cacheEnt{load: l, at: c.now()}
}

// Negative records that the host refused (or failed to answer) a probe;
// warm-cache selection skips it until the entry expires.
func (c *Cache) Negative(lh vid.LHID) {
	c.neg[lh] = c.now().Add(c.negTTL)
}

// NotePlaced records that work was just placed on the host, inflating its
// apparent ready depth by one for the placement-hold window.
func (c *Cache) NotePlaced(lh vid.LHID) {
	c.bump[lh] = append(c.activeBumpsAt(lh), c.now().Add(c.hold))
}

func (c *Cache) activeBumpsAt(lh vid.LHID) []sim.Time {
	now := c.now()
	var live []sim.Time
	for _, exp := range c.bump[lh] {
		if exp > now {
			live = append(live, exp)
		}
	}
	return live
}

// bumps returns the number of active placement bumps for the host.
func (c *Cache) bumps(lh vid.LHID) int { return len(c.activeBumpsAt(lh)) }

// negative reports whether the host is negatively cached right now.
func (c *Cache) negative(lh vid.LHID) bool {
	exp, ok := c.neg[lh]
	if !ok {
		return false
	}
	if exp <= c.now() {
		delete(c.neg, lh)
		return false
	}
	return true
}

// Candidates returns the fresh, non-negative, memory-sufficient cached
// hosts (minus the excluded set), each with its placement bumps folded
// into Ready, sorted by Better. The hit/miss counters track whether the
// cache could answer at all.
func (c *Cache) Candidates(minMem uint32, exclude map[vid.LHID]bool) []Load {
	now := c.now()
	var out []Load
	for lh, e := range c.ents {
		if now.Sub(e.at) > c.ttl {
			delete(c.ents, lh)
			continue
		}
		if exclude[lh] {
			continue
		}
		if c.negative(lh) {
			c.negSkips++
			continue
		}
		if e.load.MemFree < minMem {
			continue
		}
		l := e.load
		l.Ready += c.bumps(lh)
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Better(out[j]) })
	if len(out) > 0 {
		c.hits++
	} else {
		c.misses++
	}
	return out
}

// DropHost removes every cached entry belonging to the station and
// negatively caches its system logical hosts — the reaction to a host
// crash event (the host may return under a fresh identity; until its new
// advertisements arrive it must not be selected from stale state).
func (c *Cache) DropHost(mac uint16) {
	for lh := range c.ents {
		if lh.Station() == mac {
			delete(c.ents, lh)
			c.Negative(lh)
			c.invalidations++
		}
	}
}

// Flush discards all positive entries (partition/heal events: any cached
// view may be stale on either side of the cut).
func (c *Cache) Flush() {
	n := len(c.ents)
	c.ents = make(map[vid.LHID]cacheEnt)
	c.bump = make(map[vid.LHID][]sim.Time)
	c.invalidations += int64(n)
}

// Len returns the number of cached advertisements (including stale ones
// not yet aged out by a Candidates sweep).
func (c *Cache) Len() int { return len(c.ents) }

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	Hits, Misses, NegSkips, Invalidations int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		NegSkips: c.negSkips, Invalidations: c.invalidations,
	}
}

// Entry is one cached advertisement, aged, for inspection (the vcluster
// `hosts` command).
type Entry struct {
	Load  Load
	Age   time.Duration
	Bumps int
	Neg   bool // currently negatively cached
}

// Entries returns the cache contents sorted by system logical host.
func (c *Cache) Entries() []Entry {
	now := c.now()
	out := make([]Entry, 0, len(c.ents))
	for lh, e := range c.ents {
		out = append(out, Entry{
			Load:  e.load,
			Age:   now.Sub(e.at),
			Bumps: c.bumps(lh),
			Neg:   c.negative(lh),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Load.SystemLH < out[j].Load.SystemLH
	})
	return out
}
