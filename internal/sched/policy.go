package sched

import (
	"math/rand"

	"vsystem/internal/params"
)

// Policy chooses an execution host among candidates. Implementations must
// be deterministic given the candidate order and the rng stream.
type Policy interface {
	// Name identifies the policy in reports and command-line flags.
	Name() string
	// LoadAware reports whether the policy ranks candidates by advertised
	// load — enabling the cache/beacon/gather machinery — rather than
	// taking the first responder to a multicast.
	LoadAware() bool
	// Pick chooses among the candidates (never called with an empty
	// slice). Candidates arrive sorted by Better.
	Pick(cands []Load, rng *rand.Rand) Load
}

// FirstResponse is the paper's baseline (§2.1): multicast the query and
// take the first willing responder. It is not load-aware — no beacons, no
// gathering window, no cache consultation — so a cluster running it
// generates byte-identical traffic to the original implementation.
type FirstResponse struct{}

// Name implements Policy.
func (FirstResponse) Name() string { return "first" }

// LoadAware implements Policy.
func (FirstResponse) LoadAware() bool { return false }

// Pick implements Policy; with first-response the mechanism already chose
// (candidates only materialize on the gather path, where the best-sorted
// first entry is the natural stand-in for "first responder").
func (FirstResponse) Pick(cands []Load, _ *rand.Rand) Load { return cands[0] }

// RandomK is power-of-K-choices: sample K distinct candidates uniformly
// at random and take the least loaded of the sample. It trades a little
// placement quality for resistance to herd behavior when many
// workstations select simultaneously from similar cached views.
type RandomK struct {
	K int
}

// Name implements Policy.
func (p RandomK) Name() string { return "random" }

// LoadAware implements Policy.
func (RandomK) LoadAware() bool { return true }

// Pick implements Policy.
func (p RandomK) Pick(cands []Load, rng *rand.Rand) Load {
	k := p.K
	if k < 1 {
		k = 1
	}
	if k > len(cands) {
		k = len(cands)
	}
	best := -1
	for _, i := range rng.Perm(len(cands))[:k] {
		if best < 0 || cands[i].Better(cands[best]) {
			best = i
		}
	}
	return cands[best]
}

// LeastLoaded always takes the best candidate under the canonical load
// ordering (fewest ready program-priority requests first).
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least" }

// LoadAware implements Policy.
func (LeastLoaded) LoadAware() bool { return true }

// Pick implements Policy.
func (LeastLoaded) Pick(cands []Load, _ *rand.Rand) Load {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Better(best) {
			best = c
		}
	}
	return best
}

// PolicyByName maps a command-line name to a policy (nil if unknown):
// "first", "random", "least".
func PolicyByName(name string) Policy {
	switch name {
	case "first", "":
		return FirstResponse{}
	case "random":
		return RandomK{K: params.SelectRandomK}
	case "least":
		return LeastLoaded{}
	}
	return nil
}
