package image

import (
	"reflect"
	"testing"
	"testing/quick"

	"vsystem/internal/vid"
)

func TestImageRoundTrip(t *testing.T) {
	im := &Image{
		Name:      "cc68",
		Kind:      "vvm",
		Code:      []byte{1, 2, 3, 4},
		Data:      []byte("initialized"),
		SpaceSize: 256 * 1024,
	}
	got, err := Decode(im.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, im) {
		t.Fatalf("got %+v", got)
	}
}

func TestImagePadGrowsFileOnly(t *testing.T) {
	small := &Image{Name: "p", Kind: "vvm", Code: []byte{1}}
	big := &Image{Name: "p", Kind: "vvm", Code: []byte{1}, Pad: 100 * 1024}
	if big.Size() < small.Size()+100*1024 {
		t.Fatalf("pad ignored: %d vs %d", big.Size(), small.Size())
	}
	got, err := Decode(big.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "p" || len(got.Code) != 1 {
		t.Fatal("padded image decoded wrong")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not an image")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil decoded")
	}
}

func TestEnvBlockRoundTrip(t *testing.T) {
	e := &EnvBlock{
		Stdout:     vid.NewPID(3, 18),
		FileServer: vid.NewPID(9, 16),
		Args:       []string{"cc68", "-O", "main.c"},
		HeapBase:   0x9000,
	}
	got, err := DecodeEnv(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("got %+v, want %+v", got, e)
	}
}

func TestEnvBlockNoArgs(t *testing.T) {
	e := &EnvBlock{Stdout: vid.NewPID(1, 16)}
	got, err := DecodeEnv(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Args) != 0 || got.Stdout != e.Stdout {
		t.Fatalf("got %+v", got)
	}
}

func TestEnvBlockBadMagic(t *testing.T) {
	b := (&EnvBlock{}).Encode()
	b[0] ^= 0xFF
	if _, err := DecodeEnv(b); err == nil {
		t.Fatal("bad magic decoded")
	}
	if _, err := DecodeEnv([]byte{1, 2}); err == nil {
		t.Fatal("short block decoded")
	}
}

func TestQuickEnvArgsRoundTrip(t *testing.T) {
	f := func(stdout, fs uint32, heap uint32, rawArgs [][]byte) bool {
		var args []string
		for _, a := range rawArgs {
			// NULs are the arg separator; strip them from inputs.
			s := ""
			for _, b := range a {
				if b != 0 {
					s += string(rune(b))
				}
			}
			args = append(args, s)
		}
		e := &EnvBlock{
			Stdout:     vid.PID(stdout),
			FileServer: vid.PID(fs),
			HeapBase:   heap,
			Args:       args,
		}
		got, err := DecodeEnv(e.Encode())
		if err != nil {
			return false
		}
		if len(got.Args) != len(args) {
			return false
		}
		for i := range args {
			if got.Args[i] != args[i] {
				return false
			}
		}
		return got.Stdout == e.Stdout && got.HeapBase == heap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
