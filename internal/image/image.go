// Package image defines program image files — what the network file
// server stores and the program manager loads into a fresh address space —
// and the environment block the program manager writes into page 0 of a
// new program space (arguments, default I/O, global-server name cache;
// §2.1).
package image

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"

	"vsystem/internal/vid"
)

// Image is a loadable program.
type Image struct {
	// Name is the program's file name ("cc68", "tex").
	Name string
	// Kind selects the body implementation ("vvm" or a workload kind).
	Kind string
	// Code is loaded at the load base (vvm.CodeBase for VVM programs).
	// For workload bodies it carries the workload's parameter blob.
	Code []byte
	// Data is initialized data, loaded immediately after Code.
	Data []byte
	// SpaceSize is the address-space size the program needs.
	SpaceSize uint32
	// Pad grows the stored file (and thus load time) without changing
	// behaviour; used to model realistically sized binaries.
	Pad uint32
}

// Size returns the stored file size in bytes.
func (im *Image) Size() int { return len(im.Encode()) }

// Encode serializes the image for storage on the file server.
func (im *Image) Encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(im); err != nil {
		panic("image: encode: " + err.Error())
	}
	b := buf.Bytes()
	if im.Pad > 0 {
		b = append(b, make([]byte, im.Pad)...)
	}
	return b
}

// Decode parses a stored image. Trailing padding is ignored by gob's
// stream decoder.
func Decode(b []byte) (*Image, error) {
	var im Image
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&im); err != nil {
		return nil, fmt.Errorf("image: decode: %w", err)
	}
	return &im, nil
}

// EnvBlock is the execution environment the program manager initializes a
// program with (§2.1: arguments, default I/O, environment variables,
// "including a name cache for commonly used global names"). The binary
// layout (word offsets in page 0) is shared with the VVM:
//
//	0x00 magic
//	0x04 stdout server PID (display server of the user's home workstation)
//	0x08 file server PID
//	0x0C argc
//	0x10 offset of NUL-separated argv bytes
//	0x14 heap base (first free address after code+data)
//	0x18 name-cache entry count
//	0x1C name-cache offset (entries: PID word, then NUL-terminated name)
//
// Because the cache lives in the program's address space it migrates with
// the program — the §6 discipline that avoids residual lookup state on the
// previous host.
type EnvBlock struct {
	Stdout     vid.PID
	FileServer vid.PID
	Args       []string
	HeapBase   uint32
	NameCache  map[string]vid.PID
}

// EnvMagic identifies an initialized environment block.
const EnvMagic = 0x56454E56

// Encode lays the environment block out in its binary page-0 format.
func (e *EnvBlock) Encode() []byte {
	var argv bytes.Buffer
	for _, a := range e.Args {
		argv.WriteString(a)
		argv.WriteByte(0)
	}
	var cache bytes.Buffer
	names := make([]string, 0, len(e.NameCache))
	for n := range e.NameCache {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], uint32(e.NameCache[n]))
		cache.Write(w[:])
		cache.WriteString(n)
		cache.WriteByte(0)
	}
	const hdr = 0x20
	out := make([]byte, hdr+argv.Len()+cache.Len())
	put := func(off int, v uint32) { binary.LittleEndian.PutUint32(out[off:], v) }
	put(0x00, EnvMagic)
	put(0x04, uint32(e.Stdout))
	put(0x08, uint32(e.FileServer))
	put(0x0C, uint32(len(e.Args)))
	put(0x10, hdr)
	put(0x14, e.HeapBase)
	put(0x18, uint32(len(names)))
	put(0x1C, uint32(hdr+argv.Len()))
	copy(out[hdr:], argv.Bytes())
	copy(out[hdr+argv.Len():], cache.Bytes())
	return out
}

// DecodeEnv parses an environment block (for tools and tests).
func DecodeEnv(b []byte) (*EnvBlock, error) {
	if len(b) < 0x20 {
		return nil, fmt.Errorf("image: short env block")
	}
	get := func(off int) uint32 { return binary.LittleEndian.Uint32(b[off:]) }
	if get(0) != EnvMagic {
		return nil, fmt.Errorf("image: bad env magic")
	}
	e := &EnvBlock{
		Stdout:     vid.PID(get(0x04)),
		FileServer: vid.PID(get(0x08)),
		HeapBase:   get(0x14),
	}
	argc := int(get(0x0C))
	off := int(get(0x10))
	for i := 0; i < argc && off < len(b); i++ {
		end := bytes.IndexByte(b[off:], 0)
		if end < 0 {
			break
		}
		e.Args = append(e.Args, string(b[off:off+end]))
		off += end + 1
	}
	if n := int(get(0x18)); n > 0 {
		e.NameCache = make(map[string]vid.PID, n)
		off := int(get(0x1C))
		for i := 0; i < n && off+4 < len(b); i++ {
			pid := vid.PID(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			end := bytes.IndexByte(b[off:], 0)
			if end < 0 {
				break
			}
			e.NameCache[string(b[off:off+end])] = pid
			off += end + 1
		}
	}
	return e, nil
}
