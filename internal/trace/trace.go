// Package trace is the cluster-wide observability layer of the simulated
// V-System: a deterministic, allocation-light event bus plus a metrics
// registry that every substrate layer publishes into.
//
// The paper's headline results — millisecond freeze times, ≈3 s/Mbyte copy
// rates, "usually 2 pre-copy iterations were useful" (§3.1.2, §4.1) — are
// observability claims, so the reproduction carries a first-class trace
// subsystem rather than ad-hoc hooks:
//
//   - ethernet publishes frame transmissions and in-transit losses;
//   - ipc publishes packet send/receive/local-delivery, corrupt-frame
//     drops, retransmissions (timer-driven, binding-prompted, and
//     NACK-repair), reply-pending deferrals, locate broadcasts, and
//     new-binding broadcasts (§3.1.3, §3.1.4);
//   - kernel publishes freeze/unfreeze transitions and scheduler
//     dispatches;
//   - core publishes migration *phase spans*: host selection, each
//     pre-copy round with its dirty Kbytes, the freeze window, the frozen
//     residue copy, the kernel-state + LHID swap, and the rebinding
//     unfreeze (§3.1.2).
//
// One Bus exists per cluster. Publishing is cheap when nobody listens: a
// nil *Bus is a valid no-op target, and a live Bus without subscribers
// only bumps a per-kind counter. Subscribers run synchronously in
// subscription order on the simulation goroutine, so traces are exactly
// reproducible for a fixed seed.
package trace

import (
	"fmt"
	"time"

	"vsystem/internal/packet"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// Kind classifies an instantaneous event.
type Kind uint8

const (
	// EvFrameTx: ethernet put a frame on the wire.
	EvFrameTx Kind = iota
	// EvFrameDrop: the loss model discarded a frame in transit.
	EvFrameDrop
	// EvPktTx: ipc transmitted a packet.
	EvPktTx
	// EvPktRx: ipc received and decoded a packet.
	EvPktRx
	// EvPktLocal: ipc delivered a packet intra-host.
	EvPktLocal
	// EvPktDrop: ipc dropped a corrupt frame before decoding.
	EvPktDrop
	// EvPktRetx: ipc retransmitted (timer tick, binding prompt, or
	// fragment-NACK repair).
	EvPktRetx
	// EvReplyPending: ipc answered a deferred request with reply-pending
	// (busy or frozen destination, §3.1.3).
	EvReplyPending
	// EvLocate: ipc broadcast a locate request for an unknown binding.
	EvLocate
	// EvRebind: ipc broadcast a new logical-host binding (§3.1.4).
	EvRebind
	// EvFreeze: kernel froze a logical host.
	EvFreeze
	// EvUnfreeze: kernel unfroze a logical host.
	EvUnfreeze
	// EvDispatch: the CPU scheduler granted a slice.
	EvDispatch
	// EvFrameCut: a network partition suppressed delivery of a frame to
	// one receiver (the frame still occupied the medium).
	EvFrameCut
	// EvFrameCorrupt: the corruption model mangled a frame in transit;
	// the receiver will count it as an RxCorrupt drop.
	EvFrameCorrupt
	// EvHostCrash: a workstation powered off (all logical hosts died).
	EvHostCrash
	// EvHostRestart: a crashed workstation rebooted with a fresh system
	// logical host and re-announced itself.
	EvHostRestart
	// EvPartition: the fault injector split the segment into two sets
	// that can no longer exchange frames.
	EvPartition
	// EvHeal: the fault injector removed all active partitions.
	EvHeal
	// EvMigFault: the fault injector killed a migration participant at an
	// armed phase (Prio carries the phase, Size the pre-copy round).
	EvMigFault
	// EvBindHit: the IPC binding cache resolved a logical host (§3.1.4).
	EvBindHit
	// EvBindMiss: the binding cache had no entry; a locate follows.
	EvBindMiss
	// EvBindInvalidate: a binding was discarded (retransmission overrun or
	// an explicit rebind).
	EvBindInvalidate
	// EvSelectQuery: the scheduling layer started a host-selection query
	// (Size carries the memory requirement in KB).
	EvSelectQuery
	// EvSelectCandidate: selection considered one candidate host (LH its
	// system logical host, Size its ready-queue depth, Prio 1 if it came
	// from the warm cache rather than a fresh multicast response).
	EvSelectCandidate
	// EvSelectChoice: selection committed to a host (LH the chosen system
	// logical host, Prio 1 if chosen warm — without a multicast).
	EvSelectChoice
	// EvHostSuspect: the failure detector on Host started suspecting the
	// station Peer after SuspectAfterRetries unanswered retransmissions
	// (Size carries the detection latency — silence since last evidence of
	// life — in microseconds).
	EvHostSuspect
	// EvHostClear: evidence of life (any packet from Peer) cleared a
	// standing suspicion on Host.
	EvHostClear
	// EvLeaseExpire: a supervised exec-session's lease with its hosting
	// manager expired or was refused; the session is broken (LH the
	// session's current logical host, Peer the hosting station).
	EvLeaseExpire
	// EvExecRestart: a broken session was re-executed from its file-server
	// image on a new host (LH the new logical host, Peer the new hosting
	// station, Prio the incarnation number).
	EvExecRestart
	// EvCopyWindow: the bulk-transfer engine issued a pipelined copy
	// transaction (Host the issuing station, Size the number of
	// transactions in flight after the issue — the window occupancy, Peer
	// the destination). The per-engine Stats.WindowSends counter must
	// always equal the count of these events; tests hold the two to parity.
	EvCopyWindow
	// EvRemoteFault: a demand fault on a migrated program's address space
	// parked the faulting process and fetched the page remotely — from the
	// post-copy source receptacle or, for a flush migration, the file
	// server (Host the faulting station, LH the program's logical host,
	// Size the page number). The per-program PagerStats.Faults counters
	// must in aggregate equal the count of these events; tests hold the
	// two to parity.
	EvRemoteFault
	// EvElect: a replica of a consensus-backed service won an election
	// and became leader (LH the replica group's id, Prio the term, Size
	// the replica id). Each replica's rsm Stats.Elections counter must
	// equal the count of these events it published; tests hold the two to
	// parity.
	EvElect
	// EvCommit: a replica's commit index advanced (LH the replica group's
	// id, Size the number of newly committed entries, Prio the term).
	// Published by every replica — leaders on majority match, followers on
	// learning the leader's commit index — so the cluster-wide count is
	// the sum of per-replica Stats.Commits; parity-tested.
	EvCommit
	// EvFailover: a newly elected leader displaced a previously known,
	// different leader — a real failover rather than the boot election
	// (LH the replica group's id, Prio the term, Size the new leader's
	// replica id, Peer the old leader's replica id). Parity-tested
	// against Stats.Failovers.
	EvFailover

	numKinds
)

var kindNames = [numKinds]string{
	"frame-tx", "frame-drop", "tx", "rx", "local", "drop", "retx",
	"reply-pending", "locate", "rebind", "freeze", "unfreeze", "dispatch",
	"frame-cut", "frame-corrupt", "host-crash", "host-restart",
	"partition", "heal", "mig-fault", "bind-hit", "bind-miss",
	"bind-invalidate", "select-query", "select-candidate", "select-choice",
	"host-suspect", "host-clear", "lease-expire", "exec-restart",
	"copy-window", "remote-fault", "elect", "commit", "failover",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one instantaneous occurrence published by a layer. Packet
// events carry the decoded packet; frame events only its size (ethernet
// sits below the packet layer); kernel events carry the logical host.
type Event struct {
	At   sim.Time
	Host uint16 // station MAC of the publishing host (0: none)
	Kind Kind
	Pkt  *packet.Packet // packet events; nil otherwise
	LH   vid.LHID       // freeze/unfreeze/locate/rebind events
	Prio int            // EvDispatch: priority level granted
	Size int            // frame payload bytes (frame events)
	Peer uint16         // destination MAC (frame events)
}

// Phase labels one migration phase span (§3.1.2).
type Phase uint8

const (
	// PhaseSelect: locating a willing host and initializing the new
	// copy's descriptors.
	PhaseSelect Phase = iota
	// PhasePrecopy: one pre-copy round (Round, KB filled in).
	PhasePrecopy
	// PhaseFreeze: the freeze window — Freeze until the unfreeze of the
	// new copy is acknowledged. It encloses residue, swap and rebind.
	PhaseFreeze
	// PhaseResidue: copying the frozen dirty residue.
	PhaseResidue
	// PhaseSwap: kernel/program-manager state copy and the LHID change.
	PhaseSwap
	// PhaseRebind: unfreezing the new copy and broadcasting the binding.
	PhaseRebind
	// PhasePostSwapPull: the post-copy residue window — from the commit of
	// the identity swap until the source receptacle has pushed out (or the
	// destination has pulled) every remaining page. The guest runs
	// throughout; only individual faulting references stall.
	PhasePostSwapPull

	numPhases
)

var phaseNames = [numPhases]string{
	"select", "precopy", "freeze", "residue", "swap", "rebind",
	"postswap-pull",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Span is one completed migration phase.
type Span struct {
	LH    vid.LHID
	Phase Phase
	Round int     // pre-copy round number (0-based); 0 otherwise
	KB    float64 // Kbytes moved during the span, where known
	Start sim.Time
	End   sim.Time
}

// Dur returns the span's length in virtual time.
func (s Span) Dur() time.Duration { return s.End.Sub(s.Start) }

func (s Span) String() string {
	return fmt.Sprintf("%v %v[%d] %.1fKB %v→%v (%v)",
		s.LH, s.Phase, s.Round, s.KB, s.Start, s.End, s.Dur())
}

// Metric is one named sample gathered from a registered source.
type Metric struct {
	Scope string
	Name  string
	Value float64
}

type source struct {
	scope string
	fn    func() []Metric
}

// Bus is the cluster's event bus and metrics registry. The zero value is
// ready to use; a nil *Bus is a valid no-op publish target, so layers can
// publish unconditionally whether or not tracing is wired up.
type Bus struct {
	subs     []func(Event)
	spanSubs []func(Span)
	spans    []Span
	counts   [numKinds]int64
	sources  []source
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe adds an event listener, invoked synchronously for every
// published event in subscription order.
func (b *Bus) Subscribe(fn func(Event)) { b.subs = append(b.subs, fn) }

// SubscribeSpans adds a span listener.
func (b *Bus) SubscribeSpans(fn func(Span)) { b.spanSubs = append(b.spanSubs, fn) }

// Publish delivers an event to all subscribers and bumps its kind
// counter. Publishing to a nil bus is a no-op.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.counts[ev.Kind]++
	for _, fn := range b.subs {
		fn(ev)
	}
}

// PublishSpan records a completed migration phase span and notifies span
// subscribers. Publishing to a nil bus is a no-op.
func (b *Bus) PublishSpan(s Span) {
	if b == nil {
		return
	}
	b.spans = append(b.spans, s)
	for _, fn := range b.spanSubs {
		fn(s)
	}
}

// Count reports how many events of the kind have been published.
func (b *Bus) Count(k Kind) int64 {
	if b == nil {
		return 0
	}
	return b.counts[k]
}

// Spans returns a copy of every span published so far, in publication
// order (spans are published at phase end, so ordered by End time).
func (b *Bus) Spans() []Span {
	if b == nil {
		return nil
	}
	out := make([]Span, len(b.spans))
	copy(out, b.spans)
	return out
}

// SpansFor returns the published spans of one logical host.
func (b *Bus) SpansFor(lh vid.LHID) []Span {
	var out []Span
	if b == nil {
		return nil
	}
	for _, s := range b.spans {
		if s.LH == lh {
			out = append(out, s)
		}
	}
	return out
}

// RegisterSource adds a named metrics source. The function must return a
// fresh snapshot on every call — sources are how layers expose their
// Stats counters without handing out live struct fields.
func (b *Bus) RegisterSource(scope string, fn func() []Metric) {
	b.sources = append(b.sources, source{scope: scope, fn: fn})
}

// Gather snapshots every registered source, in registration order.
func (b *Bus) Gather() []Metric {
	if b == nil {
		return nil
	}
	var out []Metric
	for _, s := range b.sources {
		for _, m := range s.fn() {
			if m.Scope == "" {
				m.Scope = s.scope
			}
			out = append(out, m)
		}
	}
	return out
}
