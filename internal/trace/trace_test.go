package trace

import (
	"testing"
	"time"

	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

func TestNilBusIsANoOpTarget(t *testing.T) {
	var b *Bus
	b.Publish(Event{Kind: EvPktTx}) // must not panic
	b.PublishSpan(Span{Phase: PhaseFreeze})
	if b.Count(EvPktTx) != 0 {
		t.Fatal("nil bus counted an event")
	}
	if b.Spans() != nil || b.SpansFor(1) != nil || b.Gather() != nil {
		t.Fatal("nil bus returned non-nil data")
	}
}

func TestCountsAndSubscribersInOrder(t *testing.T) {
	b := NewBus()
	var order []int
	b.Subscribe(func(Event) { order = append(order, 1) })
	b.Subscribe(func(Event) { order = append(order, 2) })
	b.Publish(Event{Kind: EvPktTx})
	b.Publish(Event{Kind: EvPktTx})
	b.Publish(Event{Kind: EvFreeze})
	if b.Count(EvPktTx) != 2 || b.Count(EvFreeze) != 1 || b.Count(EvPktRx) != 0 {
		t.Fatalf("counts: tx=%d freeze=%d rx=%d", b.Count(EvPktTx), b.Count(EvFreeze), b.Count(EvPktRx))
	}
	want := []int{1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("subscribers ran out of order: %v", order)
		}
	}
}

func TestSpansAreCopiedAndFilterable(t *testing.T) {
	b := NewBus()
	var notified []Span
	b.SubscribeSpans(func(s Span) { notified = append(notified, s) })
	s1 := Span{LH: vid.LHID(5), Phase: PhasePrecopy, Round: 1, KB: 64, End: sim.Time(int64(time.Millisecond))}
	s2 := Span{LH: vid.LHID(6), Phase: PhaseFreeze}
	b.PublishSpan(s1)
	b.PublishSpan(s2)
	got := b.Spans()
	if len(got) != 2 || len(notified) != 2 {
		t.Fatalf("spans=%d notified=%d", len(got), len(notified))
	}
	got[0].KB = 999 // mutating the copy must not affect the bus
	if b.Spans()[0].KB != 64 {
		t.Fatal("Spans() returned a reference into the bus")
	}
	only5 := b.SpansFor(vid.LHID(5))
	if len(only5) != 1 || only5[0].Phase != PhasePrecopy {
		t.Fatalf("SpansFor(5) = %v", only5)
	}
	if d := s1.Dur(); d != time.Millisecond {
		t.Fatalf("Dur = %v", d)
	}
}

func TestGatherSnapshotsSourcesInOrder(t *testing.T) {
	b := NewBus()
	n := 0.0
	b.RegisterSource("a", func() []Metric { return []Metric{{Name: "x", Value: n}} })
	b.RegisterSource("b", func() []Metric {
		return []Metric{{Scope: "override", Name: "y", Value: 1}}
	})
	n = 7
	ms := b.Gather()
	if len(ms) != 2 {
		t.Fatalf("gathered %d metrics", len(ms))
	}
	if ms[0].Scope != "a" || ms[0].Name != "x" || ms[0].Value != 7 {
		t.Fatalf("metric 0 = %+v (must be a fresh snapshot)", ms[0])
	}
	if ms[1].Scope != "override" {
		t.Fatalf("metric 1 scope = %q, explicit scope must win", ms[1].Scope)
	}
}

func TestKindAndPhaseNames(t *testing.T) {
	if EvPktTx.String() != "tx" || EvFrameDrop.String() != "frame-drop" || EvRebind.String() != "rebind" {
		t.Fatal("kind names drifted")
	}
	if PhasePrecopy.String() != "precopy" || PhaseFreeze.String() != "freeze" {
		t.Fatal("phase names drifted")
	}
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	for p := Phase(0); p < numPhases; p++ {
		if p.String() == "" {
			t.Fatalf("phase %d has no name", p)
		}
	}
}
