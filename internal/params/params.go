// Package params centralizes every calibration constant of the simulated
// substrate. Each constant is annotated with the paper measurement it is
// calibrated against (Theimer, Lantz, Cheriton, SOSP '85, §4), so the
// experiment harness can cite the provenance of its expectations.
//
// The hardware being modeled is the paper's: SUN workstations with a 10 MHz
// 68010 (~1 MIPS) and 2 MB of memory on a 10 Mbit/s Ethernet.
package params

import "time"

// ---------------------------------------------------------------- hardware

const (
	// PageSize is the memory page granularity; dirty bits are kept per
	// page. 1 KB matches the granularity of the paper's Kbyte figures.
	PageSize = 1024

	// WorkstationMemory is the per-workstation physical memory (2 MB).
	WorkstationMemory = 2 * 1024 * 1024

	// InstrTime is the virtual cost of one VVM instruction: a 10 MHz
	// 68010 delivers roughly 1 MIPS.
	InstrTime = 1 * time.Microsecond

	// CPUQuantum is the scheduling quantum of the per-workstation CPU.
	// Preemption decisions are made at quantum boundaries.
	CPUQuantum = 1 * time.Millisecond
)

// CPU priorities, highest first. The pre-copy operation runs at PrioSystem:
// "executed at a higher priority than all other programs on the originating
// host" (§3.1.2); locally invoked programs outrank guests: "priority
// scheduling for locally invoked programs" (§2).
const (
	PrioKernel = iota // kernel server, network processing
	PrioSystem        // program manager, migration pre-copy, servers
	PrioLocal         // programs invoked by the workstation's owner
	PrioGuest         // remotely executed programs
	NumPrios
)

// ---------------------------------------------------------------- ethernet

const (
	// EthernetBitsPerSec is the raw medium rate (10 Mbit/s).
	EthernetBitsPerSec = 10_000_000

	// FrameOverheadBytes is preamble(8) + MAC header(14) + CRC(4) +
	// inter-frame gap(12).
	FrameOverheadBytes = 38

	// FrameMTU is the largest frame payload (Ethernet payload limit).
	FrameMTU = 1500
)

// ------------------------------------------------------- protocol CPU costs
//
// The 68010 could not keep a 10 Mbit Ethernet busy; measured V transfer
// rates are dominated by per-packet software cost. These constants are
// calibrated so that:
//
//   - inter-host address-space copy ≈ 3 s per Mbyte (§3.1, §4.1):
//     per 1 KB page ≈ BulkSendCPU + wire(1062 B ≈ 0.85 ms) ≈ 3.0 ms;
//   - program loading ≈ 330 ms per 100 KB (§4.1): the bulk path plus
//     FileServerBlockCPU per block ≈ 3.3 ms/KB;
//   - a remote Send-Receive-Reply round trip lands in the low
//     milliseconds, as measured for V on this hardware.
const (
	// SmallPktSendCPU is kernel CPU to emit a small (non-fragmented)
	// packet.
	SmallPktSendCPU = 700 * time.Microsecond

	// SmallPktRecvCPU is kernel CPU to accept and dispatch a small packet.
	SmallPktRecvCPU = 700 * time.Microsecond

	// LoadAdRecvCPU is kernel CPU to consume a load-advertisement beacon:
	// a fixed-format datagram folded into the load cache at interrupt
	// level — no reply, no reassembly, no process delivery. Charging the
	// full SmallPktRecvCPU here makes the 1 Hz beacon a 35% CPU tax on
	// every kernel of a 500-host cluster (N beacons/s × 700 µs); the
	// fast path keeps cluster-wide dissemination affordable.
	LoadAdRecvCPU = 100 * time.Microsecond

	// BulkSendCPU is kernel CPU per full-size (1 KB payload) data frame.
	BulkSendCPU = 2150 * time.Microsecond

	// BulkRecvCPU is kernel CPU per received full-size data frame.
	BulkRecvCPU = 600 * time.Microsecond

	// LocalDeliverCPU is the cost of an intra-host message delivery.
	LocalDeliverCPU = 300 * time.Microsecond

	// LocalCopyPerKB is the additional intra-host cost per Kbyte of
	// message segment (a memory-to-memory copy on a ~1 MIPS machine).
	LocalCopyPerKB = 100 * time.Microsecond

	// FileServerBlockCPU is extra file-server CPU per 1 KB block read or
	// written (buffer-cache lookup, disk scheduling).
	FileServerBlockCPU = 300 * time.Microsecond
)

// --------------------------------------------------------- retransmission

const (
	// RetransmitInterval is the gap between retransmissions of an
	// unanswered request.
	RetransmitInterval = 200 * time.Millisecond

	// LocateAfterRetries: after this many unanswered retransmissions the
	// logical-host cache entry is invalidated and the reference is
	// broadcast (§3.1.4 "small number of retransmissions").
	LocateAfterRetries = 3

	// AbortAfterRetries: a transaction with no evidence of life (no
	// reply-pending packets) for this many retransmissions aborts.
	AbortAfterRetries = 25

	// GroupAbortAfterRetries bounds group sends, which legitimately may
	// have no responder.
	GroupAbortAfterRetries = 3

	// ReplyCacheTTL is how long a replier retains the last reply for
	// retransmission to a duplicate request.
	ReplyCacheTTL = 4 * time.Second

	// FragReassemblyTTL bounds how long a partially reassembled
	// multi-frame packet is retained.
	FragReassemblyTTL = 2 * time.Second
)

// ------------------------------------------------------ measured-cost knobs
//
// Each of these reproduces a specific measured figure from §4.1/§4.2.

const (
	// KernelOpCPU: base cost of a kernel-server operation (dispatch,
	// validation, table updates).
	KernelOpCPU = 1 * time.Millisecond

	// SelectProbeCPU: program-manager CPU to evaluate a host-selection
	// query (load/memory check plus scheduling delay). Calibrated so the
	// first response to a multicast selection request arrives in ≈23 ms.
	SelectProbeCPU = 19 * time.Millisecond

	// EnvSetupCPU: program-manager + kernel-server CPU to create a new
	// execution environment (address space, initial process, argument
	// and environment initialization). Paired with EnvDestroyCPU it is
	// calibrated to the paper's 40 ms setup+destroy figure.
	EnvSetupCPU = 22 * time.Millisecond

	// EnvDestroyCPU: CPU to tear an execution environment down.
	EnvDestroyCPU = 12 * time.Millisecond

	// KernelStateBaseCPU: fixed cost of copying a logical host's kernel
	// server + program manager state ("14 milliseconds plus ...").
	KernelStateBaseCPU = 11 * time.Millisecond

	// KernelStatePerItemCPU: "... an additional 9 milliseconds for each
	// process and address space".
	KernelStatePerItemCPU = 8 * time.Millisecond

	// FrozenCheckCPU: "13 microseconds is added to several kernel
	// operations to test whether a process is frozen" (§4.1). Charged on
	// every freeze-gated kernel operation when migration support is
	// enabled.
	FrozenCheckCPU = 13 * time.Microsecond

	// GroupIndirectCPU: "the overhead of identifying the team servers and
	// kernel servers by local group identifiers adds about 100
	// microseconds to every kernel server or team server operation".
	GroupIndirectCPU = 100 * time.Microsecond
)

// ------------------------------------------------------------- migration

// The pre-copy stopping policy is the paper's key design choice (§3.1.2).
// These are variables (not constants) so the ablation experiments can
// sweep them; production code treats them as configuration.
var (
	// PrecopyMaxRounds bounds pre-copy iterations: an initial full copy
	// plus up to two passes over modified pages. The paper found "usually
	// 2 pre-copy iterations were useful"; further passes shave little off
	// the residue but delay the migration.
	PrecopyMaxRounds = 3

	// PrecopyStopKB: stop iterating when the dirty residue is at most
	// this many Kbytes (further rounds cannot shrink it usefully).
	PrecopyStopKB = 16.0

	// PrecopyMinShrink: stop iterating when a round fails to shrink the
	// dirty set to at most this fraction of the previous round.
	PrecopyMinShrink = 0.7

	// CopyWindow is how many KsWritePages transactions the bulk-transfer
	// engine keeps in flight during address-space copies (and the flush
	// policy's page-out). 1 degenerates to the paper's stop-and-wait copy
	// loop; ~4 is enough to hide the reply-latency gap between runs and
	// keep the destination kernel server busy. Swept by E10.
	CopyWindow = 4

	// HybridSampleInterval is how long the hybrid policy tracks dirty bits
	// (while the program runs) to identify the hot working set it
	// pre-copies before the identity swap. Long enough for a hot loop to
	// touch its whole set at Table 4-1 rates, short compared to a full
	// pre-copy round.
	HybridSampleInterval = 400 * time.Millisecond

	// FetchRunPages is how many pages a post-copy destination pulls per
	// KsFetchPage request: the faulted page plus read-ahead, and the batch
	// size of the background pull. Max kernel.MaxRunPages (the reply must
	// encode as one page run).
	FetchRunPages = 8

	// ResidueDrainTimeout bounds how long a post-copy source waits for the
	// last deferred pages to become resident at the destination before
	// declaring the residue lost. Orders of magnitude above a healthy
	// drain (milliseconds); it only fires when the destination stops
	// making progress entirely.
	ResidueDrainTimeout = 30 * time.Second
)

// SelectTimeout is how long a host-selection query waits for its first
// response before retrying.
const SelectTimeout = 500 * time.Millisecond

// ----------------------------------------------------------- host selection
//
// The decentralized scheduling layer (internal/sched) keeps a TTL'd cache
// of per-host load advertisements so that warm-cache selection can skip
// the multicast query entirely.

const (
	// SchedCacheTTL is how long a cached load advertisement is considered
	// fresh enough to select on. Advertisements refresh continuously from
	// reply traffic and the periodic beacon.
	SchedCacheTTL = 2 * time.Second

	// SchedNegTTL is how long a host that refused (or failed to answer) a
	// direct probe stays negatively cached and is skipped by warm-cache
	// selection.
	SchedNegTTL = 2 * time.Second

	// SchedPlacementHold is how long the selector inflates a chosen host's
	// cached ready-queue depth after placing work there, bridging the gap
	// until the new program shows up in that host's own advertisements
	// (avoids the herd effect of several quick placements all picking the
	// same momentarily least-loaded host).
	SchedPlacementHold = 1 * time.Second

	// LoadBeaconInterval is the period of the broadcast load-advertisement
	// beacon. Beacons run only when a load-aware selection policy is
	// configured; the paper-baseline first-response policy generates no
	// extra traffic.
	LoadBeaconInterval = 1 * time.Second

	// SelectGatherWindow is how long a gathering selection query collects
	// multicast responses before choosing (every idle manager answers in
	// ≈23 ms; the window adds slack for queueing and reply serialization).
	SelectGatherWindow = 80 * time.Millisecond

	// SelectProbeWindow bounds a direct (unicast) willingness probe of a
	// cached candidate; silence past the window negatively caches the
	// candidate instead of riding out a full send abort.
	SelectProbeWindow = 150 * time.Millisecond

	// SelectRandomK is the default sample size of the RandomK policy
	// (power-of-K-choices: probe K random candidates, take the least
	// loaded of them).
	SelectRandomK = 2

	// BindingCacheCap bounds the per-host logical-host→station binding
	// cache (§3.1.4); beyond it the least recently used binding is evicted
	// and must be re-located on next use. Clusters raise the per-engine
	// capacity to their machine count (ipc.Engine.SetBindingCacheCap):
	// a server host needs a live reply-path binding per client, or a
	// full-cluster burst turns every evicted binding into a locate
	// broadcast that the retransmitting herd regenerates faster than it
	// resolves.
	BindingCacheCap = 64

	// SelectDallyPerHost scales the multicast select-response dally window
	// with cluster size: hosts answering a multicast query delay their
	// reply by a deterministic slot in [0, hosts × SelectDallyPerHost),
	// spreading the reply implosion that otherwise jams the shared segment
	// when hundreds of probes finish simultaneously. Unicast probes are
	// never dallied.
	SelectDallyPerHost = 100 * time.Microsecond

	// SelectDallyMax caps the dally window so the slowest slot (plus the
	// ≈19 ms probe evaluation) still lands inside SelectGatherWindow.
	SelectDallyMax = 60 * time.Millisecond

	// SelectDallyMinHosts is the cluster size below which replies are not
	// dallied: small clusters cannot implode, and the paper's measured
	// selection times (≈23 ms on a handful of machines) stay exact.
	SelectDallyMinHosts = 64

	// SelectReplyTarget is the expected number of responders to a
	// multicast select query on a large cluster. The query carries a
	// reply-permille; each manager hashes (MAC, TxID) against it and most
	// stay silent — without thinning, a 500-host cluster answers every
	// placement with ~500 replies the submitter's kernel must digest at
	// SmallPktRecvCPU each, and every host pays the ~19 ms probe
	// evaluation. Thinned-out hosts drop the query before evaluating.
	// Gated by SelectDallyMinHosts like the dally; unicast probes are
	// never thinned.
	SelectReplyTarget = 32
)

// --------------------------------------------------------- fault tolerance

const (
	// MigrateMaxAttempts bounds how many destinations a migration tries
	// before giving up (the paper's implementation "simply gives up" after
	// the first failure, §3.1.3; retrying to an alternate host preserves
	// its safety property — the original is unfrozen between attempts).
	MigrateMaxAttempts = 3

	// MigrateRetryBackoff is the delay before retrying a failed migration
	// to an alternate host, doubled per attempt.
	MigrateRetryBackoff = 500 * time.Millisecond

	// OrphanAdoptDelay: after an incoming migration receptacle assumes its
	// final identity (the LHID swap), the destination waits this long for
	// the source's unfreeze/assume messages before it starts *probing* the
	// source. Adoption is never taken on this delay alone — the destination
	// unfreezes the copy only when the source positively reports the
	// original gone, or after OrphanProbeAttempts consecutive unanswered
	// probes (each a full send abort, ~5 s), so a source that is merely
	// slow or briefly unreachable cannot race it into split-brain. Much
	// longer than the normal swap→unfreeze gap (milliseconds).
	OrphanAdoptDelay = 1 * time.Second

	// OrphanProbeAttempts: consecutive unanswered liveness probes of the
	// source (each one riding out a full send abort, AbortAfterRetries ×
	// RetransmitInterval ≈ 5 s) after which the destination presumes the
	// source dead and adopts the orphaned copy. Two attempts give ≈10 s of
	// continuous silence — comfortably longer than the source's own send
	// abort, so a live source always gets to resolve the hand-over first.
	// A partition that outlasts this window can still yield two live
	// copies; that residual ambiguity is inherent to fail-stop detection
	// by timeout.
	OrphanProbeAttempts = 2

	// OrphanSilence is the continuous probe-silence window orphan adoption
	// waits out before presuming the source dead. Historically this was
	// OrphanProbeAttempts full send aborts; with the failure detector
	// failing probes fast (CodeHostDown after SuspectAfterRetries ticks)
	// the window is enforced by the clock instead of by counting aborts,
	// preserving the ≈10 s split-brain guard.
	OrphanSilence = OrphanProbeAttempts * AbortAfterRetries * RetransmitInterval

	// SuspectAfterRetries: after this many consecutive unanswered
	// retransmissions of any single transaction to a station, the failure
	// detector suspects the whole station and fails every in-flight
	// transaction to it with CodeHostDown (detection ≈ 1 s versus the ~5 s
	// individual send abort). Reply-pending packets and any other traffic
	// from the station reset the evidence.
	SuspectAfterRetries = 5

	// LeaseInterval is the heartbeat period of the exec-session lease the
	// originating program manager exchanges with the hosting program
	// manager for every supervised remote job.
	LeaseInterval = 1 * time.Second

	// ExecMaxRestarts bounds how many times a supervised session is
	// re-executed from its file-server image after its hosting workstation
	// is lost.
	ExecMaxRestarts = 2

	// ExecRestartBackoff is the delay before a failed recovery attempt is
	// retried, doubled per accumulated restart.
	ExecRestartBackoff = 500 * time.Millisecond

	// WaitMaxMoves caps how many CodeMoved redirects (or transport-error
	// retargets to the home manager) a single Wait follows before giving
	// up, so a buggy or split-brain manager pair cannot bounce a waiter
	// forever.
	WaitMaxMoves = 8

	// ReceptacleTTL is the *inactivity* bound on an incoming migration
	// receptacle that never assumed its final identity: if no state writes
	// (page runs, kernel state) arrive for this long, the source is
	// presumed dead mid-copy and the frozen placeholder is destroyed so it
	// cannot pin memory forever. A slow but live transfer keeps re-arming
	// the reaper with every arriving page run.
	ReceptacleTTL = 30 * time.Second
)

// ------------------------------------------------------------- replication
//
// The replicated-state-machine layer (internal/rsm) that backs the home
// program-manager group and the replicated file/name servers. Timeouts are
// sized against the ipc substrate: a heartbeat is a unicast transaction
// that survives one 200 ms retransmission under loss, so the election
// timeout must exceed a couple of worst-case heartbeat gaps or 5 % frame
// loss triggers spurious elections.

const (
	// RsmReplicas is the default replica-set size of a consensus-backed
	// home service (PM group, file server, name server).
	RsmReplicas = 3

	// RsmHeartbeatInterval is the leader's empty-append period per
	// follower; it doubles as the replication workers' retry pacing.
	RsmHeartbeatInterval = 150 * time.Millisecond

	// RsmElectionTimeoutMin is the minimum leader-silence window before a
	// replica campaigns. Several heartbeat periods plus retransmission
	// slack, so one lost heartbeat frame never forces an election.
	RsmElectionTimeoutMin = 800 * time.Millisecond

	// RsmElectionTimeoutSpread is the width of the randomized addition to
	// the election timeout. The draw is a deterministic hash of (station,
	// term), so timeouts stagger differently every term — the classic
	// split-vote breaker — while staying seed-reproducible.
	RsmElectionTimeoutSpread = 400 * time.Millisecond

	// RsmGatherWindow bounds the multicast vote (and rejoin-hello) gather:
	// long enough to catch one retransmission of the request, short
	// against the election timeout.
	RsmGatherWindow = 250 * time.Millisecond

	// RsmBatchEntries caps the log entries carried by one append; larger
	// backlogs switch the replication worker to the windowed catch-up
	// pipeline.
	RsmBatchEntries = 16

	// RsmBatchBytes caps the command bytes in one append batch so the
	// encoded request stays within a single message segment.
	RsmBatchBytes = 24 * 1024

	// RsmSnapshotEntries is the applied-log length that triggers
	// compaction into a state-machine snapshot.
	RsmSnapshotEntries = 64

	// RsmSnapChunkBytes is the payload size of one snapshot catch-up
	// chunk (must stay well under vid.SegMax with its header).
	RsmSnapChunkBytes = 16 * 1024

	// RsmMaxCmd bounds one replicated command so an append carrying it
	// plus framing still fits a single message segment.
	RsmMaxCmd = 24 * 1024

	// RsmSubmitTimeout bounds how long a Submit waits for its entry to
	// commit. A leader cut off from the majority (a stale minority
	// leader) hits this instead of blocking forever — the fence that
	// keeps it from acting on uncommitted intents.
	RsmSubmitTimeout = 3 * time.Second

	// RsmSyncWindow is how recently a follower must have heard from the
	// leader (and be applied up to the leader's commit index) to answer
	// reads; beyond it the follower stays silent and reads fall to the
	// leader.
	RsmSyncWindow = 3 * RsmHeartbeatInterval

	// RsmStickyLeader is how recently a replica must have heard from a
	// live leader to deny pre-vote probes. It is deliberately shorter than
	// RsmElectionTimeoutMin by two heartbeats: a follower whose own
	// election deadline just fired has necessarily gone at least
	// (timeout - one peer-skew heartbeat) without leader contact, so its
	// first pre-vote round is granted, while a healthy leader heartbeating
	// every RsmHeartbeatInterval keeps every follower inside the window
	// and disruptors fenced out.
	RsmStickyLeader = RsmElectionTimeoutMin - 2*RsmHeartbeatInterval

	// RsmFailoverBudget is the asserted bound on leader failover: crash →
	// election timeout (min+spread) → pre-vote gather → vote gather →
	// barrier commit, plus queueing slack. The F3 experiment holds every
	// observed failover under this.
	RsmFailoverBudget = RsmElectionTimeoutMin + RsmElectionTimeoutSpread +
		3*RsmGatherWindow + 550*time.Millisecond
)

// WireTime returns the transmission time of a frame with n payload bytes on
// the shared Ethernet.
func WireTime(n int) time.Duration {
	bits := (n + FrameOverheadBytes) * 8
	return time.Duration(float64(bits) / EthernetBitsPerSec * float64(time.Second))
}
