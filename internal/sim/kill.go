package sim

// IsKill reports whether a recovered panic value is the task-kill signal.
// Wrappers that install their own deferred recovery around task code must
// re-panic kill signals so the task unwinds normally.
func IsKill(r any) bool {
	_, ok := r.(killSignal)
	return ok
}
