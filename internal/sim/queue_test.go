package sim

import (
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	var q Queue[int]
	var got []int
	e.Spawn("consumer", func(tk *Task) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(tk))
		}
	})
	e.After(time.Millisecond, func() {
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	e := NewEngine(1)
	var q Queue[string]
	var at Time
	e.Spawn("consumer", func(tk *Task) {
		q.Pop(tk)
		at = tk.Now()
	})
	e.After(7*time.Millisecond, func() { q.Push("x") })
	e.Run()
	if at != Time(7*time.Millisecond) {
		t.Fatalf("popped at %v", at)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	e := NewEngine(1)
	var q Queue[int]
	okCount := 0
	e.Spawn("consumer", func(tk *Task) {
		if _, ok := q.PopTimeout(tk, 5*time.Millisecond); ok {
			t.Error("pop on empty queue succeeded")
		}
		// Now an item arrives within the deadline.
		if v, ok := q.PopTimeout(tk, 50*time.Millisecond); ok && v == 9 {
			okCount++
		}
	})
	e.After(10*time.Millisecond, func() { q.Push(9) })
	e.Run()
	if okCount != 1 {
		t.Fatal("second pop did not get the item")
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := NewEngine(1)
	var q Queue[int]
	sum := 0
	for i := 0; i < 3; i++ {
		e.Spawn("c", func(tk *Task) {
			sum += q.Pop(tk)
		})
	}
	e.After(time.Millisecond, func() {
		for i := 1; i <= 3; i++ {
			q.Push(i)
		}
	})
	e.Run()
	if sum != 6 {
		t.Fatalf("sum = %d", sum)
	}
	if e.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d", e.LiveTasks())
	}
}

// TestQueuePopTimeoutSameInstantPush pins the deadline re-check: a push
// and a consumer's timeout land on the same instant, with the push event
// sequenced first. The push wakes the longest waiter (a plain Pop), whose
// wake is delivered as a deferred event — so when the timed consumer's
// deadline timer fires in between, the queue is non-empty and the timed
// consumer must take the item rather than report a timeout.
func TestQueuePopTimeoutSameInstantPush(t *testing.T) {
	e := NewEngine(1)
	var q Queue[int]
	// Registered before the consumers spawn, so at the shared instant this
	// event's sequence number sorts ahead of the deadline timer's.
	e.After(10*time.Millisecond, func() { q.Push(42) })
	aWoke := false
	e.Spawn("a", func(tk *Task) {
		q.Pop(tk)
		aWoke = true
	})
	var v int
	var ok bool
	e.Spawn("b", func(tk *Task) {
		v, ok = q.PopTimeout(tk, 10*time.Millisecond)
	})
	e.Run()
	if !ok || v != 42 {
		t.Fatalf("timed pop = (%d, %v), want the same-instant item (42, true)", v, ok)
	}
	if aWoke {
		t.Fatal("plain Pop consumed the item that the timed consumer took")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after delivery", q.Len())
	}
	if e.LiveTasks() != 1 {
		t.Fatalf("LiveTasks = %d, want 1 (the plain Pop stays blocked)", e.LiveTasks())
	}
}

// TestQueueClearWithBlockedConsumers checks Clear's contract: blocked
// consumers stay blocked, and a consumer already woken for an item that
// Clear discarded re-checks emptiness and goes back to sleep instead of
// popping from the emptied queue.
func TestQueueClearWithBlockedConsumers(t *testing.T) {
	e := NewEngine(1)
	var q Queue[int]
	var got []int
	e.Spawn("consumer", func(tk *Task) {
		got = append(got, q.Pop(tk))
	})
	// Push and Clear at the same instant: the wake is already scheduled
	// when Clear empties the queue.
	e.After(5*time.Millisecond, func() { q.Push(1); q.Clear() })
	e.After(10*time.Millisecond, func() { q.Push(2) })
	e.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want only the post-Clear item [2]", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if e.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d", e.LiveTasks())
	}
}
