package sim

import (
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	var q Queue[int]
	var got []int
	e.Spawn("consumer", func(tk *Task) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(tk))
		}
	})
	e.After(time.Millisecond, func() {
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	e := NewEngine(1)
	var q Queue[string]
	var at Time
	e.Spawn("consumer", func(tk *Task) {
		q.Pop(tk)
		at = tk.Now()
	})
	e.After(7*time.Millisecond, func() { q.Push("x") })
	e.Run()
	if at != Time(7*time.Millisecond) {
		t.Fatalf("popped at %v", at)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	e := NewEngine(1)
	var q Queue[int]
	okCount := 0
	e.Spawn("consumer", func(tk *Task) {
		if _, ok := q.PopTimeout(tk, 5*time.Millisecond); ok {
			t.Error("pop on empty queue succeeded")
		}
		// Now an item arrives within the deadline.
		if v, ok := q.PopTimeout(tk, 50*time.Millisecond); ok && v == 9 {
			okCount++
		}
	})
	e.After(10*time.Millisecond, func() { q.Push(9) })
	e.Run()
	if okCount != 1 {
		t.Fatal("second pop did not get the item")
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := NewEngine(1)
	var q Queue[int]
	sum := 0
	for i := 0; i < 3; i++ {
		e.Spawn("c", func(tk *Task) {
			sum += q.Pop(tk)
		})
	}
	e.After(time.Millisecond, func() {
		for i := 1; i <= 3; i++ {
			q.Push(i)
		}
	})
	e.Run()
	if sum != 6 {
		t.Fatalf("sum = %d", sum)
	}
	if e.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d", e.LiveTasks())
	}
}
