package sim

import (
	"testing"
	"time"
)

func TestTaskSleep(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Spawn("sleeper", func(tk *Task) {
		tk.Sleep(7 * time.Millisecond)
		woke = tk.Now()
	})
	e.Run()
	if woke != Time(7*time.Millisecond) {
		t.Fatalf("woke at %v, want 7ms", woke)
	}
	if e.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d, want 0", e.LiveTasks())
	}
}

func TestTasksInterleaveDeterministically(t *testing.T) {
	e := NewEngine(1)
	var got []string
	mk := func(name string, period time.Duration) {
		e.Spawn(name, func(tk *Task) {
			for i := 0; i < 3; i++ {
				tk.Sleep(period)
				got = append(got, name)
			}
		})
	}
	mk("a", 2*time.Millisecond)
	mk("b", 3*time.Millisecond)
	e.Run()
	// a wakes at 2,4,6ms; b wakes at 3,6,9ms. At the 6ms tie, b's wake was
	// scheduled first (at 3ms vs 4ms), so FIFO puts b ahead of a.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestWaitQWakeOne(t *testing.T) {
	e := NewEngine(1)
	var q WaitQ
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(tk *Task) {
			if r := q.Wait(tk); r != WakeSignal {
				t.Errorf("reason = %v, want signal", r)
			}
			order = append(order, i)
		})
	}
	e.After(time.Millisecond, func() {
		if q.Len() != 3 {
			t.Errorf("Len = %d, want 3", q.Len())
		}
		q.WakeOne()
		q.WakeAll()
	})
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order = %v, want FIFO", order)
	}
}

func TestWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	var q WaitQ
	var reason WakeReason
	var at Time
	e.Spawn("w", func(tk *Task) {
		reason = q.WaitTimeout(tk, 5*time.Millisecond)
		at = tk.Now()
	})
	e.Run()
	if reason != WakeTimeout {
		t.Fatalf("reason = %v, want timeout", reason)
	}
	if at != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", at)
	}
	if q.Len() != 0 {
		t.Fatal("timed-out waiter left in queue")
	}
}

func TestWaitTimeoutSignaledFirst(t *testing.T) {
	e := NewEngine(1)
	var q WaitQ
	var reason WakeReason
	e.Spawn("w", func(tk *Task) {
		reason = q.WaitTimeout(tk, 10*time.Millisecond)
	})
	e.After(2*time.Millisecond, func() { q.WakeOne() })
	e.Run()
	if reason != WakeSignal {
		t.Fatalf("reason = %v, want signal", reason)
	}
	if e.Pending() != 0 {
		// The timeout timer must have been stopped and discarded by Run.
		t.Fatalf("pending events = %d, want 0", e.Pending())
	}
}

func TestKillParkedTask(t *testing.T) {
	e := NewEngine(1)
	reached := false
	tk := e.Spawn("victim", func(tk *Task) {
		tk.Sleep(time.Hour)
		reached = true
	})
	e.After(time.Millisecond, func() { tk.Kill() })
	e.Run()
	if reached {
		t.Fatal("killed task kept running")
	}
	if !tk.Done() {
		t.Fatal("killed task not done")
	}
	if e.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d, want 0", e.LiveTasks())
	}
}

func TestKillTaskWaitingOnQueue(t *testing.T) {
	e := NewEngine(1)
	var q WaitQ
	tk := e.Spawn("victim", func(tk *Task) {
		q.Wait(tk)
		t.Error("wait returned after kill")
	})
	e.After(time.Millisecond, func() { tk.Kill() })
	e.Run()
	if q.Len() != 0 {
		t.Fatal("killed task left in wait queue")
	}
}

func TestKillIdempotent(t *testing.T) {
	e := NewEngine(1)
	tk := e.Spawn("victim", func(tk *Task) { tk.Sleep(time.Hour) })
	e.After(time.Millisecond, func() { tk.Kill(); tk.Kill() })
	e.Run()
	if !tk.Done() {
		t.Fatal("not done")
	}
}

func TestKillBeforeFirstRun(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tk := e.Spawn("victim", func(tk *Task) { ran = true })
	tk.Kill()
	e.Run()
	if ran {
		t.Fatal("killed-before-start task ran")
	}
	if e.LiveTasks() != 0 {
		t.Fatalf("LiveTasks = %d", e.LiveTasks())
	}
}

func TestTaskSpawnsTask(t *testing.T) {
	e := NewEngine(1)
	var childRan Time
	e.Spawn("parent", func(tk *Task) {
		tk.Sleep(time.Millisecond)
		e.Spawn("child", func(c *Task) {
			c.Sleep(time.Millisecond)
			childRan = c.Now()
		})
		tk.Sleep(5 * time.Millisecond)
	})
	e.Run()
	if childRan != Time(2*time.Millisecond) {
		t.Fatalf("child ran at %v, want 2ms", childRan)
	}
}

func TestYield(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(tk *Task) {
		order = append(order, "a1")
		tk.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(tk *Task) {
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
