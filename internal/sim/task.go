package sim

import (
	"fmt"
	"time"
)

// killSignal is panicked inside a task goroutine to unwind it when the task
// is killed. The wrapper in Spawn recovers it.
type killSignal struct{ name string }

// WakeReason tells a task why it was resumed from a wait.
type WakeReason int

const (
	// WakeSignal means the condition the task waited for was signaled.
	WakeSignal WakeReason = iota
	// WakeTimeout means the wait's deadline expired first.
	WakeTimeout
	// WakeAbort means the wait was cancelled by a third party (for example
	// an IPC transaction torn down during migration).
	WakeAbort
)

// Task is a simulated thread of control: sequential Go code that blocks on
// virtual-time primitives (Sleep, WaitQ) instead of real synchronization.
//
// Exactly one task runs at a time; the engine resumes a task from an event
// callback and regains control when the task parks or finishes, so task code
// needs no locking. A Task must only be used from its own goroutine, except
// for Kill and the engine-side wake path.
type Task struct {
	eng    *Engine
	name   string
	wake   chan WakeReason
	parked chan struct{}
	killed bool
	done   bool
	// waitq is the queue the task is currently blocked on, if any; used to
	// remove the task from the queue on timeout or kill.
	waitq *WaitQ
}

// Spawn starts fn as a new task. fn begins running at the current instant
// (after already-scheduled events at this instant).
func (e *Engine) Spawn(name string, fn func(*Task)) *Task {
	t := &Task{
		eng:    e,
		name:   name,
		wake:   make(chan WakeReason),
		parked: make(chan struct{}),
	}
	e.tasks++
	go func() {
		<-t.wake // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					// Re-panic on the engine goroutine would be nicer, but
					// surfacing the original stack is more useful.
					panic(r)
				}
			}
			t.done = true
			e.tasks--
			t.parked <- struct{}{}
		}()
		if t.killed {
			panic(killSignal{t.name})
		}
		fn(t)
	}()
	e.resumeAfter(0, t, WakeSignal)
	return t
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// Engine returns the engine the task runs on.
func (t *Task) Engine() *Engine { return t.eng }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.eng.Now() }

// Done reports whether the task has finished.
func (t *Task) Done() bool { return t.done }

// dispatch resumes the task from the engine goroutine (inside an event) and
// blocks until the task parks again or finishes.
func (t *Task) dispatch(reason WakeReason) {
	if t.done {
		return
	}
	prev := t.eng.running
	t.eng.running = t
	t.wake <- reason
	<-t.parked
	t.eng.running = prev
}

// park suspends the task until some event calls dispatch. Returns the wake
// reason. Panics with killSignal if the task was killed while parked.
func (t *Task) park() WakeReason {
	t.parked <- struct{}{}
	reason := <-t.wake
	if t.killed {
		panic(killSignal{t.name})
	}
	return reason
}

// Sleep suspends the task for d of virtual time.
func (t *Task) Sleep(d time.Duration) {
	t.eng.resumeAfter(d, t, WakeSignal)
	t.park()
}

// Yield lets all other events scheduled at the current instant run first.
func (t *Task) Yield() { t.Sleep(0) }

// Kill tears the task down. If the task is currently parked it is resumed
// and unwound; if it is running, it unwinds at its next park point. Kill is
// idempotent. Kill must be called from the engine goroutine or another task,
// never from the task itself (a task exits by returning).
func (t *Task) Kill() {
	if t.done || t.killed {
		return
	}
	t.killed = true
	if t.waitq != nil {
		t.waitq.remove(t)
		t.waitq = nil
	}
	if t.eng.running != t {
		// Parked (or not yet started): resume it so it unwinds.
		t.eng.resumeAfter(0, t, WakeAbort)
	}
}

// Killed reports whether Kill has been called on the task.
func (t *Task) Killed() bool { return t.killed }

func (t *Task) String() string { return fmt.Sprintf("task(%s)", t.name) }

// WaitQ is a queue of tasks blocked on a condition. The zero value is ready
// to use.
type WaitQ struct {
	waiters []*Task
}

// Wait blocks the calling task until WakeOne/WakeAll signals the queue.
func (q *WaitQ) Wait(t *Task) WakeReason {
	q.waiters = append(q.waiters, t)
	t.waitq = q
	r := t.park()
	t.waitq = nil
	return r
}

// WaitTimeout blocks like Wait but gives up after d; the returned reason is
// WakeTimeout in that case.
func (q *WaitQ) WaitTimeout(t *Task, d time.Duration) WakeReason {
	q.waiters = append(q.waiters, t)
	t.waitq = q
	timer := t.eng.After(d, func() {
		if q.remove(t) {
			t.waitq = nil
			t.dispatch(WakeTimeout)
		}
	})
	r := t.park()
	t.waitq = nil
	if r != WakeTimeout {
		timer.Stop()
	}
	return r
}

// remove unlinks t from the queue, reporting whether it was present.
func (q *WaitQ) remove(t *Task) bool {
	for i, w := range q.waiters {
		if w == t {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// WakeOne resumes the longest-waiting task, if any, reporting whether a task
// was woken. The wake is delivered as a scheduled event at the current
// instant, preserving determinism.
func (q *WaitQ) WakeOne() bool {
	for len(q.waiters) > 0 {
		t := q.waiters[0]
		q.waiters = q.waiters[1:]
		t.waitq = nil
		t.eng.resumeAfter(0, t, WakeSignal)
		return true
	}
	return false
}

// WakeAll resumes every waiting task.
func (q *WaitQ) WakeAll() {
	for q.WakeOne() {
	}
}

// Len reports the number of blocked tasks.
func (q *WaitQ) Len() int { return len(q.waiters) }
