package sim

import (
	"testing"
	"time"
)

// TestTimerChurnReleasesEvents models the ipc retransmission pattern at
// cluster scale: every send transaction arms a retransmit timer and stops
// it milliseconds later when the reply lands, so almost no timer ever
// fires. Stopped timers must leave the heap eagerly — if Stop merely
// marks the event dead, 100k cancelled timers accumulate as tombstones
// (retaining their closures) until their 200 ms deadlines pop.
func TestTimerChurnReleasesEvents(t *testing.T) {
	e := NewEngine(1)
	// A live periodic event (a load beacon, say) keeps the heap top
	// occupied so lazily-discarded tombstones would hide behind it.
	var beacon func()
	beacon = func() { e.After(100*time.Millisecond, beacon) }
	beacon()
	const batches, perBatch = 1000, 100
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			tm := e.After(200*time.Millisecond, func() {
				t.Error("cancelled timer fired")
			})
			if !tm.Stop() {
				t.Fatal("Stop on a pending timer reported not pending")
			}
		}
		e.RunFor(time.Millisecond) // replies land; clock moves on
		if p := e.Pending(); p > perBatch {
			t.Fatalf("after batch %d: %d events pending — stopped timers retained in heap", b, p)
		}
	}
}

func benchNop() {}

// BenchmarkEngineAtStop is the arm-then-cancel hot path: one timer armed
// 200 ms out and stopped before it can fire, with the clock trickling
// forward as in a live protocol run.
func BenchmarkEngineAtStop(b *testing.B) {
	e := NewEngine(1)
	var beacon func()
	beacon = func() { e.After(100*time.Millisecond, beacon) }
	beacon()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(200*time.Millisecond, benchNop)
		tm.Stop()
		if i%64 == 63 {
			e.RunFor(time.Microsecond)
		}
	}
}

// BenchmarkEngineStep measures raw event dispatch: a self-rescheduling
// chain of one-shot events, the engine's innermost loop.
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
