package sim

import "time"

// Queue is an unbounded FIFO connecting tasks and event callbacks. Push may
// be called from anywhere on the engine; Pop blocks the calling task until
// an item is available.
type Queue[T any] struct {
	items []T
	wq    WaitQ
}

// Push appends v and wakes one waiting consumer.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.wq.WakeOne()
}

// Pop removes and returns the oldest item, blocking while the queue is
// empty.
func (q *Queue[T]) Pop(t *Task) T {
	for len(q.items) == 0 {
		q.wq.Wait(t)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// PopTimeout is Pop with a deadline; ok is false if it expired first.
func (q *Queue[T]) PopTimeout(t *Task, d time.Duration) (v T, ok bool) {
	deadline := t.Now().Add(d)
	for len(q.items) == 0 {
		remain := deadline.Sub(t.Now())
		if remain <= 0 {
			return v, false
		}
		if q.wq.WaitTimeout(t, remain) == WakeTimeout {
			// Re-check: an item may have been pushed at the same instant.
			if len(q.items) > 0 {
				break
			}
			return v, false
		}
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Clear discards every queued item. Consumers blocked in Pop stay blocked;
// consumers that were already woken re-check emptiness before popping.
func (q *Queue[T]) Clear() { q.items = nil }
