// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event heap. All simulated
// activity — network frames, CPU slices, protocol timers, server logic —
// runs as events on a single OS goroutine, or as coroutine Tasks that the
// engine resumes one at a time. Because at most one task is runnable at any
// instant and ties are broken by sequence number, a simulation with a fixed
// seed is exactly reproducible.
//
// Time is modeled in virtual nanoseconds (Time); durations use the standard
// time.Duration so that literals like 3*time.Millisecond read naturally.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since simulation boot.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts t (an elapsed span measured from boot) to a Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback or task resumption. Events are pooled:
// after firing or being stopped they return to the engine's free list,
// and gen is bumped so stale Timer handles cannot touch the recycled slot.
type event struct {
	at     Time
	seq    uint64 // FIFO tie-break for events at the same instant
	fn     func()
	task   *Task // when non-nil, resume this task instead of calling fn
	reason WakeReason
	gen    uint32
	index  int // heap index, -1 when popped
}

// Timer is a handle to a scheduled event; Stop cancels it. The zero Timer
// is valid and Stop on it reports false.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint32
}

// Stop cancels the timer, eagerly removing its event from the heap and
// releasing the callback so cancelled timers cost nothing past this call.
// It reports whether the timer was still pending; after the event has
// fired — including from inside the timer's own callback — it returns
// false.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.eng.events, t.ev.index)
	t.eng.release(t.ev)
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// maxFree caps the event free list; beyond it, released events are left
// to the garbage collector.
const maxFree = 1 << 16

// Engine is a discrete-event simulator instance.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*event // recycled events
	rng     *rand.Rand
	running *Task // task currently executing, nil when in plain events
	tasks   int   // live task count, for leak diagnostics
}

// NewEngine returns an engine with its virtual clock at zero and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded random source. All stochastic behaviour
// in a simulation (loss, jitter) must draw from it to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc takes an event from the free list, or makes one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{index: -1}
}

// release clears an event (dropping the closure immediately), invalidates
// outstanding Timer handles, and recycles it.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.task = nil
	ev.gen++
	if len(e.free) < maxFree {
		e.free = append(e.free, ev)
	}
}

// schedule pushes ev onto the heap at instant t.
func (e *Engine) schedule(t Time, ev *event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	ev.at, ev.seq = t, e.seq
	heap.Push(&e.events, ev)
}

// At schedules fn to run at instant t. Scheduling in the past is an error in
// the simulation logic and panics.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.alloc()
	ev.fn = fn
	e.schedule(t, ev)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// resumeAfter schedules a task resumption d from now without allocating a
// closure — the hot path for Sleep/WakeOne/Spawn at cluster scale.
func (e *Engine) resumeAfter(d time.Duration, t *Task, reason WakeReason) Timer {
	if d < 0 {
		d = 0
	}
	ev := e.alloc()
	ev.task, ev.reason = t, reason
	e.schedule(e.now.Add(d), ev)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// Step runs the next pending event. It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	fn, task, reason := ev.fn, ev.task, ev.reason
	// Release before running: tasks never reenter Step, and handing the
	// event back first makes Stop from inside the callback a clean no-op.
	e.release(ev)
	if task != nil {
		task.dispatch(reason)
	} else {
		fn()
	}
	return true
}

// Run processes events until the event heap is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t and then sets the clock to
// t. Events scheduled later remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Pending reports the number of live scheduled events; stopped timers
// leave the heap immediately and are never counted.
func (e *Engine) Pending() int { return len(e.events) }

// LiveTasks reports the number of spawned tasks that have not finished.
func (e *Engine) LiveTasks() int { return e.tasks }

// Current returns the task executing right now, or nil when the engine is
// running a plain event. Used by subsystems that need the calling task's
// identity from deep in a call chain (for example a page-fault handler
// that must block the faulting task).
func (e *Engine) Current() *Task { return e.running }
