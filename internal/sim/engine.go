// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event heap. All simulated
// activity — network frames, CPU slices, protocol timers, server logic —
// runs as events on a single OS goroutine, or as coroutine Tasks that the
// engine resumes one at a time. Because at most one task is runnable at any
// instant and ties are broken by sequence number, a simulation with a fixed
// seed is exactly reproducible.
//
// Time is modeled in virtual nanoseconds (Time); durations use the standard
// time.Duration so that literals like 3*time.Millisecond read naturally.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since simulation boot.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts t (an elapsed span measured from boot) to a Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at      Time
	seq     uint64 // FIFO tie-break for events at the same instant
	fn      func()
	stopped bool
	index   int // heap index, -1 when popped
}

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped {
		return false
	}
	pending := t.ev.index >= 0
	t.ev.stopped = true
	return pending
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator instance.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	running *Task // task currently executing, nil when in plain events
	tasks   int   // live task count, for leak diagnostics
}

// NewEngine returns an engine with its virtual clock at zero and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded random source. All stochastic behaviour
// in a simulation (loss, jitter) must draw from it to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at instant t. Scheduling in the past is an error in
// the simulation logic and panics.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Step runs the next pending event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.stopped {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run processes events until the event heap is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t and then sets the clock to
// t. Events scheduled later remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.stopped {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Pending reports the number of events still scheduled (including stopped
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.events) }

// LiveTasks reports the number of spawned tasks that have not finished.
func (e *Engine) LiveTasks() int { return e.tasks }

// Current returns the task executing right now, or nil when the engine is
// running a plain event. Used by subsystems that need the calling task's
// identity from deep in a call chain (for example a page-fault handler
// that must block the faulting task).
func (e *Engine) Current() *Task { return e.running }
