package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestTimerStopFromOwnCallback pins the semantics of Stop called while —
// or after — the timer's own callback runs: it reports false and the
// callback never runs twice, even though the event slot may have been
// recycled for an unrelated timer by then.
func TestTimerStopFromOwnCallback(t *testing.T) {
	e := NewEngine(1)
	runs := 0
	var tm Timer
	tm = e.After(time.Millisecond, func() {
		runs++
		if tm.Stop() {
			t.Error("Stop from inside own callback reported pending")
		}
		// Recycle the slot: this timer reuses the just-released event,
		// and the stale handle must not be able to cancel it.
		e.After(time.Millisecond, func() { runs += 100 })
		if tm.Stop() {
			t.Error("stale handle cancelled a recycled event")
		}
	})
	e.Run()
	if runs != 101 {
		t.Fatalf("runs = %d, want 101 (callback once, recycled event once)", runs)
	}
	if tm.Stop() {
		t.Error("Stop after the run reported pending")
	}
}

// TestSameInstantFIFOAtScale is the ordering property test at 10^5
// events: everything scheduled for one instant runs in scheduling order,
// even with a deterministic third of the events cancelled in between
// (heap.Remove must not perturb the (at, seq) ordering of survivors).
func TestSameInstantFIFOAtScale(t *testing.T) {
	e := NewEngine(1)
	const n = 100000
	rng := rand.New(rand.NewSource(7))
	at := e.Now().Add(time.Second)
	var got []int
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		i := i
		timers = append(timers, e.At(at, func() { got = append(got, i) }))
	}
	want := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			if !timers[i].Stop() {
				t.Fatalf("timer %d: Stop reported not pending", i)
			}
		} else {
			want = append(want, i)
		}
	}
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("%d events ran, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: ran event %d, want %d", i, got[i], want[i])
		}
	}
}
