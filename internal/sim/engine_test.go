package sim

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(3*time.Millisecond, func() { got = append(got, 3) })
	e.After(1*time.Millisecond, func() { got = append(got, 1) })
	e.After(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Fatalf("Now() = %v, want 3ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("At() in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(10*time.Millisecond, func() { ran = true })
	e.RunUntil(Time(5 * time.Millisecond))
	if ran {
		t.Fatal("future event ran early")
	}
	if e.Now() != Time(5*time.Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
	e.RunFor(5 * time.Millisecond)
	if !ran {
		t.Fatal("event did not run at its time")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(time.Microsecond, rec)
		}
	}
	e.After(0, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var trace []int64
		var tick func()
		n := 0
		tick = func() {
			trace = append(trace, int64(e.Now()))
			n++
			if n < 50 {
				jitter := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
				e.After(jitter, tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	var tt Time
	tt = tt.Add(1500 * time.Millisecond)
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", tt.Seconds())
	}
	if tt.Sub(Time(500*time.Millisecond)) != time.Second {
		t.Fatal("Sub wrong")
	}
}
