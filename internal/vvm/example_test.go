package vvm_test

import (
	"fmt"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/kernel"
	"vsystem/internal/sim"
	"vsystem/internal/vvm"
)

// ExampleAssemble assembles a small program and runs it to completion on a
// simulated workstation, reading the result from the exit code.
func ExampleAssemble() {
	code, err := vvm.Assemble(`
        LDI r0, 0         ; sum
        LDI r1, 1         ; i
        LDI r2, 11
loop:   ADD r0, r1
        ADDI r1, 1
        BLT r1, r2, loop
        HALT r0           ; 1+2+...+10
`)
	if err != nil {
		panic(err)
	}

	eng := sim.NewEngine(1)
	bus := ethernet.NewBus(eng)
	h := kernel.NewHost(eng, bus, 0, "ws0")
	lh := h.CreateLH("sum", false)
	as, _ := lh.CreateSpace(64 * 1024)
	as.WriteAt(vvm.CodeBase, code)
	p := lh.NewProcess(as.ID, vvm.BodyKind, kernel.Regs{})
	h.Start(p)
	eng.RunFor(time.Second)

	fmt.Println("exit:", p.Regs().W[kernel.RegExitCode])
	// Output:
	// exit: 55
}

// ExampleDisassemble round-trips bytecode back to assembly text.
func ExampleDisassemble() {
	code, _ := vvm.Assemble("LDI r3, 0x10\nHALT r3\n")
	fmt.Print(vvm.Disassemble(code))
	// Output:
	//         LDI r3, 0x10
	//         HALT r3
}
