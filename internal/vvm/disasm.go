package vvm

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// instrSpec describes an instruction's operand shape for the disassembler.
type instrSpec struct {
	name string
	// operand string: "" none, "r" one register, "rr" two registers,
	// "ri" register+imm, "rri" two registers+imm, "i" imm only.
	ops string
}

var specs = map[byte]instrSpec{
	NOP:  {"NOP", ""},
	HALT: {"HALT", "r"},
	LDI:  {"LDI", "ri"},
	MOV:  {"MOV", "rr"},
	ADD:  {"ADD", "rr"},
	SUB:  {"SUB", "rr"},
	MUL:  {"MUL", "rr"},
	DIV:  {"DIV", "rr"},
	MOD:  {"MOD", "rr"},
	AND:  {"AND", "rr"},
	OR:   {"OR", "rr"},
	XOR:  {"XOR", "rr"},
	SHL:  {"SHL", "rr"},
	SHR:  {"SHR", "rr"},
	ADDI: {"ADDI", "ri"},
	LD:   {"LD", "rri"},
	ST:   {"ST", "rri"},
	LDB:  {"LDB", "rri"},
	STB:  {"STB", "rri"},
	JMP:  {"JMP", "i"},
	BEQ:  {"BEQ", "rri"},
	BNE:  {"BNE", "rri"},
	BLT:  {"BLT", "rri"},
	BGE:  {"BGE", "rri"},
	CALL: {"CALL", "i"},
	RET:  {"RET", ""},
	PUSH: {"PUSH", "r"},
	POP:  {"POP", "r"},
	RND:  {"RND", "rr"},
	SEND: {"SEND", "r"},
	OUT:  {"OUT", "rr"},
}

// Disassemble renders bytecode as assembly text that Assemble accepts
// (immediates as hex numbers; bytes that do not decode as instructions
// become .byte directives). Addresses assume the code is loaded at
// CodeBase.
func Disassemble(code []byte) string {
	var b strings.Builder
	pc := 0
	emitByte := func() {
		fmt.Fprintf(&b, "        .byte %d\n", code[pc])
		pc++
	}
	for pc < len(code) {
		spec, ok := specs[code[pc]]
		if !ok {
			emitByte()
			continue
		}
		need := 1
		for _, c := range spec.ops {
			if c == 'r' {
				need++
			} else {
				need += 4
			}
		}
		if pc+need > len(code) {
			emitByte()
			continue
		}
		start := pc
		pc++
		var parts []string
		valid := true
		for _, c := range spec.ops {
			if c == 'r' {
				r := code[pc]
				if int(r) >= NumRegs {
					valid = false
					break
				}
				parts = append(parts, fmt.Sprintf("r%d", r))
				pc++
			} else {
				v := binary.LittleEndian.Uint32(code[pc:])
				parts = append(parts, fmt.Sprintf("%#x", v))
				pc += 4
			}
		}
		if !valid {
			pc = start
			emitByte()
			continue
		}
		if len(parts) == 0 {
			fmt.Fprintf(&b, "        %s\n", spec.name)
		} else {
			fmt.Fprintf(&b, "        %s %s\n", spec.name, strings.Join(parts, ", "))
		}
	}
	return b.String()
}
