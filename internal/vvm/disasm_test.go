package vvm

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDisassembleKnownProgram(t *testing.T) {
	code, err := Assemble(`
        LDI r0, 0x2A
        PUSH r0
        POP r1
        HALT r1
`)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(code)
	for _, want := range []string{"LDI r0, 0x2a", "PUSH r0", "POP r1", "HALT r1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestDisassembleGarbageFallsBackToBytes(t *testing.T) {
	text := Disassemble([]byte{0xEE, 0xFF})
	if strings.Count(text, ".byte") != 2 {
		t.Fatalf("garbage not rendered as bytes:\n%s", text)
	}
	// Reassembling the fallback reproduces the original bytes.
	code, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(code, []byte{0xEE, 0xFF}) {
		t.Fatalf("fallback round trip = % x", code)
	}
}

func TestDisassembleTruncatedInstruction(t *testing.T) {
	// LDI needs 6 bytes; give it 3. The fallback may decode trailing
	// bytes as shorter instructions (0x00 is NOP), but reassembly must
	// reproduce the original bytes exactly.
	in := []byte{LDI, 0, 0x12}
	text := Disassemble(in)
	if !strings.Contains(text, ".byte") {
		t.Fatalf("truncated instruction not byte-dumped:\n%s", text)
	}
	code, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(code, in) {
		t.Fatalf("round trip = % x, want % x", code, in)
	}
}

// randomProgram builds syntactically valid assembly from the instruction
// templates.
func randomProgram(rng *rand.Rand, n int) string {
	var b strings.Builder
	reg := func() string { return fmt.Sprintf("r%d", rng.Intn(NumRegs)) }
	imm := func() string { return fmt.Sprintf("%#x", rng.Uint32()) }
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			fmt.Fprintf(&b, "NOP\n")
		case 1:
			fmt.Fprintf(&b, "LDI %s, %s\n", reg(), imm())
		case 2:
			fmt.Fprintf(&b, "ADD %s, %s\n", reg(), reg())
		case 3:
			fmt.Fprintf(&b, "ST %s, %s, %s\n", reg(), reg(), imm())
		case 4:
			fmt.Fprintf(&b, "BNE %s, %s, %s\n", reg(), reg(), imm())
		case 5:
			fmt.Fprintf(&b, "PUSH %s\n", reg())
		case 6:
			fmt.Fprintf(&b, "RET\n")
		case 7:
			fmt.Fprintf(&b, "OUT %s, %s\n", reg(), reg())
		}
	}
	return b.String()
}

// Property: assemble → disassemble → assemble is byte-identical for any
// valid instruction sequence.
func TestQuickAssembleDisassembleRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng, int(n%64)+1)
		code1, err := Assemble(src)
		if err != nil {
			t.Logf("assemble failed for:\n%s", src)
			return false
		}
		code2, err := Assemble(Disassemble(code1))
		if err != nil {
			t.Logf("reassemble failed for:\n%s", Disassemble(code1))
			return false
		}
		return bytes.Equal(code1, code2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every real program in this repo disassembles and reassembles
// to identical bytes.
func TestDisassembleRealProgramsRoundTrip(t *testing.T) {
	srcs := []string{
		`
        LDI r0, 0
        LDI r1, 1
        LDI r2, 101
loop:   ADD r0, r1
        ADDI r1, 1
        BLT r1, r2, loop
        HALT r0
`,
		`
        LDI r0, 7
        CALL fn
        HALT r0
fn:     ADD r0, r0
        RET
`,
	}
	for _, src := range srcs {
		code1, err := Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		code2, err := Assemble(Disassemble(code1))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(code1, code2) {
			t.Fatalf("round trip mismatch for:\n%s", src)
		}
	}
}
