// Package vvm implements the V virtual machine: a small bytecode
// interpreter whose entire execution state lives in the process's register
// blob and address space.
//
// This is the reproduction's substitute for the paper's 68010 binaries:
// because a goroutine's stack cannot be migrated, user programs run on a VM
// whose state is pure data. Migration then moves *real* program state —
// the property tests assert that a program produces bit-identical results
// with and without migrations, which is the paper's transparency claim.
//
// Execution is charged to the simulated CPU at params.InstrTime per
// instruction (a ~1 MIPS 68010). Blocking operations (SEND, OUT) record a
// resume phase in the registers so the interpreter re-enters them after a
// migration.
package vvm

import (
	"encoding/binary"

	"vsystem/internal/kernel"
	"vsystem/internal/vid"
)

// Op codes. Instructions are byte-aligned: opcode byte, then operands
// (register bytes, little-endian 32-bit immediates).
const (
	NOP  byte = iota
	HALT      // HALT r        : exit with code r
	LDI       // LDI r imm32   : r = imm
	MOV       // MOV r s       : r = s
	ADD       // ADD r s       : r += s
	SUB       // SUB r s
	MUL       // MUL r s
	DIV       // DIV r s       : r /= s (0 if s == 0)
	MOD       // MOD r s
	AND       // AND r s
	OR        // OR r s
	XOR       // XOR r s
	SHL       // SHL r s
	SHR       // SHR r s
	ADDI      // ADDI r imm32
	LD        // LD r s imm32  : r = mem32[s+imm]
	ST        // ST r s imm32  : mem32[s+imm] = r
	LDB       // LDB r s imm32 : r = mem8[s+imm]
	STB       // STB r s imm32 : mem8[s+imm] = r (low byte)
	JMP       // JMP imm32
	BEQ       // BEQ r s imm32 : if r == s jump
	BNE       // BNE r s imm32
	BLT       // BLT r s imm32 : unsigned <
	BGE       // BGE r s imm32
	CALL      // CALL imm32    : push PC, jump
	RET       // RET           : pop PC
	PUSH      // PUSH r
	POP       // POP r
	RND       // RND r s       : r = next xorshift32 of seed register s
	SEND      // SEND r        : message transaction via block at address r
	OUT       // OUT r s       : write mem[r..r+s) to the stdout server
	opMax
)

// Register-blob layout (within kernel.Regs.W).
const (
	regPC      = kernel.RegUser + 0
	regSP      = kernel.RegUser + 1
	regPending = kernel.RegUser + 2 // 0 none, 1 SEND, 2 OUT
	regBlock   = kernel.RegUser + 3 // message block addr of pending SEND
	regGPR     = kernel.RegUser + 4 // r0..r15 follow
	// NumRegs is the number of general-purpose registers.
	NumRegs = 16
)

// Message-block layout for SEND (word offsets).
const (
	blkDst     = 0  // destination PID
	blkOp      = 4  // low 16: op; high 16: code (reply code written back)
	blkW0      = 8  // 6 data words, in and out
	blkSegAddr = 32 // outgoing segment address
	blkSegLen  = 36 // outgoing segment length
	blkRepAddr = 40 // reply segment buffer address
	blkRepCap  = 44 // reply segment buffer capacity
	blkRepLen  = 48 // reply segment length (written back)
	blkErr     = 52 // 0 ok, else vid code
	// BlockSize is the size of a message block.
	BlockSize = 56
)

// CodeBase is where program code is loaded; the env block occupies page 0.
const CodeBase = 0x1000

// BodyKind is the registry key for VVM programs.
const BodyKind = "vvm"

func init() {
	kernel.RegisterBody(BodyKind, func() kernel.Body { return &machine{} })
}

// machine interprets one process's bytecode.
type machine struct{}

// chargeBatch bounds how many instructions run between CPU charges (and
// thus how stale the virtual clock can get inside the interpreter).
const chargeBatch = 256

// Run implements kernel.Body. It resumes cleanly from the register blob:
// a pending SEND/OUT is completed first, then the fetch-execute loop
// continues at the saved PC.
func (m *machine) Run(ctx *kernel.ProcCtx) {
	r := ctx.Regs()
	as := ctx.Space()
	if r.W[regPC] == 0 {
		r.W[regPC] = CodeBase
	}
	if r.W[regSP] == 0 {
		r.W[regSP] = as.Size()
	}
	pending := 0

	// fault terminates the program with exit code 0xFF (address fault,
	// bad opcode). The offending PC is left in the registers for tools.
	fault := func(string, ...any) {
		ctx.Exit(0xFF)
	}

	gpr := func(i byte) *uint32 {
		if int(i) >= NumRegs {
			fault("bad register %d", i)
		}
		return &r.W[regGPR+uint32(i)]
	}

	rd8 := func(addr uint32) byte {
		var b [1]byte
		if err := as.ReadAt(addr, b[:]); err != nil {
			fault("read fault %#x", addr)
		}
		return b[0]
	}
	rd32 := func(addr uint32) uint32 {
		v, err := as.ReadWord(addr)
		if err != nil {
			fault("read fault %#x", addr)
		}
		return v
	}
	wr32 := func(addr, v uint32) {
		if err := as.WriteWord(addr, v); err != nil {
			fault("write fault %#x", addr)
		}
	}

	// completeIPC finishes a pending SEND/OUT transaction: awaits the
	// reply and writes it into the message block.
	completeIPC := func() {
		if !ctx.Sending() {
			// No transaction outstanding: the pending flag was set but
			// the send itself never issued (cannot happen through this
			// interpreter, which issues before setting the flag, but a
			// hand-built register blob could). Clear and continue.
			r.W[regPending] = 0
			return
		}
		reply, err := ctx.AwaitReply()
		blk := r.W[regBlock]
		if r.W[regPending] == 1 { // SEND writes results back
			if err != nil {
				code := uint32(vid.CodeTimeout)
				if ce, ok := err.(vid.CodeError); ok {
					code = uint32(ce)
				}
				wr32(blk+blkErr, code)
			} else {
				wr32(blk+blkErr, 0)
				wr32(blk+blkOp, uint32(reply.Op)|uint32(reply.Code)<<16)
				for i, w := range reply.W {
					wr32(blk+blkW0+uint32(4*i), w)
				}
				rcap := rd32(blk + blkRepCap)
				n := uint32(len(reply.Seg))
				if n > rcap {
					n = rcap
				}
				if n > 0 {
					if werr := as.WriteAt(rd32(blk+blkRepAddr), reply.Seg[:n]); werr != nil {
						fault("reply seg fault")
					}
				}
				wr32(blk+blkRepLen, n)
			}
		}
		r.W[regPending] = 0
	}

	if r.W[regPending] != 0 {
		completeIPC()
	}

	for {
		if pending >= chargeBatch {
			ctx.Steps(pending)
			pending = 0
		}
		pc := r.W[regPC]
		op := rd8(pc)
		pc++
		// Operand helpers advance pc as they decode.
		reg := func() byte { b := rd8(pc); pc++; return b }
		imm := func() uint32 {
			var b [4]byte
			if err := as.ReadAt(pc, b[:]); err != nil {
				fault("fetch fault %#x", pc)
			}
			pc += 4
			return binary.LittleEndian.Uint32(b[:])
		}
		cost := 1

		switch op {
		case NOP:
		case HALT:
			code := *gpr(reg())
			ctx.Steps(pending + 1)
			ctx.Exit(code)
		case LDI:
			d := reg()
			*gpr(d) = imm()
		case MOV:
			d, s := reg(), reg()
			*gpr(d) = *gpr(s)
		case ADD:
			d, s := reg(), reg()
			*gpr(d) += *gpr(s)
		case SUB:
			d, s := reg(), reg()
			*gpr(d) -= *gpr(s)
		case MUL:
			d, s := reg(), reg()
			*gpr(d) *= *gpr(s)
			cost = 5
		case DIV:
			d, s := reg(), reg()
			if v := *gpr(s); v != 0 {
				*gpr(d) /= v
			} else {
				*gpr(d) = 0
			}
			cost = 8
		case MOD:
			d, s := reg(), reg()
			if v := *gpr(s); v != 0 {
				*gpr(d) %= v
			} else {
				*gpr(d) = 0
			}
			cost = 8
		case AND:
			d, s := reg(), reg()
			*gpr(d) &= *gpr(s)
		case OR:
			d, s := reg(), reg()
			*gpr(d) |= *gpr(s)
		case XOR:
			d, s := reg(), reg()
			*gpr(d) ^= *gpr(s)
		case SHL:
			d, s := reg(), reg()
			*gpr(d) <<= *gpr(s) & 31
		case SHR:
			d, s := reg(), reg()
			*gpr(d) >>= *gpr(s) & 31
		case ADDI:
			d := reg()
			*gpr(d) += imm()
		case LD:
			d, s := reg(), reg()
			*gpr(d) = rd32(*gpr(s) + imm())
			cost = 2
		case ST:
			d, s := reg(), reg()
			wr32(*gpr(s)+imm(), *gpr(d))
			cost = 2
		case LDB:
			d, s := reg(), reg()
			*gpr(d) = uint32(rd8(*gpr(s) + imm()))
			cost = 2
		case STB:
			d, s := reg(), reg()
			if err := as.WriteAt(*gpr(s)+imm(), []byte{byte(*gpr(d))}); err != nil {
				fault("write fault")
			}
			cost = 2
		case JMP:
			pc = imm()
		case BEQ:
			a, b := reg(), reg()
			t := imm()
			if *gpr(a) == *gpr(b) {
				pc = t
			}
		case BNE:
			a, b := reg(), reg()
			t := imm()
			if *gpr(a) != *gpr(b) {
				pc = t
			}
		case BLT:
			a, b := reg(), reg()
			t := imm()
			if *gpr(a) < *gpr(b) {
				pc = t
			}
		case BGE:
			a, b := reg(), reg()
			t := imm()
			if *gpr(a) >= *gpr(b) {
				pc = t
			}
		case CALL:
			t := imm()
			r.W[regSP] -= 4
			wr32(r.W[regSP], pc)
			pc = t
			cost = 3
		case RET:
			pc = rd32(r.W[regSP])
			r.W[regSP] += 4
			cost = 3
		case PUSH:
			s := reg()
			r.W[regSP] -= 4
			wr32(r.W[regSP], *gpr(s))
			cost = 2
		case POP:
			d := reg()
			*gpr(d) = rd32(r.W[regSP])
			r.W[regSP] += 4
			cost = 2
		case RND:
			d, s := reg(), reg()
			x := *gpr(s)
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			if x == 0 {
				x = 0x9E3779B9
			}
			*gpr(s) = x
			*gpr(d) = x
			cost = 4
		case SEND:
			// The committed PC stays at the instruction until the charge
			// below completes: a freeze can park the process mid-charge,
			// and the migrated copy must then re-execute the SEND (nothing
			// has been issued yet). PC and the pending flag advance only
			// once nothing can park us before the transaction is recorded
			// in the port, so a snapshot sees either "before the
			// instruction, no send" or "after it, send in flight" — never
			// a committed PC with the send silently dropped.
			blk := *gpr(reg())
			ctx.Steps(pending + 20)
			pending = 0
			r.W[regPC] = pc
			r.W[regPending] = 1
			r.W[regBlock] = blk
			m.startSend(ctx, blk, rd32, fault)
			completeIPC()
			continue
		case OUT:
			a, l := reg(), reg()
			addr, n := *gpr(a), *gpr(l)
			ctx.Steps(pending + 20) // PC still at the OUT; see SEND
			pending = 0
			r.W[regPC] = pc
			r.W[regPending] = 2
			m.startOut(ctx, addr, n, fault)
			completeIPC()
			continue
		default:
			fault("bad opcode %d at %#x", op, pc-1)
		}
		pending += cost
		r.W[regPC] = pc
	}
}

// startSend issues the transaction described by the message block.
func (m *machine) startSend(ctx *kernel.ProcCtx, blk uint32, rd32 func(uint32) uint32, fault func(string, ...any)) {
	as := ctx.Space()
	msg := vid.Message{Op: uint16(rd32(blk + blkOp))}
	for i := 0; i < 6; i++ {
		msg.W[i] = rd32(blk + blkW0 + uint32(4*i))
	}
	if n := rd32(blk + blkSegLen); n > 0 {
		if n > vid.SegMax {
			fault("segment too large")
		}
		seg := make([]byte, n)
		if err := as.ReadAt(rd32(blk+blkSegAddr), seg); err != nil {
			fault("segment fault")
		}
		msg.Seg = seg
	}
	ctx.StartSend(vid.PID(rd32(blk+blkDst)), msg)
}

// startOut issues a write-line transaction to the program's stdout server
// (from the environment block).
func (m *machine) startOut(ctx *kernel.ProcCtx, addr, n uint32, fault func(string, ...any)) {
	as := ctx.Space()
	if n > 4096 {
		fault("OUT too large")
	}
	buf := make([]byte, n)
	if err := as.ReadAt(addr, buf); err != nil {
		fault("OUT fault")
	}
	stdout, err := as.ReadWord(EnvStdoutPID)
	if err != nil || stdout == 0 {
		fault("no stdout server")
	}
	ctx.StartSend(vid.PID(stdout), vid.Message{Op: OpWriteLine, Seg: buf})
}

// OpWriteLine is the display-server operation VVM OUT uses (shared with
// internal/display; defined here to avoid a dependency cycle).
const OpWriteLine uint16 = 0x70

// Environment-block word offsets in page 0 (written by the program
// manager at program creation, §2.1: arguments, default I/O, environment
// variables, name cache).
const (
	EnvMagic      = 0x00 // magic word
	EnvStdoutPID  = 0x04 // display server of the user's home workstation
	EnvFServerPID = 0x08 // a network file server
	EnvArgc       = 0x0C
	EnvArgv       = 0x10 // offset of NUL-separated argument bytes
	EnvHeap       = 0x14 // first free address after code+data
	EnvMagicValue = 0x56454E56
)
