package vvm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates VVM assembly text into bytecode loaded at CodeBase.
//
// Syntax: one instruction per line; `;` starts a comment; `label:` defines
// a label (usable as a jump/call target or as an immediate `=label`);
// registers are r0..r15; immediates are decimal, 0x hex, or 'c' character
// constants. Directives:
//
//	.word v...    — emit 32-bit words
//	.byte v...    — emit bytes
//	.ascii "s"    — emit string bytes
//	.space n      — emit n zero bytes
//
// Example:
//
//	        LDI r0, 0        ; sum
//	        LDI r1, 1        ; i
//	        LDI r2, 101
//	loop:   ADD r0, r1
//	        ADDI r1, 1
//	        BLT r1, r2, loop
//	        HALT r0
func Assemble(src string) ([]byte, error) {
	type fixup struct {
		pos   int
		label string
		line  int
	}
	var (
		out    []byte
		labels = map[string]uint32{}
		fixups []fixup
	)
	emit8 := func(b byte) { out = append(out, b) }
	emit32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t\"") {
				labels[line[:i]] = CodeBase + uint32(len(out))
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		mnem, rest, _ := strings.Cut(line, " ")
		mnem = strings.ToUpper(strings.TrimSpace(mnem))
		args := splitArgs(rest)

		argErr := func() error {
			return fmt.Errorf("vvm: line %d: bad operands for %s: %q", ln+1, mnem, rest)
		}
		parseReg := func(s string) (byte, error) {
			s = strings.ToLower(strings.TrimSpace(s))
			if !strings.HasPrefix(s, "r") {
				return 0, argErr()
			}
			v, err := strconv.Atoi(s[1:])
			if err != nil || v < 0 || v >= NumRegs {
				return 0, argErr()
			}
			return byte(v), nil
		}
		parseImm := func(s string) error {
			s = strings.TrimSpace(s)
			if s == "" {
				return argErr()
			}
			if lbl := strings.TrimPrefix(s, "="); lbl != s || isIdent(s) {
				name := lbl
				if isIdent(s) && lbl == s {
					name = s
				}
				fixups = append(fixups, fixup{pos: len(out), label: name, line: ln + 1})
				emit32(0)
				return nil
			}
			if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
				emit32(uint32(s[1]))
				return nil
			}
			v, err := strconv.ParseUint(s, 0, 32)
			if err != nil {
				// Allow negative immediates (two's complement).
				sv, serr := strconv.ParseInt(s, 0, 64)
				if serr != nil {
					return argErr()
				}
				emit32(uint32(int32(sv)))
				return nil
			}
			emit32(uint32(v))
			return nil
		}
		rr := func(op byte) error {
			if len(args) != 2 {
				return argErr()
			}
			a, err := parseReg(args[0])
			if err != nil {
				return err
			}
			b, err := parseReg(args[1])
			if err != nil {
				return err
			}
			emit8(op)
			emit8(a)
			emit8(b)
			return nil
		}
		rImm := func(op byte) error {
			if len(args) != 2 {
				return argErr()
			}
			a, err := parseReg(args[0])
			if err != nil {
				return err
			}
			emit8(op)
			emit8(a)
			return parseImm(args[1])
		}
		rrImm := func(op byte) error {
			if len(args) != 3 {
				return argErr()
			}
			a, err := parseReg(args[0])
			if err != nil {
				return err
			}
			b, err := parseReg(args[1])
			if err != nil {
				return err
			}
			emit8(op)
			emit8(a)
			emit8(b)
			return parseImm(args[2])
		}
		r1 := func(op byte) error {
			if len(args) != 1 {
				return argErr()
			}
			a, err := parseReg(args[0])
			if err != nil {
				return err
			}
			emit8(op)
			emit8(a)
			return nil
		}
		immOnly := func(op byte) error {
			if len(args) != 1 {
				return argErr()
			}
			emit8(op)
			return parseImm(args[0])
		}

		var err error
		switch mnem {
		case "NOP":
			emit8(NOP)
		case "HALT":
			err = r1(HALT)
		case "LDI":
			err = rImm(LDI)
		case "MOV":
			err = rr(MOV)
		case "ADD":
			err = rr(ADD)
		case "SUB":
			err = rr(SUB)
		case "MUL":
			err = rr(MUL)
		case "DIV":
			err = rr(DIV)
		case "MOD":
			err = rr(MOD)
		case "AND":
			err = rr(AND)
		case "OR":
			err = rr(OR)
		case "XOR":
			err = rr(XOR)
		case "SHL":
			err = rr(SHL)
		case "SHR":
			err = rr(SHR)
		case "ADDI":
			err = rImm(ADDI)
		case "LD":
			err = rrImm(LD)
		case "ST":
			err = rrImm(ST)
		case "LDB":
			err = rrImm(LDB)
		case "STB":
			err = rrImm(STB)
		case "JMP":
			err = immOnly(JMP)
		case "BEQ":
			err = rrImm(BEQ)
		case "BNE":
			err = rrImm(BNE)
		case "BLT":
			err = rrImm(BLT)
		case "BGE":
			err = rrImm(BGE)
		case "CALL":
			err = immOnly(CALL)
		case "RET":
			emit8(RET)
		case "PUSH":
			err = r1(PUSH)
		case "POP":
			err = r1(POP)
		case "RND":
			err = rr(RND)
		case "SEND":
			err = r1(SEND)
		case "OUT":
			err = rr(OUT)
		case ".WORD":
			for _, a := range args {
				if err = parseImm(a); err != nil {
					break
				}
			}
		case ".BYTE":
			for _, a := range args {
				v, perr := strconv.ParseUint(strings.TrimSpace(a), 0, 8)
				if perr != nil {
					err = argErr()
					break
				}
				emit8(byte(v))
			}
		case ".ASCII":
			str, perr := strconv.Unquote(strings.TrimSpace(rest))
			if perr != nil {
				err = argErr()
			} else {
				out = append(out, str...)
			}
		case ".SPACE":
			v, perr := strconv.ParseUint(strings.TrimSpace(rest), 0, 24)
			if perr != nil {
				err = argErr()
			} else {
				out = append(out, make([]byte, v)...)
			}
		default:
			err = fmt.Errorf("vvm: line %d: unknown mnemonic %q", ln+1, mnem)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, fx := range fixups {
		addr, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("vvm: line %d: undefined label %q", fx.line, fx.label)
		}
		binary.LittleEndian.PutUint32(out[fx.pos:], addr)
	}
	return out, nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// isIdent reports whether s looks like a label reference rather than a
// number or register.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
		return false
	}
	// Registers are not labels.
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		if _, err := strconv.Atoi(s[1:]); err == nil {
			return false
		}
	}
	return true
}
