package vvm

import (
	"strings"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/kernel"
	"vsystem/internal/sim"
)

// runProgram executes assembled code on a fresh host until exit and
// returns the exit code (from the register blob).
func runProgram(t *testing.T, src string, budget time.Duration) uint32 {
	t.Helper()
	code, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	eng := sim.NewEngine(1)
	bus := ethernet.NewBus(eng)
	h := kernel.NewHost(eng, bus, 0, "t")
	lh := h.CreateLH("prog", false)
	as, err := lh.CreateSpace(256 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteAt(CodeBase, code); err != nil {
		t.Fatal(err)
	}
	// Minimal env: heap after code.
	heap := (CodeBase + uint32(len(code)) + 1023) &^ 1023
	as.WriteWord(EnvMagic, EnvMagicValue)
	as.WriteWord(EnvHeap, heap)
	p := lh.NewProcess(as.ID, BodyKind, kernel.Regs{})
	h.Start(p)
	eng.RunFor(budget)
	if !p.Dead() {
		t.Fatalf("program did not exit within %v", budget)
	}
	return p.Regs().W[kernel.RegExitCode]
}

func TestArithmeticAndBranches(t *testing.T) {
	// Sum 1..100 = 5050; halt with sum%251 = 30.
	code := runProgram(t, `
        LDI r0, 0
        LDI r1, 1
        LDI r2, 101
loop:   ADD r0, r1
        ADDI r1, 1
        BLT r1, r2, loop
        LDI r3, 251
        MOD r0, r3
        HALT r0
`, time.Minute)
	if code != 5050%251 {
		t.Fatalf("exit = %d, want %d", code, 5050%251)
	}
}

func TestMemoryOps(t *testing.T) {
	code := runProgram(t, `
        LDI r0, 0x8000
        LDI r1, 0xDEAD
        ST r1, r0, 0
        LD r2, r0, 0
        LDI r3, 0xBEEF
        STB r3, r0, 100
        LDB r4, r0, 100
        SUB r2, r1       ; 0 if ST/LD round-tripped
        LDI r5, 0xEF
        SUB r4, r5       ; 0 if STB/LDB truncated correctly
        ADD r2, r4
        HALT r2
`, time.Minute)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestCallRetStack(t *testing.T) {
	code := runProgram(t, `
        LDI r0, 7
        CALL double
        CALL double
        HALT r0          ; 28
double: ADD r0, r0
        RET
`, time.Minute)
	if code != 28 {
		t.Fatalf("exit = %d, want 28", code)
	}
}

func TestPushPop(t *testing.T) {
	code := runProgram(t, `
        LDI r0, 11
        LDI r1, 22
        PUSH r0
        PUSH r1
        POP r2           ; 22
        POP r3           ; 11
        SUB r2, r3       ; 11
        HALT r2
`, time.Minute)
	if code != 11 {
		t.Fatalf("exit = %d, want 11", code)
	}
}

func TestRNDDeterministic(t *testing.T) {
	src := `
        LDI r1, 42
        RND r0, r1
        RND r0, r1
        RND r0, r1
        LDI r2, 1000
        MOD r0, r2
        HALT r0
`
	a := runProgram(t, src, time.Minute)
	b := runProgram(t, src, time.Minute)
	if a != b {
		t.Fatalf("RND not deterministic: %d vs %d", a, b)
	}
}

func TestBadOpcodeFaults(t *testing.T) {
	code := runProgram(t, `
        .byte 0xEE
`, time.Minute)
	if code != 0xFF {
		t.Fatalf("exit = %d, want 0xFF fault", code)
	}
}

func TestOutOfBoundsFaults(t *testing.T) {
	code := runProgram(t, `
        LDI r0, 0x7FFFFFFF
        LD r1, r0, 0
        HALT r1
`, time.Minute)
	if code != 0xFF {
		t.Fatalf("exit = %d, want 0xFF fault", code)
	}
}

func TestExecutionChargesCPUTime(t *testing.T) {
	// 100k iterations × ~3 instructions ≈ 0.3M instructions ≈ 0.3 s of
	// 1 MIPS CPU; the program must NOT finish in 0.1 s of virtual time.
	src := `
        LDI r0, 0
        LDI r1, 100000
loop:   ADDI r0, 1
        BLT r0, r1, loop
        LDI r0, 0
        HALT r0
`
	code, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	bus := ethernet.NewBus(eng)
	h := kernel.NewHost(eng, bus, 0, "t")
	lh := h.CreateLH("prog", false)
	as, _ := lh.CreateSpace(64 * 1024)
	as.WriteAt(CodeBase, code)
	p := lh.NewProcess(as.ID, BodyKind, kernel.Regs{})
	h.Start(p)
	eng.RunFor(100 * time.Millisecond)
	if p.Dead() {
		t.Fatal("program finished too fast: instructions are not charged")
	}
	eng.RunFor(2 * time.Second)
	if !p.Dead() {
		t.Fatal("program did not finish in 2s")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"FOO r1, r2",           // unknown mnemonic
		"LDI r99, 5",           // bad register
		"JMP nowhere",          // undefined label
		"LDI r1",               // missing operand
		`.ascii "unterminated`, // bad string
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestAssemblerLabelsAndData(t *testing.T) {
	code, err := Assemble(`
start:  JMP start
data:   .word 1, 2, 0xFF
        .byte 9, 10
        .space 4
        .ascii "hi"
`)
	if err != nil {
		t.Fatal(err)
	}
	// JMP imm = 5 bytes; words 12; bytes 2; space 4; ascii 2 = 25.
	if len(code) != 25 {
		t.Fatalf("code length = %d, want 25", len(code))
	}
	if code[0] != JMP {
		t.Fatal("first op not JMP")
	}
	// The label fixup must point at CodeBase.
	if got := uint32(code[1]) | uint32(code[2])<<8 | uint32(code[3])<<16 | uint32(code[4])<<24; got != CodeBase {
		t.Fatalf("label fixup = %#x, want %#x", got, CodeBase)
	}
	if !strings.HasSuffix(string(code), "hi") {
		t.Fatal("ascii data missing")
	}
}

func TestCommentsAndCharLiterals(t *testing.T) {
	code := runProgram(t, `
        ; a comment line
        LDI r0, 'A'      ; trailing comment
        HALT r0
`, time.Minute)
	if code != 'A' {
		t.Fatalf("exit = %d, want %d", code, 'A')
	}
}
