package ipc

import (
	"fmt"
	"sort"

	"vsystem/internal/params"
	"vsystem/internal/vid"
)

// PortState is the serializable kernel-side IPC state of a process: what
// migration carries to the new host when it "copies the logical host's
// state in the kernel server" (§3.1.3).
//
// The snapshot deliberately excludes the queue of delivered-but-unreceived
// requests: the paper discards those on deletion of the old copy and relies
// on sender retransmission. It includes the in-progress send transaction
// (so the process keeps retransmitting from its new host and can still
// collect the reply from the replier's cache), the request currently being
// served (so its eventual Reply carries the right transaction id), the
// per-sender duplicate-detection table and the reply cache (so
// non-idempotent operations are not re-executed when old clients
// retransmit to the new host).
type PortState struct {
	PID   vid.PID
	TxSeq uint32
	Send  *SendState
	Open  []CurState
	Last  map[vid.PID]uint32
	Cache map[vid.PID]CachedReplyState
}

// SendState is an in-progress (or completed-but-unconsumed) send
// transaction. Done with a reply covers the window where the reply arrived
// but the blocked process had not yet been resumed when the freeze took
// effect — the reply migrates with the process.
type SendState struct {
	TxID  uint32
	Dst   vid.PID
	Msg   vid.Message
	Group bool
	Done  bool
	Code  uint16
	Reply vid.Message
}

// CurState is a received request awaiting its reply.
type CurState struct {
	Src  vid.PID
	TxID uint32
	Msg  vid.Message
}

// CachedReplyState is one reply-cache entry.
type CachedReplyState struct {
	TxID uint32
	Msg  vid.Message
}

// Snapshot captures the port's migratable state. The port must belong to a
// frozen logical host (no concurrent activity); queued requests are
// dropped per §3.1.3.
func (p *Port) Snapshot() *PortState {
	st := &PortState{
		PID:   p.pid,
		TxSeq: p.txSeq,
		Last:  make(map[vid.PID]uint32, len(p.lastFrom)),
		Cache: make(map[vid.PID]CachedReplyState, len(p.replyCache)),
	}
	for k, v := range p.lastFrom {
		st.Last[k] = v
	}
	for k, v := range p.replyCache {
		st.Cache[k] = CachedReplyState{TxID: v.txid, Msg: v.msg}
	}
	if s := p.send; s != nil {
		st.Send = &SendState{
			TxID: s.txid, Dst: s.dst, Msg: s.msg, Group: s.group,
			Done: s.done, Code: s.code, Reply: s.reply,
		}
	}
	for _, r := range p.open {
		st.Open = append(st.Open, CurState{Src: r.Src, TxID: r.txid, Msg: r.Msg})
	}
	sort.Slice(st.Open, func(i, j int) bool { return st.Open[i].Src < st.Open[j].Src })
	return st
}

// ItemBytes estimates the serialized size of the state (for transfer-cost
// accounting).
func (st *PortState) ItemBytes() int {
	n := 64
	if st.Send != nil {
		n += 32 + len(st.Send.Msg.Seg)
	}
	for _, c := range st.Open {
		n += 32 + len(c.Msg.Seg)
	}
	n += 8 * len(st.Last)
	for _, c := range st.Cache {
		n += 32 + len(c.Msg.Seg)
	}
	return n
}

// RestorePort recreates a port from migrated state. If active is true and a
// send transaction was outstanding, its retransmission timer is re-armed
// immediately. During a migration the new copy is restored *quiesced*
// (active=false): while both copies exist, only the original host acts for
// the process ("continues to retransmit to its replier periodically",
// §3.1.3); the new copy's timers start at Activate, called on unfreeze.
func (e *Engine) RestorePort(st *PortState, active bool) *Port {
	if _, dup := e.ports[st.PID]; dup {
		panic(fmt.Sprintf("ipc: restore of existing port %v", st.PID))
	}
	p := e.NewPort(st.PID)
	p.txSeq = st.TxSeq
	for k, v := range st.Last {
		p.lastFrom[k] = v
	}
	for k, v := range st.Cache {
		c := &cachedReply{txid: v.TxID, msg: v.Msg, expires: e.sim.Now().Add(params.ReplyCacheTTL)}
		p.replyCache[k] = c
		p.scheduleCacheSweep(k, c)
	}
	if st.Send != nil {
		p.send = &sendTxn{
			txid: st.Send.TxID, dst: st.Send.Dst, msg: st.Send.Msg, group: st.Send.Group,
			done: st.Send.Done, code: st.Send.Code, reply: st.Send.Reply,
		}
		if active {
			p.Activate()
		}
	}
	for _, c := range st.Open {
		p.open[c.Src] = &Req{Src: c.Src, txid: c.TxID, Msg: c.Msg, from: e.nic.MAC()}
	}
	return p
}

// Activate starts (or restarts) the retransmission machinery of a restored
// port: if a send transaction is outstanding it is retransmitted at once
// and its timer re-armed. Idempotent.
func (p *Port) Activate() {
	s := p.send
	if s == nil || s.done || p.closed {
		return
	}
	s.timer.Stop()
	p.retransmit()
	p.armTimer()
}
