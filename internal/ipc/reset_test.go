package ipc

import (
	"testing"
	"time"

	"vsystem/internal/sim"
)

// TestResetDropsQueuedJobs: protocol work queued for netd before a crash
// must not execute on the restarted kernel. netd discards jobs only lazily
// (it checks down when popping), so a crash followed quickly by a restart
// would otherwise let pre-crash jobs run against fresh kernel state; Reset
// has to drain the queue.
func TestResetDropsQueuedJobs(t *testing.T) {
	r := newRig(t, 1, 1)
	e := r.hosts[0].eng

	var preCrash, postRestart bool
	e.Defer(func(*sim.Task) { preCrash = true })
	e.SetDown(true) // crash before netd pops the job
	e.Reset()       // reboot: fresh kernel, powered back on
	e.Defer(func(*sim.Task) { postRestart = true })

	r.sim.RunFor(time.Second)
	if preCrash {
		t.Fatal("job queued before the crash executed on the restarted kernel")
	}
	if !postRestart {
		t.Fatal("job queued after the restart never executed")
	}
}
