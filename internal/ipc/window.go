package ipc

import (
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Window is the pipelined bulk-transfer engine: a ring of sub-ports that
// keeps up to `size` message transactions in flight at once, so a copy
// loop (migration pre-copy rounds, the flush policy's page-out) saturates
// the wire instead of stalling for a full reply round trip between runs.
//
// A V process has at most one outstanding Send per port, so pipelining is
// built the way a V program would build it: the window owns `size`
// distinct worker ports in the caller's logical host and rotates issues
// across whichever is free. Completions are harvested in any order — a
// transaction stalled behind a retransmission never blocks the rest of
// the pipeline — and errors are sticky: the first transport failure or
// error reply is remembered and returned from the next Send or Drain.
//
// Window size 1 degenerates to the stop-and-wait copy loop the paper
// describes, which is exactly how the E10 baseline is measured.
type Window struct {
	eng   *Engine
	ports []*Port
	wait  sim.WaitQ

	inflight int
	err      error

	sends    int64
	stalls   int64
	occupSum int64 // Σ in-flight count at each issue, for mean occupancy

	onReply func(req, reply vid.Message)
}

// SetOnReply installs a completion hook, invoked during reaping for every
// transaction that completed with an OK reply, with the original request
// and its reply. The post-copy background puller uses it to install
// fetched page runs as they arrive. The hook runs on whatever task is
// driving the window and must not block (install pages, bump counters —
// never send).
func (w *Window) SetOnReply(fn func(req, reply vid.Message)) { w.onReply = fn }

// WindowStats summarizes a window's activity.
type WindowStats struct {
	// Sends counts transactions issued through the window.
	Sends int64
	// Stalls counts issue-time waits with every slot in flight (a full
	// window). A stop-and-wait window of size 1 stalls on ~every send;
	// an open window should mostly issue immediately.
	Stalls int64
	// AvgOccupancy is the mean number of in-flight transactions observed
	// at issue time (1.0 for stop-and-wait, → size as the pipe fills).
	AvgOccupancy float64
}

// NewWindow creates a bulk-transfer window of `size` worker ports owned
// by logical host lh (the caller's — for the migrator, the system logical
// host, which is never frozen). Close releases the ports.
func (e *Engine) NewWindow(lh vid.LHID, size int) *Window {
	if size < 1 {
		size = 1
	}
	w := &Window{eng: e}
	for i := 0; i < size; i++ {
		// Window worker PIDs live in a private high index range (below the
		// pager's 0xF000 block, far above real process indices); the
		// sequence advances per port so a fresh window never collides with
		// late replies addressed to a predecessor's transactions.
		pid := vid.NewPID(lh, uint16(0xE000+e.winSeq%0x0FF0))
		e.winSeq++
		p := e.NewPort(pid)
		p.winq = &w.wait
		w.ports = append(w.ports, p)
	}
	return w
}

// Size returns the window's slot count.
func (w *Window) Size() int { return len(w.ports) }

// reap harvests every completed transaction, recording the first error
// (transport failure or error reply) and freeing the slots.
func (w *Window) reap(t *sim.Task) {
	for _, p := range w.ports {
		if p.send == nil || !p.send.done {
			continue
		}
		req := p.send.msg
		reply, err := p.AwaitReply(t) // completed: returns without blocking
		w.inflight--
		if err == nil && !reply.OK() {
			err = reply.Err()
		}
		if err != nil && w.err == nil {
			w.err = err
		}
		if err == nil && w.onReply != nil {
			w.onReply(req, reply)
		}
	}
}

// Send issues one transaction through the window, blocking only while all
// slots are in flight. The calling task is charged for fragmentation of
// msg.Seg exactly as a blocking Send would charge it; what pipelining
// overlaps is the destination's processing and the reply latency. A
// sticky error from an earlier transaction is returned immediately (the
// new message is not sent).
func (w *Window) Send(t *sim.Task, dst vid.PID, msg vid.Message) error {
	var free *Port
	for {
		w.reap(t)
		if w.err != nil {
			return w.err
		}
		for _, p := range w.ports {
			if p.send == nil {
				free = p
				break
			}
		}
		if free != nil {
			break
		}
		w.stalls++
		w.eng.stats.WindowStalls++
		w.wait.Wait(t)
	}
	free.StartSend(t, dst, msg)
	w.inflight++
	w.sends++
	w.occupSum += int64(w.inflight)
	w.eng.stats.WindowSends++
	w.eng.trace.Publish(trace.Event{
		At: w.eng.sim.Now(), Host: uint16(w.eng.nic.MAC()),
		Kind: trace.EvCopyWindow, LH: dst.LH(), Size: w.inflight,
	})
	return nil
}

// Drain blocks until every in-flight transaction has completed, returning
// the sticky error if any transaction failed.
func (w *Window) Drain(t *sim.Task) error {
	for {
		w.reap(t)
		if w.inflight == 0 {
			return w.err
		}
		w.wait.Wait(t)
	}
}

// Stats returns the window's activity counters.
func (w *Window) Stats() WindowStats {
	s := WindowStats{Sends: w.sends, Stalls: w.stalls}
	if w.sends > 0 {
		s.AvgOccupancy = float64(w.occupSum) / float64(w.sends)
	}
	return s
}

// Close releases the window's ports; any still-in-flight transactions are
// abandoned (their timers stop with the ports).
func (w *Window) Close() {
	for _, p := range w.ports {
		p.Close()
	}
}
