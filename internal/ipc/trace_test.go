package ipc

import (
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// attachTrace wires a trace bus to the rig's segment and every engine.
func (r *rig) attachTrace() *trace.Bus {
	tb := trace.NewBus()
	r.bus.SetTraceBus(tb)
	for _, h := range r.hosts {
		h.eng.SetTraceBus(tb)
	}
	return tb
}

// TestBindingPromptedResendCounted is the regression test for the
// retransmit undercount: a send to an unknown binding transmits nothing
// (the locate broadcast goes out instead), and the arriving KLocateResp
// prompts the resend through Engine.retryWaiters — a path that used to
// bypass the Retransmits counter, which only the timer path incremented.
// Every executed resend must be counted, whichever path prompted it.
func TestBindingPromptedResendCounted(t *testing.T) {
	r := newRig(t, 3, 21)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 2)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[2].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)

	var err error
	var rtt time.Duration
	r.sim.Spawn("client", func(tk *sim.Task) {
		start := tk.Now()
		_, err = client.Send(tk, server.PID(), vid.Message{Op: testOp})
		rtt = tk.Now().Sub(start)
	})
	r.sim.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("send failed: %v", err)
	}
	// The transaction must have completed before the first retransmission
	// interval elapsed, so the only resend was the binding-prompted one.
	if rtt >= params.RetransmitInterval {
		t.Fatalf("rtt %v not inside the first retransmit interval; test premise broken", rtt)
	}
	st := r.hosts[0].eng.Stats()
	if st.Locates == 0 {
		t.Fatal("no locate was broadcast; test premise broken")
	}
	if st.Retransmits == 0 {
		t.Fatal("binding-prompted resend was not counted in Stats.Retransmits")
	}
}

// TestTraceCountsMatchStats injects frame loss and a corrupt frame, then
// checks every trace-bus event counter against the corresponding Stats
// counter: the trace layer may have no blind spots — dropped frames,
// corrupt frames, and NACK-prompted fragment resends all publish events.
func TestTraceCountsMatchStats(t *testing.T) {
	r := newRig(t, 2, 22)
	tb := r.attachTrace()
	r.bus.SetLoss(ethernet.RandomLoss(r.sim, 0.15))
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)

	// A raw station feeding garbage exercises the corrupt-frame drop path
	// (loss-injected frames vanish on the wire and never reach a host).
	raw := r.bus.Attach(ethernet.MAC(99))
	r.sim.After(50*time.Millisecond, func() {
		raw.StartSend(ethernet.Frame{Dst: 2, Payload: []byte{0xFF, 0x00, 0x01}}, nil)
	})

	done := 0
	r.sim.Spawn("client", func(tk *sim.Task) {
		for i := 0; i < 8; i++ {
			// Fragmented segments force NACK repair under loss.
			if _, err := client.Send(tk, server.PID(), vid.Message{Op: testOp, Seg: make([]byte, 8*1024)}); err == nil {
				done++
			}
		}
	})
	r.sim.RunFor(5 * time.Minute)
	if done != 8 {
		t.Fatalf("only %d/8 transactions completed", done)
	}

	var sum Stats
	for _, h := range r.hosts {
		st := h.eng.Stats()
		sum.TxPackets += st.TxPackets
		sum.RxPackets += st.RxPackets
		sum.RxCorrupt += st.RxCorrupt
		sum.Retransmits += st.Retransmits
		sum.ReplyPendings += st.ReplyPendings
		sum.Locates += st.Locates
		sum.LocalDeliveries += st.LocalDeliveries
	}
	checks := []struct {
		name  string
		kind  trace.Kind
		stats int64
	}{
		{"tx", trace.EvPktTx, sum.TxPackets},
		{"rx", trace.EvPktRx, sum.RxPackets},
		{"drop", trace.EvPktDrop, sum.RxCorrupt},
		{"retx", trace.EvPktRetx, sum.Retransmits},
		{"reply-pending", trace.EvReplyPending, sum.ReplyPendings},
		{"locate", trace.EvLocate, sum.Locates},
		{"local", trace.EvPktLocal, sum.LocalDeliveries},
	}
	for _, c := range checks {
		if got := tb.Count(c.kind); got != c.stats {
			t.Errorf("trace %s events = %d, Stats counter = %d", c.name, got, c.stats)
		}
	}
	bs := r.bus.Stats()
	if got := tb.Count(trace.EvFrameTx); got != bs.Frames {
		t.Errorf("frame-tx events = %d, bus frames = %d", got, bs.Frames)
	}
	if got := tb.Count(trace.EvFrameDrop); got != bs.Dropped {
		t.Errorf("frame-drop events = %d, bus dropped = %d", got, bs.Dropped)
	}
	if sum.RxCorrupt == 0 {
		t.Error("corrupt-frame path was not exercised")
	}
	if sum.Retransmits == 0 {
		t.Error("no retransmissions under 15% loss; test premise broken")
	}
}

// TestRetransmitCountedOncePerResend pins down double-counting: with a
// server that never answers until the second interval, the timer path
// drives resends, and each executed resend must bump the counter exactly
// once (trace retx events and the Stats counter must agree).
func TestRetransmitCountedOncePerResend(t *testing.T) {
	r := newRig(t, 2, 23)
	tb := r.attachTrace()
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	r.sim.Spawn("slow", func(tk *sim.Task) {
		req := server.Receive(tk)
		tk.Sleep(3 * params.RetransmitInterval)
		server.Reply(tk, req, req.Msg)
	})
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		_, err = client.Send(tk, server.PID(), vid.Message{Op: testOp})
	})
	r.sim.RunFor(10 * time.Second)
	if err != nil {
		t.Fatalf("send failed: %v", err)
	}
	retx := r.hosts[0].eng.Stats().Retransmits + r.hosts[1].eng.Stats().Retransmits
	if retx == 0 {
		t.Fatal("no timer-driven retransmissions; test premise broken")
	}
	if got := tb.Count(trace.EvPktRetx); got != retx {
		t.Fatalf("trace retx events = %d, Stats.Retransmits = %d", got, retx)
	}
}
