package ipc

import (
	"fmt"
	"sort"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/packet"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Port is one process's attachment to the IPC engine: the kernel-side state
// of its current send transaction and its incoming-request queue. All
// blocking calls take the process's task.
//
// V semantics: a process has at most one outstanding Send (it blocks
// awaiting the reply), and serves requests one at a time — Receive then
// Reply. The port survives the process's migration as serializable state
// (see Snapshot/RestorePort).
type Port struct {
	eng *Engine
	pid vid.PID

	txSeq     uint32
	send      *sendTxn
	replyWait sim.WaitQ
	winq      *sim.WaitQ // owning bulk-transfer window's harvest queue, if any

	rq      []*Req
	open    map[vid.PID]*Req // received, not yet replied; one per sender
	reqWait sim.WaitQ

	lastFrom   map[vid.PID]uint32
	replyCache map[vid.PID]*cachedReply
	closed     bool
}

type sendTxn struct {
	txid   uint32
	dst    vid.PID
	msg    vid.Message
	group  bool
	done   bool
	reply  vid.Message
	code   uint16 // failure code when done && code != OK
	silent int    // retransmissions since last evidence of life
	timer  sim.Timer

	// Failure-detector evidence: the station the request was last
	// transmitted to (0 until a unicast route resolved) and the last
	// moment the transaction had evidence the destination was alive.
	mac       ethernet.MAC
	lastAlive sim.Time

	// Gather mode (StartGather): collect every reply that arrives within
	// the window instead of completing on the first one.
	gather  bool
	replies []GatherReply
	seen    map[vid.PID]bool // responders already recorded (dedup)
	wtimer  sim.Timer        // window expiry
}

// GatherReply is one responder's answer to a gathering send.
type GatherReply struct {
	Src vid.PID
	Msg vid.Message
}

// Req is a received request awaiting its reply. Servers that defer replies
// (for example the program manager holding a wait-for-program-exit request)
// hold several Reqs open at once, one per sender.
type Req struct {
	Src  vid.PID
	Msg  vid.Message
	txid uint32
	from ethernet.MAC
}

// TxID exposes the request's transaction id — stable across the sender's
// retransmissions, so servers can derive per-transaction deterministic
// choices from it (e.g. a response-dally slot).
func (r *Req) TxID() uint32 { return r.txid }

type cachedReply struct {
	txid    uint32
	msg     vid.Message
	expires sim.Time
}

// NewPort registers a port for the given PID. The PID's index must be a
// concrete process index (well-known indices are aliases resolved by the
// kernel, not real ports) unless the port is a host server registered by
// the kernel itself.
// HasPort reports whether a port is currently registered under the PID.
// Allocators of private port-id ranges (the pager's 0xF000 block) use it
// to skip ids whose previous incarnation still has a transaction parked.
func (e *Engine) HasPort(pid vid.PID) bool {
	_, ok := e.ports[pid]
	return ok
}

func (e *Engine) NewPort(pid vid.PID) *Port {
	if _, dup := e.ports[pid]; dup {
		panic(fmt.Sprintf("ipc: duplicate port %v", pid))
	}
	p := &Port{
		eng:        e,
		pid:        pid,
		open:       make(map[vid.PID]*Req),
		lastFrom:   make(map[vid.PID]uint32),
		replyCache: make(map[vid.PID]*cachedReply),
	}
	e.ports[pid] = p
	e.portList = append(e.portList, p)
	return p
}

// Close unregisters the port and stops its timers. Any queued requests are
// discarded; senders recover by retransmission (§3.1.3: "all queued
// messages are discarded and the remote senders are prompted to
// retransmit").
func (p *Port) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.send != nil {
		p.send.timer.Stop()
		p.send.wtimer.Stop()
	}
	delete(p.eng.ports, p.pid)
	for i, q := range p.eng.portList {
		if q == p {
			p.eng.portList = append(p.eng.portList[:i], p.eng.portList[i+1:]...)
			break
		}
	}
}

// PID returns the port's process identifier.
func (p *Port) PID() vid.PID { return p.pid }

// --------------------------------------------------------------- sending

// StartSend begins a message transaction to dst without waiting for the
// reply. The calling task is charged for any bulk fragmentation. A port
// has at most one outstanding send.
func (p *Port) StartSend(t *sim.Task, dst vid.PID, msg vid.Message) {
	if p.send != nil {
		panic(fmt.Sprintf("ipc: %v StartSend with send outstanding", p.pid))
	}
	if dst.IsGroup() && len(msg.Seg) > packet.InlineSegMax {
		panic("ipc: group send with fragmented segment")
	}
	if len(msg.Seg) > vid.SegMax {
		panic(fmt.Sprintf("ipc: segment %d exceeds SegMax", len(msg.Seg)))
	}
	p.txSeq++
	s := &sendTxn{txid: p.txSeq, dst: dst, msg: msg, group: dst.IsGroup(), lastAlive: t.Now()}
	p.send = s
	p.transmitOn(t, false)
	p.armTimer()
}

// StartGather begins a gathering send: the request is transmitted (and
// retransmitted) exactly like StartSend, but instead of completing on the
// first reply the transaction collects every distinct responder's reply
// until the window elapses. This is the generalized group-send path the
// scheduling layer uses to build a cluster-load view from one multicast
// (§2.1); it also bounds a unicast probe of a possibly dead host, where a
// plain Send would ride out its full abort timeout. The first-reply fast
// path (StartSend/AwaitReply) is untouched.
//
// Replies must fit a single frame (selection answers are word-only);
// fragmented replies from concurrent responders would interleave in one
// reassembly window.
func (p *Port) StartGather(t *sim.Task, dst vid.PID, msg vid.Message, window time.Duration) {
	if p.send != nil {
		panic(fmt.Sprintf("ipc: %v StartGather with send outstanding", p.pid))
	}
	if len(msg.Seg) > packet.InlineSegMax {
		panic("ipc: gather send with fragmented segment")
	}
	p.txSeq++
	s := &sendTxn{
		txid: p.txSeq, dst: dst, msg: msg, lastAlive: t.Now(),
		group: dst.IsGroup(), gather: true, seen: make(map[vid.PID]bool),
	}
	p.send = s
	p.transmitOn(t, false)
	p.armTimer()
	s.wtimer = p.eng.sim.After(window, func() { p.endGather(s) })
}

// endGather closes a gathering send when its window elapses.
func (p *Port) endGather(s *sendTxn) {
	if p.send != s || s.done || p.closed {
		return
	}
	s.done = true
	s.timer.Stop()
	if len(s.replies) == 0 {
		s.code = vid.CodeTimeout
	}
	p.replyWait.WakeAll()
}

// addGatherReply records one responder's reply, ignoring duplicates (a
// retransmitted query answered from the responder's reply cache).
func (p *Port) addGatherReply(src vid.PID, msg vid.Message) {
	s := p.send
	if s == nil || s.done || !s.gather || s.seen[src] {
		return
	}
	s.seen[src] = true
	s.replies = append(s.replies, GatherReply{Src: src, Msg: msg})
}

// AwaitGather blocks until the gather window closes (or the transaction
// fails outright, e.g. no-process on a unicast probe), returning the
// collected replies in arrival order. An empty gather reports timeout.
func (p *Port) AwaitGather(t *sim.Task) ([]GatherReply, error) {
	s := p.send
	if s == nil || !s.gather {
		panic(fmt.Sprintf("ipc: %v AwaitGather without gathering send", p.pid))
	}
	for !s.done {
		p.replyWait.Wait(t)
	}
	p.send = nil
	if len(s.replies) == 0 && s.code != vid.CodeOK {
		return nil, vid.CodeError(s.code)
	}
	return s.replies, nil
}

// armTimer schedules the retransmission/abort timer for the current send.
func (p *Port) armTimer() {
	s := p.send
	s.timer = p.eng.sim.After(params.RetransmitInterval, func() { p.tick(s) })
}

// tick is one retransmission interval elapsing with no completion.
func (p *Port) tick(s *sendTxn) {
	if p.send != s || s.done || p.closed {
		return
	}
	s.silent++
	if !s.group && !s.gather && s.mac != 0 && p.eng.noteSilence(p, s) {
		// The destination's station is suspected dead: the transaction was
		// failed fast with CodeHostDown instead of riding out the abort.
		return
	}
	limit := params.AbortAfterRetries
	if s.group {
		limit = params.GroupAbortAfterRetries
	}
	if s.silent > limit && !s.gather {
		// Gathering sends never abort on silence: the window timer owns
		// their termination (an empty gather reports timeout there).
		p.failSend(s.txid, vid.CodeTimeout)
		return
	}
	if s.silent >= params.LocateAfterRetries && !s.group && !s.dst.IsGroup() && !p.eng.NoRebind {
		// §3.1.4: after a small number of unanswered retransmissions the
		// cache entry for the logical host is invalidated and the
		// reference is re-derived by broadcast.
		p.eng.InvalidateCache(s.dst.LH())
	}
	p.retransmit()
	p.armTimer()
}

// retransmit re-sends the current request via the network daemon. Both the
// timer path (tick) and the binding-prompted path (Engine.retryWaiters) go
// through here, so the resend is counted exactly once, when it actually
// executes.
func (p *Port) retransmit() {
	s := p.send
	if s == nil || s.done {
		return
	}
	p.eng.jobs.Push(job{fn: func(t *sim.Task) {
		if p.send == s && !s.done && !p.closed {
			p.eng.stats.Retransmits++
			p.eng.publish(trace.EvPktRetx, &packet.Packet{
				Kind: packet.KRequest, TxID: s.txid, Src: p.pid, Dst: s.dst,
			})
			p.transmitOn(t, true)
		}
	}})
}

// transmitOn routes and transmits the current request. retrans indicates a
// retransmission, for which a fragmented segment resends only its summary
// (the receiver NACKs any missing fragments).
func (p *Port) transmitOn(t *sim.Task, retrans bool) {
	s := p.send
	pkt := &packet.Packet{Kind: packet.KRequest, TxID: s.txid, Src: p.pid, Dst: s.dst, Msg: s.msg}
	if s.group {
		// Wire multicast (member stations' receive filters accept it)
		// plus fan-out to local members.
		p.eng.cpu.Use(t, params.SmallPktSendCPU, params.PrioKernel)
		p.eng.transmitFrame(t, pkt, ethernet.Multicast(uint16(s.dst.LH())), false)
		local := *pkt
		p.eng.emitLocal(&local)
		return
	}
	// s.mac keeps the last station actually transmitted to. It survives a
	// route() miss on purpose: after LocateAfterRetries the binding is
	// invalidated, and continued silence must still condemn the station we
	// were talking to. A transaction that never resolved a route keeps
	// mac == 0 and can only abort by timeout ("unlocated" is not "dead").
	mac, local, ok := p.eng.route(s.dst)
	if !ok {
		return // locate broadcast in flight; retry on next tick
	}
	if local {
		cp := *pkt
		p.eng.emitLocal(&cp)
		return
	}
	s.mac = mac
	key := reasmKey{src: p.pid, dst: s.dst, txid: s.txid, kind: packet.KRequest}
	if fs := p.eng.txBuf[key]; fs != nil && retrans {
		fs.dst = mac
		p.eng.cpu.Use(t, params.SmallPktSendCPU, params.PrioKernel)
		p.eng.transmitFrame(t, fs.summary, mac, false)
		return
	}
	if packet.NumFrags(len(s.msg.Seg)) > 0 {
		p.eng.sendFragged(t, pkt, mac)
		return
	}
	p.eng.sendNow(t, pkt, mac)
}

// AwaitReply blocks until the outstanding send completes, returning the
// reply message. On failure the error is a vid.CodeError (timeout,
// no-process, aborted).
func (p *Port) AwaitReply(t *sim.Task) (vid.Message, error) {
	s := p.send
	if s == nil {
		panic(fmt.Sprintf("ipc: %v AwaitReply without send", p.pid))
	}
	for !s.done {
		p.replyWait.Wait(t)
	}
	p.send = nil
	if s.code != vid.CodeOK {
		return vid.Message{}, vid.CodeError(s.code)
	}
	return s.reply, nil
}

// Sending reports whether a send transaction is outstanding.
func (p *Port) Sending() bool { return p.send != nil }

// Send performs a complete blocking message transaction.
func (p *Port) Send(t *sim.Task, dst vid.PID, msg vid.Message) (vid.Message, error) {
	p.StartSend(t, dst, msg)
	return p.AwaitReply(t)
}

// completeSend records the reply and wakes the sender.
func (p *Port) completeSend(msg vid.Message) {
	s := p.send
	if s == nil || s.done {
		return
	}
	s.done = true
	s.reply = msg
	s.timer.Stop()
	s.wtimer.Stop()
	delete(p.eng.txBuf, reasmKey{src: p.pid, dst: s.dst, txid: s.txid, kind: packet.KRequest})
	p.replyWait.WakeAll()
	if p.winq != nil {
		p.winq.WakeAll()
	}
}

// failSend aborts the matching transaction with the given code.
func (p *Port) failSend(txid uint32, code uint16) {
	s := p.send
	if s == nil || s.done || s.txid != txid {
		return
	}
	s.done = true
	s.code = code
	s.timer.Stop()
	s.wtimer.Stop()
	delete(p.eng.txBuf, reasmKey{src: p.pid, dst: s.dst, txid: s.txid, kind: packet.KRequest})
	p.replyWait.WakeAll()
	if p.winq != nil {
		p.winq.WakeAll()
	}
}

// notePending resets the abort countdown: the destination is alive but not
// ready (busy, queued, or frozen). Group transactions ignore reply-pending:
// a member that received the query but declined to answer must not keep
// the sender waiting past its group timeout. Gathering sends ignore it too
// — their window is fixed regardless of responder liveness.
func (p *Port) notePending(txid uint32) {
	if s := p.send; s != nil && !s.done && s.txid == txid && !s.group && !s.gather {
		s.silent = 0
		s.lastAlive = p.eng.sim.Now()
	}
}

// -------------------------------------------------------------- receiving

type reqClass int

const (
	reqNew reqClass = iota
	reqDuplicatePending
	reqDuplicateReplied
	reqStale
)

// classify decides how to treat an arriving request relative to what this
// port has already seen from the sender.
func (p *Port) classify(src vid.PID, txid uint32) reqClass {
	last, seen := p.lastFrom[src]
	if !seen || txid > last {
		return reqNew
	}
	if txid == last {
		if c := p.replyCache[src]; c != nil && c.txid == txid {
			return reqDuplicateReplied
		}
		return reqDuplicatePending
	}
	return reqStale
}

// acceptRequest queues a new request and wakes a receiver.
func (p *Port) acceptRequest(src vid.PID, txid uint32, msg vid.Message, from ethernet.MAC) {
	p.lastFrom[src] = txid
	p.rq = append(p.rq, &Req{Src: src, txid: txid, Msg: msg, from: from})
	p.reqWait.WakeOne()
}

// resendCachedReply answers a duplicate request from the reply cache. The
// retention timeout is reset: a retransmitting sender (for example one
// frozen mid-migration, §3.1.3) keeps the reply alive until it can accept
// it.
func (p *Port) resendCachedReply(src vid.PID, from ethernet.MAC) {
	c := p.replyCache[src]
	if c == nil {
		return
	}
	c.expires = p.eng.sim.Now().Add(params.ReplyCacheTTL)
	p.scheduleCacheSweep(src, c)
	p.eng.jobs.Push(job{fn: func(t *sim.Task) {
		p.emitReply(t, src, c.txid, c.msg, from)
	}})
}

// scheduleCacheSweep arranges removal of a cache entry at its (renewable)
// expiry.
func (p *Port) scheduleCacheSweep(src vid.PID, c *cachedReply) {
	now := p.eng.sim.Now()
	p.eng.sim.After(c.expires.Sub(now), func() {
		if p.replyCache[src] != c {
			return
		}
		if p.eng.sim.Now() >= c.expires {
			delete(p.replyCache, src)
			return
		}
		p.scheduleCacheSweep(src, c)
	})
}

// Receive blocks until a request arrives. The request stays open (further
// retransmissions from its sender get reply-pending packets) until Reply.
func (p *Port) Receive(t *sim.Task) *Req {
	for len(p.rq) == 0 {
		p.reqWait.Wait(t)
	}
	return p.take()
}

// ReceiveTimeout is Receive with a deadline; nil if it expired.
func (p *Port) ReceiveTimeout(t *sim.Task, d time.Duration) *Req {
	deadline := t.Now().Add(d)
	for len(p.rq) == 0 {
		remain := deadline.Sub(t.Now())
		if remain <= 0 {
			return nil
		}
		if p.reqWait.WaitTimeout(t, remain) == sim.WakeTimeout && len(p.rq) == 0 {
			return nil
		}
	}
	return p.take()
}

func (p *Port) take() *Req {
	r := p.rq[0]
	p.rq = p.rq[1:]
	p.open[r.Src] = r
	return r
}

// Pending reports the number of queued (unreceived) requests.
func (p *Port) Pending() int { return len(p.rq) }

// Serving reports whether any received request awaits its Reply.
func (p *Port) Serving() bool { return len(p.open) > 0 }

// Reply completes a received request. The reply is cached so duplicate
// retransmissions (including from a sender recovering after migration) can
// be answered without re-executing the operation.
func (p *Port) Reply(t *sim.Task, r *Req, msg vid.Message) {
	if p.open[r.Src] == r {
		delete(p.open, r.Src)
	}
	if last := p.lastFrom[r.Src]; last == r.txid {
		c := &cachedReply{txid: r.txid, msg: msg, expires: t.Now().Add(params.ReplyCacheTTL)}
		p.replyCache[r.Src] = c
		p.scheduleCacheSweep(r.Src, c)
	}
	p.emitReply(t, r.Src, r.txid, msg, r.from)
}

// emitReply routes and transmits a reply.
func (p *Port) emitReply(t *sim.Task, dst vid.PID, txid uint32, msg vid.Message, lastFrom ethernet.MAC) {
	pkt := &packet.Packet{Kind: packet.KReply, TxID: txid, Src: p.pid, Dst: dst, Msg: msg}
	mac, local, ok := p.eng.route(dst)
	if !ok {
		// Sender location unknown (it migrated and our cache was
		// invalidated): fall back to where the request came from; a
		// duplicate request will refresh the route.
		mac = lastFrom
		local = mac == p.eng.nic.MAC()
	}
	if local {
		cp := *pkt
		p.eng.emitLocal(&cp)
		return
	}
	if packet.NumFrags(len(msg.Seg)) > 0 {
		p.eng.sendFragged(t, pkt, mac)
		return
	}
	p.eng.sendNow(t, pkt, mac)
}

// OpenRequest returns the open (received, unreplied) request from the given
// sender, if any. Used after a port restore to re-derive request handles.
func (p *Port) OpenRequest(src vid.PID) *Req { return p.open[src] }

// Drop abandons a received request without replying — a group member
// declining to answer a group query (host selection expects only willing
// hosts to respond, §2.1). The sender completes via another member's reply
// or aborts on its group timeout; duplicates of the dropped request are
// answered with reply-pending.
func (p *Port) Drop(r *Req) {
	if p.open[r.Src] == r {
		delete(p.open, r.Src)
	}
}

// OpenRequests returns all open (received, unreplied) requests, ordered by
// sender for determinism. A restored server body uses this to finish
// requests that were mid-service when its logical host migrated.
func (p *Port) OpenRequests() []*Req {
	out := make([]*Req, 0, len(p.open))
	for _, r := range p.open {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}
