package ipc

import (
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// TestGatherCollectsAllReplies sends to a group in gather mode and checks
// that every member's reply is collected, in arrival order — unlike the
// plain group Send, where the first reply wins and the rest are discarded.
func TestGatherCollectsAllReplies(t *testing.T) {
	r := newRig(t, 4, 31)
	group := vid.GroupProgramManagers
	lhA := vid.LHID(10)
	r.place(lhA, 0)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	delays := []time.Duration{30 * time.Millisecond, 5 * time.Millisecond, 60 * time.Millisecond}
	for i := 1; i < 4; i++ {
		lh := vid.LHID(20 + i)
		r.place(lh, i)
		p := r.hosts[i].eng.NewPort(vid.NewPID(lh, 16))
		r.hosts[i].join(group, p.PID())
		d := delays[i-1]
		id := uint32(i)
		r.sim.Spawn("member", func(tk *sim.Task) {
			for {
				req := p.Receive(tk)
				tk.Sleep(d)
				m := req.Msg
				m.W[0] = id
				p.Reply(tk, req, m)
			}
		})
	}
	var rs []GatherReply
	var err error
	var elapsed time.Duration
	r.sim.Spawn("client", func(tk *sim.Task) {
		start := tk.Now()
		client.StartGather(tk, group, vid.Message{Op: testOp}, 200*time.Millisecond)
		rs, err = client.AwaitGather(tk)
		elapsed = tk.Now().Sub(start)
	})
	r.sim.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("AwaitGather: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("gathered %d replies, want 3", len(rs))
	}
	// Arrival order follows the members' response delays: 5, 30, 60 ms.
	want := []uint32{2, 1, 3}
	seen := map[vid.PID]bool{}
	for i, gr := range rs {
		if gr.Msg.W[0] != want[i] {
			t.Errorf("reply %d from member %d, want member %d", i, gr.Msg.W[0], want[i])
		}
		if seen[gr.Src] {
			t.Errorf("duplicate source %v in gather results", gr.Src)
		}
		seen[gr.Src] = true
	}
	// The window must run to completion even after all members answered.
	if elapsed < 200*time.Millisecond {
		t.Fatalf("gather closed after %v, before its 200 ms window", elapsed)
	}
}

// TestGatherDedupsDuplicateReplies injects a second copy of a member's
// reply mid-window (as a retransmission-prompted reply-cache resend would)
// and checks the per-source dedup keeps only the first.
func TestGatherDedupsDuplicateReplies(t *testing.T) {
	r := newRig(t, 2, 32)
	group := vid.GroupProgramManagers
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	r.hosts[1].join(group, server.PID())
	echoServer(r.sim, server)

	var rs []GatherReply
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		client.StartGather(tk, group, vid.Message{Op: testOp, W: [6]uint32{41}}, 200*time.Millisecond)
		rs, err = client.AwaitGather(tk)
	})
	// Well inside the window, after the genuine reply has arrived.
	r.sim.After(100*time.Millisecond, func() {
		client.addGatherReply(server.PID(), vid.Message{Op: testOp, W: [6]uint32{99}})
	})
	r.sim.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("AwaitGather: %v", err)
	}
	if len(rs) != 1 {
		t.Fatalf("gathered %d replies, want 1 (duplicate not deduped)", len(rs))
	}
	if rs[0].Msg.W[0] != 42 {
		t.Fatalf("kept reply W0 = %d, want the first arrival (42)", rs[0].Msg.W[0])
	}
}

// TestGatherEmptyWindowTimesOut checks that a gather with no responders
// reports a timeout once — and only once — its window elapses.
func TestGatherEmptyWindowTimesOut(t *testing.T) {
	r := newRig(t, 2, 33)
	lhA := vid.LHID(10)
	r.place(lhA, 0)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	const window = 150 * time.Millisecond
	var rs []GatherReply
	var err error
	var elapsed time.Duration
	r.sim.Spawn("client", func(tk *sim.Task) {
		start := tk.Now()
		client.StartGather(tk, vid.GroupProgramManagers, vid.Message{Op: testOp}, window)
		rs, err = client.AwaitGather(tk)
		elapsed = tk.Now().Sub(start)
	})
	r.sim.RunFor(5 * time.Second)
	if err == nil {
		t.Fatalf("empty gather succeeded with %d replies", len(rs))
	}
	if elapsed < window || elapsed > window+time.Second {
		t.Fatalf("empty gather closed after %v, want ≈%v", elapsed, window)
	}
}

// TestGatherUnicastProbe uses gather mode against a single process — the
// scheduling layer's bounded probe: one reply, and the caller regains
// control when the window closes instead of riding the full retransmission
// schedule of a plain Send to a dead host.
func TestGatherUnicastProbe(t *testing.T) {
	r := newRig(t, 2, 34)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)
	var rs []GatherReply
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		client.StartGather(tk, server.PID(), vid.Message{Op: testOp, W: [6]uint32{41}}, 100*time.Millisecond)
		rs, err = client.AwaitGather(tk)
	})
	r.sim.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("AwaitGather: %v", err)
	}
	if len(rs) != 1 || rs[0].Msg.W[0] != 42 {
		t.Fatalf("unicast gather = %v, want one echo reply", rs)
	}
}

// TestBindingCacheTraceMatchesStats drives the binding cache through
// misses, hits, and an explicit invalidation, then checks that the trace
// bus saw exactly as many events as the Stats counters recorded — the
// cache instrumentation may have no blind spots.
func TestBindingCacheTraceMatchesStats(t *testing.T) {
	r := newRig(t, 2, 35)
	tb := r.attachTrace()
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)

	send := func(tk *sim.Task) {
		if _, err := client.Send(tk, server.PID(), vid.Message{Op: testOp}); err != nil {
			t.Errorf("send: %v", err)
		}
	}
	r.sim.Spawn("client", func(tk *sim.Task) {
		for i := 0; i < 5; i++ {
			send(tk)
		}
	})
	r.sim.RunFor(5 * time.Second)

	// Force a re-locate: the next send must miss again.
	r.hosts[0].eng.InvalidateCache(lhB)
	r.sim.Spawn("client2", func(tk *sim.Task) { send(tk) })
	r.sim.RunFor(5 * time.Second)

	var sum Stats
	for _, h := range r.hosts {
		st := h.eng.Stats()
		sum.BindingHits += st.BindingHits
		sum.BindingMisses += st.BindingMisses
		sum.BindingInvalidations += st.BindingInvalidations
	}
	checks := []struct {
		name  string
		kind  trace.Kind
		stats int64
	}{
		{"bind-hit", trace.EvBindHit, sum.BindingHits},
		{"bind-miss", trace.EvBindMiss, sum.BindingMisses},
		{"bind-invalidate", trace.EvBindInvalidate, sum.BindingInvalidations},
	}
	for _, c := range checks {
		if got := tb.Count(c.kind); got != c.stats {
			t.Errorf("trace %s events = %d, Stats counter = %d", c.name, got, c.stats)
		}
		if c.stats == 0 {
			t.Errorf("%s path was not exercised", c.name)
		}
	}
	if st := r.hosts[0].eng.Stats(); st.BindingInvalidations != 1 {
		t.Errorf("client invalidations = %d, want exactly the explicit one", st.BindingInvalidations)
	}
	// Invalidating an absent binding neither counts nor traces.
	before := tb.Count(trace.EvBindInvalidate)
	r.hosts[0].eng.InvalidateCache(vid.LHID(777))
	if tb.Count(trace.EvBindInvalidate) != before {
		t.Error("invalidating an uncached binding published a trace event")
	}
}

// TestBindingCacheLRUEviction fills the cache past its capacity and checks
// the bound holds, evictions are counted, and recency decides the victim.
func TestBindingCacheLRUEviction(t *testing.T) {
	r := newRig(t, 1, 36)
	e := r.hosts[0].eng
	cap := params.BindingCacheCap
	for i := 0; i < cap; i++ {
		e.cacheInsert(vid.LHID(1000+i), ethernet.MAC(7))
	}
	if e.CacheLen() != cap {
		t.Fatalf("cache holds %d bindings, want %d", e.CacheLen(), cap)
	}
	// Refresh the oldest entry; the next insert must evict the runner-up.
	e.cacheInsert(vid.LHID(1000), ethernet.MAC(8))
	e.cacheInsert(vid.LHID(2000), ethernet.MAC(9))
	if e.CacheLen() != cap {
		t.Fatalf("cache grew to %d bindings, capacity is %d", e.CacheLen(), cap)
	}
	if st := e.Stats(); st.BindingEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.BindingEvictions)
	}
	if mac, ok := e.CacheLookup(vid.LHID(1000)); !ok || mac != 8 {
		t.Error("refreshed entry was evicted (LRU recency not honored)")
	}
	if _, ok := e.CacheLookup(vid.LHID(1001)); ok {
		t.Error("least recently used entry survived past capacity")
	}
	if _, ok := e.CacheLookup(vid.LHID(2000)); !ok {
		t.Error("newest entry missing after insert")
	}
}
