// Package ipc implements the inter-kernel communication engine of the
// simulated V-System: network-transparent Send/Receive/Reply transactions
// between processes named by structured PIDs, with the mechanisms the
// paper's migration design depends on:
//
//   - retransmission with abort timeouts, and reply-pending packets that
//     suspend rather than abort operations on busy or frozen destinations
//     (§3.1.3);
//   - reply caches, so a replier can satisfy duplicate requests — which is
//     how a migrated process recovers a reply that was discarded while its
//     logical host was frozen;
//   - a per-host cache of logical-host → physical-host bindings, refreshed
//     by broadcast locate requests, incoming traffic, and new-binding
//     notices — the reference-rebinding mechanism of §3.1.4;
//   - process-group sends (broadcast on the wire, fanned out to local
//     members), used for decentralized host selection (§2.1);
//   - fragmentation of large segments into 1 KB frames with selective
//     NACK-based repair, modeling V's multi-packet bulk transfers.
//
// One Engine instance exists per physical host. It owns a "netd" task that
// models the kernel's network-input processing, charging CPU per packet at
// kernel priority.
package ipc

import (
	"fmt"
	"sort"
	"time"

	"vsystem/internal/cpu"
	"vsystem/internal/ethernet"
	"vsystem/internal/packet"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// Resolver is the kernel-side view the engine needs to route and deliver.
type Resolver interface {
	// LHResident reports whether the logical host currently resides on
	// this physical host.
	LHResident(lh vid.LHID) bool
	// Frozen reports whether a resident logical host is frozen.
	Frozen(lh vid.LHID) bool
	// WellKnown maps a well-known local index (kernel server, program
	// manager) of a resident logical host to the concrete port PID.
	WellKnown(lh vid.LHID, idx uint16) (vid.PID, bool)
	// GroupMembers returns local ports belonging to a global group.
	GroupMembers(g vid.PID) []vid.PID
	// DeferWhenFrozen reports whether a request to dst with the given
	// operation must be deferred while dst's logical host is frozen.
	// §3.1.3 defers "requests that modify this logical host"; read-only
	// kernel-server operations (debugger reads, queries) pass through.
	DeferWhenFrozen(dst vid.PID, op uint16) bool
}

// Stats counts engine activity. Read it through Engine.Stats(), which
// returns a value snapshot: harnesses must never hold references into the
// live counters, whose fields update packet by packet.
type Stats struct {
	TxPackets        int64
	RxPackets        int64
	RxCorrupt        int64
	TxByKind         [16]int64
	RxByKind         [16]int64
	Retransmits      int64
	RepliesFromCache int64
	ReplyPendings    int64
	Locates          int64
	Forwarded        int64
	DroppedFrozen    int64
	DroppedStale     int64
	LocalDeliveries  int64

	// Binding-cache activity (§3.1.4). Hits and misses count route
	// lookups; invalidations count explicit discards (retransmission
	// overrun, experiments); evictions count LRU displacement at
	// params.BindingCacheCap.
	BindingHits          int64
	BindingMisses        int64
	BindingInvalidations int64
	BindingEvictions     int64

	// Failure-detector activity: stations this engine started suspecting
	// (params.SuspectAfterRetries unanswered retransmissions of a single
	// transaction) and suspicions cleared by evidence of life.
	HostSuspects int64
	HostClears   int64

	// Bulk-transfer window activity: transactions issued through copy
	// windows (always equal to the EvCopyWindow trace count for this host)
	// and issue-time stalls with every window slot in flight.
	WindowSends  int64
	WindowStalls int64
}

// Engine is the per-host IPC engine.
type Engine struct {
	sim      *sim.Engine
	nic      *ethernet.NIC
	cpu      *cpu.CPU
	res      Resolver
	ports    map[vid.PID]*Port
	portList []*Port // registration order, for deterministic iteration
	cache    map[vid.LHID]*bindEntry
	cacheSeq uint64 // recency clock for LRU eviction
	cacheCap int    // binding-cache capacity (params.BindingCacheCap default)
	jobs     sim.Queue[job]
	reasm    map[reasmKey]*reasmBuf
	txBuf    map[reasmKey]*fragSource
	forward  map[vid.LHID]ethernet.MAC
	suspects map[ethernet.MAC]sim.Time // station → when suspicion began
	heard    map[ethernet.MAC]sim.Time // station → last packet received from it
	winSeq   uint32                    // bulk-transfer window port allocation sequence
	stats    Stats
	trace    *trace.Bus       // nil until wired; nil bus is a no-op target
	down     bool             // crashed host: frames drop, queued work is discarded
	loadFn   func() [6]uint32 // kernel's load advertisement, stamped on replies
	loadSink func([6]uint32)  // consumer of received load advertisements

	// NoRebind disables the logical-host rebinding machinery (cache
	// invalidation after unanswered retransmissions): the Demos/MP
	// comparator, which relies on forwarding addresses instead (§5).
	NoRebind bool

	// GroupIndirection models the local-group-id lookup for well-known
	// indices; when enabled each such delivery charges GroupIndirectCPU
	// (the paper's measured 100 µs, §4.1). Disabled for the ablation.
	GroupIndirection bool
}

type job struct {
	// Exactly one of these is set.
	out   *outJob
	frame *ethernet.Frame
	local *packet.Packet  // intra-host delivery
	fn    func(*sim.Task) // arbitrary deferred kernel work
}

type outJob struct {
	pkt *packet.Packet
	dst ethernet.MAC
}

// bindEntry is one logical-host→station binding with its LRU recency
// stamp (unique per touch, so eviction has a single deterministic victim).
type bindEntry struct {
	mac  ethernet.MAC
	used uint64
}

type reasmKey struct {
	src, dst vid.PID
	txid     uint32
	kind     packet.Kind
}

type reasmBuf struct {
	chunks [][]byte
	got    int
}

type fragSource struct {
	seg     []byte
	dst     ethernet.MAC
	summary *packet.Packet
}

// New creates the engine for one host and starts its network daemon.
func New(se *sim.Engine, nic *ethernet.NIC, c *cpu.CPU, res Resolver) *Engine {
	e := &Engine{
		sim:              se,
		nic:              nic,
		cpu:              c,
		res:              res,
		ports:            make(map[vid.PID]*Port),
		cache:            make(map[vid.LHID]*bindEntry),
		cacheCap:         params.BindingCacheCap,
		reasm:            make(map[reasmKey]*reasmBuf),
		txBuf:            make(map[reasmKey]*fragSource),
		forward:          make(map[vid.LHID]ethernet.MAC),
		suspects:         make(map[ethernet.MAC]sim.Time),
		heard:            make(map[ethernet.MAC]sim.Time),
		GroupIndirection: true,
	}
	nic.SetRecv(func(f ethernet.Frame) {
		if e.down {
			return // powered off: the NIC hears nothing
		}
		ff := f
		e.jobs.Push(job{frame: &ff})
	})
	se.Spawn(fmt.Sprintf("netd@%v", nic.MAC()), e.netd)
	return e
}

// SetDown marks the host as powered off (or back on). While down the
// engine neither receives frames nor executes queued protocol work, so a
// crashed host cannot answer locates or requests; unlike replacing the NIC
// callback this is reversible, which is what makes restart possible.
func (e *Engine) SetDown(down bool) { e.down = down }

// Down reports whether the engine is powered off.
func (e *Engine) Down() bool { return e.down }

// Reset clears all soft protocol state — binding cache, reassembly and
// repair buffers, forwarding addresses, and any protocol work still queued
// for netd from before the crash — and powers the engine back on. Called
// when a crashed host reboots: a fresh kernel remembers nothing, and
// pre-crash jobs must not execute on it (netd discards them only lazily,
// so a quick crash/restart could otherwise leave them live).
func (e *Engine) Reset() {
	e.down = false
	e.jobs.Clear()
	e.cache = make(map[vid.LHID]*bindEntry)
	e.reasm = make(map[reasmKey]*reasmBuf)
	e.txBuf = make(map[reasmKey]*fragSource)
	e.forward = make(map[vid.LHID]ethernet.MAC)
	e.suspects = make(map[ethernet.MAC]sim.Time)
	e.heard = make(map[ethernet.MAC]sim.Time)
}

// Sim returns the simulation engine.
func (e *Engine) Sim() *sim.Engine { return e.sim }

// CPU returns the host CPU this engine charges.
func (e *Engine) CPU() *cpu.CPU { return e.cpu }

// MAC returns the host's station address.
func (e *Engine) MAC() ethernet.MAC { return e.nic.MAC() }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetTraceBus wires the engine to the cluster's trace bus (nil to
// disable). Every packet movement — tx, rx, local delivery, corrupt-frame
// drop, retransmission, reply-pending, locate, binding broadcast — is
// published as a trace event.
func (e *Engine) SetTraceBus(b *trace.Bus) { e.trace = b }

// publish emits a packet-level trace event stamped with the current
// virtual time and this host's station address.
func (e *Engine) publish(kind trace.Kind, p *packet.Packet) {
	e.trace.Publish(trace.Event{At: e.sim.Now(), Host: uint16(e.nic.MAC()), Kind: kind, Pkt: p})
}

// CacheLookup exposes the logical-host cache (for tests and experiments).
// It does not touch recency or the hit/miss counters.
func (e *Engine) CacheLookup(lh vid.LHID) (ethernet.MAC, bool) {
	if be, ok := e.cache[lh]; ok {
		return be.mac, true
	}
	return 0, false
}

// CacheLen reports how many bindings are cached.
func (e *Engine) CacheLen() int { return len(e.cache) }

// SetBindingCacheCap resizes the binding cache. A server host answering N
// clients needs at least N reply-path bindings live at once: with fewer,
// every reply past the capacity evicts a binding another reply is about to
// need, each miss costs a locate broadcast, and under a full-cluster burst
// (boot registration, a select multicast's replies) the herd of 200 ms
// retransmissions regenerates the misses faster than locates resolve them —
// a livelock, not a slowdown. Clusters therefore size the cache to the
// machine count; values below the params default are ignored.
func (e *Engine) SetBindingCacheCap(n int) {
	if n > e.cacheCap {
		e.cacheCap = n
	}
}

// cacheInsert records (or refreshes) a binding, evicting the least
// recently used entry when the cache is at capacity.
func (e *Engine) cacheInsert(lh vid.LHID, mac ethernet.MAC) {
	e.cacheSeq++
	if be := e.cache[lh]; be != nil {
		be.mac = mac
		be.used = e.cacheSeq
		return
	}
	if len(e.cache) >= e.cacheCap {
		var victim vid.LHID
		oldest := uint64(1<<64 - 1)
		for l, be := range e.cache {
			if be.used < oldest {
				oldest, victim = be.used, l
			}
		}
		delete(e.cache, victim)
		e.stats.BindingEvictions++
	}
	e.cache[lh] = &bindEntry{mac: mac, used: e.cacheSeq}
}

// InvalidateCache drops a binding — after unanswered retransmissions
// (§3.1.4) or from experiments forcing a locate. Counted and traced only
// when a binding was actually present.
func (e *Engine) InvalidateCache(lh vid.LHID) {
	if _, ok := e.cache[lh]; !ok {
		return
	}
	delete(e.cache, lh)
	e.stats.BindingInvalidations++
	e.trace.Publish(trace.Event{
		At: e.sim.Now(), Host: uint16(e.nic.MAC()), Kind: trace.EvBindInvalidate, LH: lh,
	})
}

// SetLoadFunc installs the kernel's load-advertisement source. When set,
// every outgoing (inter-host) reply is stamped with a fresh advertisement
// — load information piggybacks on traffic the host sends anyway.
func (e *Engine) SetLoadFunc(fn func() [6]uint32) { e.loadFn = fn }

// SetLoadSink installs the consumer of load advertisements received from
// other hosts (the scheduling layer's candidate cache).
func (e *Engine) SetLoadSink(fn func([6]uint32)) { e.loadSink = fn }

// BroadcastLoad emits one load-advertisement beacon frame. A no-op until
// SetLoadFunc is wired or while the host is down.
func (e *Engine) BroadcastLoad() {
	if e.loadFn == nil || e.down {
		return
	}
	e.emit(&packet.Packet{Kind: packet.KLoadAd, Ad: e.loadFn(), HasAd: true}, ethernet.Broadcast)
}

// BroadcastBinding announces that a logical host now resides on this host —
// the §3.1.4 optimization performed when a migrated logical host is
// unfrozen.
func (e *Engine) BroadcastBinding(lh vid.LHID) {
	e.trace.Publish(trace.Event{
		At: e.sim.Now(), Host: uint16(e.nic.MAC()), Kind: trace.EvRebind, LH: lh,
	})
	e.emit(&packet.Packet{Kind: packet.KBinding, LH: lh}, ethernet.Broadcast)
}

// Defer runs fn on the network daemon task (kernel context). Used by the
// kernel for work that must charge CPU but has no process task.
func (e *Engine) Defer(fn func(*sim.Task)) { e.jobs.Push(job{fn: fn}) }

// netd is the kernel network daemon: it serializes this host's protocol
// processing, charging CPU per packet.
func (e *Engine) netd(t *sim.Task) {
	for {
		j := e.jobs.Pop(t)
		if e.down {
			continue // in-flight kernel work dies with the host
		}
		switch {
		case j.out != nil:
			e.sendNow(t, j.out.pkt, j.out.dst)
		case j.frame != nil:
			e.recvFrame(t, *j.frame)
		case j.local != nil:
			cost := params.LocalDeliverCPU
			if n := len(j.local.Msg.Seg); n > 0 {
				cost += time.Duration((n+1023)/1024) * params.LocalCopyPerKB
			}
			e.cpu.Use(t, cost, params.PrioKernel)
			e.stats.LocalDeliveries++
			e.publish(trace.EvPktLocal, j.local)
			e.dispatch(t, j.local, e.nic.MAC())
		case j.fn != nil:
			j.fn(t)
		}
	}
}

// emit queues a packet for transmission by netd.
func (e *Engine) emit(p *packet.Packet, dst ethernet.MAC) {
	e.jobs.Push(job{out: &outJob{pkt: p, dst: dst}})
}

// emitLocal queues a packet for intra-host delivery.
func (e *Engine) emitLocal(p *packet.Packet) {
	e.jobs.Push(job{local: p})
}

// sendNow marshals and transmits a (non-fragmented) packet, charging CPU.
func (e *Engine) sendNow(t *sim.Task, p *packet.Packet, dst ethernet.MAC) {
	e.cpu.Use(t, params.SmallPktSendCPU, params.PrioKernel)
	e.transmitFrame(t, p, dst, false)
}

// transmitFrame marshals p and puts it on the wire. If wait is true the
// task blocks until the frame clears the medium (bulk pacing).
func (e *Engine) transmitFrame(t *sim.Task, p *packet.Packet, dst ethernet.MAC, wait bool) {
	if p.Kind == packet.KReply && e.loadFn != nil {
		// Piggyback a fresh load advertisement on the reply (re-stamped on
		// every retransmission, so receivers always see current load).
		p.Ad = e.loadFn()
		p.HasAd = true
	}
	e.stats.TxPackets++
	e.stats.TxByKind[p.Kind]++
	e.publish(trace.EvPktTx, p)
	f := ethernet.Frame{Dst: dst, Payload: packet.Marshal(p)}
	if wait {
		e.nic.Send(t, f)
	} else {
		e.nic.StartSend(f, nil)
	}
}

// sendFragged transmits a packet whose segment exceeds the inline limit:
// the caller's task pushes one full-size frame per fragment, charging
// BulkSendCPU and waiting out each frame's wire time (this serialization is
// what yields the paper's ≈3 s/Mbyte inter-host copy rate), then the
// summary packet. The fragment source is retained for NACK repair.
func (e *Engine) sendFragged(t *sim.Task, p *packet.Packet, dst ethernet.MAC) {
	seg := p.Msg.Seg
	n := packet.NumFrags(len(seg))
	key := reasmKey{src: p.Src, dst: p.Dst, txid: p.TxID, kind: p.Kind}
	summary := *p
	summary.Msg.Seg = nil
	summary.SegLen = uint32(len(seg))
	summary.FragCount = uint16(n)
	e.txBuf[key] = &fragSource{seg: seg, dst: dst, summary: &summary}
	for i := 0; i < n; i++ {
		e.cpu.Use(t, params.BulkSendCPU, params.PrioKernel)
		e.transmitFrame(t, &packet.Packet{
			Kind:      packet.KFrag,
			TxID:      p.TxID,
			Src:       p.Src,
			Dst:       p.Dst,
			OfKind:    p.Kind,
			FragIdx:   uint16(i),
			FragCount: uint16(n),
			Data:      packet.FragOf(seg, i),
		}, dst, true)
	}
	e.cpu.Use(t, params.SmallPktSendCPU, params.PrioKernel)
	e.transmitFrame(t, &summary, dst, false)
	// Bound how long the repair buffer is retained.
	e.sim.After(params.ReplyCacheTTL, func() {
		if e.txBuf[key] != nil && e.txBuf[key].summary == &summary {
			delete(e.txBuf, key)
		}
	})
}

// resendFrags services a FragNack: retransmit the missing fragments and the
// summary. Runs on netd.
func (e *Engine) resendFrags(t *sim.Task, key reasmKey, missing []uint16) {
	src := e.txBuf[key]
	if src == nil {
		return
	}
	n := packet.NumFrags(len(src.seg))
	for _, idx := range missing {
		if int(idx) >= n {
			continue
		}
		e.cpu.Use(t, params.BulkSendCPU, params.PrioKernel)
		e.stats.Retransmits++
		e.publish(trace.EvPktRetx, src.summary)
		e.transmitFrame(t, &packet.Packet{
			Kind:      packet.KFrag,
			TxID:      key.txid,
			Src:       key.src,
			Dst:       src.summary.Dst,
			OfKind:    key.kind,
			FragIdx:   idx,
			FragCount: uint16(n),
			Data:      packet.FragOf(src.seg, int(idx)),
		}, src.dst, true)
	}
	e.cpu.Use(t, params.SmallPktSendCPU, params.PrioKernel)
	e.transmitFrame(t, src.summary, src.dst, false)
}

// recvFrame processes one arriving frame on netd.
func (e *Engine) recvFrame(t *sim.Task, f ethernet.Frame) {
	p, err := packet.Unmarshal(f.Payload)
	switch {
	case len(f.Payload) >= 512:
		e.cpu.Use(t, params.BulkRecvCPU, params.PrioKernel)
	case err == nil && p.Kind == packet.KLoadAd:
		// Beacons take the interrupt-level fast path: a fixed-format
		// datagram consumed in place (no reply, no reassembly, no
		// process delivery), so broadcast load dissemination does not
		// tax every kernel at full packet-dispatch cost.
		e.cpu.Use(t, params.LoadAdRecvCPU, params.PrioKernel)
	default:
		e.cpu.Use(t, params.SmallPktRecvCPU, params.PrioKernel)
	}
	if err != nil {
		// Corrupt frame: count and trace the drop, then discard.
		e.stats.RxCorrupt++
		e.trace.Publish(trace.Event{
			At: t.Now(), Host: uint16(e.nic.MAC()), Kind: trace.EvPktDrop,
			Size: len(f.Payload), Peer: uint16(f.Src),
		})
		return
	}
	e.stats.RxPackets++
	e.stats.RxByKind[p.Kind]++
	e.publish(trace.EvPktRx, p)
	e.dispatch(t, p, f.Src)
}

// dispatch routes a decoded packet (from the wire or delivered locally).
func (e *Engine) dispatch(t *sim.Task, p *packet.Packet, from ethernet.MAC) {
	// Any packet from a station is evidence of life: it vetoes suspicion
	// formation (noteSilence) and retracts a standing suspicion.
	if from != e.nic.MAC() {
		e.heard[from] = e.sim.Now()
		e.clearSuspicion(from)
	}
	// Learn bindings from incoming traffic (§3.1.4: "the cache is also
	// updated based on incoming requests").
	if from != e.nic.MAC() && p.Src != vid.Nil && !p.Src.IsGroup() && !e.res.LHResident(p.Src.LH()) {
		e.cacheInsert(p.Src.LH(), from)
	}
	if p.HasAd && from != e.nic.MAC() && e.loadSink != nil {
		e.loadSink(p.Ad)
	}
	switch p.Kind {
	case packet.KFrag:
		e.handleFrag(p)
	case packet.KRequest:
		e.deliverRequest(t, p, from)
	case packet.KReply:
		e.deliverReply(t, p, from)
	case packet.KReplyPending:
		if port := e.ports[p.Dst]; port != nil {
			port.notePending(p.TxID)
		}
	case packet.KNoProc:
		if port := e.ports[p.Dst]; port != nil {
			port.failSend(p.TxID, vid.CodeNoProcess)
		}
	case packet.KLocateReq:
		// A host answers for every resident logical host, frozen or not:
		// during a migration the original host remains authoritative (and
		// keeps deferring operations with reply-pending packets) until the
		// old copy is deleted (§3.1.3).
		if e.res.LHResident(p.LH) {
			e.emit(&packet.Packet{Kind: packet.KLocateResp, LH: p.LH}, from)
		}
	case packet.KLocateResp:
		e.cacheInsert(p.LH, from)
		e.retryWaiters(p.LH)
	case packet.KBinding:
		e.cacheInsert(p.LH, from)
		e.retryWaiters(p.LH)
	case packet.KLoadAd:
		// Advertisement already consumed by the sink above.
	case packet.KFragNack:
		// p.Src is the original packet's source (us); p.Dst the nacker.
		e.resendFrags(t, reasmKey{src: p.Src, dst: p.Dst, txid: p.TxID, kind: p.OfKind}, p.Missing)
	}
}

// retryWaiters prompts any transaction addressed to lh to retransmit now
// that a binding is known, instead of waiting out its retransmit interval.
func (e *Engine) retryWaiters(lh vid.LHID) {
	for _, port := range e.portList {
		if s := port.send; s != nil && !s.done && s.dst.LH() == lh {
			port.retransmit()
		}
	}
}

// handleFrag stores a fragment for reassembly.
func (e *Engine) handleFrag(p *packet.Packet) {
	key := reasmKey{src: p.Src, dst: p.Dst, txid: p.TxID, kind: p.OfKind}
	buf := e.reasm[key]
	if buf == nil {
		buf = &reasmBuf{chunks: make([][]byte, p.FragCount)}
		e.reasm[key] = buf
		e.sim.After(params.FragReassemblyTTL, func() {
			if e.reasm[key] == buf {
				delete(e.reasm, key)
			}
		})
	}
	if int(p.FragIdx) < len(buf.chunks) && buf.chunks[p.FragIdx] == nil {
		buf.chunks[p.FragIdx] = p.Data
		buf.got++
	}
}

// completeSeg attempts to attach a fragmented segment to its summary
// packet. It returns false (after NACKing the gaps) if fragments are
// missing.
func (e *Engine) completeSeg(p *packet.Packet, from ethernet.MAC) bool {
	if p.FragCount == 0 {
		return true
	}
	key := reasmKey{src: p.Src, dst: p.Dst, txid: p.TxID, kind: p.Kind}
	buf := e.reasm[key]
	if buf == nil || buf.got < int(p.FragCount) {
		var missing []uint16
		for i := 0; i < int(p.FragCount); i++ {
			if buf == nil || i >= len(buf.chunks) || buf.chunks[i] == nil {
				missing = append(missing, uint16(i))
			}
		}
		e.emit(&packet.Packet{
			Kind:    packet.KFragNack,
			TxID:    p.TxID,
			Src:     p.Src,
			Dst:     p.Dst,
			OfKind:  p.Kind,
			Missing: missing,
		}, from)
		return false
	}
	seg := make([]byte, 0, p.SegLen)
	for _, c := range buf.chunks {
		seg = append(seg, c...)
	}
	if uint32(len(seg)) > p.SegLen {
		seg = seg[:p.SegLen]
	}
	p.Msg.Seg = seg
	p.FragCount = 0
	delete(e.reasm, key)
	return true
}

// deliverRequest handles an arriving KRequest.
func (e *Engine) deliverRequest(t *sim.Task, p *packet.Packet, from ethernet.MAC) {
	dst := p.Dst
	if dst.IsGroup() {
		for _, member := range e.res.GroupMembers(dst) {
			cp := *p
			cp.Dst = member
			e.deliverRequest(t, &cp, from)
		}
		return
	}
	lh := dst.LH()
	if !e.res.LHResident(lh) {
		if fwd, ok := e.forward[lh]; ok {
			// Demos/MP-style forwarding address: relay to the host the
			// logical host moved to (§5). A residual dependency: the
			// relay fails if this host is rebooted.
			e.stats.Forwarded++
			e.emit(p, fwd)
			return
		}
		e.stats.DroppedStale++
		return // stale routing; the sender will locate and retry
	}
	if e.res.Frozen(lh) && e.res.DeferWhenFrozen(dst, p.Msg.Op) {
		// §3.1.3: requests that modify a frozen logical host are
		// deferred; the kernel answers retransmissions with
		// reply-pending packets so the sender neither aborts nor
		// completes. Read-only operations (debugger queries) proceed.
		e.stats.DroppedFrozen++
		e.replyPending(p, from)
		return
	}
	if dst.IsWellKnown() {
		concrete, ok := e.res.WellKnown(lh, dst.Index())
		if !ok {
			e.noProc(p, from)
			return
		}
		if e.GroupIndirection {
			// The paper's measured 100 µs local-group-identifier
			// indirection on every kernel-server/team-server operation.
			e.cpu.Use(t, params.GroupIndirectCPU, params.PrioKernel)
		}
		dst = concrete
	}
	port := e.ports[dst]
	if port == nil {
		e.noProc(p, from)
		return
	}
	// Reassemble large segments only for requests we will actually accept
	// as new; duplicates are answered from the reply cache first.
	switch port.classify(p.Src, p.TxID) {
	case reqDuplicateReplied:
		e.stats.RepliesFromCache++
		port.resendCachedReply(p.Src, from)
	case reqDuplicatePending:
		e.replyPending(p, from)
	case reqStale:
		e.stats.DroppedStale++
	case reqNew:
		if !e.completeSeg(p, from) {
			return
		}
		port.acceptRequest(p.Src, p.TxID, p.Msg, from)
	}
}

// deliverReply handles an arriving KReply.
func (e *Engine) deliverReply(t *sim.Task, p *packet.Packet, from ethernet.MAC) {
	lh := p.Dst.LH()
	if !e.res.LHResident(lh) {
		if fwd, ok := e.forward[lh]; ok {
			e.stats.Forwarded++
			e.emit(p, fwd)
			return
		}
		e.stats.DroppedStale++
		return
	}
	if e.res.Frozen(lh) {
		// §3.1.3: replies to a frozen logical host are discarded; the
		// migrated process's continued retransmission will recover the
		// reply from the replier's cache after unfreezing.
		e.stats.DroppedFrozen++
		return
	}
	port := e.ports[p.Dst]
	if port == nil || port.send == nil || port.send.done || port.send.txid != p.TxID {
		return // duplicate or stale reply
	}
	if !e.completeSeg(p, from) {
		return
	}
	if port.send.gather {
		// Gathering send: accumulate this responder's reply (deduplicated
		// by source) and keep collecting until the window closes.
		port.addGatherReply(p.Src, p.Msg)
		return
	}
	port.completeSend(p.Msg)
}

// replyPending emits a reply-pending packet for the given request.
func (e *Engine) replyPending(p *packet.Packet, from ethernet.MAC) {
	e.stats.ReplyPendings++
	e.publish(trace.EvReplyPending, p)
	out := &packet.Packet{Kind: packet.KReplyPending, TxID: p.TxID, Src: p.Dst, Dst: p.Src}
	if from == e.nic.MAC() {
		e.emitLocal(out)
	} else {
		e.emit(out, from)
	}
}

// noProc tells the sender the destination does not exist.
func (e *Engine) noProc(p *packet.Packet, from ethernet.MAC) {
	out := &packet.Packet{Kind: packet.KNoProc, TxID: p.TxID, Src: p.Dst, Dst: p.Src}
	if from == e.nic.MAC() {
		e.emitLocal(out)
	} else {
		e.emit(out, from)
	}
}

// route decides where a destination PID currently lives. ok=false means a
// locate was broadcast and the caller should rely on retransmission.
func (e *Engine) route(dst vid.PID) (mac ethernet.MAC, local, ok bool) {
	lh := dst.LH()
	if dst.IsGroup() {
		// Group traffic rides Ethernet multicast: only member stations'
		// receive filters accept it (§2.1's "multicast to the program
		// manager group" without waking every kernel on the segment).
		return ethernet.Multicast(uint16(lh)), false, true
	}
	if e.res.LHResident(lh) {
		return e.nic.MAC(), true, true
	}
	if be, hit := e.cache[lh]; hit {
		e.cacheSeq++
		be.used = e.cacheSeq
		e.stats.BindingHits++
		e.trace.Publish(trace.Event{
			At: e.sim.Now(), Host: uint16(e.nic.MAC()), Kind: trace.EvBindHit, LH: lh,
		})
		return be.mac, false, true
	}
	e.stats.BindingMisses++
	e.trace.Publish(trace.Event{
		At: e.sim.Now(), Host: uint16(e.nic.MAC()), Kind: trace.EvBindMiss, LH: lh,
	})
	e.stats.Locates++
	e.trace.Publish(trace.Event{
		At: e.sim.Now(), Host: uint16(e.nic.MAC()), Kind: trace.EvLocate, LH: lh,
	})
	e.emit(&packet.Packet{Kind: packet.KLocateReq, LH: lh}, ethernet.Broadcast)
	return 0, false, false
}

// ------------------------------------------------------- failure detector
//
// The engine keeps a per-station suspicion table fed by the evidence the
// retransmission machinery already produces: SuspectAfterRetries consecutive
// unanswered retransmissions of any single transaction condemn the whole
// station, failing every in-flight transaction to it fast (CodeHostDown)
// instead of letting each ride out its own ~5 s abort. Reply-pending packets
// reset a transaction's silence, and *any* packet from the station — replies,
// requests, locate responses, a rebooted host's announcements — clears the
// suspicion (§3.1.3's "evidence of life", generalized host-wide).

// Suspected reports whether the station is currently suspected dead.
func (e *Engine) Suspected(mac ethernet.MAC) bool {
	_, bad := e.suspects[mac]
	return bad
}

// Suspects returns the currently suspected stations in ascending order.
func (e *Engine) Suspects() []ethernet.MAC {
	out := make([]ethernet.MAC, 0, len(e.suspects))
	for mac := range e.suspects {
		out = append(out, mac)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// noteSilence is called by a send transaction's retransmission tick after
// another interval passed with no evidence of life. It returns true when the
// transaction was failed (the station is — or just became — suspected).
func (e *Engine) noteSilence(p *Port, s *sendTxn) bool {
	if _, bad := e.suspects[s.mac]; bad {
		// Already suspected: the transaction's initial transmission doubled
		// as a liveness probe; one interval of silence is enough.
		p.failSend(s.txid, vid.CodeHostDown)
		return true
	}
	if s.silent < params.SuspectAfterRetries {
		return false
	}
	// One starved transaction is not enough: the whole *station* must have
	// been silent for the suspicion window. Traffic it sent to anyone on
	// this host — replies to other processes, duplicate-reply traffic for a
	// frozen logical host, locate responses — vetoes the verdict, which
	// also keeps a lossy (but live) link from condemning a healthy peer.
	window := time.Duration(params.SuspectAfterRetries) * params.RetransmitInterval
	lastAlive := s.lastAlive
	if heard, ok := e.heard[s.mac]; ok && heard > lastAlive {
		lastAlive = heard
	}
	if e.sim.Now().Sub(lastAlive) < window {
		return false
	}
	e.suspectStation(s.mac, lastAlive)
	return true
}

// suspectStation condemns a station and fails every in-flight transaction
// addressed to it. The published event's Size carries the detection latency
// (silence since the witnessing transaction's last evidence of life) in
// microseconds.
func (e *Engine) suspectStation(mac ethernet.MAC, lastAlive sim.Time) {
	if _, dup := e.suspects[mac]; dup {
		return
	}
	now := e.sim.Now()
	e.suspects[mac] = now
	e.stats.HostSuspects++
	e.trace.Publish(trace.Event{
		At: now, Host: uint16(e.nic.MAC()), Kind: trace.EvHostSuspect,
		Peer: uint16(mac), Size: int(now.Sub(lastAlive) / time.Microsecond),
	})
	for _, port := range e.portList {
		if s := port.send; s != nil && !s.done && !s.gather && s.mac == mac {
			port.failSend(s.txid, vid.CodeHostDown)
		}
	}
}

// clearSuspicion retracts a standing suspicion on evidence of life.
func (e *Engine) clearSuspicion(mac ethernet.MAC) {
	if _, bad := e.suspects[mac]; !bad {
		return
	}
	delete(e.suspects, mac)
	e.stats.HostClears++
	e.trace.Publish(trace.Event{
		At: e.sim.Now(), Host: uint16(e.nic.MAC()), Kind: trace.EvHostClear,
		Peer: uint16(mac),
	})
}

// SetForward installs a forwarding address for a migrated-away logical
// host (the Demos/MP comparator). Pass the zero MAC to clear.
func (e *Engine) SetForward(lh vid.LHID, mac ethernet.MAC) {
	if mac == 0 {
		delete(e.forward, lh)
		return
	}
	e.forward[lh] = mac
}
