package ipc

import (
	"bytes"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/packet"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// dropKinds installs a loss function that drops the first n frames of the
// given kinds, returning a counter of drops performed.
func dropKinds(bus *ethernet.Bus, n int, kinds ...packet.Kind) *int {
	dropped := 0
	want := make(map[packet.Kind]bool)
	for _, k := range kinds {
		want[k] = true
	}
	bus.SetLoss(func(f ethernet.Frame) bool {
		if dropped >= n {
			return false
		}
		p, err := packet.Unmarshal(f.Payload)
		if err != nil || !want[p.Kind] {
			return false
		}
		dropped++
		return true
	})
	return &dropped
}

// bulkRig builds the standard two-host client/server pair.
func bulkRig(t *testing.T, seed int64) (*rig, *Port, *Port) {
	r := newRig(t, 2, seed)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	return r, client, server
}

// transferOK sends a 8 KB segment and verifies integrity.
func transferOK(t *testing.T, r *rig, client, server *Port) {
	t.Helper()
	seg := make([]byte, 8*1024)
	for i := range seg {
		seg[i] = byte(i * 13)
	}
	var rx []byte
	r.sim.Spawn("server", func(tk *sim.Task) {
		req := server.Receive(tk)
		rx = req.Msg.Seg
		server.Reply(tk, req, vid.Message{})
	})
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		_, err = client.Send(tk, server.PID(), vid.Message{Op: testOp, Seg: seg})
	})
	r.sim.RunFor(2 * time.Minute)
	if err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	if !bytes.Equal(rx, seg) {
		t.Fatal("segment corrupted")
	}
}

func TestDropSummaryFrameRecovered(t *testing.T) {
	// The request summary (the frame that triggers reassembly completion)
	// is lost; the retransmission timer resends it and the transfer
	// completes without resending the data fragments.
	r, client, server := bulkRig(t, 31)
	dropped := dropKinds(r.bus, 1, packet.KRequest)
	transferOK(t, r, client, server)
	if *dropped != 1 {
		t.Fatal("summary frame was not dropped")
	}
	// At most a couple of retransmitted fragments (none needed, but the
	// NACK path may conservatively resend).
	if re := r.hosts[0].eng.Stats().Retransmits; re == 0 {
		t.Fatal("no retransmission recorded despite a dropped summary")
	}
}

func TestDropFragmentsTriggersSelectiveRepair(t *testing.T) {
	// Three data fragments are lost: the receiver NACKs exactly the gaps.
	r, client, server := bulkRig(t, 32)
	dropped := dropKinds(r.bus, 3, packet.KFrag)
	transferOK(t, r, client, server)
	if *dropped != 3 {
		t.Fatalf("dropped %d fragments", *dropped)
	}
	st := r.hosts[1].eng.Stats()
	if st.TxByKind[packet.KFragNack] == 0 {
		t.Fatal("no NACK was sent")
	}
}

func TestDropNackItselfRecovered(t *testing.T) {
	// Both a fragment and the subsequent NACK are lost: the sender's
	// summary retransmission re-triggers gap detection.
	r, client, server := bulkRig(t, 33)
	fragDrops := dropKinds(r.bus, 1, packet.KFrag)
	// After the fragment drop, swap the loss function to kill one NACK.
	nackDropped := 0
	orig := *fragDrops
	_ = orig
	r.bus.SetLoss(func(f ethernet.Frame) bool {
		p, err := packet.Unmarshal(f.Payload)
		if err != nil {
			return false
		}
		if *fragDrops < 1 && p.Kind == packet.KFrag {
			*fragDrops++
			return true
		}
		if nackDropped < 1 && p.Kind == packet.KFragNack {
			nackDropped++
			return true
		}
		return false
	})
	transferOK(t, r, client, server)
	if *fragDrops != 1 || nackDropped != 1 {
		t.Fatalf("drops: frag=%d nack=%d", *fragDrops, nackDropped)
	}
}

func TestDropReplyServedFromCache(t *testing.T) {
	r, client, server := bulkRig(t, 34)
	executions := 0
	r.sim.Spawn("server", func(tk *sim.Task) {
		for {
			req := server.Receive(tk)
			executions++
			server.Reply(tk, req, vid.Message{W: [6]uint32{77}})
		}
	})
	dropped := dropKinds(r.bus, 1, packet.KReply)
	var got vid.Message
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		got, err = client.Send(tk, server.PID(), vid.Message{Op: testOp})
	})
	r.sim.RunFor(time.Minute)
	if err != nil || got.W[0] != 77 {
		t.Fatalf("send: %v %v", got, err)
	}
	if *dropped != 1 {
		t.Fatal("reply was not dropped")
	}
	if executions != 1 {
		t.Fatalf("server executed %d times (cache bypassed)", executions)
	}
	if r.hosts[1].eng.Stats().RepliesFromCache == 0 {
		t.Fatal("cached reply was not used")
	}
}

func TestDropLocateResponsesRetried(t *testing.T) {
	r, client, server := bulkRig(t, 35)
	echoServer(r.sim, server)
	dropped := dropKinds(r.bus, 2, packet.KLocateResp)
	var err error
	var elapsed time.Duration
	r.sim.Spawn("client", func(tk *sim.Task) {
		t0 := tk.Now()
		_, err = client.Send(tk, server.PID(), vid.Message{Op: testOp})
		elapsed = tk.Now().Sub(t0)
	})
	r.sim.RunFor(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if *dropped != 2 {
		t.Fatalf("dropped %d locate responses", *dropped)
	}
	// Two lost locates cost two retransmission intervals.
	if elapsed < 2*200*time.Millisecond {
		t.Fatalf("completed in %v despite two lost locates", elapsed)
	}
}

func TestDuplicateFrameDeliveryHarmless(t *testing.T) {
	// The bus cannot duplicate frames, but a retransmission after a
	// delayed (not lost) reply produces the same effect: the sender
	// receives two replies for one transaction. Force it by dropping the
	// first reply and verifying the duplicate retransmitted request does
	// not disturb the completed transaction.
	r, client, server := bulkRig(t, 36)
	executions := 0
	r.sim.Spawn("server", func(tk *sim.Task) {
		for {
			req := server.Receive(tk)
			executions++
			server.Reply(tk, req, vid.Message{W: [6]uint32{uint32(executions)}})
		}
	})
	dropKinds(r.bus, 1, packet.KReply)
	var results []uint32
	r.sim.Spawn("client", func(tk *sim.Task) {
		for i := 0; i < 3; i++ {
			m, err := client.Send(tk, server.PID(), vid.Message{Op: testOp})
			if err == nil {
				results = append(results, m.W[0])
			}
		}
	})
	r.sim.RunFor(time.Minute)
	if len(results) != 3 {
		t.Fatalf("completed %d/3", len(results))
	}
	for i, v := range results {
		if v != uint32(i+1) {
			t.Fatalf("results = %v (re-execution or reordering)", results)
		}
	}
}

func TestStormOfStaleRequestsIgnored(t *testing.T) {
	// Hand-craft stale requests (old txids) arriving at a server port;
	// none may be delivered to the application.
	r, client, server := bulkRig(t, 37)
	served := 0
	r.sim.Spawn("server", func(tk *sim.Task) {
		for {
			req := server.Receive(tk)
			served++
			server.Reply(tk, req, vid.Message{})
		}
	})
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		// A legitimate transaction first (txid becomes 1... then 5 more).
		for i := 0; i < 5; i++ {
			if _, e := client.Send(tk, server.PID(), vid.Message{Op: testOp}); e != nil {
				err = e
			}
		}
	})
	r.sim.RunFor(30 * time.Second)
	if err != nil || served != 5 {
		t.Fatalf("setup: served=%d err=%v", served, err)
	}
	// Replay a stale request (txid 1) directly onto the wire.
	stale := packet.Marshal(&packet.Packet{
		Kind: packet.KRequest, TxID: 1, Src: client.PID(), Dst: server.PID(),
		Msg: vid.Message{Op: testOp},
	})
	nic := r.hosts[0].eng.nic
	for i := 0; i < 5; i++ {
		nic.StartSend(ethernet.Frame{Dst: 2, Payload: stale}, nil)
	}
	r.sim.RunFor(10 * time.Second)
	if served != 5 {
		t.Fatalf("stale requests reached the server: served=%d", served)
	}
	if r.hosts[1].eng.Stats().DroppedStale == 0 {
		t.Fatal("stale requests not accounted")
	}
}
