package ipc

import (
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// TestDetectorFastFailAndClear exercises the per-host failure detector end
// to end: a powered-off station is condemned after SuspectAfterRetries
// silent retransmission intervals (far under the ~5 s per-send abort),
// every in-flight transaction addressed to it is failed at the moment of
// condemnation, later sends fail after a single probe interval, and the
// first packet heard from the revived station retracts the suspicion.
// Trace events and Stats counters must agree throughout.
func TestDetectorFastFailAndClear(t *testing.T) {
	r := newRig(t, 3, 24)
	tb := r.attachTrace()
	lhA, lhB, lhC := vid.LHID(10), vid.LHID(20), vid.LHID(30)
	r.place(lhA, 0)
	r.place(lhB, 1)
	r.place(lhC, 0)
	clientA := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	clientC := r.hosts[0].eng.NewPort(vid.NewPID(lhC, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)
	victim := ethernet.MAC(2) // host 1's station address (newRig attaches i+1)
	// Pin the binding: without it the silence-driven cache invalidation
	// leaves later sends unrouted (mac == 0), and an unlocated transaction
	// can only abort by timeout — "unlocated" is not "dead".
	r.hosts[0].eng.NoRebind = true

	// Warm up the binding so later sends transmit immediately, and leave
	// fresh "evidence of life" that the detector must wait out.
	r.sim.Spawn("warmup", func(tk *sim.Task) {
		if _, err := clientA.Send(tk, server.PID(), vid.Message{Op: testOp}); err != nil {
			t.Errorf("warmup send: %v", err)
		}
	})
	r.sim.RunFor(time.Second)
	r.hosts[1].eng.SetDown(true)

	// Two concurrent transactions to the dead station: the one whose
	// retransmission tick condemns it must drag the other down with it.
	var errA, errC error
	var elapsedA, elapsedC time.Duration
	r.sim.Spawn("clientA", func(tk *sim.Task) {
		start := tk.Now()
		_, errA = clientA.Send(tk, server.PID(), vid.Message{Op: testOp})
		elapsedA = tk.Now().Sub(start)
	})
	r.sim.Spawn("clientC", func(tk *sim.Task) {
		start := tk.Now()
		_, errC = clientC.Send(tk, server.PID(), vid.Message{Op: testOp})
		elapsedC = tk.Now().Sub(start)
	})
	r.sim.RunFor(10 * time.Second)

	window := time.Duration(params.SuspectAfterRetries) * params.RetransmitInterval
	budget := window + 500*time.Millisecond // scheduling slack on top of the window
	for _, c := range []struct {
		name    string
		err     error
		elapsed time.Duration
	}{{"A", errA, elapsedA}, {"C", errC, elapsedC}} {
		ce, ok := c.err.(vid.CodeError)
		if !ok || uint16(ce) != vid.CodeHostDown {
			t.Fatalf("client %s: want CodeHostDown, got %v", c.name, c.err)
		}
		if c.elapsed > budget {
			t.Errorf("client %s failed after %v; detection budget is %v", c.name, c.elapsed, budget)
		}
		if c.elapsed >= 5*time.Second {
			t.Errorf("client %s took %v — no faster than the plain send abort", c.name, c.elapsed)
		}
	}
	if !r.hosts[0].eng.Suspected(victim) {
		t.Fatal("station not suspected after fast-fail")
	}
	if s := r.hosts[0].eng.Suspects(); len(s) != 1 || s[0] != victim {
		t.Fatalf("Suspects() = %v, want [%v]", s, victim)
	}

	// With the suspicion standing, a new send is a single liveness probe:
	// one silent retransmission interval and it fails.
	var errProbe error
	var elapsedProbe time.Duration
	r.sim.Spawn("probe", func(tk *sim.Task) {
		start := tk.Now()
		_, errProbe = clientA.Send(tk, server.PID(), vid.Message{Op: testOp})
		elapsedProbe = tk.Now().Sub(start)
	})
	r.sim.RunFor(5 * time.Second)
	if ce, ok := errProbe.(vid.CodeError); !ok || uint16(ce) != vid.CodeHostDown {
		t.Fatalf("probe: want CodeHostDown, got %v", errProbe)
	}
	if elapsedProbe > 2*params.RetransmitInterval {
		t.Errorf("probe against a suspected station took %v, want ~one interval", elapsedProbe)
	}

	// Revive the station. Its first packet — here a request of its own —
	// is evidence of life and must retract the suspicion.
	r.hosts[1].eng.SetDown(false)
	echoServer(r.sim, clientC)
	r.sim.Spawn("revived", func(tk *sim.Task) {
		if _, err := server.Send(tk, clientC.PID(), vid.Message{Op: testOp}); err != nil {
			t.Errorf("revived station's send: %v", err)
		}
	})
	r.sim.RunFor(5 * time.Second)
	if r.hosts[0].eng.Suspected(victim) {
		t.Fatal("suspicion not cleared by evidence of life")
	}
	r.sim.Spawn("after-clear", func(tk *sim.Task) {
		if _, err := clientA.Send(tk, server.PID(), vid.Message{Op: testOp}); err != nil {
			t.Errorf("send after clear: %v", err)
		}
	})
	r.sim.RunFor(5 * time.Second)

	// Trace/stats parity across every engine.
	var suspects, clears int64
	for _, h := range r.hosts {
		st := h.eng.Stats()
		suspects += st.HostSuspects
		clears += st.HostClears
	}
	if suspects == 0 || clears == 0 {
		t.Fatalf("detector paths not exercised: suspects=%d clears=%d", suspects, clears)
	}
	if got := tb.Count(trace.EvHostSuspect); got != suspects {
		t.Errorf("trace host-suspect events = %d, Stats.HostSuspects = %d", got, suspects)
	}
	if got := tb.Count(trace.EvHostClear); got != clears {
		t.Errorf("trace host-clear events = %d, Stats.HostClears = %d", got, clears)
	}
}

// TestDetectorLossyLinkNoFalsePositive pins the heard-veto: a station that
// keeps answering through moderate frame loss must never be condemned,
// because its replies — to anyone on this host — are station-wide evidence
// of life that resets the silence window.
func TestDetectorLossyLinkNoFalsePositive(t *testing.T) {
	r := newRig(t, 2, 25)
	tb := r.attachTrace()
	r.bus.SetLoss(ethernet.RandomLoss(r.sim, 0.15))
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)

	done := 0
	r.sim.Spawn("client", func(tk *sim.Task) {
		for i := 0; i < 20; i++ {
			if _, err := client.Send(tk, server.PID(), vid.Message{Op: testOp}); err != nil {
				t.Errorf("send %d under loss: %v", i, err)
				return
			}
			done++
		}
	})
	r.sim.RunFor(5 * time.Minute)
	if done != 20 {
		t.Fatalf("only %d/20 transactions completed", done)
	}
	if r.hosts[0].eng.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions under 35% loss; test premise broken")
	}
	if got := tb.Count(trace.EvHostSuspect); got != 0 {
		t.Fatalf("live-but-lossy peer was condemned %d times", got)
	}
}
