package ipc

import (
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
)

// slowEchoServer models a destination kernel server: each request costs
// fixed processing time before the reply, so a stop-and-wait sender pays
// the full round trip per request while a windowed sender overlaps them.
func slowEchoServer(se *sim.Engine, p *Port, work time.Duration) {
	se.Spawn("slow-echo", func(t *sim.Task) {
		for {
			r := p.Receive(t)
			t.Sleep(work)
			p.Reply(t, r, r.Msg)
		}
	})
}

// runWindowPush pushes n requests through a window of the given size and
// returns the elapsed virtual time and the window's stats.
func runWindowPush(t *testing.T, seed int64, size, n int, loss float64, bus *trace.Bus) (time.Duration, WindowStats, Stats) {
	t.Helper()
	r := newRig(t, 2, seed)
	if loss > 0 {
		r.bus.SetLoss(ethernet.RandomLoss(r.sim, loss))
	}
	if bus != nil {
		for _, h := range r.hosts {
			h.eng.SetTraceBus(bus)
		}
	}
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	slowEchoServer(r.sim, server, 2*time.Millisecond)

	var elapsed time.Duration
	var ws WindowStats
	var pushErr error
	r.sim.Spawn("pusher", func(tk *sim.Task) {
		win := r.hosts[0].eng.NewWindow(lhA, size)
		defer win.Close()
		start := tk.Now()
		for i := 0; i < n; i++ {
			if err := win.Send(tk, server.PID(), vid.Message{Op: testOp, W: [6]uint32{uint32(i)}}); err != nil {
				pushErr = err
				return
			}
		}
		if err := win.Drain(tk); err != nil {
			pushErr = err
			return
		}
		elapsed = tk.Now().Sub(start)
		ws = win.Stats()
	})
	r.sim.RunFor(5 * time.Minute)
	if pushErr != nil {
		t.Fatalf("window push: %v", pushErr)
	}
	if elapsed == 0 {
		t.Fatal("push did not complete")
	}
	return elapsed, ws, r.hosts[0].eng.Stats()
}

// TestWindowPipelinesRequests: an open window must overlap the
// destination's per-request processing that stop-and-wait serializes.
func TestWindowPipelinesRequests(t *testing.T) {
	const n = 40
	serial, ws1, _ := runWindowPush(t, 1, 1, n, 0, nil)
	piped, ws4, _ := runWindowPush(t, 1, 4, n, 0, nil)
	if piped >= serial {
		t.Fatalf("window 4 (%v) not faster than stop-and-wait (%v)", piped, serial)
	}
	if got := float64(serial) / float64(piped); got < 1.5 {
		t.Fatalf("window speedup %.2fx, want >= 1.5x (serial %v, piped %v)", got, serial, piped)
	}
	if ws1.AvgOccupancy != 1 {
		t.Fatalf("stop-and-wait occupancy %.2f, want 1.0", ws1.AvgOccupancy)
	}
	if ws4.AvgOccupancy <= 1.5 {
		t.Fatalf("window-4 occupancy %.2f, want > 1.5", ws4.AvgOccupancy)
	}
	if ws4.Stalls >= ws1.Stalls {
		t.Fatalf("window-4 stalls %d not below stop-and-wait stalls %d", ws4.Stalls, ws1.Stalls)
	}
}

// TestWindowLossParity: under frame loss the pipeline rides out
// retransmissions, every transaction still completes exactly once at the
// application level, and the trace events stay in lockstep with the
// engine's counters.
func TestWindowLossParity(t *testing.T) {
	const n = 60
	bus := trace.NewBus()
	_, ws, st := runWindowPush(t, 3, 4, n, 0.05, bus)
	if ws.Sends != n {
		t.Fatalf("window sends %d, want %d", ws.Sends, n)
	}
	if st.WindowSends != n {
		t.Fatalf("stats WindowSends %d, want %d", st.WindowSends, n)
	}
	if got := bus.Count(trace.EvCopyWindow); got != st.WindowSends {
		t.Fatalf("EvCopyWindow count %d != Stats.WindowSends %d", got, st.WindowSends)
	}
	if ws.Stalls != st.WindowStalls {
		t.Fatalf("window stalls %d != Stats.WindowStalls %d", ws.Stalls, st.WindowStalls)
	}
	if st.Retransmits == 0 {
		t.Fatal("expected retransmissions at 5% loss")
	}
}

// TestWindowStallsWhenFull: a window of size 1 must stall on every issue
// after the first (it is the stop-and-wait loop).
func TestWindowStallsWhenFull(t *testing.T) {
	const n = 10
	_, ws, _ := runWindowPush(t, 2, 1, n, 0, nil)
	if ws.Stalls < n-1 {
		t.Fatalf("size-1 window stalled %d times for %d sends, want >= %d", ws.Stalls, n, n-1)
	}
}

// TestWindowStickyError: a transaction that fails (no such destination →
// abort) must surface from a later Send or from Drain, and the window must
// not hang.
func TestWindowStickyError(t *testing.T) {
	r := newRig(t, 2, 4)
	lhA := vid.LHID(10)
	r.place(lhA, 0)
	var err error
	done := false
	r.sim.Spawn("pusher", func(tk *sim.Task) {
		win := r.hosts[0].eng.NewWindow(lhA, 2)
		defer win.Close()
		// No such logical host anywhere: the send aborts after its locate
		// and retransmission timeouts.
		if err = win.Send(tk, vid.NewPID(vid.LHID(99), 16), vid.Message{Op: testOp}); err == nil {
			err = win.Drain(tk)
		}
		done = true
	})
	r.sim.RunFor(2 * time.Minute)
	if !done {
		t.Fatal("window push did not finish")
	}
	if err == nil {
		t.Fatal("expected an error from a send to a nonexistent destination")
	}
}
