package ipc

import (
	"bytes"
	"testing"
	"time"

	"vsystem/internal/cpu"
	"vsystem/internal/ethernet"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// fakeHost is a minimal kernel stand-in: a table of resident logical hosts,
// freeze flags, well-known index mappings and group memberships.
type fakeHost struct {
	eng      *Engine
	nic      *ethernet.NIC
	resident map[vid.LHID]bool
	frozen   map[vid.LHID]bool
	wk       map[vid.LHID]map[uint16]vid.PID
	groups   map[vid.PID][]vid.PID
}

// join mirrors the kernel: the first local member of a group programs the
// group's multicast address into the NIC receive filter.
func (h *fakeHost) join(g vid.PID, p vid.PID) {
	if len(h.groups[g]) == 0 {
		h.nic.JoinMulticast(ethernet.Multicast(uint16(g.LH())))
	}
	h.groups[g] = append(h.groups[g], p)
}

func (h *fakeHost) LHResident(lh vid.LHID) bool { return h.resident[lh] }
func (h *fakeHost) Frozen(lh vid.LHID) bool     { return h.frozen[lh] }
func (h *fakeHost) WellKnown(lh vid.LHID, idx uint16) (vid.PID, bool) {
	m := h.wk[lh]
	if m == nil {
		return vid.Nil, false
	}
	p, ok := m[idx]
	return p, ok
}
func (h *fakeHost) GroupMembers(g vid.PID) []vid.PID { return h.groups[g] }

func (h *fakeHost) DeferWhenFrozen(vid.PID, uint16) bool { return true }

type rig struct {
	sim   *sim.Engine
	bus   *ethernet.Bus
	hosts []*fakeHost
}

func newRig(t *testing.T, n int, seed int64) *rig {
	t.Helper()
	se := sim.NewEngine(seed)
	bus := ethernet.NewBus(se)
	r := &rig{sim: se, bus: bus}
	for i := 0; i < n; i++ {
		nic := bus.Attach(ethernet.MAC(i + 1))
		h := &fakeHost{
			nic:      nic,
			resident: make(map[vid.LHID]bool),
			frozen:   make(map[vid.LHID]bool),
			wk:       make(map[vid.LHID]map[uint16]vid.PID),
			groups:   make(map[vid.PID][]vid.PID),
		}
		h.eng = New(se, nic, cpu.New(se), h)
		r.hosts = append(r.hosts, h)
	}
	return r
}

// place makes a logical host resident on host i.
func (r *rig) place(lh vid.LHID, i int) { r.hosts[i].resident[lh] = true }

const testOp = 77

// echoServer runs a port answering every request by incrementing W[0].
func echoServer(se *sim.Engine, p *Port) {
	se.Spawn("echo", func(t *sim.Task) {
		for {
			r := p.Receive(t)
			m := r.Msg
			m.W[0]++
			p.Reply(t, r, m)
		}
	})
}

func TestRemoteSendReceiveReply(t *testing.T) {
	r := newRig(t, 2, 1)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)

	var got vid.Message
	var err error
	var rtt time.Duration
	r.sim.Spawn("client", func(tk *sim.Task) {
		start := tk.Now()
		got, err = client.Send(tk, server.PID(), vid.Message{Op: testOp, W: [6]uint32{41}})
		rtt = tk.Now().Sub(start)
	})
	r.sim.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got.W[0] != 42 {
		t.Fatalf("reply W0 = %d, want 42", got.W[0])
	}
	// First send needs a locate; even so the transaction should complete in
	// well under one retransmit interval... plus locate adds one interval.
	if rtt > 500*time.Millisecond {
		t.Fatalf("rtt = %v, too slow", rtt)
	}
}

func TestLocateResolvesUnknownBinding(t *testing.T) {
	r := newRig(t, 3, 2)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 2)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[2].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)
	ok := false
	r.sim.Spawn("client", func(tk *sim.Task) {
		_, err := client.Send(tk, server.PID(), vid.Message{Op: testOp})
		ok = err == nil
	})
	r.sim.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("send did not complete")
	}
	if r.hosts[0].eng.Stats().Locates == 0 {
		t.Fatal("no locate was broadcast")
	}
	if mac, hit := r.hosts[0].eng.CacheLookup(lhB); !hit || mac != 3 {
		t.Fatalf("cache entry = %v,%v, want mac 3", mac, hit)
	}
}

func TestSlowServerReplyPendingPreventsAbort(t *testing.T) {
	r := newRig(t, 2, 3)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	// Server takes 8 s to answer — far beyond AbortAfterRetries *
	// RetransmitInterval (5 s) — so only reply-pending packets keep the
	// client alive.
	r.sim.Spawn("slow", func(tk *sim.Task) {
		req := server.Receive(tk)
		tk.Sleep(8 * time.Second)
		m := req.Msg
		m.W[0] = 99
		server.Reply(tk, req, m)
	})
	var err error
	var got vid.Message
	r.sim.Spawn("client", func(tk *sim.Task) {
		got, err = client.Send(tk, server.PID(), vid.Message{Op: testOp})
	})
	r.sim.RunFor(20 * time.Second)
	if err != nil {
		t.Fatalf("client aborted: %v", err)
	}
	if got.W[0] != 99 {
		t.Fatalf("W0 = %d", got.W[0])
	}
	if r.hosts[1].eng.Stats().ReplyPendings == 0 {
		t.Fatal("no reply-pending packets were sent")
	}
}

func TestSendToMissingHostTimesOut(t *testing.T) {
	r := newRig(t, 2, 4)
	lhA := vid.LHID(10)
	r.place(lhA, 0)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		_, err = client.Send(tk, vid.NewPID(99, 16), vid.Message{Op: testOp})
	})
	r.sim.RunFor(60 * time.Second)
	if err == nil {
		t.Fatal("send to missing host succeeded")
	}
	if ce, ok := err.(vid.CodeError); !ok || uint16(ce) != vid.CodeTimeout {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestSendToDeadProcessFailsFast(t *testing.T) {
	r := newRig(t, 2, 5)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	var err error
	var elapsed time.Duration
	r.sim.Spawn("client", func(tk *sim.Task) {
		start := tk.Now()
		_, err = client.Send(tk, vid.NewPID(lhB, 44), vid.Message{Op: testOp})
		elapsed = tk.Now().Sub(start)
	})
	r.sim.RunFor(30 * time.Second)
	if ce, ok := err.(vid.CodeError); !ok || uint16(ce) != vid.CodeNoProcess {
		t.Fatalf("err = %v, want no-process", err)
	}
	if elapsed > time.Second {
		t.Fatalf("no-process took %v", elapsed)
	}
}

func TestBulkSegmentTransferRate(t *testing.T) {
	r := newRig(t, 2, 6)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	seg := make([]byte, 32*1024)
	for i := range seg {
		seg[i] = byte(i * 7)
	}
	var rx []byte
	r.sim.Spawn("server", func(tk *sim.Task) {
		req := server.Receive(tk)
		rx = req.Msg.Seg
		server.Reply(tk, req, vid.Message{})
	})
	var err error
	var elapsed time.Duration
	r.sim.Spawn("client", func(tk *sim.Task) {
		start := tk.Now()
		_, err = client.Send(tk, server.PID(), vid.Message{Op: testOp, Seg: seg})
		elapsed = tk.Now().Sub(start)
	})
	r.sim.RunFor(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rx, seg) {
		t.Fatal("segment corrupted in transit")
	}
	// Calibration target: ≈3 ms per KB (the paper's 3 s/Mbyte), so 32 KB
	// in roughly 96 ms; allow for the locate and handshake overheads.
	if elapsed < 80*time.Millisecond || elapsed > 160*time.Millisecond {
		t.Fatalf("32KB transfer took %v, want ≈100ms", elapsed)
	}
}

func TestBulkTransferSurvivesLoss(t *testing.T) {
	r := newRig(t, 2, 7)
	r.bus.SetLoss(ethernet.RandomLoss(r.sim, 0.1))
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	seg := make([]byte, 16*1024)
	for i := range seg {
		seg[i] = byte(i)
	}
	var rx []byte
	r.sim.Spawn("server", func(tk *sim.Task) {
		req := server.Receive(tk)
		rx = req.Msg.Seg
		server.Reply(tk, req, vid.Message{})
	})
	var err error
	done := false
	r.sim.Spawn("client", func(tk *sim.Task) {
		_, err = client.Send(tk, server.PID(), vid.Message{Op: testOp, Seg: seg})
		done = true
	})
	r.sim.RunFor(60 * time.Second)
	if !done || err != nil {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if !bytes.Equal(rx, seg) {
		t.Fatal("segment corrupted under loss")
	}
}

func TestSmallMessagesSurviveHeavyLoss(t *testing.T) {
	r := newRig(t, 2, 8)
	r.bus.SetLoss(ethernet.RandomLoss(r.sim, 0.3))
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)
	okCount := 0
	r.sim.Spawn("client", func(tk *sim.Task) {
		for i := 0; i < 20; i++ {
			m, err := client.Send(tk, server.PID(), vid.Message{Op: testOp, W: [6]uint32{uint32(i)}})
			if err == nil && m.W[0] == uint32(i)+1 {
				okCount++
			}
		}
	})
	r.sim.RunFor(5 * time.Minute)
	if okCount != 20 {
		t.Fatalf("only %d/20 transactions completed under 30%% loss", okCount)
	}
}

func TestNonIdempotentOpExecutedOnce(t *testing.T) {
	r := newRig(t, 2, 9)
	// Heavy loss forces duplicate requests.
	r.bus.SetLoss(ethernet.RandomLoss(r.sim, 0.4))
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	executions := 0
	r.sim.Spawn("server", func(tk *sim.Task) {
		for {
			req := server.Receive(tk)
			executions++
			server.Reply(tk, req, req.Msg)
		}
	})
	completed := 0
	r.sim.Spawn("client", func(tk *sim.Task) {
		for i := 0; i < 10; i++ {
			if _, err := client.Send(tk, server.PID(), vid.Message{Op: testOp}); err == nil {
				completed++
			}
		}
	})
	r.sim.RunFor(5 * time.Minute)
	if completed != 10 {
		t.Fatalf("completed %d/10", completed)
	}
	if executions != 10 {
		t.Fatalf("server executed %d ops for 10 transactions (duplicates ran)", executions)
	}
}

func TestFrozenDestinationDefersRequest(t *testing.T) {
	r := newRig(t, 2, 10)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)
	r.hosts[1].frozen[lhB] = true
	var err error
	var done sim.Time
	r.sim.Spawn("client", func(tk *sim.Task) {
		_, err = client.Send(tk, server.PID(), vid.Message{Op: testOp})
		done = tk.Now()
	})
	// Unfreeze after 10 s — past the plain abort horizon.
	r.sim.After(10*time.Second, func() { r.hosts[1].frozen[lhB] = false })
	r.sim.RunFor(30 * time.Second)
	if err != nil {
		t.Fatalf("send aborted despite reply-pending: %v", err)
	}
	if done < sim.Time(10*time.Second) {
		t.Fatalf("send completed at %v, before unfreeze", done)
	}
	if r.hosts[1].eng.Stats().DroppedFrozen == 0 {
		t.Fatal("no requests were deferred")
	}
}

func TestReplyToFrozenSenderRecoveredFromCache(t *testing.T) {
	r := newRig(t, 2, 11)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
	r.sim.Spawn("server", func(tk *sim.Task) {
		req := server.Receive(tk)
		// Freeze the client's logical host before replying, so the reply
		// is discarded at the client host (§3.1.3).
		r.hosts[0].frozen[lhA] = true
		m := req.Msg
		m.W[0] = 7
		server.Reply(tk, req, m)
	})
	var err error
	var got vid.Message
	r.sim.Spawn("client", func(tk *sim.Task) {
		got, err = client.Send(tk, server.PID(), vid.Message{Op: testOp})
	})
	r.sim.After(5*time.Second, func() { r.hosts[0].frozen[lhA] = false })
	r.sim.RunFor(30 * time.Second)
	if err != nil {
		t.Fatalf("send failed: %v", err)
	}
	if got.W[0] != 7 {
		t.Fatalf("W0 = %d, want 7", got.W[0])
	}
	if r.hosts[0].eng.Stats().DroppedFrozen == 0 {
		t.Fatal("reply was not discarded while frozen")
	}
	if r.hosts[1].eng.Stats().RepliesFromCache == 0 {
		t.Fatal("reply was not recovered from the reply cache")
	}
}

func TestGroupSendFirstReplyWins(t *testing.T) {
	r := newRig(t, 4, 12)
	group := vid.GroupProgramManagers
	lhA := vid.LHID(10)
	r.place(lhA, 0)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	// Members on hosts 1..3 with varying response delays.
	delays := []time.Duration{30 * time.Millisecond, 5 * time.Millisecond, 60 * time.Millisecond}
	for i := 1; i < 4; i++ {
		lh := vid.LHID(20 + i)
		r.place(lh, i)
		p := r.hosts[i].eng.NewPort(vid.NewPID(lh, 16))
		r.hosts[i].join(group, p.PID())
		d := delays[i-1]
		id := uint32(i)
		r.sim.Spawn("member", func(tk *sim.Task) {
			for {
				req := p.Receive(tk)
				tk.Sleep(d)
				m := req.Msg
				m.W[0] = id
				p.Reply(tk, req, m)
			}
		})
	}
	var got vid.Message
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		got, err = client.Send(tk, group, vid.Message{Op: testOp})
	})
	r.sim.RunFor(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.W[0] != 2 {
		t.Fatalf("winner = host %d, want host 2 (fastest)", got.W[0])
	}
}

func TestGroupSendNoMembersTimesOutQuickly(t *testing.T) {
	r := newRig(t, 2, 13)
	lhA := vid.LHID(10)
	r.place(lhA, 0)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	var err error
	var elapsed time.Duration
	r.sim.Spawn("client", func(tk *sim.Task) {
		start := tk.Now()
		_, err = client.Send(tk, vid.GroupProgramManagers, vid.Message{Op: testOp})
		elapsed = tk.Now().Sub(start)
	})
	r.sim.RunFor(30 * time.Second)
	if err == nil {
		t.Fatal("group send with no members succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("group abort took %v", elapsed)
	}
}

func TestWellKnownIndexResolution(t *testing.T) {
	r := newRig(t, 2, 14)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0)
	r.place(lhB, 1)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	// "Kernel server" of host 1, addressed via lhB's well-known index.
	ksPID := vid.NewPID(999, 16)
	r.hosts[1].resident[999] = true
	ks := r.hosts[1].eng.NewPort(ksPID)
	r.hosts[1].wk[lhB] = map[uint16]vid.PID{vid.IdxKernelServer: ksPID}
	echoServer(r.sim, ks)
	var err error
	var got vid.Message
	r.sim.Spawn("client", func(tk *sim.Task) {
		got, err = client.Send(tk, vid.NewPID(lhB, vid.IdxKernelServer), vid.Message{Op: testOp, W: [6]uint32{5}})
	})
	r.sim.RunFor(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.W[0] != 6 {
		t.Fatalf("W0 = %d", got.W[0])
	}
}

func TestPortStateMigration(t *testing.T) {
	r := newRig(t, 3, 15)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0) // client's LH starts on host 0
	r.place(lhB, 2) // server
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[2].eng.NewPort(vid.NewPID(lhB, 16))
	// The server replies only after the client's LH has "migrated".
	r.sim.Spawn("server", func(tk *sim.Task) {
		req := server.Receive(tk)
		tk.Sleep(3 * time.Second)
		m := req.Msg
		m.W[0] = 123
		server.Reply(tk, req, m)
	})

	var got vid.Message
	var err error
	replied := make(chan struct{}) // unused: determinism note — not used
	_ = replied
	r.sim.Spawn("client", func(tk *sim.Task) {
		client.StartSend(tk, server.PID(), vid.Message{Op: testOp})
		// Simulate migration at 1 s: freeze, snapshot, move to host 1.
		tk.Sleep(time.Second)
		r.hosts[0].frozen[lhA] = true
		st := client.Snapshot()
		client.Close()
		r.hosts[0].resident[lhA] = false
		r.hosts[0].frozen[lhA] = false
		r.hosts[1].resident[lhA] = true
		client = r.hosts[1].eng.RestorePort(st, true)
		r.hosts[1].eng.BroadcastBinding(lhA)
		got, err = client.AwaitReply(tk)
	})
	r.sim.RunFor(60 * time.Second)
	if err != nil {
		t.Fatalf("migrated send failed: %v", err)
	}
	if got.W[0] != 123 {
		t.Fatalf("W0 = %d", got.W[0])
	}
}

func TestServingRequestMigratesWithPort(t *testing.T) {
	r := newRig(t, 3, 16)
	lhA, lhB := vid.LHID(10), vid.LHID(20)
	r.place(lhA, 0) // client
	r.place(lhB, 1) // server that will migrate to host 2
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))

	r.sim.Spawn("server", func(tk *sim.Task) {
		req := server.Receive(tk)
		// Mid-service migration: freeze, snapshot (including the current
		// request), restore on host 2, reply from there.
		r.hosts[1].frozen[lhB] = true
		st := server.Snapshot()
		server.Close()
		r.hosts[1].resident[lhB] = false
		r.hosts[1].frozen[lhB] = false
		r.hosts[2].resident[lhB] = true
		server = r.hosts[2].eng.RestorePort(st, true)
		r.hosts[2].eng.BroadcastBinding(lhB)
		tk.Sleep(100 * time.Millisecond)
		// The open request migrated in the port state; re-derive the
		// handle on the restored port.
		req2 := server.OpenRequest(req.Src)
		m := req.Msg
		m.W[0] = 55
		server.Reply(tk, req2, m)
	})
	var got vid.Message
	var err error
	r.sim.Spawn("client", func(tk *sim.Task) {
		got, err = client.Send(tk, server.PID(), vid.Message{Op: testOp})
	})
	r.sim.RunFor(60 * time.Second)
	if err != nil {
		t.Fatalf("send failed: %v", err)
	}
	if got.W[0] != 55 {
		t.Fatalf("W0 = %d", got.W[0])
	}
}

func TestLocalDelivery(t *testing.T) {
	r := newRig(t, 1, 17)
	lhA, lhB := vid.LHID(10), vid.LHID(11)
	r.place(lhA, 0)
	r.place(lhB, 0)
	client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
	server := r.hosts[0].eng.NewPort(vid.NewPID(lhB, 16))
	echoServer(r.sim, server)
	var err error
	var got vid.Message
	r.sim.Spawn("client", func(tk *sim.Task) {
		got, err = client.Send(tk, server.PID(), vid.Message{Op: testOp, W: [6]uint32{1}})
	})
	r.sim.RunFor(5 * time.Second)
	if err != nil || got.W[0] != 2 {
		t.Fatalf("local send: %v %v", got, err)
	}
	st := r.hosts[0].eng.Stats()
	if st.LocalDeliveries == 0 {
		t.Fatal("no local deliveries recorded")
	}
	if st.TxPackets != 0 {
		t.Fatalf("local transaction used the wire: %d packets", st.TxPackets)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, sim.Time) {
		r := newRig(t, 3, 42)
		r.bus.SetLoss(ethernet.RandomLoss(r.sim, 0.05))
		lhA, lhB := vid.LHID(10), vid.LHID(20)
		r.place(lhA, 0)
		r.place(lhB, 1)
		client := r.hosts[0].eng.NewPort(vid.NewPID(lhA, 16))
		server := r.hosts[1].eng.NewPort(vid.NewPID(lhB, 16))
		echoServer(r.sim, server)
		var finished sim.Time
		r.sim.Spawn("client", func(tk *sim.Task) {
			for i := 0; i < 10; i++ {
				client.Send(tk, server.PID(), vid.Message{Op: testOp, Seg: make([]byte, 4096)})
			}
			finished = tk.Now()
		})
		r.sim.RunFor(2 * time.Minute)
		return r.bus.Stats().Frames, finished
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("replay diverged: frames %d/%d, finish %v/%v", f1, f2, t1, t2)
	}
}
