package fileserver

import (
	"bytes"
	"testing"
	"time"

	"vsystem/internal/ethernet"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

type rig struct {
	eng    *sim.Engine
	fs     *Server
	client *kernel.Host
}

func newRig(seed int64) *rig {
	eng := sim.NewEngine(seed)
	bus := ethernet.NewBus(eng)
	client := kernel.NewHost(eng, bus, 0, "ws0")
	server := kernel.NewHost(eng, bus, 1, "fserv")
	return &rig{eng: eng, fs: Start(server), client: client}
}

// call runs one request from a client process and returns the reply.
func (r *rig) call(t *testing.T, msg vid.Message) vid.Message {
	t.Helper()
	var reply vid.Message
	var err error
	r.client.SpawnServer("caller", 4096, func(ctx *kernel.ProcCtx) {
		reply, err = ctx.Send(r.fs.PID(), msg)
	})
	r.eng.RunFor(time.Minute)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return reply
}

func TestStatAndRead(t *testing.T) {
	r := newRig(1)
	data := bytes.Repeat([]byte("v-system "), 1000)
	r.fs.Put("prog", data)

	st := r.call(t, vid.Message{Op: OpStat, Seg: []byte("prog")})
	if !st.OK() || int(st.W[0]) != len(data) {
		t.Fatalf("stat = %v", st)
	}
	if vid.PID(st.W[5]) != r.fs.PID() {
		t.Fatal("stat reply does not identify the server")
	}

	rd := r.call(t, vid.Message{Op: OpRead, W: [6]uint32{100, 500}, Seg: []byte("prog")})
	if !rd.OK() || !bytes.Equal(rd.Seg, data[100:600]) {
		t.Fatalf("read mismatch (%d bytes)", len(rd.Seg))
	}

	// Read past EOF truncates.
	rd = r.call(t, vid.Message{Op: OpRead, W: [6]uint32{uint32(len(data)) - 10, 500}, Seg: []byte("prog")})
	if !rd.OK() || len(rd.Seg) != 10 {
		t.Fatalf("eof read = %d bytes", len(rd.Seg))
	}
}

func TestStatMissing(t *testing.T) {
	r := newRig(2)
	st := r.call(t, vid.Message{Op: OpStat, Seg: []byte("nope")})
	if st.OK() {
		t.Fatal("stat of missing file succeeded")
	}
}

func TestWriteExtendsAndOverwrites(t *testing.T) {
	r := newRig(3)
	seg := append([]byte("f\x00"), []byte("hello")...)
	w := r.call(t, vid.Message{Op: OpWrite, Seg: seg})
	if !w.OK() || w.W[0] != 5 {
		t.Fatalf("write = %v", w)
	}
	seg = append([]byte("f\x00"), []byte("XY")...)
	w = r.call(t, vid.Message{Op: OpWrite, W: [6]uint32{4}, Seg: seg})
	if !w.OK() || w.W[0] != 6 {
		t.Fatalf("extend = %v", w)
	}
	got, _ := r.fs.Get("f")
	if string(got) != "hellXY" {
		t.Fatalf("contents = %q", got)
	}
}

func TestRemove(t *testing.T) {
	r := newRig(4)
	r.fs.Put("f", []byte("x"))
	r.call(t, vid.Message{Op: OpRemove, Seg: []byte("f")})
	if _, ok := r.fs.Get("f"); ok {
		t.Fatal("file survived remove")
	}
}

func TestPagingStore(t *testing.T) {
	r := newRig(5)
	page := bytes.Repeat([]byte{7}, 1024)
	out := append([]byte("pg/1/2\x00"), page...)
	if rep := r.call(t, vid.Message{Op: OpPageOut, Seg: out}); !rep.OK() {
		t.Fatalf("pageout = %v", rep)
	}
	in := r.call(t, vid.Message{Op: OpPageIn, Seg: []byte("pg/1/2")})
	if !in.OK() || !bytes.Equal(in.Seg, page) {
		t.Fatal("pagein mismatch")
	}
	miss := r.call(t, vid.Message{Op: OpPageIn, Seg: []byte("pg/9/9")})
	if miss.OK() {
		t.Fatal("pagein of missing page succeeded")
	}
}

func TestPageOutRun(t *testing.T) {
	r := newRig(6)
	pages := []mem.PageNo{4, 9}
	data := [][]byte{bytes.Repeat([]byte{1}, 1024), bytes.Repeat([]byte{2}, 1024)}
	seg := append([]byte("pfx\x00"), kernel.EncodePageRun(3, pages, data)...)
	if rep := r.call(t, vid.Message{Op: OpPageOutRun, Seg: seg}); !rep.OK() {
		t.Fatalf("pageout-run = %v", rep)
	}
	in := r.call(t, vid.Message{Op: OpPageIn, Seg: []byte("pfx/3/9")})
	if !in.OK() || in.Seg[0] != 2 {
		t.Fatal("run page not stored under per-page key")
	}
}

func TestList(t *testing.T) {
	r := newRig(7)
	r.fs.Put("b", nil)
	r.fs.Put("a", nil)
	l := r.call(t, vid.Message{Op: OpList})
	if string(l.Seg) != "a\x00b\x00" {
		t.Fatalf("list = %q", l.Seg)
	}
}

func TestBadRequests(t *testing.T) {
	r := newRig(8)
	if rep := r.call(t, vid.Message{Op: 0x6F}); rep.OK() {
		t.Fatal("unknown op succeeded")
	}
	if rep := r.call(t, vid.Message{Op: OpWrite, Seg: []byte("no-nul")}); rep.OK() {
		t.Fatal("malformed write succeeded")
	}
}
