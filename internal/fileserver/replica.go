package fileserver

import (
	"encoding/binary"
	"sort"

	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/rsm"
	"vsystem/internal/sim"
	"vsystem/internal/vid"
)

// Replicated backend: StartReplica members carry the full file/page store
// as a replicated state machine. Mutations (OpWrite, OpRemove, OpPageOut,
// OpPageOutRun) are committed through the rsm log by the leader and applied
// on every replica; reads are served by the leader or by any follower that
// is provably caught up (rsm.Synced), so image loads — and the post-copy
// flush-image fallback — survive the death of any single server machine.
//
// Program images installed at boot are poked directly into every replica's
// store (Put), not logged: they are immutable plate stock a real server
// would reload from disk, and keeping them out of the log keeps snapshots
// from being the only thing that can restock a rejoining replica.

// FsUnicast marks a request addressed to one pinned replica (set in W5).
// A replica that cannot serve answers a unicast request with
// CodeNotLeader + the leader's service PID in W4; a group-addressed
// request (no flag) it drops in silence, leaving the answer to a replica
// that can.
const FsUnicast uint32 = 1

// StartReplica spawns file-server replica id of n on a host, joining both
// the client-facing file-server group and the replication group. The
// caller owns store — the replica's "disk" — and re-passes it on restart.
func StartReplica(h *kernel.Host, id, n int, store *rsm.Store) *Server {
	s := &Server{files: make(map[string][]byte), pages: make(map[string][]byte)}
	s.proc = h.SpawnServer("fileserver", 128*1024, s.run)
	h.JoinGroup(vid.GroupFileServers, s.proc.PID())
	s.rep = rsm.New(h, rsm.Config{
		Name: "fs", Group: vid.GroupFSRSM, ID: id, N: n, SvcPID: s.proc.PID(),
	}, &fsSM{s}, store)
	return s
}

// Replica returns the server's consensus replica (nil when unreplicated).
func (s *Server) Replica() *rsm.Replica { return s.rep }

// LeaderSvc returns the service PID of the current file-server leader as
// this replica knows it (vid.Nil when unknown or unreplicated).
func (s *Server) LeaderSvc() vid.PID {
	if s.rep == nil {
		return vid.Nil
	}
	return s.rep.LeaderSvcPID()
}

// canServe reports whether this replica may answer the request: writes and
// page-ins need the fenced leader (freshness); other reads are also served
// by a caught-up follower.
func (s *Server) canServe(now sim.Time, op uint16) bool {
	if s.rep == nil {
		return true
	}
	switch op {
	case OpWrite, OpRemove, OpPageOut, OpPageOutRun, OpPageIn:
		return s.rep.IsLeader()
	default:
		return s.rep.IsLeader() || s.rep.Synced(now)
	}
}

// deflect disposes of a request this replica may not answer.
func (s *Server) deflect(ctx *kernel.ProcCtx, req *ipc.Req) {
	if req.Msg.W[5]&FsUnicast != 0 {
		ctx.Reply(req, vid.Message{Op: req.Msg.Op, Code: vid.CodeNotLeader,
			W: [6]uint32{0, 0, 0, 0, uint32(s.LeaderSvc())}})
		return
	}
	s.proc.Port().Drop(req)
}

// ----------------------------------------------------------- log commands

// A logged mutation is [op uint16][w0 uint32][seg...] — the wire request's
// essentials, so Apply replays exactly what the leader admitted.
func encodeFsCmd(op uint16, w0 uint32, seg []byte) []byte {
	b := make([]byte, 6+len(seg))
	binary.LittleEndian.PutUint16(b[0:], op)
	binary.LittleEndian.PutUint32(b[2:], w0)
	copy(b[6:], seg)
	return b
}

func decodeFsCmd(cmd []byte) (op uint16, w0 uint32, seg []byte, ok bool) {
	if len(cmd) < 6 {
		return 0, 0, nil, false
	}
	return binary.LittleEndian.Uint16(cmd[0:]),
		binary.LittleEndian.Uint32(cmd[2:]), cmd[6:], true
}

// commitWrite routes one admitted mutation through the log and returns the
// applied result (the leader's own apply produces it).
func (s *Server) commitWrite(ctx *kernel.ProcCtx, op uint16, w0 uint32, seg []byte) ([]byte, error) {
	return s.rep.Submit(ctx, encodeFsCmd(op, w0, seg))
}

// submitRun splits a page-out run into log commands small enough for one
// append entry (the raw 30-page run exceeds RsmMaxCmd) and commits them in
// order. Page stores are keyed, so replayed sub-runs are idempotent.
func (s *Server) submitRun(ctx *kernel.ProcCtx, prefix string, spaceID uint32,
	pages []mem.PageNo, data [][]byte) error {

	perCmd := (params.RsmMaxCmd - len(prefix) - 64) / (mem.PageSize + 8)
	if perCmd < 1 {
		perCmd = 1
	}
	for off := 0; off < len(pages); off += perCmd {
		end := off + perCmd
		if end > len(pages) {
			end = len(pages)
		}
		seg := append([]byte(prefix), 0)
		seg = append(seg, kernel.EncodePageRun(spaceID, pages[off:end], data[off:end])...)
		if _, err := s.rep.Submit(ctx, encodeFsCmd(OpPageOutRun, 0, seg)); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------- state machine

type fsSM struct{ s *Server }

func (f *fsSM) Apply(t *sim.Task, cmd []byte) []byte {
	op, w0, seg, ok := decodeFsCmd(cmd)
	if !ok {
		return nil
	}
	switch op {
	case OpWrite:
		name, payload, ok := splitNameData(seg)
		if !ok {
			return nil
		}
		size := f.s.applyWrite(name, int(w0), payload)
		var res [4]byte
		binary.LittleEndian.PutUint32(res[:], uint32(size))
		return res[:]
	case OpRemove:
		delete(f.s.files, string(seg))
	case OpPageOut:
		if key, payload, ok := splitNameData(seg); ok {
			f.s.pages[key] = append([]byte(nil), payload...)
		}
	case OpPageOutRun:
		prefix, blob, ok := splitNameData(seg)
		if !ok {
			return nil
		}
		if spaceID, pages, data, err := kernel.DecodePageRun(blob); err == nil {
			f.s.applyRun(prefix, spaceID, pages, data)
		}
	}
	return nil
}

// Snapshot renders the whole store deterministically: sorted names,
// length-prefixed — a map-order-dependent encoding would break the
// byte-identical double-run gate.
func (f *fsSM) Snapshot() []byte {
	var b []byte
	b = appendSortedMap(b, f.s.files)
	b = appendSortedMap(b, f.s.pages)
	return b
}

func (f *fsSM) Restore(snap []byte) {
	files, rest, ok := decodeSnapMap(snap)
	if !ok {
		return
	}
	pages, _, ok := decodeSnapMap(rest)
	if !ok {
		return
	}
	f.s.files, f.s.pages = files, pages
}

func appendSortedMap(b []byte, m map[string][]byte) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(keys)))
	for _, k := range keys {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(k)))
		b = append(b, k...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(m[k])))
		b = append(b, m[k]...)
	}
	return b
}

func decodeSnapMap(b []byte) (map[string][]byte, []byte, bool) {
	if len(b) < 4 {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	m := make(map[string][]byte, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, nil, false
		}
		kl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < kl {
			return nil, nil, false
		}
		k := string(b[:kl])
		b = b[kl:]
		if len(b) < 4 {
			return nil, nil, false
		}
		vl := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vl {
			return nil, nil, false
		}
		m[k] = append([]byte(nil), b[:vl]...)
		b = b[vl:]
	}
	return m, b, true
}
