// Package fileserver implements the network file server.
//
// The paper's workstations are diskless: program images load from network
// file servers, so "the cost of program loading is independent of whether
// a program is executed locally or remotely" (§4.1) — a keystone of
// transparent remote execution. The server also provides the paging
// backend for the §3.2 virtual-memory migration variant and the keep-state
// -in-global-servers discipline that avoids residual dependencies (§3.3).
package fileserver

import (
	"fmt"
	"sort"
	"time"

	"vsystem/internal/kernel"
	"vsystem/internal/params"
	"vsystem/internal/vid"
)

// Operations.
const (
	// OpStat: Seg=name → W0=size (bytes).
	OpStat uint16 = 0x50 + iota
	// OpRead: Seg=name, W0=offset, W1=length (≤ SegMax) → Seg=data.
	OpRead
	// OpWrite: Seg=name bytes NUL data bytes, W0=offset → W0=new size.
	OpWrite
	// OpRemove: Seg=name.
	OpRemove
	// OpPageOut: paging backend — Seg=key NUL data.
	OpPageOut
	// OpPageIn: Seg=key → Seg=data.
	OpPageIn
	// OpList: → Seg=NUL-separated names (tools).
	OpList
	// OpPageOutRun: paging backend bulk write — Seg=prefix NUL page-run
	// (kernel.EncodePageRun format); each page is stored under
	// "prefix/space/pageno".
	OpPageOutRun
)

// Server is a network file server process with an in-memory store.
type Server struct {
	proc  *kernel.Process
	files map[string][]byte
	pages map[string][]byte
}

// Start spawns a file server on a host (typically a dedicated server
// machine) and joins the file-server group.
func Start(h *kernel.Host) *Server {
	s := &Server{files: make(map[string][]byte), pages: make(map[string][]byte)}
	s.proc = h.SpawnServer("fileserver", 128*1024, s.run)
	h.JoinGroup(vid.GroupFileServers, s.proc.PID())
	return s
}

// PID returns the file server's process identifier.
func (s *Server) PID() vid.PID { return s.proc.PID() }

// Put stores a file directly (cluster setup; no simulated cost).
func (s *Server) Put(name string, data []byte) {
	s.files[name] = append([]byte(nil), data...)
}

// Get reads a file directly (tests; no simulated cost).
func (s *Server) Get(name string) ([]byte, bool) {
	b, ok := s.files[name]
	return b, ok
}

// blockCost charges the per-block file-service cost for n bytes.
func blockCost(n int) time.Duration {
	blocks := (n + 1023) / 1024
	if blocks < 1 {
		blocks = 1
	}
	return time.Duration(blocks) * params.FileServerBlockCPU
}

func (s *Server) run(ctx *kernel.ProcCtx) {
	for {
		req := ctx.Receive()
		m := req.Msg
		switch m.Op {
		case OpStat:
			data, ok := s.files[m.SegString()]
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			ctx.Compute(params.FileServerBlockCPU)
			// W5 identifies the server, so clients that found it through
			// the file-server group can address it directly afterwards.
			ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{
				uint32(len(data)), 0, 0, 0, 0, uint32(s.proc.PID()),
			}})

		case OpRead:
			data, ok := s.files[m.SegString()]
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			off, n := int(m.W[0]), int(m.W[1])
			if n > vid.SegMax {
				n = vid.SegMax
			}
			if off > len(data) {
				off = len(data)
			}
			if off+n > len(data) {
				n = len(data) - off
			}
			ctx.Compute(blockCost(n))
			ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{uint32(n)}, Seg: data[off : off+n]})

		case OpWrite:
			name, payload, ok := splitNameData(m.Seg)
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			off := int(m.W[0])
			f := s.files[name]
			if need := off + len(payload); need > len(f) {
				f = append(f, make([]byte, need-len(f))...)
			}
			copy(f[off:], payload)
			s.files[name] = f
			ctx.Compute(blockCost(len(payload)))
			ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{uint32(len(f))}})

		case OpRemove:
			delete(s.files, m.SegString())
			ctx.Reply(req, vid.Message{Op: m.Op})

		case OpPageOut:
			key, payload, ok := splitNameData(m.Seg)
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			s.pages[key] = append([]byte(nil), payload...)
			ctx.Compute(blockCost(len(payload)))
			ctx.Reply(req, vid.Message{Op: m.Op})

		case OpPageOutRun:
			prefix, blob, ok := splitNameData(m.Seg)
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			spaceID, pages, data, err := kernel.DecodePageRun(blob)
			if err != nil {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			n := 0
			for i, pn := range pages {
				key := fmt.Sprintf("%s/%d/%d", prefix, spaceID, pn)
				s.pages[key] = append([]byte(nil), data[i]...)
				n += len(data[i])
			}
			ctx.Compute(blockCost(n))
			ctx.Reply(req, vid.Message{Op: m.Op})

		case OpPageIn:
			data, ok := s.pages[m.SegString()]
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			ctx.Compute(blockCost(len(data)))
			ctx.Reply(req, vid.Message{Op: m.Op, Seg: data})

		case OpList:
			names := make([]string, 0, len(s.files))
			for name := range s.files {
				names = append(names, name)
			}
			sort.Strings(names)
			var seg []byte
			for _, name := range names {
				seg = append(seg, name...)
				seg = append(seg, 0)
			}
			ctx.Reply(req, vid.Message{Op: m.Op, Seg: seg})

		default:
			ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		}
	}
}

// splitNameData separates "name\x00data" segments.
func splitNameData(seg []byte) (string, []byte, bool) {
	for i, b := range seg {
		if b == 0 {
			return string(seg[:i]), seg[i+1:], true
		}
	}
	return "", nil, false
}
