// Package fileserver implements the network file server.
//
// The paper's workstations are diskless: program images load from network
// file servers, so "the cost of program loading is independent of whether
// a program is executed locally or remotely" (§4.1) — a keystone of
// transparent remote execution. The server also provides the paging
// backend for the §3.2 virtual-memory migration variant and the keep-state
// -in-global-servers discipline that avoids residual dependencies (§3.3).
package fileserver

import (
	"fmt"
	"sort"
	"time"

	"vsystem/internal/ipc"
	"vsystem/internal/kernel"
	"vsystem/internal/mem"
	"vsystem/internal/params"
	"vsystem/internal/rsm"
	"vsystem/internal/vid"
)

// Operations.
const (
	// OpStat: Seg=name → W0=size (bytes).
	OpStat uint16 = 0x50 + iota
	// OpRead: Seg=name, W0=offset, W1=length (≤ SegMax) → Seg=data.
	OpRead
	// OpWrite: Seg=name bytes NUL data bytes, W0=offset → W0=new size.
	OpWrite
	// OpRemove: Seg=name.
	OpRemove
	// OpPageOut: paging backend — Seg=key NUL data.
	OpPageOut
	// OpPageIn: Seg=key → Seg=data.
	OpPageIn
	// OpList: → Seg=NUL-separated names (tools).
	OpList
	// OpPageOutRun: paging backend bulk write — Seg=prefix NUL page-run
	// (kernel.EncodePageRun format); each page is stored under
	// "prefix/space/pageno".
	OpPageOutRun
)

// Server is a network file server process with an in-memory store.
type Server struct {
	proc  *kernel.Process
	files map[string][]byte
	pages map[string][]byte
	rep   *rsm.Replica // nil when the server runs unreplicated
}

// Start spawns a file server on a host (typically a dedicated server
// machine) and joins the file-server group.
func Start(h *kernel.Host) *Server {
	s := &Server{files: make(map[string][]byte), pages: make(map[string][]byte)}
	s.proc = h.SpawnServer("fileserver", 128*1024, s.run)
	h.JoinGroup(vid.GroupFileServers, s.proc.PID())
	return s
}

// PID returns the file server's process identifier.
func (s *Server) PID() vid.PID { return s.proc.PID() }

// Put stores a file directly (cluster setup; no simulated cost).
func (s *Server) Put(name string, data []byte) {
	s.files[name] = append([]byte(nil), data...)
}

// Get reads a file directly (tests; no simulated cost).
func (s *Server) Get(name string) ([]byte, bool) {
	b, ok := s.files[name]
	return b, ok
}

// blockCost charges the per-block file-service cost for n bytes.
func blockCost(n int) time.Duration {
	blocks := (n + 1023) / 1024
	if blocks < 1 {
		blocks = 1
	}
	return time.Duration(blocks) * params.FileServerBlockCPU
}

func (s *Server) run(ctx *kernel.ProcCtx) {
	for {
		req := ctx.Receive()
		m := req.Msg
		// Replicated servers answer only when their copy is authoritative:
		// writes need the fenced leader, reads a leader or caught-up
		// follower. Everyone else deflects (redirect or group silence).
		if !s.canServe(ctx.Now(), m.Op) {
			s.deflect(ctx, req)
			continue
		}
		switch m.Op {
		case OpStat:
			data, ok := s.files[m.SegString()]
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			ctx.Compute(params.FileServerBlockCPU)
			// W5 identifies the answering server, so clients that found it
			// through the file-server group can address it directly
			// afterwards; W4 carries the write leader as this replica knows
			// it, so read-pinned clients learn where mutations go.
			ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{
				uint32(len(data)), 0, 0, 0, uint32(s.LeaderSvc()), uint32(s.proc.PID()),
			}})

		case OpRead:
			data, ok := s.files[m.SegString()]
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			off, n := int(m.W[0]), int(m.W[1])
			if n > vid.SegMax {
				n = vid.SegMax
			}
			if off > len(data) {
				off = len(data)
			}
			if off+n > len(data) {
				n = len(data) - off
			}
			ctx.Compute(blockCost(n))
			ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{uint32(n)}, Seg: data[off : off+n]})

		case OpWrite:
			name, payload, ok := splitNameData(m.Seg)
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			var size int
			if s.rep != nil {
				res, err := s.commitWrite(ctx, OpWrite, m.W[0], m.Seg)
				if err != nil {
					s.replyCommitErr(ctx, req, err)
					continue
				}
				if len(res) < 4 {
					ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
					continue
				}
				size = int(leUint32(res))
			} else {
				size = s.applyWrite(name, int(m.W[0]), payload)
			}
			ctx.Compute(blockCost(len(payload)))
			ctx.Reply(req, vid.Message{Op: m.Op, W: [6]uint32{uint32(size)}})

		case OpRemove:
			if s.rep != nil {
				if _, err := s.commitWrite(ctx, OpRemove, 0, m.Seg); err != nil {
					s.replyCommitErr(ctx, req, err)
					continue
				}
			} else {
				delete(s.files, m.SegString())
			}
			ctx.Reply(req, vid.Message{Op: m.Op})

		case OpPageOut:
			key, payload, ok := splitNameData(m.Seg)
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			if s.rep != nil {
				if _, err := s.commitWrite(ctx, OpPageOut, 0, m.Seg); err != nil {
					s.replyCommitErr(ctx, req, err)
					continue
				}
			} else {
				s.pages[key] = append([]byte(nil), payload...)
			}
			ctx.Compute(blockCost(len(payload)))
			ctx.Reply(req, vid.Message{Op: m.Op})

		case OpPageOutRun:
			prefix, blob, ok := splitNameData(m.Seg)
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			spaceID, pages, data, err := kernel.DecodePageRun(blob)
			if err != nil {
				ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
				continue
			}
			if s.rep != nil {
				// A full run exceeds the log's command budget: commit it as
				// ordered sub-run commands (keyed stores keep this idempotent).
				if err := s.submitRun(ctx, prefix, spaceID, pages, data); err != nil {
					s.replyCommitErr(ctx, req, err)
					continue
				}
			} else {
				s.applyRun(prefix, spaceID, pages, data)
			}
			n := 0
			for _, d := range data {
				n += len(d)
			}
			ctx.Compute(blockCost(n))
			ctx.Reply(req, vid.Message{Op: m.Op})

		case OpPageIn:
			data, ok := s.pages[m.SegString()]
			if !ok {
				ctx.Reply(req, vid.ErrMsg(vid.CodeNotFound))
				continue
			}
			ctx.Compute(blockCost(len(data)))
			ctx.Reply(req, vid.Message{Op: m.Op, Seg: data})

		case OpList:
			names := make([]string, 0, len(s.files))
			for name := range s.files {
				names = append(names, name)
			}
			sort.Strings(names)
			var seg []byte
			for _, name := range names {
				seg = append(seg, name...)
				seg = append(seg, 0)
			}
			ctx.Reply(req, vid.Message{Op: m.Op, Seg: seg})

		default:
			ctx.Reply(req, vid.ErrMsg(vid.CodeBadRequest))
		}
	}
}

// applyWrite mutates the file store and returns the file's new size. It is
// the one OpWrite mutation path, shared by the unreplicated server and the
// replicated state machine's Apply.
func (s *Server) applyWrite(name string, off int, payload []byte) int {
	f := s.files[name]
	if need := off + len(payload); need > len(f) {
		f = append(f, make([]byte, need-len(f))...)
	}
	copy(f[off:], payload)
	s.files[name] = f
	return len(f)
}

// applyRun stores a decoded page run under "prefix/space/pageno" keys.
func (s *Server) applyRun(prefix string, spaceID uint32, pages []mem.PageNo, data [][]byte) {
	for i, pn := range pages {
		key := fmt.Sprintf("%s/%d/%d", prefix, spaceID, pn)
		s.pages[key] = append([]byte(nil), data[i]...)
	}
}

// replyCommitErr maps a failed log commit to a wire reply: lost leadership
// deflects (the client retries against the group), anything else times out.
func (s *Server) replyCommitErr(ctx *kernel.ProcCtx, req *ipc.Req, err error) {
	if err == rsm.ErrNotLeader {
		s.deflect(ctx, req)
		return
	}
	ctx.Reply(req, vid.ErrMsg(vid.CodeTimeout))
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// splitNameData separates "name\x00data" segments.
func splitNameData(seg []byte) (string, []byte, bool) {
	for i, b := range seg {
		if b == 0 {
			return string(seg[:i]), seg[i+1:], true
		}
	}
	return "", nil, false
}
