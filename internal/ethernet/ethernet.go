// Package ethernet simulates a shared 10 Mbit/s Ethernet segment: a single
// broadcast medium on which frames serialize, with optional loss injection.
//
// The model is deliberately simple — FIFO access to the medium rather than
// CSMA/CD — because the behaviours the reproduction depends on are frame
// serialization at 10 Mbit/s, broadcast/multicast delivery, and packet
// loss. Propagation delay on a building-scale segment (< 10 µs) is folded
// into the per-frame overhead.
package ethernet

import (
	"fmt"
	"time"

	"vsystem/internal/params"
	"vsystem/internal/sim"
	"vsystem/internal/trace"
)

// MAC is a station address on the segment.
type MAC uint16

// Broadcast addresses every station.
const Broadcast MAC = 0xFFFF

// MulticastBit marks a multicast (group) address. Station addresses are
// small integers and never carry it.
const MulticastBit MAC = 0x8000

// Multicast forms the multicast address for a group id.
func Multicast(id uint16) MAC { return MAC(id) | MulticastBit }

// IsMulticast reports whether the address is a multicast group address.
func (m MAC) IsMulticast() bool { return m != Broadcast && m&MulticastBit != 0 }

func (m MAC) String() string {
	if m == Broadcast {
		return "mac:*"
	}
	if m.IsMulticast() {
		return fmt.Sprintf("mac:g%02x", uint16(m&^MulticastBit))
	}
	return fmt.Sprintf("mac:%02x", uint16(m))
}

// Frame is one unit of transmission.
type Frame struct {
	Src, Dst MAC
	Payload  []byte
}

// Size returns the payload size in bytes.
func (f Frame) Size() int { return len(f.Payload) }

// LossFunc decides whether a frame is dropped in transit. It may be nil (no
// loss). It is consulted once per frame; a dropped frame still occupies the
// medium for its transmission time.
type LossFunc func(f Frame) bool

// CutFunc decides whether delivery of a frame from src to dst is suppressed
// (a network partition). It may be nil (no cuts). It is consulted once per
// receiver at delivery time; a cut frame still occupies the medium.
type CutFunc func(src, dst MAC) bool

// CorruptFunc decides whether a frame is mangled in transit: the frame is
// delivered, but with its first payload byte zeroed, so the receiver's
// packet layer rejects it as corrupt. It may be nil (no corruption). Like
// LossFunc it is consulted once per frame.
type CorruptFunc func(f Frame) bool

// Stats aggregates segment-level counters.
type Stats struct {
	Frames     int64
	Bytes      int64
	Dropped    int64
	Corrupted  int64
	Cut        int64 // suppressed deliveries (per receiver)
	Broadcasts int64
	BusyTime   time.Duration
}

// Bus is the shared segment.
type Bus struct {
	eng       *sim.Engine
	stations  map[MAC]*NIC
	order     []*NIC // attach order, for deterministic broadcast delivery
	busyUntil sim.Time
	loss      LossFunc
	cut       CutFunc
	corrupt   CorruptFunc
	stats     Stats
	trace     *trace.Bus // nil until wired; nil bus is a no-op target
}

// NewBus creates an empty segment on the engine.
func NewBus(eng *sim.Engine) *Bus {
	return &Bus{eng: eng, stations: make(map[MAC]*NIC)}
}

// SetLoss installs a loss model. RandomLoss(p, eng) is the common choice.
func (b *Bus) SetLoss(f LossFunc) { b.loss = f }

// Loss returns the installed loss model (nil if none) so a fault injector
// can save and restore it around a loss burst.
func (b *Bus) Loss() LossFunc { return b.loss }

// SetCut installs a partition model consulted per receiver at delivery
// time (nil to clear).
func (b *Bus) SetCut(f CutFunc) { b.cut = f }

// SetCorrupt installs a corruption model (nil to clear).
func (b *Bus) SetCorrupt(f CorruptFunc) { b.corrupt = f }

// Corrupt returns the installed corruption model (nil if none).
func (b *Bus) Corrupt() CorruptFunc { return b.corrupt }

// Stats returns a copy of the segment counters.
func (b *Bus) Stats() Stats { return b.stats }

// SetTraceBus wires the segment to the cluster's trace bus (nil to
// disable): every frame transmission and every in-transit loss is
// published.
func (b *Bus) SetTraceBus(t *trace.Bus) { b.trace = t }

// RandomLoss returns a LossFunc dropping each frame independently with
// probability p, drawing from the engine's deterministic random source.
func RandomLoss(eng *sim.Engine, p float64) LossFunc {
	return func(Frame) bool { return eng.Rand().Float64() < p }
}

// Attach creates a NIC with the given address. Addresses must be unique.
func (b *Bus) Attach(mac MAC) *NIC {
	if mac == Broadcast {
		panic("ethernet: cannot attach the broadcast address")
	}
	if _, dup := b.stations[mac]; dup {
		panic(fmt.Sprintf("ethernet: duplicate station %v", mac))
	}
	n := &NIC{bus: b, mac: mac}
	b.stations[mac] = n
	b.order = append(b.order, n)
	return n
}

// transmit serializes the frame on the medium and schedules delivery at
// transmission end. It returns the instant the medium becomes free.
func (b *Bus) transmit(f Frame) sim.Time {
	if len(f.Payload) > params.FrameMTU {
		panic(fmt.Sprintf("ethernet: frame payload %d exceeds MTU", len(f.Payload)))
	}
	now := b.eng.Now()
	start := b.busyUntil
	if start < now {
		start = now
	}
	wire := params.WireTime(len(f.Payload))
	end := start.Add(wire)
	b.busyUntil = end
	b.stats.Frames++
	b.stats.Bytes += int64(len(f.Payload))
	b.stats.BusyTime += wire
	dropped := b.loss != nil && b.loss(f)
	if dropped {
		b.stats.Dropped++
	}
	// Corruption is decided once per frame, at transmit time, so the random
	// draw order is independent of how many receivers exist.
	corrupted := !dropped && b.corrupt != nil && b.corrupt(f)
	if corrupted {
		b.stats.Corrupted++
		mangled := make([]byte, len(f.Payload))
		copy(mangled, f.Payload)
		if len(mangled) > 0 {
			mangled[0] = 0 // an invalid packet kind: rejected on receive
		}
		f.Payload = mangled
	}
	b.trace.Publish(trace.Event{
		At: start, Host: uint16(f.Src), Kind: trace.EvFrameTx,
		Size: len(f.Payload), Peer: uint16(f.Dst),
	})
	b.eng.At(end, func() {
		if dropped {
			b.trace.Publish(trace.Event{
				At: end, Host: uint16(f.Src), Kind: trace.EvFrameDrop,
				Size: len(f.Payload), Peer: uint16(f.Dst),
			})
			return
		}
		if corrupted {
			b.trace.Publish(trace.Event{
				At: end, Host: uint16(f.Src), Kind: trace.EvFrameCorrupt,
				Size: len(f.Payload), Peer: uint16(f.Dst),
			})
		}
		if f.Dst == Broadcast {
			b.stats.Broadcasts++
			for _, n := range b.order {
				if n.mac != f.Src && n.recv != nil && !b.severed(f.Src, n.mac, len(f.Payload)) {
					n.deliver(f)
				}
			}
			return
		}
		if f.Dst.IsMulticast() {
			// Hardware multicast filter: only subscribed stations take the
			// receive interrupt. The frame still occupies the shared medium
			// like any other.
			b.stats.Broadcasts++
			for _, n := range b.order {
				if n.mac != f.Src && n.recv != nil && n.multi[f.Dst] && !b.severed(f.Src, n.mac, len(f.Payload)) {
					n.deliver(f)
				}
			}
			return
		}
		if n := b.stations[f.Dst]; n != nil && n.recv != nil && !b.severed(f.Src, f.Dst, len(f.Payload)) {
			n.deliver(f)
		}
	})
	return end
}

// severed applies the partition model to one delivery, counting and
// tracing suppressed ones.
func (b *Bus) severed(src, dst MAC, size int) bool {
	if b.cut == nil || !b.cut(src, dst) {
		return false
	}
	b.stats.Cut++
	b.trace.Publish(trace.Event{
		At: b.eng.Now(), Host: uint16(src), Kind: trace.EvFrameCut,
		Size: size, Peer: uint16(dst),
	})
	return true
}

// NIC is one station's interface.
type NIC struct {
	bus   *Bus
	mac   MAC
	recv  func(Frame)
	multi map[MAC]bool // subscribed multicast addresses (hardware filter)

	txFrames int64
	rxFrames int64
	txBytes  int64
	rxBytes  int64
}

// MAC returns the station address.
func (n *NIC) MAC() MAC { return n.mac }

// JoinMulticast programs the address into the receive filter. Frames to
// unsubscribed multicast addresses never reach this station's receive
// callback — the cost of a group send scales with the member count, not
// the segment population.
func (n *NIC) JoinMulticast(m MAC) {
	if !m.IsMulticast() {
		panic(fmt.Sprintf("ethernet: JoinMulticast(%v): not a multicast address", m))
	}
	if n.multi == nil {
		n.multi = make(map[MAC]bool)
	}
	n.multi[m] = true
}

// LeaveMulticast removes the address from the receive filter.
func (n *NIC) LeaveMulticast(m MAC) { delete(n.multi, m) }

// Engine returns the simulation engine the NIC runs on.
func (n *NIC) Engine() *sim.Engine { return n.bus.eng }

// SetRecv installs the delivery callback, invoked at frame arrival time on
// the engine goroutine.
func (n *NIC) SetRecv(fn func(Frame)) { n.recv = fn }

func (n *NIC) deliver(f Frame) {
	n.rxFrames++
	n.rxBytes += int64(len(f.Payload))
	n.recv(f)
}

// StartSend queues the frame for transmission and returns immediately; done
// (which may be nil) runs when the frame has left the wire.
func (n *NIC) StartSend(f Frame, done func()) {
	f.Src = n.mac
	n.txFrames++
	n.txBytes += int64(len(f.Payload))
	end := n.bus.transmit(f)
	if done != nil {
		n.bus.eng.At(end, done)
	}
}

// Send transmits the frame and blocks the calling task until it has left
// the wire, modeling a sender that does not overlap protocol processing of
// the next packet with the transmission of the current one (as the paper's
// 68010-class hosts could not).
func (n *NIC) Send(t *sim.Task, f Frame) {
	var q sim.WaitQ
	n.StartSend(f, func() { q.WakeOne() })
	q.Wait(t)
}

// Counters reports frames sent and received by this NIC.
func (n *NIC) Counters() (tx, rx int64) { return n.txFrames, n.rxFrames }

// ByteCounters reports payload bytes sent and received by this NIC — the
// per-station hot-spot measure (file server, home program manager) that
// segment-level totals cannot attribute.
func (n *NIC) ByteCounters() (tx, rx int64) { return n.txBytes, n.rxBytes }
