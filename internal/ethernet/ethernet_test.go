package ethernet

import (
	"testing"
	"time"

	"vsystem/internal/params"
	"vsystem/internal/sim"
)

func TestUnicastDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	bus := NewBus(e)
	a := bus.Attach(1)
	b := bus.Attach(2)
	var got []Frame
	b.SetRecv(func(f Frame) { got = append(got, f) })
	a.StartSend(Frame{Dst: 2, Payload: []byte("hello")}, nil)
	e.Run()
	if len(got) != 1 || string(got[0].Payload) != "hello" || got[0].Src != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestWireTimeCalibration(t *testing.T) {
	// A 1024-byte payload should occupy the 10 Mbit medium for
	// (1024+38)*8/10e6 s ≈ 850 µs.
	w := params.WireTime(1024)
	if w < 840*time.Microsecond || w > 860*time.Microsecond {
		t.Fatalf("WireTime(1024) = %v, want ≈850µs", w)
	}
}

func TestFrameSerialization(t *testing.T) {
	e := sim.NewEngine(1)
	bus := NewBus(e)
	a := bus.Attach(1)
	c := bus.Attach(3)
	b := bus.Attach(2)
	var arrivals []sim.Time
	b.SetRecv(func(f Frame) { arrivals = append(arrivals, e.Now()) })
	pay := make([]byte, 1000)
	// Two stations transmit at the same instant: the second frame must wait
	// for the first to clear the medium.
	a.StartSend(Frame{Dst: 2, Payload: pay}, nil)
	c.StartSend(Frame{Dst: 2, Payload: pay}, nil)
	e.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arrivals))
	}
	wire := params.WireTime(1000)
	if arrivals[0] != sim.Time(wire) {
		t.Fatalf("first arrival %v, want %v", arrivals[0], wire)
	}
	if arrivals[1] != sim.Time(2*wire) {
		t.Fatalf("second arrival %v, want %v (serialized)", arrivals[1], 2*wire)
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	e := sim.NewEngine(1)
	bus := NewBus(e)
	nics := make([]*NIC, 5)
	got := make([]int, 5)
	for i := range nics {
		i := i
		nics[i] = bus.Attach(MAC(i + 1))
		nics[i].SetRecv(func(Frame) { got[i]++ })
	}
	nics[0].StartSend(Frame{Dst: Broadcast, Payload: []byte("q")}, nil)
	e.Run()
	if got[0] != 0 {
		t.Fatal("sender received its own broadcast")
	}
	for i := 1; i < 5; i++ {
		if got[i] != 1 {
			t.Fatalf("station %d got %d frames, want 1", i, got[i])
		}
	}
}

func TestLossInjection(t *testing.T) {
	e := sim.NewEngine(7)
	bus := NewBus(e)
	a := bus.Attach(1)
	b := bus.Attach(2)
	received := 0
	b.SetRecv(func(Frame) { received++ })
	bus.SetLoss(RandomLoss(e, 0.5))
	const n = 1000
	for i := 0; i < n; i++ {
		a.StartSend(Frame{Dst: 2, Payload: []byte("x")}, nil)
	}
	e.Run()
	st := bus.Stats()
	if st.Dropped == 0 || received == n {
		t.Fatal("loss model dropped nothing")
	}
	if int(st.Dropped)+received != n {
		t.Fatalf("dropped %d + received %d != %d", st.Dropped, received, n)
	}
	if received < 400 || received > 600 {
		t.Fatalf("received %d of %d at p=0.5, outside [400,600]", received, n)
	}
}

func TestBlockingSend(t *testing.T) {
	e := sim.NewEngine(1)
	bus := NewBus(e)
	a := bus.Attach(1)
	bus.Attach(2).SetRecv(func(Frame) {})
	var done sim.Time
	e.Spawn("tx", func(tk *sim.Task) {
		a.Send(tk, Frame{Dst: 2, Payload: make([]byte, 1024)})
		done = tk.Now()
	})
	e.Run()
	if done != sim.Time(params.WireTime(1024)) {
		t.Fatalf("blocking send returned at %v, want %v", done, params.WireTime(1024))
	}
}

func TestMTUEnforced(t *testing.T) {
	e := sim.NewEngine(1)
	bus := NewBus(e)
	a := bus.Attach(1)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize frame did not panic")
		}
	}()
	a.StartSend(Frame{Dst: 2, Payload: make([]byte, params.FrameMTU+1)}, nil)
}

func TestDuplicateAttachPanics(t *testing.T) {
	e := sim.NewEngine(1)
	bus := NewBus(e)
	bus.Attach(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	bus.Attach(1)
}

func TestCountersAndStats(t *testing.T) {
	e := sim.NewEngine(1)
	bus := NewBus(e)
	a := bus.Attach(1)
	b := bus.Attach(2)
	b.SetRecv(func(Frame) {})
	a.StartSend(Frame{Dst: 2, Payload: make([]byte, 100)}, nil)
	a.StartSend(Frame{Dst: 2, Payload: make([]byte, 200)}, nil)
	e.Run()
	tx, _ := a.Counters()
	_, rx := b.Counters()
	if tx != 2 || rx != 2 {
		t.Fatalf("tx=%d rx=%d, want 2,2", tx, rx)
	}
	st := bus.Stats()
	if st.Frames != 2 || st.Bytes != 300 {
		t.Fatalf("stats = %+v", st)
	}
}
