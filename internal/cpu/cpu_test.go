package cpu

import (
	"testing"
	"time"

	"vsystem/internal/params"
	"vsystem/internal/sim"
)

func TestSingleUse(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	var done sim.Time
	e.Spawn("p", func(tk *sim.Task) {
		c.Use(tk, 10*time.Millisecond, params.PrioLocal)
		done = tk.Now()
	})
	e.Run()
	if done != sim.Time(10*time.Millisecond) {
		t.Fatalf("done at %v, want 10ms", done)
	}
	if c.TotalBusy() != 10*time.Millisecond {
		t.Fatalf("busy = %v", c.TotalBusy())
	}
}

func TestEqualPrioritySharing(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	var aDone, bDone sim.Time
	e.Spawn("a", func(tk *sim.Task) {
		c.Use(tk, 10*time.Millisecond, params.PrioLocal)
		aDone = tk.Now()
	})
	e.Spawn("b", func(tk *sim.Task) {
		c.Use(tk, 10*time.Millisecond, params.PrioLocal)
		bDone = tk.Now()
	})
	e.Run()
	// Round-robin: both finish around 20ms, a one quantum before b.
	if aDone != sim.Time(19*time.Millisecond) || bDone != sim.Time(20*time.Millisecond) {
		t.Fatalf("aDone=%v bDone=%v, want 19ms/20ms", aDone, bDone)
	}
}

func TestPriorityPreemption(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	var guestDone, localDone sim.Time
	e.Spawn("guest", func(tk *sim.Task) {
		c.Use(tk, 20*time.Millisecond, params.PrioGuest)
		guestDone = tk.Now()
	})
	e.Spawn("local", func(tk *sim.Task) {
		tk.Sleep(5 * time.Millisecond)
		c.Use(tk, 10*time.Millisecond, params.PrioLocal)
		localDone = tk.Now()
	})
	e.Run()
	// Local arrives at 5ms, preempts at the quantum boundary, runs its
	// 10ms, then guest resumes: local ≈15ms, guest ≈30ms.
	if localDone != sim.Time(15*time.Millisecond) {
		t.Fatalf("localDone = %v, want 15ms", localDone)
	}
	if guestDone != sim.Time(30*time.Millisecond) {
		t.Fatalf("guestDone = %v, want 30ms", guestDone)
	}
}

func TestGateBlocksScheduling(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	frozen := false
	var done sim.Time
	e.Spawn("p", func(tk *sim.Task) {
		c.UseGated(tk, 10*time.Millisecond, params.PrioLocal, func() bool { return !frozen })
		done = tk.Now()
	})
	// Freeze from 3ms to 23ms.
	e.After(3*time.Millisecond, func() { frozen = true })
	e.After(23*time.Millisecond, func() { frozen = false; c.Kick() })
	e.Run()
	// 3ms of work before the freeze, 7ms after: done ≈ 30ms.
	if done != sim.Time(30*time.Millisecond) {
		t.Fatalf("done = %v, want 30ms", done)
	}
}

func TestKilledTaskRequestDropped(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	victim := e.Spawn("victim", func(tk *sim.Task) {
		c.Use(tk, 100*time.Millisecond, params.PrioLocal)
		t.Error("killed task finished CPU use")
	})
	var done sim.Time
	e.Spawn("other", func(tk *sim.Task) {
		tk.Sleep(time.Millisecond)
		c.Use(tk, 10*time.Millisecond, params.PrioLocal)
		done = tk.Now()
	})
	e.After(5*time.Millisecond, func() { victim.Kill() })
	e.Run()
	// Victim consumed ~5ms then died; other should finish soon after
	// ~1+interleave+10 ≈ 18-19ms, and crucially well before 100ms.
	if done == 0 || done > sim.Time(25*time.Millisecond) {
		t.Fatalf("other finished at %v", done)
	}
}

func TestIdleDetection(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	if !c.Idle() {
		t.Fatal("fresh CPU not idle")
	}
	e.Spawn("p", func(tk *sim.Task) {
		c.Use(tk, 5*time.Millisecond, params.PrioGuest)
	})
	e.After(2*time.Millisecond, func() {
		if c.Idle() {
			t.Error("CPU with running guest reported idle")
		}
	})
	e.Run()
	if !c.Idle() {
		t.Fatal("CPU not idle after work drained")
	}
	// Kernel-priority work does not count against idleness.
	e.Spawn("netd", func(tk *sim.Task) {
		c.Use(tk, 5*time.Millisecond, params.PrioKernel)
	})
	e.After(e.Now().Sub(0)+2*time.Millisecond, func() {})
	ran := false
	e.After(2*time.Millisecond, func() {
		ran = true
		if !c.Idle() {
			t.Error("kernel work affected idleness")
		}
	})
	e.Run()
	if !ran {
		t.Fatal("probe did not run")
	}
}

func TestUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	e.Spawn("p", func(tk *sim.Task) {
		c.Use(tk, 50*time.Millisecond, params.PrioLocal)
	})
	e.Run()
	e.RunUntil(sim.Time(100 * time.Millisecond))
	u := c.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization = %v, want ≈0.5", u)
	}
}

func TestZeroUseReturnsImmediately(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	var done sim.Time
	e.Spawn("p", func(tk *sim.Task) {
		c.Use(tk, 0, params.PrioLocal)
		done = tk.Now()
	})
	e.Run()
	if done != 0 {
		t.Fatalf("done = %v, want 0", done)
	}
}

func TestFrozenRequestDoesNotBlockOthers(t *testing.T) {
	// A request gated shut mid-use must not hold the CPU: another
	// same-priority request runs to completion while it is frozen, and
	// the frozen one finishes after the unfreeze.
	e := sim.NewEngine(9)
	c := New(e)
	frozen := false
	var victimDone, lateDone sim.Time
	e.Spawn("victim", func(tk *sim.Task) {
		c.UseGated(tk, 10*time.Millisecond, params.PrioLocal, func() bool { return !frozen })
		victimDone = tk.Now()
	})
	e.After(3*time.Millisecond, func() { frozen = true })
	e.Spawn("late", func(tk *sim.Task) {
		tk.Sleep(5 * time.Millisecond)
		c.Use(tk, 10*time.Millisecond, params.PrioLocal)
		lateDone = tk.Now()
	})
	e.After(20*time.Millisecond, func() { frozen = false; c.Kick() })
	e.Run()
	if lateDone != sim.Time(15*time.Millisecond) {
		t.Fatalf("late finished at %v, want 15ms (unblocked by frozen peer)", lateDone)
	}
	// Victim had ~3ms done, resumes at 20ms, needs ~7ms more.
	if victimDone != sim.Time(27*time.Millisecond) {
		t.Fatalf("victim finished at %v, want 27ms", victimDone)
	}
}

func TestUnfrozenRequestBeatsSimultaneousArrival(t *testing.T) {
	// At the unfreeze instant, the previously frozen request (parked at
	// the head of its priority) is granted before a request arriving at
	// the same moment.
	e := sim.NewEngine(11)
	c := New(e)
	frozen := false
	var order []string
	e.Spawn("victim", func(tk *sim.Task) {
		c.UseGated(tk, 6*time.Millisecond, params.PrioLocal, func() bool { return !frozen })
		order = append(order, "victim")
	})
	e.After(3*time.Millisecond, func() { frozen = true })
	// Unfreeze and a new arrival at the same instant; the unfreeze event
	// is scheduled first.
	e.After(20*time.Millisecond, func() { frozen = false; c.Kick() })
	e.At(sim.Time(20*time.Millisecond), func() {
		e.Spawn("late", func(tk *sim.Task) {
			c.Use(tk, 6*time.Millisecond, params.PrioLocal)
			order = append(order, "late")
		})
	})
	e.Run()
	if len(order) != 2 || order[0] != "victim" {
		t.Fatalf("order = %v, want victim first", order)
	}
}

func TestQueueLenAccounting(t *testing.T) {
	e := sim.NewEngine(10)
	c := New(e)
	for i := 0; i < 3; i++ {
		e.Spawn("g", func(tk *sim.Task) { c.Use(tk, 20*time.Millisecond, params.PrioGuest) })
	}
	e.After(5*time.Millisecond, func() {
		if n := c.QueueLen(params.PrioGuest); n != 3 {
			t.Errorf("QueueLen(guest) = %d, want 3", n)
		}
		if n := c.QueueLen(params.PrioKernel); n != 3 {
			t.Errorf("QueueLen(kernel..) = %d, want 3", n)
		}
	})
	e.Run()
}
