// Package cpu models a workstation processor with preemptive priority
// scheduling at quantum granularity.
//
// Priority levels come from params: kernel work preempts system servers,
// which preempt locally invoked programs, which preempt guest (remotely
// executed) programs — the paper's "priority scheduling for locally invoked
// programs" (§2) that lets an owner use a workstation while it serves as a
// computation server. The migration pre-copy runs at system priority,
// "higher priority than all other programs on the originating host"
// (§3.1.2).
package cpu

import (
	"time"

	"vsystem/internal/params"
	"vsystem/internal/sim"
)

// Gate is an optional runnability predicate attached to a CPU request; a
// request whose gate returns false is skipped by the scheduler (used to
// stop scheduling processes of a frozen logical host).
type Gate func() bool

type request struct {
	task      *sim.Task
	prio      int
	remaining time.Duration
	gate      Gate
	done      sim.WaitQ
	finished  bool
}

func (r *request) runnable() bool {
	if r.task != nil && (r.task.Killed() || r.task.Done()) {
		return false
	}
	return r.gate == nil || r.gate()
}

// CPU is one workstation's processor.
type CPU struct {
	eng      *sim.Engine
	quantum  time.Duration
	ready    [params.NumPrios][]*request
	cur      *request
	granting bool // a deferred grant event is pending
	busy     [params.NumPrios]time.Duration
	total    time.Duration
	started  sim.Time
	dispatch func(prio int, slice time.Duration)
}

// New creates an idle CPU on the engine.
func New(eng *sim.Engine) *CPU {
	return &CPU{eng: eng, quantum: params.CPUQuantum, started: eng.Now()}
}

// SetDispatchHook installs a scheduler-dispatch observer (nil to disable),
// called once per granted slice with the winning priority and slice
// length. The kernel uses it to publish dispatch trace events.
func (c *CPU) SetDispatchHook(fn func(prio int, slice time.Duration)) { c.dispatch = fn }

// Use consumes d of CPU at the given priority, blocking the task until the
// time has been granted. Competing requests interleave at quantum
// granularity; higher priorities preempt at quantum boundaries.
func (c *CPU) Use(t *sim.Task, d time.Duration, prio int) {
	c.UseGated(t, d, prio, nil)
}

// UseGated is Use with a runnability gate: while gate() is false the
// request is present but unschedulable (a frozen process). Callers must
// Kick the CPU when a gate may have opened.
func (c *CPU) UseGated(t *sim.Task, d time.Duration, prio int, gate Gate) {
	if d <= 0 {
		return
	}
	if prio < 0 || prio >= params.NumPrios {
		panic("cpu: bad priority")
	}
	r := &request{task: t, prio: prio, remaining: d, gate: gate}
	c.ready[prio] = append(c.ready[prio], r)
	c.Kick()
	for !r.finished {
		r.done.Wait(t)
	}
}

// Kick re-evaluates scheduling; call after a gate may have opened.
//
// The grant is deferred by one (zero-delay) event rather than performed
// inline: when a process's CPU burst completes and it immediately issues
// its next burst at the same instant (the normal compute/syscall/compute
// pattern), the continuation competes in that grant instead of losing the
// CPU to a lower-priority process for a quantum — matching a real kernel,
// where the running process keeps the processor.
func (c *CPU) Kick() {
	if c.cur != nil || c.granting {
		return
	}
	c.granting = true
	c.eng.After(0, func() {
		c.granting = false
		if c.cur == nil {
			c.grant()
		}
	})
}

// grant picks the best runnable request and runs one slice of it.
func (c *CPU) grant() {
	r := c.pick()
	if r == nil {
		return
	}
	c.cur = r
	slice := c.quantum
	if r.remaining < slice {
		slice = r.remaining
	}
	if c.dispatch != nil {
		c.dispatch(r.prio, slice)
	}
	c.eng.After(slice, func() {
		c.busy[r.prio] += slice
		c.total += slice
		r.remaining -= slice
		c.cur = nil
		if r.remaining <= 0 {
			r.finished = true
			r.done.WakeOne()
		} else if r.runnable() {
			c.ready[r.prio] = append(c.ready[r.prio], r)
		} else if r.task != nil && (r.task.Killed() || r.task.Done()) {
			// Dead owner: drop the request.
		} else {
			// Gated shut mid-use (froze): park it at the head of its
			// priority so it resumes first when unfrozen.
			c.ready[r.prio] = append([]*request{r}, c.ready[r.prio]...)
		}
		c.Kick()
	})
}

// pick removes and returns the first runnable request of the highest
// non-empty priority, discarding requests whose tasks died.
func (c *CPU) pick() *request {
	for prio := 0; prio < params.NumPrios; prio++ {
		q := c.ready[prio]
		for i := 0; i < len(q); i++ {
			r := q[i]
			if r.task != nil && (r.task.Killed() || r.task.Done()) {
				q = append(q[:i], q[i+1:]...)
				i--
				continue
			}
			if r.runnable() {
				c.ready[prio] = append(q[:i], q[i+1:]...)
				return r
			}
		}
		c.ready[prio] = q
	}
	return nil
}

// QueueLen reports how many requests are pending at or below (numerically
// at or above) the given priority, including the running one.
func (c *CPU) QueueLen(prio int) int {
	n := 0
	for p := prio; p < params.NumPrios; p++ {
		n += len(c.ready[p])
	}
	if c.cur != nil && c.cur.prio >= prio {
		n++
	}
	return n
}

// Busy reports cumulative busy time at the given priority.
func (c *CPU) Busy(prio int) time.Duration { return c.busy[prio] }

// TotalBusy reports cumulative busy time across all priorities.
func (c *CPU) TotalBusy() time.Duration { return c.total }

// Utilization reports the busy fraction since the CPU was created.
func (c *CPU) Utilization() float64 {
	elapsed := c.eng.Now().Sub(c.started)
	if elapsed <= 0 {
		return 0
	}
	return float64(c.total) / float64(elapsed)
}

// Idle reports whether nothing is running or runnable at program
// priorities (local or guest) — the availability test a program manager
// applies when answering a host-selection query.
func (c *CPU) Idle() bool {
	if c.cur != nil && c.cur.prio >= params.PrioLocal {
		return false
	}
	for p := params.PrioLocal; p < params.NumPrios; p++ {
		for _, r := range c.ready[p] {
			if r.runnable() {
				return false
			}
		}
	}
	return true
}
