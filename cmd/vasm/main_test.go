package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"vsystem/internal/image"
)

// buildAndRun compiles vasm once per test binary and runs it.
func runVasm(t *testing.T, args ...string) (string, error) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vasm")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

const sample = `
        LDI r0, 42
        HALT r0
`

func TestAssembleToImage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "answer.vasm")
	os.WriteFile(src, []byte(sample), 0o644)
	out := filepath.Join(dir, "answer.img")
	stdout, err := runVasm(t, "-o", out, src)
	if err != nil {
		t.Fatalf("vasm: %v\n%s", err, stdout)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != "answer" || img.Kind != "vvm" || len(img.Code) == 0 {
		t.Fatalf("image = %+v", img)
	}
}

func TestDumpDisassembles(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.vasm")
	os.WriteFile(src, []byte(sample), 0o644)
	stdout, err := runVasm(t, "-dump", src)
	if err != nil {
		t.Fatalf("vasm -dump: %v\n%s", err, stdout)
	}
	if !strings.Contains(stdout, "LDI r0, 0x2a") || !strings.Contains(stdout, "HALT r0") {
		t.Fatalf("dump missing disassembly:\n%s", stdout)
	}
}

func TestAssembleErrorReported(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.vasm")
	os.WriteFile(src, []byte("FROB r1\n"), 0o644)
	stdout, err := runVasm(t, src)
	if err == nil {
		t.Fatalf("bad source assembled:\n%s", stdout)
	}
	if !strings.Contains(stdout, "unknown mnemonic") {
		t.Fatalf("unhelpful error:\n%s", stdout)
	}
}
