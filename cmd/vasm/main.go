// Command vasm assembles VVM assembly into a loadable program image.
//
// Usage:
//
//	vasm -name myprog -o myprog.img prog.vasm
//	vasm -dump prog.vasm           # disassembly + hex of the bytecode
//
// The output file is the image format the simulated file server stores and
// the program manager loads (see internal/image).
package main

import (
	"flag"
	"fmt"
	"os"

	"vsystem/internal/image"
	"vsystem/internal/vvm"
)

func main() {
	var (
		name  = flag.String("name", "", "program name (default: input file base name)")
		out   = flag.String("o", "", "output image file (default: <name>.img)")
		space = flag.Uint("space", 128, "address-space size in KB beyond code")
		dump  = flag.Bool("dump", false, "print a hex dump instead of writing an image")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vasm [-name n] [-o file] [-space KB] [-dump] prog.vasm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vasm:", err)
		os.Exit(1)
	}
	code, err := vvm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vasm:", err)
		os.Exit(1)
	}
	if *dump {
		fmt.Print(vvm.Disassemble(code))
		for i := 0; i < len(code); i += 16 {
			end := i + 16
			if end > len(code) {
				end = len(code)
			}
			fmt.Printf("; %08x  % x\n", vvm.CodeBase+i, code[i:end])
		}
		fmt.Printf("; %d bytes at %#x\n", len(code), vvm.CodeBase)
		return
	}
	n := *name
	if n == "" {
		base := flag.Arg(0)
		for i := len(base) - 1; i >= 0; i-- {
			if base[i] == '/' {
				base = base[i+1:]
				break
			}
		}
		if i := len(base) - len(".vasm"); i > 0 && base[i:] == ".vasm" {
			base = base[:i]
		}
		n = base
	}
	img := &image.Image{
		Name:      n,
		Kind:      vvm.BodyKind,
		Code:      code,
		SpaceSize: uint32(vvm.CodeBase) + uint32(len(code)) + uint32(*space)*1024,
	}
	o := *out
	if o == "" {
		o = n + ".img"
	}
	if err := os.WriteFile(o, img.Encode(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vasm:", err)
		os.Exit(1)
	}
	fmt.Printf("vasm: %s: %d bytes of code, image %s (%d bytes)\n", n, len(code), o, img.Size())
}
