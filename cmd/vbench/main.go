// Command vbench regenerates the paper's tables and figures on the
// simulated cluster and prints paper-vs-measured comparisons.
//
// Usage:
//
//	vbench                  # run every experiment
//	vbench -e dirty-rates   # run one experiment
//	vbench -list            # list experiment ids
//	vbench -seed 7          # change the simulation seed
//	vbench -root .          # repo root, for the space-cost experiment
//	vbench -json            # emit machine-readable paper-vs-measured rows
//	vbench -hosts 100       # shrink the cluster-load grid (CI determinism)
//	vbench -cpuprofile p    # write a pprof CPU profile of the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"vsystem/internal/experiments"
)

func main() { os.Exit(realMain()) }

// realMain carries the program body so deferred profile writers run
// before the process exits with a status.
func realMain() int {
	var (
		exp    = flag.String("e", "", "run a single experiment id (see -list)")
		seed   = flag.Int64("seed", 1, "simulation seed")
		list   = flag.Bool("list", false, "list experiment ids")
		root   = flag.String("root", ".", "repository root (for the space experiment)")
		asJSON = flag.Bool("json", false, "emit results as JSON instead of formatted text")
		hosts  = flag.Int("hosts", 0, "override the cluster-load host grid (0 = default)")
		cpuPro = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memPro = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	if *hosts > 0 {
		experiments.ClusterLoadHosts = *hosts
	}
	if *cpuPro != "" {
		f, err := os.Create(*cpuPro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memPro != "" {
		defer func() {
			f, err := os.Create(*memPro)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			pprof.Lookup("allocs").WriteTo(f, 0)
		}()
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		fmt.Println("space")
		return 0
	}

	fail := 0
	var results []*experiments.Result
	run := func(r *experiments.Result) {
		if *asJSON {
			results = append(results, r)
		} else {
			fmt.Println(r.Format())
		}
		if !r.Pass {
			fail++
		}
	}

	switch {
	case *exp == "space":
		run(experiments.SpaceCost(*root))
	case *exp != "":
		f, ok := experiments.ByName(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "vbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		run(f(*seed))
	default:
		for _, r := range experiments.All(*seed) {
			run(r)
		}
		run(experiments.SpaceCost(*root))
	}
	if *asJSON {
		b, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vbench: %v\n", err)
			return 1
		}
		fmt.Println(string(b))
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "vbench: %d experiment(s) failed shape assertions\n", fail)
		return 1
	}
	return 0
}
