// Command vcluster is a scriptable command interpreter for a simulated
// V-System cluster: the `exec @ machine` / `migrateprog` experience of the
// paper, driven from stdin.
//
// Commands (one per line; `#` starts a comment):
//
//	run <prog> [args] [@ <where>]   execute a program (local, * = any idle)
//	run -restarts <n> ...      same, with an explicit recovery budget: how
//	                           many times the home manager may re-execute
//	                           the program if its hosting workstation dies
//	                           (0 disables supervision; `exec` is an alias)
//	jobs                       list supervised exec sessions: job, current
//	                           host, incarnation, lease age, state
//	wait <job>                 wait for a job to exit
//	migrate <job>              migrateprog: move the job elsewhere
//	migrate -n <job>           migrateprog -n: destroy if no host accepts
//	migrateall <host>          evict all guest programs from a host
//	suspend <job>              freeze a program (transparent to location)
//	resume <job>               unfreeze a suspended program
//	inspect <job>              read the program's registers (remote debug)
//	ps <host>                  list programs on a host
//	display [<host>]           show a workstation's display contents
//	crash <host>               power a workstation off
//	restart <host>             reboot a crashed workstation
//	partition <a,b,..> <c,..>  sever the segment between two host sets
//	heal                       remove all active partitions
//	advance <dur>              advance virtual time (e.g. 2s, 500ms)
//	names                      list global name-service bindings
//	stats                      cluster-wide metrics snapshot
//	trace on|off               stream trace-bus events (packet, freeze,
//	                           rebind, loss) as the simulation advances
//	loss <p>                   set the Ethernet frame-loss probability
//	hosts                      list workstations: advertised load plus each
//	                           host's selection-cache contents and age, and
//	                           any stations its failure detector suspects
//	time                       print the virtual clock
//	quit
//
// Example:
//
//	echo 'run primes5000 @ *
//	wait j1
//	display' | vcluster -n 5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"vsystem/internal/ethernet"

	"vsystem/internal/core"
	"vsystem/internal/nameserver"
	"vsystem/internal/params"
	"vsystem/internal/progs"
	"vsystem/internal/rsm"
	"vsystem/internal/sched"
	"vsystem/internal/trace"
	"vsystem/internal/vid"
	"vsystem/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 4, "number of workstations")
		seed   = flag.Int64("seed", 1, "simulation seed")
		loss   = flag.Float64("loss", 0, "Ethernet frame loss probability")
		policy = flag.String("policy", "precopy", "migration policy: precopy|stopcopy|flush|forwarding|postcopy|hybrid")
		sel    = flag.String("select", "first", "host-selection policy: first|random|least")
		window = flag.Int("window", params.CopyWindow, "bulk-transfer copy window (1 = stop-and-wait)")
		repFS  = flag.Int("replicate-fs", 0, "file/name-server replicas (0 or 1 = single server machine)")
		repPM  = flag.Int("replicate-home", 0, "home-PM group replicas (0 or 1 = unreplicated home)")
	)
	flag.Parse()

	if *window < 1 {
		fmt.Fprintln(os.Stderr, "vcluster: -window must be >= 1")
		os.Exit(2)
	}
	params.CopyWindow = *window

	selPol := sched.PolicyByName(*sel)
	if selPol == nil {
		fmt.Fprintln(os.Stderr, "vcluster: unknown selection policy", *sel)
		os.Exit(2)
	}

	pol, err := core.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcluster:", err)
		os.Exit(2)
	}

	r := newRepl(core.Options{
		Workstations: *n, Seed: *seed, LossRate: *loss, Policy: pol, Select: selPol,
		ReplicateFS: *repFS, ReplicateHome: *repPM,
	}, os.Stdout)
	r.loop(os.Stdin)
}

type repl struct {
	c       *core.Cluster
	jobs    map[string]*core.Job
	jobSeq  int
	out     io.Writer
	traceOn bool
}

// newRepl boots a cluster with the standard images installed.
func newRepl(opt core.Options, out io.Writer) *repl {
	c := core.NewCluster(opt)
	c.Install(progs.Hello())
	c.Install(progs.Primes(5000))
	c.Install(progs.Ticker(100))
	c.Install(progs.MemWalker(128, 300))
	c.Install(progs.PrimesRange())
	c.Install(progs.FileIO())
	for _, img := range workload.PaperImages() {
		c.Install(img)
	}
	r := &repl{c: c, jobs: map[string]*core.Job{}, out: out}
	c.Trace.Subscribe(r.printEvent)
	c.Trace.SubscribeSpans(r.printSpan)
	return r
}

// printEvent streams one trace-bus event while `trace on`. Receive,
// frame-transmit and scheduler-dispatch events are suppressed: they mirror
// the transmit events (or fire every quantum) and would drown the log.
func (r *repl) printEvent(ev trace.Event) {
	if !r.traceOn {
		return
	}
	switch ev.Kind {
	case trace.EvPktRx, trace.EvFrameTx, trace.EvDispatch:
		return
	}
	switch {
	case ev.Pkt != nil:
		r.printf("trace %12v host%d %-13v %v %v→%v",
			ev.At, ev.Host, ev.Kind, ev.Pkt.Kind, ev.Pkt.Src, ev.Pkt.Dst)
	case ev.LH != 0:
		r.printf("trace %12v host%d %-13v lh=%v", ev.At, ev.Host, ev.Kind, ev.LH)
	default:
		r.printf("trace %12v host%d %-13v %dB→host%d", ev.At, ev.Host, ev.Kind, ev.Size, ev.Peer)
	}
}

// printSpan streams one completed migration phase while `trace on`.
func (r *repl) printSpan(s trace.Span) {
	if !r.traceOn {
		return
	}
	r.printf("trace span %v", s)
}

func (r *repl) printf(f string, a ...any) { fmt.Fprintf(r.out, f+"\n", a...) }

// do runs fn on a fresh agent on node 0 and advances the simulation until
// it completes (bounded).
func (r *repl) do(fn func(a *core.Agent)) {
	done := false
	r.c.Node(0).Agent(func(a *core.Agent) {
		fn(a)
		done = true
	})
	for i := 0; i < 600 && !done; i++ {
		r.c.Run(time.Second)
	}
	if !done {
		r.printf("! command did not complete within 10 minutes of virtual time")
	}
}

func (r *repl) node(name string) *core.Node {
	for _, n := range r.c.Nodes {
		if n.Name() == name {
			return n
		}
	}
	r.printf("! no such host %q", name)
	return nil
}

func (r *repl) loop(in io.Reader) {
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if !r.exec(line) {
			return
		}
	}
}

// exec runs one command; false means quit.
func (r *repl) exec(line string) bool {
	f := strings.Fields(line)
	switch f[0] {
	case "quit", "exit":
		return false

	case "time":
		r.printf("%v", r.c.Sim.Now())

	case "hosts":
		for _, n := range r.c.Nodes {
			state := "idle"
			if !n.Host.CPU.Idle() {
				state = "busy"
			}
			if n.Host.Crashed() {
				state = "crashed"
				r.printf("%-6s %-7s", n.Name(), state)
				continue
			}
			l := sched.LoadFromWords(n.Host.LoadWords())
			r.printf("%-6s %-7s %5d KB free  ready=%d residents=%d util=%d‰  policy=%s",
				n.Name(), state, n.Host.MemFree()/1024,
				l.Ready, l.Residents, l.UtilPermille, n.Selector.Policy.Name())
			for _, e := range n.Selector.Cache.Entries() {
				tag := ""
				if e.Neg {
					tag = " NEG"
				}
				if e.Bumps > 0 {
					tag += fmt.Sprintf(" +%d placed", e.Bumps)
				}
				r.printf("         cache %v ready=%d free=%dK age=%v%s",
					e.Load.SystemLH, e.Load.Ready, e.Load.MemFree/1024,
					e.Age.Round(time.Millisecond), tag)
			}
			if sus := n.Host.IPC.Suspects(); len(sus) > 0 {
				names := make([]string, 0, len(sus))
				for _, mac := range sus {
					names = append(names, r.nodeByMAC(mac))
				}
				r.printf("         suspects dead: %s", strings.Join(names, ", "))
			}
		}

	case "jobs":
		any := false
		for _, n := range r.c.Nodes {
			for _, v := range n.PM.Sessions() {
				any = true
				host := "?"
				if hn := r.c.NodeByLH(v.HostLH); hn != nil {
					host = hn.Name()
				}
				id := "-"
				for jid, job := range r.jobs {
					// A Wait that followed the recovery may have rebound
					// the handle to the current incarnation's LHID.
					if job.LHID == v.LHID || job.LHID == v.CurLH {
						id = jid
						break
					}
				}
				r.printf("%-4s %-12s home=%-5s host=%-5s lh=%v incarnation=%d restarts=%d lease=%v %s",
					id, v.Name, n.Name(), host, v.CurLH, v.Incarnation, v.Restarts,
					v.LeaseAge.Round(time.Millisecond), v.State)
			}
		}
		if !any {
			r.printf("(no supervised jobs)")
		}

	case "advance":
		if len(f) < 2 {
			r.printf("! advance <duration>")
			break
		}
		d, err := time.ParseDuration(f[1])
		if err != nil {
			r.printf("! %v", err)
			break
		}
		r.c.Run(d)
		r.printf("clock: %v", r.c.Sim.Now())

	case "run", "exec":
		where := ""
		rest := f[1:]
		restarts := params.ExecMaxRestarts
		if len(rest) >= 2 && rest[0] == "-restarts" {
			n, err := strconv.Atoi(rest[1])
			if err != nil || n < 0 {
				r.printf("! -restarts needs a non-negative count")
				break
			}
			restarts = n
			rest = rest[2:]
		}
		for i, a := range rest {
			if a == "@" {
				if i+1 < len(rest) {
					where = rest[i+1]
				}
				rest = rest[:i]
				break
			}
		}
		if len(rest) == 0 {
			r.printf("! run [-restarts n] <prog> [args] [@ where]")
			break
		}
		prog, args := rest[0], rest[1:]
		r.do(func(a *core.Agent) {
			job, err := a.ExecR(prog, args, where, restarts)
			if err != nil {
				r.printf("! %v", err)
				return
			}
			r.jobSeq++
			id := fmt.Sprintf("j%d", r.jobSeq)
			r.jobs[id] = job
			r.printf("%s: %s on %s (lh %v)", id, prog, job.Host, job.LHID)
		})

	case "wait":
		job := r.job(f)
		if job == nil {
			break
		}
		r.do(func(a *core.Agent) {
			code, err := a.Wait(job)
			if err != nil {
				r.printf("! %v", err)
				return
			}
			r.printf("%s exited with code %d at %v", job.Name, code, a.Now())
		})

	case "migrate":
		kill := false
		if len(f) > 1 && f[1] == "-n" {
			kill = true
			f = append(f[:1], f[2:]...)
		}
		job := r.job(f)
		if job == nil {
			break
		}
		r.do(func(a *core.Agent) {
			rep, err := a.Migrate(job, kill)
			if err != nil {
				r.printf("! %v", err)
				return
			}
			if rep == nil {
				r.printf("%s destroyed (no host would accept it)", job.Name)
				return
			}
			r.printf("%s migrated (%s): %d round(s), residual %.1f KB, frozen %v",
				job.Name, rep.Policy, len(rep.Rounds), rep.ResidualKB, rep.FreezeTime)
			for i, rd := range rep.Rounds {
				r.printf("  round %d: %.1f KB in %v (%.0f KB/s)", i+1, rd.KB, rd.Dur, rd.CopyRateKBps)
			}
			r.printf("  window %d: %d run(s), %d stall(s), occupancy %.1f, wire %.1f KB",
				rep.WindowSize, rep.WindowSends, rep.WindowStalls, rep.WindowOccupancy,
				float64(rep.WireBytes)/1024)
			if rep.PostSwapFaults > 0 || rep.PostSwapPullKB > 0 || rep.ResiduePushKB > 0 {
				r.printf("  post-swap: %d fault(s), %v stalled, pull %.1f KB (%.0f KB/s), push %.1f KB",
					rep.PostSwapFaults, rep.PostSwapStall, rep.PostSwapPullKB,
					rep.PostSwapPullKBps, rep.ResiduePushKB)
			}
			if rep.ResidueAborted {
				r.printf("  post-swap residue ABORTED (guest left to supervision)")
			}
		})

	case "suspend", "resume":
		job := r.job(f)
		if job == nil {
			break
		}
		op := f[0]
		r.do(func(a *core.Agent) {
			var err error
			if op == "suspend" {
				err = a.Suspend(job)
			} else {
				err = a.Resume(job)
			}
			if err != nil {
				r.printf("! %v", err)
				return
			}
			past := "suspended"
			if op == "resume" {
				past = "resumed"
			}
			r.printf("%s %s", job.Name, past)
		})

	case "inspect":
		job := r.job(f)
		if job == nil {
			break
		}
		r.do(func(a *core.Agent) {
			regs, state, err := a.Inspect(job.PID)
			if err != nil {
				r.printf("! %v", err)
				return
			}
			states := []string{"running", "stopped", "dead"}
			r.printf("%s (%v) %s", job.Name, job.PID, states[state%3])
			r.printf("  phase=%d exit=%d w=%v", regs.W[0], regs.W[1], regs.W[2:10])
		})

	case "migrateall":
		if len(f) < 2 {
			r.printf("! migrateall <host>")
			break
		}
		n := r.node(f[1])
		if n == nil {
			break
		}
		r.do(func(a *core.Agent) {
			if err := a.MigrateAll(n, false); err != nil {
				r.printf("! %v", err)
				return
			}
			r.printf("eviction of guests from %s requested", n.Name())
		})

	case "ps":
		if len(f) < 2 {
			r.printf("! ps <host>")
			break
		}
		n := r.node(f[1])
		if n == nil {
			break
		}
		r.do(func(a *core.Agent) {
			s, err := a.PS(n)
			if err != nil {
				r.printf("! %v", err)
				return
			}
			if s == "" {
				s = "(no programs)\n"
			}
			fmt.Fprint(r.out, s)
		})

	case "display":
		name := "ws0"
		if len(f) > 1 {
			name = f[1]
		}
		n := r.node(name)
		if n == nil {
			break
		}
		for _, l := range n.Display.Lines() {
			r.printf("%s| %s", name, l)
		}

	case "stats":
		st := r.c.Snapshot()
		r.printf("t=%v  frames=%d lost=%d bus-busy=%v  fileserver-frames=%d",
			st.VirtualTime, st.Frames, st.FramesLost, st.BusBusy, st.ServerFrames)
		for _, h := range st.Hosts {
			r.printf("  %-5s util=%5.1f%% guests=%d locals=%d memfree=%dK pkts=%d/%d retx=%d locates=%d freezes=%d frozen=%v",
				h.Name, h.Utilization*100, h.Guests, h.Locals, h.MemFreeKB,
				h.TxPackets, h.RxPackets, h.Retransmits, h.Locates, h.Freezes, h.FrozenTime)
		}
		tb := r.c.Trace
		r.printf("  events: tx=%d local=%d retx=%d drop=%d frame-drop=%d reply-pending=%d locate=%d rebind=%d freeze=%d",
			tb.Count(trace.EvPktTx), tb.Count(trace.EvPktLocal), tb.Count(trace.EvPktRetx),
			tb.Count(trace.EvPktDrop), tb.Count(trace.EvFrameDrop), tb.Count(trace.EvReplyPending),
			tb.Count(trace.EvLocate), tb.Count(trace.EvRebind), tb.Count(trace.EvFreeze))
		var wsends, wstalls int64
		for _, n := range r.c.Nodes {
			ist := n.Host.IPC.Stats()
			wsends += ist.WindowSends
			wstalls += ist.WindowStalls
		}
		fst := r.c.FSHost.IPC.Stats()
		wsends += fst.WindowSends
		wstalls += fst.WindowStalls
		r.printf("  bulk-transfer: window=%d sends=%d stalls=%d copy-window-events=%d",
			params.CopyWindow, wsends, wstalls, tb.Count(trace.EvCopyWindow))
		rf := r.c.RemoteFaultTotals()
		r.printf("  remote faults: %d (%.1f KB) stalled=%v pull=%.1fK push=%.1fK events=%d aborted=%v",
			rf.Faults, rf.FaultKB, rf.StallTime, rf.PullKB, rf.PushKB,
			tb.Count(trace.EvRemoteFault), rf.Aborted)

	case "trace":
		if len(f) < 2 || (f[1] != "on" && f[1] != "off") {
			r.printf("! trace on|off")
			break
		}
		r.traceOn = f[1] == "on"
		r.printf("trace %s", f[1])

	case "loss":
		if len(f) < 2 {
			r.printf("! loss <probability>")
			break
		}
		p, err := strconv.ParseFloat(f[1], 64)
		if err != nil || p < 0 || p > 1 {
			r.printf("! loss must be in [0,1]")
			break
		}
		if p == 0 {
			r.c.Bus.SetLoss(nil)
		} else {
			r.c.Bus.SetLoss(ethernet.RandomLoss(r.c.Sim, p))
		}
		r.printf("frame loss set to %.0f%%", p*100)

	case "names":
		r.do(func(a *core.Agent) {
			m, err := a.Ctx().Send(vid.GroupNameServers, vid.Message{Op: nameserver.NsList})
			if err != nil || !m.OK() {
				r.printf("! name service unavailable")
				return
			}
			fmt.Fprint(r.out, m.SegString())
		})

	case "crash":
		if len(f) < 2 {
			r.printf("! crash <host>")
			break
		}
		n := r.node(f[1])
		if n == nil {
			break
		}
		r.c.Fault.Crash(n.Host.NIC.MAC())
		r.printf("%s crashed", n.Name())

	case "restart":
		if len(f) < 2 {
			r.printf("! restart <host>")
			break
		}
		n := r.node(f[1])
		if n == nil {
			break
		}
		if !n.Host.Crashed() {
			r.printf("! %s is not crashed", n.Name())
			break
		}
		r.c.Fault.Restart(n.Host.NIC.MAC())
		r.printf("%s restarted", n.Name())

	case "partition":
		if len(f) != 3 {
			r.printf("! partition <hosts,comma-separated> <hosts,comma-separated>")
			break
		}
		a, okA := r.macSet(f[1])
		b, okB := r.macSet(f[2])
		if !okA || !okB {
			break
		}
		r.c.Fault.Partition(a, b)
		r.printf("partitioned %s | %s", f[1], f[2])

	case "heal":
		if !r.c.Fault.Partitioned() {
			r.printf("! no active partition")
			break
		}
		r.c.Fault.Heal()
		r.printf("all partitions healed")

	case "replicas":
		any := false
		if rep := r.c.Nodes[0].PM.HomeReplica(); rep != nil {
			any = true
			r.printf("home-PM group:")
			for _, n := range r.c.Nodes {
				hr := n.PM.HomeReplica()
				if hr == nil {
					continue
				}
				r.printReplica(n.Name(), n.Host.Crashed(), hr)
			}
		}
		if len(r.c.FSReps) > 1 {
			any = true
			r.printf("file/name servers:")
			for i, h := range r.c.FSHosts {
				r.printReplica(fmt.Sprintf("fs%d", i), h.Crashed(), r.c.FSReps[i].Replica())
				r.printReplica(fmt.Sprintf("ns%d", i), h.Crashed(), r.c.NSReps[i].Replica())
			}
		}
		if !any {
			r.printf("no replicated services (boot with -replicate-home / -replicate-fs)")
		}

	default:
		r.printf("! unknown command %q", f[0])
	}
	return true
}

// printReplica shows one consensus-group member's role and progress.
func (r *repl) printReplica(name string, crashed bool, rep *rsm.Replica) {
	if rep == nil {
		return
	}
	if crashed {
		r.printf("  %-5s crashed", name)
		return
	}
	role := "follower"
	if rep.IsLeader() {
		role = "LEADER"
	}
	st := rep.Stats()
	r.printf("  %-5s %-8s term=%d applied=%d commits=%d elections=%d failovers=%d",
		name, role, rep.Term(), rep.AppliedIndex(), st.Commits, st.Elections, st.Failovers)
}

// nodeByMAC names the workstation behind a station address.
func (r *repl) nodeByMAC(mac ethernet.MAC) string {
	for _, n := range r.c.Nodes {
		if n.Host.NIC.MAC() == mac {
			return n.Name()
		}
	}
	return fmt.Sprintf("station %d", mac)
}

// macSet resolves a comma-separated host-name list ("ws0,ws2") to MACs.
func (r *repl) macSet(list string) ([]ethernet.MAC, bool) {
	var out []ethernet.MAC
	for _, name := range strings.Split(list, ",") {
		n := r.node(strings.TrimSpace(name))
		if n == nil {
			return nil, false
		}
		out = append(out, n.Host.NIC.MAC())
	}
	return out, true
}

func (r *repl) job(f []string) *core.Job {
	if len(f) < 2 {
		r.printf("! need a job id")
		return nil
	}
	job := r.jobs[f[1]]
	if job == nil {
		r.printf("! unknown job %q", f[1])
	}
	return job
}
