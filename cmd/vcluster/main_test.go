package main

import (
	"strings"
	"testing"

	"vsystem/internal/core"
)

// script drives the REPL with a command script and returns its output.
func script(t *testing.T, opt core.Options, cmds string) string {
	t.Helper()
	var out strings.Builder
	r := newRepl(opt, &out)
	r.loop(strings.NewReader(cmds))
	return out.String()
}

func TestScriptedSession(t *testing.T) {
	out := script(t, core.Options{Workstations: 4, Seed: 1}, `
# a comment
run hello @ ws1
wait j1
run tex @ ws2
ps ws2
migrate j2
display ws0
hosts
quit
`)
	for _, w := range []string{
		"j1: hello on ws1",
		"hello exited with code 0",
		"j2: tex on ws2",
		"guest=true",
		"tex migrated (precopy)",
		"ws0| hello from the VVM",
		"ws1 ",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}

func TestScriptedErrors(t *testing.T) {
	out := script(t, core.Options{Workstations: 2, Seed: 2}, `
run nosuchprogram
wait j9
migrate j9
ps
frobnicate
crash ws9
advance xyz
`)
	for _, w := range []string{
		"! v: not-found",
		`! unknown job "j9"`,
		"! ps <host>",
		`! unknown command "frobnicate"`,
		`! no such host "ws9"`,
		"! time: invalid duration",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}

func TestScriptedCrashAndAdvance(t *testing.T) {
	out := script(t, core.Options{Workstations: 3, Seed: 3}, `
crash ws2
hosts
advance 1500ms
time
`)
	if !strings.Contains(out, "ws2 crashed") || !strings.Contains(out, "ws2    crashed") {
		t.Fatalf("crash not reflected:\n%s", out)
	}
	if !strings.Contains(out, "clock: 1.5") {
		t.Fatalf("advance not reflected:\n%s", out)
	}
}

func TestScriptedMigrateKill(t *testing.T) {
	// The only other workstation (ws0) runs the owner's local program, so
	// no host will take the guest: migrate -n destroys it.
	out := script(t, core.Options{Workstations: 2, Seed: 4}, `
run tex
run ticker100 @ ws1
advance 2s
migrate -n j2
`)
	if !strings.Contains(out, "destroyed (no host would accept it)") {
		t.Fatalf("migrate -n did not destroy:\n%s", out)
	}
}

func TestScriptedSuspendResumeInspect(t *testing.T) {
	out := script(t, core.Options{Workstations: 3, Seed: 5}, `
run ticker100 @ ws1
suspend j1
inspect j1
advance 5s
resume j1
wait j1
`)
	for _, w := range []string{
		"ticker100 suspended",
		"running", // inspect shows the process table state (started)
		"ticker100 resumed",
		"ticker100 exited with code 0",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}

func TestScriptedStatsAndLoss(t *testing.T) {
	out := script(t, core.Options{Workstations: 2, Seed: 6}, `
run ticker100 @ ws1
loss 0.05
advance 2s
stats
loss 0
`)
	for _, w := range []string{
		"frame loss set to 5%",
		"frame loss set to 0%",
		"ws1",
		"guests=1",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}

func TestScriptedTraceAndStats(t *testing.T) {
	out := script(t, core.Options{Workstations: 3, Seed: 8}, `
trace on
run tex @ ws1
advance 3s
migrate j1
trace off
stats
trace bogus
`)
	for _, w := range []string{
		"trace on",
		"trace span", // migration phase spans streamed
		" freeze[",   // ... including the freeze window
		" rebind ",   // rebind broadcast event
		"tex migrated (precopy)",
		"trace off",
		"pkts=",       // per-host packet counters
		"freezes=",    // per-host freeze metrics
		"events: tx=", // bus-wide event counts
		"! trace on|off",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(strings.SplitN(out, "trace off", 2)[1], "trace span") {
		t.Fatalf("trace kept streaming after trace off:\n%s", out)
	}
}

func TestScriptedProgramArguments(t *testing.T) {
	out := script(t, core.Options{Workstations: 2, Seed: 7}, `
run primesrange 2 100 @ ws1
wait j1
display
`)
	if !strings.Contains(out, "primesrange exited with code 25") {
		t.Fatalf("π(100) not computed from arguments:\n%s", out)
	}
	if !strings.Contains(out, "ws0| 25") {
		t.Fatalf("output missing:\n%s", out)
	}
}
