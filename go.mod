module vsystem

go 1.23
